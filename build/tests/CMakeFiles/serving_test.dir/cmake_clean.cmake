file(REMOVE_RECURSE
  "CMakeFiles/serving_test.dir/serving/buffer_ablation_test.cc.o"
  "CMakeFiles/serving_test.dir/serving/buffer_ablation_test.cc.o.d"
  "CMakeFiles/serving_test.dir/serving/partial_results_test.cc.o"
  "CMakeFiles/serving_test.dir/serving/partial_results_test.cc.o.d"
  "CMakeFiles/serving_test.dir/serving/pipeline_test.cc.o"
  "CMakeFiles/serving_test.dir/serving/pipeline_test.cc.o.d"
  "CMakeFiles/serving_test.dir/serving/server_param_test.cc.o"
  "CMakeFiles/serving_test.dir/serving/server_param_test.cc.o.d"
  "CMakeFiles/serving_test.dir/serving/server_test.cc.o"
  "CMakeFiles/serving_test.dir/serving/server_test.cc.o.d"
  "CMakeFiles/serving_test.dir/serving/stacking_serving_test.cc.o"
  "CMakeFiles/serving_test.dir/serving/stacking_serving_test.cc.o.d"
  "serving_test"
  "serving_test.pdb"
  "serving_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
