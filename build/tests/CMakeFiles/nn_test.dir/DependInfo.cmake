
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/calibration_test.cc" "tests/CMakeFiles/nn_test.dir/nn/calibration_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/calibration_test.cc.o.d"
  "/root/repo/tests/nn/kmeans_test.cc" "tests/CMakeFiles/nn_test.dir/nn/kmeans_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/kmeans_test.cc.o.d"
  "/root/repo/tests/nn/knn_test.cc" "tests/CMakeFiles/nn_test.dir/nn/knn_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/knn_test.cc.o.d"
  "/root/repo/tests/nn/matrix_test.cc" "tests/CMakeFiles/nn_test.dir/nn/matrix_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/matrix_test.cc.o.d"
  "/root/repo/tests/nn/mlp_param_test.cc" "tests/CMakeFiles/nn_test.dir/nn/mlp_param_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/mlp_param_test.cc.o.d"
  "/root/repo/tests/nn/mlp_test.cc" "tests/CMakeFiles/nn_test.dir/nn/mlp_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/mlp_test.cc.o.d"
  "/root/repo/tests/nn/softmax_regression_test.cc" "tests/CMakeFiles/nn_test.dir/nn/softmax_regression_test.cc.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/softmax_regression_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/schemble_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/schemble_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
