file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/aggregation_test.cc.o"
  "CMakeFiles/core_test.dir/core/aggregation_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/budgeted_param_test.cc.o"
  "CMakeFiles/core_test.dir/core/budgeted_param_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/budgeted_test.cc.o"
  "CMakeFiles/core_test.dir/core/budgeted_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/discrepancy_test.cc.o"
  "CMakeFiles/core_test.dir/core/discrepancy_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/predictor_test.cc.o"
  "CMakeFiles/core_test.dir/core/predictor_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/profile_completion_test.cc.o"
  "CMakeFiles/core_test.dir/core/profile_completion_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/profiling_test.cc.o"
  "CMakeFiles/core_test.dir/core/profiling_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/scheduler_param_test.cc.o"
  "CMakeFiles/core_test.dir/core/scheduler_param_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/scheduler_test.cc.o"
  "CMakeFiles/core_test.dir/core/scheduler_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/schemble_policy_test.cc.o"
  "CMakeFiles/core_test.dir/core/schemble_policy_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
