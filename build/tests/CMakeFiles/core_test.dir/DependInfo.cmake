
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/aggregation_test.cc" "tests/CMakeFiles/core_test.dir/core/aggregation_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/aggregation_test.cc.o.d"
  "/root/repo/tests/core/budgeted_param_test.cc" "tests/CMakeFiles/core_test.dir/core/budgeted_param_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/budgeted_param_test.cc.o.d"
  "/root/repo/tests/core/budgeted_test.cc" "tests/CMakeFiles/core_test.dir/core/budgeted_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/budgeted_test.cc.o.d"
  "/root/repo/tests/core/discrepancy_test.cc" "tests/CMakeFiles/core_test.dir/core/discrepancy_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/discrepancy_test.cc.o.d"
  "/root/repo/tests/core/predictor_test.cc" "tests/CMakeFiles/core_test.dir/core/predictor_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/predictor_test.cc.o.d"
  "/root/repo/tests/core/profile_completion_test.cc" "tests/CMakeFiles/core_test.dir/core/profile_completion_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/profile_completion_test.cc.o.d"
  "/root/repo/tests/core/profiling_test.cc" "tests/CMakeFiles/core_test.dir/core/profiling_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/profiling_test.cc.o.d"
  "/root/repo/tests/core/scheduler_param_test.cc" "tests/CMakeFiles/core_test.dir/core/scheduler_param_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/scheduler_param_test.cc.o.d"
  "/root/repo/tests/core/scheduler_test.cc" "tests/CMakeFiles/core_test.dir/core/scheduler_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/scheduler_test.cc.o.d"
  "/root/repo/tests/core/schemble_policy_test.cc" "tests/CMakeFiles/core_test.dir/core/schemble_policy_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/schemble_policy_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/schemble_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/schemble_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/schemble_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/schemble_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/schemble_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/schemble_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
