file(REMOVE_RECURSE
  "CMakeFiles/schemble_simcore.dir/simulation.cc.o"
  "CMakeFiles/schemble_simcore.dir/simulation.cc.o.d"
  "libschemble_simcore.a"
  "libschemble_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemble_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
