file(REMOVE_RECURSE
  "libschemble_simcore.a"
)
