# Empty dependencies file for schemble_simcore.
# This may be replaced when dependencies are built.
