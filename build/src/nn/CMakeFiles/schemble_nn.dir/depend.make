# Empty dependencies file for schemble_nn.
# This may be replaced when dependencies are built.
