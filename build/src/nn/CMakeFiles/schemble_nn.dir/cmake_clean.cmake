file(REMOVE_RECURSE
  "CMakeFiles/schemble_nn.dir/calibration.cc.o"
  "CMakeFiles/schemble_nn.dir/calibration.cc.o.d"
  "CMakeFiles/schemble_nn.dir/kmeans.cc.o"
  "CMakeFiles/schemble_nn.dir/kmeans.cc.o.d"
  "CMakeFiles/schemble_nn.dir/knn.cc.o"
  "CMakeFiles/schemble_nn.dir/knn.cc.o.d"
  "CMakeFiles/schemble_nn.dir/matrix.cc.o"
  "CMakeFiles/schemble_nn.dir/matrix.cc.o.d"
  "CMakeFiles/schemble_nn.dir/mlp.cc.o"
  "CMakeFiles/schemble_nn.dir/mlp.cc.o.d"
  "CMakeFiles/schemble_nn.dir/softmax_regression.cc.o"
  "CMakeFiles/schemble_nn.dir/softmax_regression.cc.o.d"
  "libschemble_nn.a"
  "libschemble_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemble_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
