file(REMOVE_RECURSE
  "libschemble_nn.a"
)
