
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/calibration.cc" "src/nn/CMakeFiles/schemble_nn.dir/calibration.cc.o" "gcc" "src/nn/CMakeFiles/schemble_nn.dir/calibration.cc.o.d"
  "/root/repo/src/nn/kmeans.cc" "src/nn/CMakeFiles/schemble_nn.dir/kmeans.cc.o" "gcc" "src/nn/CMakeFiles/schemble_nn.dir/kmeans.cc.o.d"
  "/root/repo/src/nn/knn.cc" "src/nn/CMakeFiles/schemble_nn.dir/knn.cc.o" "gcc" "src/nn/CMakeFiles/schemble_nn.dir/knn.cc.o.d"
  "/root/repo/src/nn/matrix.cc" "src/nn/CMakeFiles/schemble_nn.dir/matrix.cc.o" "gcc" "src/nn/CMakeFiles/schemble_nn.dir/matrix.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/nn/CMakeFiles/schemble_nn.dir/mlp.cc.o" "gcc" "src/nn/CMakeFiles/schemble_nn.dir/mlp.cc.o.d"
  "/root/repo/src/nn/softmax_regression.cc" "src/nn/CMakeFiles/schemble_nn.dir/softmax_regression.cc.o" "gcc" "src/nn/CMakeFiles/schemble_nn.dir/softmax_regression.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/schemble_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
