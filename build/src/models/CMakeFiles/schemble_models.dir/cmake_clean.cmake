file(REMOVE_RECURSE
  "CMakeFiles/schemble_models.dir/model_profile.cc.o"
  "CMakeFiles/schemble_models.dir/model_profile.cc.o.d"
  "CMakeFiles/schemble_models.dir/synthetic_task.cc.o"
  "CMakeFiles/schemble_models.dir/synthetic_task.cc.o.d"
  "CMakeFiles/schemble_models.dir/task_factory.cc.o"
  "CMakeFiles/schemble_models.dir/task_factory.cc.o.d"
  "libschemble_models.a"
  "libschemble_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemble_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
