# Empty compiler generated dependencies file for schemble_models.
# This may be replaced when dependencies are built.
