
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/model_profile.cc" "src/models/CMakeFiles/schemble_models.dir/model_profile.cc.o" "gcc" "src/models/CMakeFiles/schemble_models.dir/model_profile.cc.o.d"
  "/root/repo/src/models/synthetic_task.cc" "src/models/CMakeFiles/schemble_models.dir/synthetic_task.cc.o" "gcc" "src/models/CMakeFiles/schemble_models.dir/synthetic_task.cc.o.d"
  "/root/repo/src/models/task_factory.cc" "src/models/CMakeFiles/schemble_models.dir/task_factory.cc.o" "gcc" "src/models/CMakeFiles/schemble_models.dir/task_factory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/schemble_common.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/schemble_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
