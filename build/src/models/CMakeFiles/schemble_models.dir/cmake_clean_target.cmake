file(REMOVE_RECURSE
  "libschemble_models.a"
)
