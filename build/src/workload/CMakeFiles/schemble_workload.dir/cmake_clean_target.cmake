file(REMOVE_RECURSE
  "libschemble_workload.a"
)
