# Empty dependencies file for schemble_workload.
# This may be replaced when dependencies are built.
