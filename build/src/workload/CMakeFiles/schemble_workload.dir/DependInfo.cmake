
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/schemble_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/schemble_workload.dir/trace.cc.o.d"
  "/root/repo/src/workload/trace_io.cc" "src/workload/CMakeFiles/schemble_workload.dir/trace_io.cc.o" "gcc" "src/workload/CMakeFiles/schemble_workload.dir/trace_io.cc.o.d"
  "/root/repo/src/workload/traffic.cc" "src/workload/CMakeFiles/schemble_workload.dir/traffic.cc.o" "gcc" "src/workload/CMakeFiles/schemble_workload.dir/traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/schemble_models.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/schemble_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/schemble_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
