file(REMOVE_RECURSE
  "CMakeFiles/schemble_workload.dir/trace.cc.o"
  "CMakeFiles/schemble_workload.dir/trace.cc.o.d"
  "CMakeFiles/schemble_workload.dir/trace_io.cc.o"
  "CMakeFiles/schemble_workload.dir/trace_io.cc.o.d"
  "CMakeFiles/schemble_workload.dir/traffic.cc.o"
  "CMakeFiles/schemble_workload.dir/traffic.cc.o.d"
  "libschemble_workload.a"
  "libschemble_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemble_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
