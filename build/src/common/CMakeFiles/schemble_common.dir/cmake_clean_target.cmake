file(REMOVE_RECURSE
  "libschemble_common.a"
)
