# Empty compiler generated dependencies file for schemble_common.
# This may be replaced when dependencies are built.
