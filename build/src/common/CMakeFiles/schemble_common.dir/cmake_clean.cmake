file(REMOVE_RECURSE
  "CMakeFiles/schemble_common.dir/logging.cc.o"
  "CMakeFiles/schemble_common.dir/logging.cc.o.d"
  "CMakeFiles/schemble_common.dir/prob.cc.o"
  "CMakeFiles/schemble_common.dir/prob.cc.o.d"
  "CMakeFiles/schemble_common.dir/rng.cc.o"
  "CMakeFiles/schemble_common.dir/rng.cc.o.d"
  "CMakeFiles/schemble_common.dir/stats.cc.o"
  "CMakeFiles/schemble_common.dir/stats.cc.o.d"
  "CMakeFiles/schemble_common.dir/status.cc.o"
  "CMakeFiles/schemble_common.dir/status.cc.o.d"
  "CMakeFiles/schemble_common.dir/table.cc.o"
  "CMakeFiles/schemble_common.dir/table.cc.o.d"
  "libschemble_common.a"
  "libschemble_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemble_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
