
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregation.cc" "src/core/CMakeFiles/schemble_core.dir/aggregation.cc.o" "gcc" "src/core/CMakeFiles/schemble_core.dir/aggregation.cc.o.d"
  "/root/repo/src/core/budgeted.cc" "src/core/CMakeFiles/schemble_core.dir/budgeted.cc.o" "gcc" "src/core/CMakeFiles/schemble_core.dir/budgeted.cc.o.d"
  "/root/repo/src/core/discrepancy.cc" "src/core/CMakeFiles/schemble_core.dir/discrepancy.cc.o" "gcc" "src/core/CMakeFiles/schemble_core.dir/discrepancy.cc.o.d"
  "/root/repo/src/core/discrepancy_predictor.cc" "src/core/CMakeFiles/schemble_core.dir/discrepancy_predictor.cc.o" "gcc" "src/core/CMakeFiles/schemble_core.dir/discrepancy_predictor.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/core/CMakeFiles/schemble_core.dir/policy.cc.o" "gcc" "src/core/CMakeFiles/schemble_core.dir/policy.cc.o.d"
  "/root/repo/src/core/profiling.cc" "src/core/CMakeFiles/schemble_core.dir/profiling.cc.o" "gcc" "src/core/CMakeFiles/schemble_core.dir/profiling.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/schemble_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/schemble_core.dir/scheduler.cc.o.d"
  "/root/repo/src/core/schemble_policy.cc" "src/core/CMakeFiles/schemble_core.dir/schemble_policy.cc.o" "gcc" "src/core/CMakeFiles/schemble_core.dir/schemble_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/schemble_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/schemble_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/schemble_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/schemble_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/schemble_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
