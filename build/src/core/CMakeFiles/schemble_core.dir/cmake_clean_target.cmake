file(REMOVE_RECURSE
  "libschemble_core.a"
)
