file(REMOVE_RECURSE
  "CMakeFiles/schemble_core.dir/aggregation.cc.o"
  "CMakeFiles/schemble_core.dir/aggregation.cc.o.d"
  "CMakeFiles/schemble_core.dir/budgeted.cc.o"
  "CMakeFiles/schemble_core.dir/budgeted.cc.o.d"
  "CMakeFiles/schemble_core.dir/discrepancy.cc.o"
  "CMakeFiles/schemble_core.dir/discrepancy.cc.o.d"
  "CMakeFiles/schemble_core.dir/discrepancy_predictor.cc.o"
  "CMakeFiles/schemble_core.dir/discrepancy_predictor.cc.o.d"
  "CMakeFiles/schemble_core.dir/policy.cc.o"
  "CMakeFiles/schemble_core.dir/policy.cc.o.d"
  "CMakeFiles/schemble_core.dir/profiling.cc.o"
  "CMakeFiles/schemble_core.dir/profiling.cc.o.d"
  "CMakeFiles/schemble_core.dir/scheduler.cc.o"
  "CMakeFiles/schemble_core.dir/scheduler.cc.o.d"
  "CMakeFiles/schemble_core.dir/schemble_policy.cc.o"
  "CMakeFiles/schemble_core.dir/schemble_policy.cc.o.d"
  "libschemble_core.a"
  "libschemble_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemble_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
