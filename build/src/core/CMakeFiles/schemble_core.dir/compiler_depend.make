# Empty compiler generated dependencies file for schemble_core.
# This may be replaced when dependencies are built.
