file(REMOVE_RECURSE
  "libschemble_baselines.a"
)
