file(REMOVE_RECURSE
  "CMakeFiles/schemble_baselines.dir/des_policy.cc.o"
  "CMakeFiles/schemble_baselines.dir/des_policy.cc.o.d"
  "CMakeFiles/schemble_baselines.dir/gating_policy.cc.o"
  "CMakeFiles/schemble_baselines.dir/gating_policy.cc.o.d"
  "CMakeFiles/schemble_baselines.dir/original_policy.cc.o"
  "CMakeFiles/schemble_baselines.dir/original_policy.cc.o.d"
  "CMakeFiles/schemble_baselines.dir/static_policy.cc.o"
  "CMakeFiles/schemble_baselines.dir/static_policy.cc.o.d"
  "libschemble_baselines.a"
  "libschemble_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemble_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
