# Empty compiler generated dependencies file for schemble_baselines.
# This may be replaced when dependencies are built.
