# Empty compiler generated dependencies file for schemble_serving.
# This may be replaced when dependencies are built.
