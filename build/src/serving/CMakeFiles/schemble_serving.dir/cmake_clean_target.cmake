file(REMOVE_RECURSE
  "libschemble_serving.a"
)
