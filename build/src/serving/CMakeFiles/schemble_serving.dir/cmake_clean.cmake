file(REMOVE_RECURSE
  "CMakeFiles/schemble_serving.dir/pipeline.cc.o"
  "CMakeFiles/schemble_serving.dir/pipeline.cc.o.d"
  "CMakeFiles/schemble_serving.dir/server.cc.o"
  "CMakeFiles/schemble_serving.dir/server.cc.o.d"
  "libschemble_serving.a"
  "libschemble_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemble_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
