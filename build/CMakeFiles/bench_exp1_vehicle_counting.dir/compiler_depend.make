# Empty compiler generated dependencies file for bench_exp1_vehicle_counting.
# This may be replaced when dependencies are built.
