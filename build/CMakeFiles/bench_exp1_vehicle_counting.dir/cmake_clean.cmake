file(REMOVE_RECURSE
  "CMakeFiles/bench_exp1_vehicle_counting.dir/bench/bench_exp1_vehicle_counting.cc.o"
  "CMakeFiles/bench_exp1_vehicle_counting.dir/bench/bench_exp1_vehicle_counting.cc.o.d"
  "CMakeFiles/bench_exp1_vehicle_counting.dir/bench/bench_util.cc.o"
  "CMakeFiles/bench_exp1_vehicle_counting.dir/bench/bench_util.cc.o.d"
  "bench/bench_exp1_vehicle_counting"
  "bench/bench_exp1_vehicle_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp1_vehicle_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
