file(REMOVE_RECURSE
  "CMakeFiles/bench_exp2_segments.dir/bench/bench_exp2_segments.cc.o"
  "CMakeFiles/bench_exp2_segments.dir/bench/bench_exp2_segments.cc.o.d"
  "CMakeFiles/bench_exp2_segments.dir/bench/bench_util.cc.o"
  "CMakeFiles/bench_exp2_segments.dir/bench/bench_util.cc.o.d"
  "bench/bench_exp2_segments"
  "bench/bench_exp2_segments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp2_segments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
