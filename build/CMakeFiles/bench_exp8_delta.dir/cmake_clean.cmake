file(REMOVE_RECURSE
  "CMakeFiles/bench_exp8_delta.dir/bench/bench_exp8_delta.cc.o"
  "CMakeFiles/bench_exp8_delta.dir/bench/bench_exp8_delta.cc.o.d"
  "CMakeFiles/bench_exp8_delta.dir/bench/bench_util.cc.o"
  "CMakeFiles/bench_exp8_delta.dir/bench/bench_util.cc.o.d"
  "bench/bench_exp8_delta"
  "bench/bench_exp8_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp8_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
