# Empty dependencies file for bench_exp8_delta.
# This may be replaced when dependencies are built.
