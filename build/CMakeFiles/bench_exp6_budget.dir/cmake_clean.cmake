file(REMOVE_RECURSE
  "CMakeFiles/bench_exp6_budget.dir/bench/bench_exp6_budget.cc.o"
  "CMakeFiles/bench_exp6_budget.dir/bench/bench_exp6_budget.cc.o.d"
  "CMakeFiles/bench_exp6_budget.dir/bench/bench_util.cc.o"
  "CMakeFiles/bench_exp6_budget.dir/bench/bench_util.cc.o.d"
  "bench/bench_exp6_budget"
  "bench/bench_exp6_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp6_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
