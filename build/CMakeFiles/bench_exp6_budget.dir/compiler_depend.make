# Empty compiler generated dependencies file for bench_exp6_budget.
# This may be replaced when dependencies are built.
