# Empty dependencies file for bench_exp7_profiling_knn.
# This may be replaced when dependencies are built.
