file(REMOVE_RECURSE
  "CMakeFiles/bench_exp7_profiling_knn.dir/bench/bench_exp7_profiling_knn.cc.o"
  "CMakeFiles/bench_exp7_profiling_knn.dir/bench/bench_exp7_profiling_knn.cc.o.d"
  "CMakeFiles/bench_exp7_profiling_knn.dir/bench/bench_util.cc.o"
  "CMakeFiles/bench_exp7_profiling_knn.dir/bench/bench_util.cc.o.d"
  "bench/bench_exp7_profiling_knn"
  "bench/bench_exp7_profiling_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp7_profiling_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
