# Empty dependencies file for bench_exp1_text_matching.
# This may be replaced when dependencies are built.
