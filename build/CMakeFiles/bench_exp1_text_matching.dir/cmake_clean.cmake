file(REMOVE_RECURSE
  "CMakeFiles/bench_exp1_text_matching.dir/bench/bench_exp1_text_matching.cc.o"
  "CMakeFiles/bench_exp1_text_matching.dir/bench/bench_exp1_text_matching.cc.o.d"
  "CMakeFiles/bench_exp1_text_matching.dir/bench/bench_util.cc.o"
  "CMakeFiles/bench_exp1_text_matching.dir/bench/bench_util.cc.o.d"
  "bench/bench_exp1_text_matching"
  "bench/bench_exp1_text_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp1_text_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
