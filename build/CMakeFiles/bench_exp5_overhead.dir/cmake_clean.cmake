file(REMOVE_RECURSE
  "CMakeFiles/bench_exp5_overhead.dir/bench/bench_exp5_overhead.cc.o"
  "CMakeFiles/bench_exp5_overhead.dir/bench/bench_exp5_overhead.cc.o.d"
  "CMakeFiles/bench_exp5_overhead.dir/bench/bench_util.cc.o"
  "CMakeFiles/bench_exp5_overhead.dir/bench/bench_util.cc.o.d"
  "bench/bench_exp5_overhead"
  "bench/bench_exp5_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp5_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
