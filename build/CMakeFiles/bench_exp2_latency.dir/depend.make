# Empty dependencies file for bench_exp2_latency.
# This may be replaced when dependencies are built.
