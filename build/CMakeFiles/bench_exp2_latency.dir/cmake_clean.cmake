file(REMOVE_RECURSE
  "CMakeFiles/bench_exp2_latency.dir/bench/bench_exp2_latency.cc.o"
  "CMakeFiles/bench_exp2_latency.dir/bench/bench_exp2_latency.cc.o.d"
  "CMakeFiles/bench_exp2_latency.dir/bench/bench_util.cc.o"
  "CMakeFiles/bench_exp2_latency.dir/bench/bench_util.cc.o.d"
  "bench/bench_exp2_latency"
  "bench/bench_exp2_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp2_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
