file(REMOVE_RECURSE
  "CMakeFiles/bench_exp4_scheduler.dir/bench/bench_exp4_scheduler.cc.o"
  "CMakeFiles/bench_exp4_scheduler.dir/bench/bench_exp4_scheduler.cc.o.d"
  "CMakeFiles/bench_exp4_scheduler.dir/bench/bench_util.cc.o"
  "CMakeFiles/bench_exp4_scheduler.dir/bench/bench_util.cc.o.d"
  "bench/bench_exp4_scheduler"
  "bench/bench_exp4_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp4_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
