file(REMOVE_RECURSE
  "CMakeFiles/bench_exp1_image_retrieval.dir/bench/bench_exp1_image_retrieval.cc.o"
  "CMakeFiles/bench_exp1_image_retrieval.dir/bench/bench_exp1_image_retrieval.cc.o.d"
  "CMakeFiles/bench_exp1_image_retrieval.dir/bench/bench_util.cc.o"
  "CMakeFiles/bench_exp1_image_retrieval.dir/bench/bench_util.cc.o.d"
  "bench/bench_exp1_image_retrieval"
  "bench/bench_exp1_image_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp1_image_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
