# Empty compiler generated dependencies file for bench_exp1_image_retrieval.
# This may be replaced when dependencies are built.
