# Empty dependencies file for bench_exp3_distributions.
# This may be replaced when dependencies are built.
