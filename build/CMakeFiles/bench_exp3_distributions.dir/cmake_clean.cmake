file(REMOVE_RECURSE
  "CMakeFiles/bench_exp3_distributions.dir/bench/bench_exp3_distributions.cc.o"
  "CMakeFiles/bench_exp3_distributions.dir/bench/bench_exp3_distributions.cc.o.d"
  "CMakeFiles/bench_exp3_distributions.dir/bench/bench_util.cc.o"
  "CMakeFiles/bench_exp3_distributions.dir/bench/bench_util.cc.o.d"
  "bench/bench_exp3_distributions"
  "bench/bench_exp3_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp3_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
