file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_discrepancy.dir/bench/bench_fig4_discrepancy.cc.o"
  "CMakeFiles/bench_fig4_discrepancy.dir/bench/bench_fig4_discrepancy.cc.o.d"
  "CMakeFiles/bench_fig4_discrepancy.dir/bench/bench_util.cc.o"
  "CMakeFiles/bench_fig4_discrepancy.dir/bench/bench_util.cc.o.d"
  "bench/bench_fig4_discrepancy"
  "bench/bench_fig4_discrepancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_discrepancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
