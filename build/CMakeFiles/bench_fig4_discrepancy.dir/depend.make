# Empty dependencies file for bench_fig4_discrepancy.
# This may be replaced when dependencies are built.
