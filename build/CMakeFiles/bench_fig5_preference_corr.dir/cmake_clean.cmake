file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_preference_corr.dir/bench/bench_fig5_preference_corr.cc.o"
  "CMakeFiles/bench_fig5_preference_corr.dir/bench/bench_fig5_preference_corr.cc.o.d"
  "CMakeFiles/bench_fig5_preference_corr.dir/bench/bench_util.cc.o"
  "CMakeFiles/bench_fig5_preference_corr.dir/bench/bench_util.cc.o.d"
  "bench/bench_fig5_preference_corr"
  "bench/bench_fig5_preference_corr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_preference_corr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
