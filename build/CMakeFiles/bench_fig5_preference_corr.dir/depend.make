# Empty dependencies file for bench_fig5_preference_corr.
# This may be replaced when dependencies are built.
