file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_large_ensemble.dir/bench/bench_ext_large_ensemble.cc.o"
  "CMakeFiles/bench_ext_large_ensemble.dir/bench/bench_ext_large_ensemble.cc.o.d"
  "CMakeFiles/bench_ext_large_ensemble.dir/bench/bench_util.cc.o"
  "CMakeFiles/bench_ext_large_ensemble.dir/bench/bench_util.cc.o.d"
  "bench/bench_ext_large_ensemble"
  "bench/bench_ext_large_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_large_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
