# Empty dependencies file for intelligent_qa.
# This may be replaced when dependencies are built.
