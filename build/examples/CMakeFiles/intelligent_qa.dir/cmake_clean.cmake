file(REMOVE_RECURSE
  "CMakeFiles/intelligent_qa.dir/intelligent_qa.cpp.o"
  "CMakeFiles/intelligent_qa.dir/intelligent_qa.cpp.o.d"
  "intelligent_qa"
  "intelligent_qa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intelligent_qa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
