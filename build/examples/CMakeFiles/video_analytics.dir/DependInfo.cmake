
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/video_analytics.cpp" "examples/CMakeFiles/video_analytics.dir/video_analytics.cpp.o" "gcc" "examples/CMakeFiles/video_analytics.dir/video_analytics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/serving/CMakeFiles/schemble_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/schemble_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/schemble_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/schemble_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/schemble_models.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/schemble_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/schemble_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/schemble_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
