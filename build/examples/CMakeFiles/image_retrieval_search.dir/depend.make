# Empty dependencies file for image_retrieval_search.
# This may be replaced when dependencies are built.
