file(REMOVE_RECURSE
  "CMakeFiles/image_retrieval_search.dir/image_retrieval_search.cpp.o"
  "CMakeFiles/image_retrieval_search.dir/image_retrieval_search.cpp.o.d"
  "image_retrieval_search"
  "image_retrieval_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_retrieval_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
