#include "workload/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "models/task_factory.h"
#include "workload/traffic.h"

namespace schemble {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

QueryTrace MakeTrace(const SyntheticTask& task, uint64_t seed) {
  PoissonTraffic traffic(30.0);
  PerSourceUniformDeadline deadlines(8, 80 * kMillisecond,
                                     200 * kMillisecond, 5);
  TraceOptions options;
  options.seed = seed;
  options.num_sources = 8;
  return BuildTrace(task, traffic, deadlines, 10 * kSecond, options);
}

TEST(TraceIoTest, RoundTripsExactly) {
  SyntheticTask task = MakeTextMatchingTask(3);
  const QueryTrace original = MakeTrace(task, 11);
  const std::string path = TempPath("trace_roundtrip.csv");
  ASSERT_TRUE(SaveTraceCsv(original, path).ok());
  auto loaded = LoadTraceCsv(task, path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), original.size());
  for (int64_t i = 0; i < original.size(); ++i) {
    const TracedQuery& a = original.items[i];
    const TracedQuery& b = loaded.value().items[i];
    EXPECT_EQ(a.query.id, b.query.id);
    EXPECT_EQ(a.arrival_time, b.arrival_time);
    EXPECT_EQ(a.deadline, b.deadline);
    EXPECT_EQ(a.source, b.source);
    EXPECT_DOUBLE_EQ(a.query.difficulty, b.query.difficulty);
    // Payload regenerates bit-for-bit from (id, difficulty).
    for (int k = 0; k < task.num_models(); ++k) {
      for (size_t d = 0; d < a.query.model_outputs[k].size(); ++d) {
        EXPECT_DOUBLE_EQ(a.query.model_outputs[k][d],
                         b.query.model_outputs[k][d]);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(TraceIoTest, LoadMissingFileFails) {
  SyntheticTask task = MakeTextMatchingTask(3);
  EXPECT_FALSE(LoadTraceCsv(task, TempPath("does_not_exist.csv")).ok());
}

TEST(TraceIoTest, LoadMalformedRowFails) {
  SyntheticTask task = MakeTextMatchingTask(3);
  const std::string path = TempPath("trace_malformed.csv");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "id,difficulty,arrival_us,deadline_us,source\n");
  std::fprintf(f, "1,0.5,100\n");  // too few fields
  std::fclose(f);
  auto loaded = LoadTraceCsv(task, path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  SyntheticTask task = MakeTextMatchingTask(3);
  const std::string path = TempPath("trace_empty.csv");
  ASSERT_TRUE(SaveTraceCsv(QueryTrace{}, path).ok());
  auto loaded = LoadTraceCsv(task, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
  std::remove(path.c_str());
}

TEST(TraceIoTest, SaveToUnwritablePathFails) {
  const QueryTrace trace;
  EXPECT_FALSE(SaveTraceCsv(trace, "/nonexistent-dir/trace.csv").ok());
}

}  // namespace
}  // namespace schemble
