#include "workload/traffic.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace schemble {
namespace {

TEST(PoissonTrafficTest, ArrivalsSortedAndInRange) {
  PoissonTraffic traffic(50.0);
  Rng rng(1);
  const auto arrivals = traffic.GenerateArrivals(10 * kSecond, rng);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  for (SimTime t : arrivals) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 10 * kSecond);
  }
}

TEST(PoissonTrafficTest, RateMatchesExpectation) {
  PoissonTraffic traffic(100.0);
  Rng rng(3);
  const auto arrivals = traffic.GenerateArrivals(100 * kSecond, rng);
  // Expect ~10000 arrivals; Poisson stddev ~100.
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 10000.0, 400.0);
}

TEST(PoissonTrafficTest, DeterministicGivenSeed) {
  PoissonTraffic traffic(20.0);
  Rng a(7);
  Rng b(7);
  EXPECT_EQ(traffic.GenerateArrivals(5 * kSecond, a),
            traffic.GenerateArrivals(5 * kSecond, b));
}

TEST(DiurnalTrafficTest, QaShapeHas24Segments) {
  DiurnalTraffic traffic = DiurnalTraffic::QaDayShape(30.0);
  EXPECT_EQ(traffic.num_segments(), 24);
  EXPECT_EQ(traffic.total_duration(), 24 * 60 * kSecond);
}

TEST(DiurnalTrafficTest, RateAtFollowsShape) {
  DiurnalTraffic traffic = DiurnalTraffic::QaDayShape(30.0, 60 * kSecond);
  // Peak segments hit the configured peak rate.
  EXPECT_DOUBLE_EQ(traffic.RateAt(11 * 60 * kSecond), 30.0);
  // Overnight is ~1/30 of peak.
  EXPECT_LT(traffic.RateAt(2 * 60 * kSecond), 2.0);
  // Out-of-horizon times have zero rate.
  EXPECT_DOUBLE_EQ(traffic.RateAt(25 * 60 * kSecond), 0.0);
  EXPECT_DOUBLE_EQ(traffic.RateAt(-1), 0.0);
}

TEST(DiurnalTrafficTest, BurstRatioRoughly30x) {
  DiurnalTraffic traffic = DiurnalTraffic::QaDayShape(30.0, 60 * kSecond);
  Rng rng(11);
  const auto arrivals = traffic.GenerateArrivals(traffic.total_duration(), rng);
  ASSERT_FALSE(arrivals.empty());
  // Count per segment.
  std::vector<int64_t> counts(24, 0);
  for (SimTime t : arrivals) ++counts[t / (60 * kSecond)];
  const int64_t peak = *std::max_element(counts.begin(), counts.end());
  const int64_t overnight = counts[2];
  EXPECT_GT(peak, overnight * 15);
  // Peak segment carries roughly peak_rate * 60s arrivals.
  EXPECT_NEAR(static_cast<double>(peak), 1800.0, 250.0);
}

TEST(DiurnalTrafficTest, HonorsDurationCap) {
  DiurnalTraffic traffic = DiurnalTraffic::QaDayShape(30.0, 60 * kSecond);
  Rng rng(13);
  const auto arrivals = traffic.GenerateArrivals(5 * 60 * kSecond, rng);
  for (SimTime t : arrivals) EXPECT_LT(t, 5 * 60 * kSecond);
}

TEST(DiurnalTrafficTest, ArrivalsSorted) {
  DiurnalTraffic traffic = DiurnalTraffic::QaDayShape(10.0, 10 * kSecond);
  Rng rng(17);
  const auto arrivals = traffic.GenerateArrivals(traffic.total_duration(), rng);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
}

}  // namespace
}  // namespace schemble
