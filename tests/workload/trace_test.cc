#include "workload/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "models/task_factory.h"

namespace schemble {
namespace {

TEST(ConstantDeadlineTest, AlwaysSameValue) {
  ConstantDeadline d(100 * kMillisecond);
  Rng rng(1);
  EXPECT_EQ(d.RelativeDeadline(0, rng), 100 * kMillisecond);
  EXPECT_EQ(d.RelativeDeadline(5, rng), 100 * kMillisecond);
}

TEST(PerSourceUniformDeadlineTest, StablePerSource) {
  PerSourceUniformDeadline d(24, 100 * kMillisecond, 500 * kMillisecond, 7);
  Rng rng(2);
  for (int s = 0; s < 24; ++s) {
    const SimTime first = d.RelativeDeadline(s, rng);
    EXPECT_EQ(d.RelativeDeadline(s, rng), first);
    EXPECT_GE(first, 100 * kMillisecond);
    EXPECT_LE(first, 500 * kMillisecond);
  }
}

TEST(PerSourceUniformDeadlineTest, SourcesDiffer) {
  PerSourceUniformDeadline d(24, 100 * kMillisecond, 500 * kMillisecond, 9);
  Rng rng(3);
  std::set<SimTime> distinct;
  for (int s = 0; s < 24; ++s) distinct.insert(d.RelativeDeadline(s, rng));
  EXPECT_GT(distinct.size(), 5u);
}

TEST(BuildTraceTest, ProducesSortedArrivalsWithDeadlines) {
  SyntheticTask task = MakeTextMatchingTask(3);
  PoissonTraffic traffic(50.0);
  ConstantDeadline deadline(100 * kMillisecond);
  TraceOptions options;
  options.seed = 5;
  QueryTrace trace =
      BuildTrace(task, traffic, deadline, 10 * kSecond, options);
  ASSERT_GT(trace.size(), 100);
  SimTime prev = -1;
  for (const TracedQuery& tq : trace.items) {
    EXPECT_GE(tq.arrival_time, prev);
    prev = tq.arrival_time;
    EXPECT_EQ(tq.relative_deadline(), 100 * kMillisecond);
    EXPECT_EQ(tq.source, 0);
    EXPECT_EQ(tq.query.features.size(),
              static_cast<size_t>(task.spec().feature_dim()));
  }
}

TEST(BuildTraceTest, QueryIdsAreUniqueAndOffset) {
  SyntheticTask task = MakeTextMatchingTask(3);
  PoissonTraffic traffic(20.0);
  ConstantDeadline deadline(100 * kMillisecond);
  TraceOptions options;
  options.first_query_id = 5000;
  QueryTrace trace = BuildTrace(task, traffic, deadline, 5 * kSecond, options);
  std::set<int64_t> ids;
  for (const TracedQuery& tq : trace.items) ids.insert(tq.query.id);
  EXPECT_EQ(static_cast<int64_t>(ids.size()), trace.size());
  EXPECT_GE(*ids.begin(), 5000);
}

TEST(BuildTraceTest, MultiSourceAssignsSources) {
  SyntheticTask task = MakeVehicleCountingTask(7);
  PoissonTraffic traffic(50.0);
  PerSourceUniformDeadline deadline(24, 100 * kMillisecond, 400 * kMillisecond,
                                    11);
  TraceOptions options;
  options.num_sources = 24;
  QueryTrace trace = BuildTrace(task, traffic, deadline, 20 * kSecond, options);
  std::set<int> sources;
  for (const TracedQuery& tq : trace.items) {
    sources.insert(tq.source);
    EXPECT_GE(tq.source, 0);
    EXPECT_LT(tq.source, 24);
  }
  EXPECT_GT(sources.size(), 12u);
}

TEST(BuildTraceTest, DeterministicForSeed) {
  SyntheticTask task = MakeTextMatchingTask(3);
  PoissonTraffic traffic(30.0);
  ConstantDeadline deadline(100 * kMillisecond);
  TraceOptions options;
  options.seed = 77;
  QueryTrace a = BuildTrace(task, traffic, deadline, 5 * kSecond, options);
  QueryTrace b = BuildTrace(task, traffic, deadline, 5 * kSecond, options);
  ASSERT_EQ(a.size(), b.size());
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.items[i].arrival_time, b.items[i].arrival_time);
    EXPECT_EQ(a.items[i].query.id, b.items[i].query.id);
    EXPECT_DOUBLE_EQ(a.items[i].query.difficulty,
                     b.items[i].query.difficulty);
  }
}

TEST(QueryTraceTest, SegmentCountsPartitionTrace) {
  SyntheticTask task = MakeTextMatchingTask(3);
  PoissonTraffic traffic(40.0);
  ConstantDeadline deadline(100 * kMillisecond);
  TraceOptions options;
  QueryTrace trace = BuildTrace(task, traffic, deadline, 10 * kSecond, options);
  const auto counts = trace.SegmentCounts(kSecond);
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  EXPECT_EQ(total, trace.size());
  EXPECT_LE(counts.size(), 10u);
}

TEST(QueryTraceTest, EmptyTraceBasics) {
  QueryTrace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.duration(), 0);
}

}  // namespace
}  // namespace schemble
