#include <gtest/gtest.h>

#include <vector>

#include "baselines/des_policy.h"
#include "baselines/gating_policy.h"
#include "baselines/original_policy.h"
#include "baselines/static_policy.h"
#include "core/discrepancy.h"
#include "core/profiling.h"
#include "models/task_factory.h"

namespace schemble {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    task_ = std::make_unique<SyntheticTask>(MakeTextMatchingTask(3));
    history_ = task_->GenerateDataset(
        2500, DifficultyDistribution::UniformFull(), 5);
  }

  ServerView IdleView() const {
    ServerView view;
    view.now = 0;
    view.allow_rejection = true;
    for (int k = 0; k < task_->num_models(); ++k) {
      view.executors.push_back({k, k, 0, 0});
      view.model_exec_time.push_back(task_->profile(k).latency_us);
      view.model_available_at.push_back(0);
    }
    return view;
  }

  TracedQuery MakeTraced(int64_t id, double difficulty,
                         SimTime deadline) const {
    TracedQuery tq;
    tq.query = task_->GenerateQuery(id, difficulty);
    tq.arrival_time = 0;
    tq.deadline = deadline;
    return tq;
  }

  std::unique_ptr<SyntheticTask> task_;
  std::vector<Query> history_;
};

TEST_F(BaselinesTest, OriginalAssignsFullEnsemble) {
  OriginalPolicy policy;
  const auto decision =
      policy.OnArrival(MakeTraced(1, 0.2, 200 * kMillisecond), IdleView());
  EXPECT_EQ(decision.action, ArrivalDecision::Action::kAssign);
  EXPECT_EQ(decision.subset, 0b111u);
}

TEST_F(BaselinesTest, OriginalRejectsWhenOverloaded) {
  OriginalPolicy policy;
  ServerView view = IdleView();
  view.model_available_at = {0, 0, 500 * kMillisecond};
  const auto decision =
      policy.OnArrival(MakeTraced(2, 0.2, 100 * kMillisecond), view);
  EXPECT_EQ(decision.action, ArrivalDecision::Action::kReject);
}

TEST_F(BaselinesTest, OriginalNeverRejectsInForceMode) {
  OriginalPolicy policy;
  ServerView view = IdleView();
  view.allow_rejection = false;
  view.model_available_at = {0, 0, 500 * kMillisecond};
  const auto decision =
      policy.OnArrival(MakeTraced(3, 0.2, 100 * kMillisecond), view);
  EXPECT_EQ(decision.action, ArrivalDecision::Action::kAssign);
}

TEST_F(BaselinesTest, StaticDeploymentSearchRespectsMemoryBudget) {
  auto scorer = DiscrepancyScorer::Fit(*task_, history_);
  ASSERT_TRUE(scorer.ok());
  auto profile = AccuracyProfile::Build(*task_, history_,
                                        scorer.value().ScoreAll(history_));
  ASSERT_TRUE(profile.ok());
  const double budget = TotalMemoryMb(task_->profiles());
  const StaticDeployment deployment = ChooseStaticDeployment(
      task_->profiles(), profile.value(), budget, /*rate=*/40.0);
  EXPECT_NE(deployment.subset, 0u);
  double memory = 0.0;
  for (int k = 0; k < task_->num_models(); ++k) {
    if (deployment.subset & (SubsetMask{1} << k)) {
      EXPECT_GE(deployment.replicas[k], 1);
    } else {
      EXPECT_EQ(deployment.replicas[k], 0);
    }
    memory += deployment.replicas[k] * task_->profile(k).memory_mb;
  }
  EXPECT_LE(memory, budget + 1e-9);
}

TEST_F(BaselinesTest, StaticDeploymentDropsModelsUnderHighLoad) {
  auto scorer = DiscrepancyScorer::Fit(*task_, history_);
  auto profile = AccuracyProfile::Build(*task_, history_,
                                        scorer.value().ScoreAll(history_));
  ASSERT_TRUE(profile.ok());
  const double budget = TotalMemoryMb(task_->profiles());
  // Under extreme load the full ensemble cannot keep up; the search must
  // trade accuracy for throughput by dropping models / adding replicas.
  const StaticDeployment heavy = ChooseStaticDeployment(
      task_->profiles(), profile.value(), budget, /*rate=*/200.0);
  EXPECT_LT(SubsetSize(heavy.subset), task_->num_models());
}

TEST_F(BaselinesTest, StaticPolicyServesDeployedSubset) {
  StaticDeployment deployment;
  deployment.subset = 0b011;
  deployment.replicas = {1, 2, 0};
  StaticPolicy policy(deployment);
  const auto decision =
      policy.OnArrival(MakeTraced(4, 0.3, 200 * kMillisecond), IdleView());
  EXPECT_EQ(decision.action, ArrivalDecision::Action::kAssign);
  EXPECT_EQ(decision.subset, 0b011u);
}

TEST_F(BaselinesTest, DesTrainsAndSelectsNonEmptySubsets) {
  DesConfig config;
  auto des = DesPolicy::Train(*task_, history_, config);
  ASSERT_TRUE(des.ok());
  for (int i = 0; i < 50; ++i) {
    const Query q = task_->GenerateQuery(90000 + i, 0.4);
    const SubsetMask subset = des.value().SelectSubset(q);
    EXPECT_NE(subset, 0u);
    EXPECT_LE(subset, FullMask(task_->num_models()));
  }
}

TEST_F(BaselinesTest, DesTrainRejectsBadInput) {
  EXPECT_FALSE(DesPolicy::Train(*task_, {}, DesConfig{}).ok());
  DesConfig config;
  config.clusters = 0;
  EXPECT_FALSE(DesPolicy::Train(*task_, history_, config).ok());
}

TEST_F(BaselinesTest, DesPrefersTheStrongestModel) {
  // The paper's observation: with seed-noise preferences, regional
  // competences collapse to the marginal accuracies, so DES keeps selecting
  // the most accurate (and slowest) model.
  DesConfig config;
  config.competence_margin = 0.005;
  auto des = DesPolicy::Train(*task_, history_, config);
  ASSERT_TRUE(des.ok());
  int best_model_selections = 0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    const Query q = task_->GenerateQuery(91000 + i, 0.3);
    if (des.value().SelectSubset(q) & 0b100) ++best_model_selections;
  }
  EXPECT_GT(best_model_selections, n / 2);
}

TEST_F(BaselinesTest, GatingTrainsAndGatesSumToOne) {
  GatingConfig config;
  config.trainer.epochs = 10;
  auto gating = GatingPolicy::Train(*task_, history_, config);
  ASSERT_TRUE(gating.ok());
  const Query q = task_->GenerateQuery(92000, 0.4);
  const auto weights = gating.value().GateWeights(q);
  ASSERT_EQ(weights.size(), 3u);
  double sum = 0.0;
  for (double w : weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(BaselinesTest, GatingSelectsCheaperWorkThanDes) {
  // Table I's shape: Gating executes cheaper subsets than DES (which keeps
  // converging on the most accurate = slowest model), giving it the lower
  // deadline-miss rate of the two.
  GatingConfig config;
  config.trainer.epochs = 10;
  auto gating = GatingPolicy::Train(*task_, history_, config);
  ASSERT_TRUE(gating.ok());
  auto des = DesPolicy::Train(*task_, history_, DesConfig{});
  ASSERT_TRUE(des.ok());
  std::vector<SimTime> latency;
  for (int k = 0; k < task_->num_models(); ++k) {
    latency.push_back(task_->profile(k).latency_us);
  }
  auto subset_work = [&](SubsetMask subset) {
    SimTime work = 0;
    for (int k = 0; k < task_->num_models(); ++k) {
      if (subset & (SubsetMask{1} << k)) work += latency[k];
    }
    return static_cast<double>(work);
  };
  double gating_work = 0.0;
  double des_work = 0.0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    const Query q = task_->GenerateQuery(93000 + i, 0.3);
    const SubsetMask g = gating.value().SelectSubset(q, latency);
    EXPECT_NE(g, 0u);
    gating_work += subset_work(g);
    des_work += subset_work(des.value().SelectSubset(q));
  }
  EXPECT_LT(gating_work, des_work);
}

TEST_F(BaselinesTest, GatingTrainRejectsEmptyHistory) {
  EXPECT_FALSE(GatingPolicy::Train(*task_, {}, GatingConfig{}).ok());
}

}  // namespace
}  // namespace schemble
