#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace schemble {
namespace {

TEST(RunningStatTest, EmptyDefaults) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, SingleSample) {
  RunningStat s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStatTest, MeanVarianceMatchClosedForm) {
  RunningStat s;
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SampleSetTest, EmptyQuantileIsZero) {
  SampleSet s;
  EXPECT_EQ(s.Quantile(0.5), 0.0);
  EXPECT_TRUE(s.empty());
}

TEST(SampleSetTest, QuantilesExactOnSortedData) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 100.0);
  EXPECT_NEAR(s.Quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.Quantile(0.95), 95.05, 1e-9);
}

TEST(SampleSetTest, QuantileAfterLateInsertIsRecomputed) {
  SampleSet s;
  s.Add(1.0);
  s.Add(2.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 2.0);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 10.0);
}

TEST(SampleSetTest, MeanMinMax) {
  SampleSet s;
  s.Add(3.0);
  s.Add(-1.0);
  s.Add(4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(HistogramTest, BucketBoundaries) {
  Histogram h(0.0, 1.0, 10);
  EXPECT_EQ(h.BucketOf(0.0), 0);
  EXPECT_EQ(h.BucketOf(0.05), 0);
  EXPECT_EQ(h.BucketOf(0.1), 1);
  EXPECT_EQ(h.BucketOf(0.95), 9);
  EXPECT_EQ(h.BucketOf(1.0), 9);   // clamped
  EXPECT_EQ(h.BucketOf(-5.0), 0);  // clamped
  EXPECT_EQ(h.BucketOf(5.0), 9);   // clamped
}

TEST(HistogramTest, CountsAndFractions) {
  Histogram h(0.0, 10.0, 5);
  h.Add(1.0);
  h.Add(1.5);
  h.Add(9.0);
  EXPECT_EQ(h.total(), 3);
  EXPECT_EQ(h.count(0), 2);
  EXPECT_EQ(h.count(4), 1);
  EXPECT_DOUBLE_EQ(h.Fraction(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.Fraction(1), 0.0);
}

TEST(HistogramTest, BucketGeometry) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.BucketLow(1), 0.25);
  EXPECT_DOUBLE_EQ(h.BucketHigh(1), 0.5);
  EXPECT_DOUBLE_EQ(h.BucketCenter(1), 0.375);
}

TEST(PearsonTest, PerfectPositiveAndNegative) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {2, 4, 6, 8};
  std::vector<double> c = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
}

TEST(PearsonTest, ZeroVarianceGivesZero) {
  std::vector<double> a = {1, 1, 1};
  std::vector<double> b = {1, 2, 3};
  EXPECT_EQ(PearsonCorrelation(a, b), 0.0);
}

TEST(PearsonTest, UncorrelatedNearZero) {
  std::vector<double> a;
  std::vector<double> b;
  // Deterministic "independent" pattern.
  for (int i = 0; i < 1000; ++i) {
    a.push_back(std::sin(i * 0.7));
    b.push_back(std::cos(i * 1.3));
  }
  EXPECT_LT(std::fabs(PearsonCorrelation(a, b)), 0.1);
}

TEST(SpearmanTest, MonotoneNonlinearIsOne) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {1, 8, 27, 64, 125};
  EXPECT_NEAR(SpearmanCorrelation(a, b), 1.0, 1e-12);
}

TEST(SpearmanTest, HandlesTies) {
  std::vector<double> a = {1, 2, 2, 3};
  std::vector<double> b = {1, 2, 2, 3};
  EXPECT_NEAR(SpearmanCorrelation(a, b), 1.0, 1e-12);
}

}  // namespace
}  // namespace schemble
