#include "common/table.h"

#include <gtest/gtest.h>

#include <string>

namespace schemble {
namespace {

TEST(TextTableTest, FormatsHeaderAndRows) {
  TextTable t({"Method", "Acc", "DMR"});
  t.AddRow({"Original", "60.4", "39.6"});
  t.AddRow({"Schemble", "91.2", "6.1"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("Method"), std::string::npos);
  EXPECT_NE(s.find("Schemble"), std::string::npos);
  EXPECT_NE(s.find("91.2"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTableTest, ColumnsAlignToWidestCell) {
  TextTable t({"A", "B"});
  t.AddRow({"very-long-cell", "x"});
  const std::string s = t.ToString();
  // Each line should have equal length.
  size_t prev = std::string::npos;
  size_t start = 0;
  while (start < s.size()) {
    size_t end = s.find('\n', start);
    if (end == std::string::npos) break;
    const size_t len = end - start;
    if (prev != std::string::npos) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    start = end + 1;
  }
}

TEST(TextTableTest, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(3.0, 0), "3");
  EXPECT_EQ(TextTable::Num(-0.5, 1), "-0.5");
}

TEST(TextTableTest, EmptyTableStillRendersHeader) {
  TextTable t({"Only"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("Only"), std::string::npos);
}

}  // namespace
}  // namespace schemble
