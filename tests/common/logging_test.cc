#include "common/logging.h"

#include <gtest/gtest.h>

namespace schemble {
namespace {

TEST(LoggingTest, MinLevelRoundTrips) {
  const LogLevel original = MinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  EXPECT_EQ(MinLogLevel(), LogLevel::kError);
  SetMinLogLevel(original);
}

TEST(LoggingTest, InfoMessageDoesNotAbort) {
  SCHEMBLE_LOG(kDebug) << "debug message " << 42;
  SCHEMBLE_LOG(kInfo) << "info message";
  SCHEMBLE_LOG(kWarning) << "warning message";
  SCHEMBLE_LOG(kError) << "error message";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ SCHEMBLE_CHECK(1 == 2) << "impossible"; },
               "Check failed: 1 == 2");
}

TEST(LoggingDeathTest, CheckComparatorsAbortWithMessage) {
  EXPECT_DEATH({ SCHEMBLE_CHECK_EQ(3, 4); }, "Check failed");
  EXPECT_DEATH({ SCHEMBLE_CHECK_LT(5, 5); }, "Check failed");
  EXPECT_DEATH({ SCHEMBLE_CHECK_GE(1, 2); }, "Check failed");
}

TEST(LoggingTest, CheckPassesSilently) {
  SCHEMBLE_CHECK(true);
  SCHEMBLE_CHECK_EQ(1, 1);
  SCHEMBLE_CHECK_NE(1, 2);
  SCHEMBLE_CHECK_LE(1, 1);
  SCHEMBLE_CHECK_GT(2, 1);
  SUCCEED();
}

}  // namespace
}  // namespace schemble
