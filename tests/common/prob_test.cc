#include "common/prob.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace schemble {
namespace {

double Sum(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

TEST(SoftmaxTest, SumsToOne) {
  std::vector<double> p = Softmax({1.0, 2.0, 3.0});
  EXPECT_NEAR(Sum(p), 1.0, 1e-12);
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[1], p[2]);
}

TEST(SoftmaxTest, StableForLargeLogits) {
  std::vector<double> p = Softmax({1000.0, 999.0});
  EXPECT_NEAR(Sum(p), 1.0, 1e-12);
  EXPECT_GT(p[0], p[1]);
  EXPECT_FALSE(std::isnan(p[0]));
}

TEST(SoftmaxTest, UniformForEqualLogits) {
  std::vector<double> p = Softmax({0.5, 0.5, 0.5, 0.5});
  for (double v : p) EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(SoftmaxTemperatureTest, HighTemperatureFlattens) {
  std::vector<double> sharp = SoftmaxWithTemperature({2.0, 0.0}, 0.5);
  std::vector<double> flat = SoftmaxWithTemperature({2.0, 0.0}, 4.0);
  EXPECT_GT(sharp[0], flat[0]);
  EXPECT_NEAR(Sum(flat), 1.0, 1e-12);
}

TEST(SoftmaxTemperatureTest, TemperatureOneMatchesSoftmax) {
  std::vector<double> logits = {0.3, -1.2, 2.0};
  std::vector<double> a = Softmax(logits);
  std::vector<double> b = SoftmaxWithTemperature(logits, 1.0);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(NormalizeTest, ScalesToOne) {
  std::vector<double> p = {2.0, 2.0, 4.0};
  NormalizeInPlace(p);
  EXPECT_NEAR(p[0], 0.25, 1e-12);
  EXPECT_NEAR(p[2], 0.5, 1e-12);
}

TEST(NormalizeTest, ZeroVectorBecomesUniform) {
  std::vector<double> p = {0.0, 0.0};
  NormalizeInPlace(p);
  EXPECT_NEAR(p[0], 0.5, 1e-12);
}

TEST(EntropyTest, UniformIsMaximal) {
  const double uniform = Entropy({0.25, 0.25, 0.25, 0.25});
  const double peaked = Entropy({0.97, 0.01, 0.01, 0.01});
  EXPECT_NEAR(uniform, std::log(4.0), 1e-12);
  EXPECT_LT(peaked, uniform);
}

TEST(EntropyTest, PointMassIsZero) {
  EXPECT_NEAR(Entropy({1.0, 0.0, 0.0}), 0.0, 1e-9);
}

TEST(KlTest, ZeroForIdenticalDistributions) {
  std::vector<double> p = {0.2, 0.3, 0.5};
  EXPECT_NEAR(KlDivergence(p, p), 0.0, 1e-9);
}

TEST(KlTest, PositiveAndAsymmetric) {
  std::vector<double> p = {0.9, 0.1};
  std::vector<double> q = {0.5, 0.5};
  EXPECT_GT(KlDivergence(p, q), 0.0);
  EXPECT_NE(KlDivergence(p, q), KlDivergence(q, p));
}

TEST(SymmetricKlTest, IsSymmetric) {
  std::vector<double> p = {0.7, 0.3};
  std::vector<double> q = {0.4, 0.6};
  EXPECT_NEAR(SymmetricKlDivergence(p, q), SymmetricKlDivergence(q, p), 1e-12);
}

TEST(JsTest, BoundedByLn2) {
  std::vector<double> p = {1.0, 0.0};
  std::vector<double> q = {0.0, 1.0};
  const double js = JsDivergence(p, q);
  EXPECT_NEAR(js, std::log(2.0), 1e-6);
  EXPECT_LE(js, std::log(2.0) + 1e-9);
}

TEST(JsTest, SymmetricAndZeroOnEqual) {
  std::vector<double> p = {0.6, 0.4};
  std::vector<double> q = {0.3, 0.7};
  EXPECT_NEAR(JsDivergence(p, q), JsDivergence(q, p), 1e-12);
  EXPECT_NEAR(JsDivergence(p, p), 0.0, 1e-9);
}

TEST(JsTest, MonotoneInSeparation) {
  std::vector<double> base = {0.5, 0.5};
  EXPECT_LT(JsDivergence(base, {0.6, 0.4}), JsDivergence(base, {0.9, 0.1}));
}

TEST(EuclideanTest, KnownDistance) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({1.0}, {1.0}), 0.0);
}

TEST(ArgmaxTest, FindsMaxAndBreaksTiesLow) {
  EXPECT_EQ(Argmax({0.1, 0.8, 0.1}), 1);
  EXPECT_EQ(Argmax({0.5, 0.5}), 0);
  EXPECT_EQ(Argmax({-3.0, -1.0, -2.0}), 1);
}

}  // namespace
}  // namespace schemble
