#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace schemble {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(3.0, 5.5);
    EXPECT_GE(x, 3.0);
    EXPECT_LT(x, 5.5);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, ExponentialIsPositive) {
  Rng rng(18);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.Exponential(0.5), 0.0);
}

TEST(RngTest, GammaMomentsMatch) {
  Rng rng(19);
  const double shape = 3.0;
  const double scale = 2.0;
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gamma(shape, scale);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, shape * scale, 0.1);
  EXPECT_NEAR(var, shape * scale * scale, 0.5);
}

TEST(RngTest, GammaWithShapeBelowOne) {
  Rng rng(21);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gamma(0.5, 1.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(3.5);
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const int x = rng.Poisson(100.0);
    EXPECT_GE(x, 0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(31);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(37);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(41);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, CategoricalZeroWeightNeverSampled) {
  Rng rng(43);
  std::vector<double> weights = {0.0, 1.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.Categorical(weights), 1);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(47);
  std::vector<int> perm = rng.Permutation(20);
  std::set<int> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 20u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 19);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(99);
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.NextU64() == child2.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(5);
  Rng b(5);
  Rng ca = a.Fork(7);
  Rng cb = b.Fork(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(ca.NextU64(), cb.NextU64());
}

TEST(HashSeedTest, StableAndNameSensitive) {
  EXPECT_EQ(HashSeed("traffic", 1), HashSeed("traffic", 1));
  EXPECT_NE(HashSeed("traffic", 1), HashSeed("traffic", 2));
  EXPECT_NE(HashSeed("traffic", 1), HashSeed("models", 1));
}

}  // namespace
}  // namespace schemble
