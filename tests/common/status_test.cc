#include "common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace schemble {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad ensemble size");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad ensemble size");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad ensemble size");
}

TEST(StatusTest, AllFactoriesMapToDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeNameTest, CoversAllCodes) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "UNIMPLEMENTED");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing model"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("plan"));
  EXPECT_EQ(r.value_or("fallback"), "plan");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("heavy payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "heavy payload");
}

TEST(ResultTest, MutableValueAccess) {
  Result<std::vector<int>> r(std::vector<int>{1, 2});
  r.value().push_back(3);
  EXPECT_EQ(r.value().size(), 3u);
}

}  // namespace
}  // namespace schemble
