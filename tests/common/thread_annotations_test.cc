// Functional tests for the annotated lock primitives
// (common/thread_annotations.h): Mutex owner tracking, TryLock, MutexLock
// Release/Acquire, CondVar hand-off, and opt-in contention statistics. The
// deliberate-violation death tests live in
// tests/runtime/lock_discipline_test.cc.

#include "common/thread_annotations.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace schemble {
namespace {

TEST(MutexTest, LockUnlockTracksOwnership) {
  Mutex mu{LockRank::kLeaf, "test.mu"};
  EXPECT_FALSE(mu.HeldByCurrentThread());
  mu.Lock();
  EXPECT_TRUE(mu.HeldByCurrentThread());
  mu.Unlock();
  EXPECT_FALSE(mu.HeldByCurrentThread());
}

TEST(MutexTest, TryLockAcquiresWhenFree) {
  Mutex mu{LockRank::kLeaf, "test.mu"};
  ASSERT_TRUE(mu.TryLock());
  EXPECT_TRUE(mu.HeldByCurrentThread());
  mu.Unlock();
}

TEST(MutexTest, TryLockFailsFromAnotherThreadWhileHeld) {
  Mutex mu{LockRank::kLeaf, "test.mu"};
  mu.Lock();
  std::thread other([&mu] {
    EXPECT_FALSE(mu.HeldByCurrentThread());
    if (mu.TryLock()) {
      ADD_FAILURE() << "TryLock succeeded while another thread held the lock";
      mu.Unlock();
    }
  });
  other.join();
  EXPECT_TRUE(mu.HeldByCurrentThread());
  mu.Unlock();
}

TEST(MutexTest, AssertHeldPassesWhileHolding) {
  Mutex mu{LockRank::kLeaf, "test.mu"};
  MutexLock lock(&mu);
  mu.AssertHeld();
}

TEST(MutexTest, StatsDisabledByDefault) {
  Mutex mu{LockRank::kLeaf, "test.mu"};
  for (int i = 0; i < 3; ++i) {
    MutexLock lock(&mu);
  }
  const Mutex::Stats stats = mu.stats();
  EXPECT_EQ(stats.acquisitions, 0);
  EXPECT_EQ(stats.held_ns, 0);
}

TEST(MutexTest, StatsCountAcquisitionsAndHeldTime) {
  Mutex mu(LockRank::kLeaf, "test.mu", Mutex::StatsMode::kEnabled);
  for (int i = 0; i < 5; ++i) {
    MutexLock lock(&mu);
  }
  const Mutex::Stats stats = mu.stats();
  EXPECT_EQ(stats.acquisitions, 5);
  EXPECT_GE(stats.held_ns, 0);
}

TEST(MutexLockTest, ReleaseAcquireRoundTrip) {
  Mutex mu{LockRank::kLeaf, "test.mu"};
  MutexLock lock(&mu);
  EXPECT_TRUE(mu.HeldByCurrentThread());
  lock.Release();
  EXPECT_FALSE(mu.HeldByCurrentThread());
  lock.Acquire();
  EXPECT_TRUE(mu.HeldByCurrentThread());
}

TEST(MutexLockTest, DestructionAfterReleaseIsANoOp) {
  Mutex mu{LockRank::kLeaf, "test.mu"};
  {
    MutexLock lock(&mu);
    lock.Release();
  }
  // The lock must be free: a fresh guard acquires without deadlock.
  MutexLock lock(&mu);
  EXPECT_TRUE(mu.HeldByCurrentThread());
}

struct Signal {
  Mutex mu{LockRank::kLeaf, "test.mu"};
  CondVar cv;
  bool ready SCHEMBLE_GUARDED_BY(mu) = false;
};

TEST(CondVarTest, WaitWakesOnNotify) {
  Signal s;
  std::thread producer([&s] {
    MutexLock lock(&s.mu);
    s.ready = true;
    s.cv.NotifyOne();
  });
  {
    MutexLock lock(&s.mu);
    while (!s.ready) s.cv.Wait(s.mu);
    EXPECT_TRUE(s.ready);
    // Ownership is restored after the wait returns.
    EXPECT_TRUE(s.mu.HeldByCurrentThread());
  }
  producer.join();
}

TEST(CondVarTest, WaitForTimesOutWithoutNotify) {
  Signal s;
  MutexLock lock(&s.mu);
  EXPECT_FALSE(s.cv.WaitFor(s.mu, std::chrono::milliseconds(1)));
  EXPECT_TRUE(s.mu.HeldByCurrentThread());
}

TEST(CondVarTest, WaitSuspendsOwnershipForTheProducer) {
  // While the consumer is parked in Wait, the producer must be able to take
  // the lock and see itself as the owner — i.e. ownership tracking follows
  // the real std::condition_variable hand-off.
  Signal s;
  bool producer_owned = false;
  std::thread producer([&s, &producer_owned] {
    MutexLock lock(&s.mu);
    producer_owned = s.mu.HeldByCurrentThread();
    s.ready = true;
    s.cv.NotifyOne();
  });
  {
    MutexLock lock(&s.mu);
    while (!s.ready) s.cv.Wait(s.mu);
  }
  producer.join();
  EXPECT_TRUE(producer_owned);
}

TEST(CondVarTest, WaitCountsAsAReacquisitionInStats) {
  // Lock (1), WaitFor suspends and resumes ownership (2), then the guard
  // unlocks: exactly two acquisitions, deterministically.
  Mutex mu(LockRank::kLeaf, "test.mu", Mutex::StatsMode::kEnabled);
  CondVar cv;
  {
    MutexLock lock(&mu);
    cv.WaitFor(mu, std::chrono::milliseconds(1));
  }
  EXPECT_EQ(mu.stats().acquisitions, 2);
}

struct Counter {
  Mutex mu{LockRank::kLeaf, "test.mu"};
  int value SCHEMBLE_GUARDED_BY(mu) = 0;
};

TEST(MutexTest, ContendedCountingIsExclusive) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 1000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&c.mu);
        ++c.value;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  MutexLock lock(&c.mu);
  EXPECT_EQ(c.value, kThreads * kIncrements);
}

}  // namespace
}  // namespace schemble
