#include "common/small_vector.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <type_traits>

namespace schemble {
namespace {

using IntVec = SmallVector<int64_t, 4>;

// Whole-object copies must stay memcpy-cheap: the DP scheduler relies on
// this to keep solutions in a flat arena.
static_assert(std::is_trivially_copyable_v<IntVec>);

TEST(SmallVectorTest, StartsEmpty) {
  IntVec v;
  EXPECT_EQ(v.size(), 0);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(IntVec::capacity(), 4);
}

TEST(SmallVectorTest, PushBackAndIndex) {
  IntVec v;
  v.push_back(7);
  v.push_back(11);
  ASSERT_EQ(v.size(), 2);
  EXPECT_FALSE(v.empty());
  EXPECT_EQ(v[0], 7);
  EXPECT_EQ(v[1], 11);
  EXPECT_EQ(v.front(), 7);
  EXPECT_EQ(v.back(), 11);
  v[1] = 13;
  EXPECT_EQ(v.back(), 13);
}

TEST(SmallVectorTest, InitializerList) {
  IntVec v = {1, 2, 3};
  ASSERT_EQ(v.size(), 3);
  EXPECT_EQ(v[2], 3);
}

TEST(SmallVectorTest, PopBackAndClear) {
  IntVec v = {1, 2, 3};
  v.pop_back();
  EXPECT_EQ(v.size(), 2);
  EXPECT_EQ(v.back(), 2);
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(SmallVectorTest, ResizeGrowsWithFillAndShrinks) {
  IntVec v = {5};
  v.resize(3, 9);
  ASSERT_EQ(v.size(), 3);
  EXPECT_EQ(v[0], 5);
  EXPECT_EQ(v[1], 9);
  EXPECT_EQ(v[2], 9);
  v.resize(1);
  ASSERT_EQ(v.size(), 1);
  EXPECT_EQ(v[0], 5);
  // Default fill value is T{}.
  v.resize(2);
  EXPECT_EQ(v[1], 0);
}

TEST(SmallVectorTest, CopyIsIndependent) {
  IntVec a = {1, 2};
  IntVec b = a;
  b[0] = 42;
  b.push_back(3);
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(a.size(), 2);
  EXPECT_EQ(b.size(), 3);
}

TEST(SmallVectorTest, Equality) {
  IntVec a = {1, 2};
  IntVec b = {1, 2};
  IntVec c = {1, 3};
  IntVec d = {1};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

TEST(SmallVectorTest, IterationAndData) {
  IntVec v = {1, 2, 3, 4};
  EXPECT_EQ(std::accumulate(v.begin(), v.end(), int64_t{0}), 10);
  const IntVec& cv = v;
  EXPECT_EQ(std::accumulate(cv.begin(), cv.end(), int64_t{0}), 10);
  EXPECT_EQ(v.data()[3], 4);
}

TEST(SmallVectorTest, FullToCapacity) {
  IntVec v;
  for (int i = 0; i < IntVec::capacity(); ++i) v.push_back(i);
  EXPECT_EQ(v.size(), IntVec::capacity());
  EXPECT_EQ(v.back(), 3);
}

#if GTEST_HAS_DEATH_TEST
TEST(SmallVectorDeathTest, ResizeBeyondCapacityChecks) {
  IntVec v;
  EXPECT_DEATH(v.resize(IntVec::capacity() + 1), "Check failed");
}
#endif

}  // namespace
}  // namespace schemble
