// Unit tests for the lock-order graph and the per-thread held-lock stack
// (common/lock_order.h). Everything here drives PRIVATE LockOrderGraph
// instances — the process-global graph accumulates edges from all runtime
// activity in this test binary, so asserting on its contents would be
// order-dependent. The end-to-end validator behaviour (CHECK-failure on a
// real inversion through Mutex::Lock) lives in
// tests/runtime/lock_order_validator_test.cc as death tests.

#include "common/lock_order.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "common/thread_annotations.h"

namespace schemble {
namespace lock_order {
namespace {

Site TestSite(const char* name) { return Site{name, "lock_order_test.cc", 1}; }

TEST(LockOrderGraphTest, RecordsEdgeAndReportsIt) {
  LockOrderGraph graph;
  EXPECT_FALSE(graph.HasEdge(LockRank::kDomain, LockRank::kInbox));
  EXPECT_TRUE(graph.RecordEdge(LockRank::kDomain, TestSite("domain"),
                               LockRank::kInbox, TestSite("inbox"), nullptr));
  EXPECT_TRUE(graph.HasEdge(LockRank::kDomain, LockRank::kInbox));
  // Only the witnessed direction exists.
  EXPECT_FALSE(graph.HasEdge(LockRank::kInbox, LockRank::kDomain));
}

TEST(LockOrderGraphTest, DuplicateEdgeIsConsistent) {
  LockOrderGraph graph;
  ASSERT_TRUE(graph.RecordEdge(LockRank::kDomain, TestSite("domain"),
                               LockRank::kClock, TestSite("clock"), nullptr));
  EXPECT_TRUE(graph.RecordEdge(LockRank::kDomain, TestSite("domain2"),
                               LockRank::kClock, TestSite("clock2"), nullptr));
}

TEST(LockOrderGraphTest, SameRankNestingIsRefused) {
  LockOrderGraph graph;
  std::string violation;
  EXPECT_FALSE(graph.RecordEdge(LockRank::kLeaf, TestSite("leaf_a"),
                                LockRank::kLeaf, TestSite("leaf_b"),
                                &violation));
  EXPECT_NE(violation.find("same-rank"), std::string::npos) << violation;
  EXPECT_NE(violation.find("leaf_a"), std::string::npos) << violation;
  EXPECT_NE(violation.find("leaf_b"), std::string::npos) << violation;
  // A refused edge is not recorded.
  EXPECT_FALSE(graph.HasEdge(LockRank::kLeaf, LockRank::kLeaf));
}

TEST(LockOrderGraphTest, DirectInversionIsRefusedWithBothSites) {
  LockOrderGraph graph;
  ASSERT_TRUE(graph.RecordEdge(LockRank::kDomain, TestSite("domain_first"),
                               LockRank::kDone, TestSite("done_second"),
                               nullptr));
  std::string violation;
  EXPECT_FALSE(graph.RecordEdge(LockRank::kDone, TestSite("done_held"),
                                LockRank::kDomain, TestSite("domain_blocked"),
                                &violation));
  // The report names the current nesting AND the previously witnessed
  // inverse edge, so both sides of the cycle are actionable.
  EXPECT_NE(violation.find("inversion"), std::string::npos) << violation;
  EXPECT_NE(violation.find("done_held"), std::string::npos) << violation;
  EXPECT_NE(violation.find("domain_blocked"), std::string::npos) << violation;
  EXPECT_NE(violation.find("domain_first"), std::string::npos) << violation;
  EXPECT_NE(violation.find("done_second"), std::string::npos) << violation;
}

TEST(LockOrderGraphTest, TransitiveCycleIsRefusedWithEveryHop) {
  LockOrderGraph graph;
  // kDomain -> kInbox -> kClock recorded by two independent "threads";
  // closing kClock -> kDomain must walk the whole witnessed path.
  ASSERT_TRUE(graph.RecordEdge(LockRank::kDomain, TestSite("hop1_held"),
                               LockRank::kInbox, TestSite("hop1_acq"),
                               nullptr));
  ASSERT_TRUE(graph.RecordEdge(LockRank::kInbox, TestSite("hop2_held"),
                               LockRank::kClock, TestSite("hop2_acq"),
                               nullptr));
  std::string violation;
  EXPECT_FALSE(graph.RecordEdge(LockRank::kClock, TestSite("closer_held"),
                                LockRank::kDomain, TestSite("closer_acq"),
                                &violation));
  EXPECT_NE(violation.find("kDomain -> kInbox"), std::string::npos)
      << violation;
  EXPECT_NE(violation.find("kInbox -> kClock"), std::string::npos)
      << violation;
  EXPECT_NE(violation.find("hop1_held"), std::string::npos) << violation;
  EXPECT_NE(violation.find("hop2_acq"), std::string::npos) << violation;
}

TEST(LockOrderGraphTest, ResetDropsAllEdges) {
  LockOrderGraph graph;
  ASSERT_TRUE(graph.RecordEdge(LockRank::kDomain, TestSite("domain"),
                               LockRank::kDone, TestSite("done"), nullptr));
  graph.Reset();
  EXPECT_FALSE(graph.HasEdge(LockRank::kDomain, LockRank::kDone));
  // The previously refused inverse direction is legal again.
  EXPECT_TRUE(graph.RecordEdge(LockRank::kDone, TestSite("done"),
                               LockRank::kDomain, TestSite("domain"),
                               nullptr));
}

TEST(LockRankTest, NamesCoverEveryRank) {
  EXPECT_STREQ(LockRankName(LockRank::kServer), "kServer");
  EXPECT_STREQ(LockRankName(LockRank::kDomain), "kDomain");
  EXPECT_STREQ(LockRankName(LockRank::kInbox), "kInbox");
  EXPECT_STREQ(LockRankName(LockRank::kExecutorQueue), "kExecutorQueue");
  EXPECT_STREQ(LockRankName(LockRank::kClock), "kClock");
  EXPECT_STREQ(LockRankName(LockRank::kDone), "kDone");
  EXPECT_STREQ(LockRankName(LockRank::kLeaf), "kLeaf");
}

#if SCHEMBLE_LOCK_ORDER_CHECKS

// The held-lock stack is per-thread bookkeeping behind the validator; these
// tests exercise it through the real Mutex hooks. Nested acquisitions below
// follow the real rank table (kDomain before kDone) so the edges they record
// in the global graph are the ones the runtime itself establishes.

TEST(HeldLockStackTest, LockAndUnlockTrackDepth) {
  Mutex mu{LockRank::kLeaf, "heldstack.single"};
  EXPECT_EQ(HeldLockCount(), 0);
  {
    MutexLock lock(&mu);
    EXPECT_EQ(HeldLockCount(), 1);
  }
  EXPECT_EQ(HeldLockCount(), 0);
}

TEST(HeldLockStackTest, TryLockJoinsTheHeldStack) {
  // TryLock is order-EXEMPT but its lock still joins the held set: blocking
  // acquisitions made under it must be validated like any other.
  Mutex mu{LockRank::kDomain, "heldstack.trylock"};
  // Plain if/else (not ASSERT_TRUE) so the clang try-acquire analysis can
  // see the success branch.
  if (mu.TryLock()) {
    EXPECT_EQ(HeldLockCount(), 1);
    mu.Unlock();
  } else {
    ADD_FAILURE() << "uncontended TryLock failed";
  }
  EXPECT_EQ(HeldLockCount(), 0);
}

TEST(HeldLockStackTest, NestedAcquisitionsStack) {
  Mutex outer{LockRank::kDomain, "heldstack.outer"};
  Mutex inner{LockRank::kDone, "heldstack.inner"};
  MutexLock outer_lock(&outer);
  EXPECT_EQ(HeldLockCount(), 1);
  {
    MutexLock inner_lock(&inner);
    EXPECT_EQ(HeldLockCount(), 2);
  }
  EXPECT_EQ(HeldLockCount(), 1);
}

TEST(HeldLockStackTest, OutOfOrderReleaseRemovesFromTheMiddle) {
  // MutexLock::Release on the OUTER guard while the inner lock is still
  // held: legal, and the stack must remove the middle entry, not the top.
  Mutex outer{LockRank::kDomain, "heldstack.release_outer"};
  Mutex inner{LockRank::kDone, "heldstack.release_inner"};
  MutexLock outer_lock(&outer);
  MutexLock inner_lock(&inner);
  EXPECT_EQ(HeldLockCount(), 2);
  outer_lock.Release();
  EXPECT_EQ(HeldLockCount(), 1);
  inner_lock.Release();
  EXPECT_EQ(HeldLockCount(), 0);
}

TEST(HeldLockStackTest, StackIsPerThread) {
  Mutex mu{LockRank::kLeaf, "heldstack.cross_thread"};
  MutexLock lock(&mu);
  int other_thread_depth = -1;
  std::thread observer(
      [&other_thread_depth] { other_thread_depth = HeldLockCount(); });
  observer.join();
  EXPECT_EQ(other_thread_depth, 0);
  EXPECT_EQ(HeldLockCount(), 1);
}

#else  // !SCHEMBLE_LOCK_ORDER_CHECKS

TEST(HeldLockStackTest, HooksCompiledOutInThisBuild) {
  GTEST_SKIP() << "lock-order validator compiled out "
                  "(release build without SCHEMBLE_LOCK_ORDER)";
}

#endif  // SCHEMBLE_LOCK_ORDER_CHECKS

}  // namespace
}  // namespace lock_order
}  // namespace schemble
