// Parameterized invariants of the synthetic-model substrate across all
// three applications and the full difficulty range.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "common/prob.h"
#include "models/task_factory.h"

namespace schemble {
namespace {

enum class Kind { kTm, kVc, kIr, kCifar };

SyntheticTask MakeTask(Kind kind) {
  switch (kind) {
    case Kind::kTm:
      return MakeTextMatchingTask(11);
    case Kind::kVc:
      return MakeVehicleCountingTask(11);
    case Kind::kIr:
      return MakeImageRetrievalTask(11);
    case Kind::kCifar:
      return MakeCifar100StyleTask(11);
  }
  return MakeTextMatchingTask(11);
}

std::string KindName(Kind kind) {
  switch (kind) {
    case Kind::kTm:
      return "TextMatching";
    case Kind::kVc:
      return "VehicleCounting";
    case Kind::kIr:
      return "ImageRetrieval";
    case Kind::kCifar:
      return "Cifar100";
  }
  return "?";
}

class TaskSweepTest
    : public ::testing::TestWithParam<std::tuple<Kind, double>> {};

TEST_P(TaskSweepTest, OutputsWellFormed) {
  const auto [kind, difficulty] = GetParam();
  SyntheticTask task = MakeTask(kind);
  for (int i = 0; i < 50; ++i) {
    const Query q = task.GenerateQuery(i, difficulty);
    EXPECT_EQ(q.features.size(),
              static_cast<size_t>(task.spec().feature_dim()));
    EXPECT_EQ(q.model_outputs.size(),
              static_cast<size_t>(task.num_models()));
    for (int k = 0; k < task.num_models(); ++k) {
      EXPECT_EQ(q.model_outputs[k].size(),
                static_cast<size_t>(task.output_dim()));
      for (double v : q.model_outputs[k]) EXPECT_FALSE(std::isnan(v));
      if (task.spec().type == TaskType::kClassification) {
        double sum = 0.0;
        for (double v : q.model_outputs[k]) {
          EXPECT_GE(v, 0.0);
          sum += v;
        }
        EXPECT_NEAR(sum, 1.0, 1e-9);
      }
    }
    EXPECT_EQ(q.ensemble_output.size(),
              static_cast<size_t>(task.output_dim()));
  }
}

TEST_P(TaskSweepTest, FullSubsetAlwaysMatchesEnsemble) {
  const auto [kind, difficulty] = GetParam();
  SyntheticTask task = MakeTask(kind);
  std::vector<int> all;
  for (int k = 0; k < task.num_models(); ++k) all.push_back(k);
  for (int i = 0; i < 30; ++i) {
    const Query q = task.GenerateQuery(100 + i, difficulty);
    const auto agg = task.AggregateSubset(q, all);
    EXPECT_NEAR(task.MatchScore(agg, q.ensemble_output), 1.0, 1e-9);
  }
}

TEST_P(TaskSweepTest, GenerationDeterministic) {
  const auto [kind, difficulty] = GetParam();
  SyntheticTask task_a = MakeTask(kind);
  SyntheticTask task_b = MakeTask(kind);
  const Query a = task_a.GenerateQuery(7, difficulty);
  const Query b = task_b.GenerateQuery(7, difficulty);
  for (int k = 0; k < task_a.num_models(); ++k) {
    for (size_t d = 0; d < a.model_outputs[k].size(); ++d) {
      EXPECT_DOUBLE_EQ(a.model_outputs[k][d], b.model_outputs[k][d]);
    }
  }
}

TEST_P(TaskSweepTest, MatchScoreBoundedAndReflexive) {
  const auto [kind, difficulty] = GetParam();
  SyntheticTask task = MakeTask(kind);
  for (int i = 0; i < 30; ++i) {
    const Query q = task.GenerateQuery(200 + i, difficulty);
    for (int k = 0; k < task.num_models(); ++k) {
      const double score =
          task.MatchScore(q.model_outputs[k], q.ensemble_output);
      EXPECT_GE(score, 0.0);
      EXPECT_LE(score, 1.0);
    }
    EXPECT_NEAR(task.MatchScore(q.ensemble_output, q.ensemble_output), 1.0,
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTasksAllDifficulties, TaskSweepTest,
    ::testing::Combine(::testing::Values(Kind::kTm, Kind::kVc, Kind::kIr,
                                         Kind::kCifar),
                       ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0)),
    [](const ::testing::TestParamInfo<std::tuple<Kind, double>>& param_info) {
      return KindName(std::get<0>(param_info.param)) + "h" +
             std::to_string(static_cast<int>(std::get<1>(param_info.param) * 100));
    });

// Agreement with the ensemble decreases with difficulty on every task.
class TaskAgreementTest : public ::testing::TestWithParam<Kind> {};

TEST_P(TaskAgreementTest, SingleModelAgreementDecreasesWithDifficulty) {
  SyntheticTask task = MakeTask(GetParam());
  double prev = 2.0;
  for (double h : {0.05, 0.5, 0.95}) {
    double agreement = 0.0;
    const int n = 600;
    for (int i = 0; i < n; ++i) {
      const Query q = task.GenerateQuery(1000 + i, h);
      agreement += task.MatchScore(q.model_outputs[0], q.ensemble_output);
    }
    agreement /= n;
    EXPECT_LT(agreement, prev + 0.02);
    prev = agreement;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTasks, TaskAgreementTest,
                         ::testing::Values(Kind::kTm, Kind::kVc, Kind::kIr,
                                           Kind::kCifar),
                         [](const ::testing::TestParamInfo<Kind>& param_info) {
                           return KindName(param_info.param);
                         });

}  // namespace
}  // namespace schemble
