#include "models/synthetic_task.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/prob.h"
#include "common/rng.h"
#include "models/task_factory.h"

namespace schemble {
namespace {

TEST(DifficultyDistributionTest, SamplesClippedToUnitInterval) {
  Rng rng(1);
  const DifficultyDistribution dists[] = {
      DifficultyDistribution::Realistic(),
      DifficultyDistribution::NormalWithMean(0.5, 0.4),
      DifficultyDistribution::GammaWithMean(0.4, 0.3),
      DifficultyDistribution::UniformFull(),
      DifficultyDistribution::Constant(0.7),
  };
  for (const auto& dist : dists) {
    for (int i = 0; i < 2000; ++i) {
      const double h = dist.Sample(rng);
      EXPECT_GE(h, 0.0);
      EXPECT_LE(h, 1.0);
    }
  }
}

TEST(DifficultyDistributionTest, RealisticIsMostlyEasy) {
  Rng rng(3);
  auto dist = DifficultyDistribution::Realistic();
  int easy = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (dist.Sample(rng) < 0.3) ++easy;
  }
  // Fig. 4a: a large majority of samples sit near zero difficulty.
  EXPECT_GT(easy, n * 6 / 10);
}

TEST(DifficultyDistributionTest, NormalMeanRespected) {
  Rng rng(5);
  auto dist = DifficultyDistribution::NormalWithMean(0.4, 0.03);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += dist.Sample(rng);
  EXPECT_NEAR(sum / n, 0.4, 0.01);
}

TEST(DifficultyDistributionTest, ConstantIsConstant) {
  Rng rng(7);
  auto dist = DifficultyDistribution::Constant(0.25);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(dist.Sample(rng), 0.25);
}

TEST(ModelProfileTest, CorrectProbabilityInterpolates) {
  ModelProfile p;
  p.base_accuracy = 0.9;
  p.hard_accuracy = 0.5;
  EXPECT_DOUBLE_EQ(p.CorrectProbability(0.0), 0.9);
  EXPECT_DOUBLE_EQ(p.CorrectProbability(1.0), 0.5);
  // Sigmoid transition centred near 0.55: monotone decreasing, flat at the
  // easy end, steep through the middle.
  EXPECT_GT(p.CorrectProbability(0.2), 0.85);
  EXPECT_LT(p.CorrectProbability(0.9), 0.56);
  for (double h = 0.0; h < 1.0; h += 0.1) {
    EXPECT_GE(p.CorrectProbability(h), p.CorrectProbability(h + 0.1));
  }
  EXPECT_DOUBLE_EQ(p.CorrectProbability(-1.0), 0.9);  // clamped
  EXPECT_DOUBLE_EQ(p.CorrectProbability(2.0), 0.5);   // clamped
}

TEST(ProfilesTest, PresetShapes) {
  EXPECT_EQ(TextMatchingProfiles().size(), 3u);
  EXPECT_EQ(VehicleCountingProfiles().size(), 3u);
  EXPECT_EQ(ImageRetrievalProfiles().size(), 2u);
  EXPECT_EQ(Cifar100StyleProfiles().size(), 6u);
  EXPECT_GT(TotalMemoryMb(TextMatchingProfiles()), 0.0);
}

TEST(SyntheticTaskTest, QueryGenerationIsDeterministic) {
  SyntheticTask task = MakeTextMatchingTask(7);
  const Query a = task.GenerateQuery(42, 0.3);
  const Query b = task.GenerateQuery(42, 0.3);
  EXPECT_EQ(a.true_label, b.true_label);
  ASSERT_EQ(a.features.size(), b.features.size());
  for (size_t i = 0; i < a.features.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.features[i], b.features[i]);
  }
  for (int k = 0; k < task.num_models(); ++k) {
    for (size_t i = 0; i < a.model_outputs[k].size(); ++i) {
      EXPECT_DOUBLE_EQ(a.model_outputs[k][i], b.model_outputs[k][i]);
    }
  }
}

TEST(SyntheticTaskTest, DifferentIdsDiffer) {
  SyntheticTask task = MakeTextMatchingTask(7);
  const Query a = task.GenerateQuery(1, 0.3);
  const Query b = task.GenerateQuery(2, 0.3);
  bool any_diff = false;
  for (size_t i = 0; i < a.features.size(); ++i) {
    any_diff |= a.features[i] != b.features[i];
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTaskTest, ClassificationOutputsAreDistributions) {
  SyntheticTask task = MakeTextMatchingTask(9);
  const Query q = task.GenerateQuery(5, 0.5);
  EXPECT_EQ(task.output_dim(), 2);
  for (int k = 0; k < task.num_models(); ++k) {
    double sum = 0.0;
    for (double v : q.model_outputs[k]) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_EQ(q.model_logits[k].size(), 2u);
  }
  double esum = 0.0;
  for (double v : q.ensemble_output) esum += v;
  EXPECT_NEAR(esum, 1.0, 1e-9);
}

TEST(SyntheticTaskTest, EasyQueriesYieldAgreement) {
  SyntheticTask task = MakeTextMatchingTask(11);
  int agree = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const Query q = task.GenerateQuery(i, 0.02);
    const int e = Argmax(q.ensemble_output);
    bool all_agree = true;
    for (int k = 0; k < task.num_models(); ++k) {
      all_agree &= Argmax(q.model_outputs[k]) == e;
    }
    if (all_agree) ++agree;
  }
  // On very easy queries nearly all base models match the ensemble (the
  // redundancy the paper measures: 78.3% of samples solvable by any model).
  EXPECT_GT(agree, n * 3 / 4);
}

TEST(SyntheticTaskTest, HardQueriesYieldDisagreement) {
  SyntheticTask task = MakeTextMatchingTask(13);
  int disagree = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const Query q = task.GenerateQuery(1000 + i, 0.95);
    const int first = Argmax(q.model_outputs[0]);
    bool all_same = true;
    for (int k = 1; k < task.num_models(); ++k) {
      all_same &= Argmax(q.model_outputs[k]) == first;
    }
    if (!all_same) ++disagree;
  }
  EXPECT_GT(disagree, n / 3);
}

TEST(SyntheticTaskTest, AccuracyVsTrueLabelMatchesProfileCurve) {
  SyntheticTask task = MakeTextMatchingTask(15);
  const double h = 0.4;
  for (int k = 0; k < task.num_models(); ++k) {
    int correct = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
      const Query q = task.GenerateQuery(10000 + i, h);
      if (Argmax(q.model_outputs[k]) == q.true_label) ++correct;
    }
    const double expected = task.profile(k).CorrectProbability(h);
    EXPECT_NEAR(static_cast<double>(correct) / n, expected, 0.03)
        << task.profile(k).name;
  }
}

TEST(SyntheticTaskTest, RegressionOutputsTrackTrueValue) {
  SyntheticTask task = MakeVehicleCountingTask(17);
  EXPECT_EQ(task.output_dim(), 1);
  double err_easy = 0.0;
  double err_hard = 0.0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    const Query qe = task.GenerateQuery(i, 0.05);
    const Query qh = task.GenerateQuery(n + i, 0.95);
    err_easy += std::fabs(qe.model_outputs[1][0] - qe.true_value);
    err_hard += std::fabs(qh.model_outputs[1][0] - qh.true_value);
  }
  EXPECT_LT(err_easy / n, err_hard / n);
}

TEST(SyntheticTaskTest, RegressionValuesNonNegative) {
  SyntheticTask task = MakeVehicleCountingTask(19);
  for (int i = 0; i < 500; ++i) {
    const Query q = task.GenerateQuery(i, 0.9);
    EXPECT_GE(q.true_value, 0.0);
    for (int k = 0; k < task.num_models(); ++k) {
      EXPECT_GE(q.model_outputs[k][0], 0.0);
    }
  }
}

TEST(SyntheticTaskTest, RetrievalShapesAndRelevantSet) {
  SyntheticTask task = MakeImageRetrievalTask(21);
  EXPECT_EQ(task.output_dim(), 16);
  const Query q = task.GenerateQuery(3, 0.2);
  EXPECT_EQ(q.relevant.size(), 4u);
  for (int c : q.relevant) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 16);
  }
  EXPECT_EQ(q.model_outputs[0].size(), 16u);
}

TEST(SyntheticTaskTest, RetrievalEasyQueriesScoreHighMap) {
  SyntheticTask task = MakeImageRetrievalTask(23);
  double ap_easy = 0.0;
  double ap_hard = 0.0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    const Query qe = task.GenerateQuery(i, 0.05);
    const Query qh = task.GenerateQuery(n + i, 0.95);
    ap_easy += task.TrueScore(qe.ensemble_output, qe);
    ap_hard += task.TrueScore(qh.ensemble_output, qh);
  }
  EXPECT_GT(ap_easy / n, 0.9);
  EXPECT_LT(ap_hard / n, ap_easy / n);
}

TEST(SyntheticTaskTest, AggregateSubsetOfAllEqualsEnsembleOutput) {
  SyntheticTask task = MakeTextMatchingTask(25);
  const Query q = task.GenerateQuery(77, 0.4);
  const std::vector<double> agg = task.AggregateSubset(q, {0, 1, 2});
  ASSERT_EQ(agg.size(), q.ensemble_output.size());
  for (size_t i = 0; i < agg.size(); ++i) {
    EXPECT_NEAR(agg[i], q.ensemble_output[i], 1e-12);
  }
}

TEST(SyntheticTaskTest, SingleModelSubsetEqualsModelOutput) {
  SyntheticTask task = MakeTextMatchingTask(27);
  const Query q = task.GenerateQuery(88, 0.4);
  const std::vector<double> agg = task.AggregateSubset(q, {1});
  for (size_t i = 0; i < agg.size(); ++i) {
    EXPECT_NEAR(agg[i], q.model_outputs[1][i], 1e-12);
  }
}

TEST(SyntheticTaskTest, MatchScoreClassification) {
  SyntheticTask task = MakeTextMatchingTask(29);
  EXPECT_DOUBLE_EQ(task.MatchScore({0.8, 0.2}, {0.6, 0.4}), 1.0);
  EXPECT_DOUBLE_EQ(task.MatchScore({0.2, 0.8}, {0.6, 0.4}), 0.0);
}

TEST(SyntheticTaskTest, MatchScoreRegressionTolerance) {
  SyntheticTask task = MakeVehicleCountingTask(31);
  EXPECT_DOUBLE_EQ(task.MatchScore({10.0}, {10.9}), 1.0);
  EXPECT_DOUBLE_EQ(task.MatchScore({10.0}, {11.5}), 0.0);
}

TEST(SyntheticTaskTest, EnsembleBeatsSingleModelOnTrueLabels) {
  SyntheticTask task = MakeTextMatchingTask(33);
  auto data = task.GenerateDataset(4000, DifficultyDistribution::UniformFull(),
                                   555);
  double ens = 0.0;
  std::vector<double> single(task.num_models(), 0.0);
  for (const Query& q : data) {
    ens += task.TrueScore(q.ensemble_output, q);
    for (int k = 0; k < task.num_models(); ++k) {
      single[k] += task.TrueScore(q.model_outputs[k], q);
    }
  }
  for (int k = 0; k < task.num_models(); ++k) {
    EXPECT_GT(ens, single[k]) << "ensemble should beat " << task.profile(k).name;
  }
}

TEST(SyntheticTaskTest, GenerateDatasetRespectsSizeAndIds) {
  SyntheticTask task = MakeTextMatchingTask(35);
  auto data = task.GenerateDataset(100, DifficultyDistribution::Realistic(),
                                   777, /*first_id=*/500);
  ASSERT_EQ(data.size(), 100u);
  EXPECT_EQ(data.front().id, 500);
  EXPECT_EQ(data.back().id, 599);
}

TEST(AveragePrecisionTest, PerfectRankingIsOne) {
  // Relevant items hold the top scores.
  EXPECT_DOUBLE_EQ(
      AveragePrecision({0.9, 0.8, 0.1, 0.0}, {0, 1}), 1.0);
}

TEST(AveragePrecisionTest, WorstRankingIsLow) {
  const double ap = AveragePrecision({0.0, 0.1, 0.8, 0.9}, {0, 1});
  // Relevant at ranks 3 and 4: AP = (1/3 + 2/4)/2.
  EXPECT_NEAR(ap, (1.0 / 3.0 + 0.5) / 2.0, 1e-12);
}

TEST(Cifar100TaskTest, HundredWayOutputs) {
  SyntheticTask task = MakeCifar100StyleTask(41);
  EXPECT_EQ(task.num_models(), 6);
  EXPECT_EQ(task.output_dim(), 100);
  const Query q = task.GenerateQuery(1, 0.3);
  EXPECT_EQ(q.model_outputs[0].size(), 100u);
  EXPECT_GE(q.true_label, 0);
  EXPECT_LT(q.true_label, 100);
}

TEST(Cifar100TaskTest, DifferentModelSeedsChangeErrors) {
  SyntheticTask a = MakeCifar100StyleTask(43, /*model_seed=*/1);
  SyntheticTask b = MakeCifar100StyleTask(43, /*model_seed=*/2);
  int diff = 0;
  for (int i = 0; i < 200; ++i) {
    const Query qa = a.GenerateQuery(i, 0.6);
    const Query qb = b.GenerateQuery(i, 0.6);
    if (Argmax(qa.model_outputs[0]) != Argmax(qb.model_outputs[0])) ++diff;
  }
  EXPECT_GT(diff, 10);
}

}  // namespace
}  // namespace schemble
