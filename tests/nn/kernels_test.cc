#include "nn/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/prob.h"
#include "common/rng.h"

namespace schemble {
namespace {

// The kernels promise BITWISE identity with the naive strictly-ordered
// scalar loops (the golden serving regression depends on it), so every
// comparison here is EXPECT_EQ on doubles, not EXPECT_NEAR.

std::vector<double> RandomVector(int n, Rng& rng) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.Normal();
  return v;
}

TEST(KernelsTest, DotMatchesNaiveLoopBitwise) {
  Rng rng(11);
  for (int n : {0, 1, 2, 3, 4, 5, 7, 8, 17, 64, 129}) {
    const std::vector<double> x = RandomVector(n, rng);
    const std::vector<double> y = RandomVector(n, rng);
    double expected = 0.0;
    for (int i = 0; i < n; ++i) expected += x[i] * y[i];
    EXPECT_EQ(kernels::Dot(x.data(), y.data(), n), expected) << "n=" << n;
  }
}

TEST(KernelsTest, AxpyMatchesNaiveLoopBitwise) {
  Rng rng(12);
  for (int n : {1, 3, 4, 9, 33}) {
    const std::vector<double> x = RandomVector(n, rng);
    std::vector<double> y = RandomVector(n, rng);
    std::vector<double> expected = y;
    const double a = rng.Normal();
    for (int i = 0; i < n; ++i) expected[i] += a * x[i];
    kernels::Axpy(a, x.data(), y.data(), n);
    EXPECT_EQ(y, expected) << "n=" << n;
  }
}

TEST(KernelsTest, GemvMatchesNaiveLoopBitwise) {
  Rng rng(13);
  const int rows = 5;
  const int cols = 7;
  const std::vector<double> a = RandomVector(rows * cols, rng);
  const std::vector<double> x = RandomVector(cols, rng);
  std::vector<double> y(rows);
  kernels::Gemv(a.data(), rows, cols, x.data(), y.data());
  for (int r = 0; r < rows; ++r) {
    double expected = 0.0;
    for (int c = 0; c < cols; ++c) expected += a[r * cols + c] * x[c];
    EXPECT_EQ(y[r], expected) << "row " << r;
  }
}

TEST(KernelsTest, GemvTransposedMatchesRowMajorAccumulation) {
  Rng rng(14);
  const int rows = 6;
  const int cols = 4;
  const std::vector<double> a = RandomVector(rows * cols, rng);
  const std::vector<double> x = RandomVector(rows, rng);
  std::vector<double> y(cols);
  kernels::GemvTransposed(a.data(), rows, cols, x.data(), y.data());
  // The contract pins the historical ApplyTransposed order: r-outer
  // accumulation, not c-outer dot products.
  std::vector<double> expected(cols, 0.0);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) expected[c] += a[r * cols + c] * x[r];
  }
  EXPECT_EQ(y, expected);
}

TEST(KernelsTest, SquaredDistanceMatchesNaiveLoopBitwise) {
  Rng rng(15);
  for (int n : {1, 4, 6, 13, 40}) {
    const std::vector<double> a = RandomVector(n, rng);
    const std::vector<double> b = RandomVector(n, rng);
    double expected = 0.0;
    for (int i = 0; i < n; ++i) {
      const double d = a[i] - b[i];
      expected += d * d;
    }
    EXPECT_EQ(kernels::SquaredDistance(a.data(), b.data(), n), expected)
        << "n=" << n;
  }
}

TEST(KernelsTest, MaskedSquaredDistancesMatchesMaskedScan) {
  Rng rng(16);
  const int dim = 9;
  const int num_rows = 7;
  const std::vector<double> rows = RandomVector(num_rows * dim, rng);
  const std::vector<double> point = RandomVector(dim, rng);
  const std::vector<bool> mask = {true, false, true, true, false,
                                  true, false, false, true};
  std::vector<int> obs;
  std::vector<double> point_obs;
  for (int d = 0; d < dim; ++d) {
    if (mask[d]) {
      obs.push_back(d);
      point_obs.push_back(point[d]);
    }
  }
  std::vector<double> out(num_rows);
  kernels::MaskedSquaredDistances(rows.data(), num_rows, dim, point_obs.data(),
                                  obs.data(), static_cast<int>(obs.size()),
                                  out.data());
  for (int r = 0; r < num_rows; ++r) {
    double expected = 0.0;
    for (int d = 0; d < dim; ++d) {
      if (!mask[d]) continue;
      const double diff = rows[r * dim + d] - point[d];
      expected += diff * diff;
    }
    EXPECT_EQ(out[r], expected) << "row " << r;
  }
}

TEST(KernelsTest, GatherAxpyMatchesNaiveGather) {
  Rng rng(17);
  const int dim = 11;
  const std::vector<double> row = RandomVector(dim, rng);
  const std::vector<int> idx = {0, 2, 3, 7, 10};
  const double a = rng.Normal();
  std::vector<double> acc = RandomVector(static_cast<int>(idx.size()), rng);
  std::vector<double> expected = acc;
  for (size_t t = 0; t < idx.size(); ++t) expected[t] += a * row[idx[t]];
  kernels::GatherAxpy(a, row.data(), idx.data(), static_cast<int>(idx.size()),
                      acc.data());
  EXPECT_EQ(acc, expected);
}

TEST(KernelsTest, MaxValueTakesFirstOnTies) {
  const std::vector<double> x = {1.0, 3.0, 3.0, 2.0};
  EXPECT_EQ(kernels::MaxValue(x.data(), 4), 3.0);
  EXPECT_EQ(kernels::MaxValue(x.data(), 1), 1.0);
}

TEST(KernelsTest, LogSumExpIsStableForLargeInputs) {
  const std::vector<double> x = {1000.0, 1000.0};
  EXPECT_NEAR(kernels::LogSumExp(x.data(), 2), 1000.0 + std::log(2.0), 1e-12);
}

TEST(KernelsTest, SoftmaxInPlaceMatchesProbSoftmaxBitwise) {
  Rng rng(18);
  for (int n : {1, 2, 5, 16}) {
    std::vector<double> logits = RandomVector(n, rng);
    for (double& v : logits) v *= 5.0;
    const std::vector<double> expected = Softmax(logits);
    kernels::SoftmaxInPlace(logits.data(), n);
    EXPECT_EQ(logits, expected) << "n=" << n;
  }
}

}  // namespace
}  // namespace schemble
