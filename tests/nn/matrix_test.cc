#include "nn/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace schemble {
namespace {

TEST(MatrixTest, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  m.Fill(0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(MatrixTest, ApplyMatchesHandComputation) {
  Matrix m(2, 3);
  // [1 2 3; 4 5 6] * [1 1 1]^T = [6, 15].
  int v = 1;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) m.at(r, c) = v++;
  }
  std::vector<double> y = m.Apply({1.0, 1.0, 1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(MatrixTest, ApplyTransposedMatchesHandComputation) {
  Matrix m(2, 3);
  int v = 1;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) m.at(r, c) = v++;
  }
  // [1 2 3; 4 5 6]^T * [1 2]^T = [9, 12, 15].
  std::vector<double> y = m.ApplyTransposed({1.0, 2.0});
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 9.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
  EXPECT_DOUBLE_EQ(y[2], 15.0);
}

TEST(MatrixTest, AddOuterProduct) {
  Matrix m(2, 2);
  m.AddOuterProduct({1.0, 2.0}, {3.0, 4.0}, 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 12.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 16.0);
}

TEST(MatrixTest, AddScaled) {
  Matrix a(1, 2, 1.0);
  Matrix b(1, 2, 3.0);
  a.AddScaled(b, -0.5);
  EXPECT_DOUBLE_EQ(a.at(0, 0), -0.5);
}

TEST(MatrixTest, NormIsFrobenius) {
  Matrix m(1, 2);
  m.at(0, 0) = 3.0;
  m.at(0, 1) = 4.0;
  EXPECT_DOUBLE_EQ(m.Norm(), 5.0);
}

TEST(MatrixTest, RandnHasRequestedSpread) {
  Rng rng(5);
  Matrix m = Matrix::Randn(50, 50, 0.1, rng);
  double sq = 0.0;
  for (size_t i = 0; i < m.size(); ++i) sq += m.data()[i] * m.data()[i];
  const double stddev = std::sqrt(sq / static_cast<double>(m.size()));
  EXPECT_NEAR(stddev, 0.1, 0.01);
}

}  // namespace
}  // namespace schemble
