// Parameterized gradient checks: analytic backprop must match finite
// differences for every activation and a range of network shapes.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "nn/mlp.h"

namespace schemble {
namespace {

std::string ActName(Activation act) {
  switch (act) {
    case Activation::kIdentity:
      return "Identity";
    case Activation::kRelu:
      return "Relu";
    case Activation::kTanh:
      return "Tanh";
    case Activation::kSigmoid:
      return "Sigmoid";
  }
  return "?";
}

class GradientCheckTest
    : public ::testing::TestWithParam<std::tuple<Activation, int>> {};

TEST_P(GradientCheckTest, BackpropMatchesFiniteDifferences) {
  const auto [activation, depth] = GetParam();
  std::vector<int> layers = {3};
  for (int d = 0; d < depth; ++d) layers.push_back(4);
  layers.push_back(2);
  Mlp mlp(MlpConfig{layers, activation}, 17 + depth);

  Rng rng(23);
  std::vector<double> x = {rng.Normal(), rng.Normal(), rng.Normal()};
  std::vector<double> target = {rng.Normal(), rng.Normal()};

  MlpForwardCache cache;
  MlpGradients grads = mlp.InitGradients();
  std::vector<double> grad_out;
  const std::vector<double> out = mlp.ForwardCached(x, &cache);
  MseLossGrad(out, target, &grad_out);
  mlp.Backward(cache, grad_out, &grads);

  const double eps = 1e-6;
  auto loss_at = [&](Mlp& net) {
    std::vector<double> g;
    return MseLossGrad(net.Forward(x), target, &g);
  };
  // ReLU kinks make finite differences unreliable exactly at zero; the
  // random inputs keep preactivations away from it with overwhelming
  // probability, and the tolerance absorbs the rest.
  const double tolerance = activation == Activation::kRelu ? 1e-4 : 1e-5;
  for (int l = 0; l < mlp.num_layers(); ++l) {
    Matrix& w = mlp.mutable_weight(l);
    for (int r = 0; r < w.rows(); ++r) {
      for (int c = 0; c < w.cols(); ++c) {
        const double saved = w.at(r, c);
        w.at(r, c) = saved + eps;
        const double lp = loss_at(mlp);
        w.at(r, c) = saved - eps;
        const double lm = loss_at(mlp);
        w.at(r, c) = saved;
        EXPECT_NEAR(grads.weight_grads[l].at(r, c), (lp - lm) / (2 * eps),
                    tolerance)
            << ActName(activation) << " depth " << depth << " layer " << l;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ActivationsDepths, GradientCheckTest,
    ::testing::Combine(::testing::Values(Activation::kIdentity,
                                         Activation::kRelu,
                                         Activation::kTanh,
                                         Activation::kSigmoid),
                       ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<std::tuple<Activation, int>>& param_info) {
      return ActName(std::get<0>(param_info.param)) + "d" +
             std::to_string(std::get<1>(param_info.param));
    });

class CrossEntropyGradientTest : public ::testing::TestWithParam<int> {};

TEST_P(CrossEntropyGradientTest, SoftmaxCrossEntropyGradientChecks) {
  const int classes = GetParam();
  Rng rng(31 + classes);
  std::vector<double> logits(classes);
  for (double& v : logits) v = rng.Normal(0.0, 2.0);
  std::vector<double> target(classes, 0.0);
  target[static_cast<int>(rng.UniformInt(0, classes - 1))] = 1.0;

  std::vector<double> grad;
  SoftmaxCrossEntropyLossGrad(logits, target, &grad);
  const double eps = 1e-6;
  for (int i = 0; i < classes; ++i) {
    std::vector<double> g;
    std::vector<double> lp = logits;
    lp[i] += eps;
    std::vector<double> lm = logits;
    lm[i] -= eps;
    const double numeric = (SoftmaxCrossEntropyLossGrad(lp, target, &g) -
                            SoftmaxCrossEntropyLossGrad(lm, target, &g)) /
                           (2 * eps);
    EXPECT_NEAR(grad[i], numeric, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(ClassCounts, CrossEntropyGradientTest,
                         ::testing::Values(2, 3, 10, 100));

}  // namespace
}  // namespace schemble
