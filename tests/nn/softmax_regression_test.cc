#include "nn/softmax_regression.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace schemble {
namespace {

TEST(SoftmaxRegressionTest, ShapeAccessors) {
  SoftmaxRegression model(4, 3, 1);
  EXPECT_EQ(model.input_dim(), 4);
  EXPECT_EQ(model.classes(), 3);
}

TEST(SoftmaxRegressionTest, ProbabilitiesSumToOne) {
  SoftmaxRegression model(2, 3, 2);
  const std::vector<double> p = model.PredictProba({0.5, -0.5});
  double sum = 0.0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(SoftmaxRegressionTest, LearnsLinearlySeparableClasses) {
  Rng data_rng(7);
  std::vector<std::vector<double>> inputs;
  std::vector<int> labels;
  const double centers[3][2] = {{-2.0, 0.0}, {2.0, 0.0}, {0.0, 3.0}};
  for (int i = 0; i < 600; ++i) {
    const int label = i % 3;
    inputs.push_back({data_rng.Normal(centers[label][0], 0.4),
                      data_rng.Normal(centers[label][1], 0.4)});
    labels.push_back(label);
  }
  SoftmaxRegression model(2, 3, 11);
  TrainerOptions options;
  options.epochs = 60;
  Rng rng(13);
  model.Train(inputs, labels, options, rng);
  int correct = 0;
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (model.Predict(inputs[i]) == labels[i]) ++correct;
  }
  EXPECT_GT(correct, 580);
}

TEST(SoftmaxRegressionTest, DeterministicForSeed) {
  SoftmaxRegression a(3, 2, 99);
  SoftmaxRegression b(3, 2, 99);
  const std::vector<double> x = {0.1, 0.2, 0.3};
  EXPECT_EQ(a.Predict(x), b.Predict(x));
  const auto pa = a.PredictProba(x);
  const auto pb = b.PredictProba(x);
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

}  // namespace
}  // namespace schemble
