#include "nn/mlp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/prob.h"
#include "common/rng.h"

namespace schemble {
namespace {

TEST(ActivationTest, Values) {
  EXPECT_DOUBLE_EQ(ApplyActivation(Activation::kIdentity, -2.0), -2.0);
  EXPECT_DOUBLE_EQ(ApplyActivation(Activation::kRelu, -2.0), 0.0);
  EXPECT_DOUBLE_EQ(ApplyActivation(Activation::kRelu, 2.0), 2.0);
  EXPECT_NEAR(ApplyActivation(Activation::kTanh, 0.5), std::tanh(0.5), 1e-12);
  EXPECT_NEAR(ApplyActivation(Activation::kSigmoid, 0.0), 0.5, 1e-12);
}

TEST(ActivationTest, GradientsFromOutput) {
  EXPECT_DOUBLE_EQ(ActivationGradFromOutput(Activation::kIdentity, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(ActivationGradFromOutput(Activation::kRelu, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(ActivationGradFromOutput(Activation::kRelu, 0.0), 0.0);
  // sigmoid'(z) = a(1-a) at a = 0.5 -> 0.25.
  EXPECT_DOUBLE_EQ(ActivationGradFromOutput(Activation::kSigmoid, 0.5), 0.25);
  // tanh'(z) = 1 - a^2.
  EXPECT_DOUBLE_EQ(ActivationGradFromOutput(Activation::kTanh, 0.5), 0.75);
}

TEST(MlpTest, ShapesAndParameterCount) {
  Mlp mlp(MlpConfig{{4, 8, 3}, Activation::kRelu}, 1);
  EXPECT_EQ(mlp.input_dim(), 4);
  EXPECT_EQ(mlp.output_dim(), 3);
  EXPECT_EQ(mlp.num_layers(), 2);
  // 4*8 + 8 + 8*3 + 3 = 67.
  EXPECT_EQ(mlp.ParameterCount(), 67u);
}

TEST(MlpTest, ForwardDeterministicForSeed) {
  Mlp a(MlpConfig{{3, 5, 2}, Activation::kTanh}, 42);
  Mlp b(MlpConfig{{3, 5, 2}, Activation::kTanh}, 42);
  const std::vector<double> x = {0.1, -0.2, 0.3};
  const std::vector<double> ya = a.Forward(x);
  const std::vector<double> yb = b.Forward(x);
  for (size_t i = 0; i < ya.size(); ++i) EXPECT_DOUBLE_EQ(ya[i], yb[i]);
}

TEST(MlpTest, ForwardCachedMatchesForward) {
  Mlp mlp(MlpConfig{{3, 6, 2}, Activation::kRelu}, 7);
  MlpForwardCache cache;
  const std::vector<double> x = {0.5, -1.0, 2.0};
  const std::vector<double> y1 = mlp.Forward(x);
  const std::vector<double> y2 = mlp.ForwardCached(x, &cache);
  ASSERT_EQ(y1.size(), y2.size());
  for (size_t i = 0; i < y1.size(); ++i) EXPECT_DOUBLE_EQ(y1[i], y2[i]);
  EXPECT_EQ(cache.activations.size(), 3u);
}

// Numerical gradient check: analytic backprop gradients must match finite
// differences on a small network with a smooth activation.
TEST(MlpTest, BackwardMatchesNumericalGradient) {
  Mlp mlp(MlpConfig{{3, 4, 2}, Activation::kTanh}, 11);
  const std::vector<double> x = {0.3, -0.7, 1.1};
  const std::vector<double> target = {0.5, -0.25};

  MlpForwardCache cache;
  MlpGradients grads = mlp.InitGradients();
  std::vector<double> grad_out;
  std::vector<double> out = mlp.ForwardCached(x, &cache);
  MseLossGrad(out, target, &grad_out);
  mlp.Backward(cache, grad_out, &grads);

  const double eps = 1e-6;
  auto loss_at = [&](Mlp& net) {
    std::vector<double> g;
    return MseLossGrad(net.Forward(x), target, &g);
  };

  for (int l = 0; l < mlp.num_layers(); ++l) {
    Matrix& w = mlp.mutable_weight(l);
    for (int r = 0; r < w.rows(); ++r) {
      for (int c = 0; c < w.cols(); ++c) {
        const double saved = w.at(r, c);
        w.at(r, c) = saved + eps;
        const double lp = loss_at(mlp);
        w.at(r, c) = saved - eps;
        const double lm = loss_at(mlp);
        w.at(r, c) = saved;
        const double numeric = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(grads.weight_grads[l].at(r, c), numeric, 1e-5)
            << "layer " << l << " w(" << r << "," << c << ")";
      }
    }
    std::vector<double>& b = mlp.mutable_bias(l);
    for (size_t i = 0; i < b.size(); ++i) {
      const double saved = b[i];
      b[i] = saved + eps;
      const double lp = loss_at(mlp);
      b[i] = saved - eps;
      const double lm = loss_at(mlp);
      b[i] = saved;
      const double numeric = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(grads.bias_grads[l][i], numeric, 1e-5);
    }
  }
}

TEST(MlpTest, TrainsXor) {
  Mlp mlp(MlpConfig{{2, 8, 1}, Activation::kTanh}, 3);
  std::vector<TrainExample> xor_data = {
      {{0.0, 0.0}, {0.0}},
      {{0.0, 1.0}, {1.0}},
      {{1.0, 0.0}, {1.0}},
      {{1.0, 1.0}, {0.0}},
  };
  TrainerOptions options;
  options.epochs = 800;
  options.batch_size = 4;
  options.adam.learning_rate = 0.02;
  Rng rng(5);
  const double final_loss = TrainMlp(&mlp, xor_data, MseLossGrad, options, rng);
  EXPECT_LT(final_loss, 0.01);
  for (const auto& ex : xor_data) {
    const double pred = mlp.Forward(ex.input)[0];
    EXPECT_NEAR(pred, ex.target[0], 0.2);
  }
}

TEST(MlpTest, TrainsLinearRegression) {
  // y = 2 x0 - 3 x1 + 1, learnable exactly by a linear network.
  Mlp mlp(MlpConfig{{2, 1}, Activation::kIdentity}, 9);
  Rng data_rng(13);
  std::vector<TrainExample> data;
  for (int i = 0; i < 256; ++i) {
    const double x0 = data_rng.Uniform(-1, 1);
    const double x1 = data_rng.Uniform(-1, 1);
    data.push_back({{x0, x1}, {2.0 * x0 - 3.0 * x1 + 1.0}});
  }
  TrainerOptions options;
  options.epochs = 200;
  options.adam.learning_rate = 0.05;
  Rng rng(17);
  const double loss = TrainMlp(&mlp, data, MseLossGrad, options, rng);
  EXPECT_LT(loss, 1e-4);
  EXPECT_NEAR(mlp.Forward({0.5, 0.5})[0], 0.5, 0.05);
}

TEST(MlpTest, SoftmaxCrossEntropyTrainsClassifier) {
  // Two well-separated Gaussian blobs.
  Mlp mlp(MlpConfig{{2, 8, 2}, Activation::kRelu}, 21);
  Rng data_rng(23);
  std::vector<TrainExample> data;
  for (int i = 0; i < 400; ++i) {
    const int label = i % 2;
    const double cx = label == 0 ? -1.0 : 1.0;
    std::vector<double> x = {data_rng.Normal(cx, 0.3),
                             data_rng.Normal(cx, 0.3)};
    std::vector<double> t = {label == 0 ? 1.0 : 0.0, label == 1 ? 1.0 : 0.0};
    data.push_back({std::move(x), std::move(t)});
  }
  TrainerOptions options;
  options.epochs = 60;
  Rng rng(29);
  TrainMlp(&mlp, data, SoftmaxCrossEntropyLossGrad, options, rng);
  int correct = 0;
  for (const auto& ex : data) {
    const int pred = Argmax(mlp.Forward(ex.input));
    const int label = Argmax(ex.target);
    if (pred == label) ++correct;
  }
  EXPECT_GT(correct, 390);
}

TEST(LossTest, MseValueAndGradient) {
  std::vector<double> grad;
  const double loss = MseLossGrad({1.0, 3.0}, {0.0, 1.0}, &grad);
  EXPECT_DOUBLE_EQ(loss, (1.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(grad[0], 1.0);   // 2*(1-0)/2
  EXPECT_DOUBLE_EQ(grad[1], 2.0);   // 2*(3-1)/2
}

TEST(LossTest, CrossEntropyGradientIsSoftmaxMinusTarget) {
  std::vector<double> grad;
  const std::vector<double> logits = {2.0, 0.0};
  const std::vector<double> target = {1.0, 0.0};
  const double loss = SoftmaxCrossEntropyLossGrad(logits, target, &grad);
  const std::vector<double> p = Softmax(logits);
  EXPECT_NEAR(loss, -std::log(p[0]), 1e-12);
  EXPECT_NEAR(grad[0], p[0] - 1.0, 1e-12);
  EXPECT_NEAR(grad[1], p[1], 1e-12);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 via a 1-parameter "network": y = w * x with x = 1.
  Mlp mlp(MlpConfig{{1, 1}, Activation::kIdentity}, 31);
  mlp.mutable_bias(0)[0] = 0.0;
  AdamOptimizer adam(mlp, {.learning_rate = 0.1});
  MlpGradients grads = mlp.InitGradients();
  MlpForwardCache cache;
  std::vector<double> grad_out;
  for (int step = 0; step < 500; ++step) {
    grads.Reset();
    std::vector<double> out = mlp.ForwardCached({1.0}, &cache);
    MseLossGrad(out, {3.0}, &grad_out);
    mlp.Backward(cache, grad_out, &grads);
    adam.Step(grads, &mlp);
  }
  EXPECT_NEAR(mlp.Forward({1.0})[0], 3.0, 0.01);
  EXPECT_EQ(adam.steps(), 500);
}

TEST(MlpGradientsTest, ResetAndScale) {
  Mlp mlp(MlpConfig{{2, 2}, Activation::kIdentity}, 1);
  MlpGradients g = mlp.InitGradients();
  g.weight_grads[0].at(0, 0) = 4.0;
  g.bias_grads[0][1] = 2.0;
  g.Scale(0.5);
  EXPECT_DOUBLE_EQ(g.weight_grads[0].at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(g.bias_grads[0][1], 1.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.weight_grads[0].at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(g.bias_grads[0][1], 0.0);
}

}  // namespace
}  // namespace schemble
