#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "nn/knn.h"
#include "nn/knn_reference.h"
#include "nn/matrix.h"
#include "nn/mlp.h"

namespace schemble {
namespace {

// Randomized equivalence: the flat/heap/blocked KnnIndex must produce
// BIT-IDENTICAL neighbors and fills to the retained ReferenceKnnIndex
// (the pre-optimization algorithm) across a wide sweep of shapes. Bitwise
// equality is the load-bearing contract — the serving regression test pins
// exact metrics downstream of these fills — so comparisons use EXPECT_EQ
// on doubles throughout.

struct EquivalenceCase {
  int n = 0;
  int dim = 0;
  int k = 0;
  double observed_density = 0.5;
  uint64_t seed = 0;
};

std::vector<EquivalenceCase> BuildCases() {
  std::vector<EquivalenceCase> cases;
  uint64_t seed = 1;
  // 4 sizes x 3 dims x 3 ks x 3 densities = 108 configurations.
  for (int n : {1, 7, 300, 1000}) {
    for (int dim : {1, 6, 16}) {
      for (int k : {1, 10, 64}) {
        for (double density : {0.2, 0.6, 1.0}) {
          cases.push_back({n, dim, k, density, seed++});
        }
      }
    }
  }
  return cases;
}

/// Draws record values from a small lattice so exact distance ties are
/// common and the (squared distance, index) tie-break is genuinely
/// exercised, not just dodged by fuzz.
std::vector<std::vector<double>> LatticeRecords(int n, int dim, Rng& rng) {
  std::vector<std::vector<double>> records(n, std::vector<double>(dim));
  for (auto& r : records) {
    for (double& v : r) v = static_cast<double>(rng.UniformInt(0, 4)) * 0.5;
  }
  return records;
}

std::vector<bool> RandomMask(int dim, double density, Rng& rng) {
  std::vector<bool> mask(dim, false);
  bool any = false;
  for (int d = 0; d < dim; ++d) {
    mask[d] = rng.NextDouble() < density;
    any |= mask[d];
  }
  if (!any) mask[rng.UniformInt(0, dim - 1)] = true;
  return mask;
}

TEST(KnnEquivalenceTest, QueryAndFillBitIdenticalToReferenceAcrossConfigs) {
  for (const EquivalenceCase& c : BuildCases()) {
    SCOPED_TRACE(::testing::Message() << "n=" << c.n << " dim=" << c.dim
                                      << " k=" << c.k << " density="
                                      << c.observed_density);
    Rng rng(c.seed);
    const auto records = LatticeRecords(c.n, c.dim, rng);
    auto fast = KnnIndex::Build(records);
    auto reference = ReferenceKnnIndex::Build(records);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(reference.ok());

    KnnIndex::Workspace ws;
    std::vector<KnnIndex::Neighbor> neighbors;
    std::vector<double> filled;
    for (int q = 0; q < 5; ++q) {
      std::vector<double> point(c.dim);
      for (double& v : point) {
        v = static_cast<double>(rng.UniformInt(0, 4)) * 0.5;
      }
      const std::vector<bool> mask =
          RandomMask(c.dim, c.observed_density, rng);

      const auto expected_nb = reference.value().Query(point, mask, c.k);
      fast.value().QueryInto(point, mask, c.k, &ws, &neighbors);
      ASSERT_EQ(neighbors.size(), expected_nb.size());
      for (size_t i = 0; i < neighbors.size(); ++i) {
        EXPECT_EQ(neighbors[i].index, expected_nb[i].index) << "rank " << i;
        EXPECT_EQ(neighbors[i].distance, expected_nb[i].distance)
            << "rank " << i;
      }

      const auto expected_fill =
          reference.value().FillMissing(point, mask, c.k);
      fast.value().FillMissingInto(point, mask, c.k, &ws, &filled);
      EXPECT_EQ(filled, expected_fill);
    }
  }
}

TEST(KnnEquivalenceTest, BatchMatchesSingleQueryPath) {
  Rng rng(99);
  const auto records = LatticeRecords(400, 8, rng);
  auto built = KnnIndex::Build(records);
  ASSERT_TRUE(built.ok());
  const KnnIndex& index = built.value();
  const std::vector<bool> mask = {true, true, false, true,
                                  false, false, true, false};

  std::vector<std::vector<double>> points(32, std::vector<double>(8));
  for (auto& p : points) {
    for (double& v : p) v = static_cast<double>(rng.UniformInt(0, 4)) * 0.5;
  }

  KnnIndex::Workspace batch_ws;
  std::vector<std::vector<KnnIndex::Neighbor>> batch_neighbors;
  index.QueryBatch(points, mask, 10, &batch_ws, &batch_neighbors);
  std::vector<std::vector<double>> batch_filled;
  index.FillMissingBatch(points, mask, 10, &batch_ws, &batch_filled);

  KnnIndex::Workspace single_ws;
  std::vector<KnnIndex::Neighbor> neighbors;
  std::vector<double> filled;
  ASSERT_EQ(batch_neighbors.size(), points.size());
  ASSERT_EQ(batch_filled.size(), points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    index.QueryInto(points[i], mask, 10, &single_ws, &neighbors);
    ASSERT_EQ(batch_neighbors[i].size(), neighbors.size());
    for (size_t j = 0; j < neighbors.size(); ++j) {
      EXPECT_EQ(batch_neighbors[i][j].index, neighbors[j].index);
      EXPECT_EQ(batch_neighbors[i][j].distance, neighbors[j].distance);
    }
    index.FillMissingInto(points[i], mask, 10, &single_ws, &filled);
    EXPECT_EQ(batch_filled[i], filled);
  }
}

TEST(KnnEquivalenceTest, BatchFillIsAllocationFreeInSteadyState) {
  Rng rng(7);
  const auto records = LatticeRecords(500, 8, rng);
  auto built = KnnIndex::Build(records);
  ASSERT_TRUE(built.ok());
  const KnnIndex& index = built.value();
  const std::vector<bool> mask = {true, false, true, true,
                                  false, true, false, true};

  std::vector<std::vector<double>> points(64, std::vector<double>(8));
  for (auto& p : points) {
    for (double& v : p) v = rng.Normal();
  }

  KnnIndex::Workspace ws;
  std::vector<std::vector<double>> out;
  // Warm-up batch sizes every workspace buffer and every output row.
  index.FillMissingBatch(points, mask, 10, &ws, &out);
  const int64_t warm = ws.stats.grow_events;
  for (int round = 0; round < 20; ++round) {
    for (auto& p : points) {
      for (double& v : p) v = rng.Normal();
    }
    index.FillMissingBatch(points, mask, 10, &ws, &out);
  }
  EXPECT_EQ(ws.stats.grow_events, warm)
      << "steady-state batch fill grew a workspace buffer";
  EXPECT_EQ(ws.stats.queries, 21 * 64);
}

TEST(KnnEquivalenceTest, MatrixApplyIntoIsAllocationFreeDuringTraining) {
  // One MLP train step = ForwardCached (ApplyInto per layer) + Backward
  // (ApplyTransposedInto per hidden layer). After the first step warms the
  // caches, further steps must not grow any Matrix op buffer.
  MlpConfig config;
  config.layer_sizes = {12, 16, 8, 3};
  Mlp mlp(config, 5);
  MlpForwardCache cache;
  MlpGradients grads = mlp.InitGradients();
  Rng rng(21);
  std::vector<double> input(12);
  std::vector<double> dloss(3);

  auto step = [&] {
    for (double& v : input) v = rng.Normal();
    const std::vector<double>& out = mlp.ForwardCached(input, &cache);
    for (size_t i = 0; i < dloss.size(); ++i) dloss[i] = out[i] - 0.5;
    grads.Reset();
    mlp.Backward(cache, dloss, &grads);
    mlp.ApplySgd(grads, 1e-3);
  };

  step();  // warm-up sizes cache activations and delta buffers
  const int64_t warm_grows = Matrix::op_stats().grow_events.load();
  const int64_t warm_calls = Matrix::op_stats().apply_into_calls.load();
  for (int i = 0; i < 100; ++i) step();
  EXPECT_EQ(Matrix::op_stats().grow_events.load(), warm_grows)
      << "steady-state train steps grew an ApplyInto output buffer";
  // 3 forward + 2 backward ApplyInto/ApplyTransposedInto calls per step.
  EXPECT_EQ(Matrix::op_stats().apply_into_calls.load(), warm_calls + 500);
}

}  // namespace
}  // namespace schemble
