#include "nn/knn.h"

#include <gtest/gtest.h>

#include <vector>

namespace schemble {
namespace {

TEST(KnnIndexTest, BuildRejectsBadInput) {
  EXPECT_FALSE(KnnIndex::Build({}).ok());
  EXPECT_FALSE(KnnIndex::Build({{}}).ok());
  EXPECT_FALSE(KnnIndex::Build({{1.0}, {1.0, 2.0}}).ok());
  // Mismatch after a long valid prefix, and an empty row mid-list.
  EXPECT_FALSE(KnnIndex::Build({{1.0, 2.0}, {3.0, 4.0}, {5.0}}).ok());
  EXPECT_FALSE(KnnIndex::Build({{1.0}, {}, {2.0}}).ok());
}

TEST(KnnIndexTest, BuildRepacksRowMajor) {
  auto index = KnnIndex::Build({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index.value().size(), 3);
  EXPECT_EQ(index.value().dim(), 2);
  // Records live in one flat row-major buffer.
  const double* row1 = index.value().row(1);
  EXPECT_DOUBLE_EQ(row1[0], 3.0);
  EXPECT_DOUBLE_EQ(row1[1], 4.0);
  EXPECT_EQ(index.value().row(2), index.value().row(0) + 4);
}

TEST(KnnIndexTest, DistanceTiesBreakByRecordIndex) {
  // Records 1 and 3 are equidistant from the query (distance 1 on each
  // side); so are 0 and 4 (distance 2). The deterministic ordering contract
  // ranks equal distances by ascending record index on every platform.
  auto index = KnnIndex::Build({{0.0}, {1.0}, {5.0}, {3.0}, {4.0}});
  ASSERT_TRUE(index.ok());
  auto neighbors = index.value().Query({2.0}, {true}, 4);
  ASSERT_EQ(neighbors.size(), 4u);
  EXPECT_EQ(neighbors[0].index, 1);
  EXPECT_EQ(neighbors[1].index, 3);
  EXPECT_EQ(neighbors[2].index, 0);
  EXPECT_EQ(neighbors[3].index, 4);
  // Ties must also resolve identically when they straddle the top-k
  // boundary: k=1 keeps the lower index of the {1, 3} pair.
  EXPECT_EQ(index.value().Query({2.0}, {true}, 1)[0].index, 1);
}

TEST(KnnIndexTest, QueryIntoReusesWorkspaceWithoutGrowth) {
  auto built = KnnIndex::Build(
      {{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}, {4.0, 4.0}});
  ASSERT_TRUE(built.ok());
  const KnnIndex& index = built.value();
  KnnIndex::Workspace ws;
  std::vector<KnnIndex::Neighbor> out;
  index.QueryInto({1.2, 1.2}, {true, true}, 3, &ws, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].index, 1);
  const int64_t warm = ws.stats.grow_events;
  for (int i = 0; i < 50; ++i) {
    index.QueryInto({0.1 * i, 0.2 * i}, {true, true}, 3, &ws, &out);
  }
  EXPECT_EQ(ws.stats.grow_events, warm) << "steady-state queries allocated";
  EXPECT_EQ(ws.stats.queries, 51);
}

TEST(KnnIndexTest, FillMissingIntoSupportsInPlaceFill) {
  auto built = KnnIndex::Build({{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}});
  ASSERT_TRUE(built.ok());
  const KnnIndex& index = built.value();
  const std::vector<double> expected =
      index.FillMissing({2.0, 0.0}, {true, false}, 1);
  KnnIndex::Workspace ws;
  std::vector<double> point = {2.0, 0.0};
  index.FillMissingInto(point, {true, false}, 1, &ws, &point);
  EXPECT_EQ(point, expected);
}

TEST(KnnIndexTest, FindsNearestNeighbor) {
  auto index = KnnIndex::Build({{0.0, 0.0}, {1.0, 1.0}, {5.0, 5.0}});
  ASSERT_TRUE(index.ok());
  auto neighbors =
      index.value().Query({0.9, 0.9}, {true, true}, 1);
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_EQ(neighbors[0].index, 1);
}

TEST(KnnIndexTest, NeighborsSortedByDistance) {
  auto index = KnnIndex::Build({{0.0}, {2.0}, {10.0}});
  ASSERT_TRUE(index.ok());
  auto neighbors = index.value().Query({1.0}, {true}, 3);
  ASSERT_EQ(neighbors.size(), 3u);
  EXPECT_LE(neighbors[0].distance, neighbors[1].distance);
  EXPECT_LE(neighbors[1].distance, neighbors[2].distance);
  EXPECT_EQ(neighbors[0].index, 0);  // distance 1 vs 1: stable order
}

TEST(KnnIndexTest, KLargerThanIndexClamped) {
  auto index = KnnIndex::Build({{0.0}, {1.0}});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index.value().Query({0.0}, {true}, 10).size(), 2u);
}

TEST(KnnIndexTest, MaskedQueryIgnoresMissingDims) {
  // Record 0 matches the query on dim 0 but diverges wildly on dim 1;
  // with dim 1 masked out it must still be the nearest.
  auto index = KnnIndex::Build({{1.0, 100.0}, {2.0, 0.0}});
  ASSERT_TRUE(index.ok());
  auto neighbors = index.value().Query({1.0, 0.0}, {true, false}, 1);
  EXPECT_EQ(neighbors[0].index, 0);
}

TEST(KnnIndexTest, FillMissingUsesNeighborValues) {
  // Historic records pair dim0 with dim1 = 10*dim0.
  auto index = KnnIndex::Build({{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}});
  ASSERT_TRUE(index.ok());
  std::vector<double> filled =
      index.value().FillMissing({2.0, 0.0}, {true, false}, 1);
  EXPECT_DOUBLE_EQ(filled[0], 2.0);  // observed dim untouched
  EXPECT_NEAR(filled[1], 20.0, 1e-6);
}

TEST(KnnIndexTest, FillMissingWeightsByInverseDistance) {
  auto index = KnnIndex::Build({{0.0, 0.0}, {10.0, 100.0}});
  ASSERT_TRUE(index.ok());
  // Query at 1.0: distances 1 and 9 -> weights 1 and 1/9.
  std::vector<double> filled =
      index.value().FillMissing({1.0, 0.0}, {true, false}, 2);
  const double w0 = 1.0 / 1.0;
  const double w1 = 1.0 / 9.0;
  const double expected = (w0 * 0.0 + w1 * 100.0) / (w0 + w1);
  EXPECT_NEAR(filled[1], expected, 1e-3);
}

TEST(KnnIndexTest, ExactMatchDominatesFill) {
  auto index = KnnIndex::Build({{1.0, 7.0}, {1.5, 50.0}});
  ASSERT_TRUE(index.ok());
  std::vector<double> filled =
      index.value().FillMissing({1.0, 0.0}, {true, false}, 2);
  EXPECT_NEAR(filled[1], 7.0, 0.01);
}

TEST(KnnIndexTest, FillMultipleMissingDims) {
  auto index = KnnIndex::Build({{1.0, 10.0, 100.0}, {2.0, 20.0, 200.0}});
  ASSERT_TRUE(index.ok());
  std::vector<double> filled =
      index.value().FillMissing({1.0, 0.0, 0.0}, {true, false, false}, 1);
  EXPECT_NEAR(filled[1], 10.0, 1e-6);
  EXPECT_NEAR(filled[2], 100.0, 1e-6);
}

}  // namespace
}  // namespace schemble
