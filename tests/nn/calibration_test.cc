#include "nn/calibration.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/prob.h"
#include "common/rng.h"

namespace schemble {
namespace {

// Builds an over-confident synthetic classifier: true class probability is
// `true_conf`, but logits are scaled up by `overconfidence` so that the raw
// softmax confidence exceeds the empirical accuracy.
void MakeOverconfidentData(double true_conf, double overconfidence, int n,
                           uint64_t seed,
                           std::vector<std::vector<double>>* logits,
                           std::vector<int>* labels) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const int label = static_cast<int>(rng.UniformInt(0, 1));
    const bool correct = rng.Bernoulli(true_conf);
    const int predicted = correct ? label : 1 - label;
    std::vector<double> l(2, 0.0);
    l[predicted] = overconfidence * (1.0 + rng.NextDouble());
    logits->push_back(std::move(l));
    labels->push_back(label);
  }
}

TEST(TemperatureScalerTest, FitRejectsBadInput) {
  EXPECT_FALSE(TemperatureScaler::Fit({}, {}).ok());
  EXPECT_FALSE(TemperatureScaler::Fit({{1.0, 0.0}}, {0, 1}).ok());
  EXPECT_FALSE(TemperatureScaler::Fit({{1.0, 0.0}}, {0}, -1.0, 2.0).ok());
  EXPECT_FALSE(TemperatureScaler::Fit({{1.0, 0.0}}, {0}, 2.0, 1.0).ok());
}

TEST(TemperatureScalerTest, OverconfidentModelGetsTemperatureAboveOne) {
  std::vector<std::vector<double>> logits;
  std::vector<int> labels;
  MakeOverconfidentData(/*true_conf=*/0.7, /*overconfidence=*/4.0,
                        /*n=*/4000, /*seed=*/11, &logits, &labels);
  auto result = TemperatureScaler::Fit(logits, labels);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().temperature(), 1.5);
}

TEST(TemperatureScalerTest, FittingReducesNll) {
  std::vector<std::vector<double>> logits;
  std::vector<int> labels;
  MakeOverconfidentData(0.7, 4.0, 4000, 13, &logits, &labels);
  auto result = TemperatureScaler::Fit(logits, labels);
  ASSERT_TRUE(result.ok());
  const double nll_raw = TemperatureScaler::MeanNll(logits, labels, 1.0);
  const double nll_fit = TemperatureScaler::MeanNll(
      logits, labels, result.value().temperature());
  EXPECT_LT(nll_fit, nll_raw);
}

TEST(TemperatureScalerTest, FittingReducesEce) {
  std::vector<std::vector<double>> logits;
  std::vector<int> labels;
  MakeOverconfidentData(0.7, 4.0, 4000, 17, &logits, &labels);
  auto result = TemperatureScaler::Fit(logits, labels);
  ASSERT_TRUE(result.ok());
  const double ece_raw =
      TemperatureScaler::ExpectedCalibrationError(logits, labels, 1.0);
  const double ece_fit = TemperatureScaler::ExpectedCalibrationError(
      logits, labels, result.value().temperature());
  EXPECT_LT(ece_fit, ece_raw);
}

TEST(TemperatureScalerTest, CalibrateAppliesTemperature) {
  TemperatureScaler scaler(2.0);
  const std::vector<double> logits = {2.0, 0.0};
  const std::vector<double> p = scaler.Calibrate(logits);
  const std::vector<double> expected = SoftmaxWithTemperature(logits, 2.0);
  EXPECT_NEAR(p[0], expected[0], 1e-12);
  EXPECT_NEAR(p[1], expected[1], 1e-12);
}

TEST(TemperatureScalerTest, WellCalibratedModelKeepsTemperatureNearOne) {
  // Generate logits whose softmax confidence matches accuracy by
  // construction: logit gap g gives confidence sigmoid(g); choose outcomes
  // with exactly that probability.
  Rng rng(19);
  std::vector<std::vector<double>> logits;
  std::vector<int> labels;
  for (int i = 0; i < 6000; ++i) {
    const double gap = rng.Uniform(0.2, 2.5);
    const double conf = 1.0 / (1.0 + std::exp(-gap));
    const int label = static_cast<int>(rng.UniformInt(0, 1));
    const int predicted = rng.Bernoulli(conf) ? label : 1 - label;
    std::vector<double> l(2, 0.0);
    l[predicted] = gap;
    logits.push_back(std::move(l));
    labels.push_back(label);
  }
  auto result = TemperatureScaler::Fit(logits, labels);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().temperature(), 1.0, 0.15);
}

}  // namespace
}  // namespace schemble
