#include "nn/kmeans.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace schemble {
namespace {

std::vector<std::vector<double>> ThreeBlobs(int per_blob, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> points;
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (int b = 0; b < 3; ++b) {
    for (int i = 0; i < per_blob; ++i) {
      points.push_back({rng.Normal(centers[b][0], 0.5),
                        rng.Normal(centers[b][1], 0.5)});
    }
  }
  return points;
}

TEST(KMeansTest, RejectsBadInput) {
  Rng rng(1);
  EXPECT_FALSE(KMeans::Fit({}, {.clusters = 2}, rng).ok());
  EXPECT_FALSE(KMeans::Fit({{1.0}}, {.clusters = 0}, rng).ok());
  EXPECT_FALSE(KMeans::Fit({{1.0}, {1.0, 2.0}}, {.clusters = 1}, rng).ok());
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  Rng rng(2);
  auto points = ThreeBlobs(100, 3);
  auto result = KMeans::Fit(points, {.clusters = 3}, rng);
  ASSERT_TRUE(result.ok());
  const KMeans& km = result.value();
  EXPECT_EQ(km.clusters(), 3);
  // Each blob maps to a single, consistent cluster.
  for (int b = 0; b < 3; ++b) {
    const int first = km.Assign(points[b * 100]);
    for (int i = 1; i < 100; ++i) {
      EXPECT_EQ(km.Assign(points[b * 100 + i]), first);
    }
  }
  // Distinct blobs map to distinct clusters.
  EXPECT_NE(km.Assign(points[0]), km.Assign(points[100]));
  EXPECT_NE(km.Assign(points[100]), km.Assign(points[200]));
}

TEST(KMeansTest, CentroidsNearBlobCenters) {
  Rng rng(5);
  auto points = ThreeBlobs(200, 7);
  auto result = KMeans::Fit(points, {.clusters = 3}, rng);
  ASSERT_TRUE(result.ok());
  for (const auto& c : result.value().centroids()) {
    // Each centroid should be within 1.0 of some blob center.
    const double d0 = std::hypot(c[0] - 0.0, c[1] - 0.0);
    const double d1 = std::hypot(c[0] - 10.0, c[1] - 0.0);
    const double d2 = std::hypot(c[0] - 0.0, c[1] - 10.0);
    EXPECT_LT(std::min({d0, d1, d2}), 1.0);
  }
}

TEST(KMeansTest, MoreClustersThanPointsClamped) {
  Rng rng(9);
  auto result = KMeans::Fit({{0.0}, {1.0}}, {.clusters = 10}, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.value().clusters(), 2);
}

TEST(KMeansTest, NearestDistanceSquaredIsZeroAtCentroid) {
  Rng rng(11);
  auto points = ThreeBlobs(50, 13);
  auto result = KMeans::Fit(points, {.clusters = 3}, rng);
  ASSERT_TRUE(result.ok());
  const auto& c = result.value().centroids()[0];
  EXPECT_NEAR(result.value().NearestDistanceSquared(c), 0.0, 1e-12);
}

TEST(KMeansTest, DuplicatePointsHandled) {
  Rng rng(15);
  std::vector<std::vector<double>> points(20, {1.0, 1.0});
  auto result = KMeans::Fit(points, {.clusters = 4}, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().Assign({1.0, 1.0}),
            result.value().Assign({1.0, 1.0}));
}

}  // namespace
}  // namespace schemble
