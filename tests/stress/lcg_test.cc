#include "stress/lcg.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

namespace schemble {
namespace {

// The replayability contract the whole stress harness stands on: the draw
// sequence is a pure function of the constructor seed.
TEST(LcgTest, SameSeedYieldsBitIdenticalSequence) {
  Lcg a(42);
  Lcg b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next()) << "diverged at draw " << i;
  }
  EXPECT_EQ(a.state(), b.state());
}

TEST(LcgTest, SameSeedYieldsBitIdenticalMixedDrawSequence) {
  // Interleave every draw kind; the sequences must still match exactly.
  Lcg a(7);
  Lcg b(7);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(a.IntRange(-5, 17), b.IntRange(-5, 17));
    ASSERT_EQ(a.Float01(), b.Float01());
    ASSERT_EQ(a.FloatRange(0.5, 2.0), b.FloatRange(0.5, 2.0));
    ASSERT_EQ(a.Chance(0.3), b.Chance(0.3));
    ASSERT_EQ(a.NextSeed(), b.NextSeed());
  }
}

TEST(LcgTest, DistinctSeedsDiverge) {
  // Adjacent small seeds are the realistic collision risk (seed, seed+1
  // from the --runs loop); the constructor's SplitMix64 scramble must
  // separate them immediately.
  Lcg a(1);
  Lcg b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GE(differing, 12) << "adjacent seeds produced near-identical draws";
}

TEST(LcgTest, IntRangeStaysInBoundsAndCoversRange) {
  Lcg rng(3);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.IntRange(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  // Both endpoints are inclusive and reachable.
  EXPECT_EQ(seen.size(), 5u);
}

TEST(LcgTest, IntRangeSingletonRange) {
  Lcg rng(9);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.IntRange(4, 4), 4);
  }
}

TEST(LcgTest, Float01StaysInUnitInterval) {
  Lcg rng(11);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.Float01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(LcgTest, FloatRangeStaysInBounds) {
  Lcg rng(13);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.FloatRange(0.5, 2.0);
    ASSERT_GE(v, 0.5);
    ASSERT_LT(v, 2.0);
  }
}

TEST(LcgTest, ChanceExtremes) {
  Lcg rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(LcgTest, NextSeedAdvancesStateAndDerivesDistinctSeeds) {
  Lcg rng(23);
  const uint64_t before = rng.state();
  std::set<uint64_t> seeds;
  for (int i = 0; i < 100; ++i) {
    seeds.insert(rng.NextSeed());
  }
  // Each derived seed is distinct and the generator actually advanced.
  EXPECT_EQ(seeds.size(), 100u);
  EXPECT_NE(rng.state(), before);
}

TEST(LcgTest, NextSeedKeepsDrawSequenceDeterministic) {
  // A NextSeed() call advances the state exactly once, so a subsequent
  // Next() matches a fresh generator that drew twice.
  Lcg a(31);
  (void)a.NextSeed();
  const uint32_t after_subseed = a.Next();

  Lcg b(31);
  (void)b.Next();
  EXPECT_EQ(after_subseed, b.Next());
}

}  // namespace
}  // namespace schemble
