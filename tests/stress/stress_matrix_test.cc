// The fixed-seed stress matrix: every registered scenario runs under a
// small set of pinned seeds so tier-1 ctest stays deterministic while the
// nightly fuzz lane explores fresh seeds. A failure here reproduces with
//   schemble_stress --scenario=<name> --seed=<seed> --dump-events

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "stress/host.h"
#include "stress/scenario.h"

namespace schemble {
namespace {

// The pinned matrix seeds. Two per scenario keeps the runtime-label wall
// time modest while still exercising two distinct configurations of every
// randomization dimension.
constexpr uint64_t kMatrixSeeds[] = {7, 41};

std::vector<std::string> ScenarioNames() {
  RegisterBuiltinScenarios();
  std::vector<std::string> names;
  for (const Scenario& scenario :
       ScenarioRegistry::Instance().scenarios()) {
    names.push_back(scenario.name);
  }
  return names;
}

class StressMatrixTest
    : public testing::TestWithParam<std::tuple<std::string, uint64_t>> {
 protected:
  void SetUp() override {
    // Same guard as the other load-sensitive runtime tests: on tiny hosts
    // the scenario's timing invariants measure the host, not the code.
    if (const std::string reason = LoadSensitiveSkipReason();
        !reason.empty()) {
      GTEST_SKIP() << reason;
    }
    RegisterBuiltinScenarios();
  }
};

TEST_P(StressMatrixTest, PinnedSeedPasses) {
  const auto& [name, seed] = GetParam();
  const Scenario* scenario = ScenarioRegistry::Instance().Find(name);
  ASSERT_NE(scenario, nullptr) << name;

  const ScenarioContext ctx = RunScenario(*scenario, seed);
  for (const std::string& failure : ctx.failures()) {
    ADD_FAILURE() << name << " seed " << seed << ": " << failure;
  }
  if (ctx.failed()) {
    std::string log = "replay: schemble_stress --scenario=" + name +
                      " --seed=" + std::to_string(seed) + "\n";
    for (const std::string& event : ctx.events()) {
      log += "  event: " + event + "\n";
    }
    ADD_FAILURE() << log;
  }
}

std::string MatrixParamName(
    const testing::TestParamInfo<StressMatrixTest::ParamType>& info) {
  std::string name = std::get<0>(info.param);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_seed" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Fleet, StressMatrixTest,
    testing::Combine(testing::ValuesIn(ScenarioNames()),
                     testing::ValuesIn(kMatrixSeeds)),
    MatrixParamName);

// The acceptance criterion from DESIGN.md: the fail-stop scenario replays
// bit-identically from its seed. Two full runs — server threads, fault
// injection, requeue path and all — must produce byte-identical event
// logs, because the log records only draws and derived configuration.
TEST(StressReplayTest, FailStopRecoveryReplaysBitIdentically) {
  if (const std::string reason = LoadSensitiveSkipReason();
      !reason.empty()) {
    GTEST_SKIP() << reason;
  }
  RegisterBuiltinScenarios();
  const Scenario* scenario =
      ScenarioRegistry::Instance().Find("fail-stop-recovery");
  ASSERT_NE(scenario, nullptr);

  const ScenarioContext first = RunScenario(*scenario, 12345);
  const ScenarioContext second = RunScenario(*scenario, 12345);
  EXPECT_FALSE(first.failed());
  ASSERT_EQ(first.events().size(), second.events().size());
  for (size_t i = 0; i < first.events().size(); ++i) {
    EXPECT_EQ(first.events()[i], second.events()[i]) << "event " << i;
  }

  // And a distinct seed actually explores a different configuration.
  const ScenarioContext other = RunScenario(*scenario, 54321);
  EXPECT_FALSE(other.failed());
  bool differs = other.events().size() != first.events().size();
  for (size_t i = 1; !differs && i < first.events().size(); ++i) {
    differs = first.events()[i] != other.events()[i];
  }
  EXPECT_TRUE(differs) << "seeds 12345 and 54321 drew identical configs";
}

}  // namespace
}  // namespace schemble
