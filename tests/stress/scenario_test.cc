#include "stress/scenario.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace schemble {
namespace {

// A tiny deterministic scenario exercising every draw kind. Registered
// scenarios use the same API, so replay identity proven here transfers.
void DrawHeavyScenario(ScenarioContext& ctx) {
  const int n = ctx.DrawInt("n", 1, 10);
  const double x = ctx.DrawDouble("x", 0.0, 1.0);
  const bool flip = ctx.DrawChance("flip", 0.5);
  const uint64_t sub = ctx.DrawSeed("sub");
  ctx.Event("derived = " + std::to_string(n) + (flip ? "+" : "-"));
  ctx.Note("x = " + FormatDouble(x));
  ctx.ExpectTrue(sub != 0u || true, "never fails");
}

TEST(ScenarioContextTest, SameSeedProducesByteIdenticalEventLog) {
  const Scenario scenario{"draw-heavy", "test scenario", &DrawHeavyScenario};
  const ScenarioContext first = RunScenario(scenario, 12345);
  const ScenarioContext second = RunScenario(scenario, 12345);
  ASSERT_EQ(first.events().size(), second.events().size());
  for (size_t i = 0; i < first.events().size(); ++i) {
    EXPECT_EQ(first.events()[i], second.events()[i]) << "event " << i;
  }
  EXPECT_FALSE(first.failed());
  EXPECT_FALSE(second.failed());
}

TEST(ScenarioContextTest, DistinctSeedsProduceDistinctDraws) {
  const Scenario scenario{"draw-heavy", "test scenario", &DrawHeavyScenario};
  const ScenarioContext a = RunScenario(scenario, 1);
  const ScenarioContext b = RunScenario(scenario, 2);
  // The first event names the scenario and seed, so it always differs;
  // demand an actual parameter-draw difference beyond it.
  ASSERT_EQ(a.events().size(), b.events().size());
  bool draw_differs = false;
  for (size_t i = 1; i < a.events().size(); ++i) {
    if (a.events()[i] != b.events()[i]) draw_differs = true;
  }
  EXPECT_TRUE(draw_differs) << "seeds 1 and 2 drew identical parameters";
}

TEST(ScenarioContextTest, FirstEventRecordsScenarioAndSeed) {
  const Scenario scenario{"draw-heavy", "test scenario", &DrawHeavyScenario};
  const ScenarioContext ctx = RunScenario(scenario, 99);
  ASSERT_FALSE(ctx.events().empty());
  EXPECT_EQ(ctx.events().front(), "scenario draw-heavy seed 99");
}

TEST(ScenarioContextTest, DrawEventsEmbedNameValueAndRange) {
  ScenarioContext ctx(7);
  const int v = ctx.DrawInt("knob", 2, 9);
  ASSERT_EQ(ctx.events().size(), 1u);
  EXPECT_EQ(ctx.events()[0], "draw knob = " + std::to_string(v) +
                                 " in [2, 9]");
  EXPECT_GE(v, 2);
  EXPECT_LE(v, 9);
}

TEST(ScenarioContextTest, NotesAndFailuresStayOutOfTheEventLog) {
  ScenarioContext ctx(7);
  ctx.Note("wall time = 3ms");
  ctx.Fail("bad");
  EXPECT_TRUE(ctx.events().empty());
  ASSERT_EQ(ctx.notes().size(), 1u);
  ASSERT_EQ(ctx.failures().size(), 1u);
  EXPECT_TRUE(ctx.failed());
}

TEST(ScenarioContextTest, ExpectHelpersRecordThroughFail) {
  ScenarioContext ctx(7);
  ctx.ExpectTrue(true, "fine");
  ctx.ExpectEq(3, 3, "fine");
  ctx.ExpectGe(4, 3, "fine");
  ctx.ExpectLeDouble(0.5, 1.0, "fine");
  EXPECT_FALSE(ctx.failed());

  ctx.ExpectEq(3, 4, "count");
  ASSERT_TRUE(ctx.failed());
  ASSERT_EQ(ctx.failures().size(), 1u);
  // The message names the expectation so a nightly log is actionable.
  EXPECT_NE(ctx.failures()[0].find("count"), std::string::npos);

  ctx.ExpectGe(2, 3, "floor");
  ctx.ExpectLeDouble(2.0, 1.0, "ceiling");
  ctx.ExpectTrue(false, "flag");
  EXPECT_EQ(ctx.failures().size(), 4u);
}

TEST(ScenarioContextTest, FormatDoubleRoundTripsDeterministically) {
  EXPECT_EQ(FormatDouble(0.1), FormatDouble(0.1));
  EXPECT_NE(FormatDouble(0.1), FormatDouble(0.2));
  // %.17g round-trips doubles exactly.
  const double value = 1.0 / 3.0;
  EXPECT_EQ(std::stod(FormatDouble(value)), value);
}

TEST(ScenarioRegistryTest, BuiltinFleetRegistersOnceAndIsFindable) {
  RegisterBuiltinScenarios();
  const size_t count = ScenarioRegistry::Instance().scenarios().size();
  EXPECT_EQ(count, 9u);
  RegisterBuiltinScenarios();  // idempotent
  EXPECT_EQ(ScenarioRegistry::Instance().scenarios().size(), count);

  const ScenarioRegistry& registry = ScenarioRegistry::Instance();
  for (const char* name :
       {"hetero-speeds", "stragglers-diurnal", "fail-stop-recovery",
        "multi-tenant-priorities", "bursty-overlay", "sharded-chaos",
        "batched-coalescing", "four-domain-gauntlet",
        "skewed-arrival-pumps"}) {
    const Scenario* scenario = registry.Find(name);
    ASSERT_NE(scenario, nullptr) << name;
    EXPECT_EQ(scenario->name, name);
    EXPECT_NE(scenario->fn, nullptr) << name;
    EXPECT_FALSE(scenario->description.empty()) << name;
  }
  EXPECT_EQ(registry.Find("no-such-scenario"), nullptr);
}

}  // namespace
}  // namespace schemble
