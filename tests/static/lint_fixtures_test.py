#!/usr/bin/env python3
"""Fixture suite for tools/lint.py, run as a ctest (`static` label).

Each snippet in tests/static/lint_fixtures/ declares where it pretends to
live and which rules must fire on it:

    // lint-path: src/runtime/fixture_blocking.cc
    // lint-expect: blocking-under-lock     (one directive per expected hit)
    // lint-expect: none                    (for good_* fixtures)

The driver materializes every snippet at its declared path inside a
throwaway repo, runs the real Linter over it, and compares the multiset of
rules that fired against the declarations — so both directions are locked:
bad_* fixtures prove each rule still catches its violation, good_* fixtures
prove the sanctioned patterns and marker escapes stay quiet.

It also exercises check_rank_table(): against synthetic repos seeded with
every drift mode (reordered DESIGN.md table, broken anchor chain, stale
kNumLockRanks) and — the acceptance check — against the REAL repo, which
must be consistent.
"""

import argparse
import os
import re
import sys
import tempfile

LINT_PATH_RE = re.compile(r"//\s*lint-path:\s*(\S+)")
LINT_EXPECT_RE = re.compile(r"//\s*lint-expect:\s*([\w-]+)")

failures = []


def fail(name, message):
    failures.append(f"{name}: {message}")
    print(f"FAIL {name}: {message}")


def ok(name):
    print(f"  ok {name}")


def run_fixture(lint, fixture_path):
    name = os.path.basename(fixture_path)
    with open(fixture_path, encoding="utf-8") as f:
        text = f.read()
    m = LINT_PATH_RE.search(text)
    if not m:
        fail(name, "missing `// lint-path:` directive")
        return
    rel = m.group(1).replace("/", os.sep)
    expected = sorted(e for e in LINT_EXPECT_RE.findall(text) if e != "none")
    if not expected and not LINT_EXPECT_RE.search(text):
        fail(name, "missing `// lint-expect:` directives")
        return

    with tempfile.TemporaryDirectory() as tmp:
        dst = os.path.join(tmp, rel)
        os.makedirs(os.path.dirname(dst), exist_ok=True)
        with open(dst, "w", encoding="utf-8") as f:
            f.write(text)
        linter = lint.Linter(tmp)
        linter.lint_file(rel)
    fired = sorted(re.search(r"\[([\w-]+)\]", e).group(1)
                   for e in linter.errors)
    if fired != expected:
        fail(name, f"expected rules {expected}, got {fired}; errors:\n  "
                   + "\n  ".join(linter.errors or ["<none>"]))
    else:
        ok(name)


# Synthetic three-copy rank tables for check_rank_table drift tests. The
# regexes in lint.py only need the enum, the anchor chain and the DESIGN.md
# `|` rows — everything else is irrelevant scaffolding.
SYNTH_ENUM = """
enum class LockRank : int {
  kAlpha = 0,
  kBeta = 1,
  kGamma = 2,
};
inline constexpr int kNumLockRanks = 3;
"""

SYNTH_CHAIN = """
inline Mutex alpha_anchor{LockRank::kAlpha, "rank.alpha"};
inline Mutex beta_anchor SCHEMBLE_ACQUIRED_AFTER(alpha_anchor){
    LockRank::kBeta, "rank.beta"};
inline Mutex gamma_anchor SCHEMBLE_ACQUIRED_AFTER(beta_anchor){
    LockRank::kGamma, "rank.gamma"};
"""

SYNTH_DESIGN = """
| rank | lock |
|------|------|
| LockRank::kAlpha | a |
| LockRank::kBeta | b |
| LockRank::kGamma | c |
"""


def write_synth_repo(tmp, enum=SYNTH_ENUM, chain=SYNTH_CHAIN,
                     design=SYNTH_DESIGN):
    for rel, text in (
            (os.path.join("src", "common", "lock_order.h"), enum),
            (os.path.join("src", "common", "thread_annotations.h"), chain),
            ("DESIGN.md", design)):
        dst = os.path.join(tmp, rel)
        os.makedirs(os.path.dirname(dst) or tmp, exist_ok=True)
        with open(dst, "w", encoding="utf-8") as f:
            f.write(text)


def run_rank_table_cases(lint, repo):
    cases = [
        ("rank_table_consistent", {}, None),
        ("rank_table_design_reordered",
         {"design": SYNTH_DESIGN.replace("kBeta", "kTmp")
                                .replace("kGamma", "kBeta")
                                .replace("kTmp", "kGamma")},
         "DESIGN.md"),
        ("rank_table_design_missing_rows",
         {"design": "no table here\n"}, "DESIGN.md"),
        ("rank_table_chain_reordered",
         {"chain": SYNTH_CHAIN.replace(
             "beta_anchor SCHEMBLE_ACQUIRED_AFTER(alpha_anchor)",
             "beta_anchor")},
         "anchor"),
        ("rank_table_count_stale",
         {"enum": SYNTH_ENUM.replace("kNumLockRanks = 3",
                                     "kNumLockRanks = 4")},
         "kNumLockRanks"),
    ]
    for name, overrides, want in cases:
        with tempfile.TemporaryDirectory() as tmp:
            write_synth_repo(tmp, **overrides)
            errors = lint.check_rank_table(tmp)
        if want is None:
            if errors:
                fail(name, f"expected consistency, got: {errors}")
            else:
                ok(name)
        elif not any(want in e for e in errors):
            fail(name, f"expected an error mentioning {want!r}, "
                       f"got: {errors or ['<none>']}")
        else:
            ok(name)

    # The real repo's three copies must agree — this is the live
    # cross-check, not a synthetic one.
    errors = lint.check_rank_table(repo)
    if errors:
        fail("rank_table_real_repo", f"inconsistent in-tree table: {errors}")
    else:
        ok("rank_table_real_repo")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", required=True, help="repository root")
    args = parser.parse_args()
    repo = os.path.abspath(args.repo)

    sys.path.insert(0, os.path.join(repo, "tools"))
    import lint  # noqa: E402  (the module under test)

    fixtures_dir = os.path.join(repo, "tests", "static", "lint_fixtures")
    fixtures = sorted(f for f in os.listdir(fixtures_dir)
                      if f.endswith(".cc"))
    if len(fixtures) < 2:
        fail("corpus", f"suspiciously small fixture corpus: {fixtures}")
    for fixture in fixtures:
        run_fixture(lint, os.path.join(fixtures_dir, fixture))

    run_rank_table_cases(lint, repo)

    if failures:
        print(f"lint_fixtures: FAILED ({len(failures)} case(s))")
        return 1
    print(f"lint_fixtures: OK ({len(fixtures)} fixture(s) + rank-table "
          "cases)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
