// Deliberate thread-safety violations. This TU must NOT compile when the
// clang analysis is on: the static-analysis CI job builds the
// `thread_safety_violation` target (excluded from ALL) through a ctest
// WILL_FAIL test and fails if the build unexpectedly succeeds — proving the
// -Werror=thread-safety gate actually rejects lock-discipline bugs rather
// than silently passing an unannotated tree.
//
// Keep every violation below something the analysis is documented to catch;
// building this TU with plain gcc (no analysis) succeeds by design.

#include "common/thread_annotations.h"

namespace schemble {

// External linkage throughout: an anonymous namespace would add unused-
// function warnings, and this TU must fail ONLY through the thread-safety
// diagnostics.
class Account {
 public:
  void Deposit(int amount) SCHEMBLE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    balance_ += amount;
  }

  // VIOLATION: reads a SCHEMBLE_GUARDED_BY member without the lock.
  int UnsafeRead() const { return balance_; }

  // VIOLATION: calls a SCHEMBLE_REQUIRES helper without the capability.
  void UnsafeWithdraw(int amount) { WithdrawLocked(amount); }

  // VIOLATION: acquires and never releases (still held at end of function).
  void LeakLock() { mu_.Lock(); }

 private:
  void WithdrawLocked(int amount) SCHEMBLE_REQUIRES(mu_) {
    balance_ -= amount;
  }

  mutable Mutex mu_{LockRank::kLeaf, "violation.mu"};
  int balance_ SCHEMBLE_GUARDED_BY(mu_) = 0;
};

// Anchor so the class is fully instantiated.
void Touch() {
  Account account;
  account.Deposit(1);
  account.UnsafeWithdraw(1);
  static_cast<void>(account.UnsafeRead());
  account.LeakLock();
}

}  // namespace schemble
