// lint-path: src/runtime/fixture_arrival_pump.cc
// lint-expect: arrival-pump
// lint-expect: arrival-pump
//
// An arrival pump touching a domain mutex: every variant — guard
// construction, a raw Lock() call, and reading guarded state through mu_
// — fires, and there is no marker escape. Ingest must stay off every
// domain mutex; locking work belongs in the domain's admitter.

namespace schemble {

struct PumpFixture {
  void ArrivalPumpLoop(int pump) {
    MutexLock lock(&mu_);  // fires: guard inside a pump body
    domain_.mu_.Lock();    // fires: raw lock call inside a pump body
    domain_.inbox.PushRouted(pump);  // crosses(domain)
  }

  Mutex mu_{LockRank::kLeaf, "fixture.mu"};
  Domain domain_;
};

}  // namespace schemble
