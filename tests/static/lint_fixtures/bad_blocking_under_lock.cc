// lint-path: src/runtime/fixture_blocking.cc
// lint-expect: blocking-under-lock
// lint-expect: blocking-under-lock
// lint-expect: blocking-under-lock
// lint-expect: blocking-under-lock
//
// Blocking calls made while a lock is statically held: inside a MutexLock
// guard scope, inside a SCHEMBLE_REQUIRES inline body, a CV wait on a
// DIFFERENT mutex, and a clock sleep under a guard. Lint fixtures are
// text-only (never compiled); see lint_fixtures_test.py.

namespace schemble {

class BlockingFixture {
 public:
  void PushUnderGuard() {
    MutexLock lock(&mu_);
    queue_.Push(1);  // fires: queue push can wait for space
  }

  void PopInRequiresBody() SCHEMBLE_REQUIRES(mu_) {
    queue_.Pop();  // fires: the inline body holds mu_
  }

  void WaitOnForeignMutex() {
    MutexLock lock(&mu_);
    other_cv_.Wait(other_mu_);  // fires: waits on a mutex it does not hold
  }

  void SleepUnderGuard() {
    MutexLock lock(&mu_);
    clock_->SleepUntil(deadline_);  // fires: clock sleep under the lock
  }

 private:
  Mutex mu_{LockRank::kLeaf, "fixture.mu"};
  Mutex other_mu_{LockRank::kLeaf, "fixture.other_mu"};
  CondVar other_cv_;
  MpmcQueue<int> queue_{8};
  Clock* clock_ = nullptr;
  TimePoint deadline_;
};

}  // namespace schemble
