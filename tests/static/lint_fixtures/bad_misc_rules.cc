// lint-path: src/runtime/fixture_misc.cc
// lint-expect: fp-determinism
// lint-expect: hot-path
// lint-expect: policy-serialization
// lint-expect: domain-crossing
// lint-expect: batch-workspace
//
// One violation each for the pre-existing src/runtime rules, so the
// fixture suite locks their behaviour too.

namespace schemble {

struct MiscFixture {
  double Fused(double a, double b, double c) {
    return std::fma(a, b, c);  // fires: fp-determinism
  }

  SCHEMBLE_HOT void Hot(std::vector<int>* out) {
    out->push_back(1);  // fires: untracked growth in a hot function
  }

  void Stateful() {
    policy_->OnArrival(1);  // fires: no serialized(mu_) marker
  }

  void Cross() {
    peer_.PushRouted(2);  // fires: no crosses(domain) marker
  }

  void Batch() {
    TaskBatch batch;  // fires: no batch-workspace marker
    (void)batch;
  }

  ServingPolicy* policy_ = nullptr;
  Domain peer_;
};

}  // namespace schemble
