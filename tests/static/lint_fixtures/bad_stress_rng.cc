// lint-path: src/stress/fixture_rng.cc
// lint-expect: stress-rng
// lint-expect: stress-rng
//
// Hidden entropy sources in the stress harness: both a std:: engine and
// C rand() break the replay-from-seed guarantee.

namespace schemble {

struct RngFixture {
  int Draw() {
    std::mt19937 engine(seed_);  // fires: std engine outside the Lcg
    return static_cast<int>(engine() + rand());  // fires: C rand()
  }

  unsigned seed_ = 0;
};

}  // namespace schemble
