// lint-path: src/serving/fixture_naked.cc
// lint-expect: naked-mutex
// lint-expect: naked-mutex
// lint-expect: ts-suppression
//
// Raw standard-library locking primitives and a thread-safety-analysis
// suppression outside thread_annotations.h.

namespace schemble {

struct NakedFixture {
  void Locked() {
    std::lock_guard<std::mutex> guard(raw_);  // fires: naked lock_guard
  }

  void Silenced() SCHEMBLE_NO_THREAD_SAFETY_ANALYSIS {  // fires
    value_ = 1;
  }

  std::mutex raw_;  // fires: naked mutex
  int value_ = 0;
};

}  // namespace schemble
