// lint-path: src/runtime/fixture_rank_ok.cc
// lint-expect: none
//
// The three sanctioned ways a Mutex joins the rank table: LockRank::k* on
// the declaration line, on the next line (clang-format wraps long member
// initializers), or a `// ranked:` marker when the rank is a constructor
// parameter (MpmcQueue) — accepted on the preceding, same, or next line.

namespace schemble {

struct RankedFixture {
  Mutex inline_rank_{LockRank::kLeaf, "fixture.inline"};

  Mutex wrapped_rank_ SCHEMBLE_ACQUIRED_AFTER(lock_ranks::domain_anchor){
      LockRank::kDone, "fixture.wrapped"};

  // ranked: constructor parameter, like MpmcQueue::mu_
  Mutex forwarded_rank_;

  Mutex trailing_marker_;  // ranked: forwarded by the enclosing template
};

}  // namespace schemble
