// lint-path: src/runtime/fixture_relaxed.cc
// lint-expect: relaxed-atomic
// lint-expect: relaxed-atomic
//
// memory_order_relaxed with no `// relaxed-ok:` marker in reach: one bare
// line, and one standing after a covered block with more than one
// non-relaxed line in between (outside the marker's contiguous coverage).

namespace schemble {

struct RelaxedFixture {
  void Touch() {
    count_.fetch_add(1, std::memory_order_relaxed);  // fires: no marker

    // relaxed-ok: fixture marker covering only the block directly below
    covered_.fetch_add(1, std::memory_order_relaxed);

    helper();
    other_helper();
    stale_.store(1, std::memory_order_relaxed);  // fires: out of coverage
  }

  void helper() {}
  void other_helper() {}

  std::atomic<int> count_{0};
  std::atomic<int> covered_{0};
  std::atomic<int> stale_{0};
};

}  // namespace schemble
