// lint-path: src/runtime/fixture_relaxed_ok.cc
// lint-expect: none
//
// The relaxed-atomic marker's coverage semantics: a `// relaxed-ok:` line
// covers the contiguous block of relaxed lines below it, tolerating a
// single non-relaxed line inside the block (multi-line statements split
// the operand and the memory_order across lines).

namespace schemble {

struct RelaxedOkFixture {
  void Snapshot() {
    // relaxed-ok: monotonic telemetry counters; fixture block coverage
    a_.fetch_add(1, std::memory_order_relaxed);
    b_.fetch_add(1, std::memory_order_relaxed);
    c_with_a_very_long_name_.fetch_add(
        1, std::memory_order_relaxed);
    d_.store(a_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  }

  void Inline() {
    e_.store(1, std::memory_order_relaxed);  // relaxed-ok: same-line marker
  }

  std::atomic<long> a_{0}, b_{0}, c_with_a_very_long_name_{0};
  std::atomic<long> d_{0}, e_{0};
};

}  // namespace schemble
