// lint-path: src/runtime/fixture_arrival_pump_ok.cc
// lint-expect: none
//
// The approved arrival-pump shape: route against a lock-free board read,
// push through the marked inbox surface (non-blocking first, blocking
// fallback), publish per-pump counters as plain slots read after join.
// No mutex primitive appears anywhere in the body.

namespace schemble {

struct PumpOkFixture {
  void ArrivalPumpLoop(int pump) {
    board_.ReadInto(&loads_);
    const int d = router_->Route(pump, loads_);
    const size_t pushed =
        domains_[d].TryPushRoutedAll(batch_);  // crosses(domain)
    if (pushed < batch_.size()) {
      domains_[d].PushRouted(batch_);  // crosses(domain)
    }
    routed_[pump] += 1;
  }

  DomainLoadBoard board_;
  RoutingPolicy* router_ = nullptr;
  std::vector<Domain> domains_;
  std::vector<int> batch_;
  std::vector<long> routed_;
  std::vector<DomainLoad> loads_;
};

}  // namespace schemble
