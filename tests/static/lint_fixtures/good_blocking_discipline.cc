// lint-path: src/runtime/fixture_blocking_ok.cc
// lint-expect: none
//
// The sanctioned patterns the blocking-under-lock rule must NOT flag:
// waiting on the mutex the scope itself holds (the CV pattern), blocking
// inside a guard's Release()/Acquire() window, a justified
// `// blocking-ok:` marker, and Try* variants (never block by contract).

namespace schemble {

class BlockingOkFixture {
 public:
  void WaitOnOwnMutex() {
    MutexLock lock(&mu_);
    while (!ready_) cv_.Wait(mu_);  // waits on the held mutex: allowed
  }

  void BlockInReleaseWindow() {
    MutexLock lock(&mu_);
    lock.Release();
    queue_.Push(1);  // off-lock: the guard is released here
    lock.Acquire();
  }

  void JustifiedBlocking() {
    MutexLock lock(&mu_);
    // blocking-ok: fixture-only justification for the marker escape
    queue_.Push(2);
  }

  void TryVariantsNeverBlock() SCHEMBLE_REQUIRES(mu_) {
    queue_.TryPush(3);
    queue_.TryPop();
    queue_.TryPopN(&drain_, 4);
    queue_.StealN(&drain_, 4);
  }

 private:
  Mutex mu_{LockRank::kLeaf, "fixture.mu"};
  CondVar cv_;
  MpmcQueue<int> queue_{8};
  std::vector<int> drain_;
  bool ready_ = false;
};

}  // namespace schemble
