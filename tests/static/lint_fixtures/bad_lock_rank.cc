// lint-path: src/runtime/fixture_rank.cc
// lint-expect: lock-rank
// lint-expect: lock-rank
//
// Mutexes declared without placing themselves in the global rank table:
// a default-style member and a brace-initialized local, neither naming a
// LockRank::k* constant nor carrying a `// ranked:` marker.

namespace schemble {

struct RanklessFixture {
  void Local() {
    Mutex scratch{SomeOtherArg(), "fixture.scratch"};  // fires
    MutexLock lock(&scratch);
  }

  Mutex mu_;  // fires: no rank anywhere in reach
};

}  // namespace schemble
