// Deliberate lock-ORDER violation. This TU must NOT compile when the clang
// thread-safety analysis is on: the static-analysis CI job builds the
// `lock_order_violation` target (excluded from ALL) through a ctest
// WILL_FAIL test and fails if the build unexpectedly succeeds — proving the
// acquired_before/after layer (-Wthread-safety-beta, promoted to an error
// for this target) actually rejects rank inversions at compile time rather
// than leaving them all to the runtime validator.
//
// The clang ordering analysis is intraprocedural: it catches an inversion
// it can see within one function against annotations it can see on the
// mutexes involved — which is exactly what this TU provides. Cross-class
// inversions assembled at runtime are the runtime validator's job
// (tests/runtime/lock_order_validator_test.cc). Building this TU with
// plain gcc (no analysis) succeeds by design.

#include "common/thread_annotations.h"

namespace schemble {

// External linkage throughout, like thread_safety_violation.cc: this TU
// must fail ONLY through the thread-safety diagnostics.
class InvertedOrder {
 public:
  // The legal order: first_ (kDomain) strictly before second_ (kDone).
  void RightOrder() SCHEMBLE_EXCLUDES(first_, second_) {
    MutexLock first(&first_);
    MutexLock second(&second_);
  }

  // VIOLATION: blocks on first_ while holding second_, inverting the
  // ACQUIRED_AFTER relation declared on the members below.
  void WrongOrder() SCHEMBLE_EXCLUDES(first_, second_) {
    MutexLock second(&second_);
    MutexLock first(&first_);
  }

 private:
  Mutex first_{LockRank::kDomain, "inversion.first"};
  Mutex second_ SCHEMBLE_ACQUIRED_AFTER(first_){LockRank::kDone,
                                                "inversion.second"};
};

// Anchor so the class is fully instantiated.
void TouchInversion() {
  InvertedOrder inverted;
  inverted.RightOrder();
  inverted.WrongOrder();
}

}  // namespace schemble
