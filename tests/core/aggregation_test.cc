#include "core/aggregation.h"

#include <gtest/gtest.h>

#include "common/prob.h"
#include "models/task_factory.h"

namespace schemble {
namespace {

std::vector<Query> History(const SyntheticTask& task, int n, uint64_t seed) {
  return task.GenerateDataset(n, DifficultyDistribution::UniformFull(), seed);
}

TEST(AggregatorTest, WeightedAverageMatchesTaskAggregation) {
  SyntheticTask task = MakeTextMatchingTask(1);
  auto history = History(task, 50, 3);
  auto agg = Aggregator::Build(task, history, {});
  ASSERT_TRUE(agg.ok());
  const Query& q = history[0];
  const auto produced = agg.value().Aggregate(q, 0b011);
  const auto expected = task.AggregateSubset(q, {0, 1});
  for (size_t i = 0; i < produced.size(); ++i) {
    EXPECT_NEAR(produced[i], expected[i], 1e-12);
  }
}

TEST(AggregatorTest, VotingExcludesMissingModels) {
  SyntheticTask task = MakeTextMatchingTask(5);
  auto history = History(task, 50, 7);
  AggregatorConfig config;
  config.kind = AggregationKind::kVoting;
  auto agg = Aggregator::Build(task, history, config);
  ASSERT_TRUE(agg.ok());
  const Query& q = history[0];
  const auto votes = agg.value().Aggregate(q, 0b001);
  // One voter: its argmax gets all the (normalized) vote mass.
  EXPECT_NEAR(votes[Argmax(q.model_outputs[0])], 1.0, 1e-9);
}

TEST(AggregatorTest, VotingFullEnsembleUsuallyMatchesAveraging) {
  SyntheticTask task = MakeTextMatchingTask(9);
  auto history = History(task, 600, 11);
  AggregatorConfig vote_config;
  vote_config.kind = AggregationKind::kVoting;
  auto vote = Aggregator::Build(task, history, vote_config);
  ASSERT_TRUE(vote.ok());
  int agree = 0;
  for (const Query& q : history) {
    const auto v = vote.value().Aggregate(q, 0b111);
    if (Argmax(v) == Argmax(q.ensemble_output)) ++agree;
  }
  EXPECT_GT(agree, 500);
}

TEST(AggregatorTest, StackingRequiresClassification) {
  SyntheticTask task = MakeVehicleCountingTask(13);
  auto history = History(task, 50, 15);
  AggregatorConfig config;
  config.kind = AggregationKind::kStacking;
  EXPECT_FALSE(Aggregator::Build(task, history, config).ok());
}

TEST(AggregatorTest, StackingRejectsBadConfig) {
  SyntheticTask task = MakeTextMatchingTask(17);
  AggregatorConfig config;
  config.kind = AggregationKind::kStacking;
  EXPECT_FALSE(Aggregator::Build(task, {}, config).ok());
  auto history = History(task, 50, 19);
  config.knn_k = 0;
  EXPECT_FALSE(Aggregator::Build(task, history, config).ok());
}

TEST(AggregatorTest, StackingWithFullOutputsTracksEnsemble) {
  SyntheticTask task = MakeTextMatchingTask(21);
  auto history = History(task, 1500, 23);
  AggregatorConfig config;
  config.kind = AggregationKind::kStacking;
  auto agg = Aggregator::Build(task, history, config);
  ASSERT_TRUE(agg.ok());
  auto test = task.GenerateDataset(
      400, DifficultyDistribution::UniformFull(), 29, /*first_id=*/90000);
  int agree = 0;
  for (const Query& q : test) {
    const auto out = agg.value().Aggregate(q, 0b111);
    if (Argmax(out) == Argmax(q.ensemble_output)) ++agree;
  }
  EXPECT_GT(agree, 340);
}

TEST(AggregatorTest, StackingWithMissingOutputsDegradesGracefully) {
  SyntheticTask task = MakeTextMatchingTask(25);
  auto history = History(task, 1500, 27);
  AggregatorConfig config;
  config.kind = AggregationKind::kStacking;
  auto agg = Aggregator::Build(task, history, config);
  ASSERT_TRUE(agg.ok());
  auto test = task.GenerateDataset(
      300, DifficultyDistribution::Realistic(), 31, /*first_id=*/91000);
  int agree_partial = 0;
  for (const Query& q : test) {
    // Only the two strongest models executed; KNN fills BiLSTM's slot.
    const auto out = agg.value().Aggregate(q, 0b110);
    if (Argmax(out) == Argmax(q.ensemble_output)) ++agree_partial;
  }
  // Realistic (mostly easy) traffic: partial-output stacking should stay
  // close to the ensemble.
  EXPECT_GT(agree_partial, 240);
}

TEST(AggregatorTest, StackingRobustToKChoice) {
  // Fig. 20b: accuracy is robust for k in [1, 100].
  SyntheticTask task = MakeTextMatchingTask(33);
  auto history = History(task, 1200, 35);
  auto test = task.GenerateDataset(
      300, DifficultyDistribution::Realistic(), 37, /*first_id=*/92000);
  double previous = -1.0;
  for (int k : {1, 10, 100}) {
    AggregatorConfig config;
    config.kind = AggregationKind::kStacking;
    config.knn_k = k;
    auto agg = Aggregator::Build(task, history, config);
    ASSERT_TRUE(agg.ok());
    int agree = 0;
    for (const Query& q : test) {
      const auto out = agg.value().Aggregate(q, 0b101);
      if (Argmax(out) == Argmax(q.ensemble_output)) ++agree;
    }
    const double acc = static_cast<double>(agree) / test.size();
    if (previous >= 0.0) {
      EXPECT_NEAR(acc, previous, 0.08);
    }
    previous = acc;
  }
}

}  // namespace
}  // namespace schemble
