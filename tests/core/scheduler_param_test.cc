// Parameterized property sweep over random scheduling instances: the DP
// scheduler must respect feasibility invariants, dominate every greedy
// order, and stay within the quantization bound of the brute-force optimum.

#include <gtest/gtest.h>

#include <functional>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "core/scheduler.h"

namespace schemble {
namespace {

struct Instance {
  std::vector<SchedulerQuery> queries;
  SchedulerEnv env;
};

std::vector<double> MonotoneUtilities(const std::vector<double>& p) {
  const int m = static_cast<int>(p.size());
  const SubsetMask full = FullMask(m);
  std::vector<double> row(full + 1, 0.0);
  for (SubsetMask mask = 1; mask <= full; ++mask) {
    double miss = 1.0;
    for (int k = 0; k < m; ++k) {
      if (mask & (SubsetMask{1} << k)) miss *= 1.0 - p[k];
    }
    row[mask] = 1.0 - miss;
  }
  return row;
}

Instance MakeInstance(uint64_t seed, int n, int m) {
  Rng rng(seed);
  Instance inst;
  inst.env.now = rng.UniformInt(0, 20);
  for (int k = 0; k < m; ++k) {
    inst.env.model_available_at.push_back(rng.UniformInt(0, 30));
    inst.env.model_exec_time.push_back(rng.UniformInt(5, 30));
  }
  for (int i = 0; i < n; ++i) {
    SchedulerQuery q;
    q.id = i;
    q.arrival = rng.UniformInt(0, 15);
    q.deadline = inst.env.now + rng.UniformInt(15, 120);
    q.predicted_score = rng.NextDouble();
    std::vector<double> p(m);
    for (double& v : p) v = rng.Uniform(0.3, 0.9);
    q.utilities = MonotoneUtilities(p);
    inst.queries.push_back(std::move(q));
  }
  return inst;
}

/// Replays a plan in its stated order and verifies every scheduled query
/// completes by its deadline; returns the recomputed total utility.
double VerifyPlanFeasible(const Instance& inst, const SchedulePlan& plan) {
  std::vector<SimTime> avail = inst.env.model_available_at;
  for (SimTime& t : avail) t = std::max(t, inst.env.now);
  double utility = 0.0;
  for (const ScheduleDecision& d : plan.decisions) {
    if (d.subset == 0) continue;
    const SchedulerQuery* query = nullptr;
    for (const auto& q : inst.queries) {
      if (q.id == d.query_id) query = &q;
    }
    EXPECT_NE(query, nullptr);
    const SimTime completion =
        ApplySubset(d.subset, inst.env.model_exec_time, avail);
    EXPECT_LE(completion, query->deadline)
        << "query " << d.query_id << " scheduled past its deadline";
    EXPECT_EQ(completion, d.completion);
    utility += query->utilities[d.subset];
  }
  return utility;
}

class SchedulerSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SchedulerSweepTest, DpPlansAreFeasibleAndUtilityConsistent) {
  const auto [n, m, seed] = GetParam();
  const Instance inst = MakeInstance(1000 + seed, n, m);
  DpScheduler dp;
  const SchedulePlan plan = dp.Schedule(inst.queries, inst.env);
  EXPECT_EQ(plan.decisions.size(), inst.queries.size());
  const double replayed = VerifyPlanFeasible(inst, plan);
  EXPECT_NEAR(replayed, plan.total_utility, 1e-9);
}

TEST_P(SchedulerSweepTest, DpDominatesEveryGreedyOrder) {
  const auto [n, m, seed] = GetParam();
  const Instance inst = MakeInstance(2000 + seed, n, m);
  DpScheduler::Options options;
  options.max_solutions_per_cell = 32;
  const double dp_utility =
      DpScheduler(options).Schedule(inst.queries, inst.env).total_utility;
  for (auto order :
       {GreedyScheduler::Order::kEdf, GreedyScheduler::Order::kFifo,
        GreedyScheduler::Order::kSjf}) {
    const double greedy_utility =
        GreedyScheduler(order).Schedule(inst.queries, inst.env).total_utility;
    // Quantization can cost up to delta per query.
    EXPECT_GE(dp_utility, greedy_utility - 0.01 * n - 1e-9);
  }
}

TEST_P(SchedulerSweepTest, GreedyPlansAreFeasible) {
  const auto [n, m, seed] = GetParam();
  const Instance inst = MakeInstance(3000 + seed, n, m);
  for (auto order :
       {GreedyScheduler::Order::kEdf, GreedyScheduler::Order::kFifo,
        GreedyScheduler::Order::kSjf}) {
    const SchedulePlan plan =
        GreedyScheduler(order).Schedule(inst.queries, inst.env);
    const double replayed = VerifyPlanFeasible(inst, plan);
    EXPECT_NEAR(replayed, plan.total_utility, 1e-9);
  }
}

TEST_P(SchedulerSweepTest, DpDeterministic) {
  const auto [n, m, seed] = GetParam();
  const Instance inst = MakeInstance(4000 + seed, n, m);
  DpScheduler dp;
  const SchedulePlan a = dp.Schedule(inst.queries, inst.env);
  const SchedulePlan b = dp.Schedule(inst.queries, inst.env);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].query_id, b.decisions[i].query_id);
    EXPECT_EQ(a.decisions[i].subset, b.decisions[i].subset);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, SchedulerSweepTest,
    ::testing::Combine(::testing::Values(1, 3, 6, 10),   // queries
                       ::testing::Values(2, 3, 4),        // models
                       ::testing::Values(1, 2, 3)),       // seeds
    [](const ::testing::TestParamInfo<std::tuple<int, int, int>>& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "m" +
             std::to_string(std::get<1>(param_info.param)) + "s" +
             std::to_string(std::get<2>(param_info.param));
    });

}  // namespace
}  // namespace schemble
