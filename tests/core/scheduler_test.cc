#include "core/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace schemble {
namespace {

// ---------------------------------------------------------------------------
// Helpers: random instances and brute-force reference schedulers.
// ---------------------------------------------------------------------------

// Monotone utility row over subsets with diminishing marginal gains
// (assumption 1): U(mask) = 1 - prod_{k in mask} (1 - p_k).
std::vector<double> MonotoneUtilities(const std::vector<double>& p) {
  const int m = static_cast<int>(p.size());
  const SubsetMask full = FullMask(m);
  std::vector<double> row(full + 1, 0.0);
  for (SubsetMask mask = 1; mask <= full; ++mask) {
    double miss = 1.0;
    for (int k = 0; k < m; ++k) {
      if (mask & (SubsetMask{1} << k)) miss *= 1.0 - p[k];
    }
    row[mask] = 1.0 - miss;
  }
  return row;
}

SchedulerQuery MakeQuery(int64_t id, SimTime arrival, SimTime deadline,
                         std::vector<double> utilities, double score = 0.5) {
  SchedulerQuery q;
  q.id = id;
  q.arrival = arrival;
  q.deadline = deadline;
  q.predicted_score = score;
  q.utilities = std::move(utilities);
  return q;
}

// Exhaustive optimum over consistent-order schedules: all query
// permutations x all subset assignments.
double BruteForceConsistent(const std::vector<SchedulerQuery>& queries,
                            const SchedulerEnv& env) {
  const int n = static_cast<int>(queries.size());
  const SubsetMask full = FullMask(env.num_models());
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end());
  double best = 0.0;
  do {
    // Enumerate subset assignments in this order.
    std::vector<SubsetMask> assignment(n, 0);
    std::function<void(int, std::vector<SimTime>, double)> rec =
        [&](int idx, std::vector<SimTime> avail, double utility) {
          if (idx == n) {
            best = std::max(best, utility);
            return;
          }
          const SchedulerQuery& q = queries[order[idx]];
          for (SubsetMask mask = 0; mask <= full; ++mask) {
            std::vector<SimTime> next = avail;
            double u = utility;
            if (mask != 0) {
              const SimTime completion =
                  ApplySubset(mask, env.model_exec_time, next);
              if (completion > q.deadline) continue;
              u += q.utilities[mask];
            }
            rec(idx + 1, std::move(next), u);
          }
        };
    std::vector<SimTime> avail = env.model_available_at;
    for (SimTime& t : avail) t = std::max(t, env.now);
    rec(0, avail, 0.0);
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

// Exhaustive optimum allowing *inconsistent* per-model execution orders:
// assign subsets, then try every per-model permutation of its tasks.
double BruteForceInconsistent(const std::vector<SchedulerQuery>& queries,
                              const SchedulerEnv& env) {
  const int n = static_cast<int>(queries.size());
  const int m = env.num_models();
  const SubsetMask full = FullMask(m);
  double best = 0.0;

  std::vector<SubsetMask> assignment(n, 0);
  std::function<void(int)> assign = [&](int idx) {
    if (idx < n) {
      for (SubsetMask mask = 0; mask <= full; ++mask) {
        assignment[idx] = mask;
        assign(idx + 1);
      }
      return;
    }
    // Tasks per model.
    std::vector<std::vector<int>> tasks(m);
    for (int i = 0; i < n; ++i) {
      for (int k = 0; k < m; ++k) {
        if (assignment[i] & (SubsetMask{1} << k)) tasks[k].push_back(i);
      }
    }
    // Enumerate per-model orders recursively.
    std::vector<std::vector<int>> orders(m);
    std::function<void(int)> order_rec = [&](int model) {
      if (model == m) {
        std::vector<SimTime> completion(n, 0);
        for (int k = 0; k < m; ++k) {
          SimTime t = std::max(env.model_available_at[k], env.now);
          for (int q : orders[k]) {
            t += env.model_exec_time[k];
            completion[q] = std::max(completion[q], t);
          }
        }
        double utility = 0.0;
        for (int i = 0; i < n; ++i) {
          if (assignment[i] == 0) continue;
          if (completion[i] <= queries[i].deadline) {
            utility += queries[i].utilities[assignment[i]];
          }
        }
        best = std::max(best, utility);
        return;
      }
      std::vector<int> perm = tasks[model];
      std::sort(perm.begin(), perm.end());
      do {
        orders[model] = perm;
        order_rec(model + 1);
      } while (std::next_permutation(perm.begin(), perm.end()));
    };
    order_rec(0);
  };
  assign(0);
  return best;
}

SchedulerEnv TwoModelEnv(SimTime now = 0) {
  SchedulerEnv env;
  env.now = now;
  env.model_available_at = {now, now};
  env.model_exec_time = {10, 20};
  return env;
}

// ---------------------------------------------------------------------------
// ApplySubset
// ---------------------------------------------------------------------------

TEST(ApplySubsetTest, UpdatesLoadsAndReturnsCompletion) {
  std::vector<SimTime> avail = {5, 7, 0};
  const std::vector<SimTime> exec = {10, 20, 30};
  const SimTime completion = ApplySubset(0b011, exec, avail);
  EXPECT_EQ(avail, (std::vector<SimTime>{15, 27, 0}));
  EXPECT_EQ(completion, 27);
}

TEST(ApplySubsetTest, EmptySubsetIsNoop) {
  std::vector<SimTime> avail = {5, 7};
  const std::vector<SimTime> exec = {10, 20};
  EXPECT_EQ(ApplySubset(0, exec, avail), 0);
  EXPECT_EQ(avail, (std::vector<SimTime>{5, 7}));
}

// ---------------------------------------------------------------------------
// DpScheduler basics
// ---------------------------------------------------------------------------

TEST(DpSchedulerTest, EmptyBufferEmptyPlan) {
  DpScheduler dp;
  const SchedulePlan plan = dp.Schedule({}, TwoModelEnv());
  EXPECT_TRUE(plan.decisions.empty());
  EXPECT_EQ(plan.total_utility, 0.0);
}

TEST(DpSchedulerTest, SingleQueryGetsFullEnsembleWhenFeasible) {
  DpScheduler dp;
  std::vector<SchedulerQuery> queries = {
      MakeQuery(1, 0, 100, MonotoneUtilities({0.7, 0.8}))};
  const SchedulePlan plan = dp.Schedule(queries, TwoModelEnv());
  ASSERT_EQ(plan.decisions.size(), 1u);
  EXPECT_EQ(plan.decisions[0].subset, 0b11u);
  EXPECT_NEAR(plan.total_utility, 1.0 - 0.3 * 0.2, 1e-9);
}

TEST(DpSchedulerTest, InfeasibleDeadlineIsSkipped) {
  DpScheduler dp;
  std::vector<SchedulerQuery> queries = {
      MakeQuery(1, 0, 5, MonotoneUtilities({0.7, 0.8}))};
  const SchedulePlan plan = dp.Schedule(queries, TwoModelEnv());
  ASSERT_EQ(plan.decisions.size(), 1u);
  EXPECT_EQ(plan.decisions[0].subset, 0u);
  EXPECT_EQ(plan.total_utility, 0.0);
}

TEST(DpSchedulerTest, TightDeadlineFallsBackToFastModel) {
  DpScheduler dp;
  // Only model 0 (exec 10) fits a deadline of 12.
  std::vector<SchedulerQuery> queries = {
      MakeQuery(1, 0, 12, MonotoneUtilities({0.7, 0.8}))};
  const SchedulePlan plan = dp.Schedule(queries, TwoModelEnv());
  EXPECT_EQ(plan.decisions[0].subset, 0b01u);
}

TEST(DpSchedulerTest, RespectsBusyModels) {
  DpScheduler dp;
  SchedulerEnv env = TwoModelEnv();
  env.model_available_at = {50, 0};  // model 0 busy until t=50
  std::vector<SchedulerQuery> queries = {
      MakeQuery(1, 0, 30, MonotoneUtilities({0.7, 0.8}))};
  const SchedulePlan plan = dp.Schedule(queries, env);
  // Model 0 cannot finish by 30; model 1 (exec 20) can.
  EXPECT_EQ(plan.decisions[0].subset, 0b10u);
}

TEST(DpSchedulerTest, SharesCapacityAcrossQueriesUnderPressure) {
  DpScheduler dp;
  // Two queries, deadline 25: both on both models is infeasible
  // (model1 twice = 40); splitting one per model maximizes utility.
  std::vector<SchedulerQuery> queries = {
      MakeQuery(1, 0, 25, MonotoneUtilities({0.6, 0.7})),
      MakeQuery(2, 0, 25, MonotoneUtilities({0.6, 0.7}))};
  const SchedulePlan plan = dp.Schedule(queries, TwoModelEnv());
  double utility = 0.0;
  for (const auto& d : plan.decisions) {
    EXPECT_NE(d.subset, 0u);
    utility += d.subset == 0b11 ? 0.88 : (d.subset == 0b10 ? 0.7 : 0.6);
  }
  // Best split: one query on model 0 (10), other on model 1 (20) -> 1.3;
  // or first query on both (20) + second on model 0 (20) -> 0.88+0.6=1.48.
  EXPECT_NEAR(plan.total_utility, 1.48, 0.02);
}

TEST(DpSchedulerTest, PlanListsQueriesInEdfOrder) {
  DpScheduler dp;
  std::vector<SchedulerQuery> queries = {
      MakeQuery(1, 0, 300, MonotoneUtilities({0.5, 0.5})),
      MakeQuery(2, 0, 100, MonotoneUtilities({0.5, 0.5})),
      MakeQuery(3, 0, 200, MonotoneUtilities({0.5, 0.5}))};
  const SchedulePlan plan = dp.Schedule(queries, TwoModelEnv());
  ASSERT_EQ(plan.decisions.size(), 3u);
  EXPECT_EQ(plan.decisions[0].query_id, 2);
  EXPECT_EQ(plan.decisions[1].query_id, 3);
  EXPECT_EQ(plan.decisions[2].query_id, 1);
}

TEST(DpSchedulerTest, MaxQueriesWindowDefersTail) {
  DpScheduler::Options options;
  options.max_queries = 2;
  DpScheduler dp(options);
  std::vector<SchedulerQuery> queries;
  for (int i = 0; i < 5; ++i) {
    queries.push_back(
        MakeQuery(i, 0, 1000 + i, MonotoneUtilities({0.5, 0.5})));
  }
  const SchedulePlan plan = dp.Schedule(queries, TwoModelEnv());
  ASSERT_EQ(plan.decisions.size(), 5u);
  int scheduled = 0;
  for (const auto& d : plan.decisions) {
    if (d.subset != 0) ++scheduled;
  }
  EXPECT_LE(scheduled, 2);
}

TEST(DpSchedulerTest, OpsCounterPositiveAndGrowsWithDelta) {
  DpScheduler::Options coarse;
  coarse.delta = 0.1;
  DpScheduler::Options fine;
  fine.delta = 0.001;
  DpScheduler dp_coarse(coarse);
  DpScheduler dp_fine(fine);
  std::vector<SchedulerQuery> queries;
  for (int i = 0; i < 6; ++i) {
    queries.push_back(
        MakeQuery(i, 0, 40 + 7 * i, MonotoneUtilities({0.6, 0.7})));
  }
  dp_coarse.Schedule(queries, TwoModelEnv());
  dp_fine.Schedule(queries, TwoModelEnv());
  EXPECT_GT(dp_coarse.last_ops(), 0);
  EXPECT_GT(dp_fine.last_ops(), dp_coarse.last_ops());
}

TEST(DpSchedulerTest, DeterministicAcrossRuns) {
  DpScheduler dp;
  std::vector<SchedulerQuery> queries = {
      MakeQuery(1, 0, 35, MonotoneUtilities({0.6, 0.7})),
      MakeQuery(2, 5, 55, MonotoneUtilities({0.4, 0.9})),
      MakeQuery(3, 9, 45, MonotoneUtilities({0.8, 0.3}))};
  const SchedulePlan a = dp.Schedule(queries, TwoModelEnv());
  const SchedulePlan b = dp.Schedule(queries, TwoModelEnv());
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].subset, b.decisions[i].subset);
  }
  EXPECT_DOUBLE_EQ(a.total_utility, b.total_utility);
}

// ---------------------------------------------------------------------------
// GreedyScheduler
// ---------------------------------------------------------------------------

TEST(GreedySchedulerTest, PicksHighestUtilityFeasibleSubset) {
  GreedyScheduler greedy(GreedyScheduler::Order::kEdf);
  std::vector<SchedulerQuery> queries = {
      MakeQuery(1, 0, 100, MonotoneUtilities({0.7, 0.8}))};
  const SchedulePlan plan = greedy.Schedule(queries, TwoModelEnv());
  EXPECT_EQ(plan.decisions[0].subset, 0b11u);
}

TEST(GreedySchedulerTest, GreedyOverCommitsUnderPressure) {
  // The classic failure: greedy gives query 1 the full ensemble, leaving
  // nothing feasible for query 2; DP splits.
  std::vector<SchedulerQuery> queries = {
      MakeQuery(1, 0, 20, MonotoneUtilities({0.6, 0.7})),
      MakeQuery(2, 0, 20, MonotoneUtilities({0.6, 0.7}))};
  const SchedulePlan greedy =
      GreedyScheduler(GreedyScheduler::Order::kEdf)
          .Schedule(queries, TwoModelEnv());
  const SchedulePlan dp = DpScheduler().Schedule(queries, TwoModelEnv());
  EXPECT_GE(dp.total_utility, greedy.total_utility);
}

TEST(GreedySchedulerTest, FifoOrdersByArrival) {
  GreedyScheduler greedy(GreedyScheduler::Order::kFifo);
  std::vector<SchedulerQuery> queries = {
      MakeQuery(1, 50, 300, MonotoneUtilities({0.5, 0.5})),
      MakeQuery(2, 10, 400, MonotoneUtilities({0.5, 0.5}))};
  const SchedulePlan plan = greedy.Schedule(queries, TwoModelEnv());
  EXPECT_EQ(plan.decisions[0].query_id, 2);
}

TEST(GreedySchedulerTest, SjfOrdersByPredictedScore) {
  GreedyScheduler greedy(GreedyScheduler::Order::kSjf);
  std::vector<SchedulerQuery> queries = {
      MakeQuery(1, 0, 300, MonotoneUtilities({0.5, 0.5}), 0.9),
      MakeQuery(2, 0, 400, MonotoneUtilities({0.5, 0.5}), 0.1)};
  const SchedulePlan plan = greedy.Schedule(queries, TwoModelEnv());
  EXPECT_EQ(plan.decisions[0].query_id, 2);
}

TEST(GreedySchedulerTest, RejectsInfeasibleQuery) {
  GreedyScheduler greedy(GreedyScheduler::Order::kEdf);
  std::vector<SchedulerQuery> queries = {
      MakeQuery(1, 0, 2, MonotoneUtilities({0.5, 0.5}))};
  const SchedulePlan plan = greedy.Schedule(queries, TwoModelEnv());
  EXPECT_EQ(plan.decisions[0].subset, 0u);
}

// ---------------------------------------------------------------------------
// Theory: Theorems 1-3 as randomized property tests.
// ---------------------------------------------------------------------------

struct RandomInstance {
  std::vector<SchedulerQuery> queries;
  SchedulerEnv env;
};

RandomInstance MakeRandomInstance(Rng& rng, int n, int m) {
  RandomInstance inst;
  inst.env.now = 0;
  for (int k = 0; k < m; ++k) {
    inst.env.model_available_at.push_back(rng.UniformInt(0, 15));
    inst.env.model_exec_time.push_back(rng.UniformInt(5, 25));
  }
  for (int i = 0; i < n; ++i) {
    std::vector<double> p(m);
    for (double& v : p) v = rng.Uniform(0.3, 0.9);
    inst.queries.push_back(MakeQuery(i, rng.UniformInt(0, 10),
                                     rng.UniformInt(20, 90),
                                     MonotoneUtilities(p)));
  }
  return inst;
}

// Theorem 1: restricting to consistent query orders loses nothing.
TEST(SchedulingTheoryTest, ConsistentOrderMatchesInconsistentOptimum) {
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    RandomInstance inst = MakeRandomInstance(rng, 3, 2);
    const double consistent = BruteForceConsistent(inst.queries, inst.env);
    const double inconsistent = BruteForceInconsistent(inst.queries, inst.env);
    EXPECT_NEAR(consistent, inconsistent, 1e-9) << "trial " << trial;
  }
}

// Theorem 2: if a fixed task set is feasible under some order, it is
// feasible under EDF.
TEST(SchedulingTheoryTest, EdfFeasibleWheneverAnyOrderFeasible) {
  Rng rng(202);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 3 + static_cast<int>(rng.UniformInt(0, 1));
    const int m = 2;
    RandomInstance inst = MakeRandomInstance(rng, n, m);
    // Fix subsets randomly (non-empty).
    std::vector<SubsetMask> subset(n);
    for (int i = 0; i < n; ++i) {
      subset[i] = static_cast<SubsetMask>(rng.UniformInt(1, FullMask(m)));
    }
    auto feasible_in_order = [&](const std::vector<int>& order) {
      std::vector<SimTime> avail = inst.env.model_available_at;
      for (SimTime& t : avail) t = std::max(t, inst.env.now);
      for (int idx : order) {
        const SimTime completion =
            ApplySubset(subset[idx], inst.env.model_exec_time, avail);
        if (completion > inst.queries[idx].deadline) return false;
      }
      return true;
    };
    std::vector<int> order(n);
    for (int i = 0; i < n; ++i) order[i] = i;
    bool any_feasible = false;
    std::vector<int> perm = order;
    std::sort(perm.begin(), perm.end());
    do {
      if (feasible_in_order(perm)) {
        any_feasible = true;
        break;
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
    if (!any_feasible) continue;
    // EDF order must also be feasible.
    std::vector<int> edf = order;
    std::sort(edf.begin(), edf.end(), [&](int a, int b) {
      return inst.queries[a].deadline < inst.queries[b].deadline;
    });
    EXPECT_TRUE(feasible_in_order(edf)) << "trial " << trial;
  }
}

// Theorem 3: the DP is a (1 - eps) approximation of the local optimum with
// delta = eps / N.
TEST(SchedulingTheoryTest, DpWithinEpsilonOfBruteForce) {
  Rng rng(303);
  const int n = 4;
  for (int trial = 0; trial < 15; ++trial) {
    RandomInstance inst = MakeRandomInstance(rng, n, 2);
    const double opt = BruteForceConsistent(inst.queries, inst.env);
    DpScheduler::Options options;
    options.delta = 0.01;  // eps = delta * N = 0.04
    options.max_solutions_per_cell = 64;
    DpScheduler dp(options);
    const SchedulePlan plan = dp.Schedule(inst.queries, inst.env);
    EXPECT_GE(plan.total_utility, (1.0 - options.delta * n) * opt - 1e-9)
        << "trial " << trial;
    // And never better than the optimum.
    EXPECT_LE(plan.total_utility, opt + 1e-9);
  }
}

// Finer quantization never yields a worse plan (up to quantization slack).
TEST(SchedulingTheoryTest, SmallerDeltaDoesNotDegradeUtility) {
  Rng rng(404);
  for (int trial = 0; trial < 10; ++trial) {
    RandomInstance inst = MakeRandomInstance(rng, 5, 2);
    DpScheduler::Options coarse;
    coarse.delta = 0.1;
    DpScheduler::Options fine;
    fine.delta = 0.005;
    const double u_coarse =
        DpScheduler(coarse).Schedule(inst.queries, inst.env).total_utility;
    const double u_fine =
        DpScheduler(fine).Schedule(inst.queries, inst.env).total_utility;
    EXPECT_GE(u_fine, u_coarse - 0.1 * inst.queries.size());
  }
}

// DP dominates every greedy variant on random instances.
TEST(SchedulingTheoryTest, DpDominatesGreedy) {
  Rng rng(505);
  int dp_wins = 0;
  for (int trial = 0; trial < 40; ++trial) {
    RandomInstance inst = MakeRandomInstance(rng, 5, 3);
    DpScheduler::Options options;
    options.max_solutions_per_cell = 32;
    const double dp_u =
        DpScheduler(options).Schedule(inst.queries, inst.env).total_utility;
    for (auto order :
         {GreedyScheduler::Order::kEdf, GreedyScheduler::Order::kFifo,
          GreedyScheduler::Order::kSjf}) {
      const double g_u =
          GreedyScheduler(order).Schedule(inst.queries, inst.env).total_utility;
      EXPECT_GE(dp_u, g_u - 0.06) << "trial " << trial;
      if (dp_u > g_u + 1e-9) ++dp_wins;
    }
  }
  EXPECT_GT(dp_wins, 10);
}

}  // namespace
}  // namespace schemble
