#include <gtest/gtest.h>

#include <memory>

#include "core/discrepancy.h"
#include "core/profiling.h"
#include "models/task_factory.h"

namespace schemble {
namespace {

// One shared offline phase for the whole suite: the six-model ensemble is
// expensive to profile exhaustively (which is the point of Eq. 3).
class ProfileCompletionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    task_ = new SyntheticTask(MakeCifar100StyleTask(3));
    auto history = task_->GenerateDataset(
        2000, DifficultyDistribution::UniformFull(), 5);
    auto scorer = DiscrepancyScorer::Fit(*task_, history);
    const auto scores = scorer.value().ScoreAll(history);
    AccuracyProfile::Options options;
    options.bins = 4;
    profile_ = new AccuracyProfile(
        std::move(AccuracyProfile::Build(*task_, history, scores, options))
            .value());
  }

  static void TearDownTestSuite() {
    delete profile_;
    delete task_;
    profile_ = nullptr;
    task_ = nullptr;
  }

  static MarginalUtilityEstimator Estimator() {
    std::vector<double> accuracy(task_->num_models());
    for (int k = 0; k < task_->num_models(); ++k) {
      accuracy[k] = task_->profile(k).base_accuracy;
    }
    return MarginalUtilityEstimator(
        task_->num_models(), accuracy,
        MarginalUtilityEstimator::FitGammas(*profile_));
  }

  static SyntheticTask* task_;
  static AccuracyProfile* profile_;
};

SyntheticTask* ProfileCompletionTest::task_ = nullptr;
AccuracyProfile* ProfileCompletionTest::profile_ = nullptr;

TEST_F(ProfileCompletionTest, SmallSubsetsUnchanged) {
  const AccuracyProfile completed = profile_->CompletedWith(Estimator());
  for (int bin = 0; bin < profile_->bins(); ++bin) {
    for (SubsetMask mask = 1; mask <= FullMask(task_->num_models()); ++mask) {
      if (SubsetSize(mask) <= 2) {
        EXPECT_DOUBLE_EQ(completed.CellUtility(bin, mask),
                         profile_->CellUtility(bin, mask));
      }
    }
  }
}

TEST_F(ProfileCompletionTest, LargeSubsetsApproximateMeasured) {
  const AccuracyProfile completed = profile_->CompletedWith(Estimator());
  double mse = 0.0;
  int count = 0;
  for (int bin = 0; bin < profile_->bins(); ++bin) {
    for (SubsetMask mask = 1; mask <= FullMask(task_->num_models()); ++mask) {
      if (SubsetSize(mask) <= 2) continue;
      const double d =
          completed.CellUtility(bin, mask) - profile_->CellUtility(bin, mask);
      mse += d * d;
      ++count;
    }
  }
  EXPECT_LT(mse / count, 3e-2);
}

TEST_F(ProfileCompletionTest, EstimatedValuesInUnitRange) {
  const AccuracyProfile completed = profile_->CompletedWith(Estimator());
  for (int bin = 0; bin < completed.bins(); ++bin) {
    for (SubsetMask mask = 1; mask <= FullMask(task_->num_models()); ++mask) {
      EXPECT_GE(completed.CellUtility(bin, mask), 0.0);
      EXPECT_LE(completed.CellUtility(bin, mask), 1.0);
    }
  }
}

TEST_F(ProfileCompletionTest, PreservesBinGeometry) {
  const AccuracyProfile completed = profile_->CompletedWith(Estimator());
  EXPECT_EQ(completed.bins(), profile_->bins());
  EXPECT_EQ(completed.num_models(), profile_->num_models());
  for (int bin = 0; bin < completed.bins(); ++bin) {
    EXPECT_EQ(completed.BinCount(bin), profile_->BinCount(bin));
  }
}

TEST_F(ProfileCompletionTest, UtilityRowReflectsCompletion) {
  const AccuracyProfile completed = profile_->CompletedWith(Estimator());
  const auto row = completed.UtilityRow(0.5);
  const int bin = completed.BinOf(0.5);
  for (SubsetMask mask = 0; mask < row.size(); ++mask) {
    if (mask == 0) {
      EXPECT_EQ(row[mask], 0.0);
    } else {
      EXPECT_DOUBLE_EQ(row[mask], completed.CellUtility(bin, mask));
    }
  }
}

}  // namespace
}  // namespace schemble
