#include "core/schemble_policy.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/discrepancy.h"
#include "models/task_factory.h"

namespace schemble {
namespace {

class SchemblePolicyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    task_ = std::make_unique<SyntheticTask>(MakeTextMatchingTask(3));
    history_ = task_->GenerateDataset(
        3000, DifficultyDistribution::UniformFull(), 5);
    auto scorer = DiscrepancyScorer::Fit(*task_, history_);
    ASSERT_TRUE(scorer.ok());
    scorer_ =
        std::make_unique<DiscrepancyScorer>(std::move(scorer).value());
    const auto scores = scorer_->ScoreAll(history_);
    auto profile = AccuracyProfile::Build(*task_, history_, scores);
    ASSERT_TRUE(profile.ok());
    profile_ =
        std::make_unique<AccuracyProfile>(std::move(profile).value());
  }

  ServerView IdleView() const {
    ServerView view;
    view.now = 0;
    view.allow_rejection = true;
    for (int k = 0; k < task_->num_models(); ++k) {
      view.executors.push_back({k, k, 0, 0});
      view.model_exec_time.push_back(task_->profile(k).latency_us);
      view.model_available_at.push_back(0);
    }
    return view;
  }

  TracedQuery MakeTraced(int64_t id, double difficulty, SimTime arrival,
                         SimTime deadline) const {
    TracedQuery tq;
    tq.query = task_->GenerateQuery(id, difficulty);
    tq.arrival_time = arrival;
    tq.deadline = deadline;
    return tq;
  }

  SchemblePolicy MakeOraclePolicy(SchembleConfig config = {}) const {
    config.score_source = ScoreSource::kOracle;
    return SchemblePolicy(*task_, *profile_, nullptr, scorer_.get(),
                          std::move(config));
  }

  std::unique_ptr<SyntheticTask> task_;
  std::vector<Query> history_;
  std::unique_ptr<DiscrepancyScorer> scorer_;
  std::unique_ptr<AccuracyProfile> profile_;
};

TEST_F(SchemblePolicyTest, EstimateCompletionUsesLeastLoadedPath) {
  ServerView view = IdleView();
  view.model_available_at = {100, 0, 0};
  // Subset {0}: starts at 100 + 15ms exec.
  EXPECT_EQ(view.EstimateCompletion(0b001),
            100 + task_->profile(0).latency_us);
  // Subset {0,1}: max of both paths.
  EXPECT_EQ(view.EstimateCompletion(0b011),
            std::max<SimTime>(100 + task_->profile(0).latency_us,
                              task_->profile(1).latency_us));
}

TEST_F(SchemblePolicyTest, AllIdleFastPathAssignsFullEnsemble) {
  SchemblePolicy policy = MakeOraclePolicy();
  const TracedQuery tq =
      MakeTraced(1, 0.1, 0, /*deadline=*/100 * kMillisecond);
  const ArrivalDecision decision = policy.OnArrival(tq, IdleView());
  EXPECT_EQ(decision.action, ArrivalDecision::Action::kAssign);
  // With idle models and a generous deadline the highest-utility subset is
  // the full ensemble (utility 1.0 by construction).
  EXPECT_EQ(decision.subset, FullMask(task_->num_models()));
}

TEST_F(SchemblePolicyTest, BusyModelsBufferArrivals) {
  SchemblePolicy policy = MakeOraclePolicy();
  ServerView view = IdleView();
  view.model_available_at = {50 * kMillisecond, 60 * kMillisecond,
                             70 * kMillisecond};
  const TracedQuery tq = MakeTraced(2, 0.1, 0, 100 * kMillisecond);
  const ArrivalDecision decision = policy.OnArrival(tq, view);
  EXPECT_EQ(decision.action, ArrivalDecision::Action::kBuffer);
}

TEST_F(SchemblePolicyTest, ImpossibleDeadlineRejectedWhenAllowed) {
  SchemblePolicy policy = MakeOraclePolicy();
  const TracedQuery tq = MakeTraced(3, 0.1, 0, /*deadline=*/1 * kMillisecond);
  const ArrivalDecision decision = policy.OnArrival(tq, IdleView());
  EXPECT_EQ(decision.action, ArrivalDecision::Action::kReject);
}

TEST_F(SchemblePolicyTest, OnIdleCommitsPlanEntries) {
  SchemblePolicy policy = MakeOraclePolicy();
  ServerView view = IdleView();
  // Models 1 and 2 busy; model 0 idle.
  view.model_available_at = {0, 200 * kMillisecond, 200 * kMillisecond};
  const TracedQuery tq1 = MakeTraced(10, 0.05, 0, 40 * kMillisecond);
  const TracedQuery tq2 = MakeTraced(11, 0.05, 0, 300 * kMillisecond);
  policy.OnArrival(tq1, view);
  policy.OnArrival(tq2, view);
  std::vector<const TracedQuery*> buffer = {&tq1, &tq2};
  const PolicyOutput output = policy.OnIdle(view, buffer);
  ASSERT_FALSE(output.assignments.empty());
  // The earliest-deadline query must be dispatched on the idle model.
  EXPECT_EQ(output.assignments[0].query_id, 10);
  EXPECT_TRUE(output.assignments[0].subset & 0b001);
  EXPECT_GT(policy.scheduler_runs(), 0);
}

TEST_F(SchemblePolicyTest, DpOverheadChargedAndAccumulated) {
  SchembleConfig config;
  config.scheduler_ops_per_us = 1.0;  // make overhead visible
  SchemblePolicy policy = MakeOraclePolicy(config);
  ServerView view = IdleView();
  view.model_available_at = {0, 100 * kMillisecond, 100 * kMillisecond};
  const TracedQuery tq = MakeTraced(20, 0.2, 0, 500 * kMillisecond);
  policy.OnArrival(tq, view);
  std::vector<const TracedQuery*> buffer = {&tq};
  const PolicyOutput output = policy.OnIdle(view, buffer);
  EXPECT_GT(output.overhead_us, 0);
  EXPECT_EQ(policy.total_overhead_us(), output.overhead_us);
}

TEST_F(SchemblePolicyTest, GreedyVariantProducesAssignments) {
  SchembleConfig config;
  config.scheduler = BufferScheduler::kGreedyFifo;
  config.name = "Greedy+FIFO";
  SchemblePolicy policy = MakeOraclePolicy(config);
  EXPECT_EQ(policy.name(), "Greedy+FIFO");
  ServerView view = IdleView();
  view.model_available_at = {0, 0, 100 * kMillisecond};
  const TracedQuery tq = MakeTraced(30, 0.3, 0, 200 * kMillisecond);
  policy.OnArrival(tq, view);
  std::vector<const TracedQuery*> buffer = {&tq};
  const PolicyOutput output = policy.OnIdle(view, buffer);
  EXPECT_FALSE(output.assignments.empty());
  EXPECT_EQ(output.overhead_us, 0);  // greedy is charged as free
}

TEST_F(SchemblePolicyTest, ConstantScoreVariantIgnoresQueryContent) {
  SchembleConfig config;
  config.score_source = ScoreSource::kConstant;
  config.constant_score = 0.4;
  SchemblePolicy policy(*task_, *profile_, nullptr, nullptr, config);
  const TracedQuery easy = MakeTraced(40, 0.01, 0, 100 * kMillisecond);
  const TracedQuery hard = MakeTraced(41, 0.99, 0, 100 * kMillisecond);
  policy.OnArrival(easy, IdleView());
  policy.OnArrival(hard, IdleView());
  EXPECT_DOUBLE_EQ(policy.ScoreOf(40), 0.4);
  EXPECT_DOUBLE_EQ(policy.ScoreOf(41), 0.4);
  EXPECT_EQ(policy.ArrivalProcessingDelay(), 0);
}

TEST_F(SchemblePolicyTest, OracleScoresSeparateEasyFromHard) {
  SchemblePolicy policy = MakeOraclePolicy();
  const TracedQuery easy = MakeTraced(50, 0.02, 0, 100 * kMillisecond);
  const TracedQuery hard = MakeTraced(51, 0.95, 0, 100 * kMillisecond);
  policy.OnArrival(easy, IdleView());
  policy.OnArrival(hard, IdleView());
  EXPECT_LT(policy.ScoreOf(50), policy.ScoreOf(51));
}

}  // namespace
}  // namespace schemble
