#include "core/profiling.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/discrepancy.h"
#include "models/task_factory.h"

namespace schemble {
namespace {

struct ProfiledTask {
  SyntheticTask task;
  std::vector<Query> history;
  std::vector<double> scores;
};

ProfiledTask MakeProfiled(int n = 4000, uint64_t seed = 3) {
  ProfiledTask pt{MakeTextMatchingTask(seed), {}, {}};
  pt.history = pt.task.GenerateDataset(
      n, DifficultyDistribution::UniformFull(), seed + 100);
  auto scorer = DiscrepancyScorer::Fit(pt.task, pt.history);
  pt.scores = scorer.value().ScoreAll(pt.history);
  return pt;
}

TEST(SubsetMaskTest, Helpers) {
  EXPECT_EQ(SubsetSize(0b101), 2);
  EXPECT_EQ(SubsetSize(0), 0);
  EXPECT_EQ(SubsetModels(0b101), (std::vector<int>{0, 2}));
  EXPECT_EQ(FullMask(3), 0b111u);
  EXPECT_EQ(FullMask(1), 0b1u);
}

TEST(AccuracyProfileTest, BuildRejectsBadInput) {
  SyntheticTask task = MakeTextMatchingTask(1);
  EXPECT_FALSE(AccuracyProfile::Build(task, {}, {}).ok());
  auto history = task.GenerateDataset(10, DifficultyDistribution::Realistic(),
                                      1);
  EXPECT_FALSE(
      AccuracyProfile::Build(task, history, std::vector<double>(5, 0.5)).ok());
  AccuracyProfile::Options options;
  options.bins = 0;
  EXPECT_FALSE(AccuracyProfile::Build(task, history,
                                      std::vector<double>(10, 0.5), options)
                   .ok());
}

TEST(AccuracyProfileTest, FullEnsembleUtilityIsOne) {
  ProfiledTask pt = MakeProfiled();
  auto profile = AccuracyProfile::Build(pt.task, pt.history, pt.scores);
  ASSERT_TRUE(profile.ok());
  const SubsetMask full = FullMask(pt.task.num_models());
  for (int bin = 0; bin < profile.value().bins(); ++bin) {
    EXPECT_NEAR(profile.value().CellUtility(bin, full), 1.0, 1e-9);
  }
}

TEST(AccuracyProfileTest, EmptySubsetUtilityIsZero) {
  ProfiledTask pt = MakeProfiled(500);
  auto profile = AccuracyProfile::Build(pt.task, pt.history, pt.scores);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile.value().Utility(0.5, 0), 0.0);
}

TEST(AccuracyProfileTest, UtilityMonotoneInSubsets) {
  ProfiledTask pt = MakeProfiled();
  auto profile = AccuracyProfile::Build(pt.task, pt.history, pt.scores);
  ASSERT_TRUE(profile.ok());
  const int m = pt.task.num_models();
  for (int bin = 0; bin < profile.value().bins(); ++bin) {
    for (SubsetMask mask = 1; mask <= FullMask(m); ++mask) {
      for (int k = 0; k < m; ++k) {
        const SubsetMask bit = SubsetMask{1} << k;
        if ((mask & bit) && mask != bit) {
          EXPECT_GE(profile.value().CellUtility(bin, mask),
                    profile.value().CellUtility(bin, mask ^ bit));
        }
      }
    }
  }
}

TEST(AccuracyProfileTest, EasyBinsBeatHardBinsOnSmallSubsets) {
  // Fig. 4b: easy samples get >90% accuracy on every combination; hard
  // samples lose accuracy on small model sets.
  ProfiledTask pt = MakeProfiled(8000);
  auto profile = AccuracyProfile::Build(pt.task, pt.history, pt.scores);
  ASSERT_TRUE(profile.ok());
  const AccuracyProfile& p = profile.value();
  for (SubsetMask mask : {0b001u, 0b010u, 0b100u, 0b011u}) {
    EXPECT_GT(p.CellUtility(0, mask), 0.85) << "mask " << mask;
    EXPECT_GT(p.CellUtility(0, mask), p.CellUtility(p.bins() - 1, mask))
        << "mask " << mask;
  }
  // Hard-bin singleton accuracy is visibly degraded.
  EXPECT_LT(p.CellUtility(p.bins() - 1, 0b001), 0.85);
}

TEST(AccuracyProfileTest, BinOfMapsScores) {
  ProfiledTask pt = MakeProfiled(500);
  auto profile = AccuracyProfile::Build(pt.task, pt.history, pt.scores);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile.value().BinOf(0.0), 0);
  EXPECT_EQ(profile.value().BinOf(0.999), profile.value().bins() - 1);
  EXPECT_EQ(profile.value().BinOf(1.0), profile.value().bins() - 1);
  EXPECT_EQ(profile.value().BinOf(-0.5), 0);
}

TEST(AccuracyProfileTest, UtilityRowShape) {
  ProfiledTask pt = MakeProfiled(500);
  auto profile = AccuracyProfile::Build(pt.task, pt.history, pt.scores);
  ASSERT_TRUE(profile.ok());
  const auto row = profile.value().UtilityRow(0.3);
  EXPECT_EQ(row.size(), 8u);
  EXPECT_EQ(row[0], 0.0);
}

TEST(AccuracyProfileTest, BinCountsSumToHistory) {
  ProfiledTask pt = MakeProfiled(1000);
  auto profile = AccuracyProfile::Build(pt.task, pt.history, pt.scores);
  ASSERT_TRUE(profile.ok());
  int64_t total = 0;
  for (int bin = 0; bin < profile.value().bins(); ++bin) {
    total += profile.value().BinCount(bin);
  }
  EXPECT_EQ(total, 1000);
}

TEST(AccuracyProfileTest, DiminishingMarginalUtilityHoldsApproximately) {
  // Assumption 1 on an empirical profile. The check uses the six-model
  // ensemble so the chain never reaches the full ensemble (whose utility
  // is 1.0 by construction, which would trivially break diminishment on
  // the last step of a three-model ensemble).
  SyntheticTask task = MakeCifar100StyleTask(7);
  auto history =
      task.GenerateDataset(3000, DifficultyDistribution::UniformFull(), 11);
  auto scorer = DiscrepancyScorer::Fit(task, history);
  ASSERT_TRUE(scorer.ok());
  const auto scores = scorer.value().ScoreAll(history);
  AccuracyProfile::Options options;
  options.bins = 5;
  auto profile = AccuracyProfile::Build(task, history, scores, options);
  ASSERT_TRUE(profile.ok());
  const AccuracyProfile& p = profile.value();
  int violations = 0;
  int checks = 0;
  for (int bin = 0; bin < p.bins(); ++bin) {
    // Chain {5} -> {4,5} -> {3,4,5}: the three strongest models.
    const double u1 = p.CellUtility(bin, 0b100000);
    const double u2 = p.CellUtility(bin, 0b110000);
    const double u3 = p.CellUtility(bin, 0b111000);
    ++checks;
    if ((u2 - u1) + 0.03 < (u3 - u2)) ++violations;
  }
  EXPECT_LE(violations, checks / 4);
}

// --------------------------------------------------------------------------
// Eq. 3 marginal estimation.
// --------------------------------------------------------------------------

TEST(MarginalEstimatorTest, ExactForSmallSubsets) {
  std::vector<double> row(8, 0.0);
  row[0b001] = 0.5;
  row[0b010] = 0.6;
  row[0b100] = 0.7;
  row[0b011] = 0.75;
  row[0b101] = 0.8;
  row[0b110] = 0.85;
  row[0b111] = 0.0;  // unknown, to be estimated
  MarginalUtilityEstimator est(3, {0.5, 0.6, 0.7}, {1.0, 1.0, 0.5});
  const auto completed = est.CompleteRow(row);
  EXPECT_DOUBLE_EQ(completed[0b001], 0.5);
  EXPECT_DOUBLE_EQ(completed[0b110], 0.85);
  // Triple: rest = {1,2} (0b110, u=0.85), weakest = model 0.
  // marginal = mean(U({1,0}) - U({1}), U({2,0}) - U({2}))
  //          = mean(0.75-0.6, 0.8-0.7) = 0.125; gamma_2 = 0.5.
  EXPECT_NEAR(completed[0b111], 0.85 + 0.5 * 0.125, 1e-9);
}

TEST(MarginalEstimatorTest, EstimatesClampedToUnit) {
  std::vector<double> row(8, 0.0);
  row[0b001] = 0.9;
  row[0b010] = 0.9;
  row[0b100] = 0.9;
  row[0b011] = 0.99;
  row[0b101] = 0.99;
  row[0b110] = 0.99;
  MarginalUtilityEstimator est(3, {0.1, 0.2, 0.3}, {1.0, 1.0, 5.0});
  const auto completed = est.CompleteRow(row);
  EXPECT_LE(completed[0b111], 1.0);
}

TEST(MarginalEstimatorTest, FitGammasRecoverEstimatesOnRealProfile) {
  // Exp-7 in miniature: profile the six-model CIFAR100-style ensemble,
  // fit gammas, and check estimated large-subset utilities approximate the
  // measured ones (paper reports MSE < 1.6e-4; we assert a loose bound).
  SyntheticTask task = MakeCifar100StyleTask(5);
  auto history =
      task.GenerateDataset(4000, DifficultyDistribution::UniformFull(), 9);
  auto scorer = DiscrepancyScorer::Fit(task, history);
  ASSERT_TRUE(scorer.ok());
  const auto scores = scorer.value().ScoreAll(history);
  AccuracyProfile::Options options;
  options.bins = 5;
  auto profile = AccuracyProfile::Build(task, history, scores, options);
  ASSERT_TRUE(profile.ok());
  const auto gammas = MarginalUtilityEstimator::FitGammas(profile.value());

  std::vector<double> accuracy(task.num_models());
  for (int k = 0; k < task.num_models(); ++k) {
    accuracy[k] = task.profile(k).base_accuracy;
  }
  MarginalUtilityEstimator est(task.num_models(), accuracy, gammas);

  // Naive reference: no marginal correction at all (gamma = 0), i.e.
  // predicting U(rest) for every extension.
  MarginalUtilityEstimator naive(
      task.num_models(), accuracy,
      std::vector<double>(std::max(task.num_models(), 3), 0.0));
  double mse = 0.0;
  double naive_mse = 0.0;
  int count = 0;
  for (int bin = 0; bin < profile.value().bins(); ++bin) {
    // Feed only the pairwise-and-smaller cells to the estimator.
    std::vector<double> row = profile.value().UtilityRow(
        (bin + 0.5) / profile.value().bins());
    std::vector<double> truncated(row.size(), 0.0);
    for (SubsetMask mask = 1; mask < row.size(); ++mask) {
      if (SubsetSize(mask) <= 2) truncated[mask] = row[mask];
    }
    const auto estimated = est.CompleteRow(truncated);
    const auto estimated_naive = naive.CompleteRow(truncated);
    for (SubsetMask mask = 1; mask < row.size(); ++mask) {
      if (SubsetSize(mask) < 3) continue;
      const double d = estimated[mask] - row[mask];
      const double dn = estimated_naive[mask] - row[mask];
      mse += d * d;
      naive_mse += dn * dn;
      ++count;
    }
  }
  mse /= count;
  naive_mse /= count;
  // Eq. 3's correction must beat extrapolating with no marginal term, and
  // stay within a usable absolute error on this substrate.
  EXPECT_LT(mse, 0.5 * naive_mse);
  EXPECT_LT(mse, 2.5e-2);
}

}  // namespace
}  // namespace schemble
