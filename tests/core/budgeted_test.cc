#include "core/budgeted.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace schemble {
namespace {

// Two models: cost(mask) = sum of member costs.
std::vector<double> Costs(double c0, double c1) {
  return {0.0, c0, c1, c0 + c1};
}

TEST(BudgetedSelectorTest, ZeroBudgetSelectsNothing) {
  std::vector<std::vector<double>> utilities = {
      {0.0, 0.5, 0.6, 0.8}, {0.0, 0.4, 0.5, 0.7}};
  const auto assignment =
      BudgetedSelector::Select(utilities, Costs(10, 20), 0.0);
  EXPECT_EQ(assignment, (std::vector<SubsetMask>{0, 0}));
}

TEST(BudgetedSelectorTest, LargeBudgetSelectsFullEnsembles) {
  std::vector<std::vector<double>> utilities = {
      {0.0, 0.5, 0.6, 0.9}, {0.0, 0.4, 0.5, 0.8}};
  const auto assignment =
      BudgetedSelector::Select(utilities, Costs(10, 20), 1000.0);
  EXPECT_EQ(assignment, (std::vector<SubsetMask>{3, 3}));
}

TEST(BudgetedSelectorTest, RespectsBudget) {
  Rng rng(3);
  std::vector<std::vector<double>> utilities;
  for (int i = 0; i < 50; ++i) {
    const double a = rng.Uniform(0.2, 0.7);
    const double b = rng.Uniform(0.2, 0.7);
    utilities.push_back({0.0, a, b, std::min(1.0, a + b * 0.5)});
  }
  const auto costs = Costs(10, 25);
  for (double budget : {50.0, 200.0, 600.0}) {
    const auto assignment = BudgetedSelector::Select(utilities, costs, budget);
    EXPECT_LE(BudgetedSelector::TotalCost(assignment, costs), budget + 1e-9);
  }
}

TEST(BudgetedSelectorTest, UtilityMonotoneInBudget) {
  Rng rng(5);
  std::vector<std::vector<double>> utilities;
  for (int i = 0; i < 80; ++i) {
    const double a = rng.Uniform(0.2, 0.7);
    const double b = rng.Uniform(0.2, 0.7);
    utilities.push_back(
        {0.0, a, b, std::min(1.0, std::max(a, b) + 0.15)});
  }
  const auto costs = Costs(10, 25);
  double prev = -1.0;
  for (double budget : {100.0, 400.0, 1200.0, 2800.0}) {
    const auto assignment = BudgetedSelector::Select(utilities, costs, budget);
    const double u = BudgetedSelector::TotalUtility(assignment, utilities);
    EXPECT_GE(u, prev - 1e-9);
    prev = u;
  }
}

TEST(BudgetedSelectorTest, PrefersHighDensityUpgrades) {
  // Sample 0 gains a lot from the cheap model; sample 1 barely gains.
  std::vector<std::vector<double>> utilities = {
      {0.0, 0.9, 0.1, 0.95}, {0.0, 0.05, 0.06, 0.1}};
  const auto assignment =
      BudgetedSelector::Select(utilities, Costs(10, 10), 10.0);
  EXPECT_EQ(assignment[0], 1u);
  EXPECT_EQ(assignment[1], 0u);
}

TEST(BudgetedSelectorTest, NearOptimalAgainstBruteForce) {
  // Small instances where brute force is cheap: the LP-relaxation greedy
  // should be within one item's utility of the optimum.
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::vector<double>> utilities;
    for (int i = 0; i < 6; ++i) {
      const double a = rng.Uniform(0.1, 0.8);
      const double b = rng.Uniform(0.1, 0.8);
      utilities.push_back({0.0, a, b, std::min(1.0, std::max(a, b) + 0.2)});
    }
    const auto costs = Costs(11, 17);
    const double budget = rng.Uniform(20, 120);
    // Brute force over 4^6 assignments.
    double best = 0.0;
    for (int code = 0; code < 4096; ++code) {
      int c = code;
      double cost = 0.0;
      double utility = 0.0;
      for (int i = 0; i < 6; ++i) {
        const int mask = c % 4;
        c /= 4;
        cost += costs[mask];
        utility += utilities[i][mask];
      }
      if (cost <= budget) best = std::max(best, utility);
    }
    const auto assignment = BudgetedSelector::Select(utilities, costs, budget);
    const double got = BudgetedSelector::TotalUtility(assignment, utilities);
    EXPECT_GE(got, best - 1.0) << "trial " << trial;
    EXPECT_LE(got, best + 1e-9);
  }
}

}  // namespace
}  // namespace schemble
