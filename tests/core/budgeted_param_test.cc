// Parameterized sweep of the budgeted selector (Schemble*): budget
// feasibility, monotonicity and near-optimality across instance sizes.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.h"
#include "core/budgeted.h"

namespace schemble {
namespace {

struct BudgetInstance {
  std::vector<std::vector<double>> utilities;
  std::vector<double> costs;
};

BudgetInstance MakeInstance(uint64_t seed, int samples, int models) {
  Rng rng(seed);
  BudgetInstance inst;
  const SubsetMask full = FullMask(models);
  inst.costs.assign(full + 1, 0.0);
  std::vector<double> model_cost(models);
  for (double& c : model_cost) c = rng.Uniform(5, 50);
  for (SubsetMask mask = 1; mask <= full; ++mask) {
    for (int k = 0; k < models; ++k) {
      if (mask & (SubsetMask{1} << k)) inst.costs[mask] += model_cost[k];
    }
  }
  for (int i = 0; i < samples; ++i) {
    std::vector<double> p(models);
    for (double& v : p) v = rng.Uniform(0.2, 0.9);
    std::vector<double> row(full + 1, 0.0);
    for (SubsetMask mask = 1; mask <= full; ++mask) {
      double miss = 1.0;
      for (int k = 0; k < models; ++k) {
        if (mask & (SubsetMask{1} << k)) miss *= 1.0 - p[k];
      }
      row[mask] = 1.0 - miss;
    }
    inst.utilities.push_back(std::move(row));
  }
  return inst;
}

class BudgetSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BudgetSweepTest, NeverExceedsBudget) {
  const auto [samples, models, seed] = GetParam();
  const BudgetInstance inst = MakeInstance(10 + seed, samples, models);
  const double full_cost = inst.costs.back() * samples;
  for (double fraction : {0.0, 0.1, 0.5, 0.9, 1.5}) {
    const double budget = fraction * full_cost;
    const auto assignment =
        BudgetedSelector::Select(inst.utilities, inst.costs, budget);
    EXPECT_LE(BudgetedSelector::TotalCost(assignment, inst.costs),
              budget + 1e-9);
  }
}

TEST_P(BudgetSweepTest, UtilityMonotoneInBudget) {
  const auto [samples, models, seed] = GetParam();
  const BudgetInstance inst = MakeInstance(20 + seed, samples, models);
  const double full_cost = inst.costs.back() * samples;
  double previous = -1.0;
  for (double fraction : {0.1, 0.3, 0.5, 0.7, 0.9, 1.2}) {
    const auto assignment = BudgetedSelector::Select(
        inst.utilities, inst.costs, fraction * full_cost);
    const double utility =
        BudgetedSelector::TotalUtility(assignment, inst.utilities);
    EXPECT_GE(utility, previous - 1e-9);
    previous = utility;
  }
}

TEST_P(BudgetSweepTest, UnlimitedBudgetSelectsFullEverywhere) {
  const auto [samples, models, seed] = GetParam();
  const BudgetInstance inst = MakeInstance(30 + seed, samples, models);
  const auto assignment = BudgetedSelector::Select(
      inst.utilities, inst.costs, 1e12);
  for (SubsetMask mask : assignment) {
    EXPECT_EQ(mask, FullMask(models));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BudgetSweepTest,
    ::testing::Combine(::testing::Values(1, 10, 100),  // samples
                       ::testing::Values(2, 3, 4),      // models
                       ::testing::Values(1, 2)),        // seeds
    [](const ::testing::TestParamInfo<std::tuple<int, int, int>>& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "m" +
             std::to_string(std::get<1>(param_info.param)) + "s" +
             std::to_string(std::get<2>(param_info.param));
    });

}  // namespace
}  // namespace schemble
