// Randomized equivalence property tests for the optimized DpScheduler
// against the retained seed algorithm (ReferenceDpScheduler):
//   - in equivalence mode the optimized DP must return bit-identical plans
//     (same subsets, same total_utility) on every seeded configuration;
//   - in default mode (candidate dominance pruning on) total_utility must
//     stay within the quantization slack of the reference;
//   - every plan must replay feasibly against the environment;
//   - steady-state Schedule calls must not grow the workspace (the
//     zero-heap-allocation invariant of the DP transition loop).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "core/scheduler.h"
#include "core/scheduler_reference.h"

namespace schemble {
namespace {

struct Instance {
  std::vector<SchedulerQuery> queries;
  SchedulerEnv env;
};

std::vector<double> MonotoneUtilities(const std::vector<double>& p) {
  const int m = static_cast<int>(p.size());
  const SubsetMask full = FullMask(m);
  std::vector<double> row(full + 1, 0.0);
  for (SubsetMask mask = 1; mask <= full; ++mask) {
    double miss = 1.0;
    for (int k = 0; k < m; ++k) {
      if (mask & (SubsetMask{1} << k)) miss *= 1.0 - p[k];
    }
    row[mask] = 1.0 - miss;
  }
  return row;
}

Instance MakeInstance(uint64_t seed, int n, int m) {
  Rng rng(seed);
  Instance inst;
  inst.env.now = rng.UniformInt(0, 20);
  for (int k = 0; k < m; ++k) {
    inst.env.model_available_at.push_back(rng.UniformInt(0, 30));
    inst.env.model_exec_time.push_back(rng.UniformInt(5, 30));
  }
  for (int i = 0; i < n; ++i) {
    SchedulerQuery q;
    q.id = i;
    q.arrival = rng.UniformInt(0, 15);
    // Mix of tight and loose deadlines so the candidate lower-bound filter
    // actually fires on some queries.
    q.deadline = inst.env.now + rng.UniformInt(10, 150);
    q.predicted_score = rng.NextDouble();
    std::vector<double> p(m);
    for (double& v : p) v = rng.Uniform(0.3, 0.9);
    q.utilities = MonotoneUtilities(p);
    inst.queries.push_back(std::move(q));
  }
  return inst;
}

/// Replays a plan in its stated order and verifies every scheduled query
/// completes by its deadline; returns the recomputed total utility.
double VerifyPlanFeasible(const Instance& inst, const SchedulePlan& plan) {
  std::vector<SimTime> avail = inst.env.model_available_at;
  for (SimTime& t : avail) t = std::max(t, inst.env.now);
  double utility = 0.0;
  for (const ScheduleDecision& d : plan.decisions) {
    if (d.subset == 0) continue;
    const SchedulerQuery* query = nullptr;
    for (const auto& q : inst.queries) {
      if (q.id == d.query_id) query = &q;
    }
    EXPECT_NE(query, nullptr);
    const SimTime completion =
        ApplySubset(d.subset, inst.env.model_exec_time, avail);
    EXPECT_LE(completion, query->deadline)
        << "query " << d.query_id << " scheduled past its deadline";
    EXPECT_EQ(completion, d.completion);
    utility += query->utilities[d.subset];
  }
  return utility;
}

// (n, m, delta scaled by 1000, seed)
class SchedulerEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

// The optimized DP in equivalence mode returns bit-identical plans to the
// seed algorithm: same decision order, same subsets, same total utility.
TEST_P(SchedulerEquivalenceTest, EquivalenceModeMatchesReferenceExactly) {
  const auto [n, m, delta_milli, seed] = GetParam();
  const Instance inst = MakeInstance(9000 + seed * 131 + n * 7 + m, n, m);
  DpScheduler::Options options;
  options.delta = delta_milli / 1000.0;
  options.equivalence_mode = true;
  DpScheduler dp(options);
  ReferenceDpScheduler reference(options);
  const SchedulePlan got = dp.Schedule(inst.queries, inst.env);
  const SchedulePlan want = reference.Schedule(inst.queries, inst.env);
  ASSERT_EQ(got.decisions.size(), want.decisions.size());
  for (size_t i = 0; i < got.decisions.size(); ++i) {
    EXPECT_EQ(got.decisions[i].query_id, want.decisions[i].query_id) << i;
    EXPECT_EQ(got.decisions[i].subset, want.decisions[i].subset) << i;
    EXPECT_EQ(got.decisions[i].completion, want.decisions[i].completion) << i;
  }
  EXPECT_DOUBLE_EQ(got.total_utility, want.total_utility);
  const double replayed = VerifyPlanFeasible(inst, got);
  EXPECT_NEAR(replayed, got.total_utility, 1e-9);
}

// Default mode prunes candidates dominated by one of their proper subsets,
// which preserves the achievable quantized utility: with an eviction-free
// Pareto cap the total can only differ by the per-query rounding slack.
TEST_P(SchedulerEquivalenceTest, DefaultModeWithinQuantizationSlack) {
  const auto [n, m, delta_milli, seed] = GetParam();
  const Instance inst = MakeInstance(17000 + seed * 137 + n * 11 + m, n, m);
  DpScheduler::Options options;
  options.delta = delta_milli / 1000.0;
  options.max_solutions_per_cell = 256;  // avoid cap-eviction noise
  DpScheduler dp(options);
  ReferenceDpScheduler reference(options);
  const SchedulePlan got = dp.Schedule(inst.queries, inst.env);
  const SchedulePlan want = reference.Schedule(inst.queries, inst.env);
  const double slack = options.delta * n + 1e-9;
  EXPECT_GE(got.total_utility, want.total_utility - slack);
  EXPECT_LE(got.total_utility, want.total_utility + slack);
  const double replayed = VerifyPlanFeasible(inst, got);
  EXPECT_NEAR(replayed, got.total_utility, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, SchedulerEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 6, 8),  // queries
                       ::testing::Values(2, 3, 4),           // models
                       ::testing::Values(100, 20),           // delta * 1000
                       ::testing::Values(1, 2, 3)),          // seeds
    [](const ::testing::TestParamInfo<std::tuple<int, int, int, int>>& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "m" +
             std::to_string(std::get<1>(param_info.param)) + "d" +
             std::to_string(std::get<2>(param_info.param)) + "s" +
             std::to_string(std::get<3>(param_info.param));
    });

// Deferral path (more buffered queries than the DP window) is equivalent
// too: the tail must come back as subset-0 decisions in both schedulers.
TEST(SchedulerEquivalenceTest, DeferralTailMatchesReference) {
  const Instance inst = MakeInstance(424242, /*n=*/12, /*m=*/3);
  DpScheduler::Options options;
  options.max_queries = 5;
  options.equivalence_mode = true;
  const SchedulePlan got =
      DpScheduler(options).Schedule(inst.queries, inst.env);
  const SchedulePlan want =
      ReferenceDpScheduler(options).Schedule(inst.queries, inst.env);
  ASSERT_EQ(got.decisions.size(), want.decisions.size());
  for (size_t i = 0; i < got.decisions.size(); ++i) {
    EXPECT_EQ(got.decisions[i].query_id, want.decisions[i].query_id);
    EXPECT_EQ(got.decisions[i].subset, want.decisions[i].subset);
  }
  EXPECT_DOUBLE_EQ(got.total_utility, want.total_utility);
}

// The zero-allocation invariant: once a Schedule call has warmed the
// workspace, repeating it (or running any same-or-smaller instance) must
// not grow any internal buffer — i.e. the DP transition loop performs no
// heap allocations in steady state.
TEST(SchedulerWorkspaceTest, SteadyStateScheduleDoesNotGrowWorkspace) {
  const Instance big = MakeInstance(77, /*n=*/10, /*m=*/4);
  const Instance small = MakeInstance(78, /*n=*/4, /*m=*/3);
  DpScheduler dp;
  const SchedulePlan warm = dp.Schedule(big.queries, big.env);
  EXPECT_FALSE(warm.decisions.empty());
  const int64_t grown_after_warmup = dp.workspace_stats().grow_events;
  EXPECT_GT(grown_after_warmup, 0);  // cold call did allocate

  const SchedulePlan again = dp.Schedule(big.queries, big.env);
  EXPECT_EQ(dp.workspace_stats().grow_events, grown_after_warmup)
      << "repeat Schedule call grew the workspace";
  EXPECT_DOUBLE_EQ(again.total_utility, warm.total_utility);

  dp.Schedule(small.queries, small.env);
  EXPECT_EQ(dp.workspace_stats().grow_events, grown_after_warmup)
      << "smaller instance grew the workspace";
  EXPECT_EQ(dp.workspace_stats().schedule_calls, 3);
}

// Workspace reuse across different instances never leaks state: scheduling
// B after A gives the same plan as a fresh scheduler on B.
TEST(SchedulerWorkspaceTest, ReuseDoesNotLeakStateAcrossInstances) {
  const Instance a = MakeInstance(501, 8, 3);
  const Instance b = MakeInstance(502, 6, 4);
  DpScheduler reused;
  reused.Schedule(a.queries, a.env);
  const SchedulePlan warm = reused.Schedule(b.queries, b.env);
  DpScheduler fresh;
  const SchedulePlan cold = fresh.Schedule(b.queries, b.env);
  ASSERT_EQ(warm.decisions.size(), cold.decisions.size());
  for (size_t i = 0; i < warm.decisions.size(); ++i) {
    EXPECT_EQ(warm.decisions[i].subset, cold.decisions[i].subset);
  }
  EXPECT_DOUBLE_EQ(warm.total_utility, cold.total_utility);
}

}  // namespace
}  // namespace schemble
