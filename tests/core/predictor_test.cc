#include "core/discrepancy_predictor.h"

#include <gtest/gtest.h>

#include "common/prob.h"
#include "common/stats.h"
#include "core/discrepancy.h"
#include "models/task_factory.h"

namespace schemble {
namespace {

struct Fixture {
  SyntheticTask task;
  std::vector<Query> train;
  std::vector<Query> test;
  std::vector<double> train_scores;
  std::vector<double> test_scores;
};

Fixture MakeFixture(uint64_t seed = 3, int n_train = 3000, int n_test = 800) {
  Fixture f{MakeTextMatchingTask(seed), {}, {}, {}, {}};
  f.train = f.task.GenerateDataset(
      n_train, DifficultyDistribution::UniformFull(), seed + 1);
  f.test = f.task.GenerateDataset(
      n_test, DifficultyDistribution::UniformFull(), seed + 2,
      /*first_id=*/100000);
  auto scorer = DiscrepancyScorer::Fit(f.task, f.train);
  f.train_scores = scorer.value().ScoreAll(f.train);
  f.test_scores = scorer.value().ScoreAll(f.test);
  return f;
}

PredictorConfig FastConfig() {
  PredictorConfig config;
  config.trainer.epochs = 40;
  return config;
}

TEST(DiscrepancyPredictorTest, TrainRejectsBadInput) {
  SyntheticTask task = MakeTextMatchingTask(1);
  EXPECT_FALSE(DiscrepancyPredictor::Train(task, {}, {}).ok());
  auto data =
      task.GenerateDataset(10, DifficultyDistribution::Realistic(), 2);
  EXPECT_FALSE(
      DiscrepancyPredictor::Train(task, data, std::vector<double>(3, 0.1))
          .ok());
}

TEST(DiscrepancyPredictorTest, PredictionsInUnitInterval) {
  Fixture f = MakeFixture();
  auto predictor =
      DiscrepancyPredictor::Train(f.task, f.train, f.train_scores,
                                  FastConfig());
  ASSERT_TRUE(predictor.ok());
  for (const Query& q : f.test) {
    const double p = predictor.value().Predict(q);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(DiscrepancyPredictorTest, LearnsToRankDifficulty) {
  Fixture f = MakeFixture();
  auto predictor =
      DiscrepancyPredictor::Train(f.task, f.train, f.train_scores,
                                  FastConfig());
  ASSERT_TRUE(predictor.ok());
  std::vector<double> predicted;
  for (const Query& q : f.test) {
    predicted.push_back(predictor.value().Predict(q));
  }
  // Held-out rank correlation with the ground-truth discrepancy score.
  // The predictor can only capture the latent-difficulty component of the
  // score; the per-model flip noise is irreducible from features.
  EXPECT_GT(SpearmanCorrelation(predicted, f.test_scores), 0.28);
}

TEST(DiscrepancyPredictorTest, BeatsConstantPredictorOnMse) {
  Fixture f = MakeFixture();
  auto predictor =
      DiscrepancyPredictor::Train(f.task, f.train, f.train_scores,
                                  FastConfig());
  ASSERT_TRUE(predictor.ok());
  const double mse = predictor.value().EvaluateMse(f.test, f.test_scores);
  // Best constant predictor: variance of the test scores.
  double mean = 0.0;
  for (double s : f.test_scores) mean += s;
  mean /= f.test_scores.size();
  double var = 0.0;
  for (double s : f.test_scores) var += (s - mean) * (s - mean);
  var /= f.test_scores.size();
  // The irreducible flip noise bounds attainable MSE near (1 - rho^2) of
  // the variance; require a clear improvement over the constant predictor.
  EXPECT_LT(mse, 0.95 * var);
}

TEST(DiscrepancyPredictorTest, AuxiliaryTaskHeadHelps) {
  // Eq. 2's motivation: training with the task head (lambda steering the
  // score head) beats predicting the score with no task signal at all
  // (lambda so large the task loss vanishes in comparison). We check the
  // paper's configuration is at least as good.
  Fixture f = MakeFixture(7);
  PredictorConfig with_task = FastConfig();
  with_task.lambda = 0.2;
  PredictorConfig score_only = FastConfig();
  score_only.lambda = 50.0;  // task head effectively ignored
  auto a = DiscrepancyPredictor::Train(f.task, f.train, f.train_scores,
                                       with_task);
  auto b = DiscrepancyPredictor::Train(f.task, f.train, f.train_scores,
                                       score_only);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const double mse_a = a.value().EvaluateMse(f.test, f.test_scores);
  const double mse_b = b.value().EvaluateMse(f.test, f.test_scores);
  EXPECT_LT(mse_a, mse_b * 1.15);
}

TEST(DiscrepancyPredictorTest, TaskHeadPredictsEnsembleDecision) {
  Fixture f = MakeFixture(9);
  auto predictor =
      DiscrepancyPredictor::Train(f.task, f.train, f.train_scores,
                                  FastConfig());
  ASSERT_TRUE(predictor.ok());
  int correct = 0;
  for (const Query& q : f.test) {
    const auto head = predictor.value().TaskHead(q);
    if (Argmax(head) == Argmax(q.ensemble_output)) ++correct;
  }
  // The auxiliary head should comfortably beat chance on the binary task.
  EXPECT_GT(correct, static_cast<int>(f.test.size() * 0.6));
}

TEST(DiscrepancyPredictorTest, FootprintIsLightweight) {
  Fixture f = MakeFixture(11, 500, 10);
  auto predictor =
      DiscrepancyPredictor::Train(f.task, f.train, f.train_scores,
                                  FastConfig());
  ASSERT_TRUE(predictor.ok());
  // Fig. 13: the predictor is a tiny fraction of the ensemble's footprint.
  EXPECT_LT(predictor.value().MemoryMb(), 1.0);
  EXPECT_GT(predictor.value().ParameterCount(), 100u);
  EXPECT_GT(predictor.value().inference_latency_us(), 0);
}

TEST(DiscrepancyPredictorTest, WorksOnRegressionTask) {
  SyntheticTask task = MakeVehicleCountingTask(13);
  auto train =
      task.GenerateDataset(2500, DifficultyDistribution::UniformFull(), 5);
  auto scorer = DiscrepancyScorer::Fit(task, train);
  const auto scores = scorer.value().ScoreAll(train);
  auto predictor =
      DiscrepancyPredictor::Train(task, train, scores, FastConfig());
  ASSERT_TRUE(predictor.ok());
  auto test = task.GenerateDataset(
      600, DifficultyDistribution::UniformFull(), 6, /*first_id=*/50000);
  const auto test_scores = scorer.value().ScoreAll(test);
  std::vector<double> predicted;
  for (const Query& q : test) predicted.push_back(predictor.value().Predict(q));
  EXPECT_GT(SpearmanCorrelation(predicted, test_scores), 0.4);
}

}  // namespace
}  // namespace schemble
