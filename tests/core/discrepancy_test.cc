#include "core/discrepancy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.h"
#include "models/task_factory.h"

namespace schemble {
namespace {

std::vector<Query> History(const SyntheticTask& task, int n, uint64_t seed) {
  return task.GenerateDataset(n, DifficultyDistribution::UniformFull(), seed);
}

TEST(DiscrepancyScorerTest, FitRejectsEmptyHistory) {
  SyntheticTask task = MakeTextMatchingTask(1);
  EXPECT_FALSE(DiscrepancyScorer::Fit(task, {}).ok());
}

TEST(DiscrepancyScorerTest, ScoresAreInUnitInterval) {
  SyntheticTask task = MakeTextMatchingTask(1);
  auto history = History(task, 2000, 11);
  auto scorer = DiscrepancyScorer::Fit(task, history);
  ASSERT_TRUE(scorer.ok());
  for (const Query& q : history) {
    const double s = scorer.value().Score(q);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(DiscrepancyScorerTest, ScoreTracksLatentDifficulty) {
  SyntheticTask task = MakeTextMatchingTask(1);
  auto history = History(task, 3000, 13);
  auto scorer = DiscrepancyScorer::Fit(task, history);
  ASSERT_TRUE(scorer.ok());
  std::vector<double> difficulty;
  std::vector<double> score;
  for (const Query& q : history) {
    difficulty.push_back(q.difficulty);
    score.push_back(scorer.value().Score(q));
  }
  // The discrepancy score is the observable proxy for latent difficulty.
  // (With three binary base models the score is dominated by realized
  // prediction flips, which caps the attainable rank correlation.)
  EXPECT_GT(SpearmanCorrelation(difficulty, score), 0.40);
}

TEST(DiscrepancyScorerTest, RegressionTaskUsesEuclideanDistance) {
  SyntheticTask task = MakeVehicleCountingTask(3);
  auto history = History(task, 2000, 17);
  auto scorer = DiscrepancyScorer::Fit(task, history);
  ASSERT_TRUE(scorer.ok());
  std::vector<double> difficulty;
  std::vector<double> score;
  for (const Query& q : history) {
    difficulty.push_back(q.difficulty);
    score.push_back(scorer.value().Score(q));
  }
  EXPECT_GT(SpearmanCorrelation(difficulty, score), 0.4);
}

TEST(DiscrepancyScorerTest, RetrievalTaskScores) {
  SyntheticTask task = MakeImageRetrievalTask(5);
  auto history = History(task, 1500, 19);
  auto scorer = DiscrepancyScorer::Fit(task, history);
  ASSERT_TRUE(scorer.ok());
  std::vector<double> difficulty;
  std::vector<double> score;
  for (const Query& q : history) {
    difficulty.push_back(q.difficulty);
    score.push_back(scorer.value().Score(q));
  }
  EXPECT_GT(SpearmanCorrelation(difficulty, score), 0.4);
}

TEST(DiscrepancyScorerTest, CalibrationDetectsOverconfidence) {
  SyntheticTask task = MakeTextMatchingTask(7);
  auto history = History(task, 4000, 23);
  auto scorer = DiscrepancyScorer::Fit(task, history);
  ASSERT_TRUE(scorer.ok());
  // All synthetic base models are generated overconfident; calibration
  // against the ensemble label must fit temperatures above 1, ordered like
  // the generating overconfidence (BiLSTM is the most miscalibrated).
  for (int k = 0; k < task.num_models(); ++k) {
    EXPECT_GT(scorer.value().temperature(k), 1.1) << task.profile(k).name;
  }
  EXPECT_GT(scorer.value().temperature(0), scorer.value().temperature(2));
}

TEST(DiscrepancyScorerTest, EnsembleAgreementVariantScoresDiffer) {
  SyntheticTask task = MakeTextMatchingTask(9);
  auto history = History(task, 2000, 29);
  DiscrepancyConfig ea_config;
  ea_config.metric = DifficultyMetric::kEnsembleAgreement;
  auto dis = DiscrepancyScorer::Fit(task, history);
  auto ea = DiscrepancyScorer::Fit(task, history, ea_config);
  ASSERT_TRUE(dis.ok());
  ASSERT_TRUE(ea.ok());
  double max_diff = 0.0;
  for (int i = 0; i < 200; ++i) {
    max_diff = std::max(max_diff,
                        std::fabs(dis.value().Score(history[i]) -
                                  ea.value().Score(history[i])));
  }
  EXPECT_GT(max_diff, 0.05);
}

TEST(DiscrepancyScorerTest, DiscrepancyPredictsSubsetLossBetterThanEa) {
  // The paper's core claim for Eq. 1: on heterogeneous, miscalibrated
  // ensembles the (normalized, calibrated) discrepancy score ranks samples
  // by how much accuracy a small subset loses, better than raw ensemble
  // agreement does.
  SyntheticTask task = MakeTextMatchingTask(11);
  auto history = History(task, 4000, 31);
  DiscrepancyConfig ea_config;
  ea_config.metric = DifficultyMetric::kEnsembleAgreement;
  auto dis = DiscrepancyScorer::Fit(task, history);
  auto ea = DiscrepancyScorer::Fit(task, history, ea_config);
  ASSERT_TRUE(dis.ok());
  ASSERT_TRUE(ea.ok());
  // Target: does the strong pair (RoBERTa+BERT) disagree with the full
  // ensemble? Raw ensemble agreement is dominated by the weak, most
  // miscalibrated member (BiLSTM), which is exactly the failure mode
  // Eq. 1's normalization + calibration addresses.
  std::vector<double> subset_wrong;
  std::vector<double> dis_scores;
  std::vector<double> ea_scores;
  for (const Query& q : history) {
    const std::vector<double> pair = task.AggregateSubset(q, {1, 2});
    subset_wrong.push_back(1.0 - task.MatchScore(pair, q.ensemble_output));
    dis_scores.push_back(dis.value().Score(q));
    ea_scores.push_back(ea.value().Score(q));
  }
  const double corr_dis = PearsonCorrelation(dis_scores, subset_wrong);
  const double corr_ea = PearsonCorrelation(ea_scores, subset_wrong);
  EXPECT_GT(corr_dis, corr_ea);
  EXPECT_GT(corr_dis, 0.2);
}

TEST(DiscrepancyScorerTest, EasyQueriesScoreNearZero) {
  SyntheticTask task = MakeTextMatchingTask(13);
  auto history = History(task, 2000, 37);
  auto scorer = DiscrepancyScorer::Fit(task, history);
  ASSERT_TRUE(scorer.ok());
  double easy_sum = 0.0;
  double hard_sum = 0.0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    easy_sum += scorer.value().Score(task.GenerateQuery(50000 + i, 0.02));
    hard_sum += scorer.value().Score(task.GenerateQuery(60000 + i, 0.95));
  }
  EXPECT_LT(easy_sum / n, 0.35);
  EXPECT_GT(hard_sum / n, easy_sum / n + 0.2);
}

TEST(DiscrepancyScorerTest, ScaleQuantileValidation) {
  SyntheticTask task = MakeTextMatchingTask(15);
  auto history = History(task, 100, 41);
  DiscrepancyConfig config;
  config.scale_quantile = 1.5;
  EXPECT_FALSE(DiscrepancyScorer::Fit(task, history, config).ok());
  config.scale_quantile = 0.0;
  EXPECT_FALSE(DiscrepancyScorer::Fit(task, history, config).ok());
}

TEST(DiscrepancyScorerTest, ModelDistanceNonNegative) {
  SyntheticTask task = MakeTextMatchingTask(17);
  auto history = History(task, 500, 43);
  auto scorer = DiscrepancyScorer::Fit(task, history);
  ASSERT_TRUE(scorer.ok());
  for (int i = 0; i < 100; ++i) {
    for (int k = 0; k < task.num_models(); ++k) {
      EXPECT_GE(scorer.value().ModelDistance(history[i], k), 0.0);
    }
  }
}

}  // namespace
}  // namespace schemble
