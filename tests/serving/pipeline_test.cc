#include "serving/pipeline.h"

#include <gtest/gtest.h>

#include <memory>

#include "models/task_factory.h"

namespace schemble {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    task_ = new SyntheticTask(MakeTextMatchingTask(3));
    PipelineOptions options;
    options.history_size = 1500;
    options.with_ensemble_agreement = true;
    options.predictor.trainer.epochs = 8;
    pipeline_ =
        std::move(SchemblePipeline::Build(*task_, options)).value().release();
  }

  static void TearDownTestSuite() {
    delete pipeline_;
    delete task_;
    pipeline_ = nullptr;
    task_ = nullptr;
  }

  static SyntheticTask* task_;
  static SchemblePipeline* pipeline_;
};

SyntheticTask* PipelineTest::task_ = nullptr;
SchemblePipeline* PipelineTest::pipeline_ = nullptr;

TEST_F(PipelineTest, BuildsAllComponents) {
  EXPECT_EQ(pipeline_->history().size(), 1500u);
  EXPECT_EQ(pipeline_->profile().num_models(), task_->num_models());
  EXPECT_EQ(pipeline_->predicted_profile().num_models(), task_->num_models());
  EXPECT_GT(pipeline_->predictor().ParameterCount(), 0u);
  EXPECT_TRUE(pipeline_->has_ea());
}

TEST_F(PipelineTest, FactoriesNameVariantsDistinctly) {
  EXPECT_EQ(pipeline_->MakeSchemble(SchembleConfig{})->name(), "Schemble");
  EXPECT_EQ(pipeline_->MakeSchembleEa(SchembleConfig{})->name(),
            "Schemble(ea)");
  EXPECT_EQ(pipeline_->MakeSchembleT(SchembleConfig{})->name(),
            "Schemble(t)");
  EXPECT_EQ(pipeline_->MakeSchembleOracle(SchembleConfig{})->name(),
            "Schemble(Oracle)");
}

TEST_F(PipelineTest, CustomNamesSurviveFactories) {
  SchembleConfig config;
  config.name = "MyVariant";
  EXPECT_EQ(pipeline_->MakeSchembleEa(config)->name(), "MyVariant");
}

TEST_F(PipelineTest, PredictedProfileDiffersFromOracleProfile) {
  // The serving profile is binned by predicted scores, the oracle one by
  // ground-truth scores; the tables should not coincide.
  bool any_diff = false;
  for (int bin = 0; bin < pipeline_->profile().bins(); ++bin) {
    for (SubsetMask mask = 1; mask <= FullMask(task_->num_models()); ++mask) {
      any_diff |= pipeline_->profile().CellUtility(bin, mask) !=
                  pipeline_->predicted_profile().CellUtility(bin, mask);
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(PipelineTest, BuildRejectsEmptyHistory) {
  PipelineOptions options;
  options.history_size = 0;
  EXPECT_FALSE(SchemblePipeline::Build(*task_, options).ok());
}

TEST_F(PipelineTest, OracleScoresSharpestOnAverage) {
  // Ground-truth scores separate queries more than the smoothed predictor
  // scores: their variance across the history is at least as large.
  double oracle_var = 0.0;
  double pred_var = 0.0;
  double oracle_mean = 0.0;
  double pred_mean = 0.0;
  const auto& history = pipeline_->history();
  for (const Query& q : history) {
    oracle_mean += pipeline_->scorer().Score(q);
    pred_mean += pipeline_->predictor().Predict(q);
  }
  oracle_mean /= history.size();
  pred_mean /= history.size();
  for (const Query& q : history) {
    const double o = pipeline_->scorer().Score(q) - oracle_mean;
    const double p = pipeline_->predictor().Predict(q) - pred_mean;
    oracle_var += o * o;
    pred_var += p * p;
  }
  EXPECT_GT(oracle_var, 0.8 * pred_var);
}

}  // namespace
}  // namespace schemble
