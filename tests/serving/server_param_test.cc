// Parameterized serving invariants: for every policy, load level and
// rejection mode, the server's bookkeeping must balance and basic physical
// constraints must hold.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "baselines/des_policy.h"
#include "baselines/gating_policy.h"
#include "baselines/original_policy.h"
#include "baselines/static_policy.h"
#include "models/task_factory.h"
#include "serving/pipeline.h"
#include "serving/server.h"
#include "workload/trace.h"
#include "workload/traffic.h"

namespace schemble {
namespace {

enum class PolicyKind { kOriginal, kStatic, kDes, kGating, kSchemble,
                        kSchembleT };

std::string PolicyName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kOriginal:
      return "Original";
    case PolicyKind::kStatic:
      return "Static";
    case PolicyKind::kDes:
      return "Des";
    case PolicyKind::kGating:
      return "Gating";
    case PolicyKind::kSchemble:
      return "Schemble";
    case PolicyKind::kSchembleT:
      return "SchembleT";
  }
  return "?";
}

/// Shared expensive fixture state: one trained stack reused by every case.
struct Stack {
  std::unique_ptr<SyntheticTask> task;
  std::unique_ptr<SchemblePipeline> pipeline;
  std::unique_ptr<DesPolicy> des;
  std::unique_ptr<GatingPolicy> gating;
};

Stack* GetStack() {
  static Stack* stack = [] {
    auto* s = new Stack;
    s->task = std::make_unique<SyntheticTask>(MakeTextMatchingTask(77));
    PipelineOptions options;
    options.history_size = 1500;
    options.predictor.trainer.epochs = 8;
    s->pipeline = std::move(SchemblePipeline::Build(*s->task, options)).value();
    auto des = DesPolicy::Train(*s->task, s->pipeline->history(), DesConfig{});
    s->des = std::make_unique<DesPolicy>(std::move(des).value());
    GatingConfig gating_config;
    gating_config.trainer.epochs = 6;
    auto gating =
        GatingPolicy::Train(*s->task, s->pipeline->history(), gating_config);
    s->gating = std::make_unique<GatingPolicy>(std::move(gating).value());
    return s;
  }();
  return stack;
}

class ServerSweepTest
    : public ::testing::TestWithParam<std::tuple<PolicyKind, double, bool>> {
};

TEST_P(ServerSweepTest, BookkeepingBalances) {
  const auto [kind, rate, allow_rejection] = GetParam();
  Stack* stack = GetStack();

  std::unique_ptr<ServingPolicy> owned;
  ServingPolicy* policy = nullptr;
  ServerOptions options;
  options.allow_rejection = allow_rejection;
  switch (kind) {
    case PolicyKind::kOriginal:
      owned = std::make_unique<OriginalPolicy>();
      break;
    case PolicyKind::kStatic: {
      StaticDeployment deployment;
      deployment.subset = 0b011;
      deployment.replicas = {1, 2, 0};
      owned = std::make_unique<StaticPolicy>(deployment);
      options.executor_models = {0, 1, 1};
      break;
    }
    case PolicyKind::kDes:
      policy = stack->des.get();
      break;
    case PolicyKind::kGating:
      policy = stack->gating.get();
      break;
    case PolicyKind::kSchemble:
      owned = stack->pipeline->MakeSchemble(SchembleConfig{});
      break;
    case PolicyKind::kSchembleT:
      owned = stack->pipeline->MakeSchembleT(SchembleConfig{});
      break;
  }
  if (owned) policy = owned.get();

  PoissonTraffic traffic(rate);
  ConstantDeadline deadlines(100 * kMillisecond);
  TraceOptions trace_options;
  trace_options.seed = 31337;
  const QueryTrace trace =
      BuildTrace(*stack->task, traffic, deadlines, 15 * kSecond,
                 trace_options);

  EnsembleServer server(*stack->task, policy, options);
  const ServingMetrics metrics = server.Run(trace);

  // Conservation: every query is exactly one of processed / missed, except
  // that force mode can double-count late-but-processed queries as misses.
  EXPECT_EQ(metrics.total, trace.size());
  if (allow_rejection) {
    EXPECT_EQ(metrics.processed + metrics.missed, metrics.total);
  } else {
    EXPECT_EQ(metrics.processed, metrics.total);
  }
  // Bounded rates.
  EXPECT_GE(metrics.accuracy(), 0.0);
  EXPECT_LE(metrics.accuracy(), 1.0);
  EXPECT_GE(metrics.deadline_miss_rate(), 0.0);
  EXPECT_LE(metrics.deadline_miss_rate(), 1.0);
  EXPECT_LE(metrics.accuracy(), metrics.processed_accuracy() + 1e-9);
  // Segments partition the totals.
  int64_t arrivals = 0;
  int64_t processed = 0;
  for (const SegmentStats& seg : metrics.segments) {
    arrivals += seg.arrivals;
    processed += seg.processed;
  }
  EXPECT_EQ(arrivals, metrics.total);
  EXPECT_EQ(processed, metrics.processed);
  // Subset sizes partition the totals.
  int64_t by_size = 0;
  for (int64_t c : metrics.subset_size_counts) by_size += c;
  EXPECT_EQ(by_size, metrics.total);
  // Physical floor: nothing completes faster than the fastest model's
  // minimum jittered service time (20% of 15 ms).
  if (metrics.processed > 0) {
    EXPECT_GE(metrics.latency_ms.min(), 0.2 * 15.0 - 1e-9);
  }
  // Rejection mode: every processed query produced its result by the
  // deadline, so recorded latency never exceeds the relative deadline plus
  // the policy's arrival-processing delay.
  if (allow_rejection && metrics.processed > 0) {
    EXPECT_LE(metrics.latency_ms.max(),
              100.0 + SimTimeToMillis(policy->ArrivalProcessingDelay()) +
                  1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesLoadsModes, ServerSweepTest,
    ::testing::Combine(
        ::testing::Values(PolicyKind::kOriginal, PolicyKind::kStatic,
                          PolicyKind::kDes, PolicyKind::kGating,
                          PolicyKind::kSchemble, PolicyKind::kSchembleT),
        ::testing::Values(5.0, 30.0, 60.0),
        ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<PolicyKind, double, bool>>&
           param_info) {
      return PolicyName(std::get<0>(param_info.param)) + "r" +
             std::to_string(static_cast<int>(std::get<1>(param_info.param))) +
             (std::get<2>(param_info.param) ? "rej" : "force");
    });

}  // namespace
}  // namespace schemble
