// Deadline semantics with partial results: a query whose fast tasks finish
// before the deadline but whose slow tasks do not is served with whatever
// completed ("we consider a query to miss its deadline if the scheduler
// fails to run ANY model inference task for it by the deadline").

#include <gtest/gtest.h>

#include <memory>

#include "core/policy.h"
#include "models/task_factory.h"
#include "serving/server.h"
#include "workload/trace.h"

namespace schemble {
namespace {

/// Test policy: always fan out to every model, never reject — so tight
/// deadlines force the partial-result path.
class AlwaysFullPolicy : public ServingPolicy {
 public:
  std::string name() const override { return "AlwaysFull"; }
  ArrivalDecision OnArrival(const TracedQuery& /*query*/,
                            const ServerView& view) override {
    return ArrivalDecision::Assign(FullMask(view.num_models()));
  }
};

class PartialResultsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    task_ = std::make_unique<SyntheticTask>(MakeTextMatchingTask(3));
  }

  QueryTrace SingleQueryTrace(SimTime relative_deadline) {
    QueryTrace trace;
    TracedQuery tq;
    tq.query = task_->GenerateQuery(1, 0.3);
    tq.arrival_time = 0;
    tq.deadline = relative_deadline;
    trace.items.push_back(std::move(tq));
    return trace;
  }

  std::unique_ptr<SyntheticTask> task_;
};

TEST_F(PartialResultsTest, FastTasksServePartialResultAtDeadline) {
  // Deadline of 30 ms: BiLSTM (15 ms) completes, RoBERTa (45 ms) and BERT
  // (50 ms) do not. The query counts as processed with BiLSTM's output.
  AlwaysFullPolicy policy;
  EnsembleServer server(*task_, &policy, ServerOptions{});
  const ServingMetrics metrics = server.Run(SingleQueryTrace(30 * kMillisecond));
  EXPECT_EQ(metrics.total, 1);
  EXPECT_EQ(metrics.processed, 1);
  EXPECT_EQ(metrics.missed, 0);
  // The final result aggregated exactly one model output.
  ASSERT_GE(metrics.subset_size_counts.size(), 2u);
  EXPECT_EQ(metrics.subset_size_counts[1], 1);
  // Latency reflects when the partial output became available, not the
  // deadline.
  EXPECT_LT(metrics.latency_ms.max(), 25.0);
}

TEST_F(PartialResultsTest, NoTaskDoneByDeadlineIsAMiss) {
  // Deadline of 5 ms: no model can finish; the query misses even though
  // tasks were assigned.
  AlwaysFullPolicy policy;
  EnsembleServer server(*task_, &policy, ServerOptions{});
  const ServingMetrics metrics = server.Run(SingleQueryTrace(5 * kMillisecond));
  EXPECT_EQ(metrics.processed, 0);
  EXPECT_EQ(metrics.missed, 1);
  ASSERT_GE(metrics.subset_size_counts.size(), 1u);
  EXPECT_EQ(metrics.subset_size_counts[0], 1);
}

TEST_F(PartialResultsTest, GenerousDeadlineGetsFullEnsemble) {
  AlwaysFullPolicy policy;
  EnsembleServer server(*task_, &policy, ServerOptions{});
  const ServingMetrics metrics =
      server.Run(SingleQueryTrace(200 * kMillisecond));
  EXPECT_EQ(metrics.processed, 1);
  ASSERT_GE(metrics.subset_size_counts.size(), 4u);
  EXPECT_EQ(metrics.subset_size_counts[3], 1);
  EXPECT_NEAR(metrics.processed_accuracy(), 1.0, 1e-9);
}

TEST_F(PartialResultsTest, TwoOfThreeByDeadline) {
  // 47 ms: BiLSTM and RoBERTa (45 ms) finish, BERT (50 ms) does not.
  AlwaysFullPolicy policy;
  ServerOptions options;
  options.seed = 4;  // jitter draw keeps RoBERTa under 47 ms on this seed
  EnsembleServer server(*task_, &policy, options);
  const ServingMetrics metrics = server.Run(SingleQueryTrace(48 * kMillisecond));
  EXPECT_EQ(metrics.processed, 1);
  ASSERT_GE(metrics.subset_size_counts.size(), 3u);
  EXPECT_EQ(metrics.subset_size_counts[2], 1);
}

}  // namespace
}  // namespace schemble
