#include "serving/server.h"

#include <gtest/gtest.h>

#include <memory>

#include "baselines/original_policy.h"
#include "baselines/static_policy.h"
#include "models/task_factory.h"
#include "serving/pipeline.h"
#include "workload/trace.h"
#include "workload/traffic.h"

namespace schemble {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    task_ = std::make_unique<SyntheticTask>(MakeTextMatchingTask(3));
  }

  QueryTrace MakeTrace(double rate, SimTime duration, SimTime deadline,
                       uint64_t seed = 11) {
    PoissonTraffic traffic(rate);
    ConstantDeadline deadlines(deadline);
    TraceOptions options;
    options.seed = seed;
    return BuildTrace(*task_, traffic, deadlines, duration, options);
  }

  std::unique_ptr<SyntheticTask> task_;
};

TEST_F(ServerTest, LightLoadOriginalServesEverything) {
  OriginalPolicy policy;
  ServerOptions options;
  EnsembleServer server(*task_, &policy, options);
  // 2 qps against a 50 ms ensemble: no contention.
  const QueryTrace trace = MakeTrace(2.0, 30 * kSecond, 200 * kMillisecond);
  const ServingMetrics metrics = server.Run(trace);
  EXPECT_EQ(metrics.total, trace.size());
  EXPECT_EQ(metrics.missed, 0);
  EXPECT_NEAR(metrics.accuracy(), 1.0, 1e-9);
  // Latency ~ the slowest base model.
  EXPECT_NEAR(metrics.mean_latency_ms(), 50.0, 8.0);
}

TEST_F(ServerTest, OverloadedOriginalMissesDeadlines) {
  OriginalPolicy policy;
  ServerOptions options;
  EnsembleServer server(*task_, &policy, options);
  // 35 qps >> the 20 qps bottleneck capacity.
  const QueryTrace trace = MakeTrace(35.0, 30 * kSecond, 100 * kMillisecond);
  const ServingMetrics metrics = server.Run(trace);
  EXPECT_GT(metrics.deadline_miss_rate(), 0.25);
  // Whatever is processed matches the ensemble almost always; queries
  // finalized at their deadline with partial outputs may deviate.
  EXPECT_GT(metrics.processed_accuracy(), 0.99);
}

TEST_F(ServerTest, StaticReplicasIncreaseThroughput) {
  // Same overload, but a static deployment of {BiLSTM, RoBERTa} with an
  // extra RoBERTa replica processes far more queries.
  StaticDeployment deployment;
  deployment.subset = 0b011;
  deployment.replicas = {1, 2, 0};
  StaticPolicy policy(deployment);
  ServerOptions options;
  options.executor_models = {0, 1, 1};
  EnsembleServer server(*task_, &policy, options);
  const QueryTrace trace = MakeTrace(35.0, 30 * kSecond, 100 * kMillisecond);
  const ServingMetrics metrics = server.Run(trace);
  EXPECT_LT(metrics.deadline_miss_rate(), 0.15);
  EXPECT_GT(metrics.accuracy(), 0.75);
}

TEST_F(ServerTest, DeterministicAcrossRuns) {
  const QueryTrace trace = MakeTrace(25.0, 20 * kSecond, 100 * kMillisecond);
  OriginalPolicy policy_a;
  OriginalPolicy policy_b;
  ServerOptions options;
  const ServingMetrics a = EnsembleServer(*task_, &policy_a, options).Run(trace);
  const ServingMetrics b = EnsembleServer(*task_, &policy_b, options).Run(trace);
  EXPECT_EQ(a.missed, b.missed);
  EXPECT_DOUBLE_EQ(a.accuracy_sum, b.accuracy_sum);
  EXPECT_DOUBLE_EQ(a.latency_ms.mean(), b.latency_ms.mean());
}

TEST_F(ServerTest, SegmentStatsPartitionTotals) {
  OriginalPolicy policy;
  ServerOptions options;
  options.segment_duration = 5 * kSecond;
  EnsembleServer server(*task_, &policy, options);
  const QueryTrace trace = MakeTrace(20.0, 30 * kSecond, 100 * kMillisecond);
  const ServingMetrics metrics = server.Run(trace);
  int64_t arrivals = 0;
  int64_t missed = 0;
  for (const SegmentStats& seg : metrics.segments) {
    arrivals += seg.arrivals;
    missed += seg.missed;
  }
  EXPECT_EQ(arrivals, metrics.total);
  EXPECT_EQ(missed, metrics.missed);
}

TEST_F(ServerTest, ForceModeProcessesEverythingWithQueueing) {
  OriginalPolicy policy;
  ServerOptions options;
  options.allow_rejection = false;
  EnsembleServer server(*task_, &policy, options);
  const QueryTrace trace = MakeTrace(30.0, 20 * kSecond, 100 * kMillisecond);
  const ServingMetrics metrics = server.Run(trace);
  EXPECT_EQ(metrics.processed, metrics.total);
  // Overload with no rejection: queues build up, latency far exceeds the
  // service time.
  EXPECT_GT(metrics.p95_latency_ms(), 500.0);
  EXPECT_NEAR(metrics.processed_accuracy(), 1.0, 1e-9);
}

class SchembleServingTest : public ServerTest {
 protected:
  void SetUp() override {
    ServerTest::SetUp();
    PipelineOptions options;
    options.history_size = 2500;
    options.predictor.trainer.epochs = 12;
    auto pipeline = SchemblePipeline::Build(*task_, options);
    ASSERT_TRUE(pipeline.ok());
    pipeline_ = std::move(pipeline).value();
  }

  std::unique_ptr<SchemblePipeline> pipeline_;
};

TEST_F(SchembleServingTest, SchembleBeatsOriginalUnderOverload) {
  const QueryTrace trace = MakeTrace(35.0, 40 * kSecond, 100 * kMillisecond);

  OriginalPolicy original;
  ServerOptions options;
  const ServingMetrics base =
      EnsembleServer(*task_, &original, options).Run(trace);

  auto schemble = pipeline_->MakeSchemble(SchembleConfig{});
  const ServingMetrics ours =
      EnsembleServer(*task_, schemble.get(), options).Run(trace);

  // The headline result: a large DMR reduction and accuracy gain under
  // bursty overload (paper: 5x DMR reduction, +32.9% accuracy).
  EXPECT_LT(ours.deadline_miss_rate(), 0.5 * base.deadline_miss_rate());
  EXPECT_GT(ours.accuracy(), base.accuracy() + 0.1);
}

TEST_F(SchembleServingTest, SchembleLightLoadMatchesEnsemble) {
  const QueryTrace trace = MakeTrace(2.0, 30 * kSecond, 200 * kMillisecond);
  auto schemble = pipeline_->MakeSchemble(SchembleConfig{});
  ServerOptions options;
  const ServingMetrics metrics =
      EnsembleServer(*task_, schemble.get(), options).Run(trace);
  EXPECT_EQ(metrics.missed, 0);
  // With idle capacity Schemble runs the full ensemble (fast path).
  EXPECT_GT(metrics.accuracy(), 0.97);
}

TEST_F(SchembleServingTest, SchembleForceModeKeepsLatencyLow) {
  const QueryTrace trace = MakeTrace(30.0, 20 * kSecond, 100 * kMillisecond);
  ServerOptions options;
  options.allow_rejection = false;

  OriginalPolicy original;
  const ServingMetrics base =
      EnsembleServer(*task_, &original, options).Run(trace);

  auto schemble = pipeline_->MakeSchemble(SchembleConfig{});
  const ServingMetrics ours =
      EnsembleServer(*task_, schemble.get(), options).Run(trace);

  EXPECT_EQ(ours.processed, ours.total);
  // Exp-2's shape: Schemble's mean latency is orders of magnitude below the
  // original pipeline's, at a modest accuracy cost.
  EXPECT_LT(ours.mean_latency_ms(), 0.2 * base.mean_latency_ms());
  EXPECT_GT(ours.processed_accuracy(), 0.85);
}

TEST_F(SchembleServingTest, PredictorDelayIsCharged) {
  auto schemble = pipeline_->MakeSchemble(SchembleConfig{});
  EXPECT_GT(schemble->ArrivalProcessingDelay(), 0);
  const QueryTrace trace = MakeTrace(2.0, 10 * kSecond, 200 * kMillisecond);
  ServerOptions options;
  const ServingMetrics metrics =
      EnsembleServer(*task_, schemble.get(), options).Run(trace);
  // Latency includes the predictor's inference time on top of the slowest
  // scheduled model.
  EXPECT_GT(metrics.mean_latency_ms(), 50.0);
}

TEST_F(SchembleServingTest, SchembleTWorksWithoutPredictor) {
  const QueryTrace trace = MakeTrace(30.0, 20 * kSecond, 100 * kMillisecond);
  auto schemble_t = pipeline_->MakeSchembleT(SchembleConfig{});
  ServerOptions options;
  const ServingMetrics metrics =
      EnsembleServer(*task_, schemble_t.get(), options).Run(trace);
  EXPECT_EQ(metrics.total, trace.size());
  EXPECT_GT(metrics.accuracy(), 0.5);
}

}  // namespace
}  // namespace schemble
