// The query-buffer ablation (DESIGN.md decision 5): without the buffer,
// Schemble must still serve correctly, but it commits at arrival and
// cannot adapt to subsequent arrivals.

#include <gtest/gtest.h>

#include <memory>

#include "models/task_factory.h"
#include "serving/pipeline.h"
#include "serving/server.h"
#include "workload/trace.h"
#include "workload/traffic.h"

namespace schemble {
namespace {

class BufferAblationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    task_ = std::make_unique<SyntheticTask>(MakeTextMatchingTask(3));
    PipelineOptions options;
    options.history_size = 1500;
    options.predictor.trainer.epochs = 8;
    pipeline_ = std::move(SchemblePipeline::Build(*task_, options)).value();
  }

  QueryTrace MakeTrace(double rate, uint64_t seed = 17) {
    PoissonTraffic traffic(rate);
    ConstantDeadline deadlines(100 * kMillisecond);
    TraceOptions options;
    options.seed = seed;
    return BuildTrace(*task_, traffic, deadlines, 30 * kSecond, options);
  }

  std::unique_ptr<SyntheticTask> task_;
  std::unique_ptr<SchemblePipeline> pipeline_;
};

TEST_F(BufferAblationTest, NoBufferVariantServesEveryQuery) {
  SchembleConfig config;
  config.use_buffer = false;
  config.name = "Schemble(no-buffer)";
  auto policy = pipeline_->MakeSchemble(config);
  EXPECT_EQ(policy->name(), "Schemble(no-buffer)");
  const QueryTrace trace = MakeTrace(30.0);
  const ServingMetrics metrics =
      EnsembleServer(*task_, policy.get(), ServerOptions{}).Run(trace);
  EXPECT_EQ(metrics.total, trace.size());
  EXPECT_EQ(metrics.processed + metrics.missed, metrics.total);
}

TEST_F(BufferAblationTest, BufferHelpsUnderOverload) {
  const QueryTrace trace = MakeTrace(40.0);
  SchembleConfig with_buffer;
  auto buffered = pipeline_->MakeSchemble(with_buffer);
  SchembleConfig without_buffer;
  without_buffer.use_buffer = false;
  auto immediate = pipeline_->MakeSchemble(without_buffer);
  const ServingMetrics a =
      EnsembleServer(*task_, buffered.get(), ServerOptions{}).Run(trace);
  const ServingMetrics b =
      EnsembleServer(*task_, immediate.get(), ServerOptions{}).Run(trace);
  // Deferring commitment lets the scheduler reshape plans as the burst
  // develops; immediate commitment cannot.
  EXPECT_GE(a.accuracy(), b.accuracy() - 0.02);
}

TEST_F(BufferAblationTest, NoBufferForceModeStillDrains) {
  SchembleConfig config;
  config.use_buffer = false;
  auto policy = pipeline_->MakeSchemble(config);
  ServerOptions options;
  options.allow_rejection = false;
  const QueryTrace trace = MakeTrace(35.0);
  const ServingMetrics metrics =
      EnsembleServer(*task_, policy.get(), options).Run(trace);
  EXPECT_EQ(metrics.processed, metrics.total);
}

TEST_F(BufferAblationTest, LightLoadVariantsAgree) {
  const QueryTrace trace = MakeTrace(2.0);
  SchembleConfig config;
  config.use_buffer = false;
  auto immediate = pipeline_->MakeSchemble(config);
  const ServingMetrics metrics =
      EnsembleServer(*task_, immediate.get(), ServerOptions{}).Run(trace);
  // With idle capacity the no-buffer variant behaves like the fast path:
  // everything served, full-ensemble accuracy.
  EXPECT_EQ(metrics.missed, 0);
  EXPECT_GT(metrics.accuracy(), 0.97);
}

}  // namespace
}  // namespace schemble
