// End-to-end golden regression test: runs the discrete-event EnsembleServer
// with fixed seeds and pins the resulting metrics — totals and the full
// per-segment series — to exact values. Its purpose is to make refactors of
// the serving/aggregation path (e.g. the shared EvaluateCompletion split
// introduced with the concurrent runtime) provably behaviour-preserving.
//
// To regenerate the goldens after an *intentional* behaviour change, run
//   SCHEMBLE_REGEN_GOLDEN=1 ./tests/serving_test
//     --gtest_filter='ServingRegressionTest.*'  (one command line)
// and paste the printed block. Builds use -ffp-contract=off, so the values
// are bit-stable across optimization levels and compilers on one
// architecture.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "baselines/original_policy.h"
#include "core/discrepancy.h"
#include "core/schemble_policy.h"
#include "models/task_factory.h"
#include "serving/server.h"
#include "workload/trace.h"
#include "workload/traffic.h"

namespace schemble {
namespace {

void MaybePrintGoldens(const char* name, const ServingMetrics& m) {
  if (std::getenv("SCHEMBLE_REGEN_GOLDEN") == nullptr) return;
  std::printf("// goldens for %s\n", name);
  std::printf("EXPECT_EQ(metrics.total, %lld);\n",
              static_cast<long long>(m.total));
  std::printf("EXPECT_EQ(metrics.processed, %lld);\n",
              static_cast<long long>(m.processed));
  std::printf("EXPECT_EQ(metrics.missed, %lld);\n",
              static_cast<long long>(m.missed));
  std::printf("EXPECT_NEAR(metrics.accuracy_sum, %.12f, 1e-9);\n",
              m.accuracy_sum);
  std::printf("EXPECT_NEAR(metrics.mean_latency_ms(), %.12f, 1e-9);\n",
              m.mean_latency_ms());
  std::printf("ASSERT_EQ(metrics.segments.size(), %lluu);\n",
              static_cast<unsigned long long>(m.segments.size()));
  for (size_t s = 0; s < m.segments.size(); ++s) {
    const SegmentStats& seg = m.segments[s];
    std::printf(
        "// segment %llu\n"
        "EXPECT_EQ(metrics.segments[%llu].arrivals, %lld);\n"
        "EXPECT_EQ(metrics.segments[%llu].missed, %lld);\n"
        "EXPECT_NEAR(metrics.segments[%llu].accuracy(), %.12f, 1e-9);\n"
        "EXPECT_NEAR(metrics.segments[%llu].mean_subset_size(), %.12f, "
        "1e-9);\n",
        static_cast<unsigned long long>(s),
        static_cast<unsigned long long>(s),
        static_cast<long long>(seg.arrivals),
        static_cast<unsigned long long>(s),
        static_cast<long long>(seg.missed),
        static_cast<unsigned long long>(s), seg.accuracy(),
        static_cast<unsigned long long>(s), seg.mean_subset_size());
  }
}

class ServingRegressionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    task_ = std::make_unique<SyntheticTask>(MakeTextMatchingTask());
  }

  QueryTrace MakeTrace() const {
    PoissonTraffic traffic(30.0);
    ConstantDeadline deadlines(150 * kMillisecond);
    TraceOptions options;
    options.seed = 17;
    return BuildTrace(*task_, traffic, deadlines, 20 * kSecond, options);
  }

  std::unique_ptr<SyntheticTask> task_;
};

TEST_F(ServingRegressionTest, OriginalPolicyMetricsArePinned) {
  OriginalPolicy policy;
  ServerOptions options;
  options.segment_duration = 5 * kSecond;
  EnsembleServer server(*task_, &policy, options);
  const ServingMetrics metrics = server.Run(MakeTrace());
  MaybePrintGoldens("OriginalPolicyMetricsArePinned", metrics);

  EXPECT_EQ(metrics.total, 592);
  EXPECT_EQ(metrics.processed, 378);
  EXPECT_EQ(metrics.missed, 214);
  EXPECT_NEAR(metrics.accuracy_sum, 377.000000000000, 1e-9);
  EXPECT_NEAR(metrics.mean_latency_ms(), 109.484798941799, 1e-9);
  ASSERT_EQ(metrics.segments.size(), 4u);
  EXPECT_EQ(metrics.segments[0].arrivals, 149);
  EXPECT_EQ(metrics.segments[0].missed, 53);
  EXPECT_NEAR(metrics.segments[0].accuracy(), 0.644295302013, 1e-9);
  EXPECT_NEAR(metrics.segments[0].mean_subset_size(), 2.989583333333, 1e-9);
  EXPECT_EQ(metrics.segments[1].arrivals, 157);
  EXPECT_EQ(metrics.segments[1].missed, 64);
  EXPECT_NEAR(metrics.segments[1].accuracy(), 0.592356687898, 1e-9);
  EXPECT_NEAR(metrics.segments[1].mean_subset_size(), 2.989247311828, 1e-9);
  EXPECT_EQ(metrics.segments[2].arrivals, 139);
  EXPECT_EQ(metrics.segments[2].missed, 45);
  EXPECT_NEAR(metrics.segments[2].accuracy(), 0.669064748201, 1e-9);
  EXPECT_NEAR(metrics.segments[2].mean_subset_size(), 2.989361702128, 1e-9);
  EXPECT_EQ(metrics.segments[3].arrivals, 147);
  EXPECT_EQ(metrics.segments[3].missed, 52);
  EXPECT_NEAR(metrics.segments[3].accuracy(), 0.646258503401, 1e-9);
  EXPECT_NEAR(metrics.segments[3].mean_subset_size(), 2.989473684211, 1e-9);
}

TEST_F(ServingRegressionTest, SchembleOracleMetricsArePinned) {
  const auto history =
      task_->GenerateDataset(2000, DifficultyDistribution::UniformFull(), 5);
  auto scorer_result = DiscrepancyScorer::Fit(*task_, history);
  ASSERT_TRUE(scorer_result.ok());
  const DiscrepancyScorer scorer = std::move(scorer_result).value();
  auto profile_result =
      AccuracyProfile::Build(*task_, history, scorer.ScoreAll(history));
  ASSERT_TRUE(profile_result.ok());

  SchembleConfig config;
  config.score_source = ScoreSource::kOracle;
  SchemblePolicy policy(*task_, profile_result.value(), nullptr, &scorer,
                        std::move(config));
  ServerOptions options;
  options.segment_duration = 5 * kSecond;
  EnsembleServer server(*task_, &policy, options);
  const ServingMetrics metrics = server.Run(MakeTrace());
  MaybePrintGoldens("SchembleOracleMetricsArePinned", metrics);

  // Schemble's difficulty-dependent scheduling shows up directly in the
  // goldens: 2 misses vs Original's 214, and the mean executed subset
  // shrinks from the full 3 models to ~1.7.
  EXPECT_EQ(metrics.total, 592);
  EXPECT_EQ(metrics.processed, 590);
  EXPECT_EQ(metrics.missed, 2);
  EXPECT_NEAR(metrics.accuracy_sum, 589.000000000000, 1e-9);
  EXPECT_NEAR(metrics.mean_latency_ms(), 87.988244067797, 1e-9);
  ASSERT_EQ(metrics.segments.size(), 4u);
  EXPECT_EQ(metrics.segments[0].arrivals, 149);
  EXPECT_EQ(metrics.segments[0].missed, 0);
  EXPECT_NEAR(metrics.segments[0].accuracy(), 0.993288590604, 1e-9);
  EXPECT_NEAR(metrics.segments[0].mean_subset_size(), 1.664429530201, 1e-9);
  EXPECT_EQ(metrics.segments[1].arrivals, 157);
  EXPECT_EQ(metrics.segments[1].missed, 2);
  EXPECT_NEAR(metrics.segments[1].accuracy(), 0.987261146497, 1e-9);
  EXPECT_NEAR(metrics.segments[1].mean_subset_size(), 1.683870967742, 1e-9);
  EXPECT_EQ(metrics.segments[2].arrivals, 139);
  EXPECT_EQ(metrics.segments[2].missed, 0);
  EXPECT_NEAR(metrics.segments[2].accuracy(), 1.000000000000, 1e-9);
  EXPECT_NEAR(metrics.segments[2].mean_subset_size(), 1.733812949640, 1e-9);
  EXPECT_EQ(metrics.segments[3].arrivals, 147);
  EXPECT_EQ(metrics.segments[3].missed, 0);
  EXPECT_NEAR(metrics.segments[3].accuracy(), 1.000000000000, 1e-9);
  EXPECT_NEAR(metrics.segments[3].mean_subset_size(), 1.632653061224, 1e-9);
}

}  // namespace
}  // namespace schemble
