// End-to-end serving with the stacking aggregation module (the paper's
// text-matching deployment aggregates with a trained meta-classifier and
// fills missing base-model outputs by KNN).

#include <gtest/gtest.h>

#include <memory>

#include "core/aggregation.h"
#include "models/task_factory.h"
#include "serving/pipeline.h"
#include "serving/server.h"
#include "workload/trace.h"
#include "workload/traffic.h"

namespace schemble {
namespace {

class StackingServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    task_ = std::make_unique<SyntheticTask>(MakeTextMatchingTask(3));
    PipelineOptions options;
    options.history_size = 1500;
    options.predictor.trainer.epochs = 8;
    pipeline_ = std::move(SchemblePipeline::Build(*task_, options)).value();
    AggregatorConfig config;
    config.kind = AggregationKind::kStacking;
    aggregator_ = std::make_unique<Aggregator>(
        std::move(Aggregator::Build(*task_, pipeline_->history(), config))
            .value());
  }

  QueryTrace MakeTrace(double rate) {
    PoissonTraffic traffic(rate);
    ConstantDeadline deadlines(100 * kMillisecond);
    TraceOptions options;
    options.seed = 23;
    return BuildTrace(*task_, traffic, deadlines, 20 * kSecond, options);
  }

  std::unique_ptr<SyntheticTask> task_;
  std::unique_ptr<SchemblePipeline> pipeline_;
  std::unique_ptr<Aggregator> aggregator_;
};

TEST_F(StackingServingTest, ServerUsesStackingAggregator) {
  auto policy = pipeline_->MakeSchemble(SchembleConfig{});
  ServerOptions options;
  options.aggregator = aggregator_.get();
  const QueryTrace trace = MakeTrace(30.0);
  const ServingMetrics metrics =
      EnsembleServer(*task_, policy.get(), options).Run(trace);
  EXPECT_EQ(metrics.total, trace.size());
  // Stacking tracks the ensemble decision well even with partial subsets
  // (KNN fills the missing outputs).
  EXPECT_GT(metrics.processed_accuracy(), 0.8);
}

TEST_F(StackingServingTest, StackingComparableToAveragingUnderLoad) {
  const QueryTrace trace = MakeTrace(35.0);
  auto policy_a = pipeline_->MakeSchemble(SchembleConfig{});
  ServerOptions with_stacking;
  with_stacking.aggregator = aggregator_.get();
  const ServingMetrics stacked =
      EnsembleServer(*task_, policy_a.get(), with_stacking).Run(trace);
  auto policy_b = pipeline_->MakeSchemble(SchembleConfig{});
  const ServingMetrics averaged =
      EnsembleServer(*task_, policy_b.get(), ServerOptions{}).Run(trace);
  EXPECT_NEAR(stacked.accuracy(), averaged.accuracy(), 0.1);
  EXPECT_EQ(stacked.total, averaged.total);
}

TEST_F(StackingServingTest, VotingAggregatorAlsoServes) {
  AggregatorConfig config;
  config.kind = AggregationKind::kVoting;
  auto voting = Aggregator::Build(*task_, pipeline_->history(), config);
  ASSERT_TRUE(voting.ok());
  auto policy = pipeline_->MakeSchemble(SchembleConfig{});
  ServerOptions options;
  options.aggregator = &voting.value();
  const QueryTrace trace = MakeTrace(30.0);
  const ServingMetrics metrics =
      EnsembleServer(*task_, policy.get(), options).Run(trace);
  EXPECT_GT(metrics.processed_accuracy(), 0.8);
}

}  // namespace
}  // namespace schemble
