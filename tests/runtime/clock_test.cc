#include "simcore/clock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace schemble {
namespace {

TEST(SteadyClockTest, AdvancesMonotonically) {
  SteadyClock clock;
  const SimTime a = clock.Now();
  const SimTime b = clock.Now();
  EXPECT_GE(b, a);
}

TEST(SteadyClockTest, SleepUntilReachesDeadline) {
  SteadyClock clock(1.0);
  const SimTime target = clock.Now() + 2 * kMillisecond;
  clock.SleepUntil(target);
  EXPECT_GE(clock.Now(), target);
}

TEST(SteadyClockTest, SleepUntilPastReturnsImmediately) {
  SteadyClock clock;
  clock.SleepFor(kMillisecond);
  const SimTime before = clock.Now();
  clock.SleepUntil(0);
  // No sleep happened: well under a millisecond elapsed.
  EXPECT_LT(clock.Now() - before, kMillisecond);
}

TEST(SteadyClockTest, SpeedupCompressesRealTime) {
  // 100 virtual ms at 100x elapses in ~1 real ms.
  SteadyClock wall(1.0);
  SteadyClock fast(100.0);
  const SimTime real_before = wall.Now();
  fast.SleepFor(100 * kMillisecond);
  const SimTime real_elapsed = wall.Now() - real_before;
  EXPECT_LT(real_elapsed, 50 * kMillisecond);
  EXPECT_GE(fast.Now(), 100 * kMillisecond);
}

TEST(ManualClockTest, StartsAtConfiguredTime) {
  ManualClock clock(5 * kSecond);
  EXPECT_EQ(clock.Now(), 5 * kSecond);
  clock.Advance(kSecond);
  EXPECT_EQ(clock.Now(), 6 * kSecond);
}

TEST(ManualClockTest, SleepUntilBlocksUntilAdvanced) {
  ManualClock clock;
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    clock.SleepUntil(10 * kMillisecond);
    woke.store(true);
  });
  // Not enough: the sleeper must still be blocked.
  clock.AdvanceTo(9 * kMillisecond);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(woke.load());
  clock.AdvanceTo(10 * kMillisecond);
  sleeper.join();
  EXPECT_TRUE(woke.load());
}

TEST(ManualClockTest, AdvanceWakesAllSleepers) {
  ManualClock clock;
  std::atomic<int> woke{0};
  std::vector<std::thread> sleepers;
  for (int i = 1; i <= 4; ++i) {
    sleepers.emplace_back([&, i] {
      clock.SleepUntil(i * kMillisecond);
      woke.fetch_add(1);
    });
  }
  clock.AdvanceTo(4 * kMillisecond);
  for (std::thread& t : sleepers) t.join();
  EXPECT_EQ(woke.load(), 4);
}

}  // namespace
}  // namespace schemble
