// Death tests for the runtime lock-order validator: a seeded rank
// inversion through the real Mutex::Lock path must CHECK-fail, naming both
// acquisition sites, BEFORE the underlying lock() call could deadlock.
// This is the dynamic layer of the deadlock-freedom story; the clang
// acquired_before/after analysis (tests/static/lock_order_violation.cc)
// is the static one, and the stress matrix runs the whole runtime under
// this validator in the Debug and sanitizer lanes.
//
// Every violation happens inside EXPECT_DEATH, i.e. in a forked child, so
// the edges it records never pollute the parent's process-global graph.
// Edges the PARENT establishes (to seed an order) are real rank-table
// edges the runtime itself witnesses, so they are harmless to later tests.

#include <gtest/gtest.h>

#include "common/lock_order.h"
#include "common/thread_annotations.h"

namespace schemble {
namespace {

#if SCHEMBLE_LOCK_ORDER_CHECKS

TEST(LockOrderValidatorDeathTest, SeededInversionDiesNamingBothSites) {
  // Establish the legal order first: kDomain before kDone (the real
  // finalization order — domain mutex, then the completion latch).
  Mutex domain_mu{LockRank::kDomain, "validator.domain_mu"};
  Mutex done_mu{LockRank::kDone, "validator.done_mu"};
  {
    MutexLock domain_lock(&domain_mu);
    MutexLock done_lock(&done_mu);
  }
  // Now invert it: blocking on the domain lock while holding the
  // completion latch closes a cycle against the witnessed order. The
  // report must carry the names of both locks involved.
  EXPECT_DEATH(
      {
        MutexLock done_lock(&done_mu);
        MutexLock domain_lock(&domain_mu);
      },
      "lock-order inversion.*validator.domain_mu.*validator.done_mu");
}

TEST(LockOrderValidatorDeathTest, SameRankNestingDies) {
  // Two distinct locks of equal rank have no defined order between them;
  // nesting them is refused outright, no prior edge needed.
  // Parenthesized construction: a brace-init comma would split the
  // EXPECT_DEATH macro arguments.
  EXPECT_DEATH(
      {
        Mutex leaf_a(LockRank::kLeaf, "validator.leaf_a");
        Mutex leaf_b(LockRank::kLeaf, "validator.leaf_b");
        MutexLock lock_a(&leaf_a);
        MutexLock lock_b(&leaf_b);
      },
      "same-rank.*validator.leaf_a");
}

TEST(LockOrderValidatorTest, TryLockIsOrderExempt) {
  // The work-stealing pattern: holding a higher rank, PROBE a lower one
  // with TryLock. A try-acquire can never deadlock, so no violation.
  Mutex done_mu{LockRank::kDone, "validator.exempt_done"};
  Mutex domain_mu{LockRank::kDomain, "validator.exempt_domain"};
  MutexLock done_lock(&done_mu);
  // Plain if/else (not ASSERT_TRUE) so the clang try-acquire analysis can
  // see the success branch.
  if (domain_mu.TryLock()) {
    domain_mu.Unlock();
  } else {
    ADD_FAILURE() << "uncontended TryLock failed";
  }
}

TEST(LockOrderValidatorDeathTest, BlockingUnderTryLockedMutexIsValidated) {
  // TryLock is exempt from the ordering, but the lock it takes still joins
  // the held stack: a BLOCKING acquisition under it is validated like any
  // other. Here the try-held kDone lock makes the blocking kDomain
  // acquisition an inversion (order seeded in the parent).
  Mutex domain_mu{LockRank::kDomain, "validator.under_try_domain"};
  Mutex done_mu{LockRank::kDone, "validator.under_try_done"};
  {
    MutexLock domain_lock(&domain_mu);
    MutexLock done_lock(&done_mu);
  }
  EXPECT_DEATH(
      {
        if (done_mu.TryLock()) {
          MutexLock domain_lock(&domain_mu);  // the validator fires here
          done_mu.Unlock();
        }
      },
      "lock-order inversion.*validator.under_try_domain");
}

TEST(LockOrderValidatorTest, RankOrderedNestingIsClean) {
  // The full legal chain in one thread: strictly increasing ranks never
  // trip the validator, whatever order the edges were first witnessed in.
  Mutex domain_mu{LockRank::kDomain, "validator.chain_domain"};
  Mutex inbox_mu{LockRank::kInbox, "validator.chain_inbox"};
  Mutex clock_mu{LockRank::kClock, "validator.chain_clock"};
  Mutex done_mu{LockRank::kDone, "validator.chain_done"};
  MutexLock domain_lock(&domain_mu);
  MutexLock inbox_lock(&inbox_mu);
  MutexLock clock_lock(&clock_mu);
  MutexLock done_lock(&done_mu);
  SUCCEED();
}

#else  // !SCHEMBLE_LOCK_ORDER_CHECKS

TEST(LockOrderValidatorTest, ValidatorCompiledOutInThisBuild) {
  GTEST_SKIP() << "lock-order validator compiled out "
                  "(release build without SCHEMBLE_LOCK_ORDER)";
}

#endif  // SCHEMBLE_LOCK_ORDER_CHECKS

}  // namespace
}  // namespace schemble
