// Death tests for the project's two dynamic discipline layers:
//
//  - lock discipline: the annotated Mutex (common/thread_annotations.h)
//    turns re-entrant Lock and Unlock-by-non-owner — undefined behaviour on
//    a raw std::mutex — into CHECK failures in every build type. The
//    violations are issued through the thread_annotations_internal escapes
//    because the clang thread-safety analysis would otherwise (correctly)
//    reject them at compile time.
//
//  - hot-path allocation discipline: ScopedGrowGuard (common/hot_path.h)
//    pins a grow-event counter across a section declared allocation-free,
//    covering both counter flavours — the process-wide atomic
//    Matrix::op_stats().grow_events and the per-workspace plain int64_t of
//    KnnIndex::Workspace.
//
// These are the runtime teeth behind the static rules in tools/lint.py.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/hot_path.h"
#include "common/thread_annotations.h"
#include "nn/knn.h"
#include "nn/matrix.h"

namespace schemble {
namespace {

using thread_annotations_internal::LockIgnoringAnalysis;
using thread_annotations_internal::UnlockIgnoringAnalysis;

TEST(LockDisciplineDeathTest, ReentrantLockDies) {
  Mutex mu{LockRank::kLeaf, "test.mu"};
  MutexLock lock(&mu);
  EXPECT_DEATH(LockIgnoringAnalysis(mu), "re-entrant Mutex::Lock");
}

TEST(LockDisciplineDeathTest, UnlockWithoutLockDies) {
  Mutex mu{LockRank::kLeaf, "test.mu"};
  EXPECT_DEATH(UnlockIgnoringAnalysis(mu),
               "does not hold the lock");
}

TEST(LockDisciplineDeathTest, UnlockByNonOwnerDies) {
  Mutex mu{LockRank::kLeaf, "test.mu"};
  MutexLock lock(&mu);
  std::thread thief([&mu] {
    EXPECT_DEATH(UnlockIgnoringAnalysis(mu), "does not hold the lock");
  });
  thief.join();
}

// NOTE: the remaining misuse modes (double MutexLock::Release, CondVar::Wait
// without the capability, ...) are compile-time errors under the clang
// thread-safety analysis, so they cannot appear here even inside
// EXPECT_DEATH — which is the point. The scratch-TU compile-fail test
// (tests/static/) proves the analysis rejects them.
TEST(LockDisciplineDeathTest, AssertHeldWithoutLockDies) {
  Mutex mu{LockRank::kLeaf, "test.mu"};
  EXPECT_DEATH(mu.AssertHeld(), "Check failed");
}

// --- hot-path grow-event guards -------------------------------------------

KnnIndex BuildSmallIndex() {
  std::vector<std::vector<double>> records;
  for (int r = 0; r < 16; ++r) {
    records.push_back({1.0 * r, 2.0 * r, 3.0 * r, 4.0 * r});
  }
  auto built = KnnIndex::Build(std::move(records));
  SCHEMBLE_CHECK(built.ok());
  return std::move(built).value();
}

TEST(GrowGuardTest, SteadyStateMatrixApplyIsGrowFree) {
  const Matrix m(8, 4, 0.5);
  const std::vector<double> x(4, 1.0);
  std::vector<double> y;
  m.ApplyInto(x, &y);  // warm-up: y reaches capacity here
  {
    ScopedGrowGuard guard(Matrix::op_stats().grow_events, "Matrix::ApplyInto");
    for (int i = 0; i < 100; ++i) m.ApplyInto(x, &y);
  }
}

TEST(GrowGuardDeathTest, ColdMatrixApplyInsideGuardDies) {
  const Matrix m(8, 4, 0.5);
  const std::vector<double> x(4, 1.0);
  EXPECT_DEATH(
      {
        ScopedGrowGuard guard(Matrix::op_stats().grow_events,
                              "Matrix::ApplyInto");
        std::vector<double> cold;  // no capacity: ApplyInto must grow it
        m.ApplyInto(x, &cold);
      },
      "grow events inside Matrix::ApplyInto");
}

TEST(GrowGuardTest, SteadyStateKnnQueryIsGrowFree) {
  const KnnIndex index = BuildSmallIndex();
  const std::vector<double> point = {1.5, 3.0, 4.5, 6.0};
  const std::vector<bool> mask = {true, true, false, true};
  KnnIndex::Workspace ws;
  std::vector<KnnIndex::Neighbor> out;
  index.QueryInto(point, mask, 3, &ws, &out);  // warm-up
  {
    ScopedGrowGuard guard(ws.stats.grow_events, "KnnIndex::QueryInto");
    for (int i = 0; i < 100; ++i) index.QueryInto(point, mask, 3, &ws, &out);
  }
  EXPECT_EQ(ws.stats.queries, 101);
}

TEST(GrowGuardDeathTest, ColdKnnWorkspaceInsideGuardDies) {
  const KnnIndex index = BuildSmallIndex();
  const std::vector<double> point = {1.5, 3.0, 4.5, 6.0};
  const std::vector<bool> mask = {true, true, false, true};
  EXPECT_DEATH(
      {
        KnnIndex::Workspace cold;
        std::vector<KnnIndex::Neighbor> out;
        ScopedGrowGuard guard(cold.stats.grow_events, "KnnIndex::QueryInto");
        index.QueryInto(point, mask, 3, &cold, &out);
      },
      "grow events inside KnnIndex::QueryInto");
}

TEST(GrowGuardTest, BaselineIsCapturedAtConstruction) {
  int64_t counter = 7;
  ScopedGrowGuard guard(counter, "baseline check");
  EXPECT_EQ(guard.baseline(), 7);
}

}  // namespace
}  // namespace schemble
