#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include "baselines/original_policy.h"
#include "core/discrepancy.h"
#include "core/schemble_policy.h"
#include "models/task_factory.h"
#include "runtime/concurrent_server.h"
#include "runtime/routing_policy.h"
#include "workload/trace.h"
#include "workload/traffic.h"

namespace schemble {
namespace {

/// Structural invariants every sharded run must satisfy regardless of
/// thread timing: conservation across the per-domain metric sinks (a lost
/// or double-counted query breaks one of these even when the exactly-once
/// finalize CHECK is not hit).
void CheckShardedInvariants(const ServingMetrics& metrics,
                            const QueryTrace& trace) {
  EXPECT_EQ(metrics.total, trace.size());
  const int64_t size_count_total =
      std::accumulate(metrics.subset_size_counts.begin(),
                      metrics.subset_size_counts.end(), int64_t{0});
  EXPECT_EQ(size_count_total, metrics.total);
  int64_t seg_arrivals = 0;
  for (const SegmentStats& seg : metrics.segments) {
    seg_arrivals += seg.arrivals;
  }
  EXPECT_EQ(seg_arrivals, metrics.total);
  EXPECT_EQ(metrics.latency_ms.count(),
            static_cast<int64_t>(metrics.processed));
}

/// Routes every query to one fixed domain — the adversarial input for the
/// work-stealing and rebalancing paths.
class FixedRouting final : public RoutingPolicy {
 public:
  explicit FixedRouting(int target) : target_(target) {}
  std::string name() const override { return "fixed"; }
  int Route(const TracedQuery&, SimTime,
            std::span<const DomainLoad>) override {
    return target_;
  }

 private:
  int target_;
};

QueryTrace MakeSimpleTrace(const SyntheticTask& task, double rate,
                           SimTime duration, SimTime deadline,
                           uint64_t seed) {
  PoissonTraffic traffic(rate);
  ConstantDeadline deadlines(deadline);
  TraceOptions options;
  options.seed = seed;
  return BuildTrace(task, traffic, deadlines, duration, options);
}

TEST(ShardedServerTest, ForceModeProcessesEverythingAcrossDomains) {
  const SyntheticTask task = MakeTextMatchingTask(3);
  OriginalPolicy policy_a;
  OriginalPolicy policy_b;
  ConcurrentServerOptions options;
  options.num_domains = 2;
  options.executor_models = {0, 0, 1, 1, 2, 2};
  options.routing = RoutingPolicyKind::kRoundRobin;
  options.allow_rejection = false;
  options.speedup = 100.0;
  ConcurrentServer server(task, {&policy_a, &policy_b}, options);
  EXPECT_EQ(server.num_domains(), 2);
  EXPECT_EQ(server.num_executors(), 6);
  const QueryTrace trace =
      MakeSimpleTrace(task, 10.0, 10 * kSecond, 10 * kSecond, 17);
  const ServingMetrics metrics = server.Run(trace);
  CheckShardedInvariants(metrics, trace);
  EXPECT_EQ(metrics.processed, trace.size());
}

TEST(ShardedServerTest, MismatchedPolicyCountIsRejected) {
  const SyntheticTask task = MakeTextMatchingTask(3);
  OriginalPolicy policy;
  ConcurrentServerOptions options;
  options.num_domains = 2;
  options.executor_models = {0, 0, 1, 1, 2, 2};
  EXPECT_DEATH(ConcurrentServer(task, {&policy}, options),
               "one policy instance per scheduler domain");
}

TEST(ShardedServerTest, UnderReplicatedModelIsRejected) {
  const SyntheticTask task = MakeTextMatchingTask(3);
  OriginalPolicy policy_a;
  OriginalPolicy policy_b;
  ConcurrentServerOptions options;
  options.num_domains = 2;
  // Model 2 has a single replica: domain 1 could never serve it.
  options.executor_models = {0, 0, 1, 1, 2};
  EXPECT_DEATH(ConcurrentServer(task, {&policy_a, &policy_b}, options),
               "fewer replicas than scheduler domains");
}

TEST(ShardedServerTest, ZeroArrivalPumpsIsRejected) {
  const SyntheticTask task = MakeTextMatchingTask(3);
  OriginalPolicy policy_a;
  OriginalPolicy policy_b;
  ConcurrentServerOptions options;
  options.num_domains = 2;
  options.executor_models = {0, 0, 1, 1, 2, 2};
  options.num_arrival_threads = 0;
  EXPECT_DEATH(ConcurrentServer(task, {&policy_a, &policy_b}, options),
               "at least one arrival pump is required");
}

TEST(ShardedServerTest, ExcessiveArrivalPumpCountIsRejected) {
  const SyntheticTask task = MakeTextMatchingTask(3);
  OriginalPolicy policy_a;
  OriginalPolicy policy_b;
  ConcurrentServerOptions options;
  options.num_domains = 2;
  options.executor_models = {0, 0, 1, 1, 2, 2};
  options.num_arrival_threads = 65;
  EXPECT_DEATH(ConcurrentServer(task, {&policy_a, &policy_b}, options),
               "arrival pump count capped at 64");
}

TEST(ShardedServerTest, MorePumpsThanTraceQueriesIsRejected) {
  const SyntheticTask task = MakeTextMatchingTask(3);
  OriginalPolicy policy_a;
  OriginalPolicy policy_b;
  ConcurrentServerOptions options;
  options.num_domains = 2;
  options.executor_models = {0, 0, 1, 1, 2, 2};
  options.num_arrival_threads = 8;
  options.speedup = 100.0;
  ConcurrentServer server(task, {&policy_a, &policy_b}, options);
  // The check fires at Run time: the pump count is validated against the
  // concrete trace, not the options alone.
  QueryTrace trace = MakeSimpleTrace(task, 10.0, 10 * kSecond, 10 * kSecond, 17);
  trace.items.resize(3);
  EXPECT_DEATH(server.Run(trace), "more arrival pumps than trace queries");
}

TEST(ShardedServerTest, MalformedPumpWeightsAreRejected) {
  const SyntheticTask task = MakeTextMatchingTask(3);
  OriginalPolicy policy_a;
  OriginalPolicy policy_b;
  ConcurrentServerOptions options;
  options.num_domains = 2;
  options.executor_models = {0, 0, 1, 1, 2, 2};
  options.num_arrival_threads = 2;
  options.arrival_pump_weights = {4, 1, 1};  // three weights, two pumps
  EXPECT_DEATH(ConcurrentServer(task, {&policy_a, &policy_b}, options),
               "one entry per pump");
  options.arrival_pump_weights = {4, 0};  // a pump that owns nothing
  EXPECT_DEATH(ConcurrentServer(task, {&policy_a, &policy_b}, options),
               "arrival pump weights must be positive");
}

TEST(ShardedServerTest, CustomRouterRequiresSinglePump) {
  const SyntheticTask task = MakeTextMatchingTask(3);
  OriginalPolicy policy_a;
  OriginalPolicy policy_b;
  FixedRouting all_to_zero(0);
  ConcurrentServerOptions options;
  options.num_domains = 2;
  options.executor_models = {0, 0, 1, 1, 2, 2};
  options.router = &all_to_zero;
  options.num_arrival_threads = 2;
  // RoutingPolicy instances are single-caller; a user-supplied instance
  // cannot be shared across pumps and the ctor must say so up front.
  EXPECT_DEATH(ConcurrentServer(task, {&policy_a, &policy_b}, options),
               "single-caller");
}

TEST(ShardedServerTest, MultiPumpForceModeProcessesEverything) {
  const SyntheticTask task = MakeTextMatchingTask(3);
  OriginalPolicy policy_a;
  OriginalPolicy policy_b;
  ConcurrentServerOptions options;
  options.num_domains = 2;
  options.executor_models = {0, 0, 1, 1, 2, 2};
  options.routing = RoutingPolicyKind::kLeastLoaded;
  options.allow_rejection = false;
  options.speedup = 100.0;
  options.num_arrival_threads = 4;
  ConcurrentServer server(task, {&policy_a, &policy_b}, options);
  EXPECT_EQ(server.num_arrival_pumps(), 4);
  const QueryTrace trace =
      MakeSimpleTrace(task, 20.0, 10 * kSecond, 10 * kSecond, 19);
  const ServingMetrics metrics = server.Run(trace);
  CheckShardedInvariants(metrics, trace);
  EXPECT_EQ(metrics.processed, trace.size());
  // Every query was routed by exactly one pump, and the round-robin
  // partition gives every pump a non-empty slice of this trace.
  int64_t routed = 0;
  for (int p = 0; p < server.num_arrival_pumps(); ++p) {
    EXPECT_GT(server.pump_routed(p), 0) << "pump " << p;
    routed += server.pump_routed(p);
  }
  EXPECT_EQ(routed, trace.size());
}

TEST(ShardedServerTest, SkewedPumpWeightsPartitionTheTrace) {
  const SyntheticTask task = MakeTextMatchingTask(3);
  OriginalPolicy policy_a;
  OriginalPolicy policy_b;
  ConcurrentServerOptions options;
  options.num_domains = 2;
  options.executor_models = {0, 0, 1, 1, 2, 2};
  options.allow_rejection = false;
  options.speedup = 100.0;
  options.num_arrival_threads = 2;
  options.arrival_pump_weights = {4, 1};  // pump 0 replays 80% of arrivals
  ConcurrentServer server(task, {&policy_a, &policy_b}, options);
  const QueryTrace trace =
      MakeSimpleTrace(task, 20.0, 10 * kSecond, 10 * kSecond, 19);
  const ServingMetrics metrics = server.Run(trace);
  CheckShardedInvariants(metrics, trace);
  EXPECT_EQ(metrics.processed, trace.size());
  EXPECT_EQ(server.pump_routed(0) + server.pump_routed(1), trace.size());
  // The weighted round-robin deal is deterministic: pump 0 owns slots
  // {0,1,2,3} of every 5-slot cycle.
  const int64_t n = trace.size();
  EXPECT_EQ(server.pump_routed(0), (n / 5) * 4 + std::min<int64_t>(n % 5, 4));
}

TEST(ShardedServerTest, PumpCountDoesNotChangeDeterministicMetrics) {
  // In force mode the completion metrics (conservation counts, subset
  // histogram, accuracy sums) are pure functions of the trace and the
  // policy — never of arrival-thread interleaving. Four pumps must
  // reproduce the single-pump numbers. Deadlines are far beyond the
  // replay window so wall-clock jitter on a loaded host cannot turn
  // scheduling skew into deadline misses.
  const SyntheticTask task = MakeTextMatchingTask(3);
  const QueryTrace trace =
      MakeSimpleTrace(task, 20.0, 10 * kSecond, 600 * kSecond, 19);
  auto run = [&](int pumps) {
    OriginalPolicy policy_a;
    OriginalPolicy policy_b;
    ConcurrentServerOptions options;
    options.num_domains = 2;
    options.executor_models = {0, 0, 1, 1, 2, 2};
    options.routing = RoutingPolicyKind::kRoundRobin;
    options.allow_rejection = false;
    options.speedup = 100.0;
    options.num_arrival_threads = pumps;
    ConcurrentServer server(task, {&policy_a, &policy_b}, options);
    return server.Run(trace);
  };
  const ServingMetrics one = run(1);
  const ServingMetrics four = run(4);
  EXPECT_EQ(one.total, four.total);
  EXPECT_EQ(one.processed, four.processed);
  EXPECT_EQ(one.missed, four.missed);
  EXPECT_EQ(one.subset_size_counts, four.subset_size_counts);
  // The per-query accuracies are identical; only the floating-point
  // summation order differs (queries land in different domains when the
  // round-robin cursor is per-pump), so compare with a tolerance.
  EXPECT_NEAR(one.accuracy_sum, four.accuracy_sum, 1e-6);
  EXPECT_NEAR(one.processed_accuracy_sum, four.processed_accuracy_sum, 1e-6);
}

TEST(ShardedServerTest, StealRescuesSkewedRouting) {
  const SyntheticTask task = MakeTextMatchingTask(3);
  OriginalPolicy policy_a;
  OriginalPolicy policy_b;
  FixedRouting all_to_zero(0);
  ConcurrentServerOptions options;
  options.num_domains = 2;
  options.executor_models = {0, 0, 1, 1, 2, 2};
  options.router = &all_to_zero;
  options.allow_rejection = false;
  options.speedup = 100.0;
  // Tiny executor queues: domain 0's admitter stalls dispatching the
  // flood, arrivals back up in its inbox, and the only way domain 1 ever
  // sees work is by stealing it out of that inbox.
  options.queue_capacity = 4;
  options.steal_batch = 8;
  ConcurrentServer server(task, {&policy_a, &policy_b}, options);
  // ~3x the capacity of domain 0's executor slice.
  const QueryTrace trace =
      MakeSimpleTrace(task, 60.0, 10 * kSecond, 60 * kSecond, 23);
  const ServingMetrics metrics = server.Run(trace);
  CheckShardedInvariants(metrics, trace);
  // Force mode: every query still completes exactly once (a double
  // dispatch would trip the host's finalize CHECK).
  EXPECT_EQ(metrics.processed, trace.size());
  const ConcurrentServer::SchedulerStatsSnapshot sched =
      server.scheduler_stats();
  EXPECT_GT(sched.steals, 0);
  EXPECT_GT(sched.stolen, 0);
  // The thief's own counters live on domain 1.
  const ConcurrentServer::SchedulerStatsSnapshot thief =
      server.scheduler_stats(1);
  EXPECT_EQ(thief.steals, sched.steals);
}

class ShardedSchembleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    task_ = std::make_unique<SyntheticTask>(MakeTextMatchingTask(3));
    history_ = task_->GenerateDataset(
        2000, DifficultyDistribution::UniformFull(), 5);
    auto scorer = DiscrepancyScorer::Fit(*task_, history_);
    ASSERT_TRUE(scorer.ok());
    scorer_ = std::make_unique<DiscrepancyScorer>(std::move(scorer).value());
    const auto scores = scorer_->ScoreAll(history_);
    auto profile = AccuracyProfile::Build(*task_, history_, scores);
    ASSERT_TRUE(profile.ok());
    profile_ = std::make_unique<AccuracyProfile>(std::move(profile).value());
  }

  SchemblePolicy MakeOraclePolicy() const {
    SchembleConfig config;
    config.score_source = ScoreSource::kOracle;
    return SchemblePolicy(*task_, *profile_, nullptr, scorer_.get(),
                          std::move(config));
  }

  std::unique_ptr<SyntheticTask> task_;
  std::vector<Query> history_;
  std::unique_ptr<DiscrepancyScorer> scorer_;
  std::unique_ptr<AccuracyProfile> profile_;
};

TEST_F(ShardedSchembleTest, RebalanceDonatesBufferedBacklog) {
  // Schemble buffers under load; with every arrival routed to domain 0 and
  // domain 1 idle, the only way the backlog levels out is the donor-side
  // rebalance path. Generous deadlines keep donated queries completable,
  // and conservation plus the exactly-once finalize CHECK prove no query
  // is lost or double-dispatched across the migration.
  SchemblePolicy policy_a = MakeOraclePolicy();
  SchemblePolicy policy_b = MakeOraclePolicy();
  FixedRouting all_to_zero(0);
  ConcurrentServerOptions options;
  options.num_domains = 2;
  options.executor_models = {0, 0, 1, 1, 2, 2};
  options.router = &all_to_zero;
  options.speedup = 100.0;
  options.steal_batch = 8;
  options.rebalance_period = 5 * kMillisecond;
  ConcurrentServer server(*task_, {&policy_a, &policy_b}, options);
  const QueryTrace trace =
      MakeSimpleTrace(*task_, 60.0, 10 * kSecond, 20 * kSecond, 31);
  const ServingMetrics metrics = server.Run(trace);
  CheckShardedInvariants(metrics, trace);
  const ConcurrentServer::SchedulerStatsSnapshot sched =
      server.scheduler_stats();
  // Cross-domain movement happened: the backlog left domain 0 through
  // donations, steals, or (typically) both.
  EXPECT_GT(sched.donated + sched.stolen, 0);
  // The donor's counters live on domain 0.
  EXPECT_EQ(server.scheduler_stats(0).donated, sched.donated);
}

/// The multi-domain TSan target: four domains, 32 workers over a 3-model
/// ensemble (replicas 8/16/8), four independent Schemble policy instances,
/// a bursty trace skewed 7:1 onto domain 0 so the steal/donate/readmit
/// paths all fire while admission, planning, deadline and worker threads
/// run in every domain at once.
TEST_F(ShardedSchembleTest, StressFourDomainsSkewedBurstyTraffic) {
  SchemblePolicy policy_a = MakeOraclePolicy();
  SchemblePolicy policy_b = MakeOraclePolicy();
  SchemblePolicy policy_c = MakeOraclePolicy();
  SchemblePolicy policy_d = MakeOraclePolicy();

  /// 7 of 8 queries land on domain 0; the rest cycle the other domains.
  class SkewedRouting final : public RoutingPolicy {
   public:
    std::string name() const override { return "skewed"; }
    int Route(const TracedQuery& query, SimTime,
              std::span<const DomainLoad> domains) override {
      const int64_t id = query.query.id;
      if (id % 8 != 0) return 0;
      return 1 + static_cast<int>((id / 8) % (domains.size() - 1));
    }
  };
  SkewedRouting skew;

  ConcurrentServerOptions options;
  options.num_domains = 4;
  options.executor_models.assign(8, 0);
  options.executor_models.insert(options.executor_models.end(), 16, 1);
  options.executor_models.insert(options.executor_models.end(), 8, 2);
  options.router = &skew;
  options.speedup = 100.0;
  // Small executor queues: domain 0's admitter stalls dispatching the
  // skewed flood, so its inbox and buffer back up and the steal/donate
  // paths fire on every run rather than only under unlucky timing.
  options.queue_capacity = 4;
  options.steal_batch = 8;
  options.rebalance_period = 5 * kMillisecond;
  ConcurrentServer server(
      *task_, {&policy_a, &policy_b, &policy_c, &policy_d}, options);
  EXPECT_EQ(server.num_executors(), 32);

  DiurnalTraffic traffic = DiurnalTraffic::QaDayShape(
      /*peak_rate_per_second=*/150.0, /*segment_duration=*/1 * kSecond);
  // Loose enough that queries survive the virtual-time lag of a loaded CI
  // box at speedup 100, tight enough that the deadline threads stay busy.
  ConstantDeadline deadlines(5 * kSecond);
  TraceOptions trace_options;
  trace_options.seed = 29;
  const QueryTrace trace = BuildTrace(*task_, traffic, deadlines,
                                      traffic.total_duration(), trace_options);
  ASSERT_GT(trace.size(), 500);

  const ServingMetrics metrics = server.Run(trace);
  CheckShardedInvariants(metrics, trace);
  EXPECT_GT(metrics.processed, 0);
  // The skew guarantees cross-domain traffic on every run.
  const ConcurrentServer::SchedulerStatsSnapshot sched =
      server.scheduler_stats();
  EXPECT_GT(sched.steals + sched.rebalances, 0);
}

}  // namespace
}  // namespace schemble
