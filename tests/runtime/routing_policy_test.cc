#include "runtime/routing_policy.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "simcore/clock.h"

namespace schemble {
namespace {

TracedQuery MakeQuery(int64_t id, SimTime arrival = 0,
                      SimTime deadline = kSimTimeMax) {
  TracedQuery tq;
  tq.query.id = id;
  tq.arrival_time = arrival;
  tq.deadline = deadline;
  return tq;
}

std::vector<DomainLoad> UniformDomains(int n, int executors = 2) {
  std::vector<DomainLoad> domains(static_cast<size_t>(n));
  for (int d = 0; d < n; ++d) {
    domains[static_cast<size_t>(d)].domain = d;
    domains[static_cast<size_t>(d)].executors = executors;
  }
  return domains;
}

TEST(HashRoutingTest, StableForFixedIdAndDomainCount) {
  HashRouting policy;
  const auto domains = UniformDomains(4);
  // The same id must land on the same domain no matter when it is routed
  // or what the loads look like — the decision is a pure function of
  // (id, n).
  for (int64_t id : {0, 1, 7, 12345, 999999}) {
    const int first = policy.Route(MakeQuery(id), 0, domains);
    auto loaded = domains;
    loaded[0].inbox = 100;
    loaded[3].queued_tasks = 50;
    EXPECT_EQ(policy.Route(MakeQuery(id), 123456, loaded), first)
        << "id " << id;
    EXPECT_GE(first, 0);
    EXPECT_LT(first, 4);
  }
}

TEST(HashRoutingTest, ConsecutiveIdsSpreadAcrossDomains) {
  HashRouting policy;
  const auto domains = UniformDomains(4);
  // A burst of consecutive ids (the common trace shape) must not pile on
  // one domain: splitmix64 decorrelates id from placement.
  std::vector<int> counts(4, 0);
  for (int64_t id = 0; id < 400; ++id) {
    ++counts[static_cast<size_t>(policy.Route(MakeQuery(id), 0, domains))];
  }
  for (int d = 0; d < 4; ++d) {
    EXPECT_GT(counts[static_cast<size_t>(d)], 40) << "domain " << d;
  }
}

TEST(RoundRobinRoutingTest, CyclesThroughDomainsInOrder) {
  RoundRobinRouting policy;
  const auto domains = UniformDomains(3);
  for (int i = 0; i < 9; ++i) {
    // Placement depends only on the call sequence, never on the id.
    EXPECT_EQ(policy.Route(MakeQuery(1000 - i), 0, domains), i % 3);
  }
}

TEST(LeastLoadedRoutingTest, PicksLowestNormalizedPressure) {
  LeastLoadedRouting policy;
  auto domains = UniformDomains(3, /*executors=*/2);
  domains[0].inbox = 6;      // 3 items per executor
  domains[1].buffered = 2;   // 1 item per executor
  domains[2].queued_tasks = 8;
  EXPECT_EQ(policy.Route(MakeQuery(1), 0, domains), 1);
}

TEST(LeastLoadedRoutingTest, NormalizesByExecutorCount) {
  LeastLoadedRouting policy;
  auto domains = UniformDomains(2);
  // 6 items over 4 executors (1.5 each) beats 2 items over 1 executor —
  // the comparison is per-executor pressure, not raw backlog.
  domains[0].inbox = 6;
  domains[0].executors = 4;
  domains[1].inbox = 2;
  domains[1].executors = 1;
  EXPECT_EQ(policy.Route(MakeQuery(1), 0, domains), 0);
}

TEST(LeastLoadedRoutingTest, TiesBreakToLowestIndex) {
  LeastLoadedRouting policy;
  auto domains = UniformDomains(4, /*executors=*/2);
  for (auto& d : domains) d.inbox = 4;  // identical pressure everywhere
  EXPECT_EQ(policy.Route(MakeQuery(42), 0, domains), 0);
  // An exact pressure tie between unequal executor counts (4/2 vs 2/1)
  // still resolves to the lower index deterministically.
  domains[1].inbox = 2;
  domains[1].executors = 1;
  EXPECT_EQ(policy.Route(MakeQuery(42), 0, domains), 0);
}

TEST(DeadlineClassRoutingTest, BucketsBySlackAgainstManualClock) {
  DeadlineClassRouting policy({100 * kMillisecond, 500 * kMillisecond});
  const auto domains = UniformDomains(3);
  ManualClock clock(10 * kSecond);
  const SimTime now = clock.Now();
  // slack < 100ms -> class 0, < 500ms -> class 1, else class 2.
  EXPECT_EQ(policy.Route(MakeQuery(1, now, now + 50 * kMillisecond), now,
                         domains),
            0);
  EXPECT_EQ(policy.Route(MakeQuery(2, now, now + 300 * kMillisecond), now,
                         domains),
            1);
  EXPECT_EQ(policy.Route(MakeQuery(3, now, now + 5 * kSecond), now, domains),
            2);
  // Advancing the clock erodes slack and demotes the same deadline to a
  // tighter class.
  clock.Advance(4900 * kMillisecond);
  EXPECT_EQ(policy.Route(MakeQuery(4, now, now + 5 * kSecond), clock.Now(),
                         domains),
            1);
}

TEST(DeadlineClassRoutingTest, ClassesClampToDomainCount) {
  DeadlineClassRouting policy(
      {100 * kMillisecond, 500 * kMillisecond, 2 * kSecond});
  const auto domains = UniformDomains(2);
  // Class 3 (huge slack) clamps to the last domain when there are fewer
  // domains than classes.
  EXPECT_EQ(policy.Route(MakeQuery(1, 0, kSimTimeMax), 0, domains), 1);
  EXPECT_EQ(policy.Route(MakeQuery(2, 0, 10 * kMillisecond), 0, domains), 0);
}

TEST(RoutingPolicyFactoryTest, MakesEveryKindWithMatchingName) {
  EXPECT_EQ(MakeRoutingPolicy(RoutingPolicyKind::kHash)->name(), "hash");
  EXPECT_EQ(MakeRoutingPolicy(RoutingPolicyKind::kRoundRobin)->name(),
            "round-robin");
  EXPECT_EQ(MakeRoutingPolicy(RoutingPolicyKind::kLeastLoaded)->name(),
            "least-loaded");
  EXPECT_EQ(MakeRoutingPolicy(RoutingPolicyKind::kDeadlineClass)->name(),
            "deadline-class");
}

TEST(RoutingPolicyFactoryTest, SingleDomainAlwaysRoutesToZero) {
  const auto domains = UniformDomains(1);
  for (RoutingPolicyKind kind :
       {RoutingPolicyKind::kHash, RoutingPolicyKind::kRoundRobin,
        RoutingPolicyKind::kLeastLoaded, RoutingPolicyKind::kDeadlineClass}) {
    auto policy = MakeRoutingPolicy(kind);
    for (int64_t id = 0; id < 8; ++id) {
      EXPECT_EQ(policy->Route(MakeQuery(id, 0, 100 * kMillisecond), 0,
                              domains),
                0)
          << policy->name();
    }
  }
}

TEST(DomainLoadBoardTest, UnpublishedRowsReadAsZeroLoad) {
  DomainLoadBoard board({2, 4, 8});
  EXPECT_EQ(board.num_domains(), 3);
  std::vector<DomainLoad> loads;
  board.ReadInto(&loads);
  ASSERT_EQ(loads.size(), 3u);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(loads[static_cast<size_t>(d)].domain, d);
    EXPECT_EQ(loads[static_cast<size_t>(d)].inbox, 0);
    EXPECT_EQ(loads[static_cast<size_t>(d)].buffered, 0);
    EXPECT_EQ(loads[static_cast<size_t>(d)].queued_tasks, 0);
    EXPECT_EQ(board.epoch(d), 0u);
  }
  // Executor counts come from construction, never from publishes.
  EXPECT_EQ(loads[0].executors, 2);
  EXPECT_EQ(loads[1].executors, 4);
  EXPECT_EQ(loads[2].executors, 8);
}

TEST(DomainLoadBoardTest, ReadSeesLatestPublishAndEpochIsMonotonic) {
  DomainLoadBoard board({2, 2});
  std::vector<DomainLoad> loads;
  uint64_t last_epoch = 0;
  for (int round = 1; round <= 5; ++round) {
    board.Publish(1, /*inbox=*/round, /*buffered=*/round * 10,
                  /*queued_tasks=*/round * 100);
    EXPECT_GT(board.epoch(1), last_epoch);
    last_epoch = board.epoch(1);
    board.ReadInto(&loads);
    EXPECT_EQ(loads[1].inbox, round);
    EXPECT_EQ(loads[1].buffered, round * 10);
    EXPECT_EQ(loads[1].queued_tasks, round * 100);
    // Domain 0 never published; its row stays untouched.
    EXPECT_EQ(loads[0].inbox, 0);
    EXPECT_EQ(board.epoch(0), 0u);
  }
  EXPECT_EQ(last_epoch, 5u);
}

TEST(DomainLoadBoardTest, ConcurrentPublishersAndReadersStayCoherent) {
  // Two publisher threads hammer their own rows while a reader thread
  // routes against every snapshot it reads. A stale snapshot may pick a
  // worse domain but must never yield an out-of-range pick, a negative
  // counter, or an epoch that moves backwards (the safety half of the
  // staleness contract; TSan covers the data-race half).
  DomainLoadBoard board({2, 2});
  std::atomic<bool> stop{false};
  auto publisher = [&](int domain) {
    for (int64_t i = 1; !stop.load(std::memory_order_relaxed); ++i) {
      board.Publish(domain, i, i, i);
    }
  };
  std::thread pub0(publisher, 0);
  std::thread pub1(publisher, 1);
  LeastLoadedRouting policy;
  std::vector<DomainLoad> loads;
  uint64_t last_epoch0 = 0;
  for (int i = 0; i < 20000; ++i) {
    board.ReadInto(&loads);
    ASSERT_EQ(loads.size(), 2u);
    for (const DomainLoad& load : loads) {
      EXPECT_GE(load.inbox, 0);
      EXPECT_GE(load.buffered, 0);
      EXPECT_GE(load.queued_tasks, 0);
      EXPECT_EQ(load.executors, 2);
    }
    const uint64_t epoch0 = board.epoch(0);
    EXPECT_GE(epoch0, last_epoch0);
    last_epoch0 = epoch0;
    const int pick = policy.Route(MakeQuery(i), 0, loads);
    EXPECT_GE(pick, 0);
    EXPECT_LT(pick, 2);
  }
  stop.store(true, std::memory_order_relaxed);
  pub0.join();
  pub1.join();
}

TEST(DomainLoadBoardTest, StaleSnapshotNeverRoutesToFailedExecutors) {
  // A domain whose executors have all failed publishes huge load; even a
  // reader working from a snapshot taken before the failure publish only
  // ever picks among live rows once it re-reads — and in between, the
  // stale pick is still a valid domain index (worse, never unsafe).
  DomainLoadBoard board({2, 2, 2});
  std::vector<DomainLoad> stale;
  board.ReadInto(&stale);  // snapshot before any failure is published
  const int64_t kFailedSentinel = int64_t{1} << 40;
  board.Publish(0, kFailedSentinel, kFailedSentinel, kFailedSentinel);
  LeastLoadedRouting policy;
  // Routing against the stale snapshot may pick domain 0 — allowed, and
  // in range.
  const int stale_pick = policy.Route(MakeQuery(1), 0, stale);
  EXPECT_GE(stale_pick, 0);
  EXPECT_LT(stale_pick, 3);
  // After re-reading, the poisoned row loses every comparison.
  std::vector<DomainLoad> fresh;
  board.ReadInto(&fresh);
  for (int64_t id = 0; id < 32; ++id) {
    EXPECT_NE(policy.Route(MakeQuery(id), 0, fresh), 0) << "id " << id;
  }
}

}  // namespace
}  // namespace schemble
