// Cross-query task batching (DESIGN.md "Cross-query batching"): the
// BatchLatencyModel arithmetic, the ServerView batch-composition gating,
// and the runtime equivalence contracts — batching off is the pre-batching
// runtime verbatim, and batching on with the batch size forced to 1 serves
// the same results as batching off.

#include <gtest/gtest.h>

#include <memory>

#include "baselines/original_policy.h"
#include "core/policy.h"
#include "models/model_profile.h"
#include "models/task_factory.h"
#include "runtime/concurrent_server.h"
#include "workload/trace.h"
#include "workload/traffic.h"

namespace schemble {
namespace {

TEST(BatchLatencyModelTest, ServiceOfOneEqualsCalibratedLatency) {
  // The integer split (base = latency * frac, marginal = the remainder)
  // must make a batch of one cost exactly the profile latency, for any
  // base fraction — this is what keeps forced-batch-of-1 runs identical
  // to unbatched ones.
  for (SimTime latency : {1, 45, 1000, 45000, 95123}) {
    for (double frac : {0.0, 0.2, 0.35, 0.77, 0.95}) {
      const BatchLatencyModel m =
          BatchLatencyModel::FromLatency(latency, frac, 0.3, 16);
      EXPECT_EQ(m.ServiceUs(1), latency) << "frac=" << frac;
      EXPECT_EQ(m.base_us + m.marginal_us, latency);
    }
  }
}

TEST(BatchLatencyModelTest, ServiceGrowsSubLinearlyAndMonotonically) {
  const BatchLatencyModel m =
      BatchLatencyModel::FromLatency(45000, 0.35, 0.3, 16);
  SimTime prev = m.ServiceUs(1);
  for (int n = 2; n <= m.max_batch; ++n) {
    const SimTime cost = m.ServiceUs(n);
    EXPECT_GE(cost, prev) << "n=" << n;
    EXPECT_LT(cost, n * m.ServiceUs(1)) << "n=" << n;
    prev = cost;
  }
  // The defaults give a full 16-batch for well under a third of the
  // per-task sum — the headroom the throughput claim rests on.
  EXPECT_LT(m.ServiceUs(16) * 3, 16 * m.ServiceUs(1));
}

TEST(BatchLatencyModelTest, BacklogComposesFullBatchesPlusRemainder) {
  const BatchLatencyModel m = BatchLatencyModel::FromLatency(60000, 0.35,
                                                             0.3, 4);
  EXPECT_EQ(m.BacklogUs(0), 0);
  EXPECT_EQ(m.BacklogUs(-3), 0);
  EXPECT_EQ(m.BacklogUs(1), m.ServiceUs(1));
  EXPECT_EQ(m.BacklogUs(4), m.ServiceUs(4));
  EXPECT_EQ(m.BacklogUs(9), 2 * m.ServiceUs(4) + m.ServiceUs(1));
  EXPECT_EQ(m.BacklogUs(11), 2 * m.ServiceUs(4) + m.ServiceUs(3));
}

TEST(BatchLatencyModelTest, FromLatencyClampsDegenerateParameters) {
  // Base fraction caps at 0.95 so the marginal cost never collapses to
  // zero; coalescing clamps into [0, 1]; the cap is at least 1.
  const BatchLatencyModel top = BatchLatencyModel::FromLatency(1000, 2.0,
                                                               5.0, 0);
  EXPECT_EQ(top.base_us, 950);
  EXPECT_EQ(top.marginal_us, 50);
  EXPECT_EQ(top.coalescing, 1.0);
  EXPECT_EQ(top.max_batch, 1);
  const BatchLatencyModel bottom =
      BatchLatencyModel::FromLatency(1000, -1.0, -1.0, -7);
  EXPECT_EQ(bottom.base_us, 0);
  EXPECT_EQ(bottom.marginal_us, 1000);
  EXPECT_EQ(bottom.coalescing, 0.0);
  EXPECT_EQ(bottom.max_batch, 1);
}

TEST(BatchLatencyModelTest, ProfileAccessorUsesProfileCalibration) {
  ModelProfile profile;
  profile.latency_us = 45000;
  profile.batch_base_fraction = 0.5;
  profile.batch_coalescing = 0.25;
  profile.max_batch = 8;
  const BatchLatencyModel m = profile.batch_latency();
  EXPECT_EQ(m.ServiceUs(1), profile.latency_us);
  EXPECT_EQ(m.base_us, 22500);
  EXPECT_EQ(m.coalescing, 0.25);
  EXPECT_EQ(m.max_batch, 8);
}

TEST(ServerViewBatchingTest, PlannedExecTimeGatesOnBatchComposition) {
  ServerView view;
  view.model_exec_time = {60000, 95000};
  view.model_available_at = {0, 0};
  // No batch composition published: planners must see the plain per-task
  // time (this is every non-batching caller, including the discrete-event
  // server).
  EXPECT_FALSE(view.batching());
  EXPECT_EQ(view.PlannedExecTime(0), 60000);
  EXPECT_EQ(view.PlannedExecTime(1), 95000);

  view.model_batch = {BatchLatencyModel::FromLatency(60000, 0.35, 0.3, 16),
                      BatchLatencyModel::FromLatency(95000, 0.35, 0.3, 16)};
  view.model_queued = {0, 10};
  EXPECT_TRUE(view.batching());
  // Empty backlog: a batch of one, the plain per-task time, exactly.
  EXPECT_EQ(view.PlannedExecTime(0), 60000);
  // Deep backlog: the amortized cost of the 11-task batch this task would
  // join — strictly cheaper than the per-task time.
  const SimTime amortized = view.model_batch[1].ServiceUs(11) / 11;
  EXPECT_EQ(view.PlannedExecTime(1), amortized);
  EXPECT_LT(view.PlannedExecTime(1), 95000);
}

class BatchingRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    task_ = std::make_unique<SyntheticTask>(MakeTextMatchingTask(3));
  }

  QueryTrace MakeTrace(double rate, SimTime duration, uint64_t seed = 11) {
    PoissonTraffic traffic(rate);
    ConstantDeadline deadlines(60 * kSecond);
    TraceOptions options;
    options.seed = seed;
    return BuildTrace(*task_, traffic, deadlines, duration, options);
  }

  ServingMetrics Run(const ConcurrentServerOptions& options,
                     const QueryTrace& trace,
                     ConcurrentServer::SchedulerStatsSnapshot* sched) {
    OriginalPolicy policy;
    ConcurrentServer server(*task_, &policy, options);
    const ServingMetrics metrics = server.Run(trace);
    *sched = server.scheduler_stats();
    return metrics;
  }

  ConcurrentServerOptions ForceOptions() {
    ConcurrentServerOptions options;
    options.allow_rejection = false;
    options.speedup = 100.0;
    return options;
  }

  std::unique_ptr<SyntheticTask> task_;
};

TEST_F(BatchingRuntimeTest, OffPathCountersBaselineAtOccupancyOne) {
  const QueryTrace trace = MakeTrace(5.0, 10 * kSecond);
  ConcurrentServer::SchedulerStatsSnapshot sched;
  const ServingMetrics metrics = Run(ForceOptions(), trace, &sched);
  EXPECT_EQ(metrics.processed, trace.size());
  // The counters advance on every execution even with batching off — a
  // batch of one each — so occupancy baselines at exactly 1.0 and every
  // task is accounted for (Original runs all three models per query).
  EXPECT_EQ(sched.batches_executed, sched.tasks_batched);
  EXPECT_EQ(sched.tasks_batched,
            static_cast<int64_t>(trace.size()) * task_->num_models());
  EXPECT_EQ(sched.mean_batch_occupancy(), 1.0);
}

TEST_F(BatchingRuntimeTest, ForcedBatchOfOneServesSameResultsAsUnbatched) {
  const QueryTrace trace = MakeTrace(8.0, 10 * kSecond);

  ConcurrentServerOptions off = ForceOptions();
  ConcurrentServer::SchedulerStatsSnapshot off_sched;
  const ServingMetrics off_metrics = Run(off, trace, &off_sched);

  ConcurrentServerOptions on = ForceOptions();
  on.batching = true;
  on.max_batch = 1;  // batched path, unbatched semantics
  ConcurrentServer::SchedulerStatsSnapshot on_sched;
  const ServingMetrics on_metrics = Run(on, trace, &on_sched);

  // Timing-free outputs must agree exactly: same queries processed, same
  // subsets executed, same aggregated accuracy (latencies are wall-clock
  // and may differ by scheduling slop).
  EXPECT_EQ(on_metrics.processed, off_metrics.processed);
  EXPECT_EQ(on_metrics.missed, off_metrics.missed);
  EXPECT_EQ(on_metrics.subset_size_counts, off_metrics.subset_size_counts);
  EXPECT_DOUBLE_EQ(on_metrics.accuracy_sum, off_metrics.accuracy_sum);
  EXPECT_EQ(on_sched.tasks_batched, off_sched.tasks_batched);
  EXPECT_EQ(on_sched.batches_executed, on_sched.tasks_batched);
  EXPECT_EQ(on_sched.mean_batch_occupancy(), 1.0);
}

TEST_F(BatchingRuntimeTest, CoalescesUnderBacklogAndConserves) {
  // 30 qps of three-model fan-out against one executor per model is far
  // over capacity: queues run deep and workers must coalesce.
  const QueryTrace trace = MakeTrace(30.0, 8 * kSecond);
  ConcurrentServerOptions options = ForceOptions();
  options.batching = true;
  ConcurrentServer::SchedulerStatsSnapshot sched;
  const ServingMetrics metrics = Run(options, trace, &sched);
  EXPECT_EQ(metrics.processed, trace.size());
  EXPECT_EQ(sched.tasks_batched,
            static_cast<int64_t>(trace.size()) * task_->num_models());
  EXPECT_GT(sched.tasks_batched, sched.batches_executed);
  EXPECT_GT(sched.mean_batch_occupancy(), 1.0);
}

}  // namespace
}  // namespace schemble
