#include "runtime/mpmc_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <span>
#include <thread>
#include <vector>

namespace schemble {
namespace {

TEST(MpmcQueueTest, FifoSingleThread) {
  MpmcQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  EXPECT_TRUE(queue.Push(3));
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), 3);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(MpmcQueueTest, TryOpsRespectBounds) {
  MpmcQueue<int> queue(2);
  EXPECT_EQ(queue.TryPop(), std::nullopt);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full
  EXPECT_EQ(queue.TryPop(), 1);
  EXPECT_TRUE(queue.TryPush(3));
  EXPECT_EQ(queue.TryPop(), 2);
  EXPECT_EQ(queue.TryPop(), 3);
}

TEST(MpmcQueueTest, WrapsAroundRing) {
  MpmcQueue<int> queue(3);
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(queue.Push(round));
    EXPECT_TRUE(queue.Push(round + 100));
    EXPECT_EQ(queue.Pop(), round);
    EXPECT_EQ(queue.Pop(), round + 100);
  }
}

TEST(MpmcQueueTest, CloseWakesBlockedConsumer) {
  MpmcQueue<int> queue(1);
  std::thread consumer([&] { EXPECT_EQ(queue.Pop(), std::nullopt); });
  queue.Close();
  consumer.join();
  EXPECT_FALSE(queue.Push(7));
  EXPECT_FALSE(queue.TryPush(7));
}

TEST(MpmcQueueTest, CloseDrainsRemainingItems) {
  MpmcQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  queue.Close();
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), std::nullopt);
}

TEST(MpmcQueueTest, BlockedProducerResumesAfterPop) {
  MpmcQueue<int> queue(1);
  EXPECT_TRUE(queue.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2));  // blocks until the consumer pops
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(queue.Pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.Pop(), 2);
}

TEST(MpmcQueueTest, PushAllDeliversInOrder) {
  MpmcQueue<int> queue(8);
  const std::vector<int> items = {1, 2, 3, 4, 5};
  EXPECT_EQ(queue.PushAll(items), items.size());
  EXPECT_EQ(queue.size(), items.size());
  for (int expected : items) {
    EXPECT_EQ(queue.Pop(), expected);
  }
}

TEST(MpmcQueueTest, PushAllLargerThanFreeSpaceCompletesInChunks) {
  // Capacity 3, batch 8: the producer must block mid-batch until a
  // consumer frees slots, then finish the remaining chunks.
  MpmcQueue<int> queue(3);
  std::vector<int> items(8);
  std::iota(items.begin(), items.end(), 0);
  std::atomic<size_t> pushed{0};
  std::thread producer([&] { pushed.store(queue.PushAll(items)); });
  for (int expected = 0; expected < 8; ++expected) {
    EXPECT_EQ(queue.Pop(), expected);
  }
  producer.join();
  EXPECT_EQ(pushed.load(), items.size());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(MpmcQueueTest, PushAllPartialOnClose) {
  // Fill the ring, start a batch that must block, then close: the batch
  // reports only the items that made it in (here the first chunk of 2).
  MpmcQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(100));
  EXPECT_TRUE(queue.Push(101));
  std::vector<int> items = {0, 1, 2, 3, 4, 5};
  std::atomic<size_t> pushed{items.size() + 1};
  std::thread producer([&] { pushed.store(queue.PushAll(items)); });
  // Wait until the producer's first chunk lands and it blocks on a full
  // ring, so the partial count is deterministic.
  while (queue.size() < 4u) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  queue.Close();
  producer.join();
  EXPECT_EQ(pushed.load(), 2u);
  // Close drains what was accepted, in order.
  EXPECT_EQ(queue.Pop(), 100);
  EXPECT_EQ(queue.Pop(), 101);
  EXPECT_EQ(queue.Pop(), 0);
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), std::nullopt);
}

TEST(MpmcQueueTest, PushAllOnClosedQueuePushesNothing) {
  MpmcQueue<int> queue(4);
  queue.Close();
  const std::vector<int> items = {1, 2, 3};
  EXPECT_EQ(queue.PushAll(items), 0u);
  EXPECT_EQ(queue.Pop(), std::nullopt);
}

TEST(MpmcQueueTest, PopNDrainsUpToLimit) {
  MpmcQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.Push(i));
  std::vector<int> out;
  EXPECT_EQ(queue.PopN(&out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  // Appends rather than overwrites, and takes whatever is left.
  EXPECT_EQ(queue.PopN(&out, 16), 2u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(MpmcQueueTest, PopNBlocksUntilItemOrClose) {
  MpmcQueue<int> queue(4);
  std::vector<int> out;
  std::thread consumer([&] {
    std::vector<int> batch;
    EXPECT_GE(queue.PopN(&batch, 4), 1u);  // blocks until the push below
    EXPECT_EQ(batch.front(), 42);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(queue.Push(42));
  consumer.join();
  // Closed and drained: PopN returns 0, the consumer shutdown signal.
  queue.Close();
  EXPECT_EQ(queue.PopN(&out, 4), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(MpmcQueueTest, TryPopNNonBlocking) {
  MpmcQueue<int> queue(4);
  std::vector<int> out;
  EXPECT_EQ(queue.TryPopN(&out, 4), 0u);
  EXPECT_TRUE(queue.Push(7));
  EXPECT_TRUE(queue.Push(8));
  EXPECT_EQ(queue.TryPopN(&out, 4), 2u);
  EXPECT_EQ(out, (std::vector<int>{7, 8}));
}

TEST(MpmcQueueTest, PushAllUnblocksBlockedBatchConsumers) {
  // A batched producer must wake every waiting consumer, not just one.
  MpmcQueue<int> queue(8);
  std::atomic<int64_t> consumed{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      std::vector<int> batch;
      while (queue.PopN(&batch, 2) > 0) {
        consumed.fetch_add(static_cast<int64_t>(batch.size()));
        batch.clear();
      }
    });
  }
  std::vector<int> items(30);
  std::iota(items.begin(), items.end(), 0);
  EXPECT_EQ(queue.PushAll(items), items.size());
  while (consumed.load() < 30) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  queue.Close();
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(consumed.load(), 30);
}

TEST(MpmcQueueTest, StealNFromEmptyQueueReturnsZero) {
  MpmcQueue<int> queue(4);
  std::vector<int> out;
  EXPECT_EQ(queue.StealN(&out, 8), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(MpmcQueueTest, StealNTakesFifoPrefixAndLeavesRemainder) {
  MpmcQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.Push(i));
  std::vector<int> out{-1};  // StealN appends; existing content survives
  EXPECT_EQ(queue.StealN(&out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{-1, 0, 1, 2}));
  // The victim still pops the untouched tail in order.
  EXPECT_EQ(queue.Pop(), 3);
  EXPECT_EQ(queue.Pop(), 4);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(MpmcQueueTest, StealNDrainsAfterClose) {
  // A thief must be able to rescue queries stranded in a closed inbox:
  // Close() stops pushes, not steals.
  MpmcQueue<int> queue(4);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  queue.Close();
  std::vector<int> out;
  EXPECT_EQ(queue.StealN(&out, 8), 2u);  // partial: fewer than asked
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
  EXPECT_EQ(queue.StealN(&out, 8), 0u);  // closed and drained
}

TEST(MpmcQueueTest, StealNUnblocksFullProducer) {
  MpmcQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(queue.Push(2));  // blocks: queue full
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(pushed.load());
  std::vector<int> out;
  while (queue.StealN(&out, 1) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(out, (std::vector<int>{1}));
  EXPECT_EQ(queue.Pop(), 2);
}

TEST(MpmcQueueTest, StealNConservesItemsUnderContention) {
  // Batched producers race a popping consumer and a stealing thief; every
  // item must come out exactly once across the two drains.
  constexpr int kProducers = 2;
  constexpr int kPerProducer = 3000;
  MpmcQueue<int> queue(16);
  std::atomic<int64_t> popped_sum{0};
  std::atomic<int64_t> popped_count{0};
  int64_t stolen_sum = 0;
  int64_t stolen_count = 0;

  std::thread consumer([&] {
    std::vector<int> batch;
    while (queue.PopN(&batch, 4) > 0) {
      for (int v : batch) popped_sum.fetch_add(v);
      popped_count.fetch_add(static_cast<int64_t>(batch.size()));
      batch.clear();
    }
  });
  std::thread thief([&] {
    // Steal (including the post-Close drain race) until the queue is
    // closed AND a final steal comes back empty.
    std::vector<int> loot;
    while (true) {
      loot.clear();
      const size_t got = queue.StealN(&loot, 3);
      for (int v : loot) stolen_sum += v;
      stolen_count += static_cast<int64_t>(got);
      if (got == 0 && queue.closed()) break;
      if (got == 0) std::this_thread::yield();
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<int> items(kPerProducer);
      std::iota(items.begin(), items.end(), p * kPerProducer);
      size_t sent = 0;
      while (sent < items.size()) {
        sent += queue.PushAll(
            std::span<const int>(items.data() + sent,
                                 std::min<size_t>(64, items.size() - sent)));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  queue.Close();
  thief.join();
  consumer.join();

  const int64_t n = kProducers * kPerProducer;
  EXPECT_EQ(popped_count.load() + stolen_count, n);
  EXPECT_EQ(popped_sum.load() + stolen_sum, n * (n - 1) / 2);
}

TEST(MpmcQueueTest, ManyProducersManyConsumersPreserveItems) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  // Tiny capacity forces constant blocking on both sides.
  MpmcQueue<int> queue(8);
  std::atomic<int64_t> consumed_sum{0};
  std::atomic<int64_t> consumed_count{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = queue.Pop()) {
        consumed_sum.fetch_add(*item);
        consumed_count.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  queue.Close();
  for (std::thread& t : consumers) t.join();

  const int64_t n = kProducers * kPerProducer;
  EXPECT_EQ(consumed_count.load(), n);
  EXPECT_EQ(consumed_sum.load(), n * (n - 1) / 2);
}

TEST(MpmcQueueTest, CloseAndDrainTakesEverythingInFifoOrder) {
  MpmcQueue<int> queue(4);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  ASSERT_TRUE(queue.Push(3));
  std::vector<int> out;
  EXPECT_EQ(queue.CloseAndDrain(&out), 3u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.size(), 0u);
  // Closed on both sides: pushes fail, pops report exhaustion.
  EXPECT_FALSE(queue.Push(4));
  EXPECT_EQ(queue.Pop(), std::nullopt);
}

TEST(MpmcQueueTest, CloseAndDrainAppendsAndReportsCount) {
  MpmcQueue<int> queue(4);
  ASSERT_TRUE(queue.Push(7));
  std::vector<int> out{5, 6};  // pre-existing backlog is preserved
  EXPECT_EQ(queue.CloseAndDrain(&out), 1u);
  EXPECT_EQ(out, (std::vector<int>{5, 6, 7}));
  // Idempotent on an already-closed queue: nothing left to take.
  EXPECT_EQ(queue.CloseAndDrain(&out), 0u);
  EXPECT_EQ(out.size(), 3u);
}

TEST(MpmcQueueTest, CloseAndDrainUnblocksFullProducer) {
  // The fail-stop window this primitive exists for: a producer blocked on
  // a full queue must wake, observe closed, and report its item UN-pushed
  // — never slip it into a queue nobody will drain again.
  MpmcQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> rejected{false};
  std::thread producer([&] {
    const bool pushed = queue.Push(2);  // blocks: queue full
    EXPECT_FALSE(pushed);
    rejected.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(rejected.load());
  std::vector<int> out;
  EXPECT_EQ(queue.CloseAndDrain(&out), 1u);
  producer.join();
  EXPECT_TRUE(rejected.load());
  // Item 1 drained, item 2 rejected back to its producer: both accounted
  // for on exactly one side.
  EXPECT_EQ(out, (std::vector<int>{1}));
}

TEST(MpmcQueueTest, CloseAndDrainConservesAgainstBatchedProducers) {
  // Producers PushAll batches while one consumer pops and then fail-stops
  // via CloseAndDrain: pushed items must equal popped + drained (exactly
  // once each), with the un-pushed remainders reported by PushAll.
  constexpr int kProducers = 2;
  constexpr int kPerProducer = 4000;
  MpmcQueue<int> queue(8);
  std::atomic<int64_t> pushed_count{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<int> batch;
      for (int i = 0; i < kPerProducer; ++i) {
        batch.push_back(p * kPerProducer + i);
      }
      pushed_count.fetch_add(
          static_cast<int64_t>(queue.PushAll(batch)));
    });
  }

  std::vector<int> popped;
  while (popped.size() < 200) {
    if (auto item = queue.TryPop()) popped.push_back(*item);
  }
  std::vector<int> drained;
  queue.CloseAndDrain(&drained);
  for (std::thread& t : producers) t.join();
  // A producer that raced the close may have pushed a chunk the consumer
  // never saw; drain the leftovers like RequeueTasks' caller would.
  // (CloseAndDrain is atomic, so nothing can arrive after it returns.)
  EXPECT_EQ(queue.size(), 0u);

  EXPECT_EQ(static_cast<int64_t>(popped.size() + drained.size()),
            pushed_count.load());
  std::vector<int> all = popped;
  all.insert(all.end(), drained.begin(), drained.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::unique(all.begin(), all.end()), all.end())
      << "an item came out twice";
}

}  // namespace
}  // namespace schemble
