#include "runtime/mpmc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace schemble {
namespace {

TEST(MpmcQueueTest, FifoSingleThread) {
  MpmcQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  EXPECT_TRUE(queue.Push(3));
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), 3);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(MpmcQueueTest, TryOpsRespectBounds) {
  MpmcQueue<int> queue(2);
  EXPECT_EQ(queue.TryPop(), std::nullopt);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full
  EXPECT_EQ(queue.TryPop(), 1);
  EXPECT_TRUE(queue.TryPush(3));
  EXPECT_EQ(queue.TryPop(), 2);
  EXPECT_EQ(queue.TryPop(), 3);
}

TEST(MpmcQueueTest, WrapsAroundRing) {
  MpmcQueue<int> queue(3);
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(queue.Push(round));
    EXPECT_TRUE(queue.Push(round + 100));
    EXPECT_EQ(queue.Pop(), round);
    EXPECT_EQ(queue.Pop(), round + 100);
  }
}

TEST(MpmcQueueTest, CloseWakesBlockedConsumer) {
  MpmcQueue<int> queue(1);
  std::thread consumer([&] { EXPECT_EQ(queue.Pop(), std::nullopt); });
  queue.Close();
  consumer.join();
  EXPECT_FALSE(queue.Push(7));
  EXPECT_FALSE(queue.TryPush(7));
}

TEST(MpmcQueueTest, CloseDrainsRemainingItems) {
  MpmcQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  queue.Close();
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), std::nullopt);
}

TEST(MpmcQueueTest, BlockedProducerResumesAfterPop) {
  MpmcQueue<int> queue(1);
  EXPECT_TRUE(queue.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2));  // blocks until the consumer pops
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(queue.Pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.Pop(), 2);
}

TEST(MpmcQueueTest, ManyProducersManyConsumersPreserveItems) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  // Tiny capacity forces constant blocking on both sides.
  MpmcQueue<int> queue(8);
  std::atomic<int64_t> consumed_sum{0};
  std::atomic<int64_t> consumed_count{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = queue.Pop()) {
        consumed_sum.fetch_add(*item);
        consumed_count.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  queue.Close();
  for (std::thread& t : consumers) t.join();

  const int64_t n = kProducers * kPerProducer;
  EXPECT_EQ(consumed_count.load(), n);
  EXPECT_EQ(consumed_sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace schemble
