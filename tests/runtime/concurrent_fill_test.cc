// Concurrency surface of the allocation-free KNN fill path: a single
// const KnnIndex shared by many threads (each with its own Workspace)
// must produce bit-identical fills with no data races, and a
// ConcurrentServer configured with the stacking aggregator must run the
// KNN fill + meta-classifier completion path from its worker/deadline
// threads outside the policy mutex. Part of the `runtime` ctest label so
// the TSan CI job covers it.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/aggregation.h"
#include "core/discrepancy.h"
#include "core/schemble_policy.h"
#include "models/task_factory.h"
#include "nn/knn.h"
#include "runtime/concurrent_server.h"
#include "workload/trace.h"
#include "workload/traffic.h"

namespace schemble {
namespace {

TEST(ConcurrentFillTest, SharedIndexBatchFillFromManyThreadsIsBitIdentical) {
  Rng rng(41);
  std::vector<std::vector<double>> records(600, std::vector<double>(10));
  for (auto& r : records) {
    for (double& v : r) v = rng.Normal();
  }
  auto built = KnnIndex::Build(std::move(records));
  ASSERT_TRUE(built.ok());
  const KnnIndex& index = built.value();
  const std::vector<bool> mask = {true, false, true, true, false,
                                  true, false, true, true, false};
  std::vector<std::vector<double>> points(48, std::vector<double>(10));
  for (auto& p : points) {
    for (double& v : p) v = rng.Normal();
  }

  // Golden single-threaded result.
  KnnIndex::Workspace golden_ws;
  std::vector<std::vector<double>> golden;
  index.FillMissingBatch(points, mask, 12, &golden_ws, &golden);

  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  std::vector<std::vector<std::vector<double>>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // One workspace per thread: the index itself is immutable and
      // shared; all mutable scratch is thread-private.
      KnnIndex::Workspace ws;
      for (int round = 0; round < kRounds; ++round) {
        index.FillMissingBatch(points, mask, 12, &ws, &results[t]);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(results[t], golden) << "thread " << t;
  }
}

TEST(ConcurrentFillTest, ConcurrentServerStackingCompletionRunsOffLock) {
  SyntheticTask task = MakeTextMatchingTask(3);
  const auto history =
      task.GenerateDataset(2000, DifficultyDistribution::UniformFull(), 5);
  auto scorer = DiscrepancyScorer::Fit(task, history);
  ASSERT_TRUE(scorer.ok());
  const DiscrepancyScorer oracle = std::move(scorer).value();
  auto profile =
      AccuracyProfile::Build(task, history, oracle.ScoreAll(history));
  ASSERT_TRUE(profile.ok());
  SchembleConfig config;
  config.score_source = ScoreSource::kOracle;
  SchemblePolicy policy(task, profile.value(), nullptr, &oracle,
                        std::move(config));

  AggregatorConfig agg_config;
  agg_config.kind = AggregationKind::kStacking;
  auto aggregator = Aggregator::Build(task, history, agg_config);
  ASSERT_TRUE(aggregator.ok());

  // Moderate overload with tight deadlines: the deadline and worker
  // threads both finalize queries, most with partial subsets, so the
  // stacking aggregator's KNN fill runs concurrently from several
  // threads. RecordFinalized DCHECKs that it never holds the policy
  // mutex, making the off-lock claim executable here.
  ConcurrentServerOptions options;
  options.speedup = 100.0;
  options.aggregator = &aggregator.value();
  ConcurrentServer server(task, &policy, options);
  PoissonTraffic traffic(30.0);
  ConstantDeadline deadlines(200 * kMillisecond);
  TraceOptions trace_options;
  trace_options.seed = 17;
  const QueryTrace trace =
      BuildTrace(task, traffic, deadlines, 15 * kSecond, trace_options);
  const ServingMetrics metrics = server.Run(trace);

  EXPECT_EQ(metrics.total, trace.size());
  EXPECT_GT(metrics.processed, 0);
  const auto lock = server.lock_stats();
  EXPECT_GT(lock.acquisitions, 0);
  EXPECT_GE(lock.held_ms, 0.0);
}

}  // namespace
}  // namespace schemble
