#include "runtime/concurrent_server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <numeric>
#include <thread>

#include "baselines/original_policy.h"
#include "baselines/static_policy.h"
#include "core/discrepancy.h"
#include "core/schemble_policy.h"
#include "models/task_factory.h"
#include "stress/host.h"
#include "workload/trace.h"
#include "workload/traffic.h"

// Sanitizer instrumentation slows every thread 2-20x, so wall-clock
// quality numbers (miss rates, latency-dependent accuracy) are
// meaningless there; those assertions are gated on this flag while the
// structural invariants always hold.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define SCHEMBLE_SANITIZED_BUILD 1
#endif
#elif defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define SCHEMBLE_SANITIZED_BUILD 1
#endif

namespace schemble {
namespace {

#ifdef SCHEMBLE_SANITIZED_BUILD
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif

/// Sanity invariants every run must satisfy regardless of thread timing.
void CheckInvariants(const ServingMetrics& metrics, const QueryTrace& trace) {
  EXPECT_EQ(metrics.total, trace.size());
  const int64_t size_count_total =
      std::accumulate(metrics.subset_size_counts.begin(),
                      metrics.subset_size_counts.end(), int64_t{0});
  EXPECT_EQ(size_count_total, metrics.total);
  int64_t seg_arrivals = 0;
  int64_t seg_processed = 0;
  int64_t seg_missed = 0;
  for (const SegmentStats& seg : metrics.segments) {
    seg_arrivals += seg.arrivals;
    seg_processed += seg.processed;
    seg_missed += seg.missed;
  }
  EXPECT_EQ(seg_arrivals, metrics.total);
  EXPECT_EQ(seg_processed, metrics.processed);
  EXPECT_EQ(seg_missed, metrics.missed);
  EXPECT_EQ(metrics.latency_ms.count(),
            static_cast<int64_t>(metrics.processed));
}

class ConcurrentServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    task_ = std::make_unique<SyntheticTask>(MakeTextMatchingTask(3));
  }

  QueryTrace MakeTrace(double rate, SimTime duration, SimTime deadline,
                       uint64_t seed = 11) {
    PoissonTraffic traffic(rate);
    ConstantDeadline deadlines(deadline);
    TraceOptions options;
    options.seed = seed;
    return BuildTrace(*task_, traffic, deadlines, duration, options);
  }

  std::unique_ptr<SyntheticTask> task_;
};

TEST_F(ConcurrentServerTest, LightLoadOriginalServesEverything) {
  OriginalPolicy policy;
  ConcurrentServerOptions options;
  options.speedup = 50.0;
  ConcurrentServer server(*task_, &policy, options);
  // 2 qps against a 50 ms ensemble with roomy 2 s deadlines: the only
  // nondeterminism is OS timer slop, which the deadline dwarfs.
  const QueryTrace trace = MakeTrace(2.0, 20 * kSecond, 2 * kSecond);
  const ServingMetrics metrics = server.Run(trace);
  CheckInvariants(metrics, trace);
  if (!kSanitized) {
    EXPECT_EQ(metrics.missed, 0);
    EXPECT_NEAR(metrics.accuracy(), 1.0, 1e-9);
    // Full ensemble on every query.
    EXPECT_EQ(metrics.subset_size_counts.back(), trace.size());
  }
}

TEST_F(ConcurrentServerTest, ForceModeProcessesEverything) {
  OriginalPolicy policy;
  ConcurrentServerOptions options;
  options.allow_rejection = false;
  options.speedup = 100.0;
  ConcurrentServer server(*task_, &policy, options);
  const QueryTrace trace = MakeTrace(5.0, 10 * kSecond, 10 * kSecond);
  const ServingMetrics metrics = server.Run(trace);
  CheckInvariants(metrics, trace);
  EXPECT_EQ(metrics.processed, trace.size());
  if (!kSanitized) {
    EXPECT_EQ(metrics.missed, 0);
  }
}

TEST_F(ConcurrentServerTest, OverloadDropsQueriesInRejectionMode) {
  OriginalPolicy policy;
  ConcurrentServerOptions options;
  options.speedup = 100.0;
  ConcurrentServer server(*task_, &policy, options);
  // 35 qps >> the ~20 qps bottleneck capacity of the slowest model.
  const QueryTrace trace = MakeTrace(35.0, 20 * kSecond, 100 * kMillisecond);
  const ServingMetrics metrics = server.Run(trace);
  CheckInvariants(metrics, trace);
  EXPECT_GT(metrics.deadline_miss_rate(), 0.1);
  // Whatever completed in full agrees with the ensemble.
  EXPECT_GT(metrics.processed_accuracy(), 0.8);
}

TEST_F(ConcurrentServerTest, ReplicasIncreaseThroughput) {
  // Two servers under identical overload; the one with doubled executors
  // should process (strictly) more queries.
  const QueryTrace trace = MakeTrace(35.0, 20 * kSecond, 200 * kMillisecond);
  OriginalPolicy policy_a;
  ConcurrentServerOptions base;
  base.speedup = 100.0;
  ConcurrentServer narrow(*task_, &policy_a, base);
  const ServingMetrics narrow_metrics = narrow.Run(trace);

  OriginalPolicy policy_b;
  ConcurrentServerOptions wide = base;
  wide.executor_models = {0, 0, 1, 1, 2, 2};
  ConcurrentServer doubled(*task_, &policy_b, wide);
  const ServingMetrics wide_metrics = doubled.Run(trace);

  CheckInvariants(narrow_metrics, trace);
  CheckInvariants(wide_metrics, trace);
  EXPECT_GT(wide_metrics.processed, narrow_metrics.processed);
  EXPECT_LT(wide_metrics.deadline_miss_rate(),
            narrow_metrics.deadline_miss_rate());
}

TEST_F(ConcurrentServerTest, EmptyTraceRunsClean) {
  OriginalPolicy policy;
  ConcurrentServerOptions options;
  options.speedup = 100.0;
  ConcurrentServer server(*task_, &policy, options);
  const QueryTrace trace;  // no queries at all
  const ServingMetrics metrics = server.Run(trace);
  CheckInvariants(metrics, trace);
  EXPECT_EQ(metrics.total, 0);
  EXPECT_EQ(metrics.processed, 0);
  EXPECT_EQ(metrics.missed, 0);
  const ConcurrentServer::SchedulerStatsSnapshot sched =
      server.scheduler_stats();
  EXPECT_EQ(sched.plans, 0);
  EXPECT_EQ(sched.plans_invalidated, 0);
}

TEST_F(ConcurrentServerTest, SingleExecutorStaticSubset) {
  // One executor in the whole deployment: every task funnels through one
  // queue and the batched dispatch path must still place them all.
  StaticDeployment deployment;
  deployment.subset = 0b010;
  deployment.replicas = {0, 1, 0};
  StaticPolicy policy(deployment);
  ConcurrentServerOptions options;
  options.executor_models = {1};
  options.allow_rejection = false;
  options.speedup = 100.0;
  ConcurrentServer server(*task_, &policy, options);
  const QueryTrace trace = MakeTrace(10.0, 10 * kSecond, 10 * kSecond);
  const ServingMetrics metrics = server.Run(trace);
  CheckInvariants(metrics, trace);
  EXPECT_EQ(metrics.processed, trace.size());
  // Every query ran exactly the single-model subset.
  ASSERT_GE(metrics.subset_size_counts.size(), 2u);
  EXPECT_EQ(metrics.subset_size_counts[1], trace.size());
}

TEST_F(ConcurrentServerTest, DeadlineStormRejectsEverything) {
  // Deadlines far below any model's service time: OriginalPolicy rejects
  // every arrival outright, so the whole trace resolves through the
  // batched admission path without a single dispatch or planning round.
  OriginalPolicy policy;
  ConcurrentServerOptions options;
  options.speedup = 100.0;
  ConcurrentServer server(*task_, &policy, options);
  const QueryTrace trace = MakeTrace(50.0, 10 * kSecond, 1 * kMillisecond);
  ASSERT_GT(trace.size(), 0);
  const ServingMetrics metrics = server.Run(trace);
  CheckInvariants(metrics, trace);
  EXPECT_EQ(metrics.processed, 0);
  EXPECT_EQ(metrics.missed, trace.size());
  EXPECT_EQ(server.scheduler_stats().plans, 0);
}

/// Off-lock planner that buffers everything and then plans so slowly that
/// deadlines finalize the snapshotted queries mid-plan: the runtime's
/// generation validation must drop those stale entries at commit time.
class SlowPlanPolicy : public ServingPolicy {
 public:
  std::string name() const override { return "slow-plan"; }

  ArrivalDecision OnArrival(const TracedQuery& /*query*/,
                            const ServerView& /*view*/) override {
    return ArrivalDecision::Buffer();
  }

  bool SupportsOffLockPlanning() const override { return true; }

  std::unique_ptr<PolicyPlanState> CreatePlanState() const override {
    return std::make_unique<PolicyPlanState>();
  }

  void PlanOnView(const ServerView& /*view*/,
                  PlanWorkspace* ws) const override {
    ws->output.assignments.clear();
    ws->output.overhead_us = 0;
    // Plan "work" long enough (real time) that, at the test's speedup,
    // whole deadline windows elapse while the policy mutex is free and
    // the deadline thread finalizes snapshotted queries under it.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    for (const SnapshotQuery& snap : ws->buffer) {
      ws->output.assignments.push_back({snap.traced->query.id, SubsetMask{1}});
    }
  }
};

TEST_F(ConcurrentServerTest, PlanInvalidationRaceIsDetected) {
  SlowPlanPolicy policy;
  ConcurrentServerOptions options;
  options.speedup = 200.0;
  ConcurrentServer server(*task_, &policy, options);
  // 50 ms virtual deadlines are 0.25 ms real: every 5 ms planning nap
  // outlives the deadlines of everything it snapshotted.
  const QueryTrace trace = MakeTrace(100.0, 5 * kSecond, 50 * kMillisecond);
  ASSERT_GT(trace.size(), 0);
  const ServingMetrics metrics = server.Run(trace);
  CheckInvariants(metrics, trace);
  const ConcurrentServer::SchedulerStatsSnapshot sched =
      server.scheduler_stats();
  EXPECT_GT(sched.plans, 0);
  // The race this test exists for: at least one plan entry must have gone
  // stale between snapshot and commit and been dropped by generation
  // validation (with these timings it is typically hundreds).
  EXPECT_GE(sched.plans_invalidated, 1);
  // Every query still resolves exactly once despite the churn.
  EXPECT_EQ(metrics.total, trace.size());
}

class ConcurrentSchembleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    task_ = std::make_unique<SyntheticTask>(MakeTextMatchingTask(3));
    history_ = task_->GenerateDataset(
        2000, DifficultyDistribution::UniformFull(), 5);
    auto scorer = DiscrepancyScorer::Fit(*task_, history_);
    ASSERT_TRUE(scorer.ok());
    scorer_ = std::make_unique<DiscrepancyScorer>(std::move(scorer).value());
    const auto scores = scorer_->ScoreAll(history_);
    auto profile = AccuracyProfile::Build(*task_, history_, scores);
    ASSERT_TRUE(profile.ok());
    profile_ = std::make_unique<AccuracyProfile>(std::move(profile).value());
  }

  SchemblePolicy MakeOraclePolicy(SchembleConfig config = {}) const {
    config.score_source = ScoreSource::kOracle;
    return SchemblePolicy(*task_, *profile_, nullptr, scorer_.get(),
                          std::move(config));
  }

  std::unique_ptr<SyntheticTask> task_;
  std::vector<Query> history_;
  std::unique_ptr<DiscrepancyScorer> scorer_;
  std::unique_ptr<AccuracyProfile> profile_;
};

TEST_F(ConcurrentSchembleTest, BufferedPolicyDrainsThroughScheduler) {
  // "Queries queue up so the scheduler must have run" is a statement
  // about thread interleaving: on a 2-core host the admitter can drain
  // arrivals before the scheduler thread ever wakes, and the test
  // measures the host instead of the code.
  if (const std::string reason = LoadSensitiveSkipReason();
      !reason.empty()) {
    GTEST_SKIP() << reason;
  }
  SchemblePolicy policy = MakeOraclePolicy();
  ConcurrentServerOptions options;
  options.speedup = 100.0;
  ConcurrentServer server(*task_, &policy, options);
  PoissonTraffic traffic(30.0);
  ConstantDeadline deadlines(300 * kMillisecond);
  TraceOptions trace_options;
  trace_options.seed = 13;
  const QueryTrace trace =
      BuildTrace(*task_, traffic, deadlines, 20 * kSecond, trace_options);
  const ServingMetrics metrics = server.Run(trace);
  CheckInvariants(metrics, trace);
  // Under this load queries queue up, so the DP scheduler must have run
  // and the policy should keep most queries within deadline. Schemble
  // supports off-lock planning, so every run goes through the
  // snapshot-plan-commit path and the plan counters advance with it.
  EXPECT_GT(policy.scheduler_runs(), 0);
  const ConcurrentServer::SchedulerStatsSnapshot sched =
      server.scheduler_stats();
  EXPECT_GT(sched.plans, 0);
  EXPECT_GT(sched.plan_commits, 0);
  if (!kSanitized) {
    EXPECT_GT(metrics.accuracy(), 0.5);
    EXPECT_LT(metrics.deadline_miss_rate(), 0.5);
  }
}

/// The TSan target: eight workers over the six-model CIFAR100-style
/// ensemble (extra replicas on the first two models), bursty arrivals,
/// the full Schemble policy with its DP scheduler, rejection mode with
/// tight deadlines — every thread in the runtime (admission, scheduler,
/// deadline, workers) active at once.
TEST_F(ConcurrentSchembleTest, StressManyWorkersBurstyTraffic) {
  SyntheticTask task = MakeCifar100StyleTask();
  const auto history =
      task.GenerateDataset(2000, DifficultyDistribution::UniformFull(), 5);
  auto scorer = DiscrepancyScorer::Fit(task, history);
  ASSERT_TRUE(scorer.ok());
  const DiscrepancyScorer oracle = std::move(scorer).value();
  auto profile = AccuracyProfile::Build(task, history,
                                        oracle.ScoreAll(history));
  ASSERT_TRUE(profile.ok());
  SchembleConfig config;
  config.score_source = ScoreSource::kOracle;
  SchemblePolicy policy(task, profile.value(), nullptr, &oracle,
                        std::move(config));

  ConcurrentServerOptions options;
  options.executor_models = {0, 1, 2, 3, 4, 5, 0, 1};
  options.speedup = 400.0;
  options.queue_capacity = 64;
  ConcurrentServer server(task, &policy, options);

  PoissonTraffic traffic(120.0);
  ConstantDeadline deadlines(250 * kMillisecond);
  TraceOptions trace_options;
  trace_options.seed = 29;
  const QueryTrace trace =
      BuildTrace(task, traffic, deadlines, 25 * kSecond, trace_options);
  ASSERT_GT(trace.size(), 2000);

  const ServingMetrics metrics = server.Run(trace);
  CheckInvariants(metrics, trace);
  EXPECT_GT(metrics.processed, 0);
}

}  // namespace
}  // namespace schemble
