// Fault injection through ConcurrentServerOptions::executor_faults:
// heterogeneous speeds, stragglers and fail-stop executors. These tests
// pin the DETERMINISTIC contracts (validation CHECKs, conservation,
// counter semantics); the randomized exploration of the same surface
// lives in src/stress.

#include <gtest/gtest.h>

#include <memory>

#include "baselines/original_policy.h"
#include "models/task_factory.h"
#include "runtime/concurrent_server.h"
#include "stress/host.h"
#include "workload/trace.h"
#include "workload/traffic.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define SCHEMBLE_SANITIZED_BUILD 1
#endif
#elif defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define SCHEMBLE_SANITIZED_BUILD 1
#endif

namespace schemble {
namespace {

#ifdef SCHEMBLE_SANITIZED_BUILD
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    task_ = std::make_unique<SyntheticTask>(MakeTextMatchingTask(3));
  }

  QueryTrace MakeTrace(double rate, SimTime duration, SimTime deadline,
                       uint64_t seed = 11) {
    PoissonTraffic traffic(rate);
    ConstantDeadline deadlines(deadline);
    TraceOptions options;
    options.seed = seed;
    return BuildTrace(*task_, traffic, deadlines, duration, options);
  }

  // One executor per model unless overridden; force mode so conservation
  // is strict: processed must equal the trace size no matter the faults.
  ConcurrentServerOptions ForceOptions() {
    ConcurrentServerOptions options;
    options.allow_rejection = false;
    options.speedup = 100.0;
    return options;
  }

  std::unique_ptr<SyntheticTask> task_;
};

TEST_F(FaultInjectionTest, FaultVectorSizeMismatchIsRejected) {
  OriginalPolicy policy;
  ConcurrentServerOptions options = ForceOptions();
  // Default fleet is one executor per model (3); one fault entry is
  // ambiguous and must die rather than silently align.
  options.executor_faults.assign(1, ExecutorFault{});
  EXPECT_DEATH(ConcurrentServer(*task_, &policy, options),
               "executor_faults must be empty or match");
}

TEST_F(FaultInjectionTest, NonPositiveSpeedIsRejected) {
  OriginalPolicy policy;
  ConcurrentServerOptions options = ForceOptions();
  options.executor_faults.assign(static_cast<size_t>(task_->num_models()),
                                 ExecutorFault{});
  options.executor_faults[0].speed = 0.0;
  EXPECT_DEATH(ConcurrentServer(*task_, &policy, options), "speed");
}

TEST_F(FaultInjectionTest, StraggleFactorBelowOneIsRejected) {
  OriginalPolicy policy;
  ConcurrentServerOptions options = ForceOptions();
  options.executor_faults.assign(static_cast<size_t>(task_->num_models()),
                                 ExecutorFault{});
  options.executor_faults[0].straggle_after = kSecond;
  options.executor_faults[0].straggle_factor = 0.5;
  EXPECT_DEATH(ConcurrentServer(*task_, &policy, options),
               "straggle_factor");
}

TEST_F(FaultInjectionTest, CleanFaultVectorBehavesLikeNoFaults) {
  OriginalPolicy policy;
  ConcurrentServerOptions options = ForceOptions();
  // Explicit all-default faults: same contract as leaving the vector
  // empty, and none of the fault counters may move.
  options.executor_faults.assign(static_cast<size_t>(task_->num_models()),
                                 ExecutorFault{});
  ConcurrentServer server(*task_, &policy, options);
  const QueryTrace trace = MakeTrace(5.0, 10 * kSecond, 10 * kSecond);
  const ServingMetrics metrics = server.Run(trace);
  EXPECT_EQ(metrics.processed, trace.size());
  const auto sched = server.scheduler_stats();
  EXPECT_EQ(sched.failstops, 0);
  EXPECT_EQ(sched.requeues, 0);
  EXPECT_EQ(sched.stale_tasks_dropped, 0);
}

TEST_F(FaultInjectionTest, SlowReplicasStillConserveInForceMode) {
  OriginalPolicy policy;
  ConcurrentServerOptions options = ForceOptions();
  options.executor_models = {0, 0, 1, 1, 2, 2};
  options.executor_faults.assign(options.executor_models.size(),
                                 ExecutorFault{});
  // One replica of each model runs at quarter speed: placement skews, but
  // every query must still complete exactly once.
  for (size_t e = 0; e < options.executor_faults.size(); e += 2) {
    options.executor_faults[e].speed = 0.25;
  }
  ConcurrentServer server(*task_, &policy, options);
  const QueryTrace trace = MakeTrace(8.0, 10 * kSecond, 60 * kSecond);
  const ServingMetrics metrics = server.Run(trace);
  EXPECT_EQ(metrics.processed, trace.size());
  EXPECT_EQ(server.scheduler_stats().failstops, 0);
}

TEST_F(FaultInjectionTest, StragglerOnsetInflatesLatencyNotConservation) {
  const QueryTrace trace = MakeTrace(5.0, 10 * kSecond, 60 * kSecond);

  OriginalPolicy clean_policy;
  ConcurrentServer clean(*task_, &clean_policy, ForceOptions());
  const ServingMetrics clean_metrics = clean.Run(trace);

  OriginalPolicy slow_policy;
  ConcurrentServerOptions options = ForceOptions();
  options.executor_faults.assign(static_cast<size_t>(task_->num_models()),
                                 ExecutorFault{});
  for (ExecutorFault& fault : options.executor_faults) {
    fault.straggle_after = 2 * kSecond;
    fault.straggle_factor = 4.0;
  }
  ConcurrentServer straggling(*task_, &slow_policy, options);
  const ServingMetrics slow_metrics = straggling.Run(trace);

  // Conservation holds regardless of the 4x mid-trace slowdown.
  EXPECT_EQ(clean_metrics.processed, trace.size());
  EXPECT_EQ(slow_metrics.processed, trace.size());
  // The latency comparison measures virtual service times, but on tiny or
  // sanitized hosts scheduling slop can rival the signal.
  if (!kSanitized && LoadSensitiveSkipReason().empty()) {
    EXPECT_GT(slow_metrics.mean_latency_ms(),
              clean_metrics.mean_latency_ms());
  }
}

TEST_F(FaultInjectionTest, FailStopRequeuesBacklogAndConservesQueries) {
  OriginalPolicy policy;
  ConcurrentServerOptions options = ForceOptions();
  // Two replicas per model so the victim's model keeps a live replica.
  options.executor_models = {0, 0, 1, 1, 2, 2};
  options.executor_faults.assign(options.executor_models.size(),
                                 ExecutorFault{});
  options.executor_faults[0].fail_at = 4 * kSecond;
  ConcurrentServer server(*task_, &policy, options);

  const QueryTrace trace = MakeTrace(10.0, 10 * kSecond, 60 * kSecond);
  const ServingMetrics metrics = server.Run(trace);

  // The core conservation proof: the dead executor's in-flight and queued
  // tasks flowed back through the domain inbox and completed elsewhere.
  EXPECT_EQ(metrics.processed, trace.size());
  EXPECT_EQ(metrics.missed + metrics.processed,
            static_cast<int64_t>(trace.size()));
  const auto sched = server.scheduler_stats();
  // Original fans every query to every model, so the victim sees a steady
  // task stream past fail_at and deterministically dies exactly once,
  // with at least the triggering task in its backlog.
  EXPECT_EQ(sched.failstops, 1);
  EXPECT_GE(sched.requeues, 1);
  EXPECT_GE(sched.stale_tasks_dropped, 0);
}

TEST_F(FaultInjectionTest, BatchedFailStopRequeuesEveryTaskExactlyOnce) {
  OriginalPolicy policy;
  ConcurrentServerOptions options = ForceOptions();
  // Two replicas per model, batching on: the victim's queue holds whole
  // coalesced batches when it dies, and every batched task must flow back
  // through the generation-stamped re-queue path — completed exactly once,
  // never double-counted (a duplicate finalize is a CHECK failure inside
  // the server, so conservation here proves exactly-once).
  options.executor_models = {0, 0, 1, 1, 2, 2};
  options.batching = true;
  options.executor_faults.assign(options.executor_models.size(),
                                 ExecutorFault{});
  options.executor_faults[0].fail_at = 4 * kSecond;
  ConcurrentServer server(*task_, &policy, options);

  // 3x the FailStopRequeues rate so executor queues run deep enough that
  // the workers genuinely coalesce (occupancy > 1) before the failure.
  const QueryTrace trace = MakeTrace(30.0, 10 * kSecond, 60 * kSecond);
  const ServingMetrics metrics = server.Run(trace);

  EXPECT_EQ(metrics.processed, trace.size());
  EXPECT_EQ(metrics.missed + metrics.processed,
            static_cast<int64_t>(trace.size()));
  const auto sched = server.scheduler_stats();
  EXPECT_EQ(sched.failstops, 1);
  EXPECT_GE(sched.requeues, 1);
  // The batch counters advance on the batched path too, and under this
  // overload at least one execution carried more than one task.
  EXPECT_GE(sched.batches_executed, 1);
  EXPECT_GT(sched.tasks_batched, sched.batches_executed);
}

TEST_F(FaultInjectionTest, FailStopWithoutLiveReplicaDies) {
  OriginalPolicy policy;
  ConcurrentServerOptions options = ForceOptions();
  // Single replica per model: killing executor 0 leaves model 0 with no
  // live replica, which dispatch must CHECK rather than hang.
  options.executor_faults.assign(static_cast<size_t>(task_->num_models()),
                                 ExecutorFault{});
  options.executor_faults[0].fail_at = 2 * kSecond;
  const QueryTrace trace = MakeTrace(10.0, 10 * kSecond, 60 * kSecond);
  EXPECT_DEATH(
      {
        ConcurrentServer server(*task_, &policy, options);
        server.Run(trace);
      },
      "no live executor for model");
}

}  // namespace
}  // namespace schemble
