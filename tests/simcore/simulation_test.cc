#include "simcore/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace schemble {
namespace {

TEST(SimTimeTest, Conversions) {
  EXPECT_EQ(MillisToSimTime(1.5), 1500);
  EXPECT_DOUBLE_EQ(SimTimeToMillis(2500), 2.5);
  EXPECT_DOUBLE_EQ(SimTimeToSeconds(1500000), 1.5);
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
}

TEST(SimulationTest, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
  EXPECT_EQ(sim.executed_events(), 3);
}

TEST(SimulationTest, SameTimeEventsRunFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(100, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, EventsCanScheduleMoreEvents) {
  Simulation sim;
  std::vector<SimTime> times;
  sim.ScheduleAt(10, [&] {
    times.push_back(sim.now());
    sim.ScheduleAfter(5, [&] { times.push_back(sim.now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(SimulationTest, ScheduleAtCurrentTimeRunsAfterCurrentEvent) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(10, [&] {
    order.push_back(1);
    sim.ScheduleAfter(0, [&] { order.push_back(2); });
  });
  sim.ScheduleAt(10, [&] { order.push_back(3); });
  sim.Run();
  // Zero-delay event lands after the already-queued same-time event.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(SimulationTest, RunUntilStopsBeforeLaterEvents) {
  Simulation sim;
  int ran = 0;
  sim.ScheduleAt(10, [&] { ++ran; });
  sim.ScheduleAt(100, [&] { ++ran; });
  sim.Run(50);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), 10);
  sim.Run();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.now(), 100);
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  int ran = 0;
  const int64_t id = sim.ScheduleAt(10, [&] { ++ran; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // already cancelled
  sim.Run();
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(sim.executed_events(), 0);
}

TEST(SimulationTest, CancelledEventDoesNotAdvanceClock) {
  Simulation sim;
  const int64_t id = sim.ScheduleAt(10, [] {});
  sim.ScheduleAt(20, [] {});
  sim.Cancel(id);
  sim.Run();
  EXPECT_EQ(sim.now(), 20);
}

TEST(SimulationTest, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.Step());
  sim.ScheduleAt(5, [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(SimulationTest, PendingEventCountExcludesCancelled) {
  Simulation sim;
  const int64_t a = sim.ScheduleAt(10, [] {});
  sim.ScheduleAt(20, [] {});
  EXPECT_EQ(sim.pending_events(), 2);
  sim.Cancel(a);
  EXPECT_EQ(sim.pending_events(), 1);
  (void)a;
}

TEST(SimulationTest, LongChainTerminates) {
  Simulation sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10000) sim.ScheduleAfter(1, tick);
  };
  sim.ScheduleAt(0, tick);
  sim.Run();
  EXPECT_EQ(count, 10000);
  EXPECT_EQ(sim.now(), 9999);
}

}  // namespace
}  // namespace schemble
