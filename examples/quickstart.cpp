// Quickstart: serve a deep text-matching ensemble under deadline pressure
// with Schemble and compare it against the original fan-out pipeline.
//
//   $ ./quickstart
//
// Walks through the full public API: build a task, train the offline
// pipeline (calibration + discrepancy scoring + accuracy profiling +
// predictor), generate a query trace, and run the serving simulation.

#include <cstdio>

#include "baselines/original_policy.h"
#include "common/table.h"
#include "models/task_factory.h"
#include "serving/pipeline.h"
#include "serving/server.h"
#include "workload/trace.h"
#include "workload/traffic.h"

using namespace schemble;

int main() {
  // 1. The application: a BiLSTM + RoBERTa + BERT text-matching ensemble.
  SyntheticTask task = MakeTextMatchingTask();
  std::printf("Ensemble: ");
  for (int k = 0; k < task.num_models(); ++k) {
    std::printf("%s(%.0fms) ", task.profile(k).name.c_str(),
                SimTimeToMillis(task.profile(k).latency_us));
  }
  std::printf("\n");

  // 2. Offline phase: historical data -> temperature scaling, discrepancy
  //    scores, accuracy profile, and the difficulty-prediction network.
  PipelineOptions pipeline_options;
  pipeline_options.history_size = 3000;
  pipeline_options.predictor.trainer.epochs = 15;
  auto pipeline = SchemblePipeline::Build(task, pipeline_options);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }
  std::printf("Trained predictor: %zu parameters, %.2f MB\n",
              pipeline.value()->predictor().ParameterCount(),
              pipeline.value()->predictor().MemoryMb());

  // 3. Online phase: bursty Poisson traffic with 100 ms deadlines, well
  //    above the slowest model but far beyond the fan-out capacity.
  PoissonTraffic traffic(/*rate_per_second=*/35.0);
  ConstantDeadline deadlines(100 * kMillisecond);
  TraceOptions trace_options;
  trace_options.seed = 7;
  const QueryTrace trace =
      BuildTrace(task, traffic, deadlines, 60 * kSecond, trace_options);
  std::printf("Trace: %lld queries over %.0f s\n",
              static_cast<long long>(trace.size()),
              SimTimeToSeconds(trace.duration()));

  // 4. Serve with the original pipeline and with Schemble.
  TextTable table({"Policy", "Accuracy", "DMR", "Mean latency (ms)"});
  {
    OriginalPolicy original;
    const ServingMetrics metrics =
        EnsembleServer(task, &original, ServerOptions{}).Run(trace);
    table.AddRow({original.name(), TextTable::Num(metrics.accuracy() * 100, 1),
                  TextTable::Num(metrics.deadline_miss_rate() * 100, 1),
                  TextTable::Num(metrics.mean_latency_ms(), 1)});
  }
  {
    auto schemble = pipeline.value()->MakeSchemble(SchembleConfig{});
    const ServingMetrics metrics =
        EnsembleServer(task, schemble.get(), ServerOptions{}).Run(trace);
    table.AddRow({schemble->name(), TextTable::Num(metrics.accuracy() * 100, 1),
                  TextTable::Num(metrics.deadline_miss_rate() * 100, 1),
                  TextTable::Num(metrics.mean_latency_ms(), 1)});
  }
  table.Print();
  return 0;
}
