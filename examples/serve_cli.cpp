// Command-line experiment driver: pick a task, a policy, a traffic level
// and a deadline, and get the serving metrics — the quickest way to poke at
// the system without writing code.
//
//   $ ./serve_cli --task=tm --policy=schemble --rate=35 --deadline-ms=100
//   $ ./serve_cli --task=vc --policy=original --rate=30 --duration-s=120
//   $ ./serve_cli --help

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "baselines/des_policy.h"
#include "baselines/gating_policy.h"
#include "baselines/original_policy.h"
#include "common/table.h"
#include "models/task_factory.h"
#include "serving/pipeline.h"
#include "serving/server.h"
#include "workload/trace.h"
#include "workload/traffic.h"

using namespace schemble;

namespace {

struct CliOptions {
  std::string task = "tm";
  std::string policy = "schemble";
  double rate = 35.0;
  double deadline_ms = 100.0;
  double duration_s = 60.0;
  uint64_t seed = 42;
  bool force = false;  // force-processing mode (no rejection)
};

void PrintUsage() {
  std::printf(
      "serve_cli: run one serving experiment\n"
      "  --task=tm|vc|ir          application (default tm)\n"
      "  --policy=NAME            original|des|gating|schemble|schemble-ea|\n"
      "                           schemble-t|schemble-oracle (default schemble)\n"
      "  --rate=QPS               Poisson arrival rate (default 35)\n"
      "  --deadline-ms=MS         relative deadline (default 100)\n"
      "  --duration-s=S           trace duration (default 60)\n"
      "  --seed=N                 trace seed (default 42)\n"
      "  --force                  force-processing mode (Exp-2 style)\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--help") == 0) {
      PrintUsage();
      return 0;
    } else if (std::strcmp(argv[i], "--force") == 0) {
      options.force = true;
    } else if (ParseFlag(argv[i], "--task", &value)) {
      options.task = value;
    } else if (ParseFlag(argv[i], "--policy", &value)) {
      options.policy = value;
    } else if (ParseFlag(argv[i], "--rate", &value)) {
      options.rate = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--deadline-ms", &value)) {
      options.deadline_ms = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--duration-s", &value)) {
      options.duration_s = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n\n", argv[i]);
      PrintUsage();
      return 2;
    }
  }

  SyntheticTask task = options.task == "vc"   ? MakeVehicleCountingTask()
                       : options.task == "ir" ? MakeImageRetrievalTask()
                                              : MakeTextMatchingTask();
  std::printf("Task %s: ", options.task.c_str());
  for (int k = 0; k < task.num_models(); ++k) {
    std::printf("%s(%.0fms) ", task.profile(k).name.c_str(),
                SimTimeToMillis(task.profile(k).latency_us));
  }
  std::printf("\n");

  PipelineOptions pipeline_options;
  pipeline_options.history_size = 3000;
  pipeline_options.with_ensemble_agreement = true;
  pipeline_options.predictor.trainer.epochs = 15;
  auto pipeline = SchemblePipeline::Build(task, pipeline_options);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }

  std::unique_ptr<ServingPolicy> policy;
  if (options.policy == "original") {
    policy = std::make_unique<OriginalPolicy>();
  } else if (options.policy == "des") {
    auto des = DesPolicy::Train(task, pipeline.value()->history(),
                                DesConfig{});
    if (!des.ok()) {
      std::fprintf(stderr, "des: %s\n", des.status().ToString().c_str());
      return 1;
    }
    policy = std::make_unique<DesPolicy>(std::move(des).value());
  } else if (options.policy == "gating") {
    GatingConfig config;
    config.trainer.epochs = 15;
    auto gating = GatingPolicy::Train(task, pipeline.value()->history(),
                                      config);
    if (!gating.ok()) {
      std::fprintf(stderr, "gating: %s\n",
                   gating.status().ToString().c_str());
      return 1;
    }
    policy = std::make_unique<GatingPolicy>(std::move(gating).value());
  } else if (options.policy == "schemble") {
    policy = pipeline.value()->MakeSchemble(SchembleConfig{});
  } else if (options.policy == "schemble-ea") {
    policy = pipeline.value()->MakeSchembleEa(SchembleConfig{});
  } else if (options.policy == "schemble-t") {
    policy = pipeline.value()->MakeSchembleT(SchembleConfig{});
  } else if (options.policy == "schemble-oracle") {
    policy = pipeline.value()->MakeSchembleOracle(SchembleConfig{});
  } else {
    std::fprintf(stderr, "unknown policy: %s\n\n", options.policy.c_str());
    PrintUsage();
    return 2;
  }

  PoissonTraffic traffic(options.rate);
  ConstantDeadline deadlines(MillisToSimTime(options.deadline_ms));
  TraceOptions trace_options;
  trace_options.seed = options.seed;
  const QueryTrace trace = BuildTrace(
      task, traffic, deadlines,
      static_cast<SimTime>(options.duration_s * kSecond), trace_options);

  ServerOptions server_options;
  server_options.allow_rejection = !options.force;
  const ServingMetrics metrics =
      EnsembleServer(task, policy.get(), server_options).Run(trace);

  TextTable table({"Metric", "Value"});
  table.AddRow({"Policy", policy->name()});
  table.AddRow({"Queries", std::to_string(metrics.total)});
  table.AddRow({"Accuracy %", TextTable::Num(metrics.accuracy() * 100, 2)});
  table.AddRow({"Processed accuracy %",
                TextTable::Num(metrics.processed_accuracy() * 100, 2)});
  table.AddRow({"Deadline miss rate %",
                TextTable::Num(metrics.deadline_miss_rate() * 100, 2)});
  table.AddRow({"Mean latency (ms)",
                TextTable::Num(metrics.mean_latency_ms(), 2)});
  table.AddRow({"P95 latency (ms)",
                TextTable::Num(metrics.p95_latency_ms(), 2)});
  table.AddRow({"Max latency (ms)",
                TextTable::Num(metrics.max_latency_ms(), 2)});
  for (size_t s = 0; s < metrics.subset_size_counts.size(); ++s) {
    table.AddRow({"Served with " + std::to_string(s) + " models",
                  std::to_string(metrics.subset_size_counts[s])});
  }
  table.Print();
  return 0;
}
