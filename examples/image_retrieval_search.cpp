// Image-retrieval scenario: a two-model DELG-style ensemble ranking a
// candidate pool; quality is mAP against the full ensemble's ranking, and
// every query carries a constant deadline.
//
//   $ ./image_retrieval_search

#include <cstdio>

#include "baselines/original_policy.h"
#include "common/table.h"
#include "models/task_factory.h"
#include "serving/pipeline.h"
#include "serving/server.h"
#include "workload/trace.h"
#include "workload/traffic.h"

using namespace schemble;

int main() {
  SyntheticTask task = MakeImageRetrievalTask();
  std::printf("Retrieval ensemble: %s + %s over %d candidates\n",
              task.profile(0).name.c_str(), task.profile(1).name.c_str(),
              task.spec().num_candidates);

  PipelineOptions pipeline_options;
  pipeline_options.history_size = 2500;
  pipeline_options.predictor.trainer.epochs = 15;
  auto pipeline = SchemblePipeline::Build(task, pipeline_options);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }

  // The slowest backbone takes 95 ms; deadlines leave some headroom.
  PoissonTraffic traffic(/*rate_per_second=*/14.0);
  ConstantDeadline deadlines(200 * kMillisecond);
  TraceOptions trace_options;
  trace_options.seed = 31;
  const QueryTrace trace =
      BuildTrace(task, traffic, deadlines, 60 * kSecond, trace_options);
  std::printf("Trace: %lld retrieval queries\n",
              static_cast<long long>(trace.size()));

  TextTable table({"Policy", "mAP%", "DMR%", "P95 latency (ms)"});
  auto report = [&](ServingPolicy* policy) {
    const ServingMetrics metrics =
        EnsembleServer(task, policy, ServerOptions{}).Run(trace);
    table.AddRow({policy->name(), TextTable::Num(metrics.accuracy() * 100, 1),
                  TextTable::Num(metrics.deadline_miss_rate() * 100, 1),
                  TextTable::Num(metrics.p95_latency_ms(), 1)});
  };

  OriginalPolicy original;
  report(&original);
  auto schemble = pipeline.value()->MakeSchemble(SchembleConfig{});
  report(schemble.get());
  table.Print();
  return 0;
}
