// Record/replay workflow (the paper records a one-day production trace and
// replays it across every experiment): generate a trace once, persist it to
// CSV, reload it in a fresh process, and confirm two policies replayed on
// the same recorded trace see identical workloads.
//
//   $ ./trace_replay [path.csv]

#include <cstdio>
#include <string>

#include "baselines/original_policy.h"
#include "common/table.h"
#include "models/task_factory.h"
#include "serving/pipeline.h"
#include "serving/server.h"
#include "workload/trace.h"
#include "workload/trace_io.h"
#include "workload/traffic.h"

using namespace schemble;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/schemble_trace.csv";
  SyntheticTask task = MakeTextMatchingTask();

  // 1. Record: one bursty hour of traffic, written to disk.
  {
    DiurnalTraffic traffic = DiurnalTraffic::QaDayShape(45.0, 10 * kSecond);
    ConstantDeadline deadlines(100 * kMillisecond);
    TraceOptions options;
    options.seed = 99;
    const QueryTrace trace = BuildTrace(task, traffic, deadlines,
                                        traffic.total_duration(), options);
    const Status status = SaveTraceCsv(trace, path);
    if (!status.ok()) {
      std::fprintf(stderr, "save: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("Recorded %lld queries to %s\n",
                static_cast<long long>(trace.size()), path.c_str());
  }

  // 2. Replay: reload (payloads regenerate deterministically) and compare
  //    policies on the identical workload.
  auto loaded = LoadTraceCsv(task, path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const QueryTrace& trace = loaded.value();

  PipelineOptions pipeline_options;
  pipeline_options.history_size = 2500;
  pipeline_options.predictor.trainer.epochs = 12;
  auto pipeline = SchemblePipeline::Build(task, pipeline_options);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }

  TextTable table({"Policy", "Accuracy%", "DMR%"});
  {
    OriginalPolicy original;
    const ServingMetrics metrics =
        EnsembleServer(task, &original, ServerOptions{}).Run(trace);
    table.AddRow({original.name(),
                  TextTable::Num(metrics.accuracy() * 100, 1),
                  TextTable::Num(metrics.deadline_miss_rate() * 100, 1)});
  }
  {
    auto schemble = pipeline.value()->MakeSchemble(SchembleConfig{});
    const ServingMetrics metrics =
        EnsembleServer(task, schemble.get(), ServerOptions{}).Run(trace);
    table.AddRow({schemble->name(),
                  TextTable::Num(metrics.accuracy() * 100, 1),
                  TextTable::Num(metrics.deadline_miss_rate() * 100, 1)});
  }
  std::printf("Replayed %lld queries from %s\n",
              static_cast<long long>(trace.size()), path.c_str());
  table.Print();
  return 0;
}
