// Video-analytics scenario (vehicle counting on a UA-DETRAC-style feed):
// three object detectors ensembled by weighted averaging, 24 cameras with
// per-camera deadlines drawn from a uniform distribution, Poisson traffic.
//
//   $ ./video_analytics

#include <cstdio>

#include "baselines/des_policy.h"
#include "baselines/original_policy.h"
#include "common/table.h"
#include "models/task_factory.h"
#include "serving/pipeline.h"
#include "serving/server.h"
#include "workload/trace.h"
#include "workload/traffic.h"

using namespace schemble;

int main() {
  SyntheticTask task = MakeVehicleCountingTask();
  std::printf("Detectors: ");
  for (int k = 0; k < task.num_models(); ++k) {
    std::printf("%s(%.0fms) ", task.profile(k).name.c_str(),
                SimTimeToMillis(task.profile(k).latency_us));
  }
  std::printf("\n");

  PipelineOptions pipeline_options;
  pipeline_options.history_size = 3000;
  pipeline_options.predictor.trainer.epochs = 15;
  auto pipeline = SchemblePipeline::Build(task, pipeline_options);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }

  // 24 cameras; each camera's priority fixes its relative deadline.
  PoissonTraffic traffic(/*rate_per_second=*/34.0);
  PerSourceUniformDeadline deadlines(/*num_sources=*/24,
                                     90 * kMillisecond, 220 * kMillisecond,
                                     /*seed=*/5);
  TraceOptions trace_options;
  trace_options.num_sources = 24;
  trace_options.seed = 9;
  const QueryTrace trace =
      BuildTrace(task, traffic, deadlines, 60 * kSecond, trace_options);
  std::printf("Trace: %lld frames from 24 cameras\n",
              static_cast<long long>(trace.size()));

  TextTable table({"Policy", "Count accuracy%", "DMR%"});
  auto report = [&](ServingPolicy* policy) {
    const ServingMetrics metrics =
        EnsembleServer(task, policy, ServerOptions{}).Run(trace);
    table.AddRow({policy->name(),
                  TextTable::Num(metrics.accuracy() * 100, 1),
                  TextTable::Num(metrics.deadline_miss_rate() * 100, 1)});
  };

  OriginalPolicy original;
  report(&original);
  auto des = DesPolicy::Train(task, pipeline.value()->history(), DesConfig{});
  if (des.ok()) report(&des.value());
  auto schemble = pipeline.value()->MakeSchemble(SchembleConfig{});
  report(schemble.get());
  table.Print();
  return 0;
}
