// Intelligent Q&A scenario (the paper's motivating application): replay a
// compressed one-day trace with a ~30x business-hours burst against the
// text-matching ensemble and watch how Schemble adapts per time segment.
//
//   $ ./intelligent_qa

#include <cstdio>

#include "baselines/original_policy.h"
#include "common/table.h"
#include "models/task_factory.h"
#include "serving/pipeline.h"
#include "serving/server.h"
#include "workload/trace.h"
#include "workload/traffic.h"

using namespace schemble;

int main() {
  SyntheticTask task = MakeTextMatchingTask();

  PipelineOptions pipeline_options;
  pipeline_options.history_size = 3000;
  pipeline_options.predictor.trainer.epochs = 15;
  auto pipeline = SchemblePipeline::Build(task, pipeline_options);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }

  // One "day" compressed to 24 one-minute segments (shape of Fig. 1a).
  DiurnalTraffic traffic = DiurnalTraffic::QaDayShape(/*peak=*/32.0);
  ConstantDeadline deadlines(100 * kMillisecond);
  TraceOptions trace_options;
  trace_options.seed = 21;
  const QueryTrace trace = BuildTrace(task, traffic, deadlines,
                                      traffic.total_duration(), trace_options);
  std::printf("One-day Q&A trace: %lld queries\n",
              static_cast<long long>(trace.size()));

  ServerOptions server_options;
  server_options.segment_duration = traffic.segment_duration();

  OriginalPolicy original;
  const ServingMetrics base =
      EnsembleServer(task, &original, server_options).Run(trace);
  auto schemble = pipeline.value()->MakeSchemble(SchembleConfig{});
  const ServingMetrics ours =
      EnsembleServer(task, schemble.get(), server_options).Run(trace);

  TextTable table({"Hour", "Arrivals", "Original DMR%", "Schemble DMR%",
                   "Original Acc%", "Schemble Acc%"});
  const size_t segments =
      std::min(base.segments.size(), ours.segments.size());
  for (size_t s = 0; s < segments; ++s) {
    table.AddRow({std::to_string(s),
                  std::to_string(base.segments[s].arrivals),
                  TextTable::Num(base.segments[s].deadline_miss_rate() * 100, 1),
                  TextTable::Num(ours.segments[s].deadline_miss_rate() * 100, 1),
                  TextTable::Num(base.segments[s].accuracy() * 100, 1),
                  TextTable::Num(ours.segments[s].accuracy() * 100, 1)});
  }
  table.Print();
  std::printf(
      "\nDay totals: Original acc %.1f%% / DMR %.1f%%  ->  "
      "Schemble acc %.1f%% / DMR %.1f%%\n",
      base.accuracy() * 100, base.deadline_miss_rate() * 100,
      ours.accuracy() * 100, ours.deadline_miss_rate() * 100);
  return 0;
}
