#!/usr/bin/env python3
"""Project lint pass: rules clang-tidy cannot express, plus a clang-tidy
driver when a binary is available.

Rules (see DESIGN.md "Static analysis & lock discipline"):

  naked-mutex           std::mutex / std::condition_variable / std::lock_guard
                        / std::unique_lock / std::scoped_lock are banned
                        outside src/common/thread_annotations.h; use the
                        annotated Mutex / MutexLock / CondVar wrappers so the
                        clang thread-safety analysis sees every lock.

  ts-suppression        SCHEMBLE_NO_THREAD_SAFETY_ANALYSIS (or the raw
                        attribute) must not appear outside
                        thread_annotations.h: the analysis is satisfied, not
                        silenced.

  hot-path              Inside a SCHEMBLE_HOT function body, heap-allocation
                        expressions (new / make_unique / make_shared /
                        malloc) are banned outright, and container-growth
                        calls (push_back / resize / reserve / ...) are only
                        allowed when the function routes growth through the
                        repo's grow-event telemetry (ResizeTracked / GrowTo /
                        an explicit grow_events increment) or the line
                        carries `// hot-ok: <reason>`.

  fp-determinism        src/ is golden-pinned (bit-identical metrics across
                        compilers at -ffp-contract=off), so fused-multiply-
                        add intrinsics, FP_CONTRACT pragmas, fast-math hints
                        and nondeterministic parallel reductions are banned.

  policy-serialization  Inside src/runtime/, calls to the stateful
                        ServingPolicy entry points (->OnArrival / ->OnIdle)
                        must carry a `// serialized(mu_)` marker on the same
                        or the preceding line, documenting that the call is
                        made under the policy mutex. Off-lock runtime code
                        must plan through the const PlanOnView /
                        CreatePlanState path instead; this rule keeps the
                        PR-5 under-lock DP solve from being reintroduced
                        silently.

  domain-crossing       Inside src/runtime/, calls into another scheduler
                        domain's inbox surface (.PushRouted /
                        .TryPushRouted / .TryPushRoutedAll / .StealRouted
                        on an object) must carry a `// crosses(domain)`
                        marker on the same or the preceding line. Domains
                        may interact ONLY through these inbox entry points
                        and published load atomics, never through a peer's
                        mutex; the marker makes every crossing grep-able
                        and forces new cross-domain traffic through an
                        audited surface.

  arrival-pump          Inside src/runtime/, the body of any ArrivalPump*
                        function may only use the domain inbox surface and
                        published atomics: every mutex primitive —
                        MutexLock, Mutex declarations, .Lock()/.Unlock()/
                        .TryLock(), guard .Acquire()/.Release(), CV waits/
                        notifies, or touching a `mu_` member — is an error
                        with NO marker escape. The arrival pipeline's whole
                        point is that ingest never contends on a domain
                        mutex; code that needs one belongs in the domain's
                        admitter, not the pump.

  batch-workspace       Inside src/runtime/, constructing a TaskBatch must
                        carry a `// batch-workspace` marker on the same or
                        the preceding line: worker loops reuse ONE
                        per-worker workspace (reserved to the batch cap,
                        growth routed through grow_events + ScopedGrowGuard)
                        so the coalescing drain never heap-allocates per
                        batch. Pointer/reference uses are free — passing
                        the workspace around is the approved pattern.

  stress-rng            Inside src/stress/ and tests/stress/, rand() /
                        std::random_device / std::mt19937 (and friends) are
                        banned: the stress harness's replay-from-seed
                        guarantee holds only while every random draw flows
                        through the one Lcg whose whole state is the printed
                        seed. Hidden entropy sources would make a nightly
                        failure unreproducible.

  blocking-under-lock   Inside src/, blocking calls — queue operations that
                        can wait (Push / PushAll / Pop / PopN /
                        CloseAndDrain), clock sleeps (SleepUntil /
                        sleep_for / sleep_until) and condition-variable
                        waits on a DIFFERENT mutex — are banned inside a
                        MutexLock scope or a SCHEMBLE_REQUIRES function
                        body unless the line (or the preceding one) carries
                        `// blocking-ok: <reason>`. Waiting on the mutex the
                        scope itself holds is the normal CV pattern and is
                        always allowed; a MutexLock guard's Release() /
                        Acquire() windows suspend the rule. Holding a lock
                        across a blocking call is how lock-order cycles
                        (and priority inversions) are born; the runtime
                        plans off-lock by design.

  relaxed-atomic        Inside src/, std::memory_order_relaxed requires a
                        `// relaxed-ok: <reason>` marker on the same line
                        or above the contiguous block of relaxed lines it
                        covers. Relaxed loads/stores are correct for
                        monotonic telemetry counters and advisory load
                        hints, and subtly wrong nearly everywhere else; the
                        marker records which case the author claims.

  lock-rank             Every Mutex declared inside src/ must place itself
                        in the global rank table: the declaration (or its
                        next line) names a LockRank::k* constant, or
                        carries `// ranked: <where>` when the rank is a
                        constructor parameter (MpmcQueue). The rule also
                        cross-checks the three copies of the rank table —
                        the LockRank enum (src/common/lock_order.h), the
                        acquired_after anchor chain
                        (src/common/thread_annotations.h) and the DESIGN.md
                        table — for identical order, so they cannot drift
                        apart silently.

Exit status is non-zero when any rule fires or clang-tidy (when run)
reports a diagnostic. Run from the repo root, or pass --repo.
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys

# thread_annotations.h implements the annotated primitives over the naked
# ones; lock_order.h implements the lock-order validator, which cannot be
# built on the Mutex it validates.
LINT_EXEMPT = {os.path.join("src", "common", "thread_annotations.h"),
               os.path.join("src", "common", "lock_order.h")}

# Deliberate-violation snippets driven by tests/static/lint_fixtures_test.py,
# which lints each one under its declared `// lint-path:` and asserts the
# declared rules fire. Linted there, never as part of the real tree.
LINT_FIXTURES_DIR = os.path.join("tests", "static", "lint_fixtures")

NAKED_MUTEX_RE = re.compile(
    r"std::(mutex|recursive_mutex|shared_mutex|timed_mutex|"
    r"condition_variable|condition_variable_any|lock_guard|unique_lock|"
    r"scoped_lock)\b")

TS_SUPPRESSION_RE = re.compile(
    r"SCHEMBLE_NO_THREAD_SAFETY_ANALYSIS|no_thread_safety_analysis")

HOT_ALLOC_RE = re.compile(
    r"\bnew\b(?!\s*\()|"  # `new T`; placement new `new (buf)` is alloc-free
    r"\bstd::make_unique\b|\bstd::make_shared\b|"
    r"\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(")

HOT_GROWTH_RE = re.compile(
    r"[.>](push_back|emplace_back|resize|reserve|insert|assign|append|"
    r"emplace)\s*\(")

GROWTH_TRACKED_RE = re.compile(r"grow_events|ResizeTracked|GrowTo")

HOT_OK_RE = re.compile(r"//\s*hot-ok:")

POLICY_STATEFUL_RE = re.compile(r"->\s*(OnArrival|OnIdle)\s*\(")

SERIALIZED_OK_RE = re.compile(r"//\s*serialized\(mu_\)")

# Calls on an object (not declarations/definitions, which use `::` or a
# bare name) into a scheduler domain's cross-domain inbox surface.
DOMAIN_CROSSING_RE = re.compile(
    r"(->|\.)\s*(PushRouted|TryPushRoutedAll|TryPushRouted|StealRouted)"
    r"\s*\(")

CROSSES_OK_RE = re.compile(r"//\s*crosses\(domain\)")

# Signature line of an arrival-pump function (the trace-ingest fast path).
ARRIVAL_PUMP_SIG_RE = re.compile(r"\bArrivalPump\w*\s*\(")

# Mutex primitives an arrival pump must never touch: guard construction,
# Mutex declarations, lock/unlock calls, guard re-lock windows, CV
# wait/notify, or a `mu_` member. Pumps talk to domains exclusively
# through the inbox surface and published atomics.
ARRIVAL_PUMP_MUTEX_RE = re.compile(
    r"\bMutexLock\b|\bMutex\b|\bmu_\b|"
    r"[.>](Lock|TryLock|Unlock|Acquire|Release|Wait|WaitFor|"
    r"NotifyOne|NotifyAll)\s*\(")

# A TaskBatch object being constructed (declaration-with-name or a
# temporary). Pointer/reference parameters (`TaskBatch*`, `TaskBatch&`)
# deliberately do not match: passing the reusable workspace around is the
# approved pattern.
BATCH_CTOR_RE = re.compile(r"\bTaskBatch\s+\w+|\bTaskBatch\s*[({]")

BATCH_OK_RE = re.compile(r"//\s*batch-workspace")

# Entropy sources that would break seed-replayability in the stress
# harness. `\brand\s*\(` catches C rand() without matching srand/strtoull;
# the std:: engines and distributions cover <random>.
STRESS_RNG_RE = re.compile(
    r"(?<![\w:])rand\s*\(|\bsrand\s*\(|"
    r"\bstd::(random_device|mt19937(_64)?|minstd_rand0?|ranlux\w+|"
    r"knuth_b|default_random_engine)\b")

# Calls that can block the calling thread: queue operations that wait for
# space/items, clock sleeps, and CV waits. Try* variants deliberately do
# not match (the [.>] anchor sits right before the name). StealN is
# TryLock-based and never blocks.
BLOCKING_CALL_RE = re.compile(
    r"[.>](PushAll|Push|PopN|Pop|CloseAndDrain|SleepUntil)\s*\(|"
    r"\bsleep_for\s*\(|\bsleep_until\s*\(")

# A CV wait and the mutex expression it waits on (first argument).
CV_WAIT_RE = re.compile(r"[.>](?:WaitFor|Wait)\s*\(\s*&?\s*([A-Za-z_][\w.]*)")

BLOCKING_OK_RE = re.compile(r"//\s*blocking-ok:")

# `MutexLock guard(&expr)` / `MutexLock guard{&expr}`: opens a locked
# region over `expr` until the enclosing brace closes.
MUTEXLOCK_RE = re.compile(r"\bMutexLock\s+(\w+)\s*[({]\s*&\s*([\w.>-]*\w)")

# SCHEMBLE_REQUIRES(mu_) on a function whose body follows inline: the body
# is a locked region over every listed mutex.
REQUIRES_RE = re.compile(r"SCHEMBLE_REQUIRES\s*\(([^)]*)\)")

RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")

RELAXED_OK_RE = re.compile(r"//\s*relaxed-ok:")

# A Mutex being declared (member or local). MutexLock, Mutex:: scope uses,
# and pointer/reference parameters deliberately do not match.
MUTEX_DECL_RE = re.compile(r"\bMutex\s+\w+\s*[;({=]|\bMutex\s+\w+\s+SCHEMBLE")

RANKED_OK_RE = re.compile(r"//\s*ranked:")

LOCK_RANK_USE_RE = re.compile(r"\bLockRank::k\w+")

FP_BANNED = [
    (re.compile(r"\bstd::fmaf?\b|\b__builtin_fmaf?\b"),
     "fused multiply-add breaks the -ffp-contract=off bit-stability pin"),
    (re.compile(r"FP_CONTRACT"),
     "FP_CONTRACT pragma overrides the project-wide -ffp-contract=off"),
    (re.compile(r"ffast-math|funsafe-math"),
     "fast-math flags break bit-identical golden metrics"),
    (re.compile(r"\bstd::reduce\b|\bstd::transform_reduce\b|"
                r"std::execution::par"),
     "unordered reductions are nondeterministic; accumulate left-to-right"),
]


def strip_comments_and_strings(line):
    """Blanks out string/char literals and comments for token scans. Keeps
    the line length stable so column hints survive. Crude (no multi-line
    awareness) but sufficient for this codebase's style."""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            out.append(" " if c != in_str else c)
            if c == in_str:
                in_str = None
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(c)
        elif c == "/" and i + 1 < n and line[i + 1] in "/*":
            break  # rest of line is (or starts) a comment
        else:
            out.append(c)
        i += 1
    return "".join(out)


def find_blocking_under_lock(lines, stripped):
    """Yields (line_number, message) for blocking calls made while a lock
    is statically known to be held: inside a `MutexLock` guard scope
    (minus its Release()/Acquire() windows) or inside the inline body of a
    SCHEMBLE_REQUIRES function. CV waits on a mutex the enclosing region
    itself holds are the normal condition-variable pattern and never
    flagged. Line-based with brace tracking, like the rest of this linter:
    crude but sufficient for the project style."""
    scopes = []  # {kind, var, mutexes, depth, active}
    pending_requires = None  # mutexes awaiting their body's opening brace
    depth = 0
    for i, code in enumerate(stripped):
        raw = lines[i]
        line_no = i + 1

        m = REQUIRES_RE.search(code)
        if m:
            mutexes = [a.strip().lstrip("&!") for a in m.group(1).split(",")]
            pending_requires = [mu for mu in mutexes if mu]

        # Guard declarations open a scope at the depth that encloses them.
        gm = MUTEXLOCK_RE.search(code)
        if gm:
            at = gm.start()
            local = depth + code[:at].count("{") - code[:at].count("}")
            scopes.append({"kind": "guard", "var": gm.group(1),
                           "mutexes": [gm.group(2)], "depth": local,
                           "active": True})

        for scope in scopes:
            if scope["kind"] != "guard":
                continue
            if re.search(rf"\b{re.escape(scope['var'])}\s*\.\s*Release\s*\(",
                         code):
                scope["active"] = False
            if re.search(rf"\b{re.escape(scope['var'])}\s*\.\s*Acquire\s*\(",
                         code):
                scope["active"] = True

        # Flag blocking calls visible in any active region. The guard's own
        # declaration line cannot also be a blocking call site.
        held = [mu for s in scopes if s["active"] for mu in s["mutexes"]]
        if held and BLOCKING_CALL_RE.search(code) is None and \
                CV_WAIT_RE.search(code) is None:
            pass  # fast path: nothing blocking on this line
        elif held:
            prev = lines[i - 1] if i >= 1 else ""
            if not (BLOCKING_OK_RE.search(raw) or BLOCKING_OK_RE.search(prev)):
                cv = CV_WAIT_RE.search(code)
                if cv and cv.group(1) in held:
                    pass  # waiting on the held mutex: the CV pattern
                elif BLOCKING_CALL_RE.search(code) or cv:
                    what = (BLOCKING_CALL_RE.search(code) or cv).group(0)
                    yield line_no, (
                        f"blocking call `{what.strip()}` while holding "
                        f"{', '.join(held)}; blocking under a lock invites "
                        "lock-order cycles — move it off-lock (snapshot/"
                        "plan/commit) or justify with "
                        "`// blocking-ok: <reason>`")

        # Brace accounting closes guard scopes and opens REQUIRES bodies.
        for ch in code:
            if ch == "{":
                depth += 1
                if pending_requires is not None:
                    scopes.append({"kind": "requires", "var": None,
                                   "mutexes": pending_requires,
                                   "depth": depth, "active": True})
                    pending_requires = None
            elif ch == "}":
                depth -= 1
                scopes = [s for s in scopes if s["depth"] <= depth]
            elif ch == ";" and pending_requires is not None:
                pending_requires = None  # declaration only, no inline body


def find_marked_function_bodies(text, marker_re):
    """Yields (start_line, body_lines) for every function whose signature
    line matches `marker_re`. The body is delimited by the first '{' after
    the marker and its brace match (code stripped of comments/strings
    line-by-line); a ';' before any '{' means the match was a declaration
    (or a plain call) with no inline body, which is skipped."""
    lines = text.split("\n")
    stripped = [strip_comments_and_strings(l) for l in lines]
    for idx, raw in enumerate(stripped):
        if not marker_re.search(raw):
            continue
        depth = 0
        body = []
        started = False
        declaration_only = False
        for j in range(idx, len(lines)):
            for ch in stripped[j]:
                if ch == "{":
                    depth += 1
                    started = True
                elif ch == "}":
                    depth -= 1
                elif ch == ";" and not started:
                    declaration_only = True
                    break
            if declaration_only:
                break
            body.append(j)
            if started and depth <= 0:
                break
        if started and not declaration_only:
            yield idx + 1, body


HOT_MARKER_RE = re.compile(r"SCHEMBLE_HOT")


def find_hot_function_bodies(text):
    """Yields (start_line, body_lines) for every SCHEMBLE_HOT function."""
    yield from find_marked_function_bodies(text, HOT_MARKER_RE)


class Linter:
    def __init__(self, repo):
        self.repo = repo
        self.errors = []

    def error(self, path, line, rule, message):
        self.errors.append(f"{path}:{line}: [{rule}] {message}")

    def lint_file(self, rel):
        if rel.startswith(LINT_FIXTURES_DIR + os.sep):
            return
        path = os.path.join(self.repo, rel)
        try:
            with open(path, encoding="utf-8") as f:
                text = f.read()
        except (OSError, UnicodeDecodeError) as e:
            self.error(rel, 0, "io", f"unreadable: {e}")
            return
        lines = text.split("\n")
        exempt = rel in LINT_EXEMPT

        if not exempt:
            for i, raw in enumerate(lines, 1):
                code = strip_comments_and_strings(raw)
                m = NAKED_MUTEX_RE.search(code)
                if m:
                    self.error(rel, i, "naked-mutex",
                               f"use the annotated primitives from "
                               f"common/thread_annotations.h instead of "
                               f"{m.group(0)}")
                if TS_SUPPRESSION_RE.search(code):
                    self.error(rel, i, "ts-suppression",
                               "thread-safety analysis must not be "
                               "suppressed outside thread_annotations.h")

        if rel.startswith("src" + os.sep):
            for i, raw in enumerate(lines, 1):
                code = strip_comments_and_strings(raw)
                for pattern, why in FP_BANNED:
                    if pattern.search(code):
                        self.error(rel, i, "fp-determinism", why)

        if rel.startswith("src" + os.sep) and not exempt:
            stripped = [strip_comments_and_strings(l) for l in lines]
            for line_no, message in find_blocking_under_lock(lines, stripped):
                self.error(rel, line_no, "blocking-under-lock", message)
            for i, raw in enumerate(lines, 1):
                code = strip_comments_and_strings(raw)
                if RELAXED_RE.search(code):
                    # A marker covers its own line plus the contiguous
                    # block of relaxed lines below it (counter banks like
                    # StatsSnapshot would need a marker per line otherwise,
                    # fighting the 80-column format check).
                    covered = RELAXED_OK_RE.search(raw) is not None
                    j = i - 2
                    gap = 0
                    while not covered and j >= 0:
                        if RELAXED_OK_RE.search(lines[j]):
                            covered = True
                        elif RELAXED_RE.search(
                                strip_comments_and_strings(lines[j])):
                            gap = 0
                            j -= 1
                        elif gap == 0:
                            # One non-relaxed line is tolerated inside a
                            # block: multi-line statements put the operand
                            # and the memory_order on different lines.
                            gap = 1
                            j -= 1
                        else:
                            break
                    if not covered:
                        self.error(rel, i, "relaxed-atomic",
                                   "memory_order_relaxed without a "
                                   "`// relaxed-ok: <reason>` marker on this "
                                   "or the preceding line; relaxed ordering "
                                   "is right for monotonic telemetry and "
                                   "advisory hints only — say which this is")
                if MUTEX_DECL_RE.search(code):
                    nxt = lines[i] if i < len(lines) else ""
                    prev = lines[i - 2] if i >= 2 else ""
                    if not (LOCK_RANK_USE_RE.search(code) or
                            LOCK_RANK_USE_RE.search(
                                strip_comments_and_strings(nxt)) or
                            RANKED_OK_RE.search(raw) or
                            RANKED_OK_RE.search(nxt) or
                            RANKED_OK_RE.search(prev)):
                        self.error(rel, i, "lock-rank",
                                   "Mutex declared without a LockRank::k* "
                                   "on this or the next line; place the "
                                   "lock in the global rank table "
                                   "(src/common/lock_order.h) or mark "
                                   "`// ranked: <where>` when the rank is "
                                   "a constructor parameter")

        if rel.startswith(os.path.join("src", "runtime") + os.sep):
            for i, raw in enumerate(lines, 1):
                code = strip_comments_and_strings(raw)
                if not POLICY_STATEFUL_RE.search(code):
                    continue
                prev = lines[i - 2] if i >= 2 else ""
                if SERIALIZED_OK_RE.search(raw) or SERIALIZED_OK_RE.search(prev):
                    continue
                self.error(rel, i, "policy-serialization",
                           "stateful ServingPolicy entry point called from "
                           "runtime code without a `// serialized(mu_)` "
                           "marker; either the call is under the policy "
                           "mutex (add the marker on this or the preceding "
                           "line) or it must go through the const "
                           "PlanOnView / CreatePlanState planning path")
            for i, raw in enumerate(lines, 1):
                code = strip_comments_and_strings(raw)
                if not DOMAIN_CROSSING_RE.search(code):
                    continue
                prev = lines[i - 2] if i >= 2 else ""
                if CROSSES_OK_RE.search(raw) or CROSSES_OK_RE.search(prev):
                    continue
                self.error(rel, i, "domain-crossing",
                           "call into a scheduler domain's inbox surface "
                           "without a `// crosses(domain)` marker on this "
                           "or the preceding line; cross-domain traffic "
                           "must go through the audited inbox entry points "
                           "and be grep-able")
            for i, raw in enumerate(lines, 1):
                code = strip_comments_and_strings(raw)
                if not BATCH_CTOR_RE.search(code):
                    continue
                if "struct TaskBatch" in code:
                    continue  # the type's own definition
                prev = lines[i - 2] if i >= 2 else ""
                if BATCH_OK_RE.search(raw) or BATCH_OK_RE.search(prev):
                    continue
                self.error(rel, i, "batch-workspace",
                           "TaskBatch constructed without a "
                           "`// batch-workspace` marker on this or the "
                           "preceding line; worker loops must reuse one "
                           "per-worker workspace (reserved to the batch "
                           "cap, growth tracked by grow_events) instead of "
                           "allocating a batch per coalescing drain")
            for start, body in find_marked_function_bodies(
                    text, ARRIVAL_PUMP_SIG_RE):
                for j in body:
                    code = strip_comments_and_strings(lines[j])
                    m = ARRIVAL_PUMP_MUTEX_RE.search(code)
                    if m:
                        self.error(rel, j + 1, "arrival-pump",
                                   f"mutex primitive `{m.group(0).strip()}` "
                                   "inside an arrival-pump body (starting "
                                   f"at line {start}); pumps may only use "
                                   "the domain inbox surface and published "
                                   "atomics — there is no marker escape, "
                                   "move the locking into the domain's "
                                   "admitter instead")

        if rel.startswith((os.path.join("src", "stress") + os.sep,
                           os.path.join("tests", "stress") + os.sep)):
            for i, raw in enumerate(lines, 1):
                code = strip_comments_and_strings(raw)
                m = STRESS_RNG_RE.search(code)
                if m:
                    self.error(rel, i, "stress-rng",
                               f"{m.group(0).strip()} in the stress harness "
                               "breaks replay-from-seed; draw through the "
                               "scenario's Lcg (stress/lcg.h) instead")

        for start, body in find_hot_function_bodies(text):
            body_text = "\n".join(strip_comments_and_strings(lines[j])
                                  for j in body)
            tracked = GROWTH_TRACKED_RE.search(body_text) is not None
            for j in body:
                raw = lines[j]
                if HOT_OK_RE.search(raw):
                    continue
                code = strip_comments_and_strings(raw)
                if HOT_ALLOC_RE.search(code):
                    self.error(rel, j + 1, "hot-path",
                               "heap allocation in a SCHEMBLE_HOT function "
                               "(add `// hot-ok: <reason>` only if truly "
                               "unavoidable)")
                elif HOT_GROWTH_RE.search(code) and not tracked:
                    self.error(rel, j + 1, "hot-path",
                               "untracked container growth in a SCHEMBLE_HOT "
                               "function (body starting at line "
                               f"{start}): route it through ResizeTracked / "
                               "GrowTo / a grow_events counter")


ENUM_RANK_RE = re.compile(
    r"enum class LockRank[^{]*\{(.*?)\}", re.S)

ANCHOR_RE = re.compile(
    r"inline Mutex (\w+)_anchor"
    r"(?:\s+SCHEMBLE_ACQUIRED_AFTER\((\w+)_anchor\))?\s*\{\s*"
    r"LockRank::(k\w+)", re.S)

NUM_RANKS_RE = re.compile(r"kNumLockRanks\s*=\s*(\d+)")


def check_rank_table(repo):
    """Cross-checks the three copies of the global lock-rank table: the
    LockRank enum (source of truth), the acquired_before/after anchor
    chain the static analysis reads, and the human-facing DESIGN.md table.
    Returns a list of error strings; empty means consistent."""
    enum_path = os.path.join("src", "common", "lock_order.h")
    chain_path = os.path.join("src", "common", "thread_annotations.h")
    design_path = "DESIGN.md"
    errors = []

    def read(rel):
        try:
            with open(os.path.join(repo, rel), encoding="utf-8") as f:
                return f.read()
        except OSError as e:
            errors.append(f"{rel}:0: [lock-rank] unreadable: {e}")
            return ""

    enum_text = read(enum_path)
    m = ENUM_RANK_RE.search(enum_text)
    enum_ranks = []
    if not m:
        errors.append(f"{enum_path}:0: [lock-rank] LockRank enum not found")
    else:
        enum_ranks = re.findall(r"\b(k\w+)\s*=\s*\d+", m.group(1))
    n = NUM_RANKS_RE.search(enum_text)
    if n and enum_ranks and int(n.group(1)) != len(enum_ranks):
        errors.append(
            f"{enum_path}:0: [lock-rank] kNumLockRanks = {n.group(1)} but "
            f"the enum lists {len(enum_ranks)} ranks")

    chain_text = read(chain_path)
    chain = ANCHOR_RE.findall(chain_text)
    chain_ranks = [rank for _, _, rank in chain]
    if enum_ranks and chain_ranks != enum_ranks:
        errors.append(
            f"{chain_path}:0: [lock-rank] anchor chain order "
            f"{chain_ranks} != LockRank enum order {enum_ranks}")
    for idx, (name, after, _) in enumerate(chain):
        want = chain[idx - 1][0] if idx > 0 else None
        if (after or None) != want:
            errors.append(
                f"{chain_path}:0: [lock-rank] anchor {name}_anchor is "
                f"ACQUIRED_AFTER({after or 'nothing'}_anchor); the chain "
                f"must follow the enum, expected "
                f"{want + '_anchor' if want else 'no predecessor'}")

    design_ranks = [r for line in read(design_path).split("\n")
                    if line.lstrip().startswith("|")
                    for r in re.findall(r"LockRank::(k\w+)", line)]
    if enum_ranks and design_ranks != enum_ranks:
        errors.append(
            f"{design_path}:0: [lock-rank] rank-table rows {design_ranks} "
            f"!= LockRank enum order {enum_ranks}; update the DESIGN.md "
            "\"Static analysis & lock discipline\" table")
    return errors


def repo_sources(repo, roots=("src", "tests", "bench", "examples")):
    out = []
    for root in roots:
        top = os.path.join(repo, root)
        for dirpath, _, names in os.walk(top):
            for name in sorted(names):
                if name.endswith((".h", ".cc")):
                    out.append(os.path.relpath(os.path.join(dirpath, name),
                                               repo))
    return sorted(out)


def changed_sources(repo, base):
    """Fast path: only files that differ from `base` (falls back to the
    full set when git fails, e.g. a shallow clone without the base ref)."""
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", "--diff-filter=d", base, "--"],
            cwd=repo, capture_output=True, text=True, check=True).stdout
    except (subprocess.CalledProcessError, OSError):
        return None
    return [f for f in diff.split("\n")
            if f.endswith((".h", ".cc")) and
            f.split(os.sep, 1)[0] in ("src", "tests", "bench", "examples")]


def run_clang_tidy(repo, build_dir, files, jobs):
    """Runs clang-tidy over the given .cc files via compile_commands.json.
    Returns (ran, ok). Missing binary or database => skipped (ran=False):
    the container may not ship clang-tidy; CI always does."""
    binary = None
    for name in ("clang-tidy", "clang-tidy-20", "clang-tidy-19",
                 "clang-tidy-18", "clang-tidy-17", "clang-tidy-16",
                 "clang-tidy-15", "clang-tidy-14"):
        binary = shutil.which(name)
        if binary:
            break
    cdb = os.path.join(build_dir, "compile_commands.json")
    if not binary:
        print("lint: clang-tidy not found; skipping the tidy pass "
              "(CI runs it)")
        return False, True
    if not os.path.exists(cdb):
        print(f"lint: {cdb} not found; configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON to run clang-tidy")
        return False, True
    with open(cdb, encoding="utf-8") as f:
        known = {entry["file"] for entry in json.load(f)}
    targets = [f for f in files
               if f.endswith(".cc") and f.startswith("src" + os.sep) and
               os.path.join(repo, f) in known]
    if not targets:
        print("lint: no clang-tidy targets in scope")
        return True, True
    ok = True
    # Batch to keep command lines sane; clang-tidy parallelism is per-file.
    for i in range(0, len(targets), max(1, jobs)):
        batch = targets[i:i + max(1, jobs)]
        procs = [subprocess.Popen(
            [binary, "-p", build_dir, "--quiet", os.path.join(repo, f)],
            cwd=repo, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True) for f in batch]
        for f, proc in zip(batch, procs):
            out, err = proc.communicate()
            if proc.returncode != 0 or "warning:" in out or "error:" in out:
                ok = False
                sys.stdout.write(out)
                sys.stderr.write(err)
                print(f"lint: clang-tidy failed on {f}")
    return True, ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", default=os.getcwd(),
                        help="repository root (default: cwd)")
    parser.add_argument("--build-dir", default="build",
                        help="build dir holding compile_commands.json")
    parser.add_argument("--clang-tidy", action="store_true",
                        help="also run clang-tidy over src/ (skipped with a "
                             "notice when no binary is installed)")
    parser.add_argument("--changed-only", metavar="BASE", default=None,
                        help="lint only files changed vs the given git ref "
                             "(CI fast path); falls back to the full tree")
    parser.add_argument("-j", "--jobs", type=int,
                        default=os.cpu_count() or 4)
    args = parser.parse_args()

    repo = os.path.abspath(args.repo)
    build_dir = args.build_dir
    if not os.path.isabs(build_dir):
        build_dir = os.path.join(repo, build_dir)

    files = None
    if args.changed_only:
        files = changed_sources(repo, args.changed_only)
        if files is None:
            print(f"lint: git diff vs {args.changed_only} failed; "
                  "linting the full tree")
    if files is None:
        files = repo_sources(repo)

    linter = Linter(repo)
    for rel in files:
        linter.lint_file(rel)
    linter.errors.extend(check_rank_table(repo))

    tidy_ok = True
    if args.clang_tidy:
        _, tidy_ok = run_clang_tidy(repo, build_dir, files, args.jobs)

    for e in linter.errors:
        print(e)
    checked = len(files)
    if linter.errors or not tidy_ok:
        print(f"lint: FAILED ({len(linter.errors)} rule violation(s) "
              f"across {checked} file(s)"
              + ("" if tidy_ok else "; clang-tidy reported diagnostics")
              + ")")
        return 1
    print(f"lint: OK ({checked} file(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
