#!/usr/bin/env python3
"""Gate compiler-analyzer findings against a committed baseline.

Both analyzer CI lanes (gcc -fanalyzer, clang scan-build) funnel their
build logs through this script. Findings are keyed by (file, warning-id)
-- never by line number -- so ordinary code motion does not churn the
baseline; only a genuinely new (file, diagnostic) pair fails the lane.

    check_analyzer.py LOG --baseline tools/analyzer_baseline_gcc.txt
    check_analyzer.py LOG --baseline ... --update   # refresh the baseline

A finding counts as an analyzer finding when its bracketed diagnostic id
is a gcc analyzer group (-Wanalyzer-*) or a clang static-analyzer checker
(dotted package name, e.g. core.NullDereference). Plain -W warnings are
ignored here: the regular -Werror builds already gate those.

Exit status: 1 when the log contains findings missing from the baseline
(or, with --strict, when baseline entries no longer fire); 0 otherwise.
Entries that no longer fire are reported either way -- refresh with
--update so the baseline only ever shrinks by an explicit, reviewed step.
"""

import argparse
import os
import re
import sys

# `path:line[:col]: warning: text [id]` -- the shape both gcc -fanalyzer
# and the clang static analyzer (via scan-build's console output) emit.
FINDING_RE = re.compile(
    r"^(?P<path>[^:\s][^:]*):\d+(?::\d+)?:\s+warning:\s.*"
    r"\[(?P<id>[-\w.+]+)\]\s*$")

# Directories that anchor a repo-relative path inside whatever absolute or
# build-relative spelling the compiler used for the file.
REPO_ROOTS = ("src", "tests", "bench", "examples", "tools")


def normalize_path(path):
    """Rewrite a compiler-reported path to its repo-relative form."""
    parts = path.replace("\\", "/").split("/")
    for i, part in enumerate(parts):
        if part in REPO_ROOTS:
            return "/".join(parts[i:])
    return "/".join(p for p in parts if p not in (".", ".."))


def is_analyzer_id(diag_id):
    if diag_id.startswith("-Wanalyzer-"):
        return True
    return "." in diag_id and not diag_id.startswith("-W")


def parse_findings(log_path):
    findings = set()
    with open(log_path, encoding="utf-8", errors="replace") as f:
        for line in f:
            m = FINDING_RE.match(line.rstrip())
            if m and is_analyzer_id(m.group("id")):
                findings.add((normalize_path(m.group("path")),
                              m.group("id")))
    return findings


def read_baseline(path):
    baseline = set()
    if not os.path.exists(path):
        return baseline
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != 2:
                sys.exit(f"check_analyzer: malformed baseline line: {line!r}")
            baseline.add((fields[0], fields[1]))
    return baseline


def write_baseline(path, findings):
    with open(path, "w", encoding="utf-8") as f:
        f.write("# Analyzer baseline: one `<file> <warning-id>` pair per\n"
                "# line. Maintained by tools/check_analyzer.py --update;\n"
                "# do not edit by hand.\n")
        for file_path, diag_id in sorted(findings):
            f.write(f"{file_path} {diag_id}\n")


def main():
    parser = argparse.ArgumentParser(
        description="Compare analyzer findings against a baseline.")
    parser.add_argument("log", help="build log containing analyzer output")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline file")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this log and exit 0")
    parser.add_argument("--strict", action="store_true",
                        help="also fail when baseline entries no longer fire")
    args = parser.parse_args()

    findings = parse_findings(args.log)

    if args.update:
        write_baseline(args.baseline, findings)
        print(f"check_analyzer: baseline {args.baseline} updated "
              f"({len(findings)} finding(s))")
        return 0

    baseline = read_baseline(args.baseline)
    new = sorted(findings - baseline)
    fixed = sorted(baseline - findings)

    for file_path, diag_id in new:
        print(f"NEW  {file_path} {diag_id}")
    for file_path, diag_id in fixed:
        print(f"GONE {file_path} {diag_id}")

    print(f"check_analyzer: {len(findings)} finding(s) in log, "
          f"{len(baseline)} in baseline, {len(new)} new, {len(fixed)} fixed")
    if new:
        print(f"check_analyzer: new findings above fail the lane; fix them "
              f"or (for accepted pre-existing noise) refresh the baseline "
              f"with --update and commit {args.baseline}")
        return 1
    if fixed:
        print(f"check_analyzer: baseline entries no longer fire -- refresh "
              f"with --update so {args.baseline} stays tight")
        if args.strict:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
