#ifndef SCHEMBLE_RUNTIME_MPMC_QUEUE_H_
#define SCHEMBLE_RUNTIME_MPMC_QUEUE_H_

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/thread_annotations.h"

namespace schemble {

/// Bounded multi-producer/multi-consumer queue over a fixed ring buffer.
/// All blocking is condition-variable based (no spinning): producers block
/// while full, consumers block while empty. `Close` wakes every waiter;
/// after close, pushes fail and pops drain the remaining items before
/// reporting exhaustion. Safe for any number of concurrent producers and
/// consumers: every state transition happens under mu_, and the
/// thread-safety annotations make any future off-lock access a clang build
/// error.
template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t capacity) : capacity_(capacity), ring_(capacity) {
    SCHEMBLE_CHECK_GT(capacity, 0u);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Blocks until space frees up; returns false (dropping `value`) when the
  /// queue is closed before space is available.
  bool Push(T value) SCHEMBLE_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      while (size_ == capacity_ && !closed_) not_full_.Wait(mu_);
      if (closed_) return false;
      PushLocked(std::move(value));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool TryPush(T value) SCHEMBLE_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      if (closed_ || size_ == capacity_) return false;
      PushLocked(std::move(value));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks until an item arrives; nullopt once the queue is closed and
  /// drained (the consumer-side shutdown signal).
  std::optional<T> Pop() SCHEMBLE_EXCLUDES(mu_) {
    std::optional<T> value;
    {
      MutexLock lock(&mu_);
      while (size_ == 0 && !closed_) not_empty_.Wait(mu_);
      if (size_ == 0) return std::nullopt;
      value = PopLocked();
    }
    not_full_.NotifyOne();
    return value;
  }

  /// Non-blocking pop; nullopt when currently empty.
  std::optional<T> TryPop() SCHEMBLE_EXCLUDES(mu_) {
    std::optional<T> value;
    {
      MutexLock lock(&mu_);
      if (size_ == 0) return std::nullopt;
      value = PopLocked();
    }
    not_full_.NotifyOne();
    return value;
  }

  /// Irreversibly stops accepting new items and wakes all blocked threads.
  void Close() SCHEMBLE_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      closed_ = true;
    }
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  size_t size() const SCHEMBLE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return size_;
  }
  /// Immutable after construction; lock-free by design.
  size_t capacity() const { return capacity_; }
  bool closed() const SCHEMBLE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return closed_;
  }

 private:
  void PushLocked(T value) SCHEMBLE_REQUIRES(mu_) {
    ring_[(head_ + size_) % capacity_] = std::move(value);
    ++size_;
  }
  T PopLocked() SCHEMBLE_REQUIRES(mu_) {
    T value = std::move(ring_[head_]);
    head_ = (head_ + 1) % capacity_;
    --size_;
    return value;
  }

  /// Stored outside the guarded state so capacity() needs no lock (the
  /// ring itself never resizes after construction).
  const size_t capacity_;

  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::vector<T> ring_ SCHEMBLE_GUARDED_BY(mu_);
  size_t head_ SCHEMBLE_GUARDED_BY(mu_) = 0;
  size_t size_ SCHEMBLE_GUARDED_BY(mu_) = 0;
  bool closed_ SCHEMBLE_GUARDED_BY(mu_) = false;
};

}  // namespace schemble

#endif  // SCHEMBLE_RUNTIME_MPMC_QUEUE_H_
