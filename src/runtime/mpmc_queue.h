#ifndef SCHEMBLE_RUNTIME_MPMC_QUEUE_H_
#define SCHEMBLE_RUNTIME_MPMC_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace schemble {

/// Bounded multi-producer/multi-consumer queue over a fixed ring buffer.
/// All blocking is condition-variable based (no spinning): producers block
/// while full, consumers block while empty. `Close` wakes every waiter;
/// after close, pushes fail and pops drain the remaining items before
/// reporting exhaustion. Safe for any number of concurrent producers and
/// consumers.
template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t capacity) : ring_(capacity) {
    SCHEMBLE_CHECK_GT(capacity, 0u);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Blocks until space frees up; returns false (dropping `value`) when the
  /// queue is closed before space is available.
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return size_ < ring_.size() || closed_; });
    if (closed_) return false;
    PushLocked(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool TryPush(T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || size_ == ring_.size()) return false;
      PushLocked(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item arrives; nullopt once the queue is closed and
  /// drained (the consumer-side shutdown signal).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) return std::nullopt;
    T value = PopLocked();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop; nullopt when currently empty.
  std::optional<T> TryPop() {
    std::optional<T> value;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (size_ == 0) return std::nullopt;
      value = PopLocked();
    }
    not_full_.notify_one();
    return value;
  }

  /// Irreversibly stops accepting new items and wakes all blocked threads.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }
  size_t capacity() const { return ring_.size(); }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  void PushLocked(T value) {
    ring_[(head_ + size_) % ring_.size()] = std::move(value);
    ++size_;
  }
  T PopLocked() {
    T value = std::move(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --size_;
    return value;
  }

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<T> ring_;
  size_t head_ = 0;
  size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace schemble

#endif  // SCHEMBLE_RUNTIME_MPMC_QUEUE_H_
