#ifndef SCHEMBLE_RUNTIME_MPMC_QUEUE_H_
#define SCHEMBLE_RUNTIME_MPMC_QUEUE_H_

#include <algorithm>
#include <cstddef>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/thread_annotations.h"

namespace schemble {

/// Bounded multi-producer/multi-consumer queue over a fixed ring buffer.
/// All blocking is condition-variable based (no spinning): producers block
/// while full, consumers block while empty. `Close` wakes every waiter;
/// after close, pushes fail and pops drain the remaining items before
/// reporting exhaustion. Safe for any number of concurrent producers and
/// consumers: every state transition happens under mu_, and the
/// thread-safety annotations make any future off-lock access a clang build
/// error.
template <typename T>
class MpmcQueue {
 public:
  /// `rank`/`name` place this queue's internal mutex in the global lock
  /// order (common/lock_order.h): scheduler-domain inboxes pass
  /// LockRank::kInbox, per-executor task queues LockRank::kExecutorQueue;
  /// standalone queues (tests, benches) keep the kLeaf default.
  explicit MpmcQueue(size_t capacity, LockRank rank = LockRank::kLeaf,
                     const char* name = "mpmc_queue.mu")
      : capacity_(capacity), mu_(rank, name), ring_(capacity) {
    SCHEMBLE_CHECK_GT(capacity, 0u);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Blocks until space frees up; returns false (dropping `value`) when the
  /// queue is closed before space is available.
  bool Push(T value) SCHEMBLE_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      while (size_ == capacity_ && !closed_) not_full_.Wait(mu_);
      if (closed_) return false;
      PushLocked(std::move(value));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Batched push: transfers all of `items` in order using one lock
  /// round-trip per capacity chunk (a batch no larger than the free space
  /// costs exactly one). Blocks while the ring is full, like Push; a batch
  /// larger than the whole capacity still completes in chunks. Returns the
  /// number of items actually pushed — items.size() unless the queue is
  /// closed mid-batch, which drops the remainder.
  size_t PushAll(std::span<const T> items) SCHEMBLE_EXCLUDES(mu_) {
    size_t pushed = 0;
    while (pushed < items.size()) {
      size_t chunk = 0;
      {
        MutexLock lock(&mu_);
        while (size_ == capacity_ && !closed_) not_full_.Wait(mu_);
        if (closed_) break;
        chunk = std::min(items.size() - pushed, capacity_ - size_);
        for (size_t i = 0; i < chunk; ++i) PushLocked(items[pushed + i]);
      }
      pushed += chunk;
      // A batch can satisfy several blocked consumers at once.
      not_empty_.NotifyAll();
    }
    return pushed;
  }

  /// Non-blocking batched push: transfers a prefix of `items` in order,
  /// bounded by the free space observed in one lock round-trip. Returns
  /// the number pushed — 0 when full or closed, items.size() when the
  /// whole batch fit. The arrival-pump fast path: a pump pushes what fits
  /// without ever parking on a domain's inbox, and falls back to the
  /// blocking PushAll only for the remainder.
  size_t TryPushAll(std::span<const T> items) SCHEMBLE_EXCLUDES(mu_) {
    size_t pushed = 0;
    {
      MutexLock lock(&mu_);
      if (closed_) return 0;
      pushed = std::min(items.size(), capacity_ - size_);
      for (size_t i = 0; i < pushed; ++i) PushLocked(items[i]);
    }
    // A batch can satisfy several blocked consumers at once.
    if (pushed > 0) not_empty_.NotifyAll();
    return pushed;
  }

  /// Non-blocking push; false when full or closed.
  bool TryPush(T value) SCHEMBLE_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      if (closed_ || size_ == capacity_) return false;
      PushLocked(std::move(value));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks until an item arrives; nullopt once the queue is closed and
  /// drained (the consumer-side shutdown signal).
  std::optional<T> Pop() SCHEMBLE_EXCLUDES(mu_) {
    std::optional<T> value;
    {
      MutexLock lock(&mu_);
      while (size_ == 0 && !closed_) not_empty_.Wait(mu_);
      if (size_ == 0) return std::nullopt;
      value = PopLocked();
    }
    not_full_.NotifyOne();
    return value;
  }

  /// Blocking batch pop: waits until at least one item is available (or
  /// the queue closes), then drains up to `max_items` into `out`
  /// (appended) in one lock round-trip. Returns the number taken; 0 only
  /// once the queue is closed and fully drained.
  size_t PopN(std::vector<T>* out, size_t max_items) SCHEMBLE_EXCLUDES(mu_) {
    size_t taken = 0;
    {
      MutexLock lock(&mu_);
      while (size_ == 0 && !closed_) not_empty_.Wait(mu_);
      taken = std::min(max_items, size_);
      for (size_t i = 0; i < taken; ++i) out->push_back(PopLocked());
    }
    if (taken > 0) not_full_.NotifyAll();
    return taken;
  }

  /// Non-blocking batch pop: drains up to `max_items` into `out`
  /// (appended); returns the number taken, 0 when currently empty.
  size_t TryPopN(std::vector<T>* out, size_t max_items)
      SCHEMBLE_EXCLUDES(mu_) {
    size_t taken = 0;
    {
      MutexLock lock(&mu_);
      taken = std::min(max_items, size_);
      for (size_t i = 0; i < taken; ++i) out->push_back(PopLocked());
    }
    if (taken > 0) not_full_.NotifyAll();
    return taken;
  }

  /// Work-stealing batch pop: drains up to `max_items` into `out`
  /// (appended) WITHOUT ever blocking — on neither the queue state (empty
  /// returns 0) nor the queue mutex (TryLock: a steal attempt while the
  /// owner holds the lock returns 0 instead of waiting, so a thief never
  /// delays the owning threads and a stalled owner never delays the
  /// thief). Items still drain after Close, so a thief racing shutdown
  /// takes whatever remains (partial steals on close). Returns the number
  /// taken; 0 means empty, closed-and-drained, OR momentarily contended —
  /// callers must treat 0 as "nothing to steal right now", never as a
  /// terminal signal.
  size_t StealN(std::vector<T>* out, size_t max_items)
      SCHEMBLE_EXCLUDES(mu_) {
    if (!mu_.TryLock()) return 0;
    const size_t taken = std::min(max_items, size_);
    for (size_t i = 0; i < taken; ++i) out->push_back(PopLocked());
    mu_.Unlock();
    if (taken > 0) not_full_.NotifyAll();
    return taken;
  }

  /// Non-blocking pop; nullopt when currently empty.
  std::optional<T> TryPop() SCHEMBLE_EXCLUDES(mu_) {
    std::optional<T> value;
    {
      MutexLock lock(&mu_);
      if (size_ == 0) return std::nullopt;
      value = PopLocked();
    }
    not_full_.NotifyOne();
    return value;
  }

  /// Irreversibly stops accepting new items and wakes all blocked threads.
  void Close() SCHEMBLE_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      closed_ = true;
    }
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  /// Atomically closes the queue AND drains everything still buffered into
  /// `out` (appended), in FIFO order, in one critical section. The
  /// fail-stop primitive: a failing consumer takes ownership of its whole
  /// backlog with no window in which a concurrent producer could slip an
  /// item into a queue that will never be drained again (a Close();
  /// TryPopN() sequence would leave exactly that gap for a producer
  /// blocked in PushAll). Blocked producers wake and observe closed_,
  /// reporting their un-pushed remainder back to the caller, so every item
  /// is accounted for on exactly one side. Returns the number drained.
  size_t CloseAndDrain(std::vector<T>* out) SCHEMBLE_EXCLUDES(mu_) {
    size_t taken = 0;
    {
      MutexLock lock(&mu_);
      closed_ = true;
      taken = size_;
      for (size_t i = 0; i < taken; ++i) out->push_back(PopLocked());
    }
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
    return taken;
  }

  size_t size() const SCHEMBLE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return size_;
  }
  /// Immutable after construction; lock-free by design.
  size_t capacity() const { return capacity_; }
  bool closed() const SCHEMBLE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return closed_;
  }

 private:
  void PushLocked(T value) SCHEMBLE_REQUIRES(mu_) {
    ring_[(head_ + size_) % capacity_] = std::move(value);
    ++size_;
  }
  T PopLocked() SCHEMBLE_REQUIRES(mu_) {
    T value = std::move(ring_[head_]);
    head_ = (head_ + 1) % capacity_;
    --size_;
    return value;
  }

  /// Stored outside the guarded state so capacity() needs no lock (the
  /// ring itself never resizes after construction).
  const size_t capacity_;

  /// Ranked kInbox or kExecutorQueue inside the runtime (see constructor);
  /// both positions order after the domain mutex, which the anchor
  /// annotation encodes for the static analysis. Work-stealing peers
  /// acquire this lock only via TryLock (StealN), the order-exempt path.
  // ranked: constructor parameter (kInbox / kExecutorQueue / kLeaf)
  mutable Mutex mu_ SCHEMBLE_ACQUIRED_AFTER(lock_ranks::domain_anchor);
  CondVar not_empty_;
  CondVar not_full_;
  std::vector<T> ring_ SCHEMBLE_GUARDED_BY(mu_);
  size_t head_ SCHEMBLE_GUARDED_BY(mu_) = 0;
  size_t size_ SCHEMBLE_GUARDED_BY(mu_) = 0;
  bool closed_ SCHEMBLE_GUARDED_BY(mu_) = false;
};

}  // namespace schemble

#endif  // SCHEMBLE_RUNTIME_MPMC_QUEUE_H_
