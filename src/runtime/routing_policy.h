#ifndef SCHEMBLE_RUNTIME_ROUTING_POLICY_H_
#define SCHEMBLE_RUNTIME_ROUTING_POLICY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "simcore/simulation.h"
#include "workload/trace.h"

namespace schemble {

/// Lock-free load summary of one scheduler domain, read by an arrival
/// pump from the DomainLoadBoard's published atomics. All counts are
/// instantaneous approximations (each atomic is read independently), which
/// is exactly what a routing heuristic needs — never read them expecting a
/// consistent cross-field snapshot.
struct DomainLoad {
  int domain = 0;
  /// Queries routed to the domain but not yet admitted by its scheduler.
  int64_t inbox = 0;
  /// Queries admitted and sitting in the domain's central buffer.
  int64_t buffered = 0;
  /// Tasks in the domain's executor queues (including undrained run
  /// tails, see WorkerLoop).
  int64_t queued_tasks = 0;
  /// Executors owned by the domain; immutable after construction.
  int executors = 0;

  /// Work items per executor, the normalized pressure the load-aware
  /// policies compare. Returned as a pair (load, executors) comparison is
  /// done with exact integer cross-multiplication by the policies, so tie
  /// breaking stays deterministic; this helper is for diagnostics only.
  double pressure() const {
    return static_cast<double>(inbox + buffered + queued_tasks) /
           static_cast<double>(executors > 0 ? executors : 1);
  }
};

/// Epoch-stamped, lock-free board of per-domain load summaries: the TIP-
/// Search-style fast path between the scheduler domains (publishers) and
/// the arrival pumps (readers). Each domain periodically publishes its own
/// row — inbox depth, buffered count, queued tasks — from its admitter/
/// scheduler/worker threads; pumps read the whole board with plain atomic
/// loads, never a lock and never a synchronous query into a domain.
///
/// Staleness contract: a row is at most one publish interval behind its
/// domain's true load, and different rows may be from different instants.
/// Load-aware routing tolerates that by construction (a stale pick is a
/// slightly worse pick, never an unsafe one); per-pump in-batch
/// compensation on the local copy keeps a single burst from piling onto
/// one stale winner. The per-row `epoch` increments on every publish
/// (release; paired with the readers' acquire), so tests can assert
/// monotonic progress and readers can detect a never-published row.
class DomainLoadBoard {
 public:
  /// One row per domain; `executors_per_domain[d]` is immutable and copied
  /// into every ReadInto result.
  explicit DomainLoadBoard(std::vector<int> executors_per_domain);

  DomainLoadBoard(const DomainLoadBoard&) = delete;
  DomainLoadBoard& operator=(const DomainLoadBoard&) = delete;

  int num_domains() const { return static_cast<int>(rows_.size()); }

  /// Publishes domain `d`'s current load counters (any domain thread; the
  /// row's fields are independent atomics, not a sealed snapshot).
  void Publish(int domain, int64_t inbox, int64_t buffered,
               int64_t queued_tasks);

  /// Fills `loads` with every row's latest published values (lock-free,
  /// wait-free; reuses the vector's capacity). Rows never published read
  /// as zero load — safe, just routing-blind until the first publish.
  void ReadInto(std::vector<DomainLoad>* loads) const;

  /// Publish count of one row; strictly monotonic across publishes.
  uint64_t epoch(int domain) const;

 private:
  /// Cache-line sized so two domains publishing concurrently never
  /// false-share a row.
  struct alignas(64) Row {
    std::atomic<int64_t> inbox{0};
    std::atomic<int64_t> buffered{0};
    std::atomic<int64_t> queued_tasks{0};
    std::atomic<uint64_t> epoch{0};
    int executors = 0;
  };
  /// Sized at construction, never resized (rows hold atomics).
  std::vector<Row> rows_;
};

/// Pluggable admission-side query placement: picks the scheduler domain an
/// arriving query is routed to (the minimal child-picker idiom of the
/// Pating scheduler xlators — a struct per strategy, one "pick a child"
/// entry point).
///
/// Threading contract: each INSTANCE is called by exactly one thread (its
/// owning arrival pump), so implementations may keep unguarded mutable
/// state (round-robin cursors) — concurrency across pumps comes from one
/// instance per pump, never from sharing. Implementations must be
/// deterministic functions of (query, now, domains) and their own call
/// history — the routing unit tests replay fixed sequences against a
/// ManualClock. The load span an instance sees is a pump-local copy of a
/// DomainLoadBoard read: slightly stale by design, mutated only by the
/// pump's own in-batch compensation.
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  virtual std::string name() const = 0;

  /// Returns the target domain index in [0, domains.size()). `now` is the
  /// current virtual time (deadline-aware policies route on slack).
  /// `domains` is never empty.
  virtual int Route(const TracedQuery& query, SimTime now,
                    std::span<const DomainLoad> domains) = 0;
};

/// Stateless hash placement: splitmix64 of the query id modulo the domain
/// count. Stable — the same query id always lands on the same domain for a
/// fixed domain count — and load-oblivious, so bursts of consecutive ids
/// still spread uniformly.
class HashRouting final : public RoutingPolicy {
 public:
  std::string name() const override { return "hash"; }
  int Route(const TracedQuery& query, SimTime now,
            std::span<const DomainLoad> domains) override;
};

/// Cyclic placement: domain (i mod n) for the i-th routed query.
class RoundRobinRouting final : public RoutingPolicy {
 public:
  std::string name() const override { return "round-robin"; }
  int Route(const TracedQuery& query, SimTime now,
            std::span<const DomainLoad> domains) override;

 private:
  int64_t cursor_ = 0;
};

/// Load-aware placement: the domain with the fewest outstanding work items
/// (inbox + buffered + queued tasks) per executor wins; exact integer
/// cross-multiplication avoids FP rounding and ties break to the lowest
/// domain index, so the decision is deterministic for a given load vector.
class LeastLoadedRouting final : public RoutingPolicy {
 public:
  std::string name() const override { return "least-loaded"; }
  int Route(const TracedQuery& query, SimTime now,
            std::span<const DomainLoad> domains) override;
};

/// Deadline-class placement: queries are bucketed by slack (deadline -
/// now) against ascending class boundaries, and class c maps to domain
/// min(c, n-1) — tight-deadline traffic concentrates on the low domains,
/// which a deadline-aware deployment provisions accordingly (TIP-Search
/// style deadline-tiered dispatch).
class DeadlineClassRouting final : public RoutingPolicy {
 public:
  /// `boundaries` must be strictly ascending; slack < boundaries[c] puts
  /// the query in class c, anything >= the last boundary in class
  /// boundaries.size().
  explicit DeadlineClassRouting(std::vector<SimTime> boundaries);
  /// Default tiers: 100 ms / 500 ms / 2 s of slack.
  DeadlineClassRouting();

  std::string name() const override { return "deadline-class"; }
  int Route(const TracedQuery& query, SimTime now,
            std::span<const DomainLoad> domains) override;

 private:
  std::vector<SimTime> boundaries_;
};

enum class RoutingPolicyKind {
  kHash,
  kRoundRobin,
  kLeastLoaded,
  kDeadlineClass,
};

std::unique_ptr<RoutingPolicy> MakeRoutingPolicy(RoutingPolicyKind kind);

}  // namespace schemble

#endif  // SCHEMBLE_RUNTIME_ROUTING_POLICY_H_
