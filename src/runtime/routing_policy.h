#ifndef SCHEMBLE_RUNTIME_ROUTING_POLICY_H_
#define SCHEMBLE_RUNTIME_ROUTING_POLICY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "simcore/simulation.h"
#include "workload/trace.h"

namespace schemble {

/// Lock-free load summary of one scheduler domain, assembled by the
/// admission thread from the domain's published atomics. All counts are
/// instantaneous approximations (each atomic is read independently), which
/// is exactly what a routing heuristic needs — never read them expecting a
/// consistent cross-field snapshot.
struct DomainLoad {
  int domain = 0;
  /// Queries routed to the domain but not yet admitted by its scheduler.
  int64_t inbox = 0;
  /// Queries admitted and sitting in the domain's central buffer.
  int64_t buffered = 0;
  /// Tasks in the domain's executor queues (including undrained run
  /// tails, see WorkerLoop).
  int64_t queued_tasks = 0;
  /// Executors owned by the domain; immutable after construction.
  int executors = 0;

  /// Work items per executor, the normalized pressure the load-aware
  /// policies compare. Returned as a pair (load, executors) comparison is
  /// done with exact integer cross-multiplication by the policies, so tie
  /// breaking stays deterministic; this helper is for diagnostics only.
  double pressure() const {
    return static_cast<double>(inbox + buffered + queued_tasks) /
           static_cast<double>(executors > 0 ? executors : 1);
  }
};

/// Pluggable admission-side query placement: picks the scheduler domain an
/// arriving query is routed to (the minimal child-picker idiom of the
/// Pating scheduler xlators — a struct per strategy, one "pick a child"
/// entry point).
///
/// Threading contract: Route is called by exactly ONE thread (the
/// admission thread), so implementations may keep unguarded mutable state
/// (round-robin cursors). Implementations must be deterministic functions
/// of (query, now, domains) and their own call history — the routing unit
/// tests replay fixed sequences against a ManualClock.
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  virtual std::string name() const = 0;

  /// Returns the target domain index in [0, domains.size()). `now` is the
  /// current virtual time (deadline-aware policies route on slack).
  /// `domains` is never empty.
  virtual int Route(const TracedQuery& query, SimTime now,
                    std::span<const DomainLoad> domains) = 0;
};

/// Stateless hash placement: splitmix64 of the query id modulo the domain
/// count. Stable — the same query id always lands on the same domain for a
/// fixed domain count — and load-oblivious, so bursts of consecutive ids
/// still spread uniformly.
class HashRouting final : public RoutingPolicy {
 public:
  std::string name() const override { return "hash"; }
  int Route(const TracedQuery& query, SimTime now,
            std::span<const DomainLoad> domains) override;
};

/// Cyclic placement: domain (i mod n) for the i-th routed query.
class RoundRobinRouting final : public RoutingPolicy {
 public:
  std::string name() const override { return "round-robin"; }
  int Route(const TracedQuery& query, SimTime now,
            std::span<const DomainLoad> domains) override;

 private:
  int64_t cursor_ = 0;
};

/// Load-aware placement: the domain with the fewest outstanding work items
/// (inbox + buffered + queued tasks) per executor wins; exact integer
/// cross-multiplication avoids FP rounding and ties break to the lowest
/// domain index, so the decision is deterministic for a given load vector.
class LeastLoadedRouting final : public RoutingPolicy {
 public:
  std::string name() const override { return "least-loaded"; }
  int Route(const TracedQuery& query, SimTime now,
            std::span<const DomainLoad> domains) override;
};

/// Deadline-class placement: queries are bucketed by slack (deadline -
/// now) against ascending class boundaries, and class c maps to domain
/// min(c, n-1) — tight-deadline traffic concentrates on the low domains,
/// which a deadline-aware deployment provisions accordingly (TIP-Search
/// style deadline-tiered dispatch).
class DeadlineClassRouting final : public RoutingPolicy {
 public:
  /// `boundaries` must be strictly ascending; slack < boundaries[c] puts
  /// the query in class c, anything >= the last boundary in class
  /// boundaries.size().
  explicit DeadlineClassRouting(std::vector<SimTime> boundaries);
  /// Default tiers: 100 ms / 500 ms / 2 s of slack.
  DeadlineClassRouting();

  std::string name() const override { return "deadline-class"; }
  int Route(const TracedQuery& query, SimTime now,
            std::span<const DomainLoad> domains) override;

 private:
  std::vector<SimTime> boundaries_;
};

enum class RoutingPolicyKind {
  kHash,
  kRoundRobin,
  kLeastLoaded,
  kDeadlineClass,
};

std::unique_ptr<RoutingPolicy> MakeRoutingPolicy(RoutingPolicyKind kind);

}  // namespace schemble

#endif  // SCHEMBLE_RUNTIME_ROUTING_POLICY_H_
