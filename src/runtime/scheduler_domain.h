#ifndef SCHEMBLE_RUNTIME_SCHEDULER_DOMAIN_H_
#define SCHEMBLE_RUNTIME_SCHEDULER_DOMAIN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <queue>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "core/policy.h"
#include "models/synthetic_task.h"
#include "runtime/mpmc_queue.h"
#include "runtime/routing_policy.h"
#include "simcore/clock.h"
#include "workload/trace.h"

namespace schemble {

class SchedulerDomain;

/// How workers consume a task's service time. kSleep blocks on the OS
/// timer (models accelerator-offloaded inference; scales past the host
/// core count). kSpin burns CPU for the duration (models host-bound
/// inference; scales only with real cores).
enum class ServiceMode { kSleep, kSpin };

/// Fault-injection profile of one executor (the stress harness's scenario
/// dimensions; see DESIGN.md "Randomized stress harness"). The default is
/// a clean executor, so pre-existing configurations are unaffected.
struct ExecutorFault {
  /// Throughput multiplier: service time is divided by this, so 2.0 is a
  /// 2x-faster executor and 0.5 a 2x-slower one (heterogeneous fleets).
  double speed = 1.0;
  /// Straggler injection: once the virtual clock passes `straggle_after`
  /// (> 0 to enable), service times are inflated by `straggle_factor`.
  SimTime straggle_after = 0;
  double straggle_factor = 1.0;
  /// Fail-stop injection: the executor dies at the first task it examines
  /// once the virtual clock passes `fail_at` (> 0 to enable). Its
  /// in-flight and queued tasks are re-queued through the domain inbox and
  /// re-admitted, so no query is ever lost to a failure.
  SimTime fail_at = 0;

  bool clean() const {
    return speed == 1.0 && straggle_after == 0 && fail_at == 0;
  }
};

/// Services a scheduler domain consumes from its owning server. The host
/// owns everything global — the trace, the clock, the metric sinks, the
/// run-completion doorbell — while each domain owns one shard of the
/// scheduling state. All methods must be safe to call from any domain
/// thread; FinalizeQuery and peer() are called with NO domain mutex held.
class DomainHost {
 public:
  virtual ~DomainHost() = default;

  virtual const QueryTrace& trace() const = 0;
  virtual Clock& clock() = 0;
  /// Trace index for a query id (const-after-init map, lock-free reads).
  virtual int query_index(int64_t query_id) const = 0;
  /// Records the final outcome of query `index` (aggregation, accuracy,
  /// metrics, run-completion accounting). Exactly-once per query across
  /// ALL domains — a second call for the same index is a CHECK failure,
  /// which is how the runtime turns a cross-domain double dispatch into a
  /// loud test failure instead of silent metric corruption.
  virtual void FinalizeQuery(int domain, int index, SubsetMask outputs,
                             SimTime completion) = 0;
  virtual SchedulerDomain& peer(int domain) = 0;
  virtual int num_domains() const = 0;
};

/// Per-domain slice of the server configuration (see
/// ConcurrentServerOptions for field semantics shared with the
/// single-domain server).
struct SchedulerDomainOptions {
  int domain_id = 0;
  int num_domains = 1;
  /// This domain's executor slice: global base-model index per executor.
  std::vector<int> executor_models;
  /// Matching global executor ids (seed the per-worker RNG streams so the
  /// single-domain configuration reproduces the pre-sharding streams).
  std::vector<int> executor_ids;
  /// Per-executor fault profile, parallel to executor_models. Empty means
  /// every executor is clean.
  std::vector<ExecutorFault> faults;
  bool allow_rejection = true;
  uint64_t seed = 97;
  double speedup = 1.0;
  int queue_capacity = 4096;
  /// Bounded capacity of the routed-arrival inbox.
  int inbox_capacity = 4096;
  ServiceMode service_mode = ServiceMode::kSleep;
  /// Max queries moved per steal / per donation round.
  int steal_batch = 16;
  /// Virtual period of the scheduler's rebalance tick (multi-domain only):
  /// how often an otherwise-idle domain scans peers to steal from and an
  /// overloaded one considers donating buffered queries.
  SimTime rebalance_period = 10 * kMillisecond;
  /// Cross-query batching: workers coalesce compatible same-model tasks
  /// from their queue into one batched execution priced by the model's
  /// BatchLatencyModel, and planning/dispatch project availability with
  /// coalesced service time. Off (the default) keeps the per-task path
  /// bit-identical to the pre-batching runtime.
  bool batching = false;
  /// Caps every model's batch size when > 0 (0 keeps each profile's own
  /// max_batch). 1 forces unbatched semantics on the batched path — used
  /// by the equivalence tests.
  int max_batch = 0;
  /// Shared load board this domain publishes its row into (arrival pumps
  /// route against it lock-free). Borrowed from the owning server; null
  /// (single-domain runs) disables publishing entirely.
  DomainLoadBoard* load_board = nullptr;
};

/// One scheduling domain of the sharded concurrent runtime: a shard of the
/// query buffer, its own policy instance and mutex, its own admitter
/// thread draining the routed-arrival inbox into OnArrival decisions, its
/// own scheduler thread running the snapshot -> plan -> validate/commit
/// loop, a slice of the executor/worker pool, and (in rejection mode) its
/// own deadline thread. Queries enter through a bounded MPMC inbox so the
/// admission path never touches the domain mutex on the fast path (the
/// inbox's internal queue lock is the only synchronization, and the
/// blocking admitter is woken by the queue's own condition variable), and
/// leave through the host's FinalizeQuery exactly once.
///
/// Cross-domain protocol (see DESIGN.md "Sharded runtime"): domains
/// interact ONLY through each other's inboxes and published load atomics —
/// never through a peer's mutex. Work-stealing pulls routed-but-unadmitted
/// queries out of a peer's inbox with MpmcQueue::StealN; rebalancing
/// donates buffered (admitted, unassigned) queries into a peer's inbox
/// with TryPush (the recipient's blocking admitter picks them up),
/// re-admitting locally whatever does not fit. A query is always owned by
/// exactly one domain (or is in flight between two inboxes), which makes
/// lost/duplicated queries structurally impossible; the host's
/// exactly-once finalize CHECK enforces it.
class SchedulerDomain {
 public:
  SchedulerDomain(const SyntheticTask& task, ServingPolicy* policy,
                  DomainHost* host, SchedulerDomainOptions options);
  ~SchedulerDomain();

  SchedulerDomain(const SchedulerDomain&) = delete;
  SchedulerDomain& operator=(const SchedulerDomain&) = delete;

  /// Spawns the admitter, scheduler (+ deadline) threads and the workers.
  /// The host's trace/clock must be live; one-shot.
  void Start();
  /// Flags shutdown, closes the inbox and executor queues, wakes every
  /// blocked thread. Idempotent.
  void Shutdown() SCHEMBLE_EXCLUDES(mu_);
  void Join();

  /// Routes a batch of trace indices into this domain (bounded blocking
  /// push; the domain's admitter thread wakes through the inbox's own
  /// condition variable). Admission-thread side of the fast path: never
  /// touches the domain mutex.
  void PushRouted(std::span<const int> indices);
  /// Non-blocking single-query variant used by donating peers; false when
  /// the inbox is full or closed.
  bool TryPushRouted(int index);
  /// Non-blocking batched variant (arrival-pump fast path): pushes a
  /// prefix of `indices` bounded by the inbox's free space, never parking
  /// the pump on this domain. Returns the number pushed; the pump falls
  /// back to the blocking PushRouted for the remainder.
  size_t TryPushRoutedAll(std::span<const int> indices);
  /// Bulk-steals up to `max_items` routed-but-unadmitted queries without
  /// blocking this domain's threads (thief side of work-stealing). Appends
  /// to `out`; returns the count (0 = empty or momentarily contended).
  size_t StealRouted(std::vector<int>* out, size_t max_items);
  /// Signals that the admission thread has routed the whole trace.
  void ArrivalsDone() SCHEMBLE_EXCLUDES(mu_);

  /// Published load counters (lock-free, individually approximate) — the
  /// inputs to RoutingPolicy's DomainLoad and to peer steal/donate
  /// decisions.
  int64_t inbox_depth() const {
    return inbox_depth_.load(std::memory_order_acquire);
  }
  int64_t buffered_count() const {
    // relaxed-ok: advisory load hint; readers tolerate staleness by design
    return buffered_count_.load(std::memory_order_relaxed);
  }
  int64_t queued_tasks() const;
  int num_executors() const { return static_cast<int>(executors_.size()); }
  int domain_id() const { return options_.domain_id; }

  /// Scheduler telemetry; safe to read after the run drains (or any time,
  /// with per-counter consistency only).
  struct StatsSnapshot {
    int64_t plans = 0;
    int64_t plan_commits = 0;
    int64_t plans_invalidated = 0;
    int64_t replans = 0;
    /// Scheduler rounds that skipped PlanOnView entirely because the view
    /// generation was unchanged since the last planned snapshot (no
    /// arrival, completion, steal, requeue or donation touched the buffer
    /// or capacity in between, so replanning could only reproduce the
    /// previous answer).
    int64_t replans_skipped = 0;
    /// Steal rounds that obtained at least one query / queries stolen in.
    int64_t steals = 0;
    int64_t stolen = 0;
    /// Donation rounds that moved at least one query / queries donated out.
    int64_t rebalances = 0;
    int64_t donated = 0;
    /// Fault-injection telemetry: executors that fail-stopped, queries
    /// re-queued after losing a task to a failure (through the inbox or
    /// the direct-to-buffer fallback), and stale tasks dropped because
    /// their query had already been re-queued or finalized.
    int64_t failstops = 0;
    int64_t requeues = 0;
    int64_t stale_tasks_dropped = 0;
    /// Batched executions performed and tasks they carried. Advance on
    /// every execution (a batch of 1 when batching is off), so
    /// tasks_batched / batches_executed is the mean batch occupancy —
    /// exactly 1.0 on the unbatched path.
    int64_t batches_executed = 0;
    int64_t tasks_batched = 0;
  };
  StatsSnapshot stats() const;
  Mutex::Stats lock_stats() const { return mu_.stats(); }

 private:
  /// Per-query task; executed by the worker owning `executor`. Carries the
  /// query's generation at dispatch time: a completion (or a fail-stop
  /// re-queue) only applies while the generation still matches, so tasks
  /// orphaned by a re-queue-and-reassign cycle are dropped instead of
  /// corrupting the new assignment's done mask.
  struct Task {
    int query_index = 0;
    uint64_t generation = 0;
  };

  struct Executor {
    int model = 0;
    /// Global executor id (RNG stream seed), from options_.executor_ids.
    int global_id = 0;
    /// Fault profile (clean by default), from options_.faults.
    ExecutorFault fault;
    std::unique_ptr<MpmcQueue<Task>> queue;
    /// Virtual time when the in-flight task (if any) finishes; 0 if idle.
    std::atomic<SimTime> busy_until{0};
    std::atomic<bool> busy{false};
    /// Fail-stopped: excluded from views and dispatch placement; its queue
    /// is closed and drained.
    std::atomic<bool> failed{false};
    std::atomic<int64_t> queued{0};
  };

  struct QueryState {
    SubsetMask assigned = 0;
    SubsetMask done = 0;
    bool buffered = false;
    bool finalized = false;
    /// Admitted to this domain and not donated away. The deadline thread
    /// skips un-owned heap entries (the query migrated; its new owner
    /// covers the deadline), and admission CHECKs a query is never owned
    /// twice without an intervening donation.
    bool owned = false;
    SimTime last_done_time = 0;
    /// Bumped on every assign, finalize and donation. Snapshots taken for
    /// off-lock planning record it per query; a mismatch at commit time
    /// means the query moved on while the planner ran, so the plan entry
    /// is dropped (counted in plans_invalidated).
    uint64_t generation = 0;
  };

  /// One planned or admitted assignment awaiting dispatch. `generation` is
  /// stamped inside EnqueueBatch's liveness filter (the post-commit value)
  /// and travels on every dispatched Task.
  struct Commit {
    int index = 0;
    SubsetMask subset = 0;
    uint64_t generation = 0;
  };

  /// Reusable scratch for EnqueueBatch: per-executor task runs plus
  /// projected availability (and, under batching, the projected queue
  /// depth the coalesced-backlog deltas are computed against). All vectors
  /// reach a stable capacity after the first few batches, so steady-state
  /// dispatch performs no heap allocation.
  struct DispatchScratch {
    std::vector<Commit> live;
    std::vector<std::vector<Task>> runs;
    std::vector<SimTime> avail;
    std::vector<int64_t> qcount;
  };

  /// Reusable per-worker batch workspace: the tasks of one coalesced
  /// execution (each carrying its dispatch-time generation, so stale
  /// completions are still dropped per task) plus a growth counter the
  /// coalescing drain is grow-guarded against. Workers construct exactly
  /// one, reserved to the coalescing cap, outside their drain loop
  /// (lint rule batch-workspace) — steady-state coalescing performs no
  /// per-batch heap allocation.
  struct TaskBatch {
    std::vector<Task> tasks;
    int64_t grow_events = 0;
  };

  /// Reusable scratch for the admit/plan phases of the scheduler loop.
  struct SchedulerScratch {
    std::vector<int> incoming;
    std::vector<int> stolen;
    std::vector<Commit> to_enqueue;
    std::vector<int> rejects;
    std::vector<Commit> commits;
    std::vector<const TracedQuery*> pointers;
    std::vector<int> donations;
    DispatchScratch dispatch;
  };

  void AdmitterLoop() SCHEMBLE_EXCLUDES(mu_);
  void SchedulerLoop() SCHEMBLE_EXCLUDES(mu_);
  void DeadlineLoop() SCHEMBLE_EXCLUDES(mu_);
  void WorkerLoop(int executor_id) SCHEMBLE_EXCLUDES(mu_);

  /// Admits a batch of routed (or stolen) trace indices: one critical
  /// section running the policy's OnArrival per query with in-batch view
  /// compensation, then off-lock dispatch/finalize work. Mirrors the
  /// pre-sharding AdmissionLoop body.
  void AdmitBatch(const std::vector<int>& indices, ServerView* view,
                  SchedulerScratch* s) SCHEMBLE_EXCLUDES(mu_);
  /// One snapshot -> plan -> validate/commit round over the buffered
  /// shard (or the serialized OnIdle fallback). Returns false on shutdown.
  /// When `allow_skip` is set and the view generation equals
  /// `*last_planned_gen`, the off-lock round is elided entirely (counted
  /// in replans_skipped); the snapshot's generation is written back to
  /// `*last_planned_gen` after every planned round.
  bool PlanAndDispatch(bool off_lock, bool allow_skip,
                       uint64_t* last_planned_gen, PlanWorkspace* plan_ws,
                       ServerView* view, SchedulerScratch* s)
      SCHEMBLE_EXCLUDES(mu_);
  /// Thief side of work-stealing: when this domain has nothing buffered,
  /// nothing routed and an idle executor, pull a batch out of the deepest
  /// peer inbox and admit it here.
  void MaybeSteal(ServerView* view, SchedulerScratch* s)
      SCHEMBLE_EXCLUDES(mu_);
  /// Donor side of rebalancing: when this domain's buffer is deep and a
  /// peer is far less loaded, move a tail batch of buffered queries into
  /// that peer's inbox (TryPush; leftovers are re-admitted locally).
  void MaybeRebalance(SchedulerScratch* s) SCHEMBLE_EXCLUDES(mu_);

  /// Projected total service time of `queued` backlogged tasks on `model`:
  /// the plain per-task sum when batching is off (exactly the pre-batching
  /// arithmetic), the coalesced BatchLatencyModel::BacklogUs when on.
  SimTime BacklogServiceTime(int model, int64_t queued) const;
  /// Fills `batch` with up to `cap` tasks of `ex`'s model: the local run
  /// remainder starting at `start` first, then a non-blocking top-up from
  /// the executor queue (coalesce what already waits, never wait for
  /// more). Returns the new run cursor. cap == 1 reproduces the per-task
  /// path exactly.
  size_t CoalesceBatch(Executor& ex, const std::vector<Task>& run,
                       size_t start, size_t cap, TaskBatch* batch);
  /// Fills the policy's server view over this domain's executor slice,
  /// reusing `view`'s vector capacity.
  void BuildViewInto(ServerView* view) const SCHEMBLE_REQUIRES(mu_);
  /// Captures the buffered queries (arrival order) with their generations
  /// into the plan workspace, reusing its capacity.
  void SnapshotBufferLocked(PlanWorkspace* ws) const SCHEMBLE_REQUIRES(mu_);
  /// Marks `subset` assigned and removes the query from the buffer.
  /// Tasks are enqueued by the caller outside the lock.
  void CommitLocked(int index, SubsetMask subset) SCHEMBLE_REQUIRES(mu_);
  /// Claims finalization; returns false if already finalized here.
  bool ClaimFinalizeLocked(int index) SCHEMBLE_REQUIRES(mu_);
  /// Dispatches a batch of committed assignments onto this domain's
  /// executors (projected-least-loaded placement, bulk PushAll). Blocks
  /// when queues are full, hence must not hold mu_.
  void EnqueueBatch(const std::vector<Commit>& commits,
                    DispatchScratch* scratch) SCHEMBLE_EXCLUDES(mu_);
  /// Fail-stop recovery: marks the executor failed, closes-and-drains its
  /// queue into `backlog` (which already holds the worker's un-started run
  /// remainder, in-flight task included) and re-queues every affected
  /// query. Called by the failing worker, which exits afterwards.
  void FailStopExecutor(int executor_id, std::vector<Task>* backlog)
      SCHEMBLE_EXCLUDES(mu_);
  /// Re-queues the queries of `tasks` through the domain inbox: each query
  /// whose generation still matches is reset to the un-admitted state
  /// (conservation CHECKed) and pushed back into the inbox for a full
  /// re-admission through OnArrival; when the inbox is full or closed the
  /// query is re-buffered directly under mu_ instead, so it is never
  /// lost. Stale tasks (query re-queued by a sibling failure, finalized,
  /// or re-assigned since dispatch) are dropped and counted.
  void RequeueTasks(const std::vector<Task>& tasks) SCHEMBLE_EXCLUDES(mu_);
  /// Publishes this domain's load row (inbox depth, buffered count, queued
  /// tasks) into the shared DomainLoadBoard; no-op when no board is wired.
  /// Called off-lock from the admitter, scheduler and worker loops — the
  /// counters it reads are the published atomics, never guarded state.
  void PublishLoad();
  void PublishBufferedLocked() SCHEMBLE_REQUIRES(mu_) {
    buffered_count_.store(static_cast<int64_t>(buffer_.size()),
                          // relaxed-ok: advisory load hint; readers tolerate staleness by design
                          std::memory_order_relaxed);
  }

  const SyntheticTask* task_;
  ServingPolicy* policy_;
  DomainHost* host_;
  SchedulerDomainOptions options_;
  std::vector<Executor> executors_;
  /// Per-model batch latency curves (profile-calibrated, max_batch clamped
  /// by options_.max_batch). Built iff options_.batching; empty means every
  /// batch-aware code path falls back to the exact per-task arithmetic.
  std::vector<BatchLatencyModel> batch_models_;
  const QueryTrace* trace_ = nullptr;
  Clock* clock_ = nullptr;

  /// Routed-but-unadmitted trace indices: the only write path into a
  /// domain from outside (admission thread, donating peers) and the only
  /// read path out (owning admitter drains, thieves steal).
  MpmcQueue<int> inbox_;
  /// Published inbox occupancy for lock-free load reads. Pushers add AFTER
  /// the push lands and drainers subtract AFTER the pop, so the count can
  /// be transiently negative or stale; consumers treat <= 0 as empty.
  /// Wakeups never depend on it — the blocking admitter is driven by the
  /// inbox's own condition variable.
  std::atomic<int64_t> inbox_depth_{0};
  std::atomic<int64_t> buffered_count_{0};

  /// Guards policy calls, states_, buffer_, deadline_heap_. Stats
  /// collection is on: bench_runtime reports per-domain critical-section
  /// pressure. Owner tracking keeps "completion work runs off-lock" a
  /// DCHECKed invariant. Rank kDomain: the first runtime lock on every
  /// scheduling path — queue locks, the clock, and done_mu_ all order
  /// after it (and in today's runtime are never even held together with
  /// it; the rank guards the future cancellation paths).
  Mutex mu_ SCHEMBLE_ACQUIRED_AFTER(lock_ranks::server_anchor){
      LockRank::kDomain, "scheduler_domain.mu", Mutex::StatsMode::kEnabled};
  std::vector<QueryState> states_ SCHEMBLE_GUARDED_BY(mu_);
  /// Buffered query indices in arrival order (this domain's shard).
  std::vector<int> buffer_ SCHEMBLE_GUARDED_BY(mu_);
  /// Min-heap of (deadline, index) over queries admitted here (rejection
  /// mode only). Entries go stale when a query is finalized or donated;
  /// the deadline thread drops them on pop.
  std::priority_queue<std::pair<SimTime, int>,
                      std::vector<std::pair<SimTime, int>>,
                      std::greater<std::pair<SimTime, int>>>
      deadline_heap_ SCHEMBLE_GUARDED_BY(mu_);
  bool arrivals_done_ SCHEMBLE_GUARDED_BY(mu_) = false;
  bool scheduler_signal_ SCHEMBLE_GUARDED_BY(mu_) = false;
  bool shutdown_ SCHEMBLE_GUARDED_BY(mu_) = false;
  /// Bumped whenever the planning inputs change: a batch admits or buffers
  /// queries, a worker batch completes (capacity freed), a buffered query
  /// is finalized, donated, or re-queued. The scheduler compares it to the
  /// generation of its last planned snapshot and skips the whole
  /// snapshot -> PlanOnView -> commit round when unchanged.
  uint64_t view_generation_ SCHEMBLE_GUARDED_BY(mu_) = 0;

  /// Scheduler wakeup. The signal is FOLDED into critical sections other
  /// threads already hold (worker completions, admitter batches): they set
  /// scheduler_signal_ and notify after unlocking.
  CondVar scheduler_cv_;
  /// Wakes the deadline thread for newly admitted (earlier) deadlines and
  /// at shutdown.
  CondVar deadline_cv_;

  /// Telemetry (see StatsSnapshot). Scheduler-thread writers; atomics so
  /// tests/benches read them without the domain mutex.
  std::atomic<int64_t> plans_{0};
  std::atomic<int64_t> plan_commits_{0};
  std::atomic<int64_t> plans_invalidated_{0};
  std::atomic<int64_t> replans_{0};
  std::atomic<int64_t> replans_skipped_{0};
  std::atomic<int64_t> steals_{0};
  std::atomic<int64_t> stolen_{0};
  std::atomic<int64_t> rebalances_{0};
  std::atomic<int64_t> donated_{0};
  std::atomic<int64_t> failstops_{0};
  std::atomic<int64_t> requeues_{0};
  std::atomic<int64_t> stale_tasks_dropped_{0};
  std::atomic<int64_t> batches_executed_{0};
  std::atomic<int64_t> tasks_batched_{0};

  std::vector<std::thread> threads_;
  std::atomic<bool> shutdown_requested_{false};
  bool started_ = false;
};

}  // namespace schemble

#endif  // SCHEMBLE_RUNTIME_SCHEDULER_DOMAIN_H_
