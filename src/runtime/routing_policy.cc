#include "runtime/routing_policy.h"

#include <utility>

#include "common/logging.h"

namespace schemble {
namespace {

/// splitmix64 finalizer: cheap, well-mixed, and endianness-free, so hash
/// placement is identical across platforms.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// a is strictly less loaded than b, normalizing by executor count with
/// exact integer cross-multiplication (no FP, no rounding ties).
bool StrictlyLessLoaded(const DomainLoad& a, const DomainLoad& b) {
  const int64_t load_a = a.inbox + a.buffered + a.queued_tasks;
  const int64_t load_b = b.inbox + b.buffered + b.queued_tasks;
  const int64_t ex_a = a.executors > 0 ? a.executors : 1;
  const int64_t ex_b = b.executors > 0 ? b.executors : 1;
  return load_a * ex_b < load_b * ex_a;
}

}  // namespace

int HashRouting::Route(const TracedQuery& query, SimTime /*now*/,
                       std::span<const DomainLoad> domains) {
  return static_cast<int>(Mix64(static_cast<uint64_t>(query.query.id)) %
                          domains.size());
}

int RoundRobinRouting::Route(const TracedQuery& /*query*/, SimTime /*now*/,
                             std::span<const DomainLoad> domains) {
  const int pick = static_cast<int>(
      static_cast<uint64_t>(cursor_) % domains.size());
  ++cursor_;
  return pick;
}

int LeastLoadedRouting::Route(const TracedQuery& /*query*/, SimTime /*now*/,
                              std::span<const DomainLoad> domains) {
  int best = 0;
  for (size_t d = 1; d < domains.size(); ++d) {
    // Strict comparison: equal normalized loads keep the earlier (lowest
    // index) domain, making tie-breaking deterministic.
    if (StrictlyLessLoaded(domains[d], domains[static_cast<size_t>(best)])) {
      best = static_cast<int>(d);
    }
  }
  return best;
}

DeadlineClassRouting::DeadlineClassRouting(std::vector<SimTime> boundaries)
    : boundaries_(std::move(boundaries)) {
  for (size_t i = 1; i < boundaries_.size(); ++i) {
    SCHEMBLE_CHECK_GT(boundaries_[i], boundaries_[i - 1])
        << "deadline class boundaries must be strictly ascending";
  }
}

DeadlineClassRouting::DeadlineClassRouting()
    : DeadlineClassRouting(
          {100 * kMillisecond, 500 * kMillisecond, 2 * kSecond}) {}

int DeadlineClassRouting::Route(const TracedQuery& query, SimTime now,
                                std::span<const DomainLoad> domains) {
  const SimTime slack = query.deadline - now;
  size_t cls = boundaries_.size();
  for (size_t c = 0; c < boundaries_.size(); ++c) {
    if (slack < boundaries_[c]) {
      cls = c;
      break;
    }
  }
  const size_t last = domains.size() - 1;
  return static_cast<int>(cls < last ? cls : last);
}

std::unique_ptr<RoutingPolicy> MakeRoutingPolicy(RoutingPolicyKind kind) {
  switch (kind) {
    case RoutingPolicyKind::kHash:
      return std::make_unique<HashRouting>();
    case RoutingPolicyKind::kRoundRobin:
      return std::make_unique<RoundRobinRouting>();
    case RoutingPolicyKind::kLeastLoaded:
      return std::make_unique<LeastLoadedRouting>();
    case RoutingPolicyKind::kDeadlineClass:
      return std::make_unique<DeadlineClassRouting>();
  }
  SCHEMBLE_CHECK(false) << "unknown RoutingPolicyKind";
  return nullptr;
}

}  // namespace schemble
