#include "runtime/routing_policy.h"

#include <utility>

#include "common/logging.h"

namespace schemble {
namespace {

/// splitmix64 finalizer: cheap, well-mixed, and endianness-free, so hash
/// placement is identical across platforms.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// a is strictly less loaded than b, normalizing by executor count with
/// exact integer cross-multiplication (no FP, no rounding ties).
bool StrictlyLessLoaded(const DomainLoad& a, const DomainLoad& b) {
  const int64_t load_a = a.inbox + a.buffered + a.queued_tasks;
  const int64_t load_b = b.inbox + b.buffered + b.queued_tasks;
  const int64_t ex_a = a.executors > 0 ? a.executors : 1;
  const int64_t ex_b = b.executors > 0 ? b.executors : 1;
  return load_a * ex_b < load_b * ex_a;
}

}  // namespace

DomainLoadBoard::DomainLoadBoard(std::vector<int> executors_per_domain)
    : rows_(executors_per_domain.size()) {
  SCHEMBLE_CHECK(!executors_per_domain.empty())
      << "a load board needs at least one domain row";
  for (size_t d = 0; d < rows_.size(); ++d) {
    SCHEMBLE_CHECK_GT(executors_per_domain[d], 0)
        << "domain " << d << " published with no executors";
    rows_[d].executors = executors_per_domain[d];
  }
}

void DomainLoadBoard::Publish(int domain, int64_t inbox, int64_t buffered,
                              int64_t queued_tasks) {
  Row& row = rows_[static_cast<size_t>(domain)];
  // relaxed-ok: advisory load hints; the epoch release below orders the
  // fields for acquire readers, and staleness is tolerated by contract
  row.inbox.store(inbox, std::memory_order_relaxed);
  row.buffered.store(buffered, std::memory_order_relaxed);
  row.queued_tasks.store(queued_tasks, std::memory_order_relaxed);
  row.epoch.fetch_add(1, std::memory_order_release);
}

void DomainLoadBoard::ReadInto(std::vector<DomainLoad>* loads) const {
  loads->resize(rows_.size());
  for (size_t d = 0; d < rows_.size(); ++d) {
    const Row& row = rows_[d];
    DomainLoad& load = (*loads)[d];
    load.domain = static_cast<int>(d);
    // Acquire the epoch first: the fields then read at least as fresh as
    // the previous publish (individually approximate by contract).
    row.epoch.load(std::memory_order_acquire);
    // relaxed-ok: advisory load hints; readers tolerate staleness by design
    load.inbox = row.inbox.load(std::memory_order_relaxed);
    load.buffered = row.buffered.load(std::memory_order_relaxed);
    load.queued_tasks = row.queued_tasks.load(std::memory_order_relaxed);
    load.executors = row.executors;
  }
}

uint64_t DomainLoadBoard::epoch(int domain) const {
  return rows_[static_cast<size_t>(domain)].epoch.load(
      std::memory_order_acquire);
}

int HashRouting::Route(const TracedQuery& query, SimTime /*now*/,
                       std::span<const DomainLoad> domains) {
  return static_cast<int>(Mix64(static_cast<uint64_t>(query.query.id)) %
                          domains.size());
}

int RoundRobinRouting::Route(const TracedQuery& /*query*/, SimTime /*now*/,
                             std::span<const DomainLoad> domains) {
  const int pick = static_cast<int>(
      static_cast<uint64_t>(cursor_) % domains.size());
  ++cursor_;
  return pick;
}

int LeastLoadedRouting::Route(const TracedQuery& /*query*/, SimTime /*now*/,
                              std::span<const DomainLoad> domains) {
  int best = 0;
  for (size_t d = 1; d < domains.size(); ++d) {
    // Strict comparison: equal normalized loads keep the earlier (lowest
    // index) domain, making tie-breaking deterministic.
    if (StrictlyLessLoaded(domains[d], domains[static_cast<size_t>(best)])) {
      best = static_cast<int>(d);
    }
  }
  return best;
}

DeadlineClassRouting::DeadlineClassRouting(std::vector<SimTime> boundaries)
    : boundaries_(std::move(boundaries)) {
  for (size_t i = 1; i < boundaries_.size(); ++i) {
    SCHEMBLE_CHECK_GT(boundaries_[i], boundaries_[i - 1])
        << "deadline class boundaries must be strictly ascending";
  }
}

DeadlineClassRouting::DeadlineClassRouting()
    : DeadlineClassRouting(
          {100 * kMillisecond, 500 * kMillisecond, 2 * kSecond}) {}

int DeadlineClassRouting::Route(const TracedQuery& query, SimTime now,
                                std::span<const DomainLoad> domains) {
  const SimTime slack = query.deadline - now;
  size_t cls = boundaries_.size();
  for (size_t c = 0; c < boundaries_.size(); ++c) {
    if (slack < boundaries_[c]) {
      cls = c;
      break;
    }
  }
  const size_t last = domains.size() - 1;
  return static_cast<int>(cls < last ? cls : last);
}

std::unique_ptr<RoutingPolicy> MakeRoutingPolicy(RoutingPolicyKind kind) {
  switch (kind) {
    case RoutingPolicyKind::kHash:
      return std::make_unique<HashRouting>();
    case RoutingPolicyKind::kRoundRobin:
      return std::make_unique<RoundRobinRouting>();
    case RoutingPolicyKind::kLeastLoaded:
      return std::make_unique<LeastLoadedRouting>();
    case RoutingPolicyKind::kDeadlineClass:
      return std::make_unique<DeadlineClassRouting>();
  }
  SCHEMBLE_CHECK(false) << "unknown RoutingPolicyKind";
  return nullptr;
}

}  // namespace schemble
