#include "runtime/concurrent_server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <span>
#include <utility>

#include "common/hot_path.h"
#include "common/logging.h"

namespace schemble {
namespace {

/// Real-clock duration of `virtual_us` at the given speedup, clamped to at
/// least one microsecond so waits always make progress.
std::chrono::microseconds RealDuration(SimTime virtual_us, double speedup) {
  const auto us = static_cast<int64_t>(
      static_cast<double>(virtual_us) / speedup);
  return std::chrono::microseconds(std::max<int64_t>(us, 1));
}

}  // namespace

ConcurrentServer::LockStatsSnapshot ConcurrentServer::lock_stats() const {
  const Mutex::Stats stats = mu_.stats();
  return {stats.acquisitions, static_cast<double>(stats.held_ns) / 1e6};
}

ConcurrentServer::SchedulerStatsSnapshot ConcurrentServer::scheduler_stats()
    const {
  SchedulerStatsSnapshot snapshot;
  snapshot.plans = plans_.load(std::memory_order_relaxed);
  snapshot.plan_commits = plan_commits_.load(std::memory_order_relaxed);
  snapshot.plans_invalidated =
      plans_invalidated_.load(std::memory_order_relaxed);
  snapshot.replans = replans_.load(std::memory_order_relaxed);
  return snapshot;
}

ConcurrentServer::ConcurrentServer(const SyntheticTask& task,
                                   ServingPolicy* policy,
                                   ConcurrentServerOptions options)
    : task_(&task), policy_(policy), options_(std::move(options)) {
  SCHEMBLE_CHECK(policy_ != nullptr);
  SCHEMBLE_CHECK_GT(options_.speedup, 0.0);
  SCHEMBLE_CHECK_GT(options_.queue_capacity, 0);
  if (options_.executor_models.empty()) {
    for (int k = 0; k < task_->num_models(); ++k) {
      options_.executor_models.push_back(k);
    }
  }
  executors_ = std::vector<Executor>(options_.executor_models.size());
  for (size_t e = 0; e < executors_.size(); ++e) {
    const int model = options_.executor_models[e];
    SCHEMBLE_CHECK_GE(model, 0);
    SCHEMBLE_CHECK_LT(model, task_->num_models());
    executors_[e].model = model;
    executors_[e].queue = std::make_unique<MpmcQueue<Task>>(
        static_cast<size_t>(options_.queue_capacity));
  }
}

ConcurrentServer::~ConcurrentServer() {
  // Run() joins everything before returning; nothing outlives it.
  SCHEMBLE_CHECK(threads_.empty());
}

SCHEMBLE_HOT void ConcurrentServer::BuildViewInto(ServerView* view) const {
  view->now = clock_->Now();
  view->allow_rejection = options_.allow_rejection;
  // Capacities pin after the first call (fixed model/executor counts), so
  // the snapshot critical section stays allocation-free in steady state.
  view->model_exec_time.resize(  // hot-ok: capacity pinned after first call
      static_cast<size_t>(task_->num_models()));
  view->model_available_at.assign(  // hot-ok: capacity pinned at first call
      static_cast<size_t>(task_->num_models()), kSimTimeMax);
  for (int k = 0; k < task_->num_models(); ++k) {
    view->model_exec_time[k] = task_->profile(k).latency_us;
  }
  view->executors.clear();
  for (size_t e = 0; e < executors_.size(); ++e) {
    const Executor& ex = executors_[e];
    const SimTime busy_until =
        ex.busy.load(std::memory_order_acquire)
            ? ex.busy_until.load(std::memory_order_acquire)
            : view->now;
    const int64_t queued = ex.queued.load(std::memory_order_acquire);
    const SimTime available =
        std::max(busy_until, view->now) +
        queued * task_->profile(ex.model).latency_us;
    view->executors.push_back(  // hot-ok: bounded by the executor count
        {static_cast<int>(e), ex.model, available, static_cast<int>(queued)});
    view->model_available_at[ex.model] =
        std::min(view->model_available_at[ex.model], available);
  }
}

SCHEMBLE_HOT void ConcurrentServer::SnapshotBufferLocked(
    PlanWorkspace* ws) const {
  ws->buffer.clear();
  for (int index : buffer_) {
    ws->buffer.push_back(  // hot-ok: capacity tracks the buffer high-water
        {&trace_->items[static_cast<size_t>(index)], index,
         states_[static_cast<size_t>(index)].generation});
  }
}

void ConcurrentServer::CommitLocked(int index, SubsetMask subset) {
  QueryState& state = states_[index];
  SCHEMBLE_CHECK_EQ(state.assigned, 0u);
  SCHEMBLE_CHECK_NE(subset, 0u);
  state.assigned = subset;
  ++state.generation;
  if (state.buffered) {
    state.buffered = false;
    buffer_.erase(std::find(buffer_.begin(), buffer_.end(), index));
  }
}

SCHEMBLE_HOT void ConcurrentServer::EnqueueBatch(
    const std::vector<Commit>& commits, DispatchScratch* scratch) {
  SCHEMBLE_DCHECK(!mu_.HeldByCurrentThread())
      << "EnqueueBatch blocks on executor queues and must not be called "
         "inside the policy critical section";
  if (commits.empty()) return;
  // One lock round-trip for the whole batch: mirror the simulator by
  // dropping queries finalized while the commit was in flight (deadline
  // during scheduler overhead).
  scratch->live.clear();
  {
    MutexLock lock(&mu_);
    for (const Commit& commit : commits) {
      if (states_[static_cast<size_t>(commit.index)].finalized) continue;
      scratch->live.push_back(commit);  // hot-ok: bounded by batch size
    }
  }
  if (scratch->live.empty()) return;

  // Placement works against projected availability seeded once from the
  // executor atomics and advanced as the batch lands, so a multi-query
  // batch spreads across replicas exactly like the seed's per-task
  // re-reads did.
  const SimTime now = clock_->Now();
  scratch->runs.resize(executors_.size());  // hot-ok: fixed executor count
  scratch->avail.resize(executors_.size());  // hot-ok: fixed executor count
  for (size_t e = 0; e < executors_.size(); ++e) {
    scratch->runs[e].clear();
    const Executor& ex = executors_[e];
    const SimTime busy_until =
        ex.busy.load(std::memory_order_acquire)
            ? ex.busy_until.load(std::memory_order_acquire)
            : now;
    scratch->avail[e] = std::max(busy_until, now) +
                        ex.queued.load(std::memory_order_acquire) *
                            task_->profile(ex.model).latency_us;
  }
  for (const Commit& commit : scratch->live) {
    for (int k = 0; k < task_->num_models(); ++k) {
      if (!(commit.subset & (SubsetMask{1} << k))) continue;
      int best = -1;
      SimTime best_available = kSimTimeMax;
      for (size_t e = 0; e < executors_.size(); ++e) {
        if (executors_[e].model != k) continue;
        if (scratch->avail[e] < best_available) {
          best_available = scratch->avail[e];
          best = static_cast<int>(e);
        }
      }
      SCHEMBLE_CHECK_GE(best, 0) << "no executor deployed for model " << k;
      scratch->runs[static_cast<size_t>(best)].push_back(  // hot-ok: batch-bounded
          Task{commit.index});
      scratch->avail[static_cast<size_t>(best)] +=
          task_->profile(k).latency_us;
    }
  }
  for (size_t e = 0; e < executors_.size(); ++e) {
    const std::vector<Task>& run = scratch->runs[e];
    if (run.empty()) continue;
    executors_[e].queued.fetch_add(static_cast<int64_t>(run.size()),
                                   std::memory_order_acq_rel);
    const size_t pushed = executors_[e].queue->PushAll(
        std::span<const Task>(run.data(), run.size()));
    if (pushed < run.size()) {
      // Queue closed: shutdown already decided, the remainder is moot.
      executors_[e].queued.fetch_sub(
          static_cast<int64_t>(run.size() - pushed),
          std::memory_order_acq_rel);
    }
  }
}

bool ConcurrentServer::ClaimFinalizeLocked(int index) {
  QueryState& state = states_[index];
  if (state.finalized) return false;
  state.finalized = true;
  ++state.generation;
  if (state.buffered) {
    state.buffered = false;
    buffer_.erase(std::find(buffer_.begin(), buffer_.end(), index));
  }
  ++finalized_count_;
  if (finalized_count_ == static_cast<int64_t>(states_.size())) {
    done_cv_.NotifyAll();
  }
  return true;
}

void ConcurrentServer::RecordFinalized(int index, SubsetMask outputs,
                                       SimTime completion) {
  SCHEMBLE_DCHECK(!mu_.HeldByCurrentThread())
      << "aggregation and KNN fill must run outside the policy critical "
         "section";
  // One workspace per finalizing thread (workers, deadline, admission):
  // the aggregation/fill/meta-classifier chain reuses it, so steady-state
  // completions perform no heap allocations.
  thread_local CompletionWorkspace completion_ws;
  const TracedQuery& tq = trace_->items[index];
  const QueryOutcome outcome =
      EvaluateCompletion(*task_, options_.aggregator, tq, outputs, completion,
                         options_.allow_rejection, &completion_ws);
  total_.fetch_add(1, std::memory_order_relaxed);
  subset_size_counts_[static_cast<size_t>(outcome.subset_size)].fetch_add(
      1, std::memory_order_relaxed);
  const size_t segment =
      static_cast<size_t>(tq.arrival_time / options_.segment_duration);
  AtomicSegment& seg = segments_[segment];
  seg.arrivals.fetch_add(1, std::memory_order_relaxed);
  if (outcome.processed) {
    processed_.fetch_add(1, std::memory_order_relaxed);
    seg.processed.fetch_add(1, std::memory_order_relaxed);
    accuracy_sum_.fetch_add(outcome.match, std::memory_order_relaxed);
    processed_accuracy_sum_.fetch_add(outcome.match,
                                      std::memory_order_relaxed);
    seg.accuracy_sum.fetch_add(outcome.match, std::memory_order_relaxed);
    seg.latency_ms_sum.fetch_add(outcome.latency_ms,
                                 std::memory_order_relaxed);
    seg.subset_size_sum.fetch_add(outcome.subset_size,
                                  std::memory_order_relaxed);
    latency_slots_[static_cast<size_t>(index)] = outcome.latency_ms;
  }
  if (outcome.missed) {
    missed_.fetch_add(1, std::memory_order_relaxed);
    seg.missed.fetch_add(1, std::memory_order_relaxed);
  }
}

void ConcurrentServer::AdmissionLoop() {
  const SimTime processing_delay = policy_->ArrivalProcessingDelay();
  // Reused across batches; capacities pin at the largest batch.
  ServerView view;
  std::vector<Commit> to_enqueue;
  std::vector<int> rejects;
  DispatchScratch scratch;
  bool stopped = false;
  size_t i = 0;
  while (i < trace_->items.size() && !stopped) {
    clock_->SleepUntil(trace_->items[i].arrival_time + processing_delay);

    to_enqueue.clear();
    rejects.clear();
    bool notify = false;
    {
      MutexLock lock(&mu_);
      if (shutdown_) {
        stopped = true;
        break;
      }
      BuildViewInto(&view);
      // Batched admission: every arrival already due gets its decision in
      // this one critical section. In-batch assigns fold their service
      // time into the view's availability so later queries in the batch
      // see the load the earlier ones just added (what per-arrival
      // BuildView re-reads provided in the seed design).
      while (i < trace_->items.size()) {
        const TracedQuery& tq = trace_->items[i];
        if (tq.arrival_time + processing_delay > view.now) break;
        const int index = static_cast<int>(i);
        ++i;
        // Deadline beat the predictor: already finalized, nothing to admit.
        if (states_[static_cast<size_t>(index)].finalized) continue;
        const ArrivalDecision decision =
            policy_->OnArrival(tq, view);  // serialized(mu_)
        switch (decision.action) {
          case ArrivalDecision::Action::kAssign: {
            SCHEMBLE_CHECK_NE(decision.subset, 0u);
            CommitLocked(index, decision.subset);
            to_enqueue.push_back({index, decision.subset});
            for (int k = 0; k < view.num_models(); ++k) {
              if (!(decision.subset & (SubsetMask{1} << k))) continue;
              // Land the task on the projected least-loaded executor of
              // model k (where EnqueueBatch will place it) and refresh
              // the model's earliest availability.
              ExecutorView* best = nullptr;
              for (ExecutorView& ex : view.executors) {
                if (ex.model_index != k) continue;
                if (best == nullptr || ex.available_at < best->available_at) {
                  best = &ex;
                }
              }
              SCHEMBLE_CHECK(best != nullptr);
              best->available_at = std::max(best->available_at, view.now) +
                                   view.model_exec_time[k];
              ++best->queue_length;
              view.model_available_at[k] = kSimTimeMax;
              for (const ExecutorView& ex : view.executors) {
                if (ex.model_index != k) continue;
                view.model_available_at[k] =
                    std::min(view.model_available_at[k], ex.available_at);
              }
            }
            break;
          }
          case ArrivalDecision::Action::kReject:
            if (ClaimFinalizeLocked(index)) rejects.push_back(index);
            break;
          case ArrivalDecision::Action::kBuffer:
            states_[static_cast<size_t>(index)].buffered = true;
            buffer_.push_back(index);
            break;
        }
      }
      if (!buffer_.empty()) {
        scheduler_signal_ = true;
        notify = true;
      }
    }
    EnqueueBatch(to_enqueue, &scratch);
    for (const int index : rejects) {
      RecordFinalized(index, 0, clock_->Now());
    }
    if (notify) scheduler_cv_.NotifyOne();
  }
  {
    MutexLock lock(&mu_);
    arrivals_done_ = true;
    scheduler_signal_ = true;
  }
  // Unconditional wake: the scheduler must observe arrivals_done_ even
  // with an empty buffer so the force-mode stuck check can fire.
  scheduler_cv_.NotifyOne();
}

void ConcurrentServer::SchedulerLoop() {
  // The snapshot-planning workspace: the plan state (DP workspace, score
  // cache) comes from the policy; the view/buffer/commit vectors are
  // reused so steady-state snapshot sections allocate nothing.
  const bool off_lock = policy_->SupportsOffLockPlanning();
  PlanWorkspace plan_ws;
  if (off_lock) {
    plan_ws.state = policy_->CreatePlanState();
  }
  ServerView view;
  std::vector<Commit> commits;
  std::vector<const TracedQuery*> pointers;
  DispatchScratch scratch;
  while (true) {
    commits.clear();
    SimTime overhead = 0;
    bool idle_and_stuck = false;
    size_t stuck_buffered = 0;
    bool replanning = false;
    {
      MutexLock lock(&mu_);
      while (!scheduler_signal_ && !shutdown_) scheduler_cv_.Wait(mu_);
      if (shutdown_) return;
      scheduler_signal_ = false;
      if (buffer_.empty()) continue;
      BuildViewInto(&view);
      bool any_idle = false;
      for (const ExecutorView& ex : view.executors) {
        if (ex.available_at <= view.now) {
          any_idle = true;
          break;
        }
      }
      if (!any_idle) continue;
      if (off_lock) {
        // Snapshot -> plan -> validate/commit. The short critical section
        // only copies state; the policy plans against the immutable
        // snapshot with the mutex RELEASED, so arrivals and completions
        // keep flowing while the DP runs.
        SnapshotBufferLocked(&plan_ws);
        lock.Release();
        plans_.fetch_add(1, std::memory_order_relaxed);
        policy_->PlanOnView(view, &plan_ws);
        overhead = plan_ws.output.overhead_us;
        lock.Acquire();
        if (shutdown_) return;
        // Validation: a plan entry is committable only if its query's
        // generation still matches the snapshot — otherwise the deadline
        // thread or a worker finalized it (or a racing commit assigned
        // it) while we planned, and the entry is stale.
        int64_t invalidated = 0;
        for (const BufferedAssignment& assignment :
             plan_ws.output.assignments) {
          SCHEMBLE_CHECK_NE(assignment.subset, 0u);
          const SnapshotQuery* snap = nullptr;
          for (const SnapshotQuery& candidate : plan_ws.buffer) {
            if (candidate.traced->query.id == assignment.query_id) {
              snap = &candidate;
              break;
            }
          }
          SCHEMBLE_CHECK(snap != nullptr)
              << "plan references a query outside its snapshot";
          const QueryState& state =
              states_[static_cast<size_t>(snap->index)];
          if (state.generation != snap->generation) {
            ++invalidated;
            continue;
          }
          SCHEMBLE_DCHECK(!state.finalized && state.assigned == 0u)
              << "generation matched but the query moved on";
          CommitLocked(snap->index, assignment.subset);
          commits.push_back({snap->index, assignment.subset});
        }
        plan_commits_.fetch_add(static_cast<int64_t>(commits.size()),
                                std::memory_order_relaxed);
        if (invalidated > 0) {
          plans_invalidated_.fetch_add(invalidated,
                                       std::memory_order_relaxed);
          // Part of the plan went stale: immediately re-plan whatever is
          // still buffered against fresh state (self-signal).
          if (!buffer_.empty()) {
            replans_.fetch_add(1, std::memory_order_relaxed);
            scheduler_signal_ = true;
            replanning = true;
          }
        }
      } else {
        // Compatibility path for stateful policies (the baselines): plan
        // under the mutex, exactly the seed behaviour. No validation is
        // needed — nothing can move while the lock is held.
        pointers.clear();
        for (int index : buffer_) {
          pointers.push_back(&trace_->items[static_cast<size_t>(index)]);
        }
        const PolicyOutput output =
            policy_->OnIdle(view, pointers);  // serialized(mu_)
        for (const BufferedAssignment& assignment : output.assignments) {
          auto it = id_to_index_.find(assignment.query_id);
          SCHEMBLE_CHECK(it != id_to_index_.end());
          SCHEMBLE_CHECK_NE(assignment.subset, 0u);
          CommitLocked(it->second, assignment.subset);
          commits.push_back({it->second, assignment.subset});
        }
        overhead = output.overhead_us;
      }
      idle_and_stuck = commits.empty() && arrivals_done_ && !buffer_.empty();
      // Snapshot for the off-lock error log below: buffer_ is guarded and
      // workers may finalize (and un-buffer) queries concurrently.
      stuck_buffered = buffer_.size();
    }
    if (!commits.empty()) {
      // The simulator charges scheduling overhead by delaying the
      // dispatched tasks' start; here the scheduler thread pays it in
      // (scaled) wall-clock time before enqueueing.
      if (overhead > 0) clock_->SleepFor(overhead);
      EnqueueBatch(commits, &scratch);
    } else if (idle_and_stuck && !replanning && !options_.allow_rejection) {
      // Force mode has no deadline thread to finalize abandoned queries;
      // a policy that leaves the buffer untouched forever would hang the
      // run. The simulator CHECK-fails the equivalent state at drain time.
      SCHEMBLE_LOG(kError) << "policy left " << stuck_buffered
                          << " buffered queries with idle executors in "
                             "force mode";
    }
  }
}

void ConcurrentServer::DeadlineLoop() {
  // Deadlines are known up front; walk them in order, sleeping on the
  // shared mutex's condition variable so shutdown can interrupt the wait.
  std::vector<std::pair<SimTime, int>> deadlines;
  deadlines.reserve(trace_->items.size());
  for (size_t i = 0; i < trace_->items.size(); ++i) {
    deadlines.emplace_back(trace_->items[i].deadline, static_cast<int>(i));
  }
  std::sort(deadlines.begin(), deadlines.end());

  size_t next = 0;
  MutexLock lock(&mu_);
  while (!shutdown_ && next < deadlines.size()) {
    const auto [when, index] = deadlines[next];
    const SimTime now = clock_->Now();
    if (now < when) {
      deadline_cv_.WaitFor(mu_, RealDuration(when - now, options_.speedup));
      continue;
    }
    ++next;
    if (!ClaimFinalizeLocked(index)) continue;
    const QueryState& state = states_[index];
    const SubsetMask outputs = state.done;
    const SimTime completion =
        outputs != 0 ? state.last_done_time : clock_->Now();
    lock.Release();
    RecordFinalized(index, outputs, completion);
    lock.Acquire();
  }
}

void ConcurrentServer::WorkerLoop(int executor_id) {
  // Longest task run drained from the queue per lock round-trip. Tasks in
  // the local run still count in `queued` (each is decremented at its own
  // service start), so load estimates keep seeing them.
  constexpr size_t kRunLength = 16;
  Executor& ex = executors_[executor_id];
  const ModelProfile& profile = task_->profile(ex.model);
  Rng rng(HashSeed("worker", options_.seed + executor_id));
  std::vector<Task> run;
  run.reserve(kRunLength);
  while (true) {
    run.clear();
    if (ex.queue->PopN(&run, kRunLength) == 0) {
      return;  // closed and drained: shutdown
    }
    for (const Task& task : run) {
      ex.queued.fetch_sub(1, std::memory_order_acq_rel);

      const double factor =
          std::max(0.2, 1.0 + profile.latency_jitter * rng.Normal());
      const SimTime service = static_cast<SimTime>(
          static_cast<double>(profile.latency_us) * factor);
      const SimTime start = clock_->Now();
      ex.busy_until.store(start + service, std::memory_order_release);
      ex.busy.store(true, std::memory_order_release);
      if (options_.service_mode ==
          ConcurrentServerOptions::ServiceMode::kSleep) {
        clock_->SleepUntil(start + service);
      } else {
        // Host-bound inference: burn CPU until the service interval
        // passes.
        volatile double sink = 0.0;
        while (clock_->Now() < start + service) {
          double acc = sink;
          for (int it = 0; it < 256; ++it) acc += std::sqrt(acc + it);
          sink = acc;
        }
      }
      ex.busy.store(false, std::memory_order_release);

      const int index = task.query_index;
      bool claimed = false;
      bool notify = false;
      SubsetMask outputs = 0;
      SimTime completion = 0;
      {
        MutexLock lock(&mu_);
        QueryState& state = states_[static_cast<size_t>(index)];
        if (!state.finalized) {
          state.done |= SubsetMask{1} << ex.model;
          state.last_done_time = clock_->Now();
          if (state.done == state.assigned) {
            claimed = ClaimFinalizeLocked(index);
            outputs = state.done;
            completion = state.last_done_time;
          }
        }
        // Scheduler wakeup folded into the completion critical section:
        // capacity just freed up, so if anything is buffered the planner
        // should look at it. No separate notify lock round-trip.
        if (!buffer_.empty()) {
          scheduler_signal_ = true;
          notify = true;
        }
      }
      if (claimed) RecordFinalized(index, outputs, completion);
      if (notify) scheduler_cv_.NotifyOne();
    }
  }
}

ServingMetrics ConcurrentServer::Run(const QueryTrace& trace) {
  SCHEMBLE_CHECK(!ran_) << "ConcurrentServer::Run is one-shot";
  ran_ = true;
  trace_ = &trace;
  const size_t n = trace.items.size();
  {
    MutexLock lock(&mu_);
    states_.assign(n, QueryState{});
    buffer_.clear();
    finalized_count_ = 0;
  }
  id_to_index_.clear();
  for (size_t i = 0; i < n; ++i) {
    id_to_index_[trace.items[i].query.id] = static_cast<int>(i);
  }
  SimTime horizon = 0;
  for (const TracedQuery& tq : trace.items) {
    horizon = std::max(horizon, tq.arrival_time);
  }
  segments_ = std::vector<AtomicSegment>(
      static_cast<size_t>(horizon / options_.segment_duration) + 1);
  subset_size_counts_ = std::vector<std::atomic<int64_t>>(
      static_cast<size_t>(task_->num_models()) + 1);
  latency_slots_.assign(n, std::numeric_limits<double>::quiet_NaN());

  clock_ = std::make_unique<SteadyClock>(options_.speedup);
  threads_.emplace_back([this] { AdmissionLoop(); });
  threads_.emplace_back([this] { SchedulerLoop(); });
  if (options_.allow_rejection) {
    threads_.emplace_back([this] { DeadlineLoop(); });
  }
  for (int e = 0; e < num_executors(); ++e) {
    threads_.emplace_back([this, e] { WorkerLoop(e); });
  }

  {
    MutexLock lock(&mu_);
    while (finalized_count_ != static_cast<int64_t>(states_.size())) {
      done_cv_.Wait(mu_);
    }
    shutdown_ = true;
  }
  scheduler_cv_.NotifyAll();
  deadline_cv_.NotifyAll();
  for (Executor& ex : executors_) ex.queue->Close();
  for (std::thread& t : threads_) t.join();
  threads_.clear();

  ServingMetrics metrics;
  metrics.total = total_.load();
  metrics.processed = processed_.load();
  metrics.missed = missed_.load();
  metrics.accuracy_sum = accuracy_sum_.load();
  metrics.processed_accuracy_sum = processed_accuracy_sum_.load();
  size_t max_size = 0;
  for (size_t s = 0; s < subset_size_counts_.size(); ++s) {
    if (subset_size_counts_[s].load() > 0) max_size = s;
  }
  metrics.subset_size_counts.resize(max_size + 1);
  for (size_t s = 0; s <= max_size; ++s) {
    metrics.subset_size_counts[s] = subset_size_counts_[s].load();
  }
  metrics.latency_ms.Reserve(n);
  for (double latency : latency_slots_) {
    if (!std::isnan(latency)) metrics.latency_ms.Add(latency);
  }
  metrics.segments.resize(segments_.size());
  for (size_t s = 0; s < segments_.size(); ++s) {
    SegmentStats& seg = metrics.segments[s];
    seg.arrivals = segments_[s].arrivals.load();
    seg.processed = segments_[s].processed.load();
    seg.missed = segments_[s].missed.load();
    seg.subset_size_sum = segments_[s].subset_size_sum.load();
    seg.accuracy_sum = segments_[s].accuracy_sum.load();
    seg.latency_ms_sum = segments_[s].latency_ms_sum.load();
  }
  return metrics;
}

}  // namespace schemble
