#include "runtime/concurrent_server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.h"

namespace schemble {
namespace {

/// Real-clock duration of `virtual_us` at the given speedup, clamped to at
/// least one microsecond so waits always make progress.
std::chrono::microseconds RealDuration(SimTime virtual_us, double speedup) {
  const auto us = static_cast<int64_t>(
      static_cast<double>(virtual_us) / speedup);
  return std::chrono::microseconds(std::max<int64_t>(us, 1));
}

}  // namespace

ConcurrentServer::LockStatsSnapshot ConcurrentServer::lock_stats() const {
  const Mutex::Stats stats = mu_.stats();
  return {stats.acquisitions, static_cast<double>(stats.held_ns) / 1e6};
}

ConcurrentServer::ConcurrentServer(const SyntheticTask& task,
                                   ServingPolicy* policy,
                                   ConcurrentServerOptions options)
    : task_(&task), policy_(policy), options_(std::move(options)) {
  SCHEMBLE_CHECK(policy_ != nullptr);
  SCHEMBLE_CHECK_GT(options_.speedup, 0.0);
  SCHEMBLE_CHECK_GT(options_.queue_capacity, 0);
  if (options_.executor_models.empty()) {
    for (int k = 0; k < task_->num_models(); ++k) {
      options_.executor_models.push_back(k);
    }
  }
  executors_ = std::vector<Executor>(options_.executor_models.size());
  for (size_t e = 0; e < executors_.size(); ++e) {
    const int model = options_.executor_models[e];
    SCHEMBLE_CHECK_GE(model, 0);
    SCHEMBLE_CHECK_LT(model, task_->num_models());
    executors_[e].model = model;
    executors_[e].queue = std::make_unique<MpmcQueue<Task>>(
        static_cast<size_t>(options_.queue_capacity));
  }
}

ConcurrentServer::~ConcurrentServer() {
  // Run() joins everything before returning; nothing outlives it.
  SCHEMBLE_CHECK(threads_.empty());
}

ServerView ConcurrentServer::BuildView() const {
  ServerView view;
  view.now = clock_->Now();
  view.allow_rejection = options_.allow_rejection;
  view.model_exec_time.resize(task_->num_models());
  view.model_available_at.assign(task_->num_models(), kSimTimeMax);
  for (int k = 0; k < task_->num_models(); ++k) {
    view.model_exec_time[k] = task_->profile(k).latency_us;
  }
  for (size_t e = 0; e < executors_.size(); ++e) {
    const Executor& ex = executors_[e];
    const SimTime busy_until =
        ex.busy.load(std::memory_order_acquire)
            ? ex.busy_until.load(std::memory_order_acquire)
            : view.now;
    const int64_t queued = ex.queued.load(std::memory_order_acquire);
    const SimTime available =
        std::max(busy_until, view.now) +
        queued * task_->profile(ex.model).latency_us;
    view.executors.push_back({static_cast<int>(e), ex.model, available,
                              static_cast<int>(queued)});
    view.model_available_at[ex.model] =
        std::min(view.model_available_at[ex.model], available);
  }
  return view;
}

void ConcurrentServer::CommitLocked(int index, SubsetMask subset) {
  QueryState& state = states_[index];
  SCHEMBLE_CHECK_EQ(state.assigned, 0u);
  SCHEMBLE_CHECK_NE(subset, 0u);
  state.assigned = subset;
  if (state.buffered) {
    state.buffered = false;
    buffer_.erase(std::find(buffer_.begin(), buffer_.end(), index));
  }
}

void ConcurrentServer::EnqueueTasks(int index, SubsetMask subset) {
  SCHEMBLE_DCHECK(!mu_.HeldByCurrentThread())
      << "EnqueueTasks blocks on executor queues and must not be called "
         "inside the policy critical section";
  {
    // Mirror the simulator: tasks for queries finalized while the commit
    // was in flight (deadline during scheduler overhead) are dropped.
    MutexLock lock(&mu_);
    if (states_[index].finalized) return;
  }
  const SimTime now = clock_->Now();
  for (int k = 0; k < task_->num_models(); ++k) {
    if (!(subset & (SubsetMask{1} << k))) continue;
    int best = -1;
    SimTime best_available = kSimTimeMax;
    for (size_t e = 0; e < executors_.size(); ++e) {
      const Executor& ex = executors_[e];
      if (ex.model != k) continue;
      const SimTime busy_until =
          ex.busy.load(std::memory_order_acquire)
              ? ex.busy_until.load(std::memory_order_acquire)
              : now;
      const SimTime available =
          std::max(busy_until, now) +
          ex.queued.load(std::memory_order_acquire) *
              task_->profile(k).latency_us;
      if (available < best_available) {
        best_available = available;
        best = static_cast<int>(e);
      }
    }
    SCHEMBLE_CHECK_GE(best, 0) << "no executor deployed for model " << k;
    executors_[best].queued.fetch_add(1, std::memory_order_acq_rel);
    if (!executors_[best].queue->Push(Task{index})) {
      // Queue closed: shutdown already decided, the task is moot.
      executors_[best].queued.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
}

bool ConcurrentServer::ClaimFinalizeLocked(int index) {
  QueryState& state = states_[index];
  if (state.finalized) return false;
  state.finalized = true;
  if (state.buffered) {
    state.buffered = false;
    buffer_.erase(std::find(buffer_.begin(), buffer_.end(), index));
  }
  ++finalized_count_;
  if (finalized_count_ == static_cast<int64_t>(states_.size())) {
    done_cv_.NotifyAll();
  }
  return true;
}

void ConcurrentServer::RecordFinalized(int index, SubsetMask outputs,
                                       SimTime completion) {
  SCHEMBLE_DCHECK(!mu_.HeldByCurrentThread())
      << "aggregation and KNN fill must run outside the policy critical "
         "section";
  // One workspace per finalizing thread (workers, deadline, admission):
  // the aggregation/fill/meta-classifier chain reuses it, so steady-state
  // completions perform no heap allocations.
  thread_local CompletionWorkspace completion_ws;
  const TracedQuery& tq = trace_->items[index];
  const QueryOutcome outcome =
      EvaluateCompletion(*task_, options_.aggregator, tq, outputs, completion,
                         options_.allow_rejection, &completion_ws);
  total_.fetch_add(1, std::memory_order_relaxed);
  subset_size_counts_[static_cast<size_t>(outcome.subset_size)].fetch_add(
      1, std::memory_order_relaxed);
  const size_t segment =
      static_cast<size_t>(tq.arrival_time / options_.segment_duration);
  AtomicSegment& seg = segments_[segment];
  seg.arrivals.fetch_add(1, std::memory_order_relaxed);
  if (outcome.processed) {
    processed_.fetch_add(1, std::memory_order_relaxed);
    seg.processed.fetch_add(1, std::memory_order_relaxed);
    accuracy_sum_.fetch_add(outcome.match, std::memory_order_relaxed);
    processed_accuracy_sum_.fetch_add(outcome.match,
                                      std::memory_order_relaxed);
    seg.accuracy_sum.fetch_add(outcome.match, std::memory_order_relaxed);
    seg.latency_ms_sum.fetch_add(outcome.latency_ms,
                                 std::memory_order_relaxed);
    seg.subset_size_sum.fetch_add(outcome.subset_size,
                                  std::memory_order_relaxed);
    latency_slots_[static_cast<size_t>(index)] = outcome.latency_ms;
  }
  if (outcome.missed) {
    missed_.fetch_add(1, std::memory_order_relaxed);
    seg.missed.fetch_add(1, std::memory_order_relaxed);
  }
}

void ConcurrentServer::NotifyScheduler() {
  {
    MutexLock lock(&mu_);
    scheduler_signal_ = true;
  }
  scheduler_cv_.NotifyOne();
}

void ConcurrentServer::AdmissionLoop() {
  const SimTime processing_delay = policy_->ArrivalProcessingDelay();
  for (size_t i = 0; i < trace_->items.size(); ++i) {
    const int index = static_cast<int>(i);
    const TracedQuery& tq = trace_->items[i];
    clock_->SleepUntil(tq.arrival_time + processing_delay);

    std::pair<int, SubsetMask> to_enqueue{-1, 0};
    int reject_index = -1;
    {
      MutexLock lock(&mu_);
      if (shutdown_) break;
      if (states_[index].finalized) continue;  // deadline beat the predictor
      const ServerView view = BuildView();
      const ArrivalDecision decision = policy_->OnArrival(tq, view);
      switch (decision.action) {
        case ArrivalDecision::Action::kAssign:
          SCHEMBLE_CHECK_NE(decision.subset, 0u);
          CommitLocked(index, decision.subset);
          to_enqueue = {index, decision.subset};
          break;
        case ArrivalDecision::Action::kReject:
          if (ClaimFinalizeLocked(index)) reject_index = index;
          break;
        case ArrivalDecision::Action::kBuffer:
          states_[index].buffered = true;
          buffer_.push_back(index);
          break;
      }
    }
    if (to_enqueue.first >= 0) {
      EnqueueTasks(to_enqueue.first, to_enqueue.second);
    }
    if (reject_index >= 0) {
      RecordFinalized(reject_index, 0, clock_->Now());
    }
    NotifyScheduler();
  }
  {
    MutexLock lock(&mu_);
    arrivals_done_ = true;
  }
  NotifyScheduler();
}

void ConcurrentServer::SchedulerLoop() {
  while (true) {
    std::vector<std::pair<int, SubsetMask>> commits;
    SimTime overhead = 0;
    bool idle_and_stuck = false;
    size_t stuck_buffered = 0;
    {
      MutexLock lock(&mu_);
      while (!scheduler_signal_ && !shutdown_) scheduler_cv_.Wait(mu_);
      if (shutdown_) return;
      scheduler_signal_ = false;
      if (buffer_.empty()) continue;
      const ServerView view = BuildView();
      bool any_idle = false;
      for (const ExecutorView& ex : view.executors) {
        if (ex.available_at <= view.now) {
          any_idle = true;
          break;
        }
      }
      if (!any_idle) continue;
      std::vector<const TracedQuery*> pointers;
      pointers.reserve(buffer_.size());
      for (int index : buffer_) pointers.push_back(&trace_->items[index]);
      const PolicyOutput output = policy_->OnIdle(view, pointers);
      for (const BufferedAssignment& assignment : output.assignments) {
        auto it = id_to_index_.find(assignment.query_id);
        SCHEMBLE_CHECK(it != id_to_index_.end());
        SCHEMBLE_CHECK_NE(assignment.subset, 0u);
        CommitLocked(it->second, assignment.subset);
        commits.emplace_back(it->second, assignment.subset);
      }
      overhead = output.overhead_us;
      idle_and_stuck = commits.empty() && arrivals_done_ && !buffer_.empty();
      // Snapshot for the off-lock error log below: buffer_ is guarded and
      // workers may finalize (and un-buffer) queries concurrently.
      stuck_buffered = buffer_.size();
    }
    if (!commits.empty()) {
      // The simulator charges scheduling overhead by delaying the
      // dispatched tasks' start; here the scheduler thread pays it in
      // (scaled) wall-clock time before enqueueing.
      if (overhead > 0) clock_->SleepFor(overhead);
      for (const auto& [index, subset] : commits) {
        EnqueueTasks(index, subset);
      }
    } else if (idle_and_stuck && !options_.allow_rejection) {
      // Force mode has no deadline thread to finalize abandoned queries;
      // a policy that leaves the buffer untouched forever would hang the
      // run. The simulator CHECK-fails the equivalent state at drain time.
      SCHEMBLE_LOG(kError) << "policy left " << stuck_buffered
                          << " buffered queries with idle executors in "
                             "force mode";
    }
  }
}

void ConcurrentServer::DeadlineLoop() {
  // Deadlines are known up front; walk them in order, sleeping on the
  // shared mutex's condition variable so shutdown can interrupt the wait.
  std::vector<std::pair<SimTime, int>> deadlines;
  deadlines.reserve(trace_->items.size());
  for (size_t i = 0; i < trace_->items.size(); ++i) {
    deadlines.emplace_back(trace_->items[i].deadline, static_cast<int>(i));
  }
  std::sort(deadlines.begin(), deadlines.end());

  size_t next = 0;
  MutexLock lock(&mu_);
  while (!shutdown_ && next < deadlines.size()) {
    const auto [when, index] = deadlines[next];
    const SimTime now = clock_->Now();
    if (now < when) {
      deadline_cv_.WaitFor(mu_, RealDuration(when - now, options_.speedup));
      continue;
    }
    ++next;
    if (!ClaimFinalizeLocked(index)) continue;
    const QueryState& state = states_[index];
    const SubsetMask outputs = state.done;
    const SimTime completion =
        outputs != 0 ? state.last_done_time : clock_->Now();
    lock.Release();
    RecordFinalized(index, outputs, completion);
    lock.Acquire();
  }
}

void ConcurrentServer::WorkerLoop(int executor_id) {
  Executor& ex = executors_[executor_id];
  const ModelProfile& profile = task_->profile(ex.model);
  Rng rng(HashSeed("worker", options_.seed + executor_id));
  while (true) {
    std::optional<Task> task = ex.queue->Pop();
    if (!task.has_value()) return;  // closed and drained: shutdown
    ex.queued.fetch_sub(1, std::memory_order_acq_rel);

    const double factor =
        std::max(0.2, 1.0 + profile.latency_jitter * rng.Normal());
    const SimTime service = static_cast<SimTime>(
        static_cast<double>(profile.latency_us) * factor);
    const SimTime start = clock_->Now();
    ex.busy_until.store(start + service, std::memory_order_release);
    ex.busy.store(true, std::memory_order_release);
    if (options_.service_mode ==
        ConcurrentServerOptions::ServiceMode::kSleep) {
      clock_->SleepUntil(start + service);
    } else {
      // Host-bound inference: burn CPU until the service interval passes.
      volatile double sink = 0.0;
      while (clock_->Now() < start + service) {
        double acc = sink;
        for (int it = 0; it < 256; ++it) acc += std::sqrt(acc + it);
        sink = acc;
      }
    }
    ex.busy.store(false, std::memory_order_release);

    const int index = task->query_index;
    bool claimed = false;
    SubsetMask outputs = 0;
    SimTime completion = 0;
    {
      MutexLock lock(&mu_);
      QueryState& state = states_[index];
      if (!state.finalized) {
        state.done |= SubsetMask{1} << ex.model;
        state.last_done_time = clock_->Now();
        if (state.done == state.assigned) {
          claimed = ClaimFinalizeLocked(index);
          outputs = state.done;
          completion = state.last_done_time;
        }
      }
    }
    if (claimed) RecordFinalized(index, outputs, completion);
    NotifyScheduler();
  }
}

ServingMetrics ConcurrentServer::Run(const QueryTrace& trace) {
  SCHEMBLE_CHECK(!ran_) << "ConcurrentServer::Run is one-shot";
  ran_ = true;
  trace_ = &trace;
  const size_t n = trace.items.size();
  {
    MutexLock lock(&mu_);
    states_.assign(n, QueryState{});
    buffer_.clear();
    finalized_count_ = 0;
  }
  id_to_index_.clear();
  for (size_t i = 0; i < n; ++i) {
    id_to_index_[trace.items[i].query.id] = static_cast<int>(i);
  }
  SimTime horizon = 0;
  for (const TracedQuery& tq : trace.items) {
    horizon = std::max(horizon, tq.arrival_time);
  }
  segments_ = std::vector<AtomicSegment>(
      static_cast<size_t>(horizon / options_.segment_duration) + 1);
  subset_size_counts_ = std::vector<std::atomic<int64_t>>(
      static_cast<size_t>(task_->num_models()) + 1);
  latency_slots_.assign(n, std::numeric_limits<double>::quiet_NaN());

  clock_ = std::make_unique<SteadyClock>(options_.speedup);
  threads_.emplace_back([this] { AdmissionLoop(); });
  threads_.emplace_back([this] { SchedulerLoop(); });
  if (options_.allow_rejection) {
    threads_.emplace_back([this] { DeadlineLoop(); });
  }
  for (int e = 0; e < num_executors(); ++e) {
    threads_.emplace_back([this, e] { WorkerLoop(e); });
  }

  {
    MutexLock lock(&mu_);
    while (finalized_count_ != static_cast<int64_t>(states_.size())) {
      done_cv_.Wait(mu_);
    }
    shutdown_ = true;
  }
  scheduler_cv_.NotifyAll();
  deadline_cv_.NotifyAll();
  for (Executor& ex : executors_) ex.queue->Close();
  for (std::thread& t : threads_) t.join();
  threads_.clear();

  ServingMetrics metrics;
  metrics.total = total_.load();
  metrics.processed = processed_.load();
  metrics.missed = missed_.load();
  metrics.accuracy_sum = accuracy_sum_.load();
  metrics.processed_accuracy_sum = processed_accuracy_sum_.load();
  size_t max_size = 0;
  for (size_t s = 0; s < subset_size_counts_.size(); ++s) {
    if (subset_size_counts_[s].load() > 0) max_size = s;
  }
  metrics.subset_size_counts.resize(max_size + 1);
  for (size_t s = 0; s <= max_size; ++s) {
    metrics.subset_size_counts[s] = subset_size_counts_[s].load();
  }
  metrics.latency_ms.Reserve(n);
  for (double latency : latency_slots_) {
    if (!std::isnan(latency)) metrics.latency_ms.Add(latency);
  }
  metrics.segments.resize(segments_.size());
  for (size_t s = 0; s < segments_.size(); ++s) {
    SegmentStats& seg = metrics.segments[s];
    seg.arrivals = segments_[s].arrivals.load();
    seg.processed = segments_[s].processed.load();
    seg.missed = segments_[s].missed.load();
    seg.subset_size_sum = segments_[s].subset_size_sum.load();
    seg.accuracy_sum = segments_[s].accuracy_sum.load();
    seg.latency_ms_sum = segments_[s].latency_ms_sum.load();
  }
  return metrics;
}

}  // namespace schemble
