#include "runtime/concurrent_server.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <utility>

#include "common/logging.h"
#include "serving/completion.h"

namespace schemble {

ConcurrentServer::ConcurrentServer(const SyntheticTask& task,
                                   ServingPolicy* policy,
                                   ConcurrentServerOptions options)
    : ConcurrentServer(task, std::vector<ServingPolicy*>{policy},
                       std::move(options)) {}

ConcurrentServer::ConcurrentServer(const SyntheticTask& task,
                                   std::vector<ServingPolicy*> policies,
                                   ConcurrentServerOptions options)
    : task_(&task),
      policies_(std::move(policies)),
      options_(std::move(options)) {
  SCHEMBLE_CHECK_GT(options_.num_domains, 0);
  SCHEMBLE_CHECK_EQ(policies_.size(),
                    static_cast<size_t>(options_.num_domains))
      << "one policy instance per scheduler domain (stateful policy calls "
         "are serialized per domain)";
  for (ServingPolicy* policy : policies_) {
    SCHEMBLE_CHECK(policy != nullptr);
    SCHEMBLE_CHECK_EQ(policy->ArrivalProcessingDelay(),
                      policies_[0]->ArrivalProcessingDelay())
        << "domain policies must agree on ArrivalProcessingDelay";
  }
  SCHEMBLE_CHECK_GT(options_.speedup, 0.0);
  SCHEMBLE_CHECK_GT(options_.queue_capacity, 0);
  SCHEMBLE_CHECK_GT(options_.inbox_capacity, 0);
  SCHEMBLE_CHECK_GT(options_.num_arrival_threads, 0)
      << "at least one arrival pump is required";
  SCHEMBLE_CHECK_LE(options_.num_arrival_threads, 64)
      << "arrival pump count capped at 64 (one OS thread each)";
  SCHEMBLE_CHECK(options_.arrival_pump_weights.empty() ||
                 options_.arrival_pump_weights.size() ==
                     static_cast<size_t>(options_.num_arrival_threads))
      << "arrival_pump_weights must be empty or have one entry per pump";
  for (const int w : options_.arrival_pump_weights) {
    SCHEMBLE_CHECK_GT(w, 0) << "arrival pump weights must be positive";
  }
  SCHEMBLE_CHECK(options_.router == nullptr ||
                 options_.num_arrival_threads == 1)
      << "a custom router is single-caller by contract; built-in routing "
         "kinds get one instance per arrival pump";
  if (options_.executor_models.empty()) {
    for (int k = 0; k < task_->num_models(); ++k) {
      options_.executor_models.push_back(k);
    }
  }
  SCHEMBLE_CHECK(options_.executor_faults.empty() ||
                 options_.executor_faults.size() ==
                     options_.executor_models.size())
      << "executor_faults must be empty or match the executor count";

  // Partition the executor pool: each model's replicas are dealt
  // round-robin across domains, so replica counts that are multiples of
  // num_domains split evenly and every domain can serve whole subsets.
  const int n_domains = options_.num_domains;
  std::vector<std::vector<int>> domain_models(n_domains);
  std::vector<std::vector<int>> domain_ids(n_domains);
  std::vector<std::vector<ExecutorFault>> domain_faults(n_domains);
  std::vector<int> next_domain(static_cast<size_t>(task_->num_models()), 0);
  std::vector<int> model_replicas(static_cast<size_t>(task_->num_models()),
                                  0);
  for (size_t e = 0; e < options_.executor_models.size(); ++e) {
    const int model = options_.executor_models[e];
    SCHEMBLE_CHECK_GE(model, 0);
    SCHEMBLE_CHECK_LT(model, task_->num_models());
    const int d = next_domain[static_cast<size_t>(model)];
    next_domain[static_cast<size_t>(model)] = (d + 1) % n_domains;
    ++model_replicas[static_cast<size_t>(model)];
    domain_models[d].push_back(model);
    domain_ids[d].push_back(static_cast<int>(e));
    // Faults follow their executor into its domain slice.
    if (!options_.executor_faults.empty()) {
      domain_faults[d].push_back(options_.executor_faults[e]);
    }
  }
  for (int k = 0; k < task_->num_models(); ++k) {
    if (model_replicas[static_cast<size_t>(k)] == 0) continue;
    SCHEMBLE_CHECK_GE(model_replicas[static_cast<size_t>(k)], n_domains)
        << "model " << k << " has fewer replicas than scheduler domains; "
        << "every domain must be able to serve every deployed model";
  }

  if (n_domains > 1) {
    if (options_.router != nullptr) {
      router_ = options_.router;
    } else {
      // RoutingPolicy instances are single-caller by contract, so each
      // pump routes through its own instance — no cross-pump
      // synchronization exists at all for hash/round-robin, and the
      // load-aware kinds read the shared board lock-free.
      for (int p = 0; p < options_.num_arrival_threads; ++p) {
        pump_routers_.push_back(MakeRoutingPolicy(options_.routing));
      }
    }
    std::vector<int> executors_per_domain(static_cast<size_t>(n_domains));
    for (int d = 0; d < n_domains; ++d) {
      executors_per_domain[static_cast<size_t>(d)] =
          static_cast<int>(domain_models[static_cast<size_t>(d)].size());
    }
    load_board_ =
        std::make_unique<DomainLoadBoard>(std::move(executors_per_domain));
  }

  for (int d = 0; d < n_domains; ++d) {
    SchedulerDomainOptions dom;
    dom.domain_id = d;
    dom.num_domains = n_domains;
    dom.executor_models = std::move(domain_models[d]);
    dom.executor_ids = std::move(domain_ids[d]);
    dom.faults = std::move(domain_faults[d]);
    dom.allow_rejection = options_.allow_rejection;
    dom.seed = options_.seed;
    dom.speedup = options_.speedup;
    dom.queue_capacity = options_.queue_capacity;
    dom.inbox_capacity = options_.inbox_capacity;
    dom.service_mode = options_.service_mode;
    dom.steal_batch = options_.steal_batch;
    dom.rebalance_period = options_.rebalance_period;
    dom.batching = options_.batching;
    dom.max_batch = options_.max_batch;
    dom.load_board = load_board_.get();
    // The explicit cast happens here, inside a member, because the
    // DomainHost base is private (domains are the only callers).
    domains_.push_back(std::make_unique<SchedulerDomain>(
        *task_, policies_[static_cast<size_t>(d)],
        static_cast<DomainHost*>(this), std::move(dom)));
  }
}

ConcurrentServer::~ConcurrentServer() {
  // Run() joins everything before returning; nothing outlives it.
  SCHEMBLE_CHECK(threads_.empty());
}

int ConcurrentServer::num_executors() const {
  int total = 0;
  for (const auto& domain : domains_) total += domain->num_executors();
  return total;
}

ConcurrentServer::LockStatsSnapshot ConcurrentServer::lock_stats() const {
  LockStatsSnapshot snapshot;
  for (const auto& domain : domains_) {
    const Mutex::Stats stats = domain->lock_stats();
    snapshot.acquisitions += stats.acquisitions;
    snapshot.held_ms += static_cast<double>(stats.held_ns) / 1e6;
  }
  return snapshot;
}

ConcurrentServer::SchedulerStatsSnapshot ConcurrentServer::scheduler_stats(
    int domain) const {
  const SchedulerDomain::StatsSnapshot s =
      domains_[static_cast<size_t>(domain)]->stats();
  SchedulerStatsSnapshot snapshot;
  snapshot.plans = s.plans;
  snapshot.plan_commits = s.plan_commits;
  snapshot.plans_invalidated = s.plans_invalidated;
  snapshot.replans = s.replans;
  snapshot.replans_skipped = s.replans_skipped;
  snapshot.steals = s.steals;
  snapshot.stolen = s.stolen;
  snapshot.rebalances = s.rebalances;
  snapshot.donated = s.donated;
  snapshot.failstops = s.failstops;
  snapshot.requeues = s.requeues;
  snapshot.stale_tasks_dropped = s.stale_tasks_dropped;
  snapshot.batches_executed = s.batches_executed;
  snapshot.tasks_batched = s.tasks_batched;
  return snapshot;
}

ConcurrentServer::SchedulerStatsSnapshot ConcurrentServer::scheduler_stats()
    const {
  SchedulerStatsSnapshot total;
  for (int d = 0; d < num_domains(); ++d) {
    const SchedulerStatsSnapshot s = scheduler_stats(d);
    total.plans += s.plans;
    total.plan_commits += s.plan_commits;
    total.plans_invalidated += s.plans_invalidated;
    total.replans += s.replans;
    total.replans_skipped += s.replans_skipped;
    total.steals += s.steals;
    total.stolen += s.stolen;
    total.rebalances += s.rebalances;
    total.donated += s.donated;
    total.failstops += s.failstops;
    total.requeues += s.requeues;
    total.stale_tasks_dropped += s.stale_tasks_dropped;
    total.batches_executed += s.batches_executed;
    total.tasks_batched += s.tasks_batched;
  }
  return total;
}

int ConcurrentServer::query_index(int64_t query_id) const {
  const auto it = id_to_index_.find(query_id);
  SCHEMBLE_CHECK(it != id_to_index_.end())
      << "unknown query id " << query_id;
  return it->second;
}

void ConcurrentServer::FinalizeQuery(int domain, int index,
                                     SubsetMask outputs, SimTime completion) {
  SCHEMBLE_CHECK_EQ(
      finalize_claims_[static_cast<size_t>(index)].exchange(
          1, std::memory_order_acq_rel),
      0)
      << "query " << trace_->items[static_cast<size_t>(index)].query.id
      << " finalized twice (cross-domain double dispatch)";
  // One workspace per finalizing thread (workers, deadline, scheduler):
  // the aggregation/fill/meta-classifier chain reuses it, so steady-state
  // completions perform no heap allocations.
  thread_local CompletionWorkspace completion_ws;
  const TracedQuery& tq = trace_->items[static_cast<size_t>(index)];
  const QueryOutcome outcome =
      EvaluateCompletion(*task_, options_.aggregator, tq, outputs, completion,
                         options_.allow_rejection, &completion_ws);
  sinks_[static_cast<size_t>(domain)]->Record(
      tq, outcome, options_.segment_duration,
      &latency_slots_[static_cast<size_t>(index)]);
  const int64_t count =
      finalized_total_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (count == static_cast<int64_t>(trace_->items.size())) {
    {
      MutexLock lock(&done_mu_);
      done_ = true;
    }
    done_cv_.NotifyAll();
  }
}

void ConcurrentServer::ArrivalPumpLoop(int pump) {
  const SimTime processing_delay = policies_[0]->ArrivalProcessingDelay();
  const bool multi = domains_.size() > 1;
  RoutingPolicy* router = router_ != nullptr
                              ? router_
                              : (pump_routers_.empty()
                                     ? nullptr
                                     : pump_routers_[static_cast<size_t>(
                                                         pump)].get());
  const std::vector<int>& owned = pump_indices_[static_cast<size_t>(pump)];
  // Reused across batches; capacities pin at the largest batch.
  std::vector<std::vector<int>> routed(domains_.size());
  std::vector<DomainLoad> loads;
  int64_t routed_total = 0;
  size_t i = 0;
  while (i < owned.size()) {
    // Each pump paces its own partition: owned indices are ascending, so
    // per-pump arrival order is the trace order of its slice.
    const TracedQuery& head = trace_->items[static_cast<size_t>(owned[i])];
    clock_->SleepUntil(head.arrival_time + processing_delay);
    const SimTime now = clock_->Now();
    for (std::vector<int>& r : routed) r.clear();
    // One lock-free board read per batch, not per query; the pump-local
    // copy is then advanced by in-batch compensation below.
    if (multi) load_board_->ReadInto(&loads);
    // Batched routing: every owned arrival already due is placed in this
    // pass.
    while (i < owned.size()) {
      const int index = owned[i];
      const TracedQuery& tq = trace_->items[static_cast<size_t>(index)];
      if (tq.arrival_time + processing_delay > now) break;
      int d = 0;
      if (multi) {
        d = router->Route(tq, now, loads);
        SCHEMBLE_CHECK_GE(d, 0);
        SCHEMBLE_CHECK_LT(d, static_cast<int>(domains_.size()));
        // In-batch compensation: load-aware policies see the queries this
        // batch already placed.
        ++loads[static_cast<size_t>(d)].inbox;
      }
      routed[static_cast<size_t>(d)].push_back(index);
      ++i;
    }
    for (size_t d = 0; d < domains_.size(); ++d) {
      if (routed[d].empty()) continue;
      routed_total += static_cast<int64_t>(routed[d].size());
      const std::span<const int> batch(routed[d].data(), routed[d].size());
      const size_t pushed =
          domains_[d]->TryPushRoutedAll(batch);  // crosses(domain)
      if (pushed < batch.size()) {
        // Inbox full: park on the blocking push for the remainder only —
        // the fast path above never waits on a domain.
        domains_[d]->PushRouted(batch.subspan(pushed));  // crosses(domain)
      }
    }
  }
  pump_routed_[static_cast<size_t>(pump)] = routed_total;
  // The last pump to drain its partition broadcasts end-of-arrivals, so
  // every domain sees ArrivalsDone exactly once, after ALL arrivals.
  if (pumps_remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    for (const auto& domain : domains_) domain->ArrivalsDone();
  }
}

ServingMetrics ConcurrentServer::Run(const QueryTrace& trace) {
  SCHEMBLE_CHECK(!ran_) << "ConcurrentServer::Run is one-shot";
  ran_ = true;
  trace_ = &trace;
  const size_t n = trace.items.size();
  id_to_index_.clear();
  for (size_t i = 0; i < n; ++i) {
    id_to_index_[trace.items[i].query.id] = static_cast<int>(i);
  }
  SimTime horizon = 0;
  for (const TracedQuery& tq : trace.items) {
    horizon = std::max(horizon, tq.arrival_time);
  }
  const size_t num_segments =
      static_cast<size_t>(horizon / options_.segment_duration) + 1;
  sinks_.clear();
  for (size_t d = 0; d < domains_.size(); ++d) {
    sinks_.push_back(
        std::make_unique<MetricSink>(num_segments, task_->num_models()));
  }
  finalize_claims_ = std::vector<std::atomic<uint8_t>>(n);
  // relaxed-ok: reset before worker threads exist; thread creation synchronizes
  finalized_total_.store(0, std::memory_order_relaxed);
  latency_slots_.assign(n, std::numeric_limits<double>::quiet_NaN());

  // Deterministic pump partition: trace index i belongs to the pump owning
  // slot (i mod cycle) of the weighted round-robin cycle. Equal weights
  // (the default) reduce to plain round-robin i % P. The split depends
  // only on the trace length and the options — never on seeds or timing —
  // and each pump's slice is ascending, preserving its arrival order.
  const int n_pumps = options_.num_arrival_threads;
  if (n > 0) {
    SCHEMBLE_CHECK_LE(static_cast<size_t>(n_pumps), n)
        << "more arrival pumps than trace queries: at least one pump "
           "would replay nothing";
  }
  std::vector<int> weights = options_.arrival_pump_weights;
  if (weights.empty()) weights.assign(static_cast<size_t>(n_pumps), 1);
  std::vector<int> slot_ends(static_cast<size_t>(n_pumps), 0);
  int cycle = 0;
  for (int p = 0; p < n_pumps; ++p) {
    cycle += weights[static_cast<size_t>(p)];
    slot_ends[static_cast<size_t>(p)] = cycle;
  }
  pump_indices_.assign(static_cast<size_t>(n_pumps), {});
  for (size_t i = 0; i < n; ++i) {
    const int slot = static_cast<int>(i % static_cast<size_t>(cycle));
    int p = 0;
    while (slot >= slot_ends[static_cast<size_t>(p)]) ++p;
    pump_indices_[static_cast<size_t>(p)].push_back(static_cast<int>(i));
  }
  pump_routed_.assign(static_cast<size_t>(n_pumps), 0);
  pumps_remaining_.store(n_pumps, std::memory_order_release);

  clock_ = std::make_unique<SteadyClock>(options_.speedup);
  for (const auto& domain : domains_) domain->Start();
  for (int p = 0; p < n_pumps; ++p) {
    threads_.emplace_back([this, p] { ArrivalPumpLoop(p); });
  }

  {
    MutexLock lock(&done_mu_);
    while (!done_ && trace_->items.size() > 0) done_cv_.Wait(done_mu_);
  }
  for (const auto& domain : domains_) domain->Shutdown();
  for (const auto& domain : domains_) domain->Join();
  for (std::thread& t : threads_) t.join();
  threads_.clear();

  ServingMetrics metrics;
  for (const auto& sink : sinks_) sink->AccumulateInto(&metrics);
  // Trim the subset-size histogram to the largest populated cell, like the
  // pre-sharding recorder did.
  size_t max_size = 0;
  for (size_t s = 0; s < metrics.subset_size_counts.size(); ++s) {
    if (metrics.subset_size_counts[s] > 0) max_size = s;
  }
  metrics.subset_size_counts.resize(max_size + 1);
  metrics.latency_ms.Reserve(n);
  for (double latency : latency_slots_) {
    if (!std::isnan(latency)) metrics.latency_ms.Add(latency);
  }
  return metrics;
}

}  // namespace schemble
