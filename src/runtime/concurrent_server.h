#ifndef SCHEMBLE_RUNTIME_CONCURRENT_SERVER_H_
#define SCHEMBLE_RUNTIME_CONCURRENT_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "core/aggregation.h"
#include "core/policy.h"
#include "models/synthetic_task.h"
#include "runtime/mpmc_queue.h"
#include "serving/completion.h"
#include "serving/metrics.h"
#include "simcore/clock.h"
#include "workload/trace.h"

namespace schemble {

struct ConcurrentServerOptions {
  /// One entry per deployed executor: the base-model index it serves. An
  /// empty list deploys exactly one executor per base model, matching the
  /// discrete-event ServerOptions default.
  std::vector<int> executor_models;
  /// Rejection mode drops queries whose deadline passes with no output;
  /// force mode processes everything and reports lateness.
  bool allow_rejection = true;
  SimTime segment_duration = 60 * kSecond;
  /// Optional aggregation module; null uses the task's reference weighted
  /// average. Must be thread-safe (const, state-free — see completion.h).
  const Aggregator* aggregator = nullptr;
  uint64_t seed = 97;
  /// Virtual microseconds per real microsecond of the run's SteadyClock: a
  /// 60-virtual-second trace replays in 60/speedup real seconds. Model
  /// "inference" consumes virtual service time, so higher speedups
  /// compress the run without changing queueing behaviour.
  double speedup = 1.0;
  /// Bounded capacity of each executor's task queue; dispatching threads
  /// block (no spinning) when an executor falls this far behind.
  int queue_capacity = 4096;
  /// How workers consume a task's service time. kSleep blocks on the OS
  /// timer (models accelerator-offloaded inference; scales past the host
  /// core count). kSpin burns CPU for the duration (models host-bound
  /// inference; scales only with real cores).
  enum class ServiceMode { kSleep, kSpin };
  ServiceMode service_mode = ServiceMode::kSleep;
};

/// Wall-clock, multi-threaded counterpart of the discrete-event
/// EnsembleServer: same ServingPolicy decision interface, same
/// EvaluateCompletion aggregation/accuracy path, same ServingMetrics
/// output, but real concurrency — per-executor worker threads pulling
/// from bounded MPMC queues, an admission thread replaying trace arrivals,
/// a scheduler thread draining the central query buffer whenever an
/// executor goes idle, and (in rejection mode) a deadline thread
/// finalizing overdue queries with whatever outputs completed.
///
/// Threading model:
///  - All policy calls (OnArrival / OnIdle) and query-state transitions
///    are serialized under one annotated Mutex, so policies keep the
///    single-threaded contract they were written against (DpScheduler's
///    mutable workspace in particular). The SCHEMBLE_GUARDED_BY /
///    SCHEMBLE_REQUIRES annotations below make any off-lock access a clang
///    build error (-Werror=thread-safety).
///  - Task execution, aggregation and metric recording run outside that
///    mutex; metrics feed std::atomic counters (the mutex-free fast path),
///    and each query's latency sample is written to its own slot.
///  - All blocking is condition-variable/timer based; nothing spins.
class ConcurrentServer {
 public:
  ConcurrentServer(const SyntheticTask& task, ServingPolicy* policy,
                   ConcurrentServerOptions options);
  ~ConcurrentServer();

  ConcurrentServer(const ConcurrentServer&) = delete;
  ConcurrentServer& operator=(const ConcurrentServer&) = delete;

  /// Replays `trace` against a fresh SteadyClock and blocks until every
  /// query is finalized. One-shot, like EnsembleServer::Run
  /// (CHECK-enforced).
  ServingMetrics Run(const QueryTrace& trace);

  int num_executors() const { return static_cast<int>(executors_.size()); }

  /// Aggregate policy-mutex statistics (bench_runtime reports these): how
  /// often the critical section was entered and total wall-clock time it
  /// was held. Backed by the annotated Mutex's built-in stats collection;
  /// read after Run() returns.
  struct LockStatsSnapshot {
    int64_t acquisitions = 0;
    double held_ms = 0.0;
  };
  LockStatsSnapshot lock_stats() const;

 private:

  /// Per-query task; executed by the worker owning `executor`.
  struct Task {
    int query_index = 0;
  };

  struct Executor {
    int model = 0;
    std::unique_ptr<MpmcQueue<Task>> queue;
    /// Virtual time when the in-flight task (if any) finishes; 0 if idle.
    std::atomic<SimTime> busy_until{0};
    std::atomic<bool> busy{false};
    std::atomic<int64_t> queued{0};
  };

  struct QueryState {
    SubsetMask assigned = 0;
    SubsetMask done = 0;
    bool buffered = false;
    bool finalized = false;
    SimTime last_done_time = 0;
  };

  /// Per-segment metric cells updated lock-free from completion callbacks.
  struct AtomicSegment {
    std::atomic<int64_t> arrivals{0};
    std::atomic<int64_t> processed{0};
    std::atomic<int64_t> missed{0};
    std::atomic<int64_t> subset_size_sum{0};
    std::atomic<double> accuracy_sum{0.0};
    std::atomic<double> latency_ms_sum{0.0};
  };

  void AdmissionLoop() SCHEMBLE_EXCLUDES(mu_);
  void SchedulerLoop() SCHEMBLE_EXCLUDES(mu_);
  void DeadlineLoop() SCHEMBLE_EXCLUDES(mu_);
  void WorkerLoop(int executor_id) SCHEMBLE_EXCLUDES(mu_);

  /// Builds the policy's server view.
  ServerView BuildView() const SCHEMBLE_REQUIRES(mu_);
  /// Marks `subset` assigned and removes the query from the buffer.
  /// Tasks are enqueued by the caller outside the lock.
  void CommitLocked(int index, SubsetMask subset) SCHEMBLE_REQUIRES(mu_);
  /// Pushes the query's tasks onto the least-loaded executor of each
  /// member model. Blocks when queues are full, hence must not hold mu_
  /// (annotation-enforced).
  void EnqueueTasks(int index, SubsetMask subset) SCHEMBLE_EXCLUDES(mu_);
  /// Claims finalization; returns false if already finalized.
  bool ClaimFinalizeLocked(int index) SCHEMBLE_REQUIRES(mu_);
  /// Aggregates, scores and records one finalized query. Must not hold
  /// mu_ (annotation-enforced). `outputs == 0` records a miss.
  void RecordFinalized(int index, SubsetMask outputs, SimTime completion)
      SCHEMBLE_EXCLUDES(mu_);
  void NotifyScheduler() SCHEMBLE_EXCLUDES(mu_);

  const SyntheticTask* task_;
  ServingPolicy* policy_;
  ConcurrentServerOptions options_;
  std::vector<Executor> executors_;
  std::unordered_map<int64_t, int> id_to_index_;

  std::unique_ptr<SteadyClock> clock_;
  const QueryTrace* trace_ = nullptr;

  /// Guards policy calls, states_, buffer_ (see class comment). Stats
  /// collection is on: bench_runtime reports critical-section pressure via
  /// lock_stats(). Owner tracking (built into Mutex) keeps "completion
  /// work runs off-lock" a DCHECKed invariant in RecordFinalized.
  Mutex mu_{Mutex::StatsMode::kEnabled};
  std::vector<QueryState> states_ SCHEMBLE_GUARDED_BY(mu_);
  /// Query indices in arrival order.
  std::vector<int> buffer_ SCHEMBLE_GUARDED_BY(mu_);
  bool arrivals_done_ SCHEMBLE_GUARDED_BY(mu_) = false;

  /// Scheduler wakeup: completions/arrivals set the flag and notify.
  CondVar scheduler_cv_;
  /// Interrupts the deadline thread's timed waits at shutdown.
  CondVar deadline_cv_;
  bool scheduler_signal_ SCHEMBLE_GUARDED_BY(mu_) = false;
  bool shutdown_ SCHEMBLE_GUARDED_BY(mu_) = false;

  /// Completion tracking: Run() waits until every query is finalized.
  CondVar done_cv_;
  int64_t finalized_count_ SCHEMBLE_GUARDED_BY(mu_) = 0;

  /// Metrics fast path (no mutex): totals, per-segment cells, per-query
  /// latency slots (NaN = not processed), subset-size histogram.
  std::atomic<int64_t> total_{0};
  std::atomic<int64_t> processed_{0};
  std::atomic<int64_t> missed_{0};
  std::atomic<double> accuracy_sum_{0.0};
  std::atomic<double> processed_accuracy_sum_{0.0};
  std::vector<AtomicSegment> segments_;
  std::vector<std::atomic<int64_t>> subset_size_counts_;
  std::vector<double> latency_slots_;

  std::vector<std::thread> threads_;
  bool ran_ = false;
};

}  // namespace schemble

#endif  // SCHEMBLE_RUNTIME_CONCURRENT_SERVER_H_
