#ifndef SCHEMBLE_RUNTIME_CONCURRENT_SERVER_H_
#define SCHEMBLE_RUNTIME_CONCURRENT_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "core/aggregation.h"
#include "core/policy.h"
#include "models/synthetic_task.h"
#include "runtime/routing_policy.h"
#include "runtime/scheduler_domain.h"
#include "serving/metric_sink.h"
#include "serving/metrics.h"
#include "simcore/clock.h"
#include "workload/trace.h"

namespace schemble {

struct ConcurrentServerOptions {
  /// One entry per deployed executor: the base-model index it serves. An
  /// empty list deploys exactly one executor per base model, matching the
  /// discrete-event ServerOptions default.
  std::vector<int> executor_models;
  /// Rejection mode drops queries whose deadline passes with no output;
  /// force mode processes everything and reports lateness.
  bool allow_rejection = true;
  SimTime segment_duration = 60 * kSecond;
  /// Optional aggregation module; null uses the task's reference weighted
  /// average. Must be thread-safe (const, state-free — see completion.h).
  const Aggregator* aggregator = nullptr;
  uint64_t seed = 97;
  /// Virtual microseconds per real microsecond of the run's SteadyClock: a
  /// 60-virtual-second trace replays in 60/speedup real seconds. Model
  /// "inference" consumes virtual service time, so higher speedups
  /// compress the run without changing queueing behaviour.
  double speedup = 1.0;
  /// Bounded capacity of each executor's task queue; dispatching threads
  /// block (no spinning) when an executor falls this far behind.
  int queue_capacity = 4096;
  /// How workers consume a task's service time (see the namespace-scope
  /// enum; the nested alias preserves the pre-sharding spelling).
  using ServiceMode = ::schemble::ServiceMode;
  ServiceMode service_mode = ServiceMode::kSleep;

  /// Independent scheduler domains the buffer/scheduler/executors are
  /// sharded into. 1 (the default) reproduces the single-domain runtime.
  /// Every model with at least one executor must have >= num_domains
  /// replicas so each domain can serve whole subsets (CHECK-enforced).
  int num_domains = 1;
  /// Admission-side placement across domains (ignored for one domain).
  RoutingPolicyKind routing = RoutingPolicyKind::kLeastLoaded;
  /// Custom routing policy; overrides `routing` when non-null. Borrowed;
  /// must outlive the server. RoutingPolicy instances are single-caller by
  /// contract, so a custom router requires num_arrival_threads == 1
  /// (CHECK-enforced); the built-in kinds get one instance per pump.
  RoutingPolicy* router = nullptr;
  /// Arrival pumps replaying the trace concurrently. Each pump owns a
  /// deterministic partition of the trace (round-robin by trace index, so
  /// per-pump arrival order is preserved and the split is independent of
  /// seeds and wall-clock timing), paces its own SleepUntil and routes
  /// directly into domain inboxes. 1 (the default) reproduces the
  /// single-admission-thread runtime exactly. Must be in [1, 64] and, for
  /// non-empty traces, <= the trace size (CHECK-enforced).
  int num_arrival_threads = 1;
  /// Optional per-pump partition weights (size num_arrival_threads, each
  /// > 0): trace index i belongs to the pump owning slot (i mod sum) of
  /// the weighted round-robin cycle. Empty means equal weights. {4, 1}
  /// gives pump 0 80% of the trace — the stress harness's skewed-pump
  /// scenario.
  std::vector<int> arrival_pump_weights;
  /// Bounded capacity of each domain's routed-arrival inbox.
  int inbox_capacity = 4096;
  /// Max queries moved per work-steal / per rebalance donation round.
  int steal_batch = 16;
  /// Virtual period of the per-domain rebalance tick (multi-domain only).
  SimTime rebalance_period = 10 * kMillisecond;
  /// Per-executor fault injection for stress scenarios, indexed like
  /// executor_models (global executor id). Empty = every executor clean.
  /// Fail-stop scenarios must leave >= 1 live replica per model per domain
  /// (the dispatch path CHECK-fails otherwise).
  std::vector<ExecutorFault> executor_faults;

  /// Cross-query task batching (see DESIGN.md "Cross-query batching"):
  /// workers coalesce compatible same-model tasks from their queue into
  /// one batched execution priced by the model's BatchLatencyModel, and
  /// the planning/dispatch layers project availability with coalesced
  /// service time (ServerView gains model_queued/model_batch). Off (the
  /// default) keeps the runtime bit-identical to the pre-batching per-task
  /// path.
  bool batching = false;
  /// Caps every model's batch size when > 0 (0 keeps each profile's own
  /// max_batch; 1 forces unbatched semantics on the batched path).
  int max_batch = 0;
};

/// Wall-clock, multi-threaded counterpart of the discrete-event
/// EnsembleServer: same ServingPolicy decision interface, same
/// EvaluateCompletion aggregation/accuracy path, same ServingMetrics
/// output, but real concurrency — sharded into N independent scheduler
/// domains (see SchedulerDomain), each owning a slice of the executor/
/// worker pool, its own policy instance, its own mutex and its own
/// snapshot -> plan -> validate/commit scheduler thread.
///
/// Threading model (see DESIGN.md "Sharded runtime" / "Arrival pipeline"):
///  - num_arrival_threads arrival pumps replay disjoint round-robin
///    partitions of the trace, each placing its queries on domains via its
///    own RoutingPolicy instance routed against the lock-free
///    DomainLoadBoard, pushing batches into bounded per-domain MPMC
///    inboxes — pumps never touch a domain mutex (lint-enforced).
///  - Each domain runs the PR-5 snapshot-planning loop over its shard;
///    query-state transitions and the stateful policy calls stay
///    serialized under that domain's annotated mutex.
///  - Idle domains steal routed-but-unadmitted queries from peer inboxes
///    (MpmcQueue::StealN); overloaded domains donate buffered queries to
///    underloaded peers on a periodic rebalance tick. Domains never
///    acquire each other's mutexes.
///  - Completion work runs outside every mutex and records into per-domain
///    lock-free MetricSinks, merged into one ServingMetrics after the run;
///    a global exactly-once finalize claim per query turns any cross-
///    domain double dispatch into a CHECK failure.
///  - All blocking is condition-variable/timer based; nothing spins.
class ConcurrentServer : private DomainHost {
 public:
  /// Single-policy constructor: requires num_domains == 1 (stateful policy
  /// calls are serialized per domain, so N domains need N instances).
  ConcurrentServer(const SyntheticTask& task, ServingPolicy* policy,
                   ConcurrentServerOptions options);
  /// Sharded constructor: one policy instance per domain
  /// (policies.size() == num_domains, CHECK-enforced). Instances must
  /// agree on ArrivalProcessingDelay.
  ConcurrentServer(const SyntheticTask& task,
                   std::vector<ServingPolicy*> policies,
                   ConcurrentServerOptions options);
  ~ConcurrentServer() override;

  ConcurrentServer(const ConcurrentServer&) = delete;
  ConcurrentServer& operator=(const ConcurrentServer&) = delete;

  /// Replays `trace` against a fresh SteadyClock and blocks until every
  /// query is finalized. One-shot, like EnsembleServer::Run
  /// (CHECK-enforced).
  ServingMetrics Run(const QueryTrace& trace);

  int num_executors() const;
  int num_domains() const override {
    return static_cast<int>(domains_.size());
  }

  /// Aggregate domain-mutex statistics (bench_runtime reports these): how
  /// often the critical sections were entered and total wall-clock time
  /// they were held, summed over domains. Read after Run() returns.
  struct LockStatsSnapshot {
    int64_t acquisitions = 0;
    double held_ms = 0.0;
  };
  LockStatsSnapshot lock_stats() const;

  /// Scheduler telemetry (bench_runtime and the runtime tests read these
  /// after Run() returns). The planning counters advance only on the
  /// snapshot-planning path (policies with SupportsOffLockPlanning); the
  /// stealing/rebalancing counters only with num_domains > 1.
  struct SchedulerStatsSnapshot {
    /// Planning rounds run outside the policy mutex.
    int64_t plans = 0;
    /// Plan entries that passed generation validation and were committed.
    int64_t plan_commits = 0;
    /// Plan entries dropped at commit because the query was assigned,
    /// finalized or donated while planning ran off-lock.
    int64_t plans_invalidated = 0;
    /// Immediate re-plan rounds triggered by invalidated entries.
    int64_t replans = 0;
    /// Scheduler rounds elided because the view generation was unchanged
    /// since the last planned snapshot (see SchedulerDomain).
    int64_t replans_skipped = 0;
    /// Work-steal rounds that obtained >= 1 query / queries stolen.
    int64_t steals = 0;
    int64_t stolen = 0;
    /// Rebalance donations: rounds that moved >= 1 query / queries moved.
    int64_t rebalances = 0;
    int64_t donated = 0;
    /// Fault-injection telemetry (stress scenarios): executors that
    /// fail-stopped, queries re-queued through domain inboxes after a
    /// failure, and in-flight tasks dropped because their query's
    /// generation moved on (re-queue or donation) while they serviced.
    int64_t failstops = 0;
    int64_t requeues = 0;
    int64_t stale_tasks_dropped = 0;
    /// Batched executions performed and tasks they carried (every
    /// execution counts: a batch of 1 with batching off, so the occupancy
    /// baseline is exactly 1.0).
    int64_t batches_executed = 0;
    int64_t tasks_batched = 0;

    /// Mean tasks per execution; 1.0 when nothing coalesced (or ran).
    double mean_batch_occupancy() const {
      return batches_executed > 0 ? static_cast<double>(tasks_batched) /
                                        static_cast<double>(batches_executed)
                                  : 1.0;
    }
  };
  /// Summed over all domains.
  SchedulerStatsSnapshot scheduler_stats() const;
  /// One domain's counters (bench_runtime's per-domain stats).
  SchedulerStatsSnapshot scheduler_stats(int domain) const;

  int num_arrival_pumps() const { return options_.num_arrival_threads; }
  /// Queries routed by one arrival pump; valid after Run() returns (each
  /// slot has a single writer — its pump — and the join is the
  /// happens-before edge to this read).
  int64_t pump_routed(int pump) const {
    return pump_routed_[static_cast<size_t>(pump)];
  }

 private:
  // DomainHost interface (domain threads call these).
  const QueryTrace& trace() const override { return *trace_; }
  Clock& clock() override { return *clock_; }
  int query_index(int64_t query_id) const override;
  void FinalizeQuery(int domain, int index, SubsetMask outputs,
                     SimTime completion) override;
  SchedulerDomain& peer(int domain) override { return *domains_[domain]; }

  /// One arrival pump: replays pump_indices_[pump] with its own SleepUntil
  /// pacing, routing against lock-free DomainLoadBoard reads and pushing
  /// into domain inboxes. Never acquires a domain mutex (lint rule
  /// arrival-pump); the last pump to finish signals ArrivalsDone.
  void ArrivalPumpLoop(int pump);

  const SyntheticTask* task_;
  std::vector<ServingPolicy*> policies_;
  ConcurrentServerOptions options_;
  std::vector<std::unique_ptr<SchedulerDomain>> domains_;
  /// Per-domain load rows published by domain threads, read lock-free by
  /// the arrival pumps. Built only for num_domains > 1.
  std::unique_ptr<DomainLoadBoard> load_board_;
  /// Borrowed custom router (options_.router; single pump only), or null.
  RoutingPolicy* router_ = nullptr;
  /// One built-in router instance per pump (RoutingPolicy instances are
  /// single-caller); empty when router_ is set or num_domains == 1.
  std::vector<std::unique_ptr<RoutingPolicy>> pump_routers_;
  /// pump_indices_[p] = ascending trace indices pump p replays. Built in
  /// Run() before any thread spawns; const afterwards.
  std::vector<std::vector<int>> pump_indices_;
  /// Queries routed per pump; single writer (the pump), read after join.
  std::vector<int64_t> pump_routed_;
  /// Last pump to finish flips this to 0 and broadcasts ArrivalsDone.
  std::atomic<int> pumps_remaining_{0};

  /// Query-id -> trace index. Const-after-init: fully built inside Run()
  /// BEFORE any thread is spawned and never mutated afterwards, which is
  /// why domain threads may read it lock-free during plan commits. Any
  /// write after the threads start is a contract violation.
  std::unordered_map<int64_t, int> id_to_index_;

  std::unique_ptr<SteadyClock> clock_;
  const QueryTrace* trace_ = nullptr;

  /// Run-completion tracking: FinalizeQuery counts finalizations and the
  /// last one flips done_ under done_mu_ so Run() can wait on a CondVar.
  /// Rank kDone: always the final lock on a finalization path, acquired
  /// with nothing else held and never held across other work.
  Mutex done_mu_ SCHEMBLE_ACQUIRED_AFTER(lock_ranks::clock_anchor){
      LockRank::kDone, "concurrent_server.done_mu"};
  CondVar done_cv_;
  bool done_ SCHEMBLE_GUARDED_BY(done_mu_) = false;
  std::atomic<int64_t> finalized_total_{0};
  /// Global exactly-once finalize claim per query (0 -> 1 exactly once; a
  /// second claim is a CHECK failure — the cross-domain double-dispatch
  /// detector).
  std::vector<std::atomic<uint8_t>> finalize_claims_;

  /// Per-domain lock-free metric sinks, merged after the run.
  std::vector<std::unique_ptr<MetricSink>> sinks_;
  /// Structure-immutable-after-start: sized in Run() before any thread is
  /// spawned and never resized while they run. Each slot is written at
  /// most once, by whichever thread finalizes that query (slots are
  /// disjoint), and only read back after Run() joins everything.
  std::vector<double> latency_slots_;

  std::vector<std::thread> threads_;
  bool ran_ = false;
};

}  // namespace schemble

#endif  // SCHEMBLE_RUNTIME_CONCURRENT_SERVER_H_
