#ifndef SCHEMBLE_RUNTIME_CONCURRENT_SERVER_H_
#define SCHEMBLE_RUNTIME_CONCURRENT_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "core/aggregation.h"
#include "core/policy.h"
#include "models/synthetic_task.h"
#include "runtime/mpmc_queue.h"
#include "serving/completion.h"
#include "serving/metrics.h"
#include "simcore/clock.h"
#include "workload/trace.h"

namespace schemble {

struct ConcurrentServerOptions {
  /// One entry per deployed executor: the base-model index it serves. An
  /// empty list deploys exactly one executor per base model, matching the
  /// discrete-event ServerOptions default.
  std::vector<int> executor_models;
  /// Rejection mode drops queries whose deadline passes with no output;
  /// force mode processes everything and reports lateness.
  bool allow_rejection = true;
  SimTime segment_duration = 60 * kSecond;
  /// Optional aggregation module; null uses the task's reference weighted
  /// average. Must be thread-safe (const, state-free — see completion.h).
  const Aggregator* aggregator = nullptr;
  uint64_t seed = 97;
  /// Virtual microseconds per real microsecond of the run's SteadyClock: a
  /// 60-virtual-second trace replays in 60/speedup real seconds. Model
  /// "inference" consumes virtual service time, so higher speedups
  /// compress the run without changing queueing behaviour.
  double speedup = 1.0;
  /// Bounded capacity of each executor's task queue; dispatching threads
  /// block (no spinning) when an executor falls this far behind.
  int queue_capacity = 4096;
  /// How workers consume a task's service time. kSleep blocks on the OS
  /// timer (models accelerator-offloaded inference; scales past the host
  /// core count). kSpin burns CPU for the duration (models host-bound
  /// inference; scales only with real cores).
  enum class ServiceMode { kSleep, kSpin };
  ServiceMode service_mode = ServiceMode::kSleep;
};

/// Wall-clock, multi-threaded counterpart of the discrete-event
/// EnsembleServer: same ServingPolicy decision interface, same
/// EvaluateCompletion aggregation/accuracy path, same ServingMetrics
/// output, but real concurrency — per-executor worker threads pulling
/// from bounded MPMC queues, an admission thread replaying trace arrivals,
/// a scheduler thread draining the central query buffer whenever an
/// executor goes idle, and (in rejection mode) a deadline thread
/// finalizing overdue queries with whatever outputs completed.
///
/// Threading model (see DESIGN.md "Snapshot planning & batched dispatch"):
///  - Query-state transitions and the stateful policy calls (OnArrival,
///    marked `// serialized(mu_)`) happen under one annotated Mutex. The
///    SCHEMBLE_GUARDED_BY / SCHEMBLE_REQUIRES annotations below make any
///    off-lock access a clang build error (-Werror=thread-safety).
///  - Scheduling runs snapshot -> plan -> validate/commit: the scheduler
///    thread copies the server view and buffered queries into a reusable
///    PlanWorkspace inside a short critical section, releases the mutex,
///    runs the policy's const PlanOnView against the immutable snapshot,
///    then reacquires the mutex and commits only the plan entries whose
///    per-query generation still matches (others were assigned/finalized
///    while planning and are dropped + replanned). Policies without
///    off-lock support keep the legacy serialized OnIdle path.
///  - Admission and dispatch are batched: every due arrival is admitted in
///    one lock acquisition, and committed task sets go to the executor
///    queues via bulk PushAll (workers drain runs with PopN), so the
///    per-event lock traffic of the seed design collapses into a handful
///    of batch round-trips.
///  - Task execution, aggregation and metric recording run outside the
///    mutex; metrics feed std::atomic counters (the mutex-free fast path),
///    and each query's latency sample is written to its own slot.
///  - All blocking is condition-variable/timer based; nothing spins.
class ConcurrentServer {
 public:
  ConcurrentServer(const SyntheticTask& task, ServingPolicy* policy,
                   ConcurrentServerOptions options);
  ~ConcurrentServer();

  ConcurrentServer(const ConcurrentServer&) = delete;
  ConcurrentServer& operator=(const ConcurrentServer&) = delete;

  /// Replays `trace` against a fresh SteadyClock and blocks until every
  /// query is finalized. One-shot, like EnsembleServer::Run
  /// (CHECK-enforced).
  ServingMetrics Run(const QueryTrace& trace);

  int num_executors() const { return static_cast<int>(executors_.size()); }

  /// Aggregate policy-mutex statistics (bench_runtime reports these): how
  /// often the critical section was entered and total wall-clock time it
  /// was held. Backed by the annotated Mutex's built-in stats collection;
  /// read after Run() returns.
  struct LockStatsSnapshot {
    int64_t acquisitions = 0;
    double held_ms = 0.0;
  };
  LockStatsSnapshot lock_stats() const;

  /// Off-lock planning telemetry (bench_runtime and the invalidation
  /// stress test read these after Run() returns). Counters only advance on
  /// the snapshot-planning path, i.e. for policies with
  /// SupportsOffLockPlanning().
  struct SchedulerStatsSnapshot {
    /// Planning rounds run outside the policy mutex.
    int64_t plans = 0;
    /// Plan entries that passed generation validation and were committed.
    int64_t plan_commits = 0;
    /// Plan entries dropped at commit because the query was assigned or
    /// finalized while planning ran off-lock.
    int64_t plans_invalidated = 0;
    /// Immediate re-plan rounds triggered by invalidated entries.
    int64_t replans = 0;
  };
  SchedulerStatsSnapshot scheduler_stats() const;

 private:

  /// Per-query task; executed by the worker owning `executor`.
  struct Task {
    int query_index = 0;
  };

  struct Executor {
    int model = 0;
    std::unique_ptr<MpmcQueue<Task>> queue;
    /// Virtual time when the in-flight task (if any) finishes; 0 if idle.
    std::atomic<SimTime> busy_until{0};
    std::atomic<bool> busy{false};
    std::atomic<int64_t> queued{0};
  };

  struct QueryState {
    SubsetMask assigned = 0;
    SubsetMask done = 0;
    bool buffered = false;
    bool finalized = false;
    SimTime last_done_time = 0;
    /// Bumped on every assign and finalize. Snapshots taken for off-lock
    /// planning record it per query; a mismatch at commit time means the
    /// query moved on while the planner ran, so the plan entry is dropped
    /// (counted in plans_invalidated).
    uint64_t generation = 0;
  };

  /// Per-segment metric cells updated lock-free from completion callbacks.
  struct AtomicSegment {
    std::atomic<int64_t> arrivals{0};
    std::atomic<int64_t> processed{0};
    std::atomic<int64_t> missed{0};
    std::atomic<int64_t> subset_size_sum{0};
    std::atomic<double> accuracy_sum{0.0};
    std::atomic<double> latency_ms_sum{0.0};
  };

  /// One planned or admitted assignment awaiting dispatch.
  struct Commit {
    int index = 0;
    SubsetMask subset = 0;
  };

  /// Reusable per-dispatching-thread scratch for EnqueueBatch: per-executor
  /// task runs plus projected availability. All vectors reach a stable
  /// capacity after the first few batches, so steady-state dispatch
  /// performs no heap allocation.
  struct DispatchScratch {
    std::vector<Commit> live;
    std::vector<std::vector<Task>> runs;
    std::vector<SimTime> avail;
  };

  void AdmissionLoop() SCHEMBLE_EXCLUDES(mu_);
  void SchedulerLoop() SCHEMBLE_EXCLUDES(mu_);
  void DeadlineLoop() SCHEMBLE_EXCLUDES(mu_);
  void WorkerLoop(int executor_id) SCHEMBLE_EXCLUDES(mu_);

  /// Fills the policy's server view, reusing `view`'s vector capacity —
  /// after the first call the snapshot critical section allocates nothing.
  void BuildViewInto(ServerView* view) const SCHEMBLE_REQUIRES(mu_);
  /// Captures the buffered queries (arrival order) with their generations
  /// into the plan workspace, reusing its capacity.
  void SnapshotBufferLocked(PlanWorkspace* ws) const SCHEMBLE_REQUIRES(mu_);
  /// Marks `subset` assigned and removes the query from the buffer.
  /// Tasks are enqueued by the caller outside the lock.
  void CommitLocked(int index, SubsetMask subset) SCHEMBLE_REQUIRES(mu_);
  /// Dispatches a batch of committed assignments: one lock acquisition to
  /// drop entries finalized in flight (mirroring the simulator), then
  /// placement onto the projected least-loaded executor of each member
  /// model, then one PushAll per touched executor queue. Blocks when
  /// queues are full, hence must not hold mu_ (annotation-enforced).
  void EnqueueBatch(const std::vector<Commit>& commits,
                    DispatchScratch* scratch) SCHEMBLE_EXCLUDES(mu_);
  /// Claims finalization; returns false if already finalized.
  bool ClaimFinalizeLocked(int index) SCHEMBLE_REQUIRES(mu_);
  /// Aggregates, scores and records one finalized query. Must not hold
  /// mu_ (annotation-enforced). `outputs == 0` records a miss.
  void RecordFinalized(int index, SubsetMask outputs, SimTime completion)
      SCHEMBLE_EXCLUDES(mu_);

  const SyntheticTask* task_;
  ServingPolicy* policy_;
  ConcurrentServerOptions options_;
  std::vector<Executor> executors_;
  /// Query-id -> trace index. Const-after-init: fully built inside Run()
  /// BEFORE any thread is spawned and never mutated afterwards, which is
  /// why the scheduler thread may read it lock-free during plan commits.
  /// Any write after the threads start is a contract violation.
  std::unordered_map<int64_t, int> id_to_index_;

  std::unique_ptr<SteadyClock> clock_;
  const QueryTrace* trace_ = nullptr;

  /// Guards policy calls, states_, buffer_ (see class comment). Stats
  /// collection is on: bench_runtime reports critical-section pressure via
  /// lock_stats(). Owner tracking (built into Mutex) keeps "completion
  /// work runs off-lock" a DCHECKed invariant in RecordFinalized.
  Mutex mu_{Mutex::StatsMode::kEnabled};
  std::vector<QueryState> states_ SCHEMBLE_GUARDED_BY(mu_);
  /// Query indices in arrival order.
  std::vector<int> buffer_ SCHEMBLE_GUARDED_BY(mu_);
  bool arrivals_done_ SCHEMBLE_GUARDED_BY(mu_) = false;

  /// Scheduler wakeup. The signal is FOLDED into critical sections other
  /// threads already hold (admission batches, worker completions): they
  /// set scheduler_signal_ when the buffer is non-empty and notify after
  /// unlocking, so waking the scheduler costs no extra lock acquisition.
  CondVar scheduler_cv_;
  /// Interrupts the deadline thread's timed waits at shutdown.
  CondVar deadline_cv_;
  bool scheduler_signal_ SCHEMBLE_GUARDED_BY(mu_) = false;
  bool shutdown_ SCHEMBLE_GUARDED_BY(mu_) = false;

  /// Completion tracking: Run() waits until every query is finalized.
  CondVar done_cv_;
  int64_t finalized_count_ SCHEMBLE_GUARDED_BY(mu_) = 0;

  /// Metrics fast path (no mutex): totals, per-segment cells, per-query
  /// latency slots (NaN = not processed), subset-size histogram.
  std::atomic<int64_t> total_{0};
  std::atomic<int64_t> processed_{0};
  std::atomic<int64_t> missed_{0};
  std::atomic<double> accuracy_sum_{0.0};
  std::atomic<double> processed_accuracy_sum_{0.0};
  std::vector<AtomicSegment> segments_;
  std::vector<std::atomic<int64_t>> subset_size_counts_;
  /// Structure-immutable-after-start: sized in Run() before any thread is
  /// spawned and never resized while they run. Each slot is written at
  /// most once, by whichever thread finalizes that query (slots are
  /// disjoint, so no two threads ever touch the same one), and only read
  /// back after Run() joins everything.
  std::vector<double> latency_slots_;

  /// Off-lock planning counters (see SchedulerStatsSnapshot). Updated by
  /// the scheduler thread only; atomics so tests/benches can read them
  /// after Run() without the policy mutex.
  std::atomic<int64_t> plans_{0};
  std::atomic<int64_t> plan_commits_{0};
  std::atomic<int64_t> plans_invalidated_{0};
  std::atomic<int64_t> replans_{0};

  std::vector<std::thread> threads_;
  bool ran_ = false;
};

}  // namespace schemble

#endif  // SCHEMBLE_RUNTIME_CONCURRENT_SERVER_H_
