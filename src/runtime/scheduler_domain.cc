#include "runtime/scheduler_domain.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/hot_path.h"
#include "common/logging.h"
#include "common/rng.h"

namespace schemble {
namespace {

/// Real-clock duration of `virtual_us` at the given speedup, clamped to at
/// least one microsecond so waits always make progress.
std::chrono::microseconds RealDuration(SimTime virtual_us, double speedup) {
  const auto us =
      static_cast<int64_t>(static_cast<double>(virtual_us) / speedup);
  return std::chrono::microseconds(std::max<int64_t>(us, 1));
}

}  // namespace

SchedulerDomain::SchedulerDomain(const SyntheticTask& task,
                                 ServingPolicy* policy, DomainHost* host,
                                 SchedulerDomainOptions options)
    : task_(&task),
      policy_(policy),
      host_(host),
      options_(std::move(options)),
      inbox_(static_cast<size_t>(options_.inbox_capacity), LockRank::kInbox,
             "scheduler_domain.inbox") {
  SCHEMBLE_CHECK(policy_ != nullptr);
  SCHEMBLE_CHECK(host_ != nullptr);
  SCHEMBLE_CHECK_GT(options_.speedup, 0.0);
  SCHEMBLE_CHECK_GT(options_.queue_capacity, 0);
  SCHEMBLE_CHECK_GT(options_.inbox_capacity, 0);
  SCHEMBLE_CHECK_GT(options_.steal_batch, 0);
  SCHEMBLE_CHECK_GT(options_.rebalance_period, 0);
  SCHEMBLE_CHECK(!options_.executor_models.empty())
      << "a scheduler domain needs at least one executor";
  SCHEMBLE_CHECK_EQ(options_.executor_models.size(),
                    options_.executor_ids.size());
  SCHEMBLE_CHECK(options_.faults.empty() ||
                 options_.faults.size() == options_.executor_models.size())
      << "executor fault list must be empty or match the executor count";
  executors_ = std::vector<Executor>(options_.executor_models.size());
  for (size_t e = 0; e < executors_.size(); ++e) {
    const int model = options_.executor_models[e];
    SCHEMBLE_CHECK_GE(model, 0);
    SCHEMBLE_CHECK_LT(model, task_->num_models());
    executors_[e].model = model;
    executors_[e].global_id = options_.executor_ids[e];
    if (!options_.faults.empty()) {
      const ExecutorFault& fault = options_.faults[e];
      SCHEMBLE_CHECK_GT(fault.speed, 0.0);
      SCHEMBLE_CHECK_GE(fault.straggle_factor, 1.0);
      SCHEMBLE_CHECK_GE(fault.straggle_after, 0);
      SCHEMBLE_CHECK_GE(fault.fail_at, 0);
      executors_[e].fault = fault;
    }
    executors_[e].queue = std::make_unique<MpmcQueue<Task>>(
        static_cast<size_t>(options_.queue_capacity),
        LockRank::kExecutorQueue, "scheduler_domain.executor_queue");
  }
  SCHEMBLE_CHECK_GE(options_.max_batch, 0);
  if (options_.batching) {
    batch_models_.reserve(static_cast<size_t>(task_->num_models()));
    for (int k = 0; k < task_->num_models(); ++k) {
      BatchLatencyModel bm = task_->profile(k).batch_latency();
      if (options_.max_batch > 0) {
        bm.max_batch = std::min(bm.max_batch, options_.max_batch);
      }
      SCHEMBLE_CHECK_GE(bm.max_batch, 1);
      batch_models_.push_back(bm);
    }
  }
}

SchedulerDomain::~SchedulerDomain() {
  // The owning server joins every domain before destruction.
  SCHEMBLE_CHECK(threads_.empty());
}

int64_t SchedulerDomain::queued_tasks() const {
  int64_t total = 0;
  for (const Executor& ex : executors_) {
    total += ex.queued.load(std::memory_order_acquire);
  }
  return total;
}

SchedulerDomain::StatsSnapshot SchedulerDomain::stats() const {
  StatsSnapshot s;
  // relaxed-ok: monotonic telemetry counter
  s.plans = plans_.load(std::memory_order_relaxed);
  s.plan_commits = plan_commits_.load(std::memory_order_relaxed);
  s.plans_invalidated = plans_invalidated_.load(std::memory_order_relaxed);
  s.replans = replans_.load(std::memory_order_relaxed);
  s.replans_skipped = replans_skipped_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.stolen = stolen_.load(std::memory_order_relaxed);
  s.rebalances = rebalances_.load(std::memory_order_relaxed);
  s.donated = donated_.load(std::memory_order_relaxed);
  s.failstops = failstops_.load(std::memory_order_relaxed);
  s.requeues = requeues_.load(std::memory_order_relaxed);
  s.stale_tasks_dropped =
      stale_tasks_dropped_.load(std::memory_order_relaxed);
  s.batches_executed = batches_executed_.load(std::memory_order_relaxed);
  s.tasks_batched = tasks_batched_.load(std::memory_order_relaxed);
  return s;
}

SimTime SchedulerDomain::BacklogServiceTime(int model, int64_t queued) const {
  if (batch_models_.empty()) {
    return queued * task_->profile(model).latency_us;
  }
  return batch_models_[static_cast<size_t>(model)].BacklogUs(queued);
}

void SchedulerDomain::Start() {
  SCHEMBLE_CHECK(!started_) << "SchedulerDomain::Start is one-shot";
  started_ = true;
  trace_ = &host_->trace();
  clock_ = &host_->clock();
  {
    MutexLock lock(&mu_);
    states_.assign(trace_->items.size(), QueryState{});
    buffer_.clear();
    PublishBufferedLocked();
  }
  threads_.emplace_back([this] { AdmitterLoop(); });
  threads_.emplace_back([this] { SchedulerLoop(); });
  if (options_.allow_rejection) {
    threads_.emplace_back([this] { DeadlineLoop(); });
  }
  for (int e = 0; e < num_executors(); ++e) {
    threads_.emplace_back([this, e] { WorkerLoop(e); });
  }
}

void SchedulerDomain::Shutdown() {
  if (shutdown_requested_.exchange(true, std::memory_order_acq_rel)) return;
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  scheduler_cv_.NotifyAll();
  deadline_cv_.NotifyAll();
  inbox_.Close();
  for (Executor& ex : executors_) ex.queue->Close();
}

void SchedulerDomain::Join() {
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

void SchedulerDomain::PushRouted(std::span<const int> indices) {
  const size_t pushed = inbox_.PushAll(indices);
  if (pushed == 0) return;  // closed: shutdown already decided
  inbox_depth_.fetch_add(static_cast<int64_t>(pushed),
                         std::memory_order_acq_rel);
}

bool SchedulerDomain::TryPushRouted(int index) {
  if (!inbox_.TryPush(index)) return false;
  inbox_depth_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

size_t SchedulerDomain::TryPushRoutedAll(std::span<const int> indices) {
  const size_t pushed = inbox_.TryPushAll(indices);
  if (pushed > 0) {
    inbox_depth_.fetch_add(static_cast<int64_t>(pushed),
                           std::memory_order_acq_rel);
  }
  return pushed;
}

void SchedulerDomain::PublishLoad() {
  if (options_.load_board == nullptr) return;
  options_.load_board->Publish(options_.domain_id, inbox_depth(),
                               buffered_count(), queued_tasks());
}

size_t SchedulerDomain::StealRouted(std::vector<int>* out, size_t max_items) {
  const size_t taken = inbox_.StealN(out, max_items);
  if (taken > 0) {
    inbox_depth_.fetch_sub(static_cast<int64_t>(taken),
                           std::memory_order_acq_rel);
  }
  return taken;
}

void SchedulerDomain::ArrivalsDone() {
  {
    MutexLock lock(&mu_);
    arrivals_done_ = true;
    scheduler_signal_ = true;
  }
  // Unconditional wake: the scheduler must observe arrivals_done_ even
  // with an empty buffer so the force-mode stuck check can fire.
  scheduler_cv_.NotifyOne();
}

SCHEMBLE_HOT void SchedulerDomain::BuildViewInto(ServerView* view) const {
  view->now = clock_->Now();
  view->allow_rejection = options_.allow_rejection;
  // Capacities pin after the first call (fixed model/executor counts), so
  // the snapshot critical section stays allocation-free in steady state.
  view->model_exec_time.resize(  // hot-ok: capacity pinned after first call
      static_cast<size_t>(task_->num_models()));
  view->model_available_at.assign(  // hot-ok: capacity pinned at first call
      static_cast<size_t>(task_->num_models()), kSimTimeMax);
  for (int k = 0; k < task_->num_models(); ++k) {
    view->model_exec_time[k] = task_->profile(k).latency_us;
  }
  if (!batch_models_.empty()) {
    // Publish the batch composition so policies can plan with coalesced
    // service times (ServerView::PlannedExecTime). Never populated with
    // batching off, so those callers see pre-batching views verbatim.
    view->model_batch = batch_models_;  // hot-ok: capacity pinned, POD copy
    view->model_queued.assign(  // hot-ok: capacity pinned at first call
        static_cast<size_t>(task_->num_models()), 0);
  }
  view->executors.clear();
  for (size_t e = 0; e < executors_.size(); ++e) {
    const Executor& ex = executors_[e];
    // Fail-stopped executors are invisible to policies: anything routed to
    // them would never complete. Scenarios must keep at least one live
    // replica per model per domain (dispatch CHECK-fails otherwise).
    if (ex.failed.load(std::memory_order_acquire)) continue;
    const SimTime busy_until =
        ex.busy.load(std::memory_order_acquire)
            ? ex.busy_until.load(std::memory_order_acquire)
            : view->now;
    const int64_t queued = ex.queued.load(std::memory_order_acquire);
    const SimTime available = std::max(busy_until, view->now) +
                              BacklogServiceTime(ex.model, queued);
    view->executors.push_back(  // hot-ok: bounded by the executor count
        {static_cast<int>(e), ex.model, available, static_cast<int>(queued)});
    view->model_available_at[ex.model] =
        std::min(view->model_available_at[ex.model], available);
    if (!view->model_queued.empty()) {
      view->model_queued[static_cast<size_t>(ex.model)] +=
          static_cast<int>(queued);
    }
  }
}

SCHEMBLE_HOT void SchedulerDomain::SnapshotBufferLocked(
    PlanWorkspace* ws) const {
  ws->buffer.clear();
  for (int index : buffer_) {
    ws->buffer.push_back(  // hot-ok: capacity tracks the buffer high-water
        {&trace_->items[static_cast<size_t>(index)], index,
         states_[static_cast<size_t>(index)].generation});
  }
}

void SchedulerDomain::CommitLocked(int index, SubsetMask subset) {
  QueryState& state = states_[static_cast<size_t>(index)];
  SCHEMBLE_CHECK_EQ(state.assigned, 0u);
  SCHEMBLE_CHECK_NE(subset, 0u);
  state.assigned = subset;
  ++state.generation;
  if (state.buffered) {
    state.buffered = false;
    buffer_.erase(std::find(buffer_.begin(), buffer_.end(), index));
    PublishBufferedLocked();
  }
}

bool SchedulerDomain::ClaimFinalizeLocked(int index) {
  QueryState& state = states_[static_cast<size_t>(index)];
  if (state.finalized) return false;
  state.finalized = true;
  ++state.generation;
  if (state.buffered) {
    state.buffered = false;
    buffer_.erase(std::find(buffer_.begin(), buffer_.end(), index));
    PublishBufferedLocked();
    // Buffer membership changed under the planner's feet: the next
    // scheduler round must re-plan (never skip).
    ++view_generation_;
  }
  return true;
}

SCHEMBLE_HOT void SchedulerDomain::EnqueueBatch(
    const std::vector<Commit>& commits, DispatchScratch* scratch) {
  SCHEMBLE_DCHECK(!mu_.HeldByCurrentThread())
      << "EnqueueBatch blocks on executor queues and must not be called "
         "inside the policy critical section";
  if (commits.empty()) return;
  // One lock round-trip for the whole batch: mirror the simulator by
  // dropping queries finalized while the commit was in flight (deadline
  // during scheduler overhead).
  scratch->live.clear();
  {
    MutexLock lock(&mu_);
    for (const Commit& commit : commits) {
      const QueryState& state = states_[static_cast<size_t>(commit.index)];
      if (state.finalized) continue;
      scratch->live.push_back(commit);  // hot-ok: bounded by batch size
      // Stamp the post-commit generation: completions (and fail-stop
      // re-queues) of the dispatched tasks only apply while it matches.
      scratch->live.back().generation = state.generation;
    }
  }
  if (scratch->live.empty()) return;

  // Placement works against projected availability seeded once from the
  // executor atomics and advanced as the batch lands, so a multi-query
  // batch spreads across this domain's replicas exactly like the seed's
  // per-task re-reads did.
  const SimTime now = clock_->Now();
  scratch->runs.resize(executors_.size());  // hot-ok: fixed executor count
  scratch->avail.resize(executors_.size());  // hot-ok: fixed executor count
  scratch->qcount.resize(executors_.size());  // hot-ok: fixed executor count
  for (size_t e = 0; e < executors_.size(); ++e) {
    scratch->runs[e].clear();
    const Executor& ex = executors_[e];
    const SimTime busy_until =
        ex.busy.load(std::memory_order_acquire)
            ? ex.busy_until.load(std::memory_order_acquire)
            : now;
    scratch->qcount[e] = ex.queued.load(std::memory_order_acquire);
    scratch->avail[e] = std::max(busy_until, now) +
                        BacklogServiceTime(ex.model, scratch->qcount[e]);
  }
  for (const Commit& commit : scratch->live) {
    for (int k = 0; k < task_->num_models(); ++k) {
      if (!(commit.subset & (SubsetMask{1} << k))) continue;
      int best = -1;
      SimTime best_available = kSimTimeMax;
      for (size_t e = 0; e < executors_.size(); ++e) {
        if (executors_[e].model != k) continue;
        if (executors_[e].failed.load(std::memory_order_acquire)) continue;
        if (scratch->avail[e] < best_available) {
          best_available = scratch->avail[e];
          best = static_cast<int>(e);
        }
      }
      SCHEMBLE_CHECK_GE(best, 0)
          << "no live executor for model " << k << " in domain "
          << options_.domain_id
          << " (fault scenarios must keep >= 1 replica per model alive)";
      scratch->runs[static_cast<size_t>(best)]
          .push_back(  // hot-ok: batch-bounded
              Task{commit.index, commit.generation});
      // Marginal-backlog advance: with batching off the delta is exactly
      // one per-task latency; with it on, a task joining an open batch
      // costs only the coalesced marginal.
      const int64_t q = scratch->qcount[static_cast<size_t>(best)];
      scratch->avail[static_cast<size_t>(best)] +=
          BacklogServiceTime(k, q + 1) - BacklogServiceTime(k, q);
      scratch->qcount[static_cast<size_t>(best)] = q + 1;
    }
  }
  for (size_t e = 0; e < executors_.size(); ++e) {
    const std::vector<Task>& run = scratch->runs[e];
    if (run.empty()) continue;
    executors_[e].queued.fetch_add(static_cast<int64_t>(run.size()),
                                   std::memory_order_acq_rel);
    const size_t pushed = executors_[e].queue->PushAll(
        std::span<const Task>(run.data(), run.size()));
    if (pushed < run.size()) {
      // Queue closed under us: either shutdown (all queries already
      // finalized, so the re-queue below is a no-op) or the executor
      // fail-stopped between placement and push. Re-queue the remainder —
      // conservation: every placed task either lands in a live queue or
      // flows back through RequeueTasks.
      executors_[e].queued.fetch_sub(
          static_cast<int64_t>(run.size() - pushed),
          std::memory_order_acq_rel);
      const std::vector<Task> remainder(
          run.begin() + static_cast<ptrdiff_t>(pushed),
          run.end());  // hot-ok: cold fail-stop path
      RequeueTasks(remainder);
    }
  }
}

SCHEMBLE_HOT void SchedulerDomain::AdmitBatch(const std::vector<int>& indices,
                                              ServerView* view,
                                              SchedulerScratch* s) {
  s->to_enqueue.clear();
  s->rejects.clear();
  bool pushed_deadlines = false;
  bool notify_scheduler = false;
  bool view_changed = false;
  {
    MutexLock lock(&mu_);
    if (shutdown_) return;
    BuildViewInto(view);
    // Batched admission: every routed query gets its decision in this one
    // critical section. In-batch assigns fold their service time into the
    // view's availability so later queries in the batch see the load the
    // earlier ones just added.
    for (const int index : indices) {
      const TracedQuery& tq = trace_->items[static_cast<size_t>(index)];
      QueryState& state = states_[static_cast<size_t>(index)];
      SCHEMBLE_CHECK(!state.owned && !state.finalized)
          << "query " << tq.query.id << " routed to domain "
          << options_.domain_id << " twice";
      state.owned = true;
      if (options_.allow_rejection && view->now >= tq.deadline) {
        // The deadline beat admission (the query sat in an inbox or the
        // routing batch while its deadline passed): finalize as a miss
        // without consulting the policy, matching the pre-sharding
        // deadline-thread-beats-admission path.
        if (ClaimFinalizeLocked(index)) {
          s->rejects.push_back(index);  // hot-ok: bounded by batch size
        }
        continue;
      }
      const ArrivalDecision decision =
          policy_->OnArrival(tq, *view);  // serialized(mu_)
      switch (decision.action) {
        case ArrivalDecision::Action::kAssign: {
          SCHEMBLE_CHECK_NE(decision.subset, 0u);
          CommitLocked(index, decision.subset);
          s->to_enqueue.push_back(  // hot-ok: bounded by batch size
              {index, decision.subset});
          for (int k = 0; k < view->num_models(); ++k) {
            if (!(decision.subset & (SubsetMask{1} << k))) continue;
            // Land the task on the projected least-loaded executor of
            // model k (where EnqueueBatch will place it) and refresh
            // the model's earliest availability.
            ExecutorView* best = nullptr;
            for (ExecutorView& ex : view->executors) {
              if (ex.model_index != k) continue;
              if (best == nullptr || ex.available_at < best->available_at) {
                best = &ex;
              }
            }
            // BuildViewInto drops fail-stopped executors, so an empty
            // candidate set means the model lost its last live replica.
            SCHEMBLE_CHECK(best != nullptr)
                << "no live executor for model " << k << " in domain "
                << options_.domain_id << " (fault scenarios must keep >= 1 "
                << "replica per model alive)";
            // Marginal-backlog advance, matching EnqueueBatch's projection
            // (reduces to one per-task latency with batching off).
            best->available_at =
                std::max(best->available_at, view->now) +
                BacklogServiceTime(k, best->queue_length + 1) -
                BacklogServiceTime(k, best->queue_length);
            ++best->queue_length;
            if (!view->model_queued.empty()) {
              ++view->model_queued[static_cast<size_t>(k)];
            }
            view->model_available_at[k] = kSimTimeMax;
            for (const ExecutorView& ex : view->executors) {
              if (ex.model_index != k) continue;
              view->model_available_at[k] =
                  std::min(view->model_available_at[k], ex.available_at);
            }
          }
          if (options_.allow_rejection) {
            deadline_heap_.push({tq.deadline, index});
            pushed_deadlines = true;
          }
          view_changed = true;
          break;
        }
        case ArrivalDecision::Action::kReject:
          if (ClaimFinalizeLocked(index)) {
            s->rejects.push_back(index);  // hot-ok: bounded by batch size
          }
          break;
        case ArrivalDecision::Action::kBuffer:
          state.buffered = true;
          buffer_.push_back(index);  // hot-ok: tracks the buffer high-water
          PublishBufferedLocked();
          if (options_.allow_rejection) {
            deadline_heap_.push({tq.deadline, index});
            pushed_deadlines = true;
          }
          view_changed = true;
          break;
      }
    }
    // One generation bump per batch that assigned (capacity consumed) or
    // buffered (planning inputs grew) anything. A pure-reject batch leaves
    // the planner's world untouched, which is exactly what lets the
    // scheduler skip the redundant replan it would otherwise be woken for.
    if (view_changed) ++view_generation_;
    // Scheduler wakeup folded into the admission critical section (same
    // idiom as worker completions): anything buffered deserves a planning
    // round.
    if (!buffer_.empty()) {
      scheduler_signal_ = true;
      notify_scheduler = true;
    }
  }
  EnqueueBatch(s->to_enqueue, &s->dispatch);
  for (const int index : s->rejects) {
    host_->FinalizeQuery(options_.domain_id, index, 0, clock_->Now());
  }
  if (pushed_deadlines) deadline_cv_.NotifyAll();
  if (notify_scheduler) scheduler_cv_.NotifyOne();
}

bool SchedulerDomain::PlanAndDispatch(bool off_lock, bool allow_skip,
                                      uint64_t* last_planned_gen,
                                      PlanWorkspace* plan_ws,
                                      ServerView* view, SchedulerScratch* s) {
  s->commits.clear();
  SimTime overhead = 0;
  bool idle_and_stuck = false;
  size_t stuck_buffered = 0;
  bool replanning = false;
  {
    MutexLock lock(&mu_);
    if (shutdown_) return false;
    if (buffer_.empty()) return true;
    // Replan avoidance: when nothing that feeds the planner changed since
    // the last planned snapshot (no admission assigned or buffered, no
    // batch completed, no buffered query finalized/donated/re-queued),
    // re-running PlanOnView could only reproduce the previous answer —
    // skip the whole snapshot -> plan -> commit round. Tick-driven rounds
    // (allow_skip false) and the arrivals-done drain tail always plan, so
    // the force-mode stuck diagnostic below can still fire.
    if (off_lock && allow_skip && !arrivals_done_ &&
        view_generation_ == *last_planned_gen) {
      // relaxed-ok: monotonic telemetry counter
      replans_skipped_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    BuildViewInto(view);
    bool any_idle = false;
    for (const ExecutorView& ex : view->executors) {
      if (ex.available_at <= view->now) {
        any_idle = true;
        break;
      }
    }
    if (!any_idle && !batch_models_.empty()) {
      // Batching: keep planning while any executor still has coalescing
      // headroom. Filling a busy executor's queue up to one full batch is
      // exactly what lets its worker drain the backlog as one coalesced
      // execution; waiting for idleness would pin queues at depth <= 1 and
      // no batch would ever form.
      for (const ExecutorView& ex : view->executors) {
        if (ex.queue_length <
            batch_models_[static_cast<size_t>(ex.model_index)].max_batch) {
          any_idle = true;
          break;
        }
      }
    }
    if (!any_idle) return true;
    if (off_lock) {
      // Snapshot -> plan -> validate/commit. The short critical section
      // only copies state; the policy plans against the immutable
      // snapshot with the mutex RELEASED, so arrivals and completions
      // keep flowing while the DP runs.
      SnapshotBufferLocked(plan_ws);
      // Remember the snapshot's generation, not the post-commit one: a
      // foreign bump during the off-lock plan (arrival, completion) must
      // force the next round to plan against the fresher state.
      const uint64_t snapshot_gen = view_generation_;
      lock.Release();
      // relaxed-ok: monotonic telemetry counter
      plans_.fetch_add(1, std::memory_order_relaxed);
      policy_->PlanOnView(*view, plan_ws);
      overhead = plan_ws->output.overhead_us;
      lock.Acquire();
      if (shutdown_) return false;
      // Validation: a plan entry is committable only if its query's
      // generation still matches the snapshot — otherwise the deadline
      // thread, a worker, or a donation moved the query while we planned,
      // and the entry is stale.
      int64_t invalidated = 0;
      for (const BufferedAssignment& assignment :
           plan_ws->output.assignments) {
        SCHEMBLE_CHECK_NE(assignment.subset, 0u);
        const SnapshotQuery* snap = nullptr;
        for (const SnapshotQuery& candidate : plan_ws->buffer) {
          if (candidate.traced->query.id == assignment.query_id) {
            snap = &candidate;
            break;
          }
        }
        SCHEMBLE_CHECK(snap != nullptr)
            << "plan references a query outside its snapshot";
        const QueryState& state = states_[static_cast<size_t>(snap->index)];
        if (state.generation != snap->generation) {
          ++invalidated;
          continue;
        }
        SCHEMBLE_DCHECK(!state.finalized && state.assigned == 0u)
            << "generation matched but the query moved on";
        CommitLocked(snap->index, assignment.subset);
        s->commits.push_back({snap->index, assignment.subset});
      }
      plan_commits_.fetch_add(static_cast<int64_t>(s->commits.size()),
                              // relaxed-ok: monotonic telemetry counter
                              std::memory_order_relaxed);
      if (invalidated > 0) {
        plans_invalidated_.fetch_add(invalidated, std::memory_order_relaxed);
        // Part of the plan went stale: immediately re-plan whatever is
        // still buffered against fresh state (self-signal).
        if (!buffer_.empty()) {
          // relaxed-ok: monotonic telemetry counter
          replans_.fetch_add(1, std::memory_order_relaxed);
          scheduler_signal_ = true;
          replanning = true;
        }
      }
      *last_planned_gen = snapshot_gen;
    } else {
      // Compatibility path for stateful policies (the baselines): plan
      // under the mutex, exactly the seed behaviour. No validation is
      // needed — nothing can move while the lock is held.
      s->pointers.clear();
      for (int index : buffer_) {
        s->pointers.push_back(&trace_->items[static_cast<size_t>(index)]);
      }
      const PolicyOutput output =
          policy_->OnIdle(*view, s->pointers);  // serialized(mu_)
      for (const BufferedAssignment& assignment : output.assignments) {
        const int index = host_->query_index(assignment.query_id);
        SCHEMBLE_CHECK_NE(assignment.subset, 0u);
        CommitLocked(index, assignment.subset);
        s->commits.push_back({index, assignment.subset});
      }
      overhead = output.overhead_us;
    }
    idle_and_stuck = s->commits.empty() && arrivals_done_ && !buffer_.empty();
    // Snapshot for the off-lock error log below: buffer_ is guarded and
    // workers may finalize (and un-buffer) queries concurrently.
    stuck_buffered = buffer_.size();
  }
  if (!s->commits.empty()) {
    // The simulator charges scheduling overhead by delaying the
    // dispatched tasks' start; here the scheduler thread pays it in
    // (scaled) wall-clock time before enqueueing.
    if (overhead > 0) clock_->SleepFor(overhead);
    EnqueueBatch(s->commits, &s->dispatch);
  } else if (idle_and_stuck && !replanning && !options_.allow_rejection &&
             options_.num_domains == 1) {
    // Force mode has no deadline thread to finalize abandoned queries; a
    // policy that leaves the buffer untouched forever would hang the run.
    // Multi-domain configurations suppress the log: a stuck shard is
    // expected to be drained by peer steals/donations instead.
    SCHEMBLE_LOG(kError) << "policy left " << stuck_buffered
                         << " buffered queries with idle executors in "
                            "force mode";
  }
  return true;
}

void SchedulerDomain::MaybeSteal(ServerView* view, SchedulerScratch* s) {
  // relaxed-ok: monotonic telemetry counter
  if (buffered_count_.load(std::memory_order_relaxed) > 0) return;
  if (inbox_depth_.load(std::memory_order_acquire) > 0) return;
  bool any_idle = false;
  for (const Executor& ex : executors_) {
    // A fail-stopped executor is permanently not-busy with an empty queue;
    // without this skip it would read as idle capacity and drive steals
    // forever.
    if (ex.failed.load(std::memory_order_acquire)) continue;
    if (!ex.busy.load(std::memory_order_acquire) &&
        ex.queued.load(std::memory_order_acquire) == 0) {
      any_idle = true;
      break;
    }
  }
  if (!any_idle) return;
  // Victim selection: the peer with the deepest routed backlog. Published
  // depths are approximate; a stale pick just means a smaller (or empty)
  // steal.
  int victim = -1;
  int64_t deepest = 0;
  for (int d = 0; d < host_->num_domains(); ++d) {
    if (d == options_.domain_id) continue;
    const int64_t depth = host_->peer(d).inbox_depth();  // crosses(domain)
    if (depth > deepest) {
      deepest = depth;
      victim = d;
    }
  }
  if (victim < 0) return;
  s->stolen.clear();
  const size_t got = host_->peer(victim).StealRouted(  // crosses(domain)
      &s->stolen, static_cast<size_t>(options_.steal_batch));
  if (got == 0) return;
  // relaxed-ok: monotonic telemetry counter
  steals_.fetch_add(1, std::memory_order_relaxed);
  stolen_.fetch_add(static_cast<int64_t>(got), std::memory_order_relaxed);
  AdmitBatch(s->stolen, view, s);
}

void SchedulerDomain::MaybeRebalance(SchedulerScratch* s) {
  s->donations.clear();
  int target = -1;
  {
    MutexLock lock(&mu_);
    if (shutdown_) return;
    const int64_t local_buffered = static_cast<int64_t>(buffer_.size());
    // Only shed load when the buffer is deep relative to our executor
    // slice — a couple of in-flight plans' worth stays local.
    if (local_buffered <= 2 * static_cast<int64_t>(executors_.size())) {
      return;
    }
    const int64_t own_load = local_buffered +
                             inbox_depth_.load(std::memory_order_acquire) +
                             queued_tasks();
    const int64_t own_ex = static_cast<int64_t>(executors_.size());
    int64_t best_load = 0;
    int64_t best_ex = 1;
    for (int d = 0; d < host_->num_domains(); ++d) {
      if (d == options_.domain_id) continue;
      SchedulerDomain& p = host_->peer(d);  // crosses(domain)
      const int64_t load =
          p.inbox_depth() + p.buffered_count() + p.queued_tasks();
      const int64_t ex = std::max(p.num_executors(), 1);
      // Normalized compare via integer cross-multiplication.
      if (target < 0 || load * best_ex < best_load * ex) {
        target = d;
        best_load = load;
        best_ex = ex;
      }
    }
    // Donate only into a pronounced imbalance: the recipient must sit
    // under half our normalized pressure, so balanced systems never churn.
    if (target < 0 || !(2 * best_load * own_ex < own_load * best_ex)) {
      return;
    }
    const size_t batch =
        std::min(static_cast<size_t>(options_.steal_batch),
                 buffer_.size() - executors_.size());
    for (size_t i = 0; i < batch; ++i) {
      const int index = buffer_.back();
      buffer_.pop_back();
      QueryState& state = states_[static_cast<size_t>(index)];
      SCHEMBLE_DCHECK(state.buffered && state.owned && !state.finalized &&
                      state.assigned == 0u);
      state.buffered = false;
      state.owned = false;
      // Invalidate any in-flight plan entry for the migrating query.
      ++state.generation;
      s->donations.push_back(index);
    }
    PublishBufferedLocked();
    // Donations shrank the buffer: invalidate any skip decision pending on
    // the old view.
    if (!s->donations.empty()) ++view_generation_;
  }
  if (s->donations.empty()) return;
  SchedulerDomain& peer = host_->peer(target);
  size_t sent = 0;
  size_t kept = 0;
  for (const int index : s->donations) {
    if (peer.TryPushRouted(index)) {  // crosses(domain)
      ++sent;
    } else {
      // Recipient inbox full/closed: keep the leftover local.
      s->donations[kept++] = index;
    }
  }
  if (sent > 0) {
    // No explicit wakeup: the recipient's blocking admitter is woken by
    // its inbox's own condition variable.
    // relaxed-ok: monotonic telemetry counter
    rebalances_.fetch_add(1, std::memory_order_relaxed);
    donated_.fetch_add(static_cast<int64_t>(sent), std::memory_order_relaxed);
  }
  if (kept > 0) {
    bool readmitted = false;
    {
      MutexLock lock(&mu_);
      for (size_t i = 0; i < kept; ++i) {
        const int index = s->donations[i];
        QueryState& state = states_[static_cast<size_t>(index)];
        if (state.finalized) continue;
        state.owned = true;
        state.buffered = true;
        buffer_.push_back(index);
        // The deadline thread may have popped (and skipped) this query's
        // heap entry during the un-owned window; re-arm unconditionally —
        // duplicate entries are dropped on pop via the finalized check.
        if (options_.allow_rejection) {
          const TracedQuery& tq = trace_->items[static_cast<size_t>(index)];
          deadline_heap_.push({tq.deadline, index});
        }
        readmitted = true;
      }
      PublishBufferedLocked();
      if (readmitted) ++view_generation_;
    }
    if (readmitted) deadline_cv_.NotifyAll();
  }
}

void SchedulerDomain::AdmitterLoop() {
  // The admission half of the pre-sharding server, per domain: block on
  // the inbox (the queue's own condition variable provides the wakeup),
  // run the OnArrival decisions under mu_, dispatch/finalize off-lock.
  // Runs CONCURRENTLY with the scheduler thread's off-lock planning, so a
  // long DP round never delays admission — arrivals keep flowing into the
  // buffer (and their deadline-heap entries keep getting armed) while the
  // planner thinks.
  ServerView view;
  SchedulerScratch scratch;
  while (true) {
    scratch.incoming.clear();
    const size_t drained = inbox_.PopN(
        &scratch.incoming, static_cast<size_t>(options_.inbox_capacity));
    if (drained == 0) return;  // closed and drained: shutdown
    inbox_depth_.fetch_sub(static_cast<int64_t>(drained),
                           std::memory_order_acq_rel);
    AdmitBatch(scratch.incoming, &view, &scratch);
    PublishLoad();
  }
}

void SchedulerDomain::SchedulerLoop() {
  const bool off_lock = policy_->SupportsOffLockPlanning();
  const bool multi = options_.num_domains > 1;
  const auto tick = RealDuration(options_.rebalance_period, options_.speedup);
  PlanWorkspace plan_ws;
  if (off_lock) plan_ws.state = policy_->CreatePlanState();
  ServerView view;
  SchedulerScratch scratch;
  SimTime last_rebalance = 0;
  // Generation of the last snapshot actually fed to PlanOnView; the
  // sentinel guarantees the first signalled round always plans.
  uint64_t last_planned_gen = ~uint64_t{0};
  while (true) {
    bool tick_fired = false;
    {
      MutexLock lock(&mu_);
      while (!scheduler_signal_ && !shutdown_) {
        if (multi) {
          // Multi-domain schedulers wake on a periodic tick to scan for
          // steal/rebalance opportunities even with no local signal.
          if (!scheduler_cv_.WaitFor(mu_, tick)) {
            tick_fired = true;
            break;
          }
        } else {
          scheduler_cv_.Wait(mu_);
        }
      }
      if (shutdown_) return;
      scheduler_signal_ = false;
    }

    // Snapshot -> plan -> validate/commit over the buffered shard.
    // Tick-driven rounds never skip: the periodic scan is also the
    // backstop that re-plans after pure time passage (availability
    // projections age even when no generation-bumping event fired).
    if (!PlanAndDispatch(off_lock, !tick_fired, &last_planned_gen, &plan_ws,
                         &view, &scratch)) {
      return;
    }

    // Multi-domain: steal when starving, donate when drowning.
    if (multi) {
      MaybeSteal(&view, &scratch);
      const SimTime now = clock_->Now();
      if (tick_fired || now - last_rebalance >= options_.rebalance_period) {
        last_rebalance = now;
        MaybeRebalance(&scratch);
      }
    }
    PublishLoad();
  }
}

void SchedulerDomain::DeadlineLoop() {
  // Deadlines are armed at admission (assign or buffer) and walked in
  // order; stale entries — finalized queries, queries donated away during
  // the un-owned window — are dropped on pop. Sleeps on the domain mutex's
  // condition variable so newly admitted earlier deadlines and shutdown
  // both interrupt the wait.
  MutexLock lock(&mu_);
  while (!shutdown_) {
    if (deadline_heap_.empty()) {
      deadline_cv_.Wait(mu_);
      continue;
    }
    const auto [when, index] = deadline_heap_.top();
    const SimTime now = clock_->Now();
    if (now < when) {
      deadline_cv_.WaitFor(mu_, RealDuration(when - now, options_.speedup));
      continue;
    }
    deadline_heap_.pop();
    const QueryState& state = states_[static_cast<size_t>(index)];
    // Un-owned: the query migrated to a peer (its heap covers the
    // deadline) or is in flight to one (the recipient's admission path
    // finalizes overdue queries immediately).
    if (!state.owned) continue;
    if (!ClaimFinalizeLocked(index)) continue;
    const SubsetMask outputs = state.done;
    const SimTime completion =
        outputs != 0 ? state.last_done_time : clock_->Now();
    lock.Release();
    host_->FinalizeQuery(options_.domain_id, index, outputs, completion);
    lock.Acquire();
  }
}

SCHEMBLE_HOT size_t SchedulerDomain::CoalesceBatch(Executor& ex,
                                                   const std::vector<Task>& run,
                                                   size_t start, size_t cap,
                                                   TaskBatch* batch) {
  batch->tasks.clear();
  const size_t capacity_before = batch->tasks.capacity();
  size_t t = start;
  while (t < run.size() && batch->tasks.size() < cap) {
    batch->tasks.push_back(run[t++]);
  }
  if (batch->tasks.size() < cap) {
    // Top up from the queue without blocking: coalesce whatever compatible
    // backlog is already waiting, never wait for more to arrive.
    ex.queue->TryPopN(&batch->tasks, cap - batch->tasks.size());
  }
  // The workspace is reserved to `cap` by the worker, so steady-state
  // coalescing never grows it; the counter feeds the caller's grow guard.
  if (batch->tasks.capacity() != capacity_before) ++batch->grow_events;
  return t;
}

void SchedulerDomain::WorkerLoop(int executor_id) {
  // Longest task run drained from the queue per lock round-trip. Tasks in
  // the local run still count in `queued` (each is decremented at its own
  // service start), so load estimates keep seeing them.
  constexpr size_t kRunLength = 16;
  Executor& ex = executors_[static_cast<size_t>(executor_id)];
  const ModelProfile& profile = task_->profile(ex.model);
  const ExecutorFault& fault = ex.fault;
  const bool batching = !batch_models_.empty();
  const BatchLatencyModel batch_model =
      batching ? batch_models_[static_cast<size_t>(ex.model)]
               : BatchLatencyModel{};
  // Coalescing cap per execution. 1 (batching off) reproduces the per-task
  // path exactly: one jitter draw, one completion lock round-trip and one
  // profile.latency_us service interval per task.
  const size_t cap =
      batching ? static_cast<size_t>(batch_model.max_batch) : 1;
  Rng rng(HashSeed("worker", options_.seed + ex.global_id));
  std::vector<Task> run;
  run.reserve(kRunLength);
  TaskBatch batch;  // batch-workspace: one reusable workspace per worker
  batch.tasks.reserve(std::max(cap, size_t{1}));
  // Per-batch finalize list, drained off-lock (capacity pins at cap).
  struct Done {
    int index;
    SubsetMask outputs;
    SimTime completion;
  };
  std::vector<Done> finalizes;
  finalizes.reserve(cap);
  while (true) {
    run.clear();
    if (ex.queue->PopN(&run, kRunLength) == 0) {
      return;  // closed and drained: shutdown
    }
    size_t t = 0;
    while (t < run.size()) {
      if (fault.fail_at > 0 && clock_->Now() >= fault.fail_at) {
        // Fail-stop: this executor dies at the first task (batch) examined
        // past fail_at. The un-started local remainder plus everything
        // still queued flows back through RequeueTasks so no query is
        // lost — the worker thread then exits for good. Tasks already
        // coalesced into earlier batches completed normally, so per-task
        // conservation holds across the failure.
        std::vector<Task> backlog(run.begin() + static_cast<ptrdiff_t>(t),
                                  run.end());
        FailStopExecutor(executor_id, &backlog);
        return;
      }
      {
        // Steady state: the workspace was reserved to the coalescing cap
        // up front, so the drain may not grow it.
        ScopedGrowGuard grow_guard(batch.grow_events, "worker coalesce");
        t = CoalesceBatch(ex, run, t, cap, &batch);
      }
      const size_t n = batch.tasks.size();
      ex.queued.fetch_sub(static_cast<int64_t>(n),
                          std::memory_order_acq_rel);

      // One jitter draw per batched execution — per task when cap == 1,
      // the exact pre-batching RNG stream.
      double factor =
          std::max(0.2, 1.0 + profile.latency_jitter * rng.Normal()) /
          fault.speed;
      const SimTime start = clock_->Now();
      if (fault.straggle_after > 0 && start >= fault.straggle_after) {
        // Straggler injection: every task serviced past the onset time is
        // inflated, modelling thermal throttling / noisy-neighbour decay.
        factor *= fault.straggle_factor;
      }
      const SimTime nominal =
          batching ? batch_model.ServiceUs(static_cast<int>(n))
                   : profile.latency_us;
      const SimTime service =
          static_cast<SimTime>(static_cast<double>(nominal) * factor);
      ex.busy_until.store(start + service, std::memory_order_release);
      ex.busy.store(true, std::memory_order_release);
      if (options_.service_mode == ServiceMode::kSleep) {
        clock_->SleepUntil(start + service);
      } else {
        // Host-bound inference: burn CPU until the service interval
        // passes.
        volatile double sink = 0.0;
        while (clock_->Now() < start + service) {
          double acc = sink;
          for (int it = 0; it < 256; ++it) acc += std::sqrt(acc + it);
          sink = acc;
        }
      }
      ex.busy.store(false, std::memory_order_release);
      // relaxed-ok: advisory backlog hint; a stale read only delays a steal
      batches_executed_.fetch_add(1, std::memory_order_relaxed);
      tasks_batched_.fetch_add(static_cast<int64_t>(n),
                               std::memory_order_relaxed);

      // Batch completion: one lock round-trip covers every coalesced task,
      // with PR-7's per-task generation discipline intact — stale tasks
      // (query re-queued or re-assigned since dispatch) are dropped
      // individually, never the whole batch.
      finalizes.clear();
      bool notify = false;
      {
        MutexLock lock(&mu_);
        for (const Task& task : batch.tasks) {
          const int index = task.query_index;
          QueryState& state = states_[static_cast<size_t>(index)];
          if (!state.finalized && state.generation == task.generation) {
            state.done |= SubsetMask{1} << ex.model;
            state.last_done_time = clock_->Now();
            if (state.done == state.assigned && ClaimFinalizeLocked(index)) {
              finalizes.push_back(
                  {index, state.done, state.last_done_time});
            }
          } else if (!state.finalized) {
            // Generation moved on while this task was in service: the
            // query was re-queued after a sibling executor fail-stopped
            // (or donated away and re-planned). Its new assignment owns
            // the done mask now; folding this stale completion in would
            // corrupt it.
            // relaxed-ok: monotonic telemetry counter
            stale_tasks_dropped_.fetch_add(1, std::memory_order_relaxed);
          }
        }
        // A completed batch always frees projected capacity, so any
        // planning skip pending on the old view is stale.
        ++view_generation_;
        // Scheduler wakeup folded into the completion critical section:
        // capacity just freed up, so if anything is buffered the planner
        // should look at it. No separate notify lock round-trip.
        if (!buffer_.empty()) {
          scheduler_signal_ = true;
          notify = true;
        }
      }
      for (const Done& done : finalizes) {
        host_->FinalizeQuery(options_.domain_id, done.index, done.outputs,
                             done.completion);
      }
      if (notify) scheduler_cv_.NotifyOne();
      PublishLoad();
    }
  }
}

void SchedulerDomain::FailStopExecutor(int executor_id,
                                       std::vector<Task>* backlog) {
  Executor& ex = executors_[static_cast<size_t>(executor_id)];
  // Publish the failure first: dispatch/planning observe it and stop
  // routing here. A dispatcher that raced past the flag hits the closed
  // queue below and re-queues its own remainder (EnqueueBatch shortfall
  // path), so the two sides never double-count a task.
  ex.failed.store(true, std::memory_order_release);
  ex.busy.store(false, std::memory_order_release);
  ex.queue->CloseAndDrain(backlog);
  // Everything in `backlog` — the worker's un-started local run remainder
  // plus the freshly drained queue — was still counted in `queued` (the
  // per-task decrement happens at service start, which none of them
  // reached). Conservation: each backlog task is decremented here exactly
  // once and re-queued exactly once.
  ex.queued.fetch_sub(static_cast<int64_t>(backlog->size()),
                      std::memory_order_acq_rel);
  // relaxed-ok: monotonic telemetry counter
  failstops_.fetch_add(1, std::memory_order_relaxed);
  RequeueTasks(*backlog);
}

void SchedulerDomain::RequeueTasks(const std::vector<Task>& tasks) {
  if (tasks.empty()) return;
  std::vector<int> to_route;
  to_route.reserve(tasks.size());
  {
    MutexLock lock(&mu_);
    for (const Task& task : tasks) {
      QueryState& state = states_[static_cast<size_t>(task.query_index)];
      if (state.finalized || state.generation != task.generation) {
        // Finalized (deadline miss / shutdown drain) or already re-queued
        // via a sibling task of the same query: nothing left to recover.
        // relaxed-ok: monotonic telemetry counter
        stale_tasks_dropped_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      // A live task implies a dispatched query: owned by this domain, out
      // of the buffer, with a committed subset. Anything else means a task
      // leaked past the generation discipline.
      SCHEMBLE_CHECK(state.owned && !state.buffered && state.assigned != 0u)
          << "re-queued task for query in impossible state (domain "
          << options_.domain_id << ")";
      // Full readmission: wipe the assignment (sibling in-flight tasks of
      // the old subset turn stale via the generation bump and are dropped
      // at completion) and send the query back through the domain inbox so
      // the policy decides afresh against post-failure capacity.
      state.assigned = 0;
      state.done = 0;
      state.owned = false;
      ++state.generation;
      to_route.push_back(task.query_index);
    }
    // The wiped assignments freed executor capacity the planner projected
    // as consumed: never let a pending skip hide the recovery replan.
    if (!to_route.empty()) ++view_generation_;
  }
  if (to_route.empty()) return;
  requeues_.fetch_add(static_cast<int64_t>(to_route.size()),
                      // relaxed-ok: monotonic telemetry counter
                      std::memory_order_relaxed);
  size_t kept = 0;
  for (const int index : to_route) {
    // Non-blocking: a blocking push from the admitter's own call stack
    // (EnqueueBatch shortfall) would deadlock on a full inbox, since this
    // thread is the only consumer. TryPushRouted wakes the admitter via
    // the inbox condition variable.
    if (!TryPushRouted(index)) to_route[kept++] = index;
  }
  if (kept == 0) return;
  // Inbox full or closed: re-buffer the leftovers directly (same fallback
  // as donation leftovers). The policy's arrival decision is skipped, but
  // the scheduler's next planning round covers them; finalized queries
  // cannot appear here (a query is only finalizable while owned, and these
  // were un-owned for the whole window).
  bool readmitted = false;
  {
    MutexLock lock(&mu_);
    for (size_t i = 0; i < kept; ++i) {
      const int index = to_route[i];
      QueryState& state = states_[static_cast<size_t>(index)];
      if (state.finalized) continue;
      state.owned = true;
      state.buffered = true;
      buffer_.push_back(index);
      // Re-arm the deadline: the heap entry may have popped (and been
      // skipped as un-owned) during the window; duplicates drop on pop.
      if (options_.allow_rejection) {
        const TracedQuery& tq = trace_->items[static_cast<size_t>(index)];
        deadline_heap_.push({tq.deadline, index});
      }
      readmitted = true;
    }
    if (readmitted) {
      PublishBufferedLocked();
      scheduler_signal_ = true;
      ++view_generation_;
    }
  }
  if (readmitted) {
    deadline_cv_.NotifyAll();
    scheduler_cv_.NotifyOne();
  }
}

}  // namespace schemble
