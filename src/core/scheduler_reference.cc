// Seed implementation of DpScheduler::Schedule, kept verbatim (modulo the
// class name) as the reference for the equivalence tests and the "before"
// benchmark baseline. Intentionally heap-heavy; do not optimize.

#include "core/scheduler_reference.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace schemble {

namespace {

/// Per-cell solution: model-load vector plus back-pointers for plan
/// reconstruction.
struct DpSolution {
  std::vector<SimTime> avail;
  int parent_u = -1;     // utility index in the previous stage
  int parent_sol = -1;   // solution index within that cell
  SubsetMask subset = 0; // subset chosen for the stage's query
  SimTime completion = 0;
};

bool Dominates(const std::vector<SimTime>& a, const std::vector<SimTime>& b) {
  for (size_t k = 0; k < a.size(); ++k) {
    if (a[k] > b[k]) return false;
  }
  return true;
}

SimTime TotalLoad(const std::vector<SimTime>& avail) {
  SimTime total = 0;
  for (SimTime t : avail) total += t;
  return total;
}

/// Inserts `candidate` into the cell keeping it Pareto-minimal and within
/// the size cap.
void InsertPruned(std::vector<DpSolution>& cell, DpSolution candidate,
                  int cap) {
  for (const DpSolution& existing : cell) {
    if (Dominates(existing.avail, candidate.avail)) return;
  }
  cell.erase(std::remove_if(cell.begin(), cell.end(),
                            [&](const DpSolution& existing) {
                              return Dominates(candidate.avail,
                                               existing.avail);
                            }),
             cell.end());
  cell.push_back(std::move(candidate));
  if (static_cast<int>(cell.size()) > cap) {
    // Drop the entry with the largest total load.
    size_t worst = 0;
    SimTime worst_load = -1;
    for (size_t i = 0; i < cell.size(); ++i) {
      const SimTime load = TotalLoad(cell[i].avail);
      if (load > worst_load) {
        worst_load = load;
        worst = i;
      }
    }
    cell.erase(cell.begin() + worst);
  }
}

std::vector<SimTime> ClampedAvail(const SchedulerEnv& env) {
  std::vector<SimTime> avail(env.model_available_at.size());
  for (size_t k = 0; k < avail.size(); ++k) {
    avail[k] = std::max(env.model_available_at[k], env.now);
  }
  return avail;
}

std::vector<const SchedulerQuery*> SortQueriesEdf(
    const std::vector<SchedulerQuery>& queries) {
  std::vector<const SchedulerQuery*> sorted;
  sorted.reserve(queries.size());
  for (const auto& q : queries) sorted.push_back(&q);
  std::sort(sorted.begin(), sorted.end(),
            [](const SchedulerQuery* a, const SchedulerQuery* b) {
              if (a->deadline != b->deadline) return a->deadline < b->deadline;
              return a->id < b->id;  // stable tiebreak
            });
  return sorted;
}

}  // namespace

SchedulePlan ReferenceDpScheduler::Schedule(
    const std::vector<SchedulerQuery>& queries,
    const SchedulerEnv& env) const {
  last_ops_ = 0;
  SchedulePlan plan;
  if (queries.empty()) return plan;
  const int m = env.num_models();
  const SubsetMask full = FullMask(m);

  std::vector<const SchedulerQuery*> sorted = SortQueriesEdf(queries);
  // Queries beyond the window are deferred (subset 0) this round.
  std::vector<const SchedulerQuery*> deferred;
  if (static_cast<int>(sorted.size()) > options_.max_queries) {
    deferred.assign(sorted.begin() + options_.max_queries, sorted.end());
    sorted.resize(options_.max_queries);
  }
  const int n = static_cast<int>(sorted.size());

  // Quantized utilities; total quantized reward <= n / delta.
  const double delta = options_.delta;
  SCHEMBLE_CHECK_GT(delta, 0.0);
  const int max_u = static_cast<int>(std::ceil(n / delta)) + 1;

  // stages[i][u] = Pareto set of load vectors after deciding queries 0..i-1
  // with total quantized utility u.
  std::vector<std::vector<std::vector<DpSolution>>> stages(n + 1);
  stages[0].assign(1, {});
  {
    DpSolution init;
    init.avail = ClampedAvail(env);
    stages[0][0].push_back(std::move(init));
  }

  int reachable_u = 0;  // highest utility index reached in the last stage
  for (int i = 0; i < n; ++i) {
    const SchedulerQuery& query = *sorted[i];
    SCHEMBLE_CHECK_EQ(query.utilities.size(), static_cast<size_t>(full) + 1);
    const int prev_reachable = reachable_u;
    const int stage_max_u =
        std::min(max_u, prev_reachable + static_cast<int>(1.0 / delta) + 1);
    stages[i + 1].assign(stage_max_u + 1, {});
    for (int u = 0; u <= prev_reachable &&
                    u < static_cast<int>(stages[i].size());
         ++u) {
      for (int s = 0; s < static_cast<int>(stages[i][u].size()); ++s) {
        const DpSolution& sol = stages[i][u][s];
        for (SubsetMask mask = 0; mask <= full; ++mask) {
          ++last_ops_;
          DpSolution next;
          next.avail = sol.avail;
          next.parent_u = u;
          next.parent_sol = s;
          next.subset = mask;
          int nu = u;
          if (mask != 0) {
            next.completion =
                ApplySubset(mask, env.model_exec_time, next.avail);
            if (next.completion > query.deadline) continue;
            nu = u + static_cast<int>(query.utilities[mask] / delta);
          }
          if (nu > stage_max_u) nu = stage_max_u;
          InsertPruned(stages[i + 1][nu], std::move(next),
                       options_.max_solutions_per_cell);
          if (nu > reachable_u) reachable_u = nu;
        }
      }
    }
  }

  // Best non-empty cell in the final stage.
  int best_u = -1;
  for (int u = static_cast<int>(stages[n].size()) - 1; u >= 0; --u) {
    if (!stages[n][u].empty()) {
      best_u = u;
      break;
    }
  }
  SCHEMBLE_CHECK_GE(best_u, 0);
  // Among solutions of the best cell prefer the lightest load.
  int best_sol = 0;
  SimTime best_load = kSimTimeMax;
  for (size_t s = 0; s < stages[n][best_u].size(); ++s) {
    const SimTime load = TotalLoad(stages[n][best_u][s].avail);
    if (load < best_load) {
      best_load = load;
      best_sol = static_cast<int>(s);
    }
  }

  // Reconstruct decisions back to front.
  plan.decisions.resize(n + deferred.size());
  int u = best_u;
  int s = best_sol;
  for (int i = n; i >= 1; --i) {
    const DpSolution& sol = stages[i][u][s];
    plan.decisions[i - 1] = {sorted[i - 1]->id, sol.subset, sol.completion};
    if (sol.subset != 0) {
      plan.total_utility += sorted[i - 1]->utilities[sol.subset];
    }
    u = sol.parent_u;
    s = sol.parent_sol;
  }
  for (size_t d = 0; d < deferred.size(); ++d) {
    plan.decisions[n + d] = {deferred[d]->id, 0, 0};
  }
  return plan;
}

}  // namespace schemble
