#include "core/scheduler.h"

#include "common/hot_path.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.h"

// The DP transition loop calls InsertPruned once per examined transition;
// inlining it keeps the trial loads in registers across the call boundary.
#if defined(__GNUC__) || defined(__clang__)
#define SCHEMBLE_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define SCHEMBLE_ALWAYS_INLINE inline
#endif

namespace schemble {

SimTime ApplySubset(SubsetMask subset, const std::vector<SimTime>& exec_time,
                    std::vector<SimTime>& avail) {
  SimTime completion = 0;
  for (size_t k = 0; k < avail.size(); ++k) {
    if (subset & (SubsetMask{1} << k)) {
      avail[k] += exec_time[k];
      completion = std::max(completion, avail[k]);
    }
  }
  return completion;
}

void ComputeSubsetWork(const std::vector<SimTime>& exec_time,
                       std::vector<SimTime>& work) {
  const SubsetMask full = FullMask(static_cast<int>(exec_time.size()));
  work.assign(static_cast<size_t>(full) + 1, 0);
  for (SubsetMask mask = 1; mask <= full; ++mask) {
    const SubsetMask low = mask & (~mask + 1);
    work[mask] = work[mask ^ low] + exec_time[std::countr_zero(mask)];
  }
}

namespace {

LoadVector ClampedAvail(const SchedulerEnv& env) {
  LoadVector avail;
  avail.resize(env.num_models());
  for (int k = 0; k < avail.size(); ++k) {
    avail[k] = std::max(env.model_available_at[k], env.now);
  }
  return avail;
}

bool Before(const SchedulerQuery* a, const SchedulerQuery* b,
            GreedyScheduler::Order order) {
  switch (order) {
    case GreedyScheduler::Order::kEdf:
      if (a->deadline != b->deadline) return a->deadline < b->deadline;
      break;
    case GreedyScheduler::Order::kFifo:
      if (a->arrival != b->arrival) return a->arrival < b->arrival;
      break;
    case GreedyScheduler::Order::kSjf:
      if (a->predicted_score != b->predicted_score) {
        return a->predicted_score < b->predicted_score;
      }
      break;
  }
  return a->id < b->id;  // stable tiebreak
}

void SortQueriesInto(const std::vector<SchedulerQuery>& queries,
                     GreedyScheduler::Order order,
                     std::vector<const SchedulerQuery*>& sorted) {
  sorted.clear();
  sorted.reserve(queries.size());
  for (const auto& q : queries) sorted.push_back(&q);
  std::sort(sorted.begin(), sorted.end(),
            [order](const SchedulerQuery* a, const SchedulerQuery* b) {
              return Before(a, b, order);
            });
}

/// Grows `v` to hold at least `n` elements, counting capacity growths (the
/// zero-allocation invariant tracks these). Capacity is never released, so
/// steady-state calls stay within the high-water mark.
template <typename V>
void GrowTo(V& v, size_t n, DpScheduler::WorkspaceStats& stats) {
  if (v.size() >= n) return;
  if (v.capacity() < n) {
    ++stats.grow_events;
    v.reserve(std::max(n, v.capacity() * 2));
  }
  v.resize(n);
}

}  // namespace

SCHEMBLE_HOT int DpScheduler::ActivateCell(Cell& cell, int m) const {
  const int slots = options_.max_solutions_per_cell + 1;
  cell.begin = ws_.slots_used;
  const size_t new_used = static_cast<size_t>(ws_.slots_used) + slots;
  GrowTo(ws_.slot_total, new_used, ws_.stats);
  GrowTo(ws_.slot_meta, new_used, ws_.stats);
  GrowTo(ws_.slot_load, new_used * static_cast<size_t>(m), ws_.stats);
  ws_.slots_used = static_cast<int>(new_used);
  return cell.begin;
}

void DpScheduler::BuildCandidates(const SchedulerQuery& query,
                                  const SchedulerEnv& env,
                                  const SimTime* init_avail,
                                  SubsetMask full) const {
  std::vector<Candidate>& cand = ws_.candidates;
  cand.clear();
  // The empty subset (defer the query) is always a transition.
  cand.push_back(Candidate{});
  const double delta = options_.delta;
  for (SubsetMask mask = 1; mask <= full; ++mask) {
    // Loads only grow as the DP advances through queries, so a completion
    // bound computed from the initial availability is a true lower bound:
    // masks failing it would be skipped by every transition anyway.
    SimTime lower_bound = 0;
    SubsetMask bits = mask;
    while (bits != 0) {
      const int k = std::countr_zero(bits);
      bits &= bits - 1;
      lower_bound =
          std::max(lower_bound, init_avail[k] + env.model_exec_time[k]);
    }
    if (lower_bound > query.deadline) continue;
    Candidate c;
    c.mask = mask;
    c.raw_utility = query.utilities[mask];
    c.du = static_cast<int>(c.raw_utility / delta);
    c.work = ws_.mask_work[mask];
    cand.push_back(c);
  }
  if (options_.equivalence_mode) return;
  // Dominance filter on (work, utility): drop mask A when a proper subset
  // B of A has utility(B) >= utility(A). B's per-model load contribution is
  // component-wise <= A's from any DP state, so every plan using A maps to
  // a feasible plan using B with no less utility — the achievable optimum
  // is unchanged (only tie-breaking may differ; equivalence mode disables
  // this filter).
  size_t keep = 0;
  for (size_t a = 0; a < cand.size(); ++a) {
    bool dominated = false;
    for (size_t b = 0; b < cand.size() && !dominated; ++b) {
      if (b == a) continue;
      const bool proper_subset =
          (cand[b].mask & cand[a].mask) == cand[b].mask &&
          cand[b].mask != cand[a].mask;
      dominated = proper_subset && cand[b].raw_utility >= cand[a].raw_utility;
    }
    if (!dominated) cand[keep++] = cand[a];
  }
  cand.resize(keep);
}

template <int M>
SCHEMBLE_HOT void DpScheduler::InsertSorted(Cell& cell, const SimTime* trial,
                                            SimTime total, SimTime completion,
                                            int parent_u, int parent_sol,
                                            SubsetMask subset) const {
  // Cell entries stay sorted by total load (ascending). Componentwise
  // dominance implies total-load ordering, so entries with a smaller total
  // can only dominate the candidate and entries with a larger total can
  // only be dominated by it: one directional compare per entry instead of
  // two, and the heaviest entry (the eviction victim) is always last.
  //
  // O(1) rejection: a candidate strictly heavier than everything in a full
  // cell dominates no entry (dominance implies total <=), so the cell would
  // stay unchanged and the candidate — the unique heaviest entry — would be
  // the eviction victim. About a fifth of all insertions in a saturated DP
  // exit here without touching the load rows.
  if (cell.count == options_.max_solutions_per_cell &&
      total > ws_.slot_total[cell.begin + cell.count - 1]) {
    return;
  }
  int write = 0;
  int pos = -1;  // insertion position: first kept entry heavier than us
  if (cell.count > 0) {
    SimTime* totals = ws_.slot_total.data() + cell.begin;
    SimTime* loads = ws_.slot_load.data() + static_cast<size_t>(cell.begin) * M;
    SlotMeta* meta = ws_.slot_meta.data() + cell.begin;
    for (int s = 0; s < cell.count; ++s) {
      const SimTime t = totals[s];
      const SimTime* row = loads + static_cast<size_t>(s) * M;
      if (t <= total) {
        bool exist_le = true;  // row <= trial componentwise
        for (int k = 0; k < M; ++k) exist_le &= row[k] <= trial[k];
        // Safe to return mid-pass: a drop before this point would mean the
        // candidate dominates a cell entry while being dominated itself,
        // which transitivity forbids in a mutually non-dominated cell.
        if (exist_le) return;
        if (t == total) {
          bool cand_le = true;  // trial <= row componentwise
          for (int k = 0; k < M; ++k) cand_le &= trial[k] <= row[k];
          if (cand_le) continue;  // candidate dominates: drop
        }
      } else {
        bool cand_le = true;
        for (int k = 0; k < M; ++k) cand_le &= trial[k] <= row[k];
        if (cand_le) continue;  // candidate dominates: drop
        if (pos < 0) pos = write;
      }
      if (write != s) {
        totals[write] = t;
        meta[write] = meta[s];
        SimTime* dst = loads + static_cast<size_t>(write) * M;
        for (int k = 0; k < M; ++k) dst[k] = row[k];
      }
      ++write;
    }
  }
  if (cell.begin < 0) ActivateCell(cell, M);
  if (pos < 0) pos = write;
  if (write == options_.max_solutions_per_cell) {
    if (pos == write) {
      // The candidate itself is the heaviest entry: evict it unwritten.
      cell.count = write;
      return;
    }
    --write;  // evict the last (heaviest) kept entry in place
  }
  SimTime* totals = ws_.slot_total.data() + cell.begin;
  SimTime* loads = ws_.slot_load.data() + static_cast<size_t>(cell.begin) * M;
  SlotMeta* meta = ws_.slot_meta.data() + cell.begin;
  for (int s = write; s > pos; --s) {
    totals[s] = totals[s - 1];
    meta[s] = meta[s - 1];
    SimTime* dst = loads + static_cast<size_t>(s) * M;
    const SimTime* src = loads + static_cast<size_t>(s - 1) * M;
    for (int k = 0; k < M; ++k) dst[k] = src[k];
  }
  totals[pos] = total;
  SimTime* dst = loads + static_cast<size_t>(pos) * M;
  for (int k = 0; k < M; ++k) dst[k] = trial[k];
  SlotMeta& m = meta[pos];
  m.parent_u = parent_u;
  m.parent_sol = parent_sol;
  m.subset = subset;
  m.completion = completion;
  cell.count = write + 1;
}

template <int M>
SCHEMBLE_HOT SCHEMBLE_ALWAYS_INLINE void DpScheduler::InsertPruned(
    int cell_index, const SimTime* trial, SimTime total, SimTime completion,
    int parent_u, int parent_sol, SubsetMask subset) const {
  Cell& cell = ws_.cells[cell_index];
  if (!options_.equivalence_mode) {
    InsertSorted<M>(cell, trial, total, completion, parent_u, parent_sol,
                    subset);
    return;
  }
  // Single fused pass: dominance test, stable compaction and largest-total
  // tracking for the eviction policy. Fusing is exact: if some existing
  // entry dominates the candidate, then (cell entries being mutually
  // non-dominated) the candidate dominates no entry — transitivity would
  // otherwise make that existing entry dominate another — so no compaction
  // has happened by the time we return.
  int write = 0;
  int argmax = -1;       // first kept entry with the largest total load
  SimTime kept_max = -1;
  if (cell.count > 0) {
    SimTime* totals = ws_.slot_total.data() + cell.begin;
    SimTime* loads = ws_.slot_load.data() + static_cast<size_t>(cell.begin) * M;
    SlotMeta* meta = ws_.slot_meta.data() + cell.begin;
    for (int s = 0; s < cell.count; ++s) {
      const SimTime* row = loads + static_cast<size_t>(s) * M;
      // Branchless componentwise comparison in both directions: with M
      // known at compile time this is a short flag chain, cheaper than the
      // early-exit loop's unpredictable branches.
      bool exist_le = true;  // row <= trial componentwise
      bool cand_le = true;   // trial <= row componentwise
      for (int k = 0; k < M; ++k) {
        exist_le &= row[k] <= trial[k];
        cand_le &= trial[k] <= row[k];
      }
      if (exist_le) {
        SCHEMBLE_DCHECK(write == s);  // see fusing argument above
        return;                       // dominated: cell unchanged
      }
      if (cand_le) continue;  // candidate dominates: drop (stable)
      const SimTime t = totals[s];
      if (write != s) {
        totals[write] = t;
        meta[write] = meta[s];
        SimTime* dst = loads + static_cast<size_t>(write) * M;
        for (int k = 0; k < M; ++k) dst[k] = row[k];
      }
      if (t > kept_max) {
        kept_max = t;
        argmax = write;
      }
      ++write;
    }
  }
  if (cell.begin < 0) ActivateCell(cell, M);
  if (write == options_.max_solutions_per_cell) {
    // The cell is full: the reference algorithm appends, then drops the
    // first entry with the largest total load.
    if (total > kept_max) {
      // That largest entry is the candidate itself — skip the slot write.
      cell.count = write;
      return;
    }
    // Evict the kept argmax (on a total tie it precedes the candidate, so
    // it is the one the reference drops); shift the tail left one slot.
    SimTime* totals = ws_.slot_total.data() + cell.begin;
    SimTime* loads = ws_.slot_load.data() + static_cast<size_t>(cell.begin) * M;
    SlotMeta* meta = ws_.slot_meta.data() + cell.begin;
    for (int s = argmax + 1; s < write; ++s) {
      totals[s - 1] = totals[s];
      meta[s - 1] = meta[s];
      SimTime* dst = loads + static_cast<size_t>(s - 1) * M;
      const SimTime* src = loads + static_cast<size_t>(s) * M;
      for (int k = 0; k < M; ++k) dst[k] = src[k];
    }
    --write;
  }
  const int slot = cell.begin + write;
  ws_.slot_total[slot] = total;
  SimTime* dst = ws_.slot_load.data() + static_cast<size_t>(slot) * M;
  for (int k = 0; k < M; ++k) dst[k] = trial[k];
  SlotMeta& m = ws_.slot_meta[slot];
  m.parent_u = parent_u;
  m.parent_sol = parent_sol;
  m.subset = subset;
  m.completion = completion;
  cell.count = write + 1;
}

template <int M>
SchedulePlan DpScheduler::ScheduleImpl(
    const std::vector<SchedulerQuery>& queries,
    const SchedulerEnv& env) const {
  SchedulePlan plan;
  const SubsetMask full = FullMask(M);

  SortQueriesInto(queries, GreedyScheduler::Order::kEdf, ws_.sorted);
  // Queries beyond the window are deferred (subset 0) this round; they stay
  // in the tail of ws_.sorted.
  const int n = std::min(static_cast<int>(ws_.sorted.size()),
                         options_.max_queries);
  const int num_deferred = static_cast<int>(ws_.sorted.size()) - n;

  // Quantized utilities; total quantized reward <= n / delta.
  const double delta = options_.delta;
  SCHEMBLE_CHECK_GT(delta, 0.0);
  const int max_u = static_cast<int>(std::ceil(n / delta)) + 1;
  const int max_du = static_cast<int>(1.0 / delta) + 1;

  ComputeSubsetWork(env.model_exec_time, ws_.mask_work);

  const LoadVector init_avail = ClampedAvail(env);
  SimTime init_total = 0;
  for (int k = 0; k < M; ++k) init_total += init_avail[k];

  // Reset the workspace (capacity is kept across calls).
  ws_.slots_used = 0;
  ws_.cells_used = 0;
  GrowTo(ws_.stage_begin, static_cast<size_t>(n) + 1, ws_.stats);
  GrowTo(ws_.stage_size, static_cast<size_t>(n) + 1, ws_.stats);

  // Stage 0: one cell holding the initial availability.
  ws_.stage_begin[0] = 0;
  ws_.stage_size[0] = 1;
  GrowTo(ws_.cells, 1, ws_.stats);
  ws_.cells[0] = Cell{};
  ws_.cells_used = 1;
  InsertPruned<M>(0, init_avail.data(), init_total, /*completion=*/0,
                  /*parent_u=*/-1, /*parent_sol=*/-1, /*subset=*/0);

  SimTime exec[M > 0 ? M : 1] = {};
  for (int k = 0; k < M; ++k) exec[k] = env.model_exec_time[k];

  int64_t ops = 0;          // accumulated in a register, flushed at the end
  int reachable_u = 0;      // highest utility index reached in the last stage
  for (int i = 0; i < n; ++i) {
    const SchedulerQuery& query = *ws_.sorted[i];
    SCHEMBLE_CHECK_EQ(query.utilities.size(), static_cast<size_t>(full) + 1);
    BuildCandidates(query, env, init_avail.data(), full);
    const int prev_reachable = reachable_u;
    const int stage_max_u = std::min(max_u, prev_reachable + max_du);

    const int next_begin = ws_.cells_used;
    GrowTo(ws_.cells, static_cast<size_t>(next_begin) + stage_max_u + 1,
           ws_.stats);
    for (int u = 0; u <= stage_max_u; ++u) {
      ws_.cells[next_begin + u] = Cell{};
    }
    ws_.cells_used = next_begin + stage_max_u + 1;
    ws_.stage_begin[i + 1] = next_begin;
    ws_.stage_size[i + 1] = stage_max_u + 1;

    const int cur_begin = ws_.stage_begin[i];
    const int u_limit = std::min(prev_reachable, ws_.stage_size[i] - 1);
    const Candidate* candidates = ws_.candidates.data();
    const int num_candidates = static_cast<int>(ws_.candidates.size());
    const SimTime deadline = query.deadline;
    for (int u = 0; u <= u_limit; ++u) {
      const Cell src = ws_.cells[cur_begin + u];
      for (int s = 0; s < src.count; ++s) {
        // Copy the source loads to the stack: InsertPruned may grow the
        // slot arrays when it activates a fresh cell, invalidating
        // pointers into them.
        SimTime src_avail[M > 0 ? M : 1] = {};
        SimTime src_finish[M > 0 ? M : 1] = {};  // avail + exec, per model
        {
          const SimTime* src_loads =
              ws_.slot_load.data() + static_cast<size_t>(src.begin + s) * M;
          for (int k = 0; k < M; ++k) {
            src_avail[k] = src_loads[k];
            src_finish[k] = src_loads[k] + exec[k];
          }
        }
        const SimTime src_total = ws_.slot_total[src.begin + s];
        for (int c = 0; c < num_candidates; ++c) {
          const Candidate& cand = candidates[c];
          ++ops;
          SimTime trial[M > 0 ? M : 1];
          SimTime total = src_total;
          SimTime completion = 0;
          int nu = u;
          if (cand.mask != 0) {
            // Completion needs only the touched models: reject before
            // materializing the trial loads.
            SubsetMask bits = cand.mask;
            while (bits != 0) {
              const int k = std::countr_zero(bits);
              bits &= bits - 1;
              if (src_finish[k] > completion) completion = src_finish[k];
            }
            if (completion > deadline) continue;
            for (int k = 0; k < M; ++k) trial[k] = src_avail[k];
            bits = cand.mask;
            while (bits != 0) {
              const int k = std::countr_zero(bits);
              bits &= bits - 1;
              trial[k] = src_finish[k];
            }
            total += cand.work;
            nu = u + cand.du;
          } else {
            for (int k = 0; k < M; ++k) trial[k] = src_avail[k];
          }
          if (nu > stage_max_u) nu = stage_max_u;
          InsertPruned<M>(next_begin + nu, trial, total, completion, u, s,
                          cand.mask);
          if (nu > reachable_u) reachable_u = nu;
        }
      }
    }
  }
  last_ops_ = ops;

  // Best non-empty cell in the final stage.
  const int last_begin = ws_.stage_begin[n];
  int best_u = -1;
  for (int u = ws_.stage_size[n] - 1; u >= 0; --u) {
    if (ws_.cells[last_begin + u].count > 0) {
      best_u = u;
      break;
    }
  }
  SCHEMBLE_CHECK_GE(best_u, 0);
  // Among solutions of the best cell prefer the lightest load.
  const Cell& best_cell = ws_.cells[last_begin + best_u];
  int best_sol = 0;
  SimTime best_load = kSimTimeMax;
  for (int s = 0; s < best_cell.count; ++s) {
    const SimTime load = ws_.slot_total[best_cell.begin + s];
    if (load < best_load) {
      best_load = load;
      best_sol = s;
    }
  }

  // Reconstruct decisions back to front.
  plan.decisions.resize(n + num_deferred);
  int u = best_u;
  int s = best_sol;
  for (int i = n; i >= 1; --i) {
    const Cell& cell = ws_.cells[ws_.stage_begin[i] + u];
    const SlotMeta& sol = ws_.slot_meta[cell.begin + s];
    plan.decisions[i - 1] = {ws_.sorted[i - 1]->id, sol.subset,
                             sol.completion};
    if (sol.subset != 0) {
      plan.total_utility += ws_.sorted[i - 1]->utilities[sol.subset];
    }
    u = sol.parent_u;
    s = sol.parent_sol;
  }
  for (int d = 0; d < num_deferred; ++d) {
    plan.decisions[n + d] = {ws_.sorted[n + d]->id, 0, 0};
  }
  return plan;
}

SchedulePlan DpScheduler::Schedule(const std::vector<SchedulerQuery>& queries,
                                   const SchedulerEnv& env) const {
  last_ops_ = 0;
  ++ws_.stats.schedule_calls;
  if (queries.empty()) return SchedulePlan{};
  const int m = env.num_models();
  SCHEMBLE_CHECK_GE(m, 0);
  SCHEMBLE_CHECK_LE(m, kMaxSchedulerModels);
  // Dispatch to the DP specialized on the model count (compile-time trip
  // counts for the per-load loops).
  switch (m) {
    case 0: return ScheduleImpl<0>(queries, env);
    case 1: return ScheduleImpl<1>(queries, env);
    case 2: return ScheduleImpl<2>(queries, env);
    case 3: return ScheduleImpl<3>(queries, env);
    case 4: return ScheduleImpl<4>(queries, env);
    case 5: return ScheduleImpl<5>(queries, env);
    case 6: return ScheduleImpl<6>(queries, env);
    case 7: return ScheduleImpl<7>(queries, env);
    default: return ScheduleImpl<8>(queries, env);
  }
}

SchedulePlan GreedyScheduler::Schedule(
    const std::vector<SchedulerQuery>& queries,
    const SchedulerEnv& env) const {
  SchedulePlan plan;
  if (queries.empty()) return plan;
  const int m = env.num_models();
  const SubsetMask full = FullMask(m);
  std::vector<const SchedulerQuery*> sorted;
  SortQueriesInto(queries, order_, sorted);
  std::vector<SimTime> avail(env.model_available_at.size());
  for (size_t k = 0; k < avail.size(); ++k) {
    avail[k] = std::max(env.model_available_at[k], env.now);
  }
  // Per-mask total work, computed once per call (not per mask per query).
  std::vector<SimTime> mask_work;
  ComputeSubsetWork(env.model_exec_time, mask_work);

  for (const SchedulerQuery* query : sorted) {
    SCHEMBLE_CHECK_EQ(query->utilities.size(), static_cast<size_t>(full) + 1);
    SubsetMask best = 0;
    double best_utility = 0.0;
    SimTime best_work = kSimTimeMax;
    for (SubsetMask mask = 1; mask <= full; ++mask) {
      // Completion under `mask` read directly off avail — no trial copy.
      SimTime completion = 0;
      SubsetMask bits = mask;
      while (bits != 0) {
        const int k = std::countr_zero(bits);
        bits &= bits - 1;
        completion = std::max(completion, avail[k] + env.model_exec_time[k]);
      }
      if (completion > query->deadline) continue;
      const SimTime work = mask_work[mask];
      const double utility = query->utilities[mask];
      if (utility > best_utility ||
          (utility == best_utility && work < best_work)) {
        best = mask;
        best_utility = utility;
        best_work = work;
      }
    }
    SimTime completion = 0;
    if (best != 0) {
      completion = ApplySubset(best, env.model_exec_time, avail);
      plan.total_utility += best_utility;
    }
    plan.decisions.push_back({query->id, best, completion});
  }
  return plan;
}

}  // namespace schemble
