#ifndef SCHEMBLE_CORE_POLICY_H_
#define SCHEMBLE_CORE_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/profiling.h"
#include "models/model_profile.h"
#include "simcore/simulation.h"
#include "workload/trace.h"

namespace schemble {

/// State of one deployed executor (a model instance with its own task
/// queue) as exposed to policies. In the sharded concurrent runtime each
/// scheduler domain owns a disjoint slice of the deployment and builds
/// views over that slice only: `executor_id` is the index *within the
/// domain's slice* (dense, 0-based), not a server-global id, and the
/// executors of one view all belong to the same domain. The discrete-event
/// EnsembleServer is the degenerate single-domain case where the slice is
/// the whole deployment. Policies therefore plan against exactly the
/// executors their caller can dispatch to; peer domains' replicas are
/// reachable only through the runtime's routing/stealing surface, never
/// through a view.
struct ExecutorView {
  int executor_id = 0;
  int model_index = 0;
  /// Time at which a task enqueued now would start executing (== now when
  /// the executor is idle). Under batching the owner projects this with
  /// coalesced service time (BatchLatencyModel::BacklogUs), not the
  /// per-task sum.
  SimTime available_at = 0;
  int queue_length = 0;
};

/// Snapshot of the server (in the sharded runtime: of one scheduler
/// domain's slice — see ExecutorView) a policy decides against.
struct ServerView {
  SimTime now = 0;
  std::vector<ExecutorView> executors;
  /// Mean service time per base model (the scheduler's T_k).
  std::vector<SimTime> model_exec_time;
  /// Earliest availability per base model (min over its executors).
  std::vector<SimTime> model_available_at;
  /// Batch-aware composition, populated only when the owning runtime has
  /// ConcurrentServerOptions::batching on (empty otherwise, so callers that
  /// never batch — e.g. the discrete-event EnsembleServer — see identical
  /// views and produce bit-identical plans). `model_queued[k]` is the total
  /// backlog queued across model k's executors in this slice;
  /// `model_batch[k]` its calibrated batch latency curve.
  std::vector<int> model_queued;
  std::vector<BatchLatencyModel> model_batch;
  bool allow_rejection = true;

  int num_models() const { return static_cast<int>(model_exec_time.size()); }

  /// True when the view carries batch composition (see above).
  bool batching() const { return !model_batch.empty(); }

  /// Service time a planner should charge one task of model k: the plain
  /// per-task mean when batching is off; under batching, the amortized
  /// per-item cost of the batch this task would join (current backlog plus
  /// itself, capped at max_batch). At low load the backlog is empty, the
  /// projected batch is 1, and this equals model_exec_time[k] exactly.
  SimTime PlannedExecTime(int k) const;

  /// Estimated completion time of running `subset` starting now, using the
  /// least-loaded executor of each member model.
  SimTime EstimateCompletion(SubsetMask subset) const;
};

/// Immediate decision at query arrival.
struct ArrivalDecision {
  enum class Action {
    kAssign,  // enqueue `subset` tasks now
    kBuffer,  // hold in the central query buffer (Schemble)
    kReject,  // count as a deadline miss immediately
  };
  Action action = Action::kAssign;
  SubsetMask subset = 0;

  static ArrivalDecision Assign(SubsetMask subset) {
    return {Action::kAssign, subset};
  }
  static ArrivalDecision Buffer() { return {Action::kBuffer, 0}; }
  static ArrivalDecision Reject() { return {Action::kReject, 0}; }
};

/// A commitment produced while draining the buffer.
struct BufferedAssignment {
  int64_t query_id = 0;
  SubsetMask subset = 0;
};

struct PolicyOutput {
  std::vector<BufferedAssignment> assignments;
  /// Simulated scheduling cost; the server delays the dispatched tasks'
  /// start by this much (how small delta values hurt in Fig. 12/21).
  SimTime overhead_us = 0;
};

/// Opaque per-caller scratch for the off-lock planning path. A policy that
/// supports off-lock planning keeps ALL mutable planning state (DP
/// workspaces, score caches) behind this interface instead of in policy
/// members, so PlanOnView can run concurrently with OnArrival. Each
/// planning caller owns exactly one instance (via CreatePlanState) and
/// never shares it between threads.
class PolicyPlanState {
 public:
  virtual ~PolicyPlanState() = default;
};

/// One buffered query as captured in a planning snapshot. `traced` points
/// into the caller's immutable QueryTrace; `index` and `generation` are
/// runtime bookkeeping the caller echoes back at commit time to detect
/// queries that were assigned or finalized while planning ran off-lock
/// (policies ignore both fields).
struct SnapshotQuery {
  const TracedQuery* traced = nullptr;
  int index = 0;
  uint64_t generation = 0;
};

/// Reusable snapshot-plus-plan workspace for off-lock planning. The caller
/// fills `buffer` (and its own ServerView) inside a short critical
/// section — reusing vector capacity so steady-state snapshots allocate
/// nothing — then calls PlanOnView outside the lock, which writes
/// `output`. `state` holds the policy's scratch from CreatePlanState.
struct PlanWorkspace {
  std::vector<SnapshotQuery> buffer;
  PolicyOutput output;
  std::unique_ptr<PolicyPlanState> state;
};

/// Decision interface between the serving drivers and a selection/
/// scheduling strategy. The server owns queues, executors, aggregation and
/// metrics; policies only decide which tasks run where and when.
///
/// Thread-safety contract: the stateful entry points (OnArrival / OnIdle)
/// may touch unguarded mutable members (score caches) and need NOT be
/// thread-safe — callers serialize them. The discrete-event EnsembleServer
/// is single-threaded; the ConcurrentServer serializes them under its
/// policy mutex. PlanOnView is the exception: it is const, keeps all its
/// scratch in the caller-owned PlanWorkspace, and MUST be safe to run
/// concurrently with OnArrival calls on the same policy object (any
/// counters it advances must be atomic). Objects a policy only reads
/// (SyntheticTask, AccuracyProfile, Aggregator, DiscrepancyPredictor)
/// expose const, state-free read paths that ARE safe to share across
/// threads.
class ServingPolicy {
 public:
  virtual ~ServingPolicy() = default;

  virtual std::string name() const = 0;

  /// Decision for a newly arrived query.
  virtual ArrivalDecision OnArrival(const TracedQuery& query,
                                    const ServerView& view) = 0;

  /// Called whenever an executor becomes idle while the buffer is
  /// non-empty. `buffer` is ordered by arrival. Returning an empty output
  /// leaves the buffer untouched.
  virtual PolicyOutput OnIdle(const ServerView& view,
                              const std::vector<const TracedQuery*>& buffer);

  /// When true, the concurrent runtime plans off-lock: it snapshots server
  /// state under its mutex, releases it, and calls PlanOnView against the
  /// snapshot while arrivals keep flowing. Policies returning true must
  /// implement CreatePlanState/PlanOnView per the contract above and keep
  /// OnIdle consistent with PlanOnView (the discrete-event driver still
  /// uses OnIdle).
  virtual bool SupportsOffLockPlanning() const { return false; }

  /// Creates the caller-owned scratch PlanOnView works against. Callers
  /// create one per planning thread and reuse it across calls. Returns
  /// null when off-lock planning is unsupported.
  virtual std::unique_ptr<PolicyPlanState> CreatePlanState() const {
    return nullptr;
  }

  /// Const planning entry point: reads `view` and `ws->buffer` (a snapshot
  /// of the central query buffer in arrival order), writes
  /// `ws->output`, and keeps every piece of mutable scratch inside `ws`.
  /// Must produce the same decisions OnIdle would for an identical
  /// view/buffer. The base implementation plans nothing.
  virtual void PlanOnView(const ServerView& view, PlanWorkspace* ws) const;

  /// Per-query latency charged before an arriving query becomes visible to
  /// OnArrival (the difficulty predictor's inference time in Schemble).
  virtual SimTime ArrivalProcessingDelay() const { return 0; }
};

}  // namespace schemble

#endif  // SCHEMBLE_CORE_POLICY_H_
