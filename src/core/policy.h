#ifndef SCHEMBLE_CORE_POLICY_H_
#define SCHEMBLE_CORE_POLICY_H_

#include <string>
#include <vector>

#include "core/profiling.h"
#include "simcore/simulation.h"
#include "workload/trace.h"

namespace schemble {

/// State of one deployed executor (a model instance with its own task
/// queue) as exposed to policies.
struct ExecutorView {
  int executor_id = 0;
  int model_index = 0;
  /// Time at which a task enqueued now would start executing (== now when
  /// the executor is idle).
  SimTime available_at = 0;
  int queue_length = 0;
};

/// Snapshot of the server a policy decides against.
struct ServerView {
  SimTime now = 0;
  std::vector<ExecutorView> executors;
  /// Mean service time per base model (the scheduler's T_k).
  std::vector<SimTime> model_exec_time;
  /// Earliest availability per base model (min over its executors).
  std::vector<SimTime> model_available_at;
  bool allow_rejection = true;

  int num_models() const { return static_cast<int>(model_exec_time.size()); }

  /// Estimated completion time of running `subset` starting now, using the
  /// least-loaded executor of each member model.
  SimTime EstimateCompletion(SubsetMask subset) const;
};

/// Immediate decision at query arrival.
struct ArrivalDecision {
  enum class Action {
    kAssign,  // enqueue `subset` tasks now
    kBuffer,  // hold in the central query buffer (Schemble)
    kReject,  // count as a deadline miss immediately
  };
  Action action = Action::kAssign;
  SubsetMask subset = 0;

  static ArrivalDecision Assign(SubsetMask subset) {
    return {Action::kAssign, subset};
  }
  static ArrivalDecision Buffer() { return {Action::kBuffer, 0}; }
  static ArrivalDecision Reject() { return {Action::kReject, 0}; }
};

/// A commitment produced while draining the buffer.
struct BufferedAssignment {
  int64_t query_id = 0;
  SubsetMask subset = 0;
};

struct PolicyOutput {
  std::vector<BufferedAssignment> assignments;
  /// Simulated scheduling cost; the server delays the dispatched tasks'
  /// start by this much (how small delta values hurt in Fig. 12/21).
  SimTime overhead_us = 0;
};

/// Decision interface between the serving drivers and a selection/
/// scheduling strategy. The server owns queues, executors, aggregation and
/// metrics; policies only decide which tasks run where and when.
///
/// Thread-safety contract: implementations may keep unguarded mutable
/// state (score caches, DP workspaces); they need NOT be thread-safe.
/// Both drivers honour this — the discrete-event EnsembleServer is
/// single-threaded, and the ConcurrentServer serializes every policy call
/// under its admission mutex. Objects a policy only reads (SyntheticTask,
/// AccuracyProfile, Aggregator, DiscrepancyPredictor) expose const,
/// state-free read paths that ARE safe to share across threads.
class ServingPolicy {
 public:
  virtual ~ServingPolicy() = default;

  virtual std::string name() const = 0;

  /// Decision for a newly arrived query.
  virtual ArrivalDecision OnArrival(const TracedQuery& query,
                                    const ServerView& view) = 0;

  /// Called whenever an executor becomes idle while the buffer is
  /// non-empty. `buffer` is ordered by arrival. Returning an empty output
  /// leaves the buffer untouched.
  virtual PolicyOutput OnIdle(const ServerView& view,
                              const std::vector<const TracedQuery*>& buffer);

  /// Per-query latency charged before an arriving query becomes visible to
  /// OnArrival (the difficulty predictor's inference time in Schemble).
  virtual SimTime ArrivalProcessingDelay() const { return 0; }
};

}  // namespace schemble

#endif  // SCHEMBLE_CORE_POLICY_H_
