#ifndef SCHEMBLE_CORE_AGGREGATION_H_
#define SCHEMBLE_CORE_AGGREGATION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/profiling.h"
#include "models/synthetic_task.h"
#include "nn/knn.h"
#include "nn/softmax_regression.h"

namespace schemble {

/// Aggregation mechanisms from §VII; each pairs with its missing-value
/// strategy:
///  - voting: missing models simply do not vote;
///  - weighted averaging: missing weights are zeroed and the rest re-scaled;
///  - stacking: a meta-classifier over the concatenated base outputs, with
///    missing outputs imputed by KNN over historical full-output records.
enum class AggregationKind { kVoting, kWeightedAverage, kStacking };

struct AggregatorConfig {
  AggregationKind kind = AggregationKind::kWeightedAverage;
  /// KNN fill parameter (stacking only). The paper shows robustness for
  /// k in [1, 100] (Fig. 20b).
  int knn_k = 10;
  /// Historical records used to build the KNN fill index (stacking only).
  int max_fill_records = 2000;
  uint64_t seed = 23;
};

/// Aggregates the outputs of an executed model subset into a final result
/// vector comparable with the full ensemble's output.
class Aggregator {
 public:
  /// Builds the aggregator; stacking additionally trains the meta-classifier
  /// on `history` (classification tasks only) and indexes fill records.
  static Result<Aggregator> Build(const SyntheticTask& task,
                                  const std::vector<Query>& history,
                                  const AggregatorConfig& config = {});

  /// Caller-owned scratch for the allocation-free aggregation paths. Not
  /// thread-safe: one Workspace per thread (the aggregator itself stays
  /// const and state-free, so concurrent calls with distinct workspaces are
  /// safe).
  struct Workspace {
    KnnIndex::Workspace knn;
    MlpInferenceScratch meta;
    std::vector<double> concat;  // stacking: concatenated base outputs
    std::vector<bool> mask;      // stacking: observed-coordinate mask
    std::vector<int> subset;     // averaging: unpacked model indices
    /// Batch staging: per-query concat rows shared with FillMissingBatch.
    std::vector<std::vector<double>> batch_concat;
  };

  /// Final output for `query` given that only the models in `executed` ran.
  /// State-free const path (including KNN filling and the stacking meta-
  /// classifier): safe to call from concurrent completion callbacks.
  /// `executed` must be non-empty.
  std::vector<double> Aggregate(const Query& query, SubsetMask executed) const;

  /// Allocation-free Aggregate into a caller-reused buffer; bit-identical
  /// to the allocating overload.
  void AggregateInto(const Query& query, SubsetMask executed, Workspace* ws,
                     std::vector<double>* out) const;

  /// Aggregates many queries that share one executed subset (the profiling
  /// / trace-replay shape). Stacking routes the shared-mask imputation
  /// through KnnIndex::FillMissingBatch, amortizing mask unpacking across
  /// the whole batch; outputs are bit-identical to per-query Aggregate.
  void AggregateBatch(const std::vector<Query>& queries, SubsetMask executed,
                      Workspace* ws,
                      std::vector<std::vector<double>>* outs) const;

  AggregationKind kind() const { return config_.kind; }

 private:
  Aggregator(const SyntheticTask* task, AggregatorConfig config)
      : task_(task), config_(std::move(config)) {}

  void VoteInto(const Query& query, SubsetMask executed,
                std::vector<double>* out) const;
  void AverageInto(const Query& query, SubsetMask executed, Workspace* ws,
                   std::vector<double>* out) const;
  void StackInto(const Query& query, SubsetMask executed, Workspace* ws,
                 std::vector<double>* out) const;
  /// Writes the stacking input (concat + observed mask) for one query into
  /// ws->mask and `concat`.
  void BuildStackInput(const Query& query, SubsetMask executed, Workspace* ws,
                       std::vector<double>* concat) const;

  /// Concatenated model outputs of one query.
  std::vector<double> ConcatOutputs(const Query& query) const;

  const SyntheticTask* task_;
  AggregatorConfig config_;
  std::unique_ptr<KnnIndex> fill_index_;
  std::unique_ptr<SoftmaxRegression> meta_;
};

}  // namespace schemble

#endif  // SCHEMBLE_CORE_AGGREGATION_H_
