#include "core/discrepancy.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/prob.h"

namespace schemble {

std::vector<double> DiscrepancyScorer::CalibratedOutput(const Query& query,
                                                        int model) const {
  if (task_->spec().type != TaskType::kClassification) {
    return query.model_outputs[model];
  }
  if (!config_.calibrate) {
    // Uncalibrated view: plain softmax of the raw logits.
    return Softmax(query.model_logits[model]);
  }
  return scalers_[model].Calibrate(query.model_logits[model]);
}

double DiscrepancyScorer::ModelDistance(const Query& query, int model) const {
  const std::vector<double> output = CalibratedOutput(query, model);
  if (task_->spec().type == TaskType::kClassification) {
    return JsDivergence(output, query.ensemble_output);
  }
  return EuclideanDistance(output, query.ensemble_output);
}

double DiscrepancyScorer::RawScore(const Query& query) const {
  const int m = task_->num_models();
  if (config_.metric == DifficultyMetric::kEnsembleAgreement) {
    // Mean pairwise symmetric KL (classification) / Euclidean distance
    // (others) between base models, uncalibrated and unnormalized.
    double total = 0.0;
    int pairs = 0;
    for (int a = 0; a < m; ++a) {
      for (int b = a + 1; b < m; ++b) {
        if (task_->spec().type == TaskType::kClassification) {
          total += SymmetricKlDivergence(Softmax(query.model_logits[a]),
                                         Softmax(query.model_logits[b]));
        } else {
          total += EuclideanDistance(query.model_outputs[a],
                                     query.model_outputs[b]);
        }
        ++pairs;
      }
    }
    return pairs > 0 ? total / pairs : 0.0;
  }
  // Eq. 1: mean normalized distance to the ensemble output.
  double total = 0.0;
  for (int k = 0; k < m; ++k) {
    double d = ModelDistance(query, k);
    if (config_.normalize_per_model && model_norms_[k] > 0.0) {
      d /= model_norms_[k];
    }
    total += d;
  }
  return total / m;
}

Result<DiscrepancyScorer> DiscrepancyScorer::Fit(
    const SyntheticTask& task, const std::vector<Query>& history,
    const DiscrepancyConfig& config) {
  if (history.empty()) {
    return Status::InvalidArgument("discrepancy fit needs history data");
  }
  if (config.scale_quantile <= 0.0 || config.scale_quantile > 1.0) {
    return Status::InvalidArgument("scale_quantile must be in (0, 1]");
  }
  DiscrepancyScorer scorer(&task, config);
  const int m = task.num_models();
  scorer.scalers_.assign(m, TemperatureScaler(1.0));
  scorer.model_norms_.assign(m, 1.0);

  // 1. Calibrate each classifier on the history (against the ensemble's
  //    decision, the quantity the discrepancy score is measured against).
  if (task.spec().type == TaskType::kClassification && config.calibrate) {
    for (int k = 0; k < m; ++k) {
      std::vector<std::vector<double>> logits;
      std::vector<int> labels;
      logits.reserve(history.size());
      labels.reserve(history.size());
      for (const Query& q : history) {
        logits.push_back(q.model_logits[k]);
        labels.push_back(Argmax(q.ensemble_output));
      }
      auto fitted = TemperatureScaler::Fit(logits, labels);
      if (!fitted.ok()) return fitted.status();
      scorer.scalers_[k] = fitted.value();
    }
  }

  // 2. Per-model normalization constants: mean distance to the ensemble.
  if (config.metric == DifficultyMetric::kDiscrepancy &&
      config.normalize_per_model) {
    for (int k = 0; k < m; ++k) {
      double sum = 0.0;
      for (const Query& q : history) sum += scorer.ModelDistance(q, k);
      const double mean = sum / static_cast<double>(history.size());
      scorer.model_norms_[k] = mean > 1e-12 ? mean : 1.0;
    }
  }

  // 3. Final scale so that `scale_quantile` of history maps to 1.0.
  std::vector<double> raw;
  raw.reserve(history.size());
  for (const Query& q : history) raw.push_back(scorer.RawScore(q));
  std::vector<double> sorted = raw;
  std::sort(sorted.begin(), sorted.end());
  const size_t idx = std::min(
      sorted.size() - 1,
      static_cast<size_t>(config.scale_quantile * (sorted.size() - 1)));
  const double q_hi = sorted[idx];
  scorer.scale_ = q_hi > 1e-12 ? 1.0 / q_hi : 1.0;
  return scorer;
}

double DiscrepancyScorer::Score(const Query& query) const {
  return std::clamp(RawScore(query) * scale_, 0.0, 1.0);
}

std::vector<double> DiscrepancyScorer::ScoreAll(
    const std::vector<Query>& queries) const {
  std::vector<double> scores;
  scores.reserve(queries.size());
  for (const Query& q : queries) scores.push_back(Score(q));
  return scores;
}

}  // namespace schemble
