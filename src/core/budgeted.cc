#include "core/budgeted.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace schemble {

namespace {

struct HullPoint {
  SubsetMask mask;
  double cost;
  double utility;
};

/// Efficiency frontier of one sample's options: increasing cost, increasing
/// utility, decreasing marginal density.
std::vector<HullPoint> ConvexHull(const std::vector<double>& utilities,
                                  const std::vector<double>& subset_cost) {
  std::vector<HullPoint> points;
  points.push_back({0, 0.0, 0.0});
  std::vector<SubsetMask> order;
  for (SubsetMask mask = 1; mask < utilities.size(); ++mask) {
    order.push_back(mask);
  }
  std::sort(order.begin(), order.end(), [&](SubsetMask a, SubsetMask b) {
    if (subset_cost[a] != subset_cost[b]) {
      return subset_cost[a] < subset_cost[b];
    }
    return utilities[a] > utilities[b];
  });
  for (SubsetMask mask : order) {
    const double cost = subset_cost[mask];
    const double utility = utilities[mask];
    if (utility <= points.back().utility) continue;
    points.push_back({mask, cost, utility});
    // Restore concavity: drop middle points with inferior density.
    while (points.size() >= 3) {
      const HullPoint& a = points[points.size() - 3];
      const HullPoint& b = points[points.size() - 2];
      const HullPoint& c = points.back();
      const double d_ab = (b.utility - a.utility) / (b.cost - a.cost + 1e-12);
      const double d_ac = (c.utility - a.utility) / (c.cost - a.cost + 1e-12);
      if (d_ab <= d_ac) {
        points.erase(points.end() - 2);
      } else {
        break;
      }
    }
  }
  return points;
}

struct Upgrade {
  double density;
  int sample;
  int hull_index;  // upgrade to this hull point

  bool operator<(const Upgrade& other) const {
    return density < other.density;  // max-heap by density
  }
};

}  // namespace

std::vector<SubsetMask> BudgetedSelector::Select(
    const std::vector<std::vector<double>>& utilities,
    const std::vector<double>& subset_cost, double budget) {
  SCHEMBLE_CHECK(!utilities.empty());
  const int n = static_cast<int>(utilities.size());
  std::vector<std::vector<HullPoint>> hulls;
  hulls.reserve(n);
  for (const auto& row : utilities) {
    SCHEMBLE_CHECK_EQ(row.size(), subset_cost.size());
    hulls.push_back(ConvexHull(row, subset_cost));
  }

  std::vector<int> level(n, 0);  // current hull point per sample
  std::priority_queue<Upgrade> heap;
  auto push_next = [&](int i) {
    const int next = level[i] + 1;
    if (next >= static_cast<int>(hulls[i].size())) return;
    const HullPoint& cur = hulls[i][level[i]];
    const HullPoint& nxt = hulls[i][next];
    heap.push({(nxt.utility - cur.utility) / (nxt.cost - cur.cost + 1e-12),
               i, next});
  };
  for (int i = 0; i < n; ++i) push_next(i);

  double spent = 0.0;
  while (!heap.empty()) {
    const Upgrade up = heap.top();
    heap.pop();
    if (up.hull_index != level[up.sample] + 1) continue;  // stale entry
    const HullPoint& cur = hulls[up.sample][level[up.sample]];
    const HullPoint& nxt = hulls[up.sample][up.hull_index];
    const double extra = nxt.cost - cur.cost;
    if (spent + extra > budget) continue;  // skip; cheaper upgrades may fit
    spent += extra;
    level[up.sample] = up.hull_index;
    push_next(up.sample);
  }

  std::vector<SubsetMask> assignment(n, 0);
  for (int i = 0; i < n; ++i) assignment[i] = hulls[i][level[i]].mask;
  return assignment;
}

double BudgetedSelector::TotalCost(const std::vector<SubsetMask>& assignment,
                                   const std::vector<double>& subset_cost) {
  double total = 0.0;
  for (SubsetMask mask : assignment) total += subset_cost[mask];
  return total;
}

double BudgetedSelector::TotalUtility(
    const std::vector<SubsetMask>& assignment,
    const std::vector<std::vector<double>>& utilities) {
  double total = 0.0;
  for (size_t i = 0; i < assignment.size(); ++i) {
    total += utilities[i][assignment[i]];
  }
  return total;
}

}  // namespace schemble
