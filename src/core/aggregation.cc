#include "core/aggregation.h"

#include <algorithm>

#include "common/logging.h"
#include "common/prob.h"

namespace schemble {

std::vector<double> Aggregator::ConcatOutputs(const Query& query) const {
  std::vector<double> concat;
  concat.reserve(task_->num_models() * task_->output_dim());
  for (int k = 0; k < task_->num_models(); ++k) {
    concat.insert(concat.end(), query.model_outputs[k].begin(),
                  query.model_outputs[k].end());
  }
  return concat;
}

Result<Aggregator> Aggregator::Build(const SyntheticTask& task,
                                     const std::vector<Query>& history,
                                     const AggregatorConfig& config) {
  Aggregator agg(&task, config);
  if (config.kind != AggregationKind::kStacking) return agg;

  if (task.spec().type != TaskType::kClassification) {
    return Status::InvalidArgument(
        "stacking aggregation is implemented for classification tasks");
  }
  if (history.empty()) {
    return Status::InvalidArgument("stacking needs history data");
  }
  if (config.knn_k <= 0) {
    return Status::InvalidArgument("stacking needs knn_k > 0");
  }

  // KNN fill index over historical full-output records.
  const int records =
      std::min<int>(config.max_fill_records, static_cast<int>(history.size()));
  std::vector<std::vector<double>> fill_records;
  fill_records.reserve(records);
  for (int i = 0; i < records; ++i) {
    fill_records.push_back(agg.ConcatOutputs(history[i]));
  }
  auto index = KnnIndex::Build(std::move(fill_records));
  if (!index.ok()) return index.status();
  agg.fill_index_ = std::make_unique<KnnIndex>(std::move(index).value());

  // Meta-classifier trained on full outputs against the ensemble decision.
  std::vector<std::vector<double>> inputs;
  std::vector<int> labels;
  inputs.reserve(history.size());
  labels.reserve(history.size());
  for (const Query& q : history) {
    inputs.push_back(agg.ConcatOutputs(q));
    labels.push_back(Argmax(q.ensemble_output));
  }
  agg.meta_ = std::make_unique<SoftmaxRegression>(
      task.num_models() * task.output_dim(), task.output_dim(), config.seed);
  TrainerOptions trainer;
  trainer.epochs = 30;
  Rng rng(HashSeed("stacking-train", config.seed));
  agg.meta_->Train(inputs, labels, trainer, rng);
  return agg;
}

std::vector<double> Aggregator::Vote(const Query& query,
                                     SubsetMask executed) const {
  // Missing models are simply excluded from the vote; weights follow the
  // ensemble weights.
  std::vector<double> votes(task_->output_dim(), 0.0);
  const std::vector<double>& weights = task_->ensemble_weights();
  for (int k = 0; k < task_->num_models(); ++k) {
    if (!(executed & (SubsetMask{1} << k))) continue;
    votes[Argmax(query.model_outputs[k])] += weights[k];
  }
  NormalizeInPlace(votes);
  return votes;
}

std::vector<double> Aggregator::Average(const Query& query,
                                        SubsetMask executed) const {
  return task_->AggregateSubset(query, SubsetModels(executed));
}

std::vector<double> Aggregator::Stack(const Query& query,
                                      SubsetMask executed) const {
  const int dim = task_->output_dim();
  std::vector<double> concat(task_->num_models() * dim, 0.0);
  std::vector<bool> mask(concat.size(), false);
  for (int k = 0; k < task_->num_models(); ++k) {
    if (!(executed & (SubsetMask{1} << k))) continue;
    for (int d = 0; d < dim; ++d) {
      concat[k * dim + d] = query.model_outputs[k][d];
      mask[k * dim + d] = true;
    }
  }
  if (executed != FullMask(task_->num_models())) {
    concat = fill_index_->FillMissing(concat, mask, config_.knn_k);
  }
  return meta_->PredictProba(concat);
}

std::vector<double> Aggregator::Aggregate(const Query& query,
                                          SubsetMask executed) const {
  SCHEMBLE_CHECK_NE(executed, 0u);
  switch (config_.kind) {
    case AggregationKind::kVoting:
      return Vote(query, executed);
    case AggregationKind::kWeightedAverage:
      return Average(query, executed);
    case AggregationKind::kStacking:
      return Stack(query, executed);
  }
  return Average(query, executed);
}

}  // namespace schemble
