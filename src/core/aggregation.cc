#include "core/aggregation.h"

#include <algorithm>

#include "common/logging.h"
#include "common/prob.h"

namespace schemble {

std::vector<double> Aggregator::ConcatOutputs(const Query& query) const {
  std::vector<double> concat;
  concat.reserve(task_->num_models() * task_->output_dim());
  for (int k = 0; k < task_->num_models(); ++k) {
    concat.insert(concat.end(), query.model_outputs[k].begin(),
                  query.model_outputs[k].end());
  }
  return concat;
}

Result<Aggregator> Aggregator::Build(const SyntheticTask& task,
                                     const std::vector<Query>& history,
                                     const AggregatorConfig& config) {
  Aggregator agg(&task, config);
  if (config.kind != AggregationKind::kStacking) return agg;

  if (task.spec().type != TaskType::kClassification) {
    return Status::InvalidArgument(
        "stacking aggregation is implemented for classification tasks");
  }
  if (history.empty()) {
    return Status::InvalidArgument("stacking needs history data");
  }
  if (config.knn_k <= 0) {
    return Status::InvalidArgument("stacking needs knn_k > 0");
  }

  // KNN fill index over historical full-output records.
  const int records =
      std::min<int>(config.max_fill_records, static_cast<int>(history.size()));
  std::vector<std::vector<double>> fill_records;
  fill_records.reserve(records);
  for (int i = 0; i < records; ++i) {
    fill_records.push_back(agg.ConcatOutputs(history[i]));
  }
  auto index = KnnIndex::Build(std::move(fill_records));
  if (!index.ok()) return index.status();
  agg.fill_index_ = std::make_unique<KnnIndex>(std::move(index).value());

  // Meta-classifier trained on full outputs against the ensemble decision.
  std::vector<std::vector<double>> inputs;
  std::vector<int> labels;
  inputs.reserve(history.size());
  labels.reserve(history.size());
  for (const Query& q : history) {
    inputs.push_back(agg.ConcatOutputs(q));
    labels.push_back(Argmax(q.ensemble_output));
  }
  agg.meta_ = std::make_unique<SoftmaxRegression>(
      task.num_models() * task.output_dim(), task.output_dim(), config.seed);
  TrainerOptions trainer;
  trainer.epochs = 30;
  Rng rng(HashSeed("stacking-train", config.seed));
  agg.meta_->Train(inputs, labels, trainer, rng);
  return agg;
}

void Aggregator::VoteInto(const Query& query, SubsetMask executed,
                          std::vector<double>* out) const {
  // Missing models are simply excluded from the vote; weights follow the
  // ensemble weights.
  out->assign(task_->output_dim(), 0.0);
  const std::vector<double>& weights = task_->ensemble_weights();
  for (int k = 0; k < task_->num_models(); ++k) {
    if (!(executed & (SubsetMask{1} << k))) continue;
    (*out)[Argmax(query.model_outputs[k])] += weights[k];
  }
  NormalizeInPlace(*out);
}

void Aggregator::AverageInto(const Query& query, SubsetMask executed,
                             Workspace* ws, std::vector<double>* out) const {
  SubsetModelsInto(executed, &ws->subset);
  task_->AggregateSubsetInto(query, ws->subset, out);
}

void Aggregator::BuildStackInput(const Query& query, SubsetMask executed,
                                 Workspace* ws,
                                 std::vector<double>* concat) const {
  const int dim = task_->output_dim();
  const size_t total = static_cast<size_t>(task_->num_models()) * dim;
  concat->assign(total, 0.0);
  ws->mask.assign(total, false);
  for (int k = 0; k < task_->num_models(); ++k) {
    if (!(executed & (SubsetMask{1} << k))) continue;
    for (int d = 0; d < dim; ++d) {
      (*concat)[k * dim + d] = query.model_outputs[k][d];
      ws->mask[k * dim + d] = true;
    }
  }
}

void Aggregator::StackInto(const Query& query, SubsetMask executed,
                           Workspace* ws, std::vector<double>* out) const {
  BuildStackInput(query, executed, ws, &ws->concat);
  if (executed != FullMask(task_->num_models())) {
    // In-place fill: FillMissingInto only overwrites masked-out entries.
    fill_index_->FillMissingInto(ws->concat, ws->mask, config_.knn_k,
                                 &ws->knn, &ws->concat);
  }
  meta_->PredictProbaInto(ws->concat, &ws->meta, out);
}

void Aggregator::AggregateInto(const Query& query, SubsetMask executed,
                               Workspace* ws, std::vector<double>* out) const {
  SCHEMBLE_CHECK_NE(executed, 0u);
  SCHEMBLE_CHECK(ws != nullptr && out != nullptr);
  switch (config_.kind) {
    case AggregationKind::kVoting:
      VoteInto(query, executed, out);
      return;
    case AggregationKind::kWeightedAverage:
      AverageInto(query, executed, ws, out);
      return;
    case AggregationKind::kStacking:
      StackInto(query, executed, ws, out);
      return;
  }
  AverageInto(query, executed, ws, out);
}

std::vector<double> Aggregator::Aggregate(const Query& query,
                                          SubsetMask executed) const {
  // Per-thread scratch keeps the historical convenience signature
  // allocation-free (beyond the returned vector) for concurrent completion
  // callbacks.
  thread_local Workspace ws;
  std::vector<double> out;
  AggregateInto(query, executed, &ws, &out);
  return out;
}

void Aggregator::AggregateBatch(const std::vector<Query>& queries,
                                SubsetMask executed, Workspace* ws,
                                std::vector<std::vector<double>>* outs) const {
  SCHEMBLE_CHECK_NE(executed, 0u);
  SCHEMBLE_CHECK(ws != nullptr && outs != nullptr);
  outs->resize(queries.size());
  if (config_.kind == AggregationKind::kStacking &&
      executed != FullMask(task_->num_models())) {
    // Shared-mask imputation: stage every query's concat row, fill them all
    // in one FillMissingBatch sweep (mask unpacked once), then run the
    // meta-classifier over the filled rows.
    ws->batch_concat.resize(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      BuildStackInput(queries[i], executed, ws, &ws->batch_concat[i]);
    }
    fill_index_->FillMissingBatch(ws->batch_concat, ws->mask, config_.knn_k,
                                  &ws->knn, &ws->batch_concat);
    for (size_t i = 0; i < queries.size(); ++i) {
      meta_->PredictProbaInto(ws->batch_concat[i], &ws->meta, &(*outs)[i]);
    }
    return;
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    AggregateInto(queries[i], executed, ws, &(*outs)[i]);
  }
}

}  // namespace schemble
