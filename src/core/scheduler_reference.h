#ifndef SCHEMBLE_CORE_SCHEDULER_REFERENCE_H_
#define SCHEMBLE_CORE_SCHEDULER_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "core/scheduler.h"

namespace schemble {

/// The pre-optimization DP scheduler, retained verbatim as the executable
/// specification of Alg. 1. The optimized DpScheduler in equivalence mode
/// must return bit-identical plans (tests/core/scheduler_equivalence_test),
/// and this class is benchmarked as the "before" rows of
/// bench/BENCH_scheduler.json. Do not optimize this code.
class ReferenceDpScheduler {
 public:
  using Options = DpScheduler::Options;

  ReferenceDpScheduler() : options_(Options{}) {}
  explicit ReferenceDpScheduler(Options options) : options_(options) {}

  SchedulePlan Schedule(const std::vector<SchedulerQuery>& queries,
                        const SchedulerEnv& env) const;

  int64_t last_ops() const { return last_ops_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  mutable int64_t last_ops_ = 0;
};

}  // namespace schemble

#endif  // SCHEMBLE_CORE_SCHEDULER_REFERENCE_H_
