#ifndef SCHEMBLE_CORE_SCHEDULER_H_
#define SCHEMBLE_CORE_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "common/small_vector.h"
#include "core/profiling.h"
#include "simcore/simulation.h"

namespace schemble {

/// Hard cap on ensemble size supported by the schedulers' inline load
/// vectors. 2^m subset enumeration makes larger ensembles impractical long
/// before this limit binds (m = 8 DP runs already take seconds); keeping
/// the inline capacity tight keeps the solution arena cache-resident.
inline constexpr int kMaxSchedulerModels = 8;

/// Per-model next-free times stored inline (no heap) inside DP solutions.
using LoadVector = SmallVector<SimTime, kMaxSchedulerModels>;

/// One buffered query as the scheduler sees it.
struct SchedulerQuery {
  int64_t id = 0;
  SimTime arrival = 0;
  SimTime deadline = 0;  // absolute
  /// Predicted discrepancy score (SJF ordering key).
  double predicted_score = 0.0;
  /// Reward of executing each model subset for this query, indexed by
  /// SubsetMask (size 2^m); utilities[0] must be 0.
  std::vector<double> utilities;
};

/// Scheduler-visible resource state.
struct SchedulerEnv {
  SimTime now = 0;
  /// Absolute time each base model's executor frees up (>= now when busy).
  std::vector<SimTime> model_available_at;
  /// Per-task service time of each base model.
  std::vector<SimTime> model_exec_time;

  int num_models() const {
    return static_cast<int>(model_available_at.size());
  }
};

/// Chosen subset per query, in execution (consistent) order. subset == 0
/// means the query is skipped/rejected.
struct ScheduleDecision {
  int64_t query_id = 0;
  SubsetMask subset = 0;
  /// Projected completion time under the plan (0 when skipped).
  SimTime completion = 0;
};

struct SchedulePlan {
  std::vector<ScheduleDecision> decisions;
  /// Sum of (unquantized) utilities of the scheduled subsets.
  double total_utility = 0.0;
};

/// Applies `subset` for one query on top of `avail` (per-model next-free
/// times, already clamped to >= now), mutating avail; returns the query's
/// completion time (the latest finishing task), or 0 for the empty subset.
SimTime ApplySubset(SubsetMask subset, const std::vector<SimTime>& exec_time,
                    std::vector<SimTime>& avail);

/// Fills work[mask] = total service time of `mask`'s models for every mask
/// in [0, 2^m). Incremental over masks (O(2^m) adds), shared by both
/// schedulers so the popcount-weighted sum is computed once per call.
void ComputeSubsetWork(const std::vector<SimTime>& exec_time,
                       std::vector<SimTime>& work);

/// The paper's Alg. 1: dynamic programming over (queries x quantized
/// utility) with per-cell Pareto pruning of model-load vectors, queries
/// processed in EDF order (Theorems 1-2 justify the consistent EDF order).
///
/// This is the optimized hot path: all DP solutions live in a reusable flat
/// workspace (load vectors inline via LoadVector, cells as fixed-size slot
/// blocks in one arena), each query's subset transitions iterate a
/// pre-filtered candidate list instead of all 2^m masks, and per-cell
/// min/max total-load bounds early-out most dominance scans. Steady-state
/// Schedule calls perform zero heap allocations in the DP transition loop
/// (see WorkspaceStats). ReferenceDpScheduler retains the seed algorithm;
/// in equivalence mode the optimized DP provably returns identical plans.
///
/// Not thread-safe: the workspace is per-instance; use one DpScheduler per
/// thread.
class DpScheduler {
 public:
  struct Options {
    /// Utility quantization step (delta). Smaller = closer to optimal but
    /// more work (Theorem 3: (1 - eps)-approximation with delta = eps/N).
    double delta = 0.01;
    /// Only the max_queries earliest-deadline buffered queries enter the
    /// DP; later ones are deferred to the next run (keeps bursts bounded).
    int max_queries = 24;
    /// Pareto-set cap per cell; overflow drops the largest total load.
    int max_solutions_per_cell = 8;
    /// When true, candidate pre-filtering only applies drops that provably
    /// cannot change the plan (deadline lower bounds), so Schedule returns
    /// bit-identical plans to ReferenceDpScheduler. The default also drops
    /// candidates whose proper subset has equal-or-higher utility, which
    /// preserves achievable utility but may pick a different tie.
    bool equivalence_mode = false;
  };

  /// Telemetry of the reusable scratch workspace. `grow_events` counts
  /// buffer-capacity growths since construction: steady-state Schedule
  /// calls (same or smaller instance shape) must not add any, which is the
  /// zero-allocation invariant the equivalence test asserts.
  struct WorkspaceStats {
    int64_t grow_events = 0;
    int64_t schedule_calls = 0;
  };

  DpScheduler() : options_(Options{}) {}
  explicit DpScheduler(Options options) : options_(options) {}

  /// Computes a near-optimal plan for the buffered queries. Queries may be
  /// passed in any order; the plan lists them in EDF order.
  SchedulePlan Schedule(const std::vector<SchedulerQuery>& queries,
                        const SchedulerEnv& env) const;

  /// DP transitions examined by the last Schedule call (the overhead proxy
  /// charged into the serving timeline).
  int64_t last_ops() const { return last_ops_; }

  const Options& options() const { return options_; }
  const WorkspaceStats& workspace_stats() const { return ws_.stats; }

 private:
  /// One pre-filtered subset transition for the current query.
  struct Candidate {
    SubsetMask mask = 0;
    int du = 0;              // quantized utility gain
    double raw_utility = 0.0;
    SimTime work = 0;        // total service time of the mask
  };

  /// Reconstruction metadata of one DP solution. Kept out of the dominance
  /// scan path on purpose: scans read only the parallel total/load arrays.
  struct SlotMeta {
    int parent_u = -1;       // utility index in the previous stage
    int parent_sol = -1;     // solution index within that cell
    SubsetMask subset = 0;   // subset chosen for the stage's query
    SimTime completion = 0;
  };

  /// Pareto cell: a lazily activated block of max_solutions_per_cell + 1
  /// slots. Deliberately tiny (8 bytes) so a whole DP stage's cell table
  /// stays in a few cache lines.
  struct Cell {
    int begin = -1;          // slot index; -1 until first insertion
    int count = 0;
  };

  /// DP solutions live in structure-of-arrays flat storage, reused across
  /// Schedule calls: slot s holds its total load in slot_total[s], its m
  /// per-model loads at slot_load[s * m] (runtime stride) and its
  /// back-pointers in slot_meta[s]. Cells own lazily activated fixed-size
  /// slot blocks, so the transition loop performs no heap allocation once
  /// the buffers reach their high-water marks.
  struct Workspace {
    std::vector<SimTime> slot_total;
    std::vector<SimTime> slot_load;
    std::vector<SlotMeta> slot_meta;
    int slots_used = 0;
    std::vector<Cell> cells;
    int cells_used = 0;
    /// stage_begin[i] / stage_size[i]: cells of DP stage i (utility index
    /// u lives at cells[stage_begin[i] + u]).
    std::vector<int> stage_begin;
    std::vector<int> stage_size;
    std::vector<SimTime> mask_work;
    std::vector<Candidate> candidates;
    std::vector<const SchedulerQuery*> sorted;
    WorkspaceStats stats;
  };

  /// The DP specialized on the model count: the per-load loops get
  /// compile-time trip counts, which matters at this loop depth.
  template <int M>
  SchedulePlan ScheduleImpl(const std::vector<SchedulerQuery>& queries,
                            const SchedulerEnv& env) const;
  /// Pareto insertion into cells[cell_index], fused into a single pass
  /// over the cell (dominance test, stable compaction and eviction
  /// bookkeeping). In equivalence mode the pass replicates the seed's
  /// insertion order exactly; otherwise it delegates to InsertSorted.
  /// `trial` points at the candidate's M loads.
  template <int M>
  void InsertPruned(int cell_index, const SimTime* trial, SimTime total,
                    SimTime completion, int parent_u, int parent_sol,
                    SubsetMask subset) const;
  /// Default-mode insertion keeping cell entries sorted by total load, so
  /// each side of the scan needs one directional dominance compare and
  /// eviction drops the (last) heaviest entry in O(1). Same Pareto set as
  /// the seed order; only tie-breaking may differ.
  template <int M>
  void InsertSorted(Cell& cell, const SimTime* trial, SimTime total,
                    SimTime completion, int parent_u, int parent_sol,
                    SubsetMask subset) const;
  void BuildCandidates(const SchedulerQuery& query, const SchedulerEnv& env,
                       const SimTime* init_avail, SubsetMask full) const;
  int ActivateCell(Cell& cell, int m) const;

  Options options_;
  /// Schedule() is const but reuses this scratch state across calls, so a
  /// DpScheduler instance must not be shared between threads (each
  /// SchemblePolicy owns one; the concurrent runtime serializes policy
  /// calls — see ServingPolicy's thread-safety contract).
  mutable int64_t last_ops_ = 0;
  mutable Workspace ws_;
};

/// Greedy baselines of Exp-4: fix an execution order, then give each query
/// the highest-reward subset that still meets its deadline.
class GreedyScheduler {
 public:
  enum class Order {
    kEdf,   // earliest deadline first
    kFifo,  // earliest arrival first
    kSjf,   // smallest predicted discrepancy score first
  };

  explicit GreedyScheduler(Order order) : order_(order) {}

  SchedulePlan Schedule(const std::vector<SchedulerQuery>& queries,
                        const SchedulerEnv& env) const;

  Order order() const { return order_; }

 private:
  Order order_;
};

}  // namespace schemble

#endif  // SCHEMBLE_CORE_SCHEDULER_H_
