#ifndef SCHEMBLE_CORE_SCHEDULER_H_
#define SCHEMBLE_CORE_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "core/profiling.h"
#include "simcore/simulation.h"

namespace schemble {

/// One buffered query as the scheduler sees it.
struct SchedulerQuery {
  int64_t id = 0;
  SimTime arrival = 0;
  SimTime deadline = 0;  // absolute
  /// Predicted discrepancy score (SJF ordering key).
  double predicted_score = 0.0;
  /// Reward of executing each model subset for this query, indexed by
  /// SubsetMask (size 2^m); utilities[0] must be 0.
  std::vector<double> utilities;
};

/// Scheduler-visible resource state.
struct SchedulerEnv {
  SimTime now = 0;
  /// Absolute time each base model's executor frees up (>= now when busy).
  std::vector<SimTime> model_available_at;
  /// Per-task service time of each base model.
  std::vector<SimTime> model_exec_time;

  int num_models() const {
    return static_cast<int>(model_available_at.size());
  }
};

/// Chosen subset per query, in execution (consistent) order. subset == 0
/// means the query is skipped/rejected.
struct ScheduleDecision {
  int64_t query_id = 0;
  SubsetMask subset = 0;
  /// Projected completion time under the plan (0 when skipped).
  SimTime completion = 0;
};

struct SchedulePlan {
  std::vector<ScheduleDecision> decisions;
  /// Sum of (unquantized) utilities of the scheduled subsets.
  double total_utility = 0.0;
};

/// Applies `subset` for one query on top of `avail` (per-model next-free
/// times, already clamped to >= now), mutating avail; returns the query's
/// completion time (the latest finishing task), or 0 for the empty subset.
SimTime ApplySubset(SubsetMask subset, const std::vector<SimTime>& exec_time,
                    std::vector<SimTime>& avail);

/// The paper's Alg. 1: dynamic programming over (queries x quantized
/// utility) with per-cell Pareto pruning of model-load vectors, queries
/// processed in EDF order (Theorems 1-2 justify the consistent EDF order).
class DpScheduler {
 public:
  struct Options {
    /// Utility quantization step (delta). Smaller = closer to optimal but
    /// more work (Theorem 3: (1 - eps)-approximation with delta = eps/N).
    double delta = 0.01;
    /// Only the max_queries earliest-deadline buffered queries enter the
    /// DP; later ones are deferred to the next run (keeps bursts bounded).
    int max_queries = 24;
    /// Pareto-set cap per cell; overflow drops the largest total load.
    int max_solutions_per_cell = 8;
  };

  DpScheduler() : options_(Options{}) {}
  explicit DpScheduler(Options options) : options_(options) {}

  /// Computes a near-optimal plan for the buffered queries. Queries may be
  /// passed in any order; the plan lists them in EDF order.
  SchedulePlan Schedule(const std::vector<SchedulerQuery>& queries,
                        const SchedulerEnv& env) const;

  /// DP transitions examined by the last Schedule call (the overhead proxy
  /// charged into the serving timeline).
  int64_t last_ops() const { return last_ops_; }

  const Options& options() const { return options_; }

 private:
  Options options_;
  mutable int64_t last_ops_ = 0;
};

/// Greedy baselines of Exp-4: fix an execution order, then give each query
/// the highest-reward subset that still meets its deadline.
class GreedyScheduler {
 public:
  enum class Order {
    kEdf,   // earliest deadline first
    kFifo,  // earliest arrival first
    kSjf,   // smallest predicted discrepancy score first
  };

  explicit GreedyScheduler(Order order) : order_(order) {}

  SchedulePlan Schedule(const std::vector<SchedulerQuery>& queries,
                        const SchedulerEnv& env) const;

  Order order() const { return order_; }

 private:
  Order order_;
};

}  // namespace schemble

#endif  // SCHEMBLE_CORE_SCHEDULER_H_
