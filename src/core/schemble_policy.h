#ifndef SCHEMBLE_CORE_SCHEMBLE_POLICY_H_
#define SCHEMBLE_CORE_SCHEMBLE_POLICY_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/discrepancy.h"
#include "core/discrepancy_predictor.h"
#include "core/policy.h"
#include "core/profiling.h"
#include "core/scheduler.h"

namespace schemble {

/// Where per-query difficulty comes from.
enum class ScoreSource {
  kPredictor,  // the trained discrepancy-prediction network (Schemble)
  kOracle,     // ground-truth scores from recorded outputs (Schemble*(Oracle))
  kConstant,   // one score for everything (Schemble(t) ablation)
};

/// Which scheduling algorithm drains the query buffer (Exp-4 ablations).
enum class BufferScheduler { kDp, kGreedyEdf, kGreedyFifo, kGreedySjf };

struct SchembleConfig {
  std::string name = "Schemble";
  ScoreSource score_source = ScoreSource::kPredictor;
  double constant_score = 0.5;
  BufferScheduler scheduler = BufferScheduler::kDp;
  DpScheduler::Options dp;
  /// Simulated scheduling throughput: DP transitions per microsecond. The
  /// resulting overhead delays dispatched tasks (Fig. 12/21's small-delta
  /// penalty).
  double scheduler_ops_per_us = 200.0;
  /// Ablation of the central query buffer (DESIGN.md decision 5): when
  /// false the policy commits a subset immediately at arrival, like the
  /// selection-only baselines, instead of deferring to the scheduler.
  bool use_buffer = true;
};

/// The full Schemble serving policy (§IV): discrepancy-score prediction +
/// profiled utility rewards + DP task scheduling over the query buffer,
/// with the paper's fast path (all models idle -> assign directly, skipping
/// the scheduler).
class SchemblePolicy : public ServingPolicy {
 public:
  /// `predictor` is required for kPredictor, `scorer` for kOracle; both may
  /// otherwise be null. All referenced objects must outlive the policy.
  SchemblePolicy(const SyntheticTask& task, const AccuracyProfile& profile,
                 const DiscrepancyPredictor* predictor,
                 const DiscrepancyScorer* scorer, SchembleConfig config);

  std::string name() const override { return config_.name; }

  ArrivalDecision OnArrival(const TracedQuery& query,
                            const ServerView& view) override;

  PolicyOutput OnIdle(const ServerView& view,
                      const std::vector<const TracedQuery*>& buffer) override;

  SimTime ArrivalProcessingDelay() const override;

  /// The score this policy used for a query (tests/diagnostics); returns
  /// the constant when unseen.
  double ScoreOf(int64_t query_id) const;

  /// Cumulative simulated scheduling overhead charged so far.
  SimTime total_overhead_us() const { return total_overhead_us_; }
  int64_t scheduler_runs() const { return scheduler_runs_; }

 private:
  double ComputeScore(const Query& query);
  /// Highest-utility subset meeting `deadline` from an idle start.
  SubsetMask BestImmediateSubset(double score, SimTime deadline,
                                 const ServerView& view) const;

  const SyntheticTask* task_;
  const AccuracyProfile* profile_;
  const DiscrepancyPredictor* predictor_;
  const DiscrepancyScorer* scorer_;
  SchembleConfig config_;
  DpScheduler dp_;
  std::unordered_map<int64_t, double> score_cache_;
  SimTime total_overhead_us_ = 0;
  int64_t scheduler_runs_ = 0;
};

}  // namespace schemble

#endif  // SCHEMBLE_CORE_SCHEMBLE_POLICY_H_
