#ifndef SCHEMBLE_CORE_SCHEMBLE_POLICY_H_
#define SCHEMBLE_CORE_SCHEMBLE_POLICY_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/discrepancy.h"
#include "core/discrepancy_predictor.h"
#include "core/policy.h"
#include "core/profiling.h"
#include "core/scheduler.h"

namespace schemble {

/// Where per-query difficulty comes from.
enum class ScoreSource {
  kPredictor,  // the trained discrepancy-prediction network (Schemble)
  kOracle,     // ground-truth scores from recorded outputs (Schemble*(Oracle))
  kConstant,   // one score for everything (Schemble(t) ablation)
};

/// Which scheduling algorithm drains the query buffer (Exp-4 ablations).
enum class BufferScheduler { kDp, kGreedyEdf, kGreedyFifo, kGreedySjf };

struct SchembleConfig {
  std::string name = "Schemble";
  ScoreSource score_source = ScoreSource::kPredictor;
  double constant_score = 0.5;
  BufferScheduler scheduler = BufferScheduler::kDp;
  DpScheduler::Options dp;
  /// Simulated scheduling throughput: DP transitions per microsecond. The
  /// resulting overhead delays dispatched tasks (Fig. 12/21's small-delta
  /// penalty).
  double scheduler_ops_per_us = 200.0;
  /// Ablation of the central query buffer (DESIGN.md decision 5): when
  /// false the policy commits a subset immediately at arrival, like the
  /// selection-only baselines, instead of deferring to the scheduler.
  bool use_buffer = true;
};

/// The full Schemble serving policy (§IV): discrepancy-score prediction +
/// profiled utility rewards + DP task scheduling over the query buffer,
/// with the paper's fast path (all models idle -> assign directly, skipping
/// the scheduler).
class SchemblePolicy : public ServingPolicy {
 public:
  /// `predictor` is required for kPredictor, `scorer` for kOracle; both may
  /// otherwise be null. All referenced objects must outlive the policy.
  SchemblePolicy(const SyntheticTask& task, const AccuracyProfile& profile,
                 const DiscrepancyPredictor* predictor,
                 const DiscrepancyScorer* scorer, SchembleConfig config);

  std::string name() const override { return config_.name; }

  ArrivalDecision OnArrival(const TracedQuery& query,
                            const ServerView& view) override;

  /// Thin wrapper over PlanOnView against a policy-owned workspace; the
  /// discrete-event driver's entry point. Bit-identical to the off-lock
  /// path because both share one planning body and scores are
  /// deterministic per query.
  PolicyOutput OnIdle(const ServerView& view,
                      const std::vector<const TracedQuery*>& buffer) override;

  bool SupportsOffLockPlanning() const override { return true; }
  std::unique_ptr<PolicyPlanState> CreatePlanState() const override;
  void PlanOnView(const ServerView& view, PlanWorkspace* ws) const override;

  SimTime ArrivalProcessingDelay() const override;

  /// The score this policy used for a query (tests/diagnostics); returns
  /// the constant when unseen. Only reflects scores computed by OnArrival;
  /// planning-path scores live in the caller's PlanWorkspace.
  double ScoreOf(int64_t query_id) const;

  /// Cumulative simulated scheduling overhead charged so far (across every
  /// planning caller).
  SimTime total_overhead_us() const {
    // relaxed-ok: telemetry read; callers want totals, not ordering
    return total_overhead_us_.load(std::memory_order_relaxed);
  }
  int64_t scheduler_runs() const {
    // relaxed-ok: telemetry read; callers want totals, not ordering
    return scheduler_runs_.load(std::memory_order_relaxed);
  }

 private:
  double ComputeScore(const Query& query);
  /// Scores `query` through `cache` without touching policy members; the
  /// concurrency-safe core both score paths share.
  double LookupScore(const Query& query,
                     std::unordered_map<int64_t, double>* cache) const;
  /// Highest-utility subset meeting `deadline` from an idle start.
  SubsetMask BestImmediateSubset(double score, SimTime deadline,
                                 const ServerView& view) const;

  const SyntheticTask* task_;
  const AccuracyProfile* profile_;
  const DiscrepancyPredictor* predictor_;
  const DiscrepancyScorer* scorer_;
  SchembleConfig config_;
  /// OnArrival's score memo. Guarded by the caller's serialization of
  /// OnArrival; PlanOnView never reads it (it has its own cache inside the
  /// PlanWorkspace so planning can run concurrently with arrivals).
  std::unordered_map<int64_t, double> score_cache_;
  /// Scheduling telemetry, advanced from const PlanOnView — atomics per
  /// the ServingPolicy planning contract.
  mutable std::atomic<SimTime> total_overhead_us_{0};
  mutable std::atomic<int64_t> scheduler_runs_{0};
  /// Lazily created workspace backing the OnIdle wrapper (single-threaded
  /// discrete-event callers only).
  std::unique_ptr<PlanWorkspace> own_ws_;
};

}  // namespace schemble

#endif  // SCHEMBLE_CORE_SCHEMBLE_POLICY_H_
