#include "core/profiling.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace schemble {

int SubsetSize(SubsetMask mask) { return __builtin_popcount(mask); }

std::vector<int> SubsetModels(SubsetMask mask) {
  std::vector<int> models;
  SubsetModelsInto(mask, &models);
  return models;
}

void SubsetModelsInto(SubsetMask mask, std::vector<int>* models) {
  models->clear();
  for (int k = 0; mask != 0; ++k, mask >>= 1) {
    if (mask & 1u) models->push_back(k);
  }
}

SubsetMask FullMask(int num_models) {
  return (SubsetMask{1} << num_models) - 1;
}

int AccuracyProfile::BinOf(double score) const {
  const int bin = static_cast<int>(score * bins());
  return std::clamp(bin, 0, bins() - 1);
}

Result<AccuracyProfile> AccuracyProfile::Build(
    const SyntheticTask& task, const std::vector<Query>& history,
    const std::vector<double>& scores, const Options& options) {
  if (history.empty() || history.size() != scores.size()) {
    return Status::InvalidArgument(
        "profiling needs matching, non-empty history and scores");
  }
  if (options.bins <= 0) {
    return Status::InvalidArgument("profiling needs bins > 0");
  }
  const int m = task.num_models();
  if (m > 16) {
    return Status::InvalidArgument("profiling supports at most 16 models");
  }
  const SubsetMask full = FullMask(m);
  const int max_size = options.max_profiled_subset > 0
                           ? options.max_profiled_subset
                           : m;

  AccuracyProfile profile;
  profile.num_models_ = m;
  profile.table_.assign(options.bins,
                        std::vector<double>(full + 1, 0.0));
  profile.bin_counts_.assign(options.bins, 0);
  std::vector<std::vector<double>> sums(options.bins,
                                        std::vector<double>(full + 1, 0.0));
  // Global sums provide fallbacks for empty bins.
  std::vector<double> global_sums(full + 1, 0.0);

  // The inner sweep evaluates every subset for every query; the unpacked
  // index list and the aggregation output are reused across all of them so
  // the profiling pass stays allocation-free in steady state.
  std::vector<int> subset;
  std::vector<double> produced;
  for (size_t i = 0; i < history.size(); ++i) {
    const Query& q = history[i];
    const int bin = profile.BinOf(scores[i]);
    ++profile.bin_counts_[bin];
    for (SubsetMask mask = 1; mask <= full; ++mask) {
      if (SubsetSize(mask) > max_size && mask != full) continue;
      SubsetModelsInto(mask, &subset);
      task.AggregateSubsetInto(q, subset, &produced);
      const double match = task.MatchScore(produced, q.ensemble_output);
      sums[bin][mask] += match;
      global_sums[mask] += match;
    }
  }

  const double n = static_cast<double>(history.size());
  for (int bin = 0; bin < options.bins; ++bin) {
    for (SubsetMask mask = 1; mask <= full; ++mask) {
      if (profile.bin_counts_[bin] > 0) {
        profile.table_[bin][mask] =
            sums[bin][mask] / static_cast<double>(profile.bin_counts_[bin]);
      } else {
        profile.table_[bin][mask] = global_sums[mask] / n;
      }
    }
    if (options.enforce_monotone) {
      // Ascending mask order visits subsets before supersets.
      for (SubsetMask mask = 1; mask <= full; ++mask) {
        for (int k = 0; k < m; ++k) {
          const SubsetMask bit = SubsetMask{1} << k;
          if ((mask & bit) && mask != bit) {
            profile.table_[bin][mask] = std::max(
                profile.table_[bin][mask], profile.table_[bin][mask ^ bit]);
          }
        }
      }
    }
  }
  return profile;
}

double AccuracyProfile::Utility(double score, SubsetMask subset) const {
  if (subset == 0) return 0.0;
  SCHEMBLE_DCHECK(subset < table_[0].size());
  return table_[BinOf(score)][subset];
}

std::vector<double> AccuracyProfile::UtilityRow(double score) const {
  return table_[BinOf(score)];
}

AccuracyProfile AccuracyProfile::CompletedWith(
    const MarginalUtilityEstimator& estimator) const {
  AccuracyProfile completed = *this;
  for (int bin = 0; bin < bins(); ++bin) {
    std::vector<double> truncated(table_[bin].size(), 0.0);
    for (SubsetMask mask = 1; mask < table_[bin].size(); ++mask) {
      if (SubsetSize(mask) <= 2) truncated[mask] = table_[bin][mask];
    }
    const std::vector<double> estimated = estimator.CompleteRow(truncated);
    for (SubsetMask mask = 1; mask < table_[bin].size(); ++mask) {
      if (SubsetSize(mask) > 2) {
        completed.table_[bin][mask] = estimated[mask];
      }
    }
  }
  return completed;
}

MarginalUtilityEstimator::MarginalUtilityEstimator(
    int num_models, std::vector<double> model_accuracy,
    std::vector<double> gammas)
    : num_models_(num_models),
      model_accuracy_(std::move(model_accuracy)),
      gammas_(std::move(gammas)) {
  SCHEMBLE_CHECK_EQ(static_cast<int>(model_accuracy_.size()), num_models_);
}

int MarginalUtilityEstimator::WeakestIn(SubsetMask mask) const {
  int weakest = -1;
  for (int k = 0; k < num_models_; ++k) {
    if (!(mask & (SubsetMask{1} << k))) continue;
    if (weakest < 0 || model_accuracy_[k] < model_accuracy_[weakest]) {
      weakest = k;
    }
  }
  SCHEMBLE_CHECK_GE(weakest, 0);
  return weakest;
}

double MarginalUtilityEstimator::Estimate(
    SubsetMask mask, std::vector<double>& memo,
    const std::vector<double>& row) const {
  if (mask == 0) return 0.0;
  if (memo[mask] >= 0.0) return memo[mask];
  if (SubsetSize(mask) <= 2) {
    memo[mask] = row[mask];
    return memo[mask];
  }
  // Peel the weakest member as m_{k+1} in Eq. 3.
  const int extra = WeakestIn(mask);
  const SubsetMask rest = mask ^ (SubsetMask{1} << extra);
  const int k = SubsetSize(rest);
  double marginal = 0.0;
  for (int q = 0; q < num_models_; ++q) {
    const SubsetMask qbit = SubsetMask{1} << q;
    if (!(rest & qbit)) continue;
    marginal += row[qbit | (SubsetMask{1} << extra)] - row[qbit];
  }
  marginal /= static_cast<double>(k);
  const double gamma =
      k < static_cast<int>(gammas_.size()) ? gammas_[k] : gammas_.back();
  const double value =
      std::clamp(Estimate(rest, memo, row) + gamma * marginal, 0.0, 1.0);
  memo[mask] = value;
  return value;
}

std::vector<double> MarginalUtilityEstimator::CompleteRow(
    const std::vector<double>& row) const {
  const SubsetMask full = FullMask(num_models_);
  SCHEMBLE_CHECK_EQ(row.size(), static_cast<size_t>(full) + 1);
  std::vector<double> memo(full + 1, -1.0);
  std::vector<double> out(full + 1, 0.0);
  for (SubsetMask mask = 1; mask <= full; ++mask) {
    out[mask] = Estimate(mask, memo, row);
  }
  return out;
}

std::vector<double> MarginalUtilityEstimator::FitGammas(
    const AccuracyProfile& profile) {
  const int m = profile.num_models();
  const SubsetMask full = FullMask(m);
  // Accuracy proxy: each model's singleton utility averaged over bins.
  std::vector<double> accuracy(m, 0.0);
  for (int k = 0; k < m; ++k) {
    for (int bin = 0; bin < profile.bins(); ++bin) {
      accuracy[k] += profile.CellUtility(bin, SubsetMask{1} << k);
    }
    accuracy[k] /= profile.bins();
  }
  MarginalUtilityEstimator helper(m, accuracy,
                                  std::vector<double>(std::max(m, 3), 1.0));
  // Least squares per extension size k: increment ~ gamma_k * predictor.
  std::vector<double> num(std::max(m, 3), 0.0);
  std::vector<double> den(std::max(m, 3), 0.0);
  for (int bin = 0; bin < profile.bins(); ++bin) {
    for (SubsetMask mask = 1; mask <= full; ++mask) {
      const int size = SubsetSize(mask);
      if (size < 3) continue;
      const int extra = helper.WeakestIn(mask);
      const SubsetMask rest = mask ^ (SubsetMask{1} << extra);
      const int k = size - 1;
      double predictor = 0.0;
      for (int q = 0; q < m; ++q) {
        const SubsetMask qbit = SubsetMask{1} << q;
        if (!(rest & qbit)) continue;
        predictor += profile.CellUtility(bin, qbit | (SubsetMask{1} << extra)) -
                     profile.CellUtility(bin, qbit);
      }
      predictor /= static_cast<double>(k);
      const double increment =
          profile.CellUtility(bin, mask) - profile.CellUtility(bin, rest);
      num[k] += increment * predictor;
      den[k] += predictor * predictor;
    }
  }
  std::vector<double> gammas(std::max(m, 3), 1.0);
  for (size_t k = 2; k < gammas.size(); ++k) {
    if (den[k] > 1e-12) gammas[k] = std::max(0.0, num[k] / den[k]);
  }
  return gammas;
}

}  // namespace schemble
