#ifndef SCHEMBLE_CORE_DISCREPANCY_H_
#define SCHEMBLE_CORE_DISCREPANCY_H_

#include <vector>

#include "common/status.h"
#include "models/synthetic_task.h"
#include "nn/calibration.h"

namespace schemble {

/// Difficulty metric variants.
enum class DifficultyMetric {
  /// The paper's discrepancy score (Eq. 1): mean *normalized* distance from
  /// each base model's calibrated output to the ensemble's output.
  kDiscrepancy,
  /// The ensemble-agreement baseline (Carlini et al.): mean pairwise
  /// symmetric KL divergence between *uncalibrated* base-model outputs.
  /// Kept as-is (no calibration, no normalization) to reproduce the
  /// deficiencies §V-A describes.
  kEnsembleAgreement,
};

struct DiscrepancyConfig {
  DifficultyMetric metric = DifficultyMetric::kDiscrepancy;
  /// Per-model distance normalization (the "Norm" in Eq. 1). Disabled only
  /// in ablations.
  bool normalize_per_model = true;
  /// Classification: calibrate raw logits with temperature scaling before
  /// measuring distances.
  bool calibrate = true;
  /// Final scores are scaled so this quantile of the fit data maps to 1.0
  /// (scores clamp to [0, 1]); keeps bin edges stable across datasets.
  double scale_quantile = 0.99;
};

/// Computes ground-truth difficulty scores from recorded model outputs.
///
/// Fit() learns the dataset-dependent pieces (per-model temperature scalers,
/// per-model distance normalizers, final scale) on historical data; Score()
/// then maps any query's recorded outputs to a difficulty in [0, 1].
class DiscrepancyScorer {
 public:
  static Result<DiscrepancyScorer> Fit(const SyntheticTask& task,
                                       const std::vector<Query>& history,
                                       const DiscrepancyConfig& config = {});

  /// Difficulty of one query from its recorded outputs, in [0, 1].
  double Score(const Query& query) const;

  /// Scores for a whole dataset.
  std::vector<double> ScoreAll(const std::vector<Query>& queries) const;

  /// Distance of model k's output to the ensemble output (before
  /// normalization); exposed for the preference-correlation study (Fig. 5).
  double ModelDistance(const Query& query, int model) const;

  const DiscrepancyConfig& config() const { return config_; }
  double temperature(int model) const { return scalers_[model].temperature(); }

 private:
  DiscrepancyScorer(const SyntheticTask* task, DiscrepancyConfig config)
      : task_(task), config_(config) {}

  double RawScore(const Query& query) const;
  std::vector<double> CalibratedOutput(const Query& query, int model) const;

  const SyntheticTask* task_;  // not owned; must outlive the scorer
  DiscrepancyConfig config_;
  std::vector<TemperatureScaler> scalers_;   // one per model (classification)
  std::vector<double> model_norms_;          // per-model mean distance
  double scale_ = 1.0;                       // raw score -> [0,1]
};

}  // namespace schemble

#endif  // SCHEMBLE_CORE_DISCREPANCY_H_
