#include "core/discrepancy_predictor.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/prob.h"
#include "nn/kernels.h"

namespace schemble {

int DiscrepancyPredictor::task_head_dim() const {
  return task_->output_dim();
}

Result<DiscrepancyPredictor> DiscrepancyPredictor::Train(
    const SyntheticTask& task, const std::vector<Query>& history,
    const std::vector<double>& scores, const PredictorConfig& config) {
  if (history.empty() || history.size() != scores.size()) {
    return Status::InvalidArgument(
        "predictor training needs matching, non-empty history and scores");
  }
  const int task_dim = task.output_dim();
  const int out_dim = task_dim + 1;

  MlpConfig mlp_config;
  mlp_config.layer_sizes.push_back(task.spec().feature_dim());
  for (int h : config.hidden) mlp_config.layer_sizes.push_back(h);
  mlp_config.layer_sizes.push_back(out_dim);
  auto mlp = std::make_unique<Mlp>(mlp_config, config.seed);

  // Targets: [ensemble output (the label), ground-truth score].
  std::vector<TrainExample> examples;
  examples.reserve(history.size());
  const double value_scale = task.spec().value_scale;
  for (size_t i = 0; i < history.size(); ++i) {
    std::vector<double> target;
    target.reserve(out_dim);
    if (task.spec().type == TaskType::kRegression) {
      target.push_back(history[i].ensemble_output[0] / value_scale);
    } else {
      for (double v : history[i].ensemble_output) target.push_back(v);
    }
    target.push_back(scores[i]);
    examples.push_back({history[i].features, std::move(target)});
  }

  // Eq. 2: l(label, output1) + lambda * MSE(dis, output2).
  const TaskType type = task.spec().type;
  const double lambda = config.lambda;
  LossGradFn loss = [task_dim, type, lambda](
                        const std::vector<double>& output,
                        const std::vector<double>& target,
                        std::vector<double>* grad) {
    grad->assign(output.size(), 0.0);
    double task_loss = 0.0;
    if (type == TaskType::kClassification) {
      // Softmax cross-entropy on the task logits vs soft ensemble targets.
      // The softmax is computed in place inside the grad buffer so the
      // per-example loss evaluation allocates nothing in steady state.
      std::copy(output.begin(), output.begin() + task_dim, grad->begin());
      kernels::SoftmaxInPlace(grad->data(), task_dim);
      for (int i = 0; i < task_dim; ++i) {
        const double p = (*grad)[i];
        if (target[i] > 0.0) {
          task_loss -= target[i] * std::log(std::max(p, 1e-12));
        }
        (*grad)[i] = p - target[i];
      }
    } else {
      // MSE on the (normalized) task outputs.
      for (int i = 0; i < task_dim; ++i) {
        const double d = output[i] - target[i];
        task_loss += d * d / task_dim;
        (*grad)[i] = 2.0 * d / task_dim;
      }
    }
    const double ds = output[task_dim] - target[task_dim];
    (*grad)[task_dim] = lambda * 2.0 * ds;
    return task_loss + lambda * ds * ds;
  };

  Rng rng(HashSeed("predictor-train", config.seed));
  TrainMlp(mlp.get(), examples, loss, config.trainer, rng);
  return DiscrepancyPredictor(&task, config, std::move(mlp));
}

double DiscrepancyPredictor::Predict(const Query& query) const {
  // Per-thread scratch keeps the per-query prediction allocation-free; the
  // concurrent runtime calls Predict inside its policy critical section, so
  // this directly shrinks time under the lock.
  thread_local MlpInferenceScratch scratch;
  thread_local std::vector<double> out;
  mlp_->ForwardInto(query.features, &scratch, &out);
  return std::clamp(out[task_head_dim()], 0.0, 1.0);
}

std::vector<double> DiscrepancyPredictor::TaskHead(const Query& query) const {
  std::vector<double> out = mlp_->Forward(query.features);
  out.resize(task_head_dim());
  if (task_->spec().type == TaskType::kClassification) {
    SoftmaxInPlace(out);
  }
  return out;
}

double DiscrepancyPredictor::EvaluateMse(
    const std::vector<Query>& queries, const std::vector<double>& scores) const {
  SCHEMBLE_CHECK_EQ(queries.size(), scores.size());
  SCHEMBLE_CHECK(!queries.empty());
  double mse = 0.0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const double d = Predict(queries[i]) - scores[i];
    mse += d * d;
  }
  return mse / static_cast<double>(queries.size());
}

double DiscrepancyPredictor::MemoryMb() const {
  return static_cast<double>(ParameterCount()) * 4.0 / (1024.0 * 1024.0);
}

}  // namespace schemble
