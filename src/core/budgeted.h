#ifndef SCHEMBLE_CORE_BUDGETED_H_
#define SCHEMBLE_CORE_BUDGETED_H_

#include <vector>

#include "core/profiling.h"

namespace schemble {

/// Offline budgeted subset selection (the appendix's Schemble*): choose one
/// model subset per sample so that the summed utilities are maximized under
/// a total cumulative-runtime budget. This is a multiple-choice knapsack;
/// following the paper we solve the LP relaxation, which the classic
/// convex-hull greedy does exactly (each sample's options are reduced to
/// their efficiency frontier and upgrades are applied in decreasing
/// marginal-utility-per-cost order).
class BudgetedSelector {
 public:
  /// `utilities[i][mask]`: reward of running subset `mask` on sample i
  /// (index 0 = empty subset = 0 reward). `subset_cost[mask]`: runtime cost
  /// of the subset. Returns the chosen mask per sample (possibly 0) with
  /// total cost <= budget.
  static std::vector<SubsetMask> Select(
      const std::vector<std::vector<double>>& utilities,
      const std::vector<double>& subset_cost, double budget);

  /// Total cost / utility of an assignment (bench reporting helpers).
  static double TotalCost(const std::vector<SubsetMask>& assignment,
                          const std::vector<double>& subset_cost);
  static double TotalUtility(const std::vector<SubsetMask>& assignment,
                             const std::vector<std::vector<double>>& utilities);
};

}  // namespace schemble

#endif  // SCHEMBLE_CORE_BUDGETED_H_
