#include "core/schemble_policy.h"

#include <algorithm>

#include "common/logging.h"

namespace schemble {

SchemblePolicy::SchemblePolicy(const SyntheticTask& task,
                               const AccuracyProfile& profile,
                               const DiscrepancyPredictor* predictor,
                               const DiscrepancyScorer* scorer,
                               SchembleConfig config)
    : task_(&task),
      profile_(&profile),
      predictor_(predictor),
      scorer_(scorer),
      config_(std::move(config)),
      dp_(config_.dp) {
  if (config_.score_source == ScoreSource::kPredictor) {
    SCHEMBLE_CHECK(predictor_ != nullptr);
  }
  if (config_.score_source == ScoreSource::kOracle) {
    SCHEMBLE_CHECK(scorer_ != nullptr);
  }
}

double SchemblePolicy::ComputeScore(const Query& query) {
  auto it = score_cache_.find(query.id);
  if (it != score_cache_.end()) return it->second;
  double score = config_.constant_score;
  switch (config_.score_source) {
    case ScoreSource::kPredictor:
      score = predictor_->Predict(query);
      break;
    case ScoreSource::kOracle:
      score = scorer_->Score(query);
      break;
    case ScoreSource::kConstant:
      break;
  }
  score_cache_.emplace(query.id, score);
  return score;
}

double SchemblePolicy::ScoreOf(int64_t query_id) const {
  auto it = score_cache_.find(query_id);
  return it == score_cache_.end() ? config_.constant_score : it->second;
}

SimTime SchemblePolicy::ArrivalProcessingDelay() const {
  if (config_.score_source == ScoreSource::kPredictor &&
      predictor_ != nullptr) {
    return predictor_->inference_latency_us();
  }
  return 0;
}

SubsetMask SchemblePolicy::BestImmediateSubset(double score, SimTime deadline,
                                               const ServerView& view) const {
  const std::vector<double> utilities = profile_->UtilityRow(score);
  SubsetMask best = 0;
  double best_utility = -1.0;
  int best_size = -1;
  for (SubsetMask mask = 1; mask < utilities.size(); ++mask) {
    if (view.EstimateCompletion(mask) > deadline) continue;
    // Utility first; on ties prefer the larger subset — with idle capacity
    // the extra executions are free accuracy insurance (the paper's
    // light-traffic behaviour of running all three models).
    const int size = SubsetSize(mask);
    if (utilities[mask] > best_utility ||
        (utilities[mask] == best_utility && size > best_size)) {
      best = mask;
      best_utility = utilities[mask];
      best_size = size;
    }
  }
  return best;
}

ArrivalDecision SchemblePolicy::OnArrival(const TracedQuery& query,
                                          const ServerView& view) {
  const double score = ComputeScore(query.query);
  // Fast path (§VIII implementation notes): with every model idle there is
  // nothing to schedule against; assign the best feasible subset directly.
  bool all_idle = true;
  for (int k = 0; k < view.num_models(); ++k) {
    all_idle &= view.model_available_at[k] <= view.now;
  }
  if (all_idle || !config_.use_buffer) {
    const SubsetMask best = BestImmediateSubset(score, query.deadline, view);
    if (best != 0) return ArrivalDecision::Assign(best);
    if (view.allow_rejection) return ArrivalDecision::Reject();
    if (!config_.use_buffer) {
      // No buffer to fall back to: run the fastest model regardless.
      int fastest = 0;
      for (int k = 1; k < view.num_models(); ++k) {
        if (view.model_exec_time[k] < view.model_exec_time[fastest]) {
          fastest = k;
        }
      }
      return ArrivalDecision::Assign(SubsetMask{1} << fastest);
    }
    return ArrivalDecision::Buffer();
  }
  return ArrivalDecision::Buffer();
}

PolicyOutput SchemblePolicy::OnIdle(
    const ServerView& view, const std::vector<const TracedQuery*>& buffer) {
  PolicyOutput output;
  if (buffer.empty()) return output;

  std::vector<SchedulerQuery> queries;
  queries.reserve(buffer.size());
  for (const TracedQuery* tq : buffer) {
    SchedulerQuery sq;
    sq.id = tq->query.id;
    sq.arrival = tq->arrival_time;
    sq.deadline = tq->deadline;
    sq.predicted_score = ComputeScore(tq->query);
    sq.utilities = profile_->UtilityRow(sq.predicted_score);
    queries.push_back(std::move(sq));
  }

  SchedulerEnv env;
  env.now = view.now;
  env.model_available_at = view.model_available_at;
  env.model_exec_time = view.model_exec_time;

  SchedulePlan plan;
  ++scheduler_runs_;
  switch (config_.scheduler) {
    case BufferScheduler::kDp:
      plan = dp_.Schedule(queries, env);
      output.overhead_us = static_cast<SimTime>(
          static_cast<double>(dp_.last_ops()) / config_.scheduler_ops_per_us);
      break;
    case BufferScheduler::kGreedyEdf:
      plan = GreedyScheduler(GreedyScheduler::Order::kEdf)
                 .Schedule(queries, env);
      break;
    case BufferScheduler::kGreedyFifo:
      plan = GreedyScheduler(GreedyScheduler::Order::kFifo)
                 .Schedule(queries, env);
      break;
    case BufferScheduler::kGreedySjf:
      plan = GreedyScheduler(GreedyScheduler::Order::kSjf)
                 .Schedule(queries, env);
      break;
  }
  total_overhead_us_ += output.overhead_us;

  // Commit plan entries, in plan (EDF) order, while idle capacity remains:
  // a query is dispatched when at least one of its models can start it now.
  // Everything else stays buffered so later arrivals can reshape the plan.
  std::vector<SimTime> avail = env.model_available_at;
  for (SimTime& t : avail) t = std::max(t, view.now);
  bool any_idle = false;
  for (int k = 0; k < view.num_models(); ++k) {
    any_idle |= avail[k] <= view.now;
  }
  // Force-processing mode: a query the plan leaves unscheduled (deadline
  // infeasible) still has to run; fall back to the fastest single model.
  SubsetMask fallback = 0;
  if (!view.allow_rejection) {
    int fastest = 0;
    for (int k = 1; k < view.num_models(); ++k) {
      if (view.model_exec_time[k] < view.model_exec_time[fastest]) {
        fastest = k;
      }
    }
    fallback = SubsetMask{1} << fastest;
  }
  for (ScheduleDecision decision : plan.decisions) {
    if (!any_idle) break;
    if (decision.subset == 0) {
      if (fallback == 0) continue;
      decision.subset = fallback;
    }
    bool starts_now = false;
    for (int k = 0; k < view.num_models(); ++k) {
      if ((decision.subset & (SubsetMask{1} << k)) && avail[k] <= view.now) {
        starts_now = true;
        break;
      }
    }
    if (!starts_now) continue;
    ApplySubset(decision.subset, env.model_exec_time, avail);
    output.assignments.push_back({decision.query_id, decision.subset});
    any_idle = false;
    for (int k = 0; k < view.num_models(); ++k) {
      any_idle |= avail[k] <= view.now;
    }
  }
  return output;
}

}  // namespace schemble
