#include "core/schemble_policy.h"

#include <algorithm>

#include "common/logging.h"

namespace schemble {
namespace {

/// Schemble's planning scratch: everything OnIdle used to mutate on the
/// policy itself now lives here, one instance per planning caller, so the
/// concurrent runtime can solve the DP outside its policy mutex while
/// OnArrival keeps running against the policy's own members.
struct SchemblePlanState final : PolicyPlanState {
  explicit SchemblePlanState(const DpScheduler::Options& dp_options)
      : dp(dp_options) {}

  DpScheduler dp;
  /// Planning-path score memo (disjoint from the policy's OnArrival
  /// cache; scores are deterministic per query so the split cannot change
  /// decisions).
  std::unordered_map<int64_t, double> scores;
  /// Reused per plan: the scheduler's query list and working availability.
  std::vector<SchedulerQuery> queries;
  SchedulerEnv env;
  std::vector<SimTime> avail;
  /// Per-model coalescing headroom for the batch-aware commit gate (empty
  /// when the view carries no batch composition).
  std::vector<int> batch_budget;
};

}  // namespace

SchemblePolicy::SchemblePolicy(const SyntheticTask& task,
                               const AccuracyProfile& profile,
                               const DiscrepancyPredictor* predictor,
                               const DiscrepancyScorer* scorer,
                               SchembleConfig config)
    : task_(&task),
      profile_(&profile),
      predictor_(predictor),
      scorer_(scorer),
      config_(std::move(config)) {
  if (config_.score_source == ScoreSource::kPredictor) {
    SCHEMBLE_CHECK(predictor_ != nullptr);
  }
  if (config_.score_source == ScoreSource::kOracle) {
    SCHEMBLE_CHECK(scorer_ != nullptr);
  }
}

std::unique_ptr<PolicyPlanState> SchemblePolicy::CreatePlanState() const {
  return std::make_unique<SchemblePlanState>(config_.dp);
}

double SchemblePolicy::LookupScore(
    const Query& query, std::unordered_map<int64_t, double>* cache) const {
  auto it = cache->find(query.id);
  if (it != cache->end()) return it->second;
  double score = config_.constant_score;
  switch (config_.score_source) {
    case ScoreSource::kPredictor:
      score = predictor_->Predict(query);
      break;
    case ScoreSource::kOracle:
      score = scorer_->Score(query);
      break;
    case ScoreSource::kConstant:
      break;
  }
  cache->emplace(query.id, score);
  return score;
}

double SchemblePolicy::ComputeScore(const Query& query) {
  return LookupScore(query, &score_cache_);
}

double SchemblePolicy::ScoreOf(int64_t query_id) const {
  auto it = score_cache_.find(query_id);
  return it == score_cache_.end() ? config_.constant_score : it->second;
}

SimTime SchemblePolicy::ArrivalProcessingDelay() const {
  if (config_.score_source == ScoreSource::kPredictor &&
      predictor_ != nullptr) {
    return predictor_->inference_latency_us();
  }
  return 0;
}

SubsetMask SchemblePolicy::BestImmediateSubset(double score, SimTime deadline,
                                               const ServerView& view) const {
  const std::vector<double> utilities = profile_->UtilityRow(score);
  SubsetMask best = 0;
  double best_utility = -1.0;
  int best_size = -1;
  for (SubsetMask mask = 1; mask < utilities.size(); ++mask) {
    if (view.EstimateCompletion(mask) > deadline) continue;
    // Utility first; on ties prefer the larger subset — with idle capacity
    // the extra executions are free accuracy insurance (the paper's
    // light-traffic behaviour of running all three models).
    const int size = SubsetSize(mask);
    if (utilities[mask] > best_utility ||
        (utilities[mask] == best_utility && size > best_size)) {
      best = mask;
      best_utility = utilities[mask];
      best_size = size;
    }
  }
  return best;
}

ArrivalDecision SchemblePolicy::OnArrival(const TracedQuery& query,
                                          const ServerView& view) {
  const double score = ComputeScore(query.query);
  // Fast path (§VIII implementation notes): with every model idle there is
  // nothing to schedule against; assign the best feasible subset directly.
  bool all_idle = true;
  for (int k = 0; k < view.num_models(); ++k) {
    all_idle &= view.model_available_at[k] <= view.now;
  }
  if (all_idle || !config_.use_buffer) {
    const SubsetMask best = BestImmediateSubset(score, query.deadline, view);
    if (best != 0) return ArrivalDecision::Assign(best);
    if (view.allow_rejection) return ArrivalDecision::Reject();
    if (!config_.use_buffer) {
      // No buffer to fall back to: run the fastest model regardless.
      int fastest = 0;
      for (int k = 1; k < view.num_models(); ++k) {
        if (view.model_exec_time[k] < view.model_exec_time[fastest]) {
          fastest = k;
        }
      }
      return ArrivalDecision::Assign(SubsetMask{1} << fastest);
    }
    return ArrivalDecision::Buffer();
  }
  return ArrivalDecision::Buffer();
}

PolicyOutput SchemblePolicy::OnIdle(
    const ServerView& view, const std::vector<const TracedQuery*>& buffer) {
  if (own_ws_ == nullptr) {
    own_ws_ = std::make_unique<PlanWorkspace>();
    own_ws_->state = CreatePlanState();
  }
  own_ws_->buffer.clear();
  for (const TracedQuery* tq : buffer) {
    own_ws_->buffer.push_back({tq, 0, 0});
  }
  PlanOnView(view, own_ws_.get());
  return std::move(own_ws_->output);
}

void SchemblePolicy::PlanOnView(const ServerView& view,
                                PlanWorkspace* ws) const {
  PolicyOutput& output = ws->output;
  output.assignments.clear();
  output.overhead_us = 0;
  if (ws->buffer.empty()) return;
  auto* state = static_cast<SchemblePlanState*>(ws->state.get());
  SCHEMBLE_CHECK(state != nullptr)
      << "PlanOnView needs a workspace state from CreatePlanState";

  std::vector<SchedulerQuery>& queries = state->queries;
  queries.clear();
  queries.reserve(ws->buffer.size());
  for (const SnapshotQuery& snap : ws->buffer) {
    const TracedQuery* tq = snap.traced;
    SchedulerQuery sq;
    sq.id = tq->query.id;
    sq.arrival = tq->arrival_time;
    sq.deadline = tq->deadline;
    sq.predicted_score = LookupScore(tq->query, &state->scores);
    sq.utilities = profile_->UtilityRow(sq.predicted_score);
    queries.push_back(std::move(sq));
  }

  SchedulerEnv& env = state->env;
  env.now = view.now;
  env.model_available_at = view.model_available_at;
  env.model_exec_time = view.model_exec_time;
  if (view.batching()) {
    // Batch-aware planning: charge each model the amortized per-item cost
    // of the batch a new task would join, so the DP sees coalesced service
    // time instead of the per-task sum. Empty backlog gives a batch of 1
    // and the plain per-task time — low-load plans are unchanged.
    for (int k = 0; k < view.num_models(); ++k) {
      env.model_exec_time[k] = view.PlannedExecTime(k);
    }
  }

  SchedulePlan plan;
  // relaxed-ok: monotonic scheduler telemetry counter
  scheduler_runs_.fetch_add(1, std::memory_order_relaxed);
  switch (config_.scheduler) {
    case BufferScheduler::kDp:
      plan = state->dp.Schedule(queries, env);
      output.overhead_us = static_cast<SimTime>(
          static_cast<double>(state->dp.last_ops()) /
          config_.scheduler_ops_per_us);
      break;
    case BufferScheduler::kGreedyEdf:
      plan = GreedyScheduler(GreedyScheduler::Order::kEdf)
                 .Schedule(queries, env);
      break;
    case BufferScheduler::kGreedyFifo:
      plan = GreedyScheduler(GreedyScheduler::Order::kFifo)
                 .Schedule(queries, env);
      break;
    case BufferScheduler::kGreedySjf:
      plan = GreedyScheduler(GreedyScheduler::Order::kSjf)
                 .Schedule(queries, env);
      break;
  }
  // relaxed-ok: monotonic scheduler telemetry counter
  total_overhead_us_.fetch_add(output.overhead_us, std::memory_order_relaxed);

  // Commit plan entries, in plan (EDF) order, while idle capacity remains:
  // a query is dispatched when at least one of its models can start it now.
  // Everything else stays buffered so later arrivals can reshape the plan.
  std::vector<SimTime>& avail = state->avail;
  avail = env.model_available_at;
  for (SimTime& t : avail) t = std::max(t, view.now);
  // Under batching, idle capacity is not the only dispatch opportunity:
  // each executor can absorb up to one full batch of backlog that its
  // worker drains as a single coalesced execution. Budget the commit loop
  // with that headroom (sum over executors of max_batch - queued, per
  // model) so the planner fills coalescing windows under load. At low load
  // the backlog is zero, at most one batch window is open per replica, and
  // the extra commits just land on idle executors — p50 is unchanged.
  std::vector<int>& budget = state->batch_budget;
  budget.clear();
  if (view.batching()) {
    budget.assign(static_cast<size_t>(view.num_models()), 0);
    for (const ExecutorView& ex : view.executors) {
      const size_t k = static_cast<size_t>(ex.model_index);
      budget[k] +=
          std::max(0, view.model_batch[k].max_batch - ex.queue_length);
    }
  }
  bool any_idle = false;
  for (int k = 0; k < view.num_models(); ++k) {
    any_idle |= avail[k] <= view.now;
    any_idle |= !budget.empty() && budget[static_cast<size_t>(k)] > 0;
  }
  // Force-processing mode: a query the plan leaves unscheduled (deadline
  // infeasible) still has to run; fall back to the fastest single model.
  SubsetMask fallback = 0;
  if (!view.allow_rejection) {
    int fastest = 0;
    for (int k = 1; k < view.num_models(); ++k) {
      if (view.model_exec_time[k] < view.model_exec_time[fastest]) {
        fastest = k;
      }
    }
    fallback = SubsetMask{1} << fastest;
  }
  for (ScheduleDecision decision : plan.decisions) {
    if (!any_idle) break;
    if (decision.subset == 0) {
      if (fallback == 0) continue;
      decision.subset = fallback;
    }
    bool starts_now = false;
    for (int k = 0; k < view.num_models(); ++k) {
      if ((decision.subset & (SubsetMask{1} << k)) == 0) continue;
      if (avail[k] <= view.now ||
          (!budget.empty() && budget[static_cast<size_t>(k)] > 0)) {
        starts_now = true;
        break;
      }
    }
    if (!starts_now) continue;
    if (!budget.empty()) {
      for (int k = 0; k < view.num_models(); ++k) {
        if (decision.subset & (SubsetMask{1} << k)) {
          --budget[static_cast<size_t>(k)];
        }
      }
    }
    ApplySubset(decision.subset, env.model_exec_time, avail);
    output.assignments.push_back({decision.query_id, decision.subset});
    any_idle = false;
    for (int k = 0; k < view.num_models(); ++k) {
      any_idle |= avail[k] <= view.now;
      any_idle |= !budget.empty() && budget[static_cast<size_t>(k)] > 0;
    }
  }
}

}  // namespace schemble
