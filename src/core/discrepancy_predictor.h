#ifndef SCHEMBLE_CORE_DISCREPANCY_PREDICTOR_H_
#define SCHEMBLE_CORE_DISCREPANCY_PREDICTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/discrepancy.h"
#include "models/synthetic_task.h"
#include "nn/mlp.h"
#include "simcore/simulation.h"

namespace schemble {

/// Configuration of the lightweight difficulty-prediction network (§V-C).
struct PredictorConfig {
  /// Hidden widths of the shared trunk (the stand-in for MV-LSTM /
  /// MobileNet feature extractors).
  std::vector<int> hidden = {32, 16};
  /// Weight of the discrepancy head in the loss (Eq. 2's lambda).
  double lambda = 0.2;
  TrainerOptions trainer;
  /// Simulated inference latency charged when the predictor runs in the
  /// serving pipeline; the paper measures ~6.5% of ensemble runtime.
  SimTime inference_latency_us = 2 * kMillisecond;
  uint64_t seed = 17;
};

/// Two-headed network predicting a newly arrived query's discrepancy score
/// from its features (Eq. 2): the first head reproduces the original task's
/// output (trained against the *ensemble's* output, which serves as the
/// label) and the second regresses the discrepancy score. Only the second
/// head is used at serving time; the paper found the auxiliary task head
/// improves score prediction.
class DiscrepancyPredictor {
 public:
  /// Trains on historical queries and their ground-truth scores (from a
  /// DiscrepancyScorer). `task` must outlive the predictor.
  static Result<DiscrepancyPredictor> Train(const SyntheticTask& task,
                                            const std::vector<Query>& history,
                                            const std::vector<double>& scores,
                                            const PredictorConfig& config = {});

  /// Predicted difficulty in [0, 1] from query features only.
  double Predict(const Query& query) const;

  /// The auxiliary task-head output (exposed for tests; unused at serving
  /// time).
  std::vector<double> TaskHead(const Query& query) const;

  /// Mean squared error of predictions against `scores`.
  double EvaluateMse(const std::vector<Query>& queries,
                     const std::vector<double>& scores) const;

  size_t ParameterCount() const { return mlp_->ParameterCount(); }
  /// Memory footprint estimate (parameters as fp32, Fig. 13's comparison).
  double MemoryMb() const;
  SimTime inference_latency_us() const {
    return config_.inference_latency_us;
  }

 private:
  DiscrepancyPredictor(const SyntheticTask* task, PredictorConfig config,
                       std::unique_ptr<Mlp> mlp)
      : task_(task), config_(std::move(config)), mlp_(std::move(mlp)) {}

  int task_head_dim() const;

  const SyntheticTask* task_;
  PredictorConfig config_;
  std::unique_ptr<Mlp> mlp_;
};

}  // namespace schemble

#endif  // SCHEMBLE_CORE_DISCREPANCY_PREDICTOR_H_
