#ifndef SCHEMBLE_CORE_PROFILING_H_
#define SCHEMBLE_CORE_PROFILING_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "models/synthetic_task.h"

namespace schemble {

/// Model subsets are bitmasks over base-model indices (bit k = model k).
using SubsetMask = uint32_t;

int SubsetSize(SubsetMask mask);
std::vector<int> SubsetModels(SubsetMask mask);
/// Allocation-free SubsetModels into a caller-reused buffer (ascending
/// model indices, like the allocating overload).
void SubsetModelsInto(SubsetMask mask, std::vector<int>* models);
SubsetMask FullMask(int num_models);

/// Offline accuracy profile (§V-D): historical queries are bucketed by
/// discrepancy score and, per bucket, the agreement of every base-model
/// combination with the full ensemble is measured. The scheduler reads this
/// table as its reward function U(score, subset).
///
/// Immutable after Build; all const accessors are state-free and safe to
/// call concurrently (the concurrent runtime shares one profile across
/// its admission and worker threads).
class AccuracyProfile {
 public:
  struct Options {
    int bins = 10;
    /// Clamp the empirical table so that utility never decreases when a
    /// model is added (assumption 1's monotone part); empirical noise can
    /// otherwise produce tiny violations.
    bool enforce_monotone = true;
    /// Only profile subsets with at most this many models; larger subsets
    /// get utility from the Eq. 3 marginal estimator (the paper's recipe
    /// when the ensemble grows). 0 = profile everything.
    int max_profiled_subset = 0;
  };

  /// `scores[i]` is the (ground-truth) discrepancy score of `history[i]`.
  static Result<AccuracyProfile> Build(const SyntheticTask& task,
                                       const std::vector<Query>& history,
                                       const std::vector<double>& scores,
                                       const Options& options);
  static Result<AccuracyProfile> Build(const SyntheticTask& task,
                                       const std::vector<Query>& history,
                                       const std::vector<double>& scores) {
    return Build(task, history, scores, Options{});
  }

  /// Mean agreement-with-ensemble of `subset` in the score's bucket;
  /// Utility(_, 0) is 0.
  double Utility(double score, SubsetMask subset) const;

  /// All subset utilities for one score, indexed by mask (size 2^m).
  std::vector<double> UtilityRow(double score) const;

  /// Returns a copy of this profile whose large-subset cells (size > 2)
  /// are replaced by Eq. 3 estimates from the small-subset cells — the
  /// paper's recipe for ensembles too large to profile exhaustively.
  AccuracyProfile CompletedWith(const class MarginalUtilityEstimator&
                                    estimator) const;

  int bins() const { return static_cast<int>(table_.size()); }
  int num_models() const { return num_models_; }
  int BinOf(double score) const;
  /// Raw cell value (tests/benches).
  double CellUtility(int bin, SubsetMask subset) const {
    return table_[bin][subset];
  }
  int64_t BinCount(int bin) const { return bin_counts_[bin]; }

 private:
  AccuracyProfile() = default;

  int num_models_ = 0;
  /// table_[bin][mask] = mean agreement with the ensemble.
  std::vector<std::vector<double>> table_;
  std::vector<int64_t> bin_counts_;
};

/// Eq. 3: estimates utilities of large subsets from singleton and pairwise
/// profiles with diminishing marginal-reward factors gamma_k.
class MarginalUtilityEstimator {
 public:
  /// `model_accuracy[k]` orders models (higher = stronger); the recursion
  /// peels the weakest member of a subset as the paper's m_{k+1}.
  MarginalUtilityEstimator(int num_models, std::vector<double> model_accuracy,
                           std::vector<double> gammas);

  /// Completes a utility row: entries for subsets of size <= 2 are taken
  /// from `row`; larger subsets are estimated recursively. `row` is indexed
  /// by mask and must have size 2^m.
  std::vector<double> CompleteRow(const std::vector<double>& row) const;

  /// Least-squares fit of gamma_k (k = 2..m-1) from a fully profiled table:
  /// for each subset of size k+1 the realized marginal increment is
  /// regressed on the Eq. 3 predictor.
  static std::vector<double> FitGammas(const AccuracyProfile& profile);

  const std::vector<double>& gammas() const { return gammas_; }

 private:
  double Estimate(SubsetMask mask, std::vector<double>& memo,
                  const std::vector<double>& row) const;
  /// Index of the weakest model in `mask`.
  int WeakestIn(SubsetMask mask) const;

  int num_models_;
  std::vector<double> model_accuracy_;
  /// gammas_[k] applies when extending a size-k subset (k >= 2).
  std::vector<double> gammas_;
};

}  // namespace schemble

#endif  // SCHEMBLE_CORE_PROFILING_H_
