#include "core/policy.h"

#include <algorithm>

#include "common/logging.h"

namespace schemble {

SimTime ServerView::EstimateCompletion(SubsetMask subset) const {
  SCHEMBLE_CHECK_NE(subset, 0u);
  SimTime completion = 0;
  for (int k = 0; k < num_models(); ++k) {
    if (!(subset & (SubsetMask{1} << k))) continue;
    const SimTime start = std::max(model_available_at[k], now);
    completion = std::max(completion, start + model_exec_time[k]);
  }
  return completion;
}

PolicyOutput ServingPolicy::OnIdle(
    const ServerView& /*view*/,
    const std::vector<const TracedQuery*>& /*buffer*/) {
  return {};
}

void ServingPolicy::PlanOnView(const ServerView& /*view*/,
                               PlanWorkspace* ws) const {
  ws->output.assignments.clear();
  ws->output.overhead_us = 0;
}

}  // namespace schemble
