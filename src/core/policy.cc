#include "core/policy.h"

#include <algorithm>

#include "common/logging.h"

namespace schemble {

SimTime ServerView::PlannedExecTime(int k) const {
  if (model_batch.empty()) return model_exec_time[k];
  const BatchLatencyModel& bm = model_batch[k];
  const int queued = model_queued.empty() ? 0 : model_queued[k];
  const int b = std::clamp(queued + 1, 1, bm.max_batch);
  return bm.ServiceUs(b) / b;
}

SimTime ServerView::EstimateCompletion(SubsetMask subset) const {
  SCHEMBLE_CHECK_NE(subset, 0u);
  SimTime completion = 0;
  for (int k = 0; k < num_models(); ++k) {
    if (!(subset & (SubsetMask{1} << k))) continue;
    const SimTime start = std::max(model_available_at[k], now);
    completion = std::max(completion, start + PlannedExecTime(k));
  }
  return completion;
}

PolicyOutput ServingPolicy::OnIdle(
    const ServerView& /*view*/,
    const std::vector<const TracedQuery*>& /*buffer*/) {
  return {};
}

void ServingPolicy::PlanOnView(const ServerView& /*view*/,
                               PlanWorkspace* ws) const {
  ws->output.assignments.clear();
  ws->output.overhead_us = 0;
}

}  // namespace schemble
