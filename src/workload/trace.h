#ifndef SCHEMBLE_WORKLOAD_TRACE_H_
#define SCHEMBLE_WORKLOAD_TRACE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "models/synthetic_task.h"
#include "simcore/simulation.h"
#include "workload/traffic.h"

namespace schemble {

/// One query as it appears on the wire: payload plus arrival time and the
/// absolute deadline assigned at arrival.
struct TracedQuery {
  Query query;
  SimTime arrival_time = 0;
  SimTime deadline = 0;  // absolute time by which the result is due
  /// Originating source (e.g. camera id in the vehicle-counting task);
  /// deadline policies may be per-source.
  int source = 0;

  SimTime relative_deadline() const { return deadline - arrival_time; }
};

/// Assigns relative deadlines to arrivals.
class DeadlineGenerator {
 public:
  virtual ~DeadlineGenerator() = default;
  /// Relative deadline for a query from `source`.
  virtual SimTime RelativeDeadline(int source, Rng& rng) const = 0;
};

/// Every query gets the same relative deadline (text matching / image
/// retrieval experiments: "we treat all customers the same").
class ConstantDeadline : public DeadlineGenerator {
 public:
  explicit ConstantDeadline(SimTime deadline);
  SimTime RelativeDeadline(int source, Rng& rng) const override;

 private:
  SimTime deadline_;
};

/// Each source (camera) draws one deadline from Uniform[lo, hi] up front;
/// all of its queries reuse it ("deadlines for each camera are sampled
/// randomly from the uniform distribution").
class PerSourceUniformDeadline : public DeadlineGenerator {
 public:
  PerSourceUniformDeadline(int num_sources, SimTime lo, SimTime hi,
                           uint64_t seed);
  SimTime RelativeDeadline(int source, Rng& rng) const override;

  int num_sources() const { return static_cast<int>(deadlines_.size()); }
  SimTime deadline_of(int source) const { return deadlines_[source]; }

 private:
  std::vector<SimTime> deadlines_;
};

/// A fully materialized workload: queries with arrival times and deadlines,
/// sorted by arrival time.
struct QueryTrace {
  std::vector<TracedQuery> items;

  int64_t size() const { return static_cast<int64_t>(items.size()); }
  bool empty() const { return items.empty(); }
  SimTime duration() const {
    return items.empty() ? 0 : items.back().arrival_time;
  }

  /// Number of arrivals in each window of `segment` duration (Fig. 1a's
  /// traffic curve).
  std::vector<int64_t> SegmentCounts(SimTime segment) const;
};

struct TraceOptions {
  DifficultyDistribution difficulty = DifficultyDistribution::Realistic();
  int num_sources = 1;
  uint64_t seed = 42;
  /// Ids of generated queries start here (lets callers keep trace ids
  /// disjoint from profiling/training datasets).
  int64_t first_query_id = 1000000;
};

/// Samples arrivals from `traffic`, generates a query per arrival from
/// `task`, and stamps deadlines from `deadlines`.
QueryTrace BuildTrace(const SyntheticTask& task,
                      const TrafficGenerator& traffic,
                      const DeadlineGenerator& deadlines, SimTime duration,
                      const TraceOptions& options);

}  // namespace schemble

#endif  // SCHEMBLE_WORKLOAD_TRACE_H_
