#include "workload/trace_io.h"

#include <cinttypes>
#include <cstdio>
#include <string>

namespace schemble {

Status SaveTraceCsv(const QueryTrace& trace, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open trace file for writing: " +
                                   path);
  }
  std::fprintf(file, "id,difficulty,arrival_us,deadline_us,source\n");
  for (const TracedQuery& tq : trace.items) {
    std::fprintf(file, "%" PRId64 ",%.17g,%" PRId64 ",%" PRId64 ",%d\n",
                 tq.query.id, tq.query.difficulty, tq.arrival_time,
                 tq.deadline, tq.source);
  }
  if (std::fclose(file) != 0) {
    return Status::Internal("failed to close trace file: " + path);
  }
  return Status::Ok();
}

Result<QueryTrace> LoadTraceCsv(const SyntheticTask& task,
                                const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status::NotFound("cannot open trace file: " + path);
  }
  QueryTrace trace;
  char line[256];
  bool first = true;
  int line_number = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    ++line_number;
    if (first) {
      first = false;  // header
      continue;
    }
    int64_t id = 0;
    double difficulty = 0.0;
    int64_t arrival = 0;
    int64_t deadline = 0;
    int source = 0;
    const int parsed =
        std::sscanf(line, "%" SCNd64 ",%lg,%" SCNd64 ",%" SCNd64 ",%d", &id,
                    &difficulty, &arrival, &deadline, &source);
    if (parsed != 5) {
      std::fclose(file);
      return Status::InvalidArgument("malformed trace row at line " +
                                     std::to_string(line_number));
    }
    TracedQuery tq;
    tq.query = task.GenerateQuery(id, difficulty);
    tq.arrival_time = arrival;
    tq.deadline = deadline;
    tq.source = source;
    trace.items.push_back(std::move(tq));
  }
  std::fclose(file);
  return trace;
}

}  // namespace schemble
