#include "workload/trace.h"

#include "common/logging.h"

namespace schemble {

ConstantDeadline::ConstantDeadline(SimTime deadline) : deadline_(deadline) {
  SCHEMBLE_CHECK_GT(deadline, 0);
}

SimTime ConstantDeadline::RelativeDeadline(int /*source*/, Rng& /*rng*/) const {
  return deadline_;
}

PerSourceUniformDeadline::PerSourceUniformDeadline(int num_sources, SimTime lo,
                                                   SimTime hi, uint64_t seed) {
  SCHEMBLE_CHECK_GT(num_sources, 0);
  SCHEMBLE_CHECK_GT(lo, 0);
  SCHEMBLE_CHECK_GE(hi, lo);
  Rng rng(HashSeed("per-source-deadline", seed));
  deadlines_.reserve(num_sources);
  for (int i = 0; i < num_sources; ++i) {
    deadlines_.push_back(rng.UniformInt(lo, hi));
  }
}

SimTime PerSourceUniformDeadline::RelativeDeadline(int source,
                                                   Rng& /*rng*/) const {
  SCHEMBLE_CHECK_GE(source, 0);
  SCHEMBLE_CHECK_LT(source, num_sources());
  return deadlines_[source];
}

std::vector<int64_t> QueryTrace::SegmentCounts(SimTime segment) const {
  SCHEMBLE_CHECK_GT(segment, 0);
  std::vector<int64_t> counts;
  for (const TracedQuery& tq : items) {
    const size_t bucket = static_cast<size_t>(tq.arrival_time / segment);
    if (bucket >= counts.size()) counts.resize(bucket + 1, 0);
    ++counts[bucket];
  }
  return counts;
}

QueryTrace BuildTrace(const SyntheticTask& task,
                      const TrafficGenerator& traffic,
                      const DeadlineGenerator& deadlines, SimTime duration,
                      const TraceOptions& options) {
  Rng rng(HashSeed("trace", options.seed));
  Rng difficulty_rng = rng.Fork(1);
  Rng source_rng = rng.Fork(2);
  Rng deadline_rng = rng.Fork(3);
  Rng arrival_rng = rng.Fork(4);

  QueryTrace trace;
  const std::vector<SimTime> arrivals =
      traffic.GenerateArrivals(duration, arrival_rng);
  trace.items.reserve(arrivals.size());
  int64_t id = options.first_query_id;
  for (SimTime when : arrivals) {
    TracedQuery tq;
    tq.arrival_time = when;
    tq.source = options.num_sources <= 1
                    ? 0
                    : static_cast<int>(
                          source_rng.UniformInt(0, options.num_sources - 1));
    tq.deadline = when + deadlines.RelativeDeadline(tq.source, deadline_rng);
    tq.query =
        task.GenerateQuery(id++, options.difficulty.Sample(difficulty_rng));
    trace.items.push_back(std::move(tq));
  }
  return trace;
}

}  // namespace schemble
