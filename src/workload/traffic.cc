#include "workload/traffic.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace schemble {

PoissonTraffic::PoissonTraffic(double rate_per_second)
    : rate_per_second_(rate_per_second) {
  SCHEMBLE_CHECK_GT(rate_per_second, 0.0);
}

std::vector<SimTime> PoissonTraffic::GenerateArrivals(SimTime duration,
                                                      Rng& rng) const {
  std::vector<SimTime> arrivals;
  const double rate_per_us = rate_per_second_ / static_cast<double>(kSecond);
  double t = 0.0;
  while (true) {
    t += rng.Exponential(rate_per_us);
    const SimTime when = static_cast<SimTime>(t);
    if (when >= duration) break;
    arrivals.push_back(when);
  }
  return arrivals;
}

DiurnalTraffic::DiurnalTraffic(double peak_rate_per_second,
                               SimTime segment_duration,
                               std::vector<double> relative_rates)
    : peak_rate_per_second_(peak_rate_per_second),
      segment_duration_(segment_duration),
      relative_rates_(std::move(relative_rates)) {
  SCHEMBLE_CHECK_GT(peak_rate_per_second, 0.0);
  SCHEMBLE_CHECK_GT(segment_duration, 0);
  SCHEMBLE_CHECK(!relative_rates_.empty());
  for (double r : relative_rates_) SCHEMBLE_CHECK_GE(r, 0.0);
}

DiurnalTraffic DiurnalTraffic::QaDayShape(double peak_rate_per_second,
                                          SimTime segment_duration) {
  // 24 "hours" shaped after Fig. 1a: near-flat overnight (~1/30 of peak),
  // morning ramp, a double peak across 10-18h, evening decline.
  const std::vector<double> shape = {
      0.035, 0.033, 0.033, 0.033, 0.035, 0.04, 0.05, 0.08,   // 0-7h
      0.20,  0.45,  0.75,  1.00,  0.85,  0.80, 0.92, 1.00,   // 8-15h
      0.80,  0.60,  0.40,  0.27,  0.17,  0.10, 0.06, 0.045,  // 16-23h
  };
  return DiurnalTraffic(peak_rate_per_second, segment_duration, shape);
}

double DiurnalTraffic::RateAt(SimTime t) const {
  if (t < 0) return 0.0;
  const int64_t segment = t / segment_duration_;
  if (segment >= num_segments()) return 0.0;
  return peak_rate_per_second_ * relative_rates_[segment];
}

std::vector<SimTime> DiurnalTraffic::GenerateArrivals(SimTime duration,
                                                      Rng& rng) const {
  // Piecewise-constant thinning: exact sampling per segment.
  std::vector<SimTime> arrivals;
  const SimTime horizon = std::min(duration, total_duration());
  for (int seg = 0; seg < num_segments(); ++seg) {
    const SimTime seg_start = segment_duration_ * seg;
    if (seg_start >= horizon) break;
    const SimTime seg_end = std::min(horizon, seg_start + segment_duration_);
    const double rate = peak_rate_per_second_ * relative_rates_[seg];
    if (rate <= 0.0) continue;
    const double rate_per_us = rate / static_cast<double>(kSecond);
    double t = static_cast<double>(seg_start);
    while (true) {
      t += rng.Exponential(rate_per_us);
      const SimTime when = static_cast<SimTime>(t);
      if (when >= seg_end) break;
      arrivals.push_back(when);
    }
  }
  return arrivals;
}

}  // namespace schemble
