#ifndef SCHEMBLE_WORKLOAD_TRAFFIC_H_
#define SCHEMBLE_WORKLOAD_TRAFFIC_H_

#include <vector>

#include "common/rng.h"
#include "simcore/simulation.h"

namespace schemble {

/// Produces query arrival times over a time horizon.
class TrafficGenerator {
 public:
  virtual ~TrafficGenerator() = default;

  /// Arrival timestamps in [0, duration), sorted ascending.
  virtual std::vector<SimTime> GenerateArrivals(SimTime duration,
                                                Rng& rng) const = 0;
};

/// Homogeneous Poisson arrivals with a constant rate; the traffic model the
/// paper uses for the vehicle-counting and image-retrieval experiments.
class PoissonTraffic : public TrafficGenerator {
 public:
  explicit PoissonTraffic(double rate_per_second);

  std::vector<SimTime> GenerateArrivals(SimTime duration,
                                        Rng& rng) const override;

  double rate_per_second() const { return rate_per_second_; }

 private:
  double rate_per_second_;
};

/// Non-homogeneous Poisson arrivals with a piecewise-constant rate, used to
/// replay the *shape* of the paper's one-day intelligent-Q&A trace
/// (Fig. 1a): quiet overnight, a ~30x burst through business hours with a
/// double peak, then a decline.
class DiurnalTraffic : public TrafficGenerator {
 public:
  /// `relative_rates[i]` scales `peak_rate` during segment i; each segment
  /// lasts `segment_duration`. The largest relative rate should be 1.0.
  DiurnalTraffic(double peak_rate_per_second, SimTime segment_duration,
                 std::vector<double> relative_rates);

  /// The 24-segment day shaped after Fig. 1a. With the default segment
  /// duration of one minute the "day" is compressed 60x so that a full
  /// trace stays cheap to simulate while preserving burstiness (documented
  /// in DESIGN.md).
  static DiurnalTraffic QaDayShape(double peak_rate_per_second,
                                   SimTime segment_duration = 60 * kSecond);

  std::vector<SimTime> GenerateArrivals(SimTime duration,
                                        Rng& rng) const override;

  int num_segments() const { return static_cast<int>(relative_rates_.size()); }
  SimTime segment_duration() const { return segment_duration_; }
  double RateAt(SimTime t) const;
  SimTime total_duration() const {
    return segment_duration_ * num_segments();
  }

 private:
  double peak_rate_per_second_;
  SimTime segment_duration_;
  std::vector<double> relative_rates_;
};

}  // namespace schemble

#endif  // SCHEMBLE_WORKLOAD_TRAFFIC_H_
