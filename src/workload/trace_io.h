#ifndef SCHEMBLE_WORKLOAD_TRACE_IO_H_
#define SCHEMBLE_WORKLOAD_TRACE_IO_H_

#include <string>

#include "common/status.h"
#include "models/synthetic_task.h"
#include "workload/trace.h"

namespace schemble {

/// Trace persistence. The paper records a production one-day query trace
/// and replays it across experiments; these helpers do the same for
/// synthetic traces so that a trace generated once can be replayed across
/// processes and policy runs bit-for-bit.
///
/// Only the replay-relevant fields are stored (query id, latent difficulty,
/// arrival time, deadline, source); the query payload — features and model
/// outputs — is regenerated deterministically by the task from
/// (id, difficulty), so loading requires the *same* SyntheticTask
/// configuration the trace was built with.

/// Writes the trace as CSV: header line, then one row per query
/// `id,difficulty,arrival_us,deadline_us,source`.
Status SaveTraceCsv(const QueryTrace& trace, const std::string& path);

/// Reads a CSV written by SaveTraceCsv and regenerates the queries with
/// `task`. Fails on malformed rows or unreadable files.
Result<QueryTrace> LoadTraceCsv(const SyntheticTask& task,
                                const std::string& path);

}  // namespace schemble

#endif  // SCHEMBLE_WORKLOAD_TRACE_IO_H_
