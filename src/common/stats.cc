#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace schemble {

void RunningStat::Add(double x) {
  ++count_;
  if (count_ == 1) {
    mean_ = x;
    min_ = x;
    max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void SampleSet::Add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

void SampleSet::EnsureSorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double SampleSet::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  SCHEMBLE_CHECK_GE(q, 0.0);
  SCHEMBLE_CHECK_LE(q, 1.0);
  EnsureSorted();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const size_t idx = static_cast<size_t>(pos);
  if (idx + 1 >= sorted_.size()) return sorted_.back();
  const double frac = pos - static_cast<double>(idx);
  return sorted_[idx] * (1.0 - frac) + sorted_[idx + 1] * frac;
}

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / bins), counts_(bins, 0) {
  SCHEMBLE_CHECK_GT(bins, 0);
  SCHEMBLE_CHECK_GT(hi, lo);
}

int Histogram::BucketOf(double x) const {
  if (x < lo_) return 0;
  const int bucket = static_cast<int>((x - lo_) / width_);
  return std::min(bucket, bins() - 1);
}

void Histogram::Add(double x) {
  ++counts_[BucketOf(x)];
  ++total_;
}

double Histogram::BucketLow(int bucket) const { return lo_ + width_ * bucket; }
double Histogram::BucketHigh(int bucket) const {
  return lo_ + width_ * (bucket + 1);
}
double Histogram::BucketCenter(int bucket) const {
  return lo_ + width_ * (bucket + 0.5);
}

double Histogram::Fraction(int bucket) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bucket]) / static_cast<double>(total_);
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  SCHEMBLE_CHECK_EQ(a.size(), b.size());
  const size_t n = a.size();
  if (n < 2) return 0.0;
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

namespace {

std::vector<double> Ranks(const std::vector<double>& v) {
  const size_t n = v.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return v[x] < v[y]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  SCHEMBLE_CHECK_EQ(a.size(), b.size());
  if (a.size() < 2) return 0.0;
  return PearsonCorrelation(Ranks(a), Ranks(b));
}

}  // namespace schemble
