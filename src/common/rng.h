#ifndef SCHEMBLE_COMMON_RNG_H_
#define SCHEMBLE_COMMON_RNG_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace schemble {

/// Deterministic, fast random number generator (xoshiro256++ seeded with
/// splitmix64). Every stochastic component in the library takes an Rng (or a
/// seed) explicitly so that simulations and tests are reproducible.
class Rng {
 public:
  /// Seeds the four xoshiro lanes from `seed` through splitmix64.
  explicit Rng(uint64_t seed = 0x5eedcafe);

  /// Derives an independent child stream, e.g. one per model or per query
  /// source, so that adding draws to one stream does not perturb another.
  /// `stream_tag` distinguishes children created from the same parent state.
  Rng Fork(uint64_t stream_tag);

  /// Uniform random 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double Exponential(double rate);

  /// Gamma(shape, scale) via Marsaglia-Tsang; supports shape < 1.
  double Gamma(double shape, double scale);

  /// Poisson-distributed count with the given mean (inversion for small
  /// means, normal approximation clipped at 0 for large means).
  int Poisson(double mean);

  /// Bernoulli draw with probability `p` of true.
  bool Bernoulli(double p);

  /// Samples an index according to (unnormalized, non-negative) `weights`.
  /// Returns weights.size()-1 on accumulated rounding shortfall.
  int Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of `items` indices [0, n).
  std::vector<int> Permutation(int n);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Stable 64-bit hash of a string, for deriving named seed streams.
uint64_t HashSeed(std::string_view name, uint64_t seed);

}  // namespace schemble

#endif  // SCHEMBLE_COMMON_RNG_H_
