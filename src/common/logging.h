#ifndef SCHEMBLE_COMMON_LOGGING_H_
#define SCHEMBLE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace schemble {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError, kFatal };

namespace internal_logging {

/// Accumulates a log message with streaming syntax and emits it (to stderr)
/// on destruction. A kFatal message aborts the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Minimum level that is actually emitted; defaults to kInfo.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

}  // namespace schemble

#define SCHEMBLE_LOG(level)                                              \
  ::schemble::internal_logging::LogMessage(::schemble::LogLevel::level, \
                                           __FILE__, __LINE__)

/// CHECK aborts with a message when `cond` is false. It is always on; use it
/// for invariants whose violation means a programming error.
#define SCHEMBLE_CHECK(cond)                                       \
  if (!(cond))                                                     \
  SCHEMBLE_LOG(kFatal) << "Check failed: " #cond " "

#define SCHEMBLE_CHECK_EQ(a, b) SCHEMBLE_CHECK((a) == (b))
#define SCHEMBLE_CHECK_NE(a, b) SCHEMBLE_CHECK((a) != (b))
#define SCHEMBLE_CHECK_LT(a, b) SCHEMBLE_CHECK((a) < (b))
#define SCHEMBLE_CHECK_LE(a, b) SCHEMBLE_CHECK((a) <= (b))
#define SCHEMBLE_CHECK_GT(a, b) SCHEMBLE_CHECK((a) > (b))
#define SCHEMBLE_CHECK_GE(a, b) SCHEMBLE_CHECK((a) >= (b))

#ifdef NDEBUG
#define SCHEMBLE_DCHECK(cond) \
  if (false) SCHEMBLE_LOG(kFatal)
#else
#define SCHEMBLE_DCHECK(cond) SCHEMBLE_CHECK(cond)
#endif

#endif  // SCHEMBLE_COMMON_LOGGING_H_
