#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace schemble {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& lane : state_) lane = SplitMix64(s);
}

Rng Rng::Fork(uint64_t stream_tag) {
  // Mix the child tag with fresh draws from this stream.
  uint64_t mix = NextU64() ^ (stream_tag * 0x9e3779b97f4a7c15ull);
  return Rng(mix);
}

uint64_t Rng::NextU64() {
  uint64_t* s = state_;
  const uint64_t result = Rotl(s[0] + s[3], 23) + s[0];
  const uint64_t t = s[1] << 17;
  s[2] ^= s[0];
  s[3] ^= s[1];
  s[1] ^= s[2];
  s[0] ^= s[3];
  s[2] ^= t;
  s[3] = Rotl(s[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SCHEMBLE_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full range
  return lo + static_cast<int64_t>(NextU64() % span);
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::Exponential(double rate) {
  SCHEMBLE_CHECK_GT(rate, 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

double Rng::Gamma(double shape, double scale) {
  SCHEMBLE_CHECK_GT(shape, 0.0);
  SCHEMBLE_CHECK_GT(scale, 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and apply the standard power correction.
    const double u = NextDouble();
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 1e-300 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

int Rng::Poisson(double mean) {
  SCHEMBLE_CHECK_GE(mean, 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    double product = NextDouble();
    int count = 0;
    while (product > limit) {
      ++count;
      product *= NextDouble();
    }
    return count;
  }
  const double draw = Normal(mean, std::sqrt(mean));
  return draw < 0.0 ? 0 : static_cast<int>(draw + 0.5);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

int Rng::Categorical(const std::vector<double>& weights) {
  SCHEMBLE_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    SCHEMBLE_DCHECK(w >= 0.0);
    total += w;
  }
  SCHEMBLE_CHECK_GT(total, 0.0);
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  for (int i = n - 1; i > 0; --i) {
    const int j = static_cast<int>(UniformInt(0, i));
    std::swap(perm[i], perm[j]);
  }
  return perm;
}

uint64_t HashSeed(std::string_view name, uint64_t seed) {
  // FNV-1a over the name, then mixed with the seed through splitmix64.
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  uint64_t x = h ^ seed;
  return SplitMix64(x);
}

}  // namespace schemble
