#include "common/table.h"

#include <cstdio>

#include "common/logging.h"

namespace schemble {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  SCHEMBLE_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += (c == 0) ? "| " : " ";
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');
      out += " |";
    }
    out += "\n";
  };
  emit_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += (c == 0) ? "|" : "";
    out.append(widths[c] + 2, '-');
    out += "|";
  }
  out += "\n";
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace schemble
