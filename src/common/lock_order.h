#ifndef SCHEMBLE_COMMON_LOCK_ORDER_H_
#define SCHEMBLE_COMMON_LOCK_ORDER_H_

#include <cstdint>
#include <mutex>
#include <source_location>
#include <sstream>
#include <string>

#include "common/logging.h"

/// Deadlock-freedom layer: the global lock-rank table plus the runtime
/// lock-order validator behind it (DESIGN.md "Static analysis & lock
/// discipline").
///
/// Every annotated Mutex (common/thread_annotations.h) is constructed with
/// one of the ranks below. The rule is a strict total order: a thread may
/// only BLOCK on a mutex whose rank is strictly greater than every rank it
/// already holds. Mutex::TryLock is exempt from the ordering — a
/// try-acquire can never deadlock, which is exactly why the work-stealing
/// path (MpmcQueue::StealN) is allowed to probe a peer queue out of order —
/// but a lock obtained via TryLock still joins the held set, so blocking
/// acquisitions made UNDER it are validated like any other.
///
/// In checked builds (see SCHEMBLE_LOCK_ORDER_CHECKS) every blocking
/// acquisition validates against a thread-local held-lock stack and records
/// a rank-level edge in a global lock-order graph; the first edge that
/// closes a cycle — or nests two distinct same-rank locks — CHECK-fails
/// with both acquisition sites, so every test, stress scenario and TSan
/// lane doubles as a deadlock detector. Release builds compile the hooks
/// away entirely.
///
/// This header deliberately knows nothing about Mutex (it operates on
/// opaque pointers) so thread_annotations.h can include it without a
/// cycle. The raw std::mutex guarding the graph below is the one permitted
/// exception to the naked-mutex lint rule outside thread_annotations.h:
/// the validator cannot be built on the primitive it validates.

/// The validator is active whenever assertions are (Debug), under any
/// sanitizer (the ASan/UBSan/TSan CI lanes run the full suite), or when
/// forced via -DSCHEMBLE_LOCK_ORDER=ON at configure time.
#if defined(SCHEMBLE_FORCE_LOCK_ORDER)
#define SCHEMBLE_LOCK_ORDER_CHECKS 1
#elif !defined(NDEBUG)
#define SCHEMBLE_LOCK_ORDER_CHECKS 1
#elif defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define SCHEMBLE_LOCK_ORDER_CHECKS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define SCHEMBLE_LOCK_ORDER_CHECKS 1
#else
#define SCHEMBLE_LOCK_ORDER_CHECKS 0
#endif
#else
#define SCHEMBLE_LOCK_ORDER_CHECKS 0
#endif

namespace schemble {

/// The global rank table. Acquisition order is strictly increasing: a
/// thread holding a lock of rank R may only block on ranks > R. Keep this
/// enum, the anchor chain in thread_annotations.h, and the DESIGN.md rank
/// table in sync — tools/lint.py (`lock-rank` rule) cross-checks all
/// three.
enum class LockRank : int {
  /// Reserved head of the order for a future server-global control-plane
  /// lock (admission reconfiguration, domain membership). Nothing holds it
  /// today; it exists so the table never needs renumbering when one lands.
  kServer = 0,
  /// SchedulerDomain::mu_ — the per-domain policy/buffer mutex.
  kDomain = 1,
  /// A scheduler domain's admission inbox (MpmcQueue<int> routing slots).
  kInbox = 2,
  /// A per-executor task queue (MpmcQueue<Task>), including peer queues
  /// probed by the work-stealing path (via TryLock, which is order-exempt).
  kExecutorQueue = 3,
  /// ManualClock::mu_ — Now() is called under a domain mutex in simulated
  /// time, so the clock must rank after every scheduler lock.
  kClock = 4,
  /// ConcurrentServer::done_mu_ — the completion latch; always the last
  /// lock on a finalization path, never held across anything.
  kDone = 5,
  /// Standalone utility and test locks with no ordering relationship to
  /// the runtime; must stay the tail of the order.
  kLeaf = 6,
};

inline constexpr int kNumLockRanks = 7;

inline const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kServer: return "kServer";
    case LockRank::kDomain: return "kDomain";
    case LockRank::kInbox: return "kInbox";
    case LockRank::kExecutorQueue: return "kExecutorQueue";
    case LockRank::kClock: return "kClock";
    case LockRank::kDone: return "kDone";
    case LockRank::kLeaf: return "kLeaf";
  }
  return "<invalid rank>";
}

namespace lock_order {

/// One acquisition site, durable for the process lifetime (name and file
/// point at string literals / static storage from std::source_location).
struct Site {
  const char* name = nullptr;  ///< Mutex name, e.g. "scheduler_domain.mu".
  const char* file = nullptr;
  uint32_t line = 0;
};

inline std::ostream& operator<<(std::ostream& os, const Site& s) {
  return os << "\"" << (s.name ? s.name : "?") << "\" at "
            << (s.file ? s.file : "?") << ":" << s.line;
}

/// Process-global rank-level lock-order graph. Nodes are LockRank values;
/// an edge A -> B means "some thread blocked on a rank-B lock while
/// holding a rank-A lock", with the first witnessing pair of acquisition
/// sites kept for diagnostics. RecordEdge refuses (returning false and a
/// report) any edge that nests two distinct same-rank locks or closes a
/// cycle — i.e. the first acquisition that could deadlock against an
/// order some other path already established.
///
/// Instantiable so unit tests can drive a private graph; the validator
/// uses the GlobalLockOrderGraph() singleton.
class LockOrderGraph {
 public:
  LockOrderGraph() = default;
  LockOrderGraph(const LockOrderGraph&) = delete;
  LockOrderGraph& operator=(const LockOrderGraph&) = delete;

  /// Records "a rank-`from` lock was held while blocking on rank `to`".
  /// Returns true when the edge is consistent with every edge recorded so
  /// far; on violation returns false and, when `violation` is non-null,
  /// fills it with a report naming both acquisition sites of the current
  /// nesting and the previously witnessed inverse path.
  bool RecordEdge(LockRank from, Site holder, LockRank to, Site acquiring,
                  std::string* violation) {
    const int a = static_cast<int>(from), b = static_cast<int>(to);
    std::lock_guard<std::mutex> g(graph_mu_);
    if (a == b) {
      if (violation) {
        std::ostringstream os;
        os << "lock-order violation: blocking on " << acquiring
           << " while holding the same-rank (" << LockRankName(from)
           << ") lock " << holder
           << "; two locks of equal rank have no defined order and may "
              "never nest (rank table: src/common/lock_order.h)";
        *violation = os.str();
      }
      return false;
    }
    if (edges_[a][b].present) return true;
    int parent[kNumLockRanks];
    if (PathLocked(b, a, parent)) {
      if (violation) {
        std::ostringstream os;
        os << "lock-order inversion: blocking on " << acquiring << " (rank "
           << LockRankName(to) << ") while holding " << holder << " (rank "
           << LockRankName(from) << ") would establish "
           << LockRankName(from) << " -> " << LockRankName(to)
           << ", but the inverse order is already witnessed:";
        // Walk the recorded path b -> ... -> a, printing each hop's first
        // witness so both sides of the cycle are actionable.
        for (int v = a; v != b;) {
          const int u = parent[v];
          const EdgeInfo& e = edges_[u][v];
          os << "\n  " << LockRankName(static_cast<LockRank>(u)) << " -> "
             << LockRankName(static_cast<LockRank>(v)) << ": held "
             << e.holder << ", then blocked on " << e.acquiring;
          v = u;
        }
        *violation = os.str();
      }
      return false;
    }
    edges_[a][b] = EdgeInfo{true, holder, acquiring};
    return true;
  }

  bool HasEdge(LockRank from, LockRank to) const {
    std::lock_guard<std::mutex> g(graph_mu_);
    return edges_[static_cast<int>(from)][static_cast<int>(to)].present;
  }

  /// Drops every recorded edge. Test-only: the process-global graph
  /// accumulates edges from all runtime activity, so tests that assert on
  /// graph contents must use their own instance instead.
  void Reset() {
    std::lock_guard<std::mutex> g(graph_mu_);
    for (auto& row : edges_) {
      for (auto& e : row) e = EdgeInfo{};
    }
  }

 private:
  struct EdgeInfo {
    bool present = false;
    Site holder;     ///< First witnessed acquisition of the held lock.
    Site acquiring;  ///< First witnessed blocking acquisition under it.
  };

  /// DFS reachability `from -> ... -> to` over recorded edges; fills
  /// `parent` so the caller can reconstruct the witnessing path.
  bool PathLocked(int from, int to, int parent[kNumLockRanks]) const {
    bool visited[kNumLockRanks] = {};
    int stack[kNumLockRanks];
    int top = 0;
    stack[top++] = from;
    visited[from] = true;
    while (top > 0) {
      const int u = stack[--top];
      if (u == to) return true;
      for (int v = 0; v < kNumLockRanks; ++v) {
        if (edges_[u][v].present && !visited[v]) {
          visited[v] = true;
          parent[v] = u;
          stack[top++] = v;
        }
      }
    }
    return false;
  }

  mutable std::mutex graph_mu_;
  EdgeInfo edges_[kNumLockRanks][kNumLockRanks] = {};
};

inline LockOrderGraph& GlobalLockOrderGraph() {
  static LockOrderGraph* graph = new LockOrderGraph();  // never destroyed
  return *graph;
}

/// Per-thread stack of currently held annotated locks. Fixed capacity: the
/// runtime never legitimately nests more than a handful (the rank table
/// has kNumLockRanks levels); blowing the cap is itself a discipline bug.
struct HeldLockStack {
  static constexpr int kMaxHeld = 16;
  struct Entry {
    const void* mu = nullptr;
    LockRank rank = LockRank::kLeaf;
    Site site;
  };
  Entry entries[kMaxHeld];
  int depth = 0;
};

inline HeldLockStack& ThisThreadHeldLocks() {
  thread_local HeldLockStack stack;
  return stack;
}

/// Number of annotated locks the calling thread currently holds (CondVar
/// waits temporarily vacate their mutex's slot). Exposed for tests.
inline int HeldLockCount() { return ThisThreadHeldLocks().depth; }

/// Validates a BLOCKING acquisition of `mu` against the locks this thread
/// already holds and records the rank edge; CHECK-fails on the first
/// inversion, printing both acquisition sites. Must run BEFORE the
/// underlying lock() call — after it, an actual inversion would already
/// be deadlocked and never reach the check.
inline void ValidateBlockingAcquire(
    const void* mu, LockRank rank, const char* name,
    const std::source_location& loc = std::source_location::current()) {
  HeldLockStack& held = ThisThreadHeldLocks();
  if (held.depth == 0) return;
  const HeldLockStack::Entry& top = held.entries[held.depth - 1];
  // Re-entrant self-lock is Mutex's own CHECK; don't double-report.
  if (top.mu == mu) return;
  std::string violation;
  const Site acquiring{name, loc.file_name(), loc.line()};
  if (!GlobalLockOrderGraph().RecordEdge(top.rank, top.site, rank, acquiring,
                                         &violation)) {
    SCHEMBLE_CHECK(false) << violation;
  }
}

/// Pushes a successfully acquired lock onto the held stack. Called for
/// every acquisition path (Lock, TryLock, CondVar wait re-entry).
inline void NoteAcquired(
    const void* mu, LockRank rank, const char* name,
    const std::source_location& loc = std::source_location::current()) {
  HeldLockStack& held = ThisThreadHeldLocks();
  SCHEMBLE_CHECK(held.depth < HeldLockStack::kMaxHeld)
      << "held-lock stack overflow acquiring \"" << name << "\" at "
      << loc.file_name() << ":" << loc.line() << " (depth "
      << held.depth << "); no sane locking discipline nests this deep";
  held.entries[held.depth++] =
      HeldLockStack::Entry{mu, rank, Site{name, loc.file_name(), loc.line()}};
}

/// Removes `mu` from the held stack. Out-of-order release is legal
/// (MutexLock::Release on an outer guard), hence middle removal.
inline void NoteReleased(const void* mu) {
  HeldLockStack& held = ThisThreadHeldLocks();
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.entries[i].mu != mu) continue;
    for (int j = i; j + 1 < held.depth; ++j) {
      held.entries[j] = held.entries[j + 1];
    }
    --held.depth;
    return;
  }
  SCHEMBLE_CHECK(false)
      << "lock-order bookkeeping: released a mutex not on this thread's "
         "held stack (Unlock on a lock acquired by another thread?)";
}

}  // namespace lock_order
}  // namespace schemble

#endif  // SCHEMBLE_COMMON_LOCK_ORDER_H_
