#ifndef SCHEMBLE_COMMON_THREAD_ANNOTATIONS_H_
#define SCHEMBLE_COMMON_THREAD_ANNOTATIONS_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <source_location>
#include <thread>
#include <utility>

#include "common/lock_order.h"
#include "common/logging.h"

/// Clang thread-safety-analysis attribute macros plus the annotated lock
/// primitives every schemble component must use instead of naked
/// std::mutex / std::condition_variable (tools/lint.py enforces this; the
/// only exception is this header's own implementation).
///
/// Under clang the annotations turn lock-discipline violations — touching a
/// SCHEMBLE_GUARDED_BY member off-lock, calling a SCHEMBLE_REQUIRES
/// function without the capability, forgetting to release — into build
/// errors (-Werror=thread-safety in the static-analysis CI job). Under gcc
/// they compile away; the runtime owner-tracking CHECKs below and the TSan
/// CI job remain as the dynamic backstop.
///
/// Conventions (see DESIGN.md "Static analysis & lock discipline"):
///  - every mutex-protected member is declared SCHEMBLE_GUARDED_BY(mu_);
///  - private *Locked() helpers are declared SCHEMBLE_REQUIRES(mu_);
///  - functions that block on a queue or run completion work are declared
///    SCHEMBLE_EXCLUDES(mu_) so holding the lock across them is an error;
///  - SCHEMBLE_NO_THREAD_SAFETY_ANALYSIS must not appear outside this
///    header (lint-enforced: the analysis is meant to be satisfied, not
///    silenced).

#if defined(__clang__)
#define SCHEMBLE_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SCHEMBLE_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

/// Declares a type as a lockable capability ("mutex" names the kind in
/// diagnostics).
#define SCHEMBLE_CAPABILITY(x) SCHEMBLE_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define SCHEMBLE_SCOPED_CAPABILITY \
  SCHEMBLE_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define SCHEMBLE_GUARDED_BY(x) SCHEMBLE_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define SCHEMBLE_PT_GUARDED_BY(x) \
  SCHEMBLE_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Lock-ordering edges (deadlock detection).
#define SCHEMBLE_ACQUIRED_BEFORE(...) \
  SCHEMBLE_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define SCHEMBLE_ACQUIRED_AFTER(...) \
  SCHEMBLE_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Caller must hold the capability (exclusively / shared) on entry.
#define SCHEMBLE_REQUIRES(...) \
  SCHEMBLE_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define SCHEMBLE_REQUIRES_SHARED(...) \
  SCHEMBLE_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the capability.
#define SCHEMBLE_ACQUIRE(...) \
  SCHEMBLE_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define SCHEMBLE_ACQUIRE_SHARED(...) \
  SCHEMBLE_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define SCHEMBLE_RELEASE(...) \
  SCHEMBLE_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define SCHEMBLE_RELEASE_SHARED(...) \
  SCHEMBLE_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability when it returns `b`.
#define SCHEMBLE_TRY_ACQUIRE(...) \
  SCHEMBLE_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function blocks or re-acquires).
#define SCHEMBLE_EXCLUDES(...) \
  SCHEMBLE_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the calling thread holds the capability; informs
/// the analysis without acquiring.
#define SCHEMBLE_ASSERT_CAPABILITY(x) \
  SCHEMBLE_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the named capability.
#define SCHEMBLE_RETURN_CAPABILITY(x) \
  SCHEMBLE_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch for code the analysis cannot model. Must not appear outside
/// this header (lint-enforced).
#define SCHEMBLE_NO_THREAD_SAFETY_ANALYSIS \
  SCHEMBLE_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace schemble {

/// Annotated exclusive mutex over std::mutex.
///
/// Beyond the compile-time capability, it keeps the dynamic discipline the
/// PR-3 PolicyLock pioneered, now for every lock in the codebase:
///  - every Mutex is constructed with a mandatory LockRank and name
///    (common/lock_order.h): in checked builds every blocking Lock()
///    validates against the thread's held-lock stack and the global
///    lock-order graph BEFORE touching the underlying mutex, so the first
///    rank inversion CHECK-fails with both acquisition sites instead of
///    deadlocking. TryLock is order-exempt (it cannot block) but still
///    joins the held set;
///  - the owning thread id is tracked (release/acquire atomics), so
///    re-entrant Lock() and Unlock()-by-non-owner are CHECK failures in
///    every build type instead of undefined behaviour, and components can
///    turn "must (not) hold the lock here" comments into
///    HeldByCurrentThread() DCHECKs;
///  - optional contention statistics (acquisition count + total held time)
///    for locks worth reporting, e.g. the ConcurrentServer policy mutex in
///    bench_runtime. Stats collection costs two steady_clock reads per
///    critical section, so it is off by default.
class SCHEMBLE_CAPABILITY("mutex") Mutex {
 public:
  enum class StatsMode { kDisabled, kEnabled };

  /// Rank and name are mandatory: the rank places the lock in the global
  /// acquisition order (src/common/lock_order.h), the name appears in
  /// inversion reports and contention stats. Standalone locks with no
  /// runtime ordering relationship use LockRank::kLeaf.
  Mutex(LockRank rank, const char* name,
        StatsMode stats = StatsMode::kDisabled)
      : rank_(rank),
        name_(name),
        collect_stats_(stats == StatsMode::kEnabled) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock(const std::source_location& loc =
                std::source_location::current()) SCHEMBLE_ACQUIRE() {
    SCHEMBLE_CHECK(!HeldByCurrentThread())
        << "re-entrant Mutex::Lock (std::mutex would deadlock or worse)";
#if SCHEMBLE_LOCK_ORDER_CHECKS
    // Before mu_.lock(): past that point an actual inversion is already a
    // deadlock and no post-acquire check would ever run.
    lock_order::ValidateBlockingAcquire(this, rank_, name_, loc);
#endif
    mu_.lock();
    MarkAcquired(loc);
  }

  /// Acquires when free; returns true iff the lock was taken. Exempt from
  /// lock-order validation: a try-acquire can never block, which makes it
  /// the sanctioned out-of-order primitive (work stealing probes peer
  /// queues this way). The lock still joins the held-lock stack, so
  /// blocking acquisitions made while holding it are validated.
  bool TryLock(const std::source_location& loc =
                   std::source_location::current())
      SCHEMBLE_TRY_ACQUIRE(true) {
    SCHEMBLE_CHECK(!HeldByCurrentThread())
        << "re-entrant Mutex::TryLock";
    if (!mu_.try_lock()) return false;
    MarkAcquired(loc);
    return true;
  }

  void Unlock() SCHEMBLE_RELEASE() {
    SCHEMBLE_CHECK(HeldByCurrentThread())
        << "Mutex::Unlock by a thread that does not hold the lock";
    MarkReleased();
    mu_.unlock();
  }

  /// Documents (and dynamically checks) that the calling thread holds the
  /// lock, for paths where the analysis cannot see the acquisition.
  void AssertHeld() const SCHEMBLE_ASSERT_CAPABILITY(this) {
    SCHEMBLE_CHECK(HeldByCurrentThread());
  }

  /// True when the calling thread is inside the critical section. The
  /// negative form turns "must not hold the lock here" into a DCHECKable
  /// invariant (ConcurrentServer's off-lock completion contract).
  bool HeldByCurrentThread() const {
    return owner_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
  }

  /// Contention statistics; zeros unless constructed with kEnabled.
  struct Stats {
    int64_t acquisitions = 0;
    int64_t held_ns = 0;
  };
  Stats stats() const {
    // relaxed-ok: monotonic counters read for reporting only; the mutex
    // itself orders the writes that matter.
    return {acquisitions_.load(std::memory_order_relaxed),
            held_ns_.load(std::memory_order_relaxed)};
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;

  /// Bookkeeping on lock acquisition/release. Also used by CondVar to
  /// suspend ownership for the duration of a wait (the underlying
  /// std::mutex is released inside std::condition_variable::wait), which
  /// is why the held-lock stack push/pop lives here: a waiting thread
  /// genuinely does not hold the lock, and the re-acquisition on wakeup
  /// re-joins the stack without re-validating (its rank edge was recorded
  /// by the original Lock).
  void MarkAcquired(const std::source_location& loc) {
    owner_.store(std::this_thread::get_id(), std::memory_order_release);
#if SCHEMBLE_LOCK_ORDER_CHECKS
    lock_order::NoteAcquired(this, rank_, name_, loc);
#endif
    if (collect_stats_) {
      // relaxed-ok: stats counter; never synchronizes anything.
      acquisitions_.fetch_add(1, std::memory_order_relaxed);
      acquired_at_ = std::chrono::steady_clock::now();
    }
  }
  void MarkReleased() {
#if SCHEMBLE_LOCK_ORDER_CHECKS
    lock_order::NoteReleased(this);
#endif
    owner_.store(std::thread::id{}, std::memory_order_release);
    if (collect_stats_) {
      const auto held = std::chrono::steady_clock::now() - acquired_at_;
      held_ns_.fetch_add(
          std::chrono::duration_cast<std::chrono::nanoseconds>(held).count(),
          std::memory_order_relaxed);  // relaxed-ok: stats counter.
    }
  }

  const LockRank rank_;
  const char* const name_;
  std::mutex mu_;
  /// Thread currently inside the critical section (empty id: none).
  std::atomic<std::thread::id> owner_{};
  const bool collect_stats_ = false;
  std::atomic<int64_t> acquisitions_{0};
  std::atomic<int64_t> held_ns_{0};
  /// Written after acquiring and read before releasing, always by the
  /// owning thread, so no synchronization beyond the mutex is needed.
  std::chrono::steady_clock::time_point acquired_at_{};
};

/// RAII guard over Mutex, with explicit Release()/Acquire() for the
/// drop-the-lock-mid-scan pattern (ConcurrentServer::DeadlineLoop records
/// outcomes off-lock between deadline scans).
class SCHEMBLE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu, const std::source_location& loc =
                                    std::source_location::current())
      SCHEMBLE_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock(loc);
  }
  ~MutexLock() SCHEMBLE_RELEASE() {
    if (held_) mu_->Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily leaves the critical section; the guard must currently
  /// hold the lock. Destruction after Release() is a no-op.
  void Release() SCHEMBLE_RELEASE() {
    SCHEMBLE_CHECK(held_) << "MutexLock::Release without the lock held";
    held_ = false;
    mu_->Unlock();
  }

  /// Re-enters the critical section after Release().
  void Acquire(const std::source_location& loc =
                   std::source_location::current()) SCHEMBLE_ACQUIRE() {
    SCHEMBLE_CHECK(!held_) << "MutexLock::Acquire while already held";
    mu_->Lock(loc);
    held_ = true;
  }

 private:
  friend class CondVar;

  Mutex* mu_;
  bool held_ = true;
};

/// Condition variable bound to the annotated Mutex. All waits require the
/// capability; ownership tracking (and held-time accounting, when enabled)
/// is suspended for the duration of the underlying wait, matching the real
/// std::condition_variable semantics — wait predicates therefore must not
/// rely on Mutex::HeldByCurrentThread().
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu, const std::source_location& loc =
                           std::source_location::current())
      SCHEMBLE_REQUIRES(mu) {
    auto lock = SuspendOwnership(mu);
    cv_.wait(lock);
    ResumeOwnership(mu, lock, loc);
  }

  template <typename Pred>
  void Wait(Mutex& mu, Pred pred,
            const std::source_location& loc = std::source_location::current())
      SCHEMBLE_REQUIRES(mu) {
    auto lock = SuspendOwnership(mu);
    cv_.wait(lock, std::move(pred));
    ResumeOwnership(mu, lock, loc);
  }

  /// Returns false on timeout (like std::condition_variable::wait_for).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout,
               const std::source_location& loc =
                   std::source_location::current()) SCHEMBLE_REQUIRES(mu) {
    auto lock = SuspendOwnership(mu);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    ResumeOwnership(mu, lock, loc);
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  /// Hands the already-held std::mutex to a unique_lock for the wait and
  /// pauses the annotated bookkeeping; the capability stays held from the
  /// analysis' point of view (REQUIRES on the callers).
  static std::unique_lock<std::mutex> SuspendOwnership(Mutex& mu) {
    SCHEMBLE_CHECK(mu.HeldByCurrentThread())
        << "CondVar wait requires the associated Mutex to be held";
    mu.MarkReleased();
    return std::unique_lock<std::mutex>(mu.mu_, std::adopt_lock);
  }
  static void ResumeOwnership(Mutex& mu, std::unique_lock<std::mutex>& lock,
                              const std::source_location& loc) {
    lock.release();  // the Mutex wrapper owns the lock again
    mu.MarkAcquired(loc);
  }

  std::condition_variable cv_;
};

/// Machine-readable encoding of the global rank table
/// (src/common/lock_order.h) for clang's acquired_before/after analysis:
/// one never-locked "anchor" mutex per rank, each declared
/// SCHEMBLE_ACQUIRED_AFTER the previous, forming the total order
/// server < domain < inbox < executor-queue < clock < done < leaf. Real
/// locks sandwich themselves into the chain by declaring
/// SCHEMBLE_ACQUIRED_AFTER(the anchor of the preceding rank) — see
/// SchedulerDomain::mu_, MpmcQueue::mu_, ConcurrentServer::done_mu_.
///
/// Clang's -Wthread-safety-beta enforcement of acquired_before/after is
/// intraprocedural, so cross-class inversions are caught by the runtime
/// validator (lock_order.h), not this chain; the chain keeps the table in
/// the one form the analysis CAN check (tests/static/
/// lock_order_violation.cc is the WILL_FAIL proof that it fires), and
/// tools/lint.py `lock-rank` cross-checks it against the enum and
/// DESIGN.md. The anchors are never locked at runtime; kLeaf terminates
/// the chain so utility/test locks have an explicit last position.
namespace lock_ranks {

inline Mutex server_anchor{LockRank::kServer, "rank.server"};
inline Mutex domain_anchor SCHEMBLE_ACQUIRED_AFTER(server_anchor){
    LockRank::kDomain, "rank.domain"};
inline Mutex inbox_anchor SCHEMBLE_ACQUIRED_AFTER(domain_anchor){
    LockRank::kInbox, "rank.inbox"};
inline Mutex executor_queue_anchor SCHEMBLE_ACQUIRED_AFTER(inbox_anchor){
    LockRank::kExecutorQueue, "rank.executor_queue"};
inline Mutex clock_anchor SCHEMBLE_ACQUIRED_AFTER(executor_queue_anchor){
    LockRank::kClock, "rank.clock"};
inline Mutex done_anchor SCHEMBLE_ACQUIRED_AFTER(clock_anchor){
    LockRank::kDone, "rank.done"};
inline Mutex leaf_anchor SCHEMBLE_ACQUIRED_AFTER(done_anchor){
    LockRank::kLeaf, "rank.leaf"};

}  // namespace lock_ranks

/// Test-only escapes for the lock-discipline death tests: they deliberately
/// violate the discipline (re-entrant Lock, Unlock without holding) so the
/// runtime CHECKs can be exercised. The static analysis would — correctly —
/// reject those call sites at compile time, hence the suppression, which is
/// permitted only inside this header (tools/lint.py `ts-suppression`).
namespace thread_annotations_internal {

inline void LockIgnoringAnalysis(Mutex& mu)
    SCHEMBLE_NO_THREAD_SAFETY_ANALYSIS {
  mu.Lock();
}

inline void UnlockIgnoringAnalysis(Mutex& mu)
    SCHEMBLE_NO_THREAD_SAFETY_ANALYSIS {
  mu.Unlock();
}

}  // namespace thread_annotations_internal

}  // namespace schemble

#endif  // SCHEMBLE_COMMON_THREAD_ANNOTATIONS_H_
