#ifndef SCHEMBLE_COMMON_HOT_PATH_H_
#define SCHEMBLE_COMMON_HOT_PATH_H_

#include <atomic>
#include <cstdint>

#include "common/logging.h"

/// Marks a function as a steady-state hot path: it must perform no heap
/// allocation and no untracked container growth (reusable workspaces only).
///
/// The marker is load-bearing twice over:
///  - tools/lint.py scans every SCHEMBLE_HOT function body and rejects
///    allocation expressions (new / make_unique / malloc) outright, and
///    container-growth calls (push_back / resize / reserve / ...) unless
///    the function routes growth through the repo's grow-event telemetry
///    (ResizeTracked / GrowTo / an explicit grow_events increment) or the
///    line carries a `// hot-ok: <reason>` tag;
///  - the compiler attribute biases optimization toward these functions.
///
/// Convention: annotate the *definition* (where the body lives), between
/// the template/static specifiers and the return type, e.g.
///   SCHEMBLE_HOT double Dot(const double* x, const double* y, int n) {...}
/// See DESIGN.md "Static analysis & lock discipline".
#define SCHEMBLE_HOT __attribute__((hot))

namespace schemble {

/// Asserts that a grow-event counter does not advance during the guard's
/// lifetime: wrap a steady-state section (e.g. a warmed-up completion or
/// fill call) and any allocation that slipped into the hot path becomes a
/// CHECK failure — the death-test harness behind the zero-allocation
/// invariant (see tests/runtime/lock_discipline_test.cc).
///
/// Both counter flavours used in the repo are supported: process-wide
/// atomics (Matrix::OpStats) and per-workspace plain int64_t counters
/// (KnnIndex::Workspace, DpScheduler::WorkspaceStats).
class ScopedGrowGuard {
 public:
  explicit ScopedGrowGuard(const std::atomic<int64_t>& counter,
                           const char* what = "hot path")
      : atomic_(&counter), what_(what), baseline_(Current()) {}
  explicit ScopedGrowGuard(const int64_t& counter,
                           const char* what = "hot path")
      : plain_(&counter), what_(what), baseline_(Current()) {}

  ScopedGrowGuard(const ScopedGrowGuard&) = delete;
  ScopedGrowGuard& operator=(const ScopedGrowGuard&) = delete;

  ~ScopedGrowGuard() {
    const int64_t now = Current();
    SCHEMBLE_CHECK_EQ(now, baseline_)
        << "grow events inside " << what_ << ": " << (now - baseline_)
        << " buffer growth(s) in a section declared allocation-free";
  }

  int64_t baseline() const { return baseline_; }

 private:
  int64_t Current() const {
    // relaxed-ok: advisory telemetry read; no ordering needed
    return atomic_ != nullptr ? atomic_->load(std::memory_order_relaxed)
                              : *plain_;
  }

  const std::atomic<int64_t>* atomic_ = nullptr;
  const int64_t* plain_ = nullptr;
  const char* what_;
  int64_t baseline_;
};

}  // namespace schemble

#endif  // SCHEMBLE_COMMON_HOT_PATH_H_
