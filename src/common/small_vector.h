#ifndef SCHEMBLE_COMMON_SMALL_VECTOR_H_
#define SCHEMBLE_COMMON_SMALL_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <type_traits>

#include "common/logging.h"

namespace schemble {

/// Fixed-capacity vector with inline storage and no heap allocation,
/// for hot paths that would otherwise pay one malloc per element array
/// (e.g. the DP scheduler's per-solution model-load vectors). Restricted
/// to trivially copyable element types so that whole-object copies are
/// memcpy-cheap and instances can live in reusable flat arenas.
template <typename T, int Capacity>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is for trivially copyable hot-path types");
  static_assert(Capacity > 0, "SmallVector capacity must be positive");

 public:
  using value_type = T;

  SmallVector() = default;
  SmallVector(std::initializer_list<T> init) {
    SCHEMBLE_CHECK_LE(init.size(), static_cast<size_t>(Capacity));
    for (const T& v : init) data_[size_++] = v;
  }

  static constexpr int capacity() { return Capacity; }
  int size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void push_back(const T& v) {
    SCHEMBLE_DCHECK(size_ < Capacity);
    data_[size_++] = v;
  }
  void pop_back() {
    SCHEMBLE_DCHECK(size_ > 0);
    --size_;
  }
  void clear() { size_ = 0; }

  /// Replaces the contents with the first `n` elements at `src`.
  void assign(const T* src, int n) {
    SCHEMBLE_DCHECK(n >= 0 && n <= Capacity);
    for (int i = 0; i < n; ++i) data_[i] = src[i];
    size_ = n;
  }

  /// Grows (filling with `fill`) or shrinks to exactly `n` elements.
  void resize(int n, const T& fill = T{}) {
    SCHEMBLE_CHECK_LE(n, Capacity);
    SCHEMBLE_CHECK_GE(n, 0);
    // Re-clamp for the optimizer: the CHECKs above abort first, but the
    // compiler cannot see that and warns about the unbounded fill loop.
    const int bounded = n < Capacity ? n : Capacity;
    for (int i = size_; i < bounded; ++i) data_[i] = fill;
    size_ = bounded;
  }

  T& operator[](int i) {
    SCHEMBLE_DCHECK(i >= 0 && i < size_);
    return data_[i];
  }
  const T& operator[](int i) const {
    SCHEMBLE_DCHECK(i >= 0 && i < size_);
    return data_[i];
  }
  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    if (a.size_ != b.size_) return false;
    for (int i = 0; i < a.size_; ++i) {
      if (!(a.data_[i] == b.data_[i])) return false;
    }
    return true;
  }
  friend bool operator!=(const SmallVector& a, const SmallVector& b) {
    return !(a == b);
  }

 private:
  T data_[Capacity] = {};
  int size_ = 0;
};

}  // namespace schemble

#endif  // SCHEMBLE_COMMON_SMALL_VECTOR_H_
