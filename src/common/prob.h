#ifndef SCHEMBLE_COMMON_PROB_H_
#define SCHEMBLE_COMMON_PROB_H_

#include <vector>

namespace schemble {

/// Probability-vector utilities shared by the model substrate and the
/// discrepancy-score machinery (Eq. 1 of the paper uses JS divergence for
/// classifiers and Euclidean distance for regressors).

/// In-place softmax of `logits`; numerically stable (subtracts max).
void SoftmaxInPlace(std::vector<double>& logits);

/// Returns softmax(logits) without modifying the input.
std::vector<double> Softmax(const std::vector<double>& logits);

/// Temperature-scaled softmax: softmax(logits / temperature).
/// temperature > 1 flattens, < 1 sharpens. Requires temperature > 0.
std::vector<double> SoftmaxWithTemperature(const std::vector<double>& logits,
                                           double temperature);

/// Renormalizes a non-negative vector to sum to one. A zero vector becomes
/// uniform.
void NormalizeInPlace(std::vector<double>& p);

/// Shannon entropy (natural log) of a probability vector.
double Entropy(const std::vector<double>& p);

/// KL(p || q) with epsilon smoothing to keep it finite.
double KlDivergence(const std::vector<double>& p, const std::vector<double>& q);

/// Symmetric KL: KL(p||q) + KL(q||p). Used by the ensemble-agreement
/// baseline metric.
double SymmetricKlDivergence(const std::vector<double>& p,
                             const std::vector<double>& q);

/// Jensen-Shannon divergence (natural log, in [0, ln 2]). Used by the
/// discrepancy score for classification tasks.
double JsDivergence(const std::vector<double>& p, const std::vector<double>& q);

/// Euclidean distance between vectors of equal length. Used by the
/// discrepancy score for regression tasks.
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Index of the largest element (ties -> lowest index). Requires non-empty.
int Argmax(const std::vector<double>& v);

}  // namespace schemble

#endif  // SCHEMBLE_COMMON_PROB_H_
