#ifndef SCHEMBLE_COMMON_TABLE_H_
#define SCHEMBLE_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace schemble {

/// Minimal fixed-width text table used by the bench harnesses to print the
/// paper's tables and figure series in a diff-friendly format.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string Num(double v, int precision = 2);

  /// Renders with one space padding and a header separator line.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace schemble

#endif  // SCHEMBLE_COMMON_TABLE_H_
