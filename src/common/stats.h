#ifndef SCHEMBLE_COMMON_STATS_H_
#define SCHEMBLE_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace schemble {

/// Streaming mean/variance accumulator (Welford).
class RunningStat {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores every sample and answers exact quantile queries. Used for the
/// latency metrics (mean / P95 / max) reported in the paper's Table II.
class SampleSet {
 public:
  void Add(double x);
  void Reserve(size_t n) { samples_.reserve(n); }

  int64_t count() const { return static_cast<int64_t>(samples_.size()); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  /// Exact quantile by linear interpolation between order statistics;
  /// q in [0, 1]. Returns 0 for an empty set.
  double Quantile(double q) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  /// Quantile() is const but lazily (re)builds this cache, so a SampleSet
  /// must not be read from multiple threads concurrently; the concurrent
  /// runtime only touches its metrics object after all workers joined.
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Fixed-width histogram over [lo, hi) with `bins` buckets; out-of-range
/// samples clamp to the edge buckets. Used for discrepancy-score
/// distributions (Fig. 4a) and per-bin accuracy profiling.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void Add(double x);
  /// Bucket index for `x` (clamped to [0, bins-1]).
  int BucketOf(double x) const;
  double BucketLow(int bucket) const;
  double BucketHigh(int bucket) const;
  double BucketCenter(int bucket) const;

  int bins() const { return static_cast<int>(counts_.size()); }
  int64_t count(int bucket) const { return counts_[bucket]; }
  int64_t total() const { return total_; }
  /// Fraction of samples in `bucket` (0 when the histogram is empty).
  double Fraction(int bucket) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

/// Pearson correlation between two equal-length vectors; 0 when either
/// has zero variance or fewer than two points.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Spearman rank correlation (average ranks for ties).
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);

}  // namespace schemble

#endif  // SCHEMBLE_COMMON_STATS_H_
