#ifndef SCHEMBLE_COMMON_STATUS_H_
#define SCHEMBLE_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace schemble {

/// Error codes for fallible operations. The library does not use C++
/// exceptions; public APIs that can fail return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
};

/// Returns a stable human-readable name for `code` ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

/// Lightweight status object carrying an error code and message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy for the
/// OK case (no allocation) and carry a message only on error.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a value or an error Status.
///
/// Use `ok()` to test, `value()` to access (CHECK-fails on error via the
/// caller's discipline: accessing value() of an error Result is undefined;
/// in debug builds it aborts).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value keeps call sites terse
  /// (`return computed_value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error Status (`return Status::...;`).
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  /// Returns the value or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace schemble

#endif  // SCHEMBLE_COMMON_STATUS_H_
