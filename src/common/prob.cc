#include "common/prob.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace schemble {

namespace {
constexpr double kEps = 1e-12;
}  // namespace

void SoftmaxInPlace(std::vector<double>& logits) {
  SCHEMBLE_CHECK(!logits.empty());
  const double max_logit = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (double& v : logits) {
    v = std::exp(v - max_logit);
    sum += v;
  }
  for (double& v : logits) v /= sum;
}

std::vector<double> Softmax(const std::vector<double>& logits) {
  std::vector<double> out = logits;
  SoftmaxInPlace(out);
  return out;
}

std::vector<double> SoftmaxWithTemperature(const std::vector<double>& logits,
                                           double temperature) {
  SCHEMBLE_CHECK_GT(temperature, 0.0);
  std::vector<double> out = logits;
  for (double& v : out) v /= temperature;
  SoftmaxInPlace(out);
  return out;
}

void NormalizeInPlace(std::vector<double>& p) {
  SCHEMBLE_CHECK(!p.empty());
  double sum = 0.0;
  for (double v : p) {
    SCHEMBLE_DCHECK(v >= 0.0);
    sum += v;
  }
  if (sum <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(p.size());
    for (double& v : p) v = uniform;
    return;
  }
  for (double& v : p) v /= sum;
}

double Entropy(const std::vector<double>& p) {
  double h = 0.0;
  for (double v : p) {
    if (v > kEps) h -= v * std::log(v);
  }
  return h;
}

double KlDivergence(const std::vector<double>& p,
                    const std::vector<double>& q) {
  SCHEMBLE_CHECK_EQ(p.size(), q.size());
  double d = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    const double pi = std::max(p[i], kEps);
    const double qi = std::max(q[i], kEps);
    d += pi * std::log(pi / qi);
  }
  return std::max(d, 0.0);
}

double SymmetricKlDivergence(const std::vector<double>& p,
                             const std::vector<double>& q) {
  return KlDivergence(p, q) + KlDivergence(q, p);
}

double JsDivergence(const std::vector<double>& p,
                    const std::vector<double>& q) {
  SCHEMBLE_CHECK_EQ(p.size(), q.size());
  std::vector<double> mid(p.size());
  for (size_t i = 0; i < p.size(); ++i) mid[i] = 0.5 * (p[i] + q[i]);
  return 0.5 * KlDivergence(p, mid) + 0.5 * KlDivergence(q, mid);
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  SCHEMBLE_CHECK_EQ(a.size(), b.size());
  double sq = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sq += d * d;
  }
  return std::sqrt(sq);
}

int Argmax(const std::vector<double>& v) {
  SCHEMBLE_CHECK(!v.empty());
  return static_cast<int>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

}  // namespace schemble
