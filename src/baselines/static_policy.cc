#include "baselines/static_policy.h"

#include <algorithm>

#include "common/logging.h"
#include "simcore/simulation.h"

namespace schemble {

namespace {

/// Bottleneck throughput (queries/sec) of a deployment: every query places
/// one task on each chosen model, so the slowest per-model pool limits it.
double BottleneckRate(const std::vector<ModelProfile>& profiles,
                      const StaticDeployment& deployment) {
  double bottleneck = 1e18;
  for (size_t k = 0; k < profiles.size(); ++k) {
    if (!(deployment.subset & (SubsetMask{1} << k))) continue;
    const double per_instance =
        static_cast<double>(kSecond) /
        static_cast<double>(profiles[k].latency_us);
    bottleneck =
        std::min(bottleneck, per_instance * deployment.replicas[k]);
  }
  return bottleneck;
}

/// Expected per-processed-query accuracy of a subset, weighted by the
/// profiling data's score distribution.
double ExpectedUtility(const AccuracyProfile& profile, SubsetMask subset) {
  double total = 0.0;
  int64_t count = 0;
  for (int bin = 0; bin < profile.bins(); ++bin) {
    total += profile.CellUtility(bin, subset) *
             static_cast<double>(profile.BinCount(bin));
    count += profile.BinCount(bin);
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

}  // namespace

StaticDeployment PackReplicas(const std::vector<ModelProfile>& profiles,
                              SubsetMask subset, double memory_budget_mb) {
  const int m = static_cast<int>(profiles.size());
  StaticDeployment candidate;
  candidate.subset = subset;
  candidate.replicas.assign(m, 0);
  double memory = 0.0;
  for (int k = 0; k < m; ++k) {
    if (!(subset & (SubsetMask{1} << k))) continue;
    candidate.replicas[k] = 1;
    memory += profiles[k].memory_mb;
  }
  if (memory > memory_budget_mb) return StaticDeployment{};
  // Pack leftover memory with replicas of whichever chosen model is the
  // throughput bottleneck.
  while (true) {
    int bottleneck_model = -1;
    double bottleneck_rate = 1e18;
    for (int k = 0; k < m; ++k) {
      if (!(subset & (SubsetMask{1} << k))) continue;
      const double rate = candidate.replicas[k] *
                          static_cast<double>(kSecond) /
                          static_cast<double>(profiles[k].latency_us);
      if (rate < bottleneck_rate &&
          memory + profiles[k].memory_mb <= memory_budget_mb) {
        bottleneck_rate = rate;
        bottleneck_model = k;
      }
    }
    if (bottleneck_model < 0) break;
    ++candidate.replicas[bottleneck_model];
    memory += profiles[bottleneck_model].memory_mb;
  }
  return candidate;
}

StaticDeployment ChooseStaticDeployment(
    const std::vector<ModelProfile>& profiles, const AccuracyProfile& profile,
    double memory_budget_mb, double expected_rate_per_sec) {
  const int m = static_cast<int>(profiles.size());
  StaticDeployment best;
  double best_score = -1.0;
  for (SubsetMask subset = 1; subset <= FullMask(m); ++subset) {
    StaticDeployment candidate =
        PackReplicas(profiles, subset, memory_budget_mb);
    if (candidate.subset == 0) continue;
    const double capacity = BottleneckRate(profiles, candidate);
    const double processed_fraction =
        std::min(1.0, capacity / std::max(expected_rate_per_sec, 1e-9));
    const double score = ExpectedUtility(profile, subset) * processed_fraction;
    if (score > best_score) {
      best_score = score;
      best = candidate;
    }
  }
  SCHEMBLE_CHECK_NE(best.subset, 0u);
  return best;
}

StaticPolicy::StaticPolicy(StaticDeployment deployment)
    : deployment_(std::move(deployment)) {
  SCHEMBLE_CHECK_NE(deployment_.subset, 0u);
}

ArrivalDecision StaticPolicy::OnArrival(const TracedQuery& query,
                                        const ServerView& view) {
  if (view.allow_rejection &&
      view.EstimateCompletion(deployment_.subset) > query.deadline) {
    return ArrivalDecision::Reject();
  }
  return ArrivalDecision::Assign(deployment_.subset);
}

}  // namespace schemble
