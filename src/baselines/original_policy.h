#ifndef SCHEMBLE_BASELINES_ORIGINAL_POLICY_H_
#define SCHEMBLE_BASELINES_ORIGINAL_POLICY_H_

#include <string>

#include "core/policy.h"

namespace schemble {

/// The unmodified ensemble-serving pipeline (§III-A): every query fans out
/// one inference task to every base model. With rejection enabled, queries
/// whose estimated completion exceeds their deadline are skipped.
class OriginalPolicy : public ServingPolicy {
 public:
  OriginalPolicy() = default;

  std::string name() const override { return "Original"; }

  ArrivalDecision OnArrival(const TracedQuery& query,
                            const ServerView& view) override;
};

}  // namespace schemble

#endif  // SCHEMBLE_BASELINES_ORIGINAL_POLICY_H_
