#ifndef SCHEMBLE_BASELINES_DES_POLICY_H_
#define SCHEMBLE_BASELINES_DES_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/policy.h"
#include "models/synthetic_task.h"
#include "nn/kmeans.h"

namespace schemble {

struct DesConfig {
  /// Regions the feature space is clustered into.
  int clusters = 16;
  /// Models whose regional competence is within this margin of the best
  /// model's competence are selected alongside it.
  double competence_margin = 0.02;
  uint64_t seed = 31;
};

/// Dynamic ensemble selection baseline (§III-B): k-means regions over the
/// feature space, a per-region per-model competence score (probability of
/// matching the ensemble), and near-max-competence selection per query.
/// This is the cluster/competence skeleton shared by FIRE-DES++-style
/// methods, which the paper argues fails on deep ensembles because deep
/// models' regional preferences are seed noise.
class DesPolicy : public ServingPolicy {
 public:
  static Result<DesPolicy> Train(const SyntheticTask& task,
                                 const std::vector<Query>& history,
                                 const DesConfig& config);

  std::string name() const override { return "DES"; }

  ArrivalDecision OnArrival(const TracedQuery& query,
                            const ServerView& view) override;

  /// Subset DES would select for a query, ignoring queue state (exposed for
  /// the offline budget experiments and tests).
  SubsetMask SelectSubset(const Query& query) const;

  /// Regional competence table (tests): [cluster][model].
  const std::vector<std::vector<double>>& competence() const {
    return competence_;
  }

 private:
  DesPolicy(DesConfig config, KMeans kmeans,
            std::vector<std::vector<double>> competence)
      : config_(config),
        kmeans_(std::move(kmeans)),
        competence_(std::move(competence)) {}

  DesConfig config_;
  KMeans kmeans_;
  std::vector<std::vector<double>> competence_;
};

}  // namespace schemble

#endif  // SCHEMBLE_BASELINES_DES_POLICY_H_
