#include "baselines/gating_policy.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/prob.h"

namespace schemble {

Result<GatingPolicy> GatingPolicy::Train(const SyntheticTask& task,
                                         const std::vector<Query>& history,
                                         const GatingConfig& config) {
  if (history.empty()) {
    return Status::InvalidArgument("gating training needs history data");
  }
  const int m = task.num_models();
  const int dim = task.output_dim();
  MlpConfig mlp_config;
  mlp_config.layer_sizes.push_back(task.spec().feature_dim());
  for (int h : config.hidden) mlp_config.layer_sizes.push_back(h);
  mlp_config.layer_sizes.push_back(m);
  auto gate = std::make_unique<Mlp>(mlp_config, config.seed);

  const bool classification =
      task.spec().type == TaskType::kClassification;
  // Targets pack what the loss needs per example:
  //  - classification: t_k = P_k(ensemble label) per model;
  //  - otherwise: the m model outputs flattened, then the ensemble output.
  std::vector<TrainExample> examples;
  examples.reserve(history.size());
  for (const Query& q : history) {
    std::vector<double> target;
    if (classification) {
      const int label = Argmax(q.ensemble_output);
      target.reserve(m);
      for (int k = 0; k < m; ++k) {
        target.push_back(std::max(q.model_outputs[k][label], 1e-9));
      }
    } else {
      target.reserve(m * dim + dim);
      for (int k = 0; k < m; ++k) {
        target.insert(target.end(), q.model_outputs[k].begin(),
                      q.model_outputs[k].end());
      }
      target.insert(target.end(), q.ensemble_output.begin(),
                    q.ensemble_output.end());
    }
    examples.push_back({q.features, std::move(target)});
  }

  // Loss over gate logits g: w = softmax(g); classification minimizes
  // -log(sum_k w_k t_k); regression/retrieval minimizes
  // ||sum_k w_k o_k - o_ens||^2. Both backpropagate through the softmax.
  LossGradFn loss = [m, dim, classification](
                        const std::vector<double>& output,
                        const std::vector<double>& target,
                        std::vector<double>* grad) {
    const std::vector<double> w = Softmax(output);
    std::vector<double> dloss_dw(m, 0.0);
    double loss_value = 0.0;
    if (classification) {
      double p = 0.0;
      for (int k = 0; k < m; ++k) p += w[k] * target[k];
      p = std::max(p, 1e-12);
      loss_value = -std::log(p);
      for (int k = 0; k < m; ++k) dloss_dw[k] = -target[k] / p;
    } else {
      for (int d = 0; d < dim; ++d) {
        double combined = 0.0;
        for (int k = 0; k < m; ++k) combined += w[k] * target[k * dim + d];
        const double err = combined - target[m * dim + d];
        loss_value += err * err / dim;
        for (int k = 0; k < m; ++k) {
          dloss_dw[k] += 2.0 * err * target[k * dim + d] / dim;
        }
      }
    }
    // Softmax chain rule: dL/dg_j = w_j (dL/dw_j - sum_k w_k dL/dw_k).
    double mixed = 0.0;
    for (int k = 0; k < m; ++k) mixed += w[k] * dloss_dw[k];
    grad->assign(m, 0.0);
    for (int j = 0; j < m; ++j) (*grad)[j] = w[j] * (dloss_dw[j] - mixed);
    return loss_value;
  };

  Rng rng(HashSeed("gating-train", config.seed));
  TrainMlp(gate.get(), examples, loss, config.trainer, rng);
  return GatingPolicy(&task, config, std::move(gate));
}

std::vector<double> GatingPolicy::GateWeights(const Query& query) const {
  return Softmax(gate_->Forward(query.features));
}

SubsetMask GatingPolicy::SelectSubset(
    const Query& query, const std::vector<SimTime>& latency_us) const {
  const std::vector<double> w = GateWeights(query);
  const double max_w = *std::max_element(w.begin(), w.end());
  // Clearly dominant gates are kept outright.
  SubsetMask subset = 0;
  for (size_t k = 0; k < w.size(); ++k) {
    if (w[k] >= config_.absolute_keep) subset |= SubsetMask{1} << k;
  }
  if (subset != 0) return subset;
  // Otherwise the band of near-tied gates competes; run the cheapest.
  int cheapest = -1;
  for (size_t k = 0; k < w.size(); ++k) {
    if (w[k] < config_.band_ratio * max_w) continue;
    if (cheapest < 0 || latency_us[k] < latency_us[cheapest]) {
      cheapest = static_cast<int>(k);
    }
  }
  SCHEMBLE_CHECK_GE(cheapest, 0);
  return SubsetMask{1} << cheapest;
}

ArrivalDecision GatingPolicy::OnArrival(const TracedQuery& query,
                                        const ServerView& view) {
  const SubsetMask subset =
      SelectSubset(query.query, view.model_exec_time);
  if (view.allow_rejection &&
      view.EstimateCompletion(subset) > query.deadline) {
    return ArrivalDecision::Reject();
  }
  return ArrivalDecision::Assign(subset);
}

}  // namespace schemble
