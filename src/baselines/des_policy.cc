#include "baselines/des_policy.h"

#include <algorithm>

#include "common/logging.h"

namespace schemble {

Result<DesPolicy> DesPolicy::Train(const SyntheticTask& task,
                                   const std::vector<Query>& history,
                                   const DesConfig& config) {
  if (history.empty()) {
    return Status::InvalidArgument("DES training needs history data");
  }
  if (config.clusters <= 0) {
    return Status::InvalidArgument("DES needs clusters > 0");
  }
  std::vector<std::vector<double>> features;
  features.reserve(history.size());
  for (const Query& q : history) features.push_back(q.features);
  Rng rng(HashSeed("des-train", config.seed));
  KMeans::Options km_options;
  km_options.clusters = config.clusters;
  auto kmeans = KMeans::Fit(features, km_options, rng);
  if (!kmeans.ok()) return kmeans.status();

  const int m = task.num_models();
  const int clusters = kmeans.value().clusters();
  std::vector<std::vector<double>> sums(clusters,
                                        std::vector<double>(m, 0.0));
  std::vector<int64_t> counts(clusters, 0);
  for (const Query& q : history) {
    const int cluster = kmeans.value().Assign(q.features);
    ++counts[cluster];
    for (int k = 0; k < m; ++k) {
      sums[cluster][k] +=
          task.MatchScore(q.model_outputs[k], q.ensemble_output);
    }
  }
  // Global competences back empty clusters.
  std::vector<double> global(m, 0.0);
  for (int c = 0; c < clusters; ++c) {
    for (int k = 0; k < m; ++k) global[k] += sums[c][k];
  }
  for (int k = 0; k < m; ++k) {
    global[k] /= static_cast<double>(history.size());
  }
  std::vector<std::vector<double>> competence(clusters,
                                              std::vector<double>(m, 0.0));
  for (int c = 0; c < clusters; ++c) {
    for (int k = 0; k < m; ++k) {
      competence[c][k] = counts[c] > 0
                             ? sums[c][k] / static_cast<double>(counts[c])
                             : global[k];
    }
  }
  return DesPolicy(config, std::move(kmeans).value(), std::move(competence));
}

SubsetMask DesPolicy::SelectSubset(const Query& query) const {
  const int cluster = kmeans_.Assign(query.features);
  const std::vector<double>& scores = competence_[cluster];
  const double best = *std::max_element(scores.begin(), scores.end());
  SubsetMask subset = 0;
  for (size_t k = 0; k < scores.size(); ++k) {
    if (scores[k] >= best - config_.competence_margin) {
      subset |= SubsetMask{1} << k;
    }
  }
  SCHEMBLE_DCHECK(subset != 0);
  return subset;
}

ArrivalDecision DesPolicy::OnArrival(const TracedQuery& query,
                                     const ServerView& view) {
  const SubsetMask subset = SelectSubset(query.query);
  if (view.allow_rejection &&
      view.EstimateCompletion(subset) > query.deadline) {
    return ArrivalDecision::Reject();
  }
  return ArrivalDecision::Assign(subset);
}

}  // namespace schemble
