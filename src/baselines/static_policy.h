#ifndef SCHEMBLE_BASELINES_STATIC_POLICY_H_
#define SCHEMBLE_BASELINES_STATIC_POLICY_H_

#include <string>
#include <vector>

#include "core/policy.h"
#include "core/profiling.h"
#include "models/model_profile.h"

namespace schemble {

/// A static-selection deployment: the chosen subset plus replica counts per
/// base model (unchosen models are undeployed; their memory hosts replicas
/// of chosen models, §III-B).
struct StaticDeployment {
  SubsetMask subset = 0;
  /// replicas[k] = number of deployed instances of model k (0 if k is not
  /// in `subset`).
  std::vector<int> replicas;
};

/// Packs leftover memory with replicas of the bottleneck model; the base
/// deployment has one instance of each subset member. Returns an empty
/// (subset == 0) deployment when the subset alone exceeds the budget.
StaticDeployment PackReplicas(const std::vector<ModelProfile>& profiles,
                              SubsetMask subset, double memory_budget_mb);

/// Greedy search over deployments (the paper: "we are able to find an
/// optimal deployment plan for static selection by greedy search"):
/// enumerate all subsets; pack leftover memory with replicas that raise the
/// bottleneck throughput; score by expected accuracy x expected processed
/// fraction under the given arrival rate.
StaticDeployment ChooseStaticDeployment(
    const std::vector<ModelProfile>& profiles, const AccuracyProfile& profile,
    double memory_budget_mb, double expected_rate_per_sec);

/// Serves every query with the deployment's fixed subset.
class StaticPolicy : public ServingPolicy {
 public:
  explicit StaticPolicy(StaticDeployment deployment);

  std::string name() const override { return "Static"; }

  ArrivalDecision OnArrival(const TracedQuery& query,
                            const ServerView& view) override;

  const StaticDeployment& deployment() const { return deployment_; }

 private:
  StaticDeployment deployment_;
};

}  // namespace schemble

#endif  // SCHEMBLE_BASELINES_STATIC_POLICY_H_
