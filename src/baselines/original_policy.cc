#include "baselines/original_policy.h"

namespace schemble {

ArrivalDecision OriginalPolicy::OnArrival(const TracedQuery& query,
                                          const ServerView& view) {
  const SubsetMask full = FullMask(view.num_models());
  if (view.allow_rejection &&
      view.EstimateCompletion(full) > query.deadline) {
    return ArrivalDecision::Reject();
  }
  return ArrivalDecision::Assign(full);
}

}  // namespace schemble
