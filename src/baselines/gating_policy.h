#ifndef SCHEMBLE_BASELINES_GATING_POLICY_H_
#define SCHEMBLE_BASELINES_GATING_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/policy.h"
#include "models/synthetic_task.h"
#include "nn/mlp.h"

namespace schemble {

struct GatingConfig {
  std::vector<int> hidden = {32, 16};
  TrainerOptions trainer;
  /// Selection: keep models whose softmax gate weight is at least
  /// `band_ratio` of the maximum; among the band, the cheapest model is
  /// executed (indistinguishable gates should not buy extra latency).
  double band_ratio = 0.50;
  /// A model whose absolute softmax weight exceeds this is always kept
  /// (clearly dominant gate).
  double absolute_keep = 0.60;
  uint64_t seed = 37;
};

/// Gating baseline (§III-B): a network maps the query to one weight per
/// base model, trained so that the gate-weighted average of the base
/// models' outputs matches the ensemble label (the paper's MoE-style
/// formulation, backpropagated through the weighted average). Selection
/// thresholds the gate weights.
///
/// As the paper observes (§V-C, Exp-6), deep models' preferences are seed
/// noise, so the trained gates mostly recover each model's *marginal*
/// quality instead of per-query routing. Selection keeps any clearly
/// dominant gate and otherwise executes the cheapest model whose gate is
/// within the band of the maximum — yielding Table I's Gating shape:
/// cheap, single-model execution with moderate accuracy and a low miss
/// rate.
class GatingPolicy : public ServingPolicy {
 public:
  static Result<GatingPolicy> Train(const SyntheticTask& task,
                                    const std::vector<Query>& history,
                                    const GatingConfig& config);

  std::string name() const override { return "Gating"; }

  ArrivalDecision OnArrival(const TracedQuery& query,
                            const ServerView& view) override;

  /// Softmax gate weights for a query (one per model).
  std::vector<double> GateWeights(const Query& query) const;

  /// Subset selected by thresholding the gate weights, ignoring queue state
  /// (offline budget experiments and tests). `latency_us[k]` breaks ties
  /// toward cheaper models.
  SubsetMask SelectSubset(const Query& query,
                          const std::vector<SimTime>& latency_us) const;

 private:
  GatingPolicy(const SyntheticTask* task, GatingConfig config,
               std::unique_ptr<Mlp> gate)
      : task_(task), config_(std::move(config)), gate_(std::move(gate)) {}

  const SyntheticTask* task_;
  GatingConfig config_;
  std::unique_ptr<Mlp> gate_;
};

}  // namespace schemble

#endif  // SCHEMBLE_BASELINES_GATING_POLICY_H_
