#ifndef SCHEMBLE_MODELS_TASK_FACTORY_H_
#define SCHEMBLE_MODELS_TASK_FACTORY_H_

#include <cstdint>

#include "models/synthetic_task.h"

namespace schemble {

/// Canonical task instances matching the paper's three applications plus the
/// CIFAR100-style study. Each bundles the TaskSpec with the corresponding
/// model profiles so benches, tests and examples agree on the setup.

/// Text matching (binary classification): BiLSTM + RoBERTa + BERT.
SyntheticTask MakeTextMatchingTask(uint64_t seed = 1001);

/// Vehicle counting (regression): EfficientDet-0 + YOLOv5l6 + YOLOX.
SyntheticTask MakeVehicleCountingTask(uint64_t seed = 2002);

/// Image retrieval (ranking over a candidate pool): DELG x 2 backbones.
SyntheticTask MakeImageRetrievalTask(uint64_t seed = 3003);

/// CIFAR100-style 100-way classification with six architectures (Fig. 5,
/// Exp-7). `model_seed` shifts every architecture's training seed so two
/// instances model "the same ensemble retrained with different seeds".
SyntheticTask MakeCifar100StyleTask(uint64_t seed = 4004,
                                    uint64_t model_seed = 404);

}  // namespace schemble

#endif  // SCHEMBLE_MODELS_TASK_FACTORY_H_
