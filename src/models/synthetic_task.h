#ifndef SCHEMBLE_MODELS_SYNTHETIC_TASK_H_
#define SCHEMBLE_MODELS_SYNTHETIC_TASK_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "models/model_profile.h"

namespace schemble {

/// Application families from the paper's evaluation.
enum class TaskType {
  kClassification,  // text matching (binary), CIFAR100-style (100-way)
  kRegression,      // vehicle counting
  kRetrieval,       // image retrieval over a candidate pool
};

/// Task-level knobs of the synthetic application.
struct TaskSpec {
  TaskType type = TaskType::kClassification;
  int num_classes = 2;
  /// Query feature vector layout: label-informative dims, then
  /// difficulty-informative dims, then pure-noise dims.
  int label_dims = 8;
  int difficulty_dims = 4;
  int noise_dims = 4;
  double feature_noise = 0.35;
  /// Regression: mean of the true value distribution and the tolerance that
  /// defines agreement with the ensemble output.
  double value_scale = 10.0;
  double regression_tolerance = 1.0;
  /// Retrieval: candidate-pool size and size of the relevant set.
  int num_candidates = 16;
  int relevant_top = 4;

  int feature_dim() const { return label_dims + difficulty_dims + noise_dims; }
};

/// Distribution of the latent difficulty h in [0,1] used when sampling
/// datasets and traces. kRealistic matches Fig. 4a's shape (most samples
/// easy, a long hard tail); the others feed Exp-3's distribution sweeps.
struct DifficultyDistribution {
  enum class Kind { kRealistic, kNormal, kGamma, kUniform, kConstant };
  Kind kind = Kind::kRealistic;
  /// kNormal/kConstant: the mean; kGamma: the mean (with `param` as scale);
  /// kUniform: the centre.
  double mean = 0.30;
  /// kNormal: stddev; kGamma: scale; kUniform: half-width.
  double param = 0.03;

  /// Draws a difficulty, clipped to [0, 1].
  double Sample(Rng& rng) const;

  static DifficultyDistribution Realistic();
  static DifficultyDistribution NormalWithMean(double mean,
                                               double stddev = 0.03);
  static DifficultyDistribution GammaWithMean(double mean, double scale = 0.1);
  static DifficultyDistribution UniformFull();
  static DifficultyDistribution Constant(double value);
};

/// One query with every base model's (pre-generated) behaviour on it.
///
/// Synthetic model inference = wait the model's latency, then look up the
/// stored output, which makes simulation cheap and perfectly reproducible
/// while preserving all the cross-model agreement structure Schemble
/// exploits.
struct Query {
  int64_t id = 0;
  /// Latent difficulty in [0,1]; hidden from all serving-time components
  /// (only the oracle baselines may read it).
  double difficulty = 0.0;
  /// Observable feature vector (input to predictors / DES / gating).
  std::vector<double> features;
  /// Classification ground truth (class index); unused otherwise.
  int true_label = 0;
  /// Regression ground truth; unused otherwise.
  double true_value = 0.0;
  /// Retrieval ground truth: indices of truly relevant candidates.
  std::vector<int> relevant;
  /// Per model: calibrated output vector (probabilities / {value} / scores).
  std::vector<std::vector<double>> model_outputs;
  /// Per model: raw (uncalibrated) logits; classification only, empty
  /// otherwise. Feeds the temperature-scaling stage.
  std::vector<std::vector<double>> model_logits;
  /// Cached full-ensemble reference output (the paper's "ground truth").
  std::vector<double> ensemble_output;
};

/// Generator and scorer for one synthetic application: the base models, the
/// reference (full-ensemble) aggregation, and the agreement metric used as
/// "accuracy" throughout the evaluation.
///
/// Immutable after construction; every const method is a pure function of
/// its arguments (generation re-derives per-query RNG state from the
/// seed), so one task instance is safely shared across the concurrent
/// runtime's threads.
class SyntheticTask {
 public:
  SyntheticTask(TaskSpec spec, std::vector<ModelProfile> profiles,
                uint64_t seed);

  const TaskSpec& spec() const { return spec_; }
  int num_models() const { return static_cast<int>(profiles_.size()); }
  const ModelProfile& profile(int k) const { return profiles_[k]; }
  const std::vector<ModelProfile>& profiles() const { return profiles_; }

  /// Dimension of a model/ensemble output vector for this task.
  int output_dim() const;

  /// Ensemble aggregation weights (normalized, proportional to base
  /// accuracy, as a stand-in for the learned aggregators in the paper).
  const std::vector<double>& ensemble_weights() const { return weights_; }

  /// Deterministically generates the query with the given id and difficulty:
  /// the same (task seed, model seeds, id) always yields the same query.
  Query GenerateQuery(int64_t id, double difficulty) const;

  /// Samples `n` queries with difficulties from `dist`. Ids start at
  /// `first_id`.
  std::vector<Query> GenerateDataset(int n, const DifficultyDistribution& dist,
                                     uint64_t dataset_seed,
                                     int64_t first_id = 0) const;

  /// Reference aggregation (weighted average) over a subset of model
  /// outputs; `model_indices` must be non-empty and sorted ascending.
  std::vector<double> AggregateSubset(const Query& query,
                                      const std::vector<int>& model_indices)
      const;

  /// Allocation-free AggregateSubset into a caller-reused buffer;
  /// bit-identical to the allocating overload.
  void AggregateSubsetInto(const Query& query,
                           const std::vector<int>& model_indices,
                           std::vector<double>* out) const;

  /// Agreement of `produced` with `reference` on this task: 1/0 for
  /// classification (argmax match) and regression (within tolerance), and
  /// average precision in [0,1] for retrieval (the mAP column).
  double MatchScore(const std::vector<double>& produced,
                    const std::vector<double>& reference) const;

  /// Agreement of `produced` with the *true* label/value/relevance (used for
  /// reporting true accuracy rather than ensemble-relative accuracy).
  double TrueScore(const std::vector<double>& produced,
                   const Query& query) const;

 private:
  TaskSpec spec_;
  std::vector<ModelProfile> profiles_;
  uint64_t seed_;
  std::vector<double> weights_;
  /// Class centres for the label-informative feature dims
  /// [num_classes][label_dims].
  std::vector<std::vector<double>> class_centers_;
};

/// Average precision of ranking `scores` against the `relevant` index set.
double AveragePrecision(const std::vector<double>& scores,
                        const std::vector<int>& relevant);

}  // namespace schemble

#endif  // SCHEMBLE_MODELS_SYNTHETIC_TASK_H_
