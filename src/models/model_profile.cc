#include "models/model_profile.h"

#include <algorithm>
#include <cmath>

namespace schemble {

BatchLatencyModel BatchLatencyModel::FromLatency(SimTime latency_us,
                                                 double base_fraction,
                                                 double coalescing,
                                                 int max_batch) {
  BatchLatencyModel m;
  m.base_us = static_cast<SimTime>(static_cast<double>(latency_us) *
                                   std::clamp(base_fraction, 0.0, 0.95));
  // Marginal absorbs the integer remainder so ServiceUs(1) == latency_us
  // exactly; batch_size=1 stays bit-identical to the unbatched path.
  m.marginal_us = latency_us - m.base_us;
  m.coalescing = std::clamp(coalescing, 0.0, 1.0);
  m.max_batch = std::max(1, max_batch);
  return m;
}

SimTime BatchLatencyModel::ServiceUs(int n) const {
  if (n <= 1) return base_us + marginal_us;
  const SimTime extra = static_cast<SimTime>(
      static_cast<double>(n - 1) * static_cast<double>(marginal_us) *
      coalescing);
  return base_us + marginal_us + extra;
}

SimTime BatchLatencyModel::BacklogUs(int64_t queued) const {
  if (queued <= 0) return 0;
  const int64_t full = queued / max_batch;
  const int rem = static_cast<int>(queued % max_batch);
  SimTime total = full * ServiceUs(max_batch);
  if (rem > 0) total += ServiceUs(rem);
  return total;
}

BatchLatencyModel ModelProfile::batch_latency() const {
  return BatchLatencyModel::FromLatency(latency_us, batch_base_fraction,
                                        batch_coalescing, max_batch);
}

double ModelProfile::CorrectProbability(double difficulty) const {
  // Sigmoid transition: deep models are reliably right on clearly-easy
  // inputs and fail mostly inside a hard regime, rather than degrading
  // linearly. The steep transition is what makes difficulty *predictable*:
  // knowing a query sits in the hard regime almost determines that small
  // subsets will disagree with the ensemble.
  const double h = std::clamp(difficulty, 0.0, 1.0);
  auto logistic = [](double z) { return 1.0 / (1.0 + std::exp(-z)); };
  const double lo = logistic((0.55 - 1.0) / 0.13);
  const double hi = logistic((0.55 - 0.0) / 0.13);
  const double t = (logistic((0.55 - h) / 0.13) - lo) / (hi - lo);
  return hard_accuracy + (base_accuracy - hard_accuracy) * t;
}

std::vector<ModelProfile> TextMatchingProfiles(uint64_t seed) {
  // Latencies/accuracies shaped after Fig. 1b: the ensemble is a bit more
  // accurate than BERT, BiLSTM is ~3x faster and noticeably weaker.
  std::vector<ModelProfile> profiles(3);
  profiles[0].name = "BiLSTM";
  profiles[0].latency_us = 15 * kMillisecond;
  profiles[0].memory_mb = 400.0;
  profiles[0].base_accuracy = 0.91;
  profiles[0].hard_accuracy = 0.35;
  profiles[0].overconfidence = 2.6;
  profiles[0].seed = seed + 1;

  profiles[1].name = "RoBERTa";
  profiles[1].latency_us = 45 * kMillisecond;
  profiles[1].memory_mb = 1300.0;
  profiles[1].base_accuracy = 0.95;
  profiles[1].hard_accuracy = 0.46;
  profiles[1].overconfidence = 1.8;
  profiles[1].seed = seed + 2;

  profiles[2].name = "BERT";
  profiles[2].latency_us = 50 * kMillisecond;
  profiles[2].memory_mb = 1250.0;
  profiles[2].base_accuracy = 0.96;
  profiles[2].hard_accuracy = 0.50;
  profiles[2].overconfidence = 1.5;
  profiles[2].seed = seed + 3;
  return profiles;
}

std::vector<ModelProfile> VehicleCountingProfiles(uint64_t seed) {
  std::vector<ModelProfile> profiles(3);
  profiles[0].name = "EfficientDet-0";
  profiles[0].latency_us = 28 * kMillisecond;
  profiles[0].memory_mb = 700.0;
  profiles[0].base_accuracy = 0.85;
  profiles[0].hard_accuracy = 0.45;
  profiles[0].regression_bias = -0.8;
  profiles[0].regression_noise = 1.6;
  profiles[0].seed = seed + 1;

  profiles[1].name = "YOLOv5l6";
  profiles[1].latency_us = 42 * kMillisecond;
  profiles[1].memory_mb = 1100.0;
  profiles[1].base_accuracy = 0.92;
  profiles[1].hard_accuracy = 0.52;
  profiles[1].regression_bias = 0.3;
  profiles[1].regression_noise = 1.0;
  profiles[1].seed = seed + 2;

  profiles[2].name = "YOLOX";
  profiles[2].latency_us = 36 * kMillisecond;
  profiles[2].memory_mb = 950.0;
  profiles[2].base_accuracy = 0.90;
  profiles[2].hard_accuracy = 0.50;
  profiles[2].regression_bias = 0.5;
  profiles[2].regression_noise = 1.2;
  profiles[2].seed = seed + 3;
  return profiles;
}

std::vector<ModelProfile> ImageRetrievalProfiles(uint64_t seed) {
  std::vector<ModelProfile> profiles(2);
  profiles[0].name = "DELG-R50";
  profiles[0].latency_us = 60 * kMillisecond;
  profiles[0].memory_mb = 1500.0;
  profiles[0].base_accuracy = 0.88;
  profiles[0].hard_accuracy = 0.45;
  profiles[0].retrieval_quality = 0.85;
  profiles[0].seed = seed + 1;

  profiles[1].name = "DELG-R101";
  profiles[1].latency_us = 95 * kMillisecond;
  profiles[1].memory_mb = 2200.0;
  profiles[1].base_accuracy = 0.92;
  profiles[1].hard_accuracy = 0.52;
  profiles[1].retrieval_quality = 1.0;
  profiles[1].seed = seed + 2;
  return profiles;
}

std::vector<ModelProfile> Cifar100StyleProfiles(uint64_t seed) {
  const char* names[6] = {"VGG16",       "ResNet18",    "ResNet101",
                          "DenseNet121", "InceptionV3", "ResNeXt50"};
  const double base[6] = {0.80, 0.83, 0.88, 0.87, 0.85, 0.88};
  const double hard[6] = {0.30, 0.34, 0.42, 0.40, 0.37, 0.42};
  const SimTime lat[6] = {9 * kMillisecond,  7 * kMillisecond,
                          22 * kMillisecond, 18 * kMillisecond,
                          15 * kMillisecond, 20 * kMillisecond};
  std::vector<ModelProfile> profiles(6);
  for (int i = 0; i < 6; ++i) {
    profiles[i].name = names[i];
    profiles[i].latency_us = lat[i];
    profiles[i].memory_mb = 500.0 + 150.0 * i;
    profiles[i].base_accuracy = base[i];
    profiles[i].hard_accuracy = hard[i];
    profiles[i].overconfidence = 1.6 + 0.15 * i;
    profiles[i].seed = seed + 10 * (i + 1);
  }
  return profiles;
}

double TotalMemoryMb(const std::vector<ModelProfile>& profiles) {
  double total = 0.0;
  for (const auto& p : profiles) total += p.memory_mb;
  return total;
}

}  // namespace schemble
