#include "models/synthetic_task.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/prob.h"
#include "nn/kernels.h"

namespace schemble {

namespace {

/// Probability that two wrong models pick the same wrong answer: shared
/// confusions are what make hard queries produce *correlated* disagreement
/// rather than independent noise.
constexpr double kSharedConfusionProb = 0.6;

}  // namespace

double DifficultyDistribution::Sample(Rng& rng) const {
  double h = mean;
  switch (kind) {
    case Kind::kRealistic:
      // Peak near zero with a long tail (Fig. 4a's shape).
      h = rng.Gamma(1.4, 0.16);
      break;
    case Kind::kNormal:
      h = rng.Normal(mean, param);
      break;
    case Kind::kGamma:
      // Gamma with the requested mean: shape = mean / scale.
      h = rng.Gamma(std::max(mean / param, 1e-3), param);
      break;
    case Kind::kUniform:
      h = rng.Uniform(mean - param, mean + param);
      break;
    case Kind::kConstant:
      h = mean;
      break;
  }
  return std::clamp(h, 0.0, 1.0);
}

DifficultyDistribution DifficultyDistribution::Realistic() {
  return DifficultyDistribution{};
}
DifficultyDistribution DifficultyDistribution::NormalWithMean(double mean,
                                                              double stddev) {
  return {Kind::kNormal, mean, stddev};
}
DifficultyDistribution DifficultyDistribution::GammaWithMean(double mean,
                                                             double scale) {
  return {Kind::kGamma, mean, scale};
}
DifficultyDistribution DifficultyDistribution::UniformFull() {
  return {Kind::kUniform, 0.5, 0.5};
}
DifficultyDistribution DifficultyDistribution::Constant(double value) {
  return {Kind::kConstant, value, 0.0};
}

SyntheticTask::SyntheticTask(TaskSpec spec, std::vector<ModelProfile> profiles,
                             uint64_t seed)
    : spec_(spec), profiles_(std::move(profiles)), seed_(seed) {
  SCHEMBLE_CHECK(!profiles_.empty());
  if (spec_.type == TaskType::kClassification) {
    SCHEMBLE_CHECK_GE(spec_.num_classes, 2);
  }
  if (spec_.type == TaskType::kRetrieval) {
    SCHEMBLE_CHECK_GE(spec_.num_candidates, 2);
    SCHEMBLE_CHECK_GE(spec_.relevant_top, 1);
    SCHEMBLE_CHECK_LE(spec_.relevant_top, spec_.num_candidates);
  }
  // Aggregation weights proportional to base accuracy.
  weights_.resize(profiles_.size());
  double total = 0.0;
  for (size_t k = 0; k < profiles_.size(); ++k) {
    weights_[k] = profiles_[k].base_accuracy;
    total += weights_[k];
  }
  for (double& w : weights_) w /= total;
  // Fixed class centres for the label-informative feature block.
  Rng center_rng(HashSeed("class-centers", seed_));
  const int classes =
      spec_.type == TaskType::kClassification ? spec_.num_classes : 1;
  class_centers_.resize(classes);
  for (auto& center : class_centers_) {
    center.resize(spec_.label_dims);
    for (double& v : center) v = center_rng.Normal(0.0, 1.0);
  }
}

int SyntheticTask::output_dim() const {
  switch (spec_.type) {
    case TaskType::kClassification:
      return spec_.num_classes;
    case TaskType::kRegression:
      return 1;
    case TaskType::kRetrieval:
      return spec_.num_candidates;
  }
  return 0;
}

Query SyntheticTask::GenerateQuery(int64_t id, double difficulty) const {
  Query q;
  q.id = id;
  q.difficulty = std::clamp(difficulty, 0.0, 1.0);
  Rng rng(HashSeed("query", seed_ ^ (static_cast<uint64_t>(id) *
                                     0x9e3779b97f4a7c15ull)));

  // Ground truth.
  switch (spec_.type) {
    case TaskType::kClassification:
      q.true_label = static_cast<int>(rng.UniformInt(0, spec_.num_classes - 1));
      break;
    case TaskType::kRegression:
      q.true_value = rng.Gamma(3.0, spec_.value_scale / 3.0);
      break;
    case TaskType::kRetrieval: {
      std::vector<int> perm = rng.Permutation(spec_.num_candidates);
      q.relevant.assign(perm.begin(), perm.begin() + spec_.relevant_top);
      std::sort(q.relevant.begin(), q.relevant.end());
      break;
    }
  }

  // Features: label block, difficulty block, noise block.
  q.features.reserve(spec_.feature_dim());
  const std::vector<double>& center =
      class_centers_[spec_.type == TaskType::kClassification ? q.true_label
                                                             : 0];
  for (int j = 0; j < spec_.label_dims; ++j) {
    double base = center[j];
    if (spec_.type == TaskType::kRegression) {
      base = (q.true_value / spec_.value_scale) * center[j];
    }
    q.features.push_back(base + rng.Normal(0.0, spec_.feature_noise));
  }
  for (int j = 0; j < spec_.difficulty_dims; ++j) {
    q.features.push_back(q.difficulty +
                         rng.Normal(0.0, 0.35 * spec_.feature_noise));
  }
  for (int j = 0; j < spec_.noise_dims; ++j) {
    q.features.push_back(rng.Normal(0.0, 1.0));
  }

  // Shared error structure across models (drawn from the query stream so
  // all models see the same confuser/target).
  int confuser_class = 0;
  if (spec_.type == TaskType::kClassification && spec_.num_classes > 1) {
    confuser_class =
        static_cast<int>(rng.UniformInt(0, spec_.num_classes - 2));
    if (confuser_class >= q.true_label) ++confuser_class;
  }
  const double shared_regression_shift =
      rng.Normal(0.0, 1.0);  // scaled per-model below
  std::vector<int> shared_decoys;
  if (spec_.type == TaskType::kRetrieval) {
    // Decoy candidates that hard queries make look relevant for everyone.
    std::vector<int> perm = rng.Permutation(spec_.num_candidates);
    for (int c : perm) {
      if (std::find(q.relevant.begin(), q.relevant.end(), c) ==
          q.relevant.end()) {
        shared_decoys.push_back(c);
      }
      if (static_cast<int>(shared_decoys.size()) >= spec_.relevant_top) break;
    }
  }

  // Per-model outputs from per-model seed streams.
  q.model_outputs.resize(profiles_.size());
  q.model_logits.resize(profiles_.size());
  for (size_t k = 0; k < profiles_.size(); ++k) {
    const ModelProfile& profile = profiles_[k];
    Rng model_rng(HashSeed(
        "model-output",
        profile.seed ^ (static_cast<uint64_t>(id) * 0xbf58476d1ce4e5b9ull)));
    switch (spec_.type) {
      case TaskType::kClassification: {
        std::vector<double> logits;
        // Shared confusion: with kSharedConfusionProb a wrong model picks
        // the query's confuser class.
        const double p_correct = profile.CorrectProbability(q.difficulty);
        int predicted = q.true_label;
        if (!model_rng.Bernoulli(p_correct)) {
          if (spec_.num_classes == 2) {
            predicted = 1 - q.true_label;
          } else if (model_rng.Bernoulli(kSharedConfusionProb)) {
            predicted = confuser_class;
          } else {
            predicted = static_cast<int>(
                model_rng.UniformInt(0, spec_.num_classes - 2));
            if (predicted >= q.true_label) ++predicted;
          }
        }
        // Confidence gap shrinks mildly with difficulty (deep models stay
        // confidently wrong on hard inputs); raw logits are scaled by the
        // model's overconfidence (its true calibration temperature).
        // Mistakes on easy inputs are borderline (weak gap) while mistakes
        // on hard inputs remain confident: that is what makes hard samples
        // produce large, correlated disagreement with the ensemble.
        double gap = std::max(0.35, 1.7 + 0.5 * (1.0 - q.difficulty) +
                                        model_rng.Normal(0.0, 0.30));
        if (predicted != q.true_label) {
          gap *= 0.25 + 0.75 * q.difficulty;
        }
        logits.assign(spec_.num_classes, 0.0);
        // Tail-logit jitter grows with difficulty: hard inputs produce
        // noisier, flatter output distributions (a continuous difficulty
        // signal on top of the discrete prediction flips). Overconfident
        // models additionally carry a difficulty-independent noise floor:
        // Eq. 1's per-model normalization and calibration cancel it, while
        // the raw ensemble-agreement metric mistakes it for difficulty.
        // Tail noise is clamped below the winning gap so it never flips the
        // predicted class (the flip decision was drawn above from the
        // accuracy curve).
        const double tail_noise = 0.05 + 0.80 * q.difficulty +
                                  0.20 * (profile.overconfidence - 1.0);
        for (int c = 0; c < spec_.num_classes; ++c) {
          if (c == predicted) continue;
          logits[c] =
              std::min(model_rng.Normal(0.0, tail_noise), 0.5 * gap);
        }
        logits[predicted] = gap + model_rng.Normal(0.0, 0.10);
        for (double& v : logits) v *= profile.overconfidence;
        q.model_logits[k] = logits;
        // Calibrated output: softmax at the true temperature.
        q.model_outputs[k] =
            SoftmaxWithTemperature(logits, profile.overconfidence);
        break;
      }
      case TaskType::kRegression: {
        const double h = q.difficulty;
        const double shared = shared_regression_shift *
                              (0.25 + 1.1 * h) * profile.regression_noise *
                              0.5;
        const double idio = model_rng.Normal(
            0.0, profile.regression_noise * (0.15 + 1.1 * h));
        const double value = std::max(
            0.0, q.true_value + profile.regression_bias * (0.2 + h) + shared +
                     idio);
        q.model_outputs[k] = {value};
        break;
      }
      case TaskType::kRetrieval: {
        const double h = q.difficulty;
        std::vector<double> scores(spec_.num_candidates, 0.0);
        // Per-model ranking noise is substantial even on easy queries:
        // individual retrieval backbones order the tail of the candidate
        // list idiosyncratically, which is why ensembling retrieval models
        // pays off (and why a single backbone's mAP against the ensemble
        // ranking sits well below 1).
        for (int c = 0; c < spec_.num_candidates; ++c) {
          scores[c] = model_rng.Normal(0.0, 0.85 * (0.55 + h));
        }
        const double signal =
            profile.retrieval_quality * (0.40 + 0.9 * (1.0 - h));
        for (int c : q.relevant) scores[c] += signal;
        // Hard queries push shared decoys up for every model.
        for (int c : shared_decoys) scores[c] += signal * 0.8 * h;
        q.model_outputs[k] = std::move(scores);
        break;
      }
    }
  }

  // Reference output of the full ensemble.
  std::vector<int> all(profiles_.size());
  for (size_t k = 0; k < all.size(); ++k) all[k] = static_cast<int>(k);
  q.ensemble_output = AggregateSubset(q, all);
  return q;
}

std::vector<Query> SyntheticTask::GenerateDataset(
    int n, const DifficultyDistribution& dist, uint64_t dataset_seed,
    int64_t first_id) const {
  Rng rng(HashSeed("dataset", seed_ ^ dataset_seed));
  std::vector<Query> queries;
  queries.reserve(n);
  for (int i = 0; i < n; ++i) {
    queries.push_back(GenerateQuery(first_id + i, dist.Sample(rng)));
  }
  return queries;
}

std::vector<double> SyntheticTask::AggregateSubset(
    const Query& query, const std::vector<int>& model_indices) const {
  std::vector<double> out;
  AggregateSubsetInto(query, model_indices, &out);
  return out;
}

void SyntheticTask::AggregateSubsetInto(const Query& query,
                                        const std::vector<int>& model_indices,
                                        std::vector<double>* out) const {
  SCHEMBLE_CHECK(!model_indices.empty());
  double total_weight = 0.0;
  out->assign(output_dim(), 0.0);
  for (int k : model_indices) {
    SCHEMBLE_CHECK_GE(k, 0);
    SCHEMBLE_CHECK_LT(k, num_models());
    const std::vector<double>& mo = query.model_outputs[k];
    SCHEMBLE_CHECK_EQ(mo.size(), out->size());
    kernels::Axpy(weights_[k], mo.data(), out->data(),
                  static_cast<int>(out->size()));
    total_weight += weights_[k];
  }
  for (double& v : *out) v /= total_weight;
}

double SyntheticTask::MatchScore(const std::vector<double>& produced,
                                 const std::vector<double>& reference) const {
  switch (spec_.type) {
    case TaskType::kClassification:
      return Argmax(produced) == Argmax(reference) ? 1.0 : 0.0;
    case TaskType::kRegression:
      return std::fabs(produced[0] - reference[0]) <=
                     spec_.regression_tolerance
                 ? 1.0
                 : 0.0;
    case TaskType::kRetrieval: {
      // Relevant set = reference's top-R candidates.
      std::vector<int> order(reference.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        return reference[a] > reference[b];
      });
      std::vector<int> relevant(order.begin(),
                                order.begin() + spec_.relevant_top);
      std::sort(relevant.begin(), relevant.end());
      return AveragePrecision(produced, relevant);
    }
  }
  return 0.0;
}

double SyntheticTask::TrueScore(const std::vector<double>& produced,
                                const Query& query) const {
  switch (spec_.type) {
    case TaskType::kClassification:
      return Argmax(produced) == query.true_label ? 1.0 : 0.0;
    case TaskType::kRegression:
      return std::fabs(produced[0] - query.true_value) <=
                     spec_.regression_tolerance
                 ? 1.0
                 : 0.0;
    case TaskType::kRetrieval:
      return AveragePrecision(produced, query.relevant);
  }
  return 0.0;
}

double AveragePrecision(const std::vector<double>& scores,
                        const std::vector<int>& relevant) {
  SCHEMBLE_CHECK(!relevant.empty());
  std::vector<int> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return scores[a] > scores[b]; });
  double hits = 0.0;
  double precision_sum = 0.0;
  for (size_t rank = 0; rank < order.size(); ++rank) {
    const bool is_relevant =
        std::binary_search(relevant.begin(), relevant.end(), order[rank]);
    if (is_relevant) {
      hits += 1.0;
      precision_sum += hits / static_cast<double>(rank + 1);
    }
  }
  return precision_sum / static_cast<double>(relevant.size());
}

}  // namespace schemble
