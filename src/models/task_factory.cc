#include "models/task_factory.h"

namespace schemble {

SyntheticTask MakeTextMatchingTask(uint64_t seed) {
  TaskSpec spec;
  spec.type = TaskType::kClassification;
  spec.num_classes = 2;
  spec.label_dims = 8;
  spec.difficulty_dims = 4;
  spec.noise_dims = 4;
  return SyntheticTask(spec, TextMatchingProfiles(seed + 100), seed);
}

SyntheticTask MakeVehicleCountingTask(uint64_t seed) {
  TaskSpec spec;
  spec.type = TaskType::kRegression;
  spec.value_scale = 10.0;
  spec.regression_tolerance = 1.0;
  spec.label_dims = 6;
  spec.difficulty_dims = 4;
  spec.noise_dims = 6;
  return SyntheticTask(spec, VehicleCountingProfiles(seed + 200), seed);
}

SyntheticTask MakeImageRetrievalTask(uint64_t seed) {
  TaskSpec spec;
  spec.type = TaskType::kRetrieval;
  spec.num_candidates = 16;
  spec.relevant_top = 4;
  spec.label_dims = 6;
  spec.difficulty_dims = 4;
  spec.noise_dims = 6;
  return SyntheticTask(spec, ImageRetrievalProfiles(seed + 300), seed);
}

SyntheticTask MakeCifar100StyleTask(uint64_t seed, uint64_t model_seed) {
  TaskSpec spec;
  spec.type = TaskType::kClassification;
  spec.num_classes = 100;
  spec.label_dims = 12;
  spec.difficulty_dims = 4;
  spec.noise_dims = 4;
  return SyntheticTask(spec, Cifar100StyleProfiles(model_seed), seed);
}

}  // namespace schemble
