#ifndef SCHEMBLE_MODELS_MODEL_PROFILE_H_
#define SCHEMBLE_MODELS_MODEL_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/simulation.h"

namespace schemble {

/// Static description of one synthetic base model: everything the serving
/// stack and the output generator need to stand in for a real deep model.
///
/// The accuracy pair (base_accuracy, hard_accuracy) defines a per-difficulty
/// correctness curve: on the easiest inputs the model matches the true label
/// with probability base_accuracy, decaying linearly to hard_accuracy on the
/// hardest. `overconfidence` is the model's true mis-calibration factor: raw
/// logits are scaled by it, so the matching calibration temperature is the
/// same value (recovered by TemperatureScaler in the pipeline).
struct ModelProfile {
  std::string name;
  SimTime latency_us = 20 * kMillisecond;
  /// Relative stddev of the service time (deep model execution time is
  /// "approximately constant" per the paper; a few percent of jitter).
  double latency_jitter = 0.03;
  double memory_mb = 1000.0;
  double base_accuracy = 0.9;
  double hard_accuracy = 0.5;
  double overconfidence = 2.0;
  /// Regression tasks: systematic bias and noise scale of predictions.
  double regression_bias = 0.0;
  double regression_noise = 1.0;
  /// Retrieval tasks: multiplier on the relevance signal.
  double retrieval_quality = 1.0;
  /// Identity of the trained weights. Two profiles with equal settings but
  /// different seeds behave like the same architecture retrained with a
  /// different random seed (high-variance "preferences", Fig. 5).
  uint64_t seed = 0;

  /// P(prediction == true label | difficulty), linear in difficulty.
  double CorrectProbability(double difficulty) const;
};

/// The text-matching ensemble from the paper's intelligent Q&A system
/// (Fig. 1b): BiLSTM + RoBERTa + BERT, binary classification.
std::vector<ModelProfile> TextMatchingProfiles(uint64_t seed = 101);

/// The vehicle-counting ensemble (UA-DETRAC): EfficientDet-0 + YOLOv5l6 +
/// YOLOX, regression on counts.
std::vector<ModelProfile> VehicleCountingProfiles(uint64_t seed = 202);

/// The image-retrieval ensemble (R1M): DELG with two backbones.
std::vector<ModelProfile> ImageRetrievalProfiles(uint64_t seed = 303);

/// Six heterogeneous image classifiers mirroring the CIFAR100 study used in
/// Fig. 5 and Exp-7 (VGG16, ResNet18, ResNet101, DenseNet121, InceptionV3,
/// ResNeXt50). `seed` shifts the training seed of every architecture.
std::vector<ModelProfile> Cifar100StyleProfiles(uint64_t seed = 404);

/// Total memory of a set of profiles; the deployment budget of the paper's
/// server equals the full ensemble's footprint.
double TotalMemoryMb(const std::vector<ModelProfile>& profiles);

}  // namespace schemble

#endif  // SCHEMBLE_MODELS_MODEL_PROFILE_H_
