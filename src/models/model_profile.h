#ifndef SCHEMBLE_MODELS_MODEL_PROFILE_H_
#define SCHEMBLE_MODELS_MODEL_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/simulation.h"

namespace schemble {

/// Batch latency curve of one base model: a batched execution of n
/// compatible tasks costs a fixed base (weight loading, kernel launch) plus
/// a full marginal cost for the first item and a coalesced fraction of the
/// marginal cost for every further item:
///
///   ServiceUs(n) = base_us + marginal_us * (1 + coalescing * (n - 1))
///
/// Calibrated from a per-task latency so ServiceUs(1) == latency_us exactly
/// (bit-identical to unbatched execution at batch size 1). `coalescing` in
/// (0, 1]: 1.0 means no batching benefit, small values approach the fixed
/// cost of a single item. Batches never exceed `max_batch` items.
struct BatchLatencyModel {
  SimTime base_us = 0;
  SimTime marginal_us = 0;
  double coalescing = 0.3;
  int max_batch = 16;

  /// Splits `latency_us` into base + marginal so that ServiceUs(1) is
  /// exactly latency_us (integer-safe: marginal absorbs the remainder).
  static BatchLatencyModel FromLatency(SimTime latency_us,
                                       double base_fraction,
                                       double coalescing, int max_batch);

  /// Service time of one batched execution of n tasks (n >= 1).
  SimTime ServiceUs(int n) const;

  /// Total service time to drain `queued` tasks in max_batch-sized
  /// executions (the batch-aware replacement for queued * latency_us).
  SimTime BacklogUs(int64_t queued) const;
};

/// Static description of one synthetic base model: everything the serving
/// stack and the output generator need to stand in for a real deep model.
///
/// The accuracy pair (base_accuracy, hard_accuracy) defines a per-difficulty
/// correctness curve: on the easiest inputs the model matches the true label
/// with probability base_accuracy, decaying linearly to hard_accuracy on the
/// hardest. `overconfidence` is the model's true mis-calibration factor: raw
/// logits are scaled by it, so the matching calibration temperature is the
/// same value (recovered by TemperatureScaler in the pipeline).
struct ModelProfile {
  std::string name;
  SimTime latency_us = 20 * kMillisecond;
  /// Relative stddev of the service time (deep model execution time is
  /// "approximately constant" per the paper; a few percent of jitter).
  double latency_jitter = 0.03;
  double memory_mb = 1000.0;
  double base_accuracy = 0.9;
  double hard_accuracy = 0.5;
  double overconfidence = 2.0;
  /// Regression tasks: systematic bias and noise scale of predictions.
  double regression_bias = 0.0;
  double regression_noise = 1.0;
  /// Retrieval tasks: multiplier on the relevance signal.
  double retrieval_quality = 1.0;
  /// Identity of the trained weights. Two profiles with equal settings but
  /// different seeds behave like the same architecture retrained with a
  /// different random seed (high-variance "preferences", Fig. 5).
  uint64_t seed = 0;
  /// Batch latency shape: fraction of latency_us that is fixed per
  /// execution, the coalescing factor paid by items beyond the first, and
  /// the largest batch one execution may carry. Together they define
  /// batch_latency(); defaults give a 16-item batch ~3.9x the cost of one
  /// task (~4x throughput headroom).
  double batch_base_fraction = 0.35;
  double batch_coalescing = 0.30;
  int max_batch = 16;

  /// P(prediction == true label | difficulty), linear in difficulty.
  double CorrectProbability(double difficulty) const;

  /// Batch latency curve calibrated so ServiceUs(1) == latency_us.
  BatchLatencyModel batch_latency() const;
};

/// The text-matching ensemble from the paper's intelligent Q&A system
/// (Fig. 1b): BiLSTM + RoBERTa + BERT, binary classification.
std::vector<ModelProfile> TextMatchingProfiles(uint64_t seed = 101);

/// The vehicle-counting ensemble (UA-DETRAC): EfficientDet-0 + YOLOv5l6 +
/// YOLOX, regression on counts.
std::vector<ModelProfile> VehicleCountingProfiles(uint64_t seed = 202);

/// The image-retrieval ensemble (R1M): DELG with two backbones.
std::vector<ModelProfile> ImageRetrievalProfiles(uint64_t seed = 303);

/// Six heterogeneous image classifiers mirroring the CIFAR100 study used in
/// Fig. 5 and Exp-7 (VGG16, ResNet18, ResNet101, DenseNet121, InceptionV3,
/// ResNeXt50). `seed` shifts the training seed of every architecture.
std::vector<ModelProfile> Cifar100StyleProfiles(uint64_t seed = 404);

/// Total memory of a set of profiles; the deployment budget of the paper's
/// server equals the full ensemble's footprint.
double TotalMemoryMb(const std::vector<ModelProfile>& profiles);

}  // namespace schemble

#endif  // SCHEMBLE_MODELS_MODEL_PROFILE_H_
