#ifndef SCHEMBLE_SIMCORE_SIMULATION_H_
#define SCHEMBLE_SIMCORE_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

namespace schemble {

/// Simulated time in microseconds. The serving experiments reason in
/// milliseconds; a microsecond clock keeps scheduler-overhead charging and
/// latency jitter exact.
using SimTime = int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000 * 1000;
constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

/// Converts milliseconds (possibly fractional) to SimTime.
constexpr SimTime MillisToSimTime(double ms) {
  return static_cast<SimTime>(ms * static_cast<double>(kMillisecond));
}
constexpr double SimTimeToMillis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}
constexpr double SimTimeToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Single-threaded discrete-event simulation driver.
///
/// Events scheduled for the same timestamp run in scheduling order
/// (stable FIFO), which makes every run bit-for-bit deterministic. Event
/// callbacks may schedule further events, including at the current time.
class Simulation {
 public:
  using EventFn = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when`; `when` must not be in
  /// the past. Returns an id usable with Cancel.
  int64_t ScheduleAt(SimTime when, EventFn fn);

  /// Schedules `fn` to run `delay` after now.
  int64_t ScheduleAfter(SimTime delay, EventFn fn);

  /// Cancels a pending event; returns false if it already ran or was
  /// cancelled.
  bool Cancel(int64_t event_id);

  /// Runs events until the queue drains or the next event is after
  /// `until`; the clock never advances beyond the last executed event.
  void Run(SimTime until = kSimTimeMax);

  /// Executes the next pending event; returns false when the queue is empty.
  bool Step();

  /// Number of events executed so far.
  int64_t executed_events() const { return executed_; }
  /// Number of currently pending (non-cancelled) events.
  int64_t pending_events() const {
    return static_cast<int64_t>(queue_.size()) - cancelled_pending_;
  }

 private:
  struct Event {
    SimTime when;
    int64_t seq;
    int64_t id;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  int64_t next_seq_ = 0;
  int64_t next_id_ = 1;
  int64_t executed_ = 0;
  int64_t cancelled_pending_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  // id -> callback; erased on execution/cancellation.
  std::unordered_map<int64_t, EventFn> handlers_;
};

}  // namespace schemble

#endif  // SCHEMBLE_SIMCORE_SIMULATION_H_
