#include "simcore/clock.h"

#include <thread>

#include "common/logging.h"

namespace schemble {

SteadyClock::SteadyClock(double speedup)
    : epoch_(std::chrono::steady_clock::now()), speedup_(speedup) {
  SCHEMBLE_CHECK_GT(speedup_, 0.0);
}

SimTime SteadyClock::Now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
  return static_cast<SimTime>(static_cast<double>(us) * speedup_);
}

void SteadyClock::SleepUntil(SimTime when) {
  // Convert the virtual deadline back to a real instant and block on the
  // OS timer; no polling. A loop guards against early wakeups and the
  // double rounding at high speedups.
  while (true) {
    const SimTime now = Now();
    if (now >= when) return;
    const auto real_us = static_cast<int64_t>(
        static_cast<double>(when - now) / speedup_);
    std::this_thread::sleep_for(std::chrono::microseconds(real_us + 1));
  }
}

SimTime ManualClock::Now() const {
  MutexLock lock(&mu_);
  return now_;
}

void ManualClock::SleepUntil(SimTime when) {
  MutexLock lock(&mu_);
  while (now_ < when) cv_.Wait(mu_);
}

void ManualClock::AdvanceTo(SimTime when) {
  {
    MutexLock lock(&mu_);
    SCHEMBLE_CHECK_GE(when, now_);
    now_ = when;
  }
  cv_.NotifyAll();
}

void ManualClock::Advance(SimTime delta) {
  SCHEMBLE_CHECK_GE(delta, 0);
  {
    MutexLock lock(&mu_);
    now_ += delta;
  }
  cv_.NotifyAll();
}

}  // namespace schemble
