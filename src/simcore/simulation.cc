#include "simcore/simulation.h"

#include <utility>

#include "common/logging.h"

namespace schemble {

int64_t Simulation::ScheduleAt(SimTime when, EventFn fn) {
  SCHEMBLE_CHECK_GE(when, now_);
  const int64_t id = next_id_++;
  queue_.push(Event{when, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

int64_t Simulation::ScheduleAfter(SimTime delay, EventFn fn) {
  SCHEMBLE_CHECK_GE(delay, 0);
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Simulation::Cancel(int64_t event_id) {
  auto it = handlers_.find(event_id);
  if (it == handlers_.end()) return false;
  handlers_.erase(it);
  ++cancelled_pending_;
  return true;
}

bool Simulation::Step() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    auto it = handlers_.find(ev.id);
    if (it == handlers_.end()) {
      // Cancelled event: discard its queue entry.
      --cancelled_pending_;
      continue;
    }
    EventFn fn = std::move(it->second);
    handlers_.erase(it);
    now_ = ev.when;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Simulation::Run(SimTime until) {
  while (!queue_.empty()) {
    // Skip cancelled entries without advancing the clock.
    const Event& top = queue_.top();
    if (handlers_.find(top.id) == handlers_.end()) {
      queue_.pop();
      --cancelled_pending_;
      continue;
    }
    if (top.when > until) return;
    Step();
  }
}

}  // namespace schemble
