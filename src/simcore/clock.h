#ifndef SCHEMBLE_SIMCORE_CLOCK_H_
#define SCHEMBLE_SIMCORE_CLOCK_H_

#include <chrono>

#include "common/thread_annotations.h"
#include "simcore/simulation.h"

namespace schemble {

/// Source of virtual time (SimTime microseconds) for components that must
/// run both under the deterministic discrete-event simulator and on real
/// hardware. The discrete-event `Simulation` keeps its own logical clock
/// (events never sleep); `Clock` serves the thread-based runtime, where
/// real threads block until a virtual instant passes.
///
/// Thread-safety contract: `Now` and `SleepUntil` may be called from any
/// thread concurrently.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current virtual time.
  virtual SimTime Now() const = 0;

  /// Blocks the calling thread until `Now() >= when`. Returns immediately
  /// when `when` is already in the past.
  virtual void SleepUntil(SimTime when) = 0;

  /// Blocks for `duration` of virtual time from now.
  void SleepFor(SimTime duration) { SleepUntil(Now() + duration); }
};

/// Wall-clock time source backed by std::chrono::steady_clock. Virtual
/// time advances `speedup` microseconds per real microsecond elapsed since
/// construction, so a trace spanning 60 virtual seconds replays in 60/s
/// real seconds. speedup == 1 is real time.
class SteadyClock final : public Clock {
 public:
  explicit SteadyClock(double speedup = 1.0);

  SimTime Now() const override;
  void SleepUntil(SimTime when) override;

  double speedup() const { return speedup_; }

 private:
  std::chrono::steady_clock::time_point epoch_;
  double speedup_;
};

/// Manually advanced clock for deterministic unit tests of blocking
/// runtime components: `SleepUntil` blocks on a condition variable until a
/// controlling thread calls `AdvanceTo`/`Advance` far enough.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(SimTime start = 0) : now_(start) {}

  SimTime Now() const override;
  void SleepUntil(SimTime when) override;

  /// Moves time forward and wakes every sleeper whose deadline passed.
  /// Time never moves backwards (CHECK-enforced).
  void AdvanceTo(SimTime when);
  void Advance(SimTime delta);

 private:
  /// Rank kClock: Now() is called under a domain mutex when the runtime
  /// runs on simulated time, so the clock orders after every scheduler
  /// lock (and before done_mu_, which never wraps a clock read).
  mutable Mutex mu_ SCHEMBLE_ACQUIRED_AFTER(lock_ranks::executor_queue_anchor){
      LockRank::kClock, "manual_clock.mu"};
  CondVar cv_;
  SimTime now_ SCHEMBLE_GUARDED_BY(mu_) = 0;
};

}  // namespace schemble

#endif  // SCHEMBLE_SIMCORE_CLOCK_H_
