#include "serving/pipeline.h"

#include "common/logging.h"

namespace schemble {

Result<std::unique_ptr<SchemblePipeline>> SchemblePipeline::Build(
    const SyntheticTask& task, const PipelineOptions& options) {
  auto pipeline = std::unique_ptr<SchemblePipeline>(new SchemblePipeline());
  pipeline->task_ = &task;
  pipeline->history_ = task.GenerateDataset(
      options.history_size, options.history_difficulty,
      HashSeed("pipeline-history", options.seed));

  auto scorer = DiscrepancyScorer::Fit(task, pipeline->history_);
  if (!scorer.ok()) return scorer.status();
  pipeline->scorer_ =
      std::make_unique<DiscrepancyScorer>(std::move(scorer).value());
  const std::vector<double> scores =
      pipeline->scorer_->ScoreAll(pipeline->history_);

  AccuracyProfile::Options profile_options;
  profile_options.bins = options.profile_bins;
  auto profile = AccuracyProfile::Build(task, pipeline->history_, scores,
                                        profile_options);
  if (!profile.ok()) return profile.status();
  pipeline->profile_ =
      std::make_unique<AccuracyProfile>(std::move(profile).value());

  auto predictor = DiscrepancyPredictor::Train(task, pipeline->history_,
                                               scores, options.predictor);
  if (!predictor.ok()) return predictor.status();
  pipeline->predictor_ =
      std::make_unique<DiscrepancyPredictor>(std::move(predictor).value());

  // Serving-time utility table: bin the history by the score the online
  // policy will actually see (the network's prediction) so that the reward
  // function is calibrated to serving conditions.
  std::vector<double> predicted_scores;
  predicted_scores.reserve(pipeline->history_.size());
  for (const Query& q : pipeline->history_) {
    predicted_scores.push_back(pipeline->predictor_->Predict(q));
  }
  auto predicted_profile = AccuracyProfile::Build(
      task, pipeline->history_, predicted_scores, profile_options);
  if (!predicted_profile.ok()) return predicted_profile.status();
  pipeline->predicted_profile_ = std::make_unique<AccuracyProfile>(
      std::move(predicted_profile).value());

  // Single-bin marginal table for the no-prediction ablation Schemble(t).
  AccuracyProfile::Options marginal_options = profile_options;
  marginal_options.bins = 1;
  auto marginal_profile = AccuracyProfile::Build(task, pipeline->history_,
                                                 scores, marginal_options);
  if (!marginal_profile.ok()) return marginal_profile.status();
  pipeline->marginal_profile_ = std::make_unique<AccuracyProfile>(
      std::move(marginal_profile).value());

  if (options.with_ensemble_agreement) {
    DiscrepancyConfig ea_config;
    ea_config.metric = DifficultyMetric::kEnsembleAgreement;
    auto ea_scorer = DiscrepancyScorer::Fit(task, pipeline->history_,
                                            ea_config);
    if (!ea_scorer.ok()) return ea_scorer.status();
    pipeline->ea_scorer_ =
        std::make_unique<DiscrepancyScorer>(std::move(ea_scorer).value());
    const std::vector<double> ea_scores =
        pipeline->ea_scorer_->ScoreAll(pipeline->history_);
    auto ea_profile = AccuracyProfile::Build(task, pipeline->history_,
                                             ea_scores, profile_options);
    if (!ea_profile.ok()) return ea_profile.status();
    pipeline->ea_profile_ =
        std::make_unique<AccuracyProfile>(std::move(ea_profile).value());
    PredictorConfig ea_predictor_config = options.predictor;
    ea_predictor_config.seed = options.predictor.seed + 1;
    auto ea_predictor = DiscrepancyPredictor::Train(
        task, pipeline->history_, ea_scores, ea_predictor_config);
    if (!ea_predictor.ok()) return ea_predictor.status();
    pipeline->ea_predictor_ = std::make_unique<DiscrepancyPredictor>(
        std::move(ea_predictor).value());
    std::vector<double> ea_predicted;
    ea_predicted.reserve(pipeline->history_.size());
    for (const Query& q : pipeline->history_) {
      ea_predicted.push_back(pipeline->ea_predictor_->Predict(q));
    }
    auto ea_predicted_profile = AccuracyProfile::Build(
        task, pipeline->history_, ea_predicted, profile_options);
    if (!ea_predicted_profile.ok()) return ea_predicted_profile.status();
    pipeline->ea_predicted_profile_ = std::make_unique<AccuracyProfile>(
        std::move(ea_predicted_profile).value());
  }
  return pipeline;
}

std::unique_ptr<SchemblePolicy> SchemblePipeline::MakeSchemble(
    SchembleConfig config) const {
  config.score_source = ScoreSource::kPredictor;
  return std::make_unique<SchemblePolicy>(*task_, *predicted_profile_,
                                          predictor_.get(), scorer_.get(),
                                          std::move(config));
}

std::unique_ptr<SchemblePolicy> SchemblePipeline::MakeSchembleEa(
    SchembleConfig config) const {
  SCHEMBLE_CHECK(ea_profile_ != nullptr);
  if (config.name == "Schemble") config.name = "Schemble(ea)";
  config.score_source = ScoreSource::kPredictor;
  return std::make_unique<SchemblePolicy>(*task_, *ea_predicted_profile_,
                                          ea_predictor_.get(),
                                          ea_scorer_.get(), std::move(config));
}

std::unique_ptr<SchemblePolicy> SchemblePipeline::MakeSchembleT(
    SchembleConfig config) const {
  if (config.name == "Schemble") config.name = "Schemble(t)";
  config.score_source = ScoreSource::kConstant;
  return std::make_unique<SchemblePolicy>(*task_, *marginal_profile_, nullptr,
                                          nullptr, std::move(config));
}

std::unique_ptr<SchemblePolicy> SchemblePipeline::MakeSchembleOracle(
    SchembleConfig config) const {
  if (config.name == "Schemble") config.name = "Schemble(Oracle)";
  config.score_source = ScoreSource::kOracle;
  return std::make_unique<SchemblePolicy>(*task_, *profile_, nullptr,
                                          scorer_.get(), std::move(config));
}

}  // namespace schemble
