#ifndef SCHEMBLE_SERVING_METRIC_SINK_H_
#define SCHEMBLE_SERVING_METRIC_SINK_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "serving/completion.h"
#include "serving/metrics.h"
#include "simcore/simulation.h"
#include "workload/trace.h"

namespace schemble {

/// Lock-free accumulator for concurrent completion recording: the atomic
/// counterpart of serving's RecordOutcome. The sharded runtime keeps one
/// sink per scheduler domain so finalizing threads never contend on a
/// shared cache line across domains, then merges the sinks into a single
/// ServingMetrics once the run drains.
///
/// Thread-safety: Record may be called concurrently from any number of
/// threads (all cells are atomics updated relaxed); AccumulateInto and the
/// scalar accessors are safe once recording has quiesced (after the run
/// joins its threads) — mid-run reads see per-counter-consistent
/// approximations only.
class MetricSink {
 public:
  /// `num_segments` arrival-time windows and models 0..`num_models`
  /// subset-size cells (index = aggregated subset size, 0 = missed).
  MetricSink(size_t num_segments, int num_models);

  MetricSink(const MetricSink&) = delete;
  MetricSink& operator=(const MetricSink&) = delete;

  /// Applies one scored outcome. `latency_slot`, when non-null and the
  /// query was processed, receives the latency sample; slots are disjoint
  /// per query, so the write needs no synchronization.
  void Record(const TracedQuery& tq, const QueryOutcome& outcome,
              SimTime segment_duration, double* latency_slot);

  /// Adds this sink's counters into `metrics` (segments and subset-size
  /// cells are grown as needed; latency samples are the caller's job —
  /// they live in the per-query slots).
  void AccumulateInto(ServingMetrics* metrics) const;

  // relaxed-ok: per-metric counter read; totals, not ordering
  int64_t total() const { return total_.load(std::memory_order_relaxed); }
  int64_t processed() const {
    return processed_.load(std::memory_order_relaxed);
  }
  int64_t missed() const { return missed_.load(std::memory_order_relaxed); }

 private:
  /// Per-segment metric cells updated lock-free from completion callbacks.
  struct AtomicSegment {
    std::atomic<int64_t> arrivals{0};
    std::atomic<int64_t> processed{0};
    std::atomic<int64_t> missed{0};
    std::atomic<int64_t> subset_size_sum{0};
    std::atomic<double> accuracy_sum{0.0};
    std::atomic<double> latency_ms_sum{0.0};
  };

  std::atomic<int64_t> total_{0};
  std::atomic<int64_t> processed_{0};
  std::atomic<int64_t> missed_{0};
  std::atomic<double> accuracy_sum_{0.0};
  std::atomic<double> processed_accuracy_sum_{0.0};
  std::vector<AtomicSegment> segments_;
  std::vector<std::atomic<int64_t>> subset_size_counts_;
};

}  // namespace schemble

#endif  // SCHEMBLE_SERVING_METRIC_SINK_H_
