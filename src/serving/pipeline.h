#ifndef SCHEMBLE_SERVING_PIPELINE_H_
#define SCHEMBLE_SERVING_PIPELINE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/aggregation.h"
#include "core/discrepancy.h"
#include "core/discrepancy_predictor.h"
#include "core/profiling.h"
#include "core/schemble_policy.h"
#include "models/synthetic_task.h"

namespace schemble {

struct PipelineOptions {
  /// Historical queries used for calibration, profiling and training.
  int history_size = 4000;
  /// Difficulty distribution of the history (uniform covers every bin).
  DifficultyDistribution history_difficulty =
      DifficultyDistribution::UniformFull();
  /// Profile bins.
  int profile_bins = 10;
  /// Also fit the ensemble-agreement variant (Schemble(ea)).
  bool with_ensemble_agreement = false;
  PredictorConfig predictor;
  uint64_t seed = 51;
};

/// Everything Schemble trains offline for one task, bundled so that
/// benches, examples and tests share one construction path: history data,
/// the discrepancy scorer (+ optional ensemble-agreement variant), the
/// accuracy profiles, and the trained prediction network.
class SchemblePipeline {
 public:
  /// `task` must outlive the pipeline.
  static Result<std::unique_ptr<SchemblePipeline>> Build(
      const SyntheticTask& task, const PipelineOptions& options);

  const SyntheticTask& task() const { return *task_; }
  const std::vector<Query>& history() const { return history_; }
  const DiscrepancyScorer& scorer() const { return *scorer_; }
  /// Utility table binned by ground-truth discrepancy score (oracle use,
  /// offline experiments).
  const AccuracyProfile& profile() const { return *profile_; }
  /// Utility table binned by the *predicted* score, matching serving-time
  /// conditions (what the online Schemble policy reads).
  const AccuracyProfile& predicted_profile() const {
    return *predicted_profile_;
  }
  const DiscrepancyPredictor& predictor() const { return *predictor_; }
  bool has_ea() const { return ea_profile_ != nullptr; }
  const DiscrepancyScorer& ea_scorer() const { return *ea_scorer_; }
  const AccuracyProfile& ea_profile() const { return *ea_profile_; }

  /// Standard Schemble policy (predictor-driven, DP scheduler).
  std::unique_ptr<SchemblePolicy> MakeSchemble(SchembleConfig config) const;
  /// Schemble(ea): the ensemble-agreement difficulty metric.
  std::unique_ptr<SchemblePolicy> MakeSchembleEa(SchembleConfig config) const;
  /// Schemble(t): no difficulty prediction (constant score).
  std::unique_ptr<SchemblePolicy> MakeSchembleT(SchembleConfig config) const;
  /// Oracle variant: ground-truth discrepancy scores.
  std::unique_ptr<SchemblePolicy> MakeSchembleOracle(
      SchembleConfig config) const;

 private:
  SchemblePipeline() = default;

  const SyntheticTask* task_ = nullptr;
  std::vector<Query> history_;
  std::unique_ptr<DiscrepancyScorer> scorer_;
  std::unique_ptr<AccuracyProfile> profile_;
  std::unique_ptr<AccuracyProfile> predicted_profile_;
  std::unique_ptr<AccuracyProfile> marginal_profile_;  // 1 bin, Schemble(t)
  std::unique_ptr<DiscrepancyPredictor> predictor_;
  std::unique_ptr<DiscrepancyScorer> ea_scorer_;
  std::unique_ptr<AccuracyProfile> ea_profile_;
  std::unique_ptr<AccuracyProfile> ea_predicted_profile_;
  std::unique_ptr<DiscrepancyPredictor> ea_predictor_;
};

}  // namespace schemble

#endif  // SCHEMBLE_SERVING_PIPELINE_H_
