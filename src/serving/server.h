#ifndef SCHEMBLE_SERVING_SERVER_H_
#define SCHEMBLE_SERVING_SERVER_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "core/aggregation.h"
#include "core/policy.h"
#include "models/synthetic_task.h"
#include "serving/completion.h"
#include "serving/metrics.h"
#include "simcore/simulation.h"
#include "workload/trace.h"

namespace schemble {

struct ServerOptions {
  /// One entry per deployed executor: the base-model index it serves. An
  /// empty list deploys exactly one executor per base model (the paper's
  /// default pipeline); static selection passes replicas here.
  std::vector<int> executor_models;
  /// Rejection mode (Exp-1): queries that cannot produce any output by
  /// their deadline are dropped and counted as misses. Force mode (Exp-2)
  /// processes everything and reports latency.
  bool allow_rejection = true;
  /// Window for the per-segment series.
  SimTime segment_duration = 60 * kSecond;
  /// Optional aggregation module; when null, the task's reference weighted
  /// average over available outputs is used.
  const Aggregator* aggregator = nullptr;
  uint64_t seed = 97;
};

/// Discrete-event simulation of the ensemble-serving node: per-executor
/// FIFO task queues, non-preemptive execution with jittered service times,
/// the central query buffer, deadline bookkeeping, aggregation of whatever
/// outputs are ready, and metric collection. All decisions are delegated to
/// a ServingPolicy.
class EnsembleServer {
 public:
  EnsembleServer(const SyntheticTask& task, ServingPolicy* policy,
                 ServerOptions options);

  /// Replays the trace to completion and returns the metrics. One-shot:
  /// the simulation clock only moves forward, so construct a fresh server
  /// per run (CHECK-enforced).
  ServingMetrics Run(const QueryTrace& trace);

 private:
  struct Executor {
    int model = 0;
    bool busy = false;
    SimTime busy_until = 0;
    std::deque<int> queue;  // query indices awaiting this executor
  };

  struct QueryState {
    SubsetMask assigned = 0;
    SubsetMask done = 0;
    bool buffered = false;
    bool finalized = false;
    SimTime last_done_time = 0;
  };

  void HandleArrival(int index);
  /// Applies `subset` for query `index`; `overhead` delays the enqueue.
  void Commit(int index, SubsetMask subset, SimTime overhead);
  void EnqueueTasks(int index, SubsetMask subset);
  void TryStart(int executor_id);
  void HandleCompletion(int executor_id, int index);
  void HandleDeadline(int index);
  void DrainBuffer();
  void Finalize(int index, SubsetMask outputs, SimTime completion);
  ServerView BuildView() const;
  SimTime DrawServiceTime(int model);
  bool AnyExecutorIdle() const;

  const SyntheticTask* task_;
  ServingPolicy* policy_;
  ServerOptions options_;
  Simulation sim_;
  Rng rng_;
  const QueryTrace* trace_ = nullptr;
  std::vector<Executor> executors_;
  std::vector<QueryState> states_;
  std::vector<int> buffer_;  // query indices in arrival order
  std::unordered_map<int64_t, int> id_to_index_;
  ServingMetrics metrics_;
  /// Reused across every Finalize call: the single-threaded simulator
  /// finalizes queries one at a time, so one workspace serves the run.
  CompletionWorkspace completion_ws_;
  bool draining_ = false;
  bool ran_ = false;
};

}  // namespace schemble

#endif  // SCHEMBLE_SERVING_SERVER_H_
