#ifndef SCHEMBLE_SERVING_COMPLETION_H_
#define SCHEMBLE_SERVING_COMPLETION_H_

#include "core/aggregation.h"
#include "core/profiling.h"
#include "serving/metrics.h"
#include "simcore/simulation.h"
#include "workload/trace.h"

namespace schemble {

/// Scored result of one finished (or missed) query. Produced by
/// EvaluateCompletion; consumed by the discrete-event server's metric
/// bookkeeping and by the concurrent runtime's atomic recorder, so both
/// execution engines share a single aggregation/accuracy code path.
struct QueryOutcome {
  SubsetMask outputs = 0;
  int subset_size = 0;
  /// Agreement with the full ensemble's output; 0 when missed.
  double match = 0.0;
  double latency_ms = 0.0;
  bool processed = false;
  bool missed = false;
};

/// Reusable scratch for the per-query completion path. One per thread: the
/// concurrent runtime's workers each keep their own so finalizing a query
/// (subset unpack, KNN fill, aggregation) allocates nothing in steady
/// state.
struct CompletionWorkspace {
  Aggregator::Workspace aggregation;
  std::vector<int> subset;      // no-aggregator reference-average path
  std::vector<double> result;   // aggregated output vector
};

/// Aggregates whatever model outputs completed for `tq` and scores the
/// result. `outputs == 0` means nothing finished by the deadline (a miss).
/// When `aggregator` is null the task's reference weighted average is
/// used. In force mode (`allow_rejection == false`) a query is processed
/// *and* counted as missed when it finished after its deadline.
///
/// Thread-safety: pure function of its arguments plus caller-owned
/// scratch; `task` and `aggregator` are only read through const,
/// state-free paths, so concurrent calls with distinct workspaces are
/// safe.
QueryOutcome EvaluateCompletion(const SyntheticTask& task,
                                const Aggregator* aggregator,
                                const TracedQuery& tq, SubsetMask outputs,
                                SimTime completion, bool allow_rejection,
                                CompletionWorkspace* ws);

/// Convenience overload backed by a per-thread workspace.
QueryOutcome EvaluateCompletion(const SyntheticTask& task,
                                const Aggregator* aggregator,
                                const TracedQuery& tq, SubsetMask outputs,
                                SimTime completion, bool allow_rejection);

/// Applies `outcome` to the aggregate metrics and the arrival-time segment
/// window. Not thread-safe; the concurrent runtime keeps its own atomic
/// counters and converts at the end of a run.
void RecordOutcome(const QueryOutcome& outcome, const TracedQuery& tq,
                   SimTime segment_duration, ServingMetrics* metrics);

}  // namespace schemble

#endif  // SCHEMBLE_SERVING_COMPLETION_H_
