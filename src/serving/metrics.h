#ifndef SCHEMBLE_SERVING_METRICS_H_
#define SCHEMBLE_SERVING_METRICS_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "simcore/simulation.h"

namespace schemble {

/// Per-time-window serving statistics (the per-segment curves of
/// Fig. 1a / 9 / 14).
struct SegmentStats {
  int64_t arrivals = 0;
  int64_t processed = 0;
  int64_t missed = 0;
  double accuracy_sum = 0.0;
  double latency_ms_sum = 0.0;
  /// Sum of executed-subset sizes over processed queries: mean subset size
  /// per segment shows adaptive shrinking during bursts (Fig. 14).
  int64_t subset_size_sum = 0;

  double deadline_miss_rate() const {
    return arrivals > 0 ? static_cast<double>(missed) / arrivals : 0.0;
  }
  double accuracy() const {
    return arrivals > 0 ? accuracy_sum / arrivals : 0.0;
  }
  double mean_latency_ms() const {
    return processed > 0 ? latency_ms_sum / processed : 0.0;
  }
  double mean_subset_size() const {
    return processed > 0
               ? static_cast<double>(subset_size_sum) / processed
               : 0.0;
  }
};

/// Aggregate results of one serving run. "Accuracy" is agreement with the
/// full ensemble's output (the paper's ground truth); queries that miss
/// their deadline count as incorrect.
struct ServingMetrics {
  int64_t total = 0;
  int64_t processed = 0;
  int64_t missed = 0;
  /// subset_size_counts[s] = queries whose final result aggregated s model
  /// outputs (0 = missed); shows how policies shrink ensembles under load.
  std::vector<int64_t> subset_size_counts;
  double accuracy_sum = 0.0;            // over all queries (missed -> 0)
  double processed_accuracy_sum = 0.0;  // over processed queries only
  SampleSet latency_ms;                 // processed queries
  std::vector<SegmentStats> segments;

  double accuracy() const {
    return total > 0 ? accuracy_sum / total : 0.0;
  }
  double deadline_miss_rate() const {
    return total > 0 ? static_cast<double>(missed) / total : 0.0;
  }
  double processed_accuracy() const {
    return processed > 0 ? processed_accuracy_sum / processed : 0.0;
  }
  double mean_latency_ms() const { return latency_ms.mean(); }
  double p95_latency_ms() const { return latency_ms.Quantile(0.95); }
  double max_latency_ms() const { return latency_ms.max(); }
};

}  // namespace schemble

#endif  // SCHEMBLE_SERVING_METRICS_H_
