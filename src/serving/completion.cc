#include "serving/completion.h"

#include <vector>

namespace schemble {

QueryOutcome EvaluateCompletion(const SyntheticTask& task,
                                const Aggregator* aggregator,
                                const TracedQuery& tq, SubsetMask outputs,
                                SimTime completion, bool allow_rejection,
                                CompletionWorkspace* ws) {
  QueryOutcome outcome;
  outcome.outputs = outputs;
  outcome.subset_size = SubsetSize(outputs);
  if (outputs == 0) {
    outcome.missed = true;
    return outcome;
  }
  if (aggregator != nullptr) {
    aggregator->AggregateInto(tq.query, outputs, &ws->aggregation,
                              &ws->result);
  } else {
    SubsetModelsInto(outputs, &ws->subset);
    task.AggregateSubsetInto(tq.query, ws->subset, &ws->result);
  }
  outcome.processed = true;
  outcome.match = task.MatchScore(ws->result, tq.query.ensemble_output);
  outcome.latency_ms = SimTimeToMillis(completion - tq.arrival_time);
  outcome.missed = !allow_rejection && completion > tq.deadline;
  return outcome;
}

QueryOutcome EvaluateCompletion(const SyntheticTask& task,
                                const Aggregator* aggregator,
                                const TracedQuery& tq, SubsetMask outputs,
                                SimTime completion, bool allow_rejection) {
  thread_local CompletionWorkspace ws;
  return EvaluateCompletion(task, aggregator, tq, outputs, completion,
                            allow_rejection, &ws);
}

void RecordOutcome(const QueryOutcome& outcome, const TracedQuery& tq,
                   SimTime segment_duration, ServingMetrics* metrics) {
  const size_t segment =
      static_cast<size_t>(tq.arrival_time / segment_duration);
  if (segment >= metrics->segments.size()) {
    metrics->segments.resize(segment + 1);
  }
  SegmentStats& seg = metrics->segments[segment];
  ++metrics->total;
  ++seg.arrivals;
  const size_t size = static_cast<size_t>(outcome.subset_size);
  if (metrics->subset_size_counts.size() <= size) {
    metrics->subset_size_counts.resize(size + 1, 0);
  }
  ++metrics->subset_size_counts[size];

  if (outcome.processed) {
    ++metrics->processed;
    ++seg.processed;
    metrics->processed_accuracy_sum += outcome.match;
    metrics->accuracy_sum += outcome.match;
    seg.accuracy_sum += outcome.match;
    metrics->latency_ms.Add(outcome.latency_ms);
    seg.latency_ms_sum += outcome.latency_ms;
    seg.subset_size_sum += outcome.subset_size;
  }
  if (outcome.missed) {
    ++metrics->missed;
    ++seg.missed;
  }
}

}  // namespace schemble
