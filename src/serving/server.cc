#include "serving/server.h"

#include <algorithm>

#include "common/logging.h"
#include "serving/completion.h"

namespace schemble {

EnsembleServer::EnsembleServer(const SyntheticTask& task,
                               ServingPolicy* policy, ServerOptions options)
    : task_(&task),
      policy_(policy),
      options_(std::move(options)),
      rng_(HashSeed("server", options_.seed)) {
  SCHEMBLE_CHECK(policy_ != nullptr);
  if (options_.executor_models.empty()) {
    for (int k = 0; k < task_->num_models(); ++k) {
      options_.executor_models.push_back(k);
    }
  }
  for (int model : options_.executor_models) {
    SCHEMBLE_CHECK_GE(model, 0);
    SCHEMBLE_CHECK_LT(model, task_->num_models());
    Executor e;
    e.model = model;
    executors_.push_back(e);
  }
}

SimTime EnsembleServer::DrawServiceTime(int model) {
  const ModelProfile& profile = task_->profile(model);
  const double factor =
      std::max(0.2, 1.0 + profile.latency_jitter * rng_.Normal());
  return static_cast<SimTime>(
      static_cast<double>(profile.latency_us) * factor);
}

bool EnsembleServer::AnyExecutorIdle() const {
  for (const Executor& e : executors_) {
    if (!e.busy && e.queue.empty()) return true;
  }
  return false;
}

ServerView EnsembleServer::BuildView() const {
  ServerView view;
  view.now = sim_.now();
  view.allow_rejection = options_.allow_rejection;
  view.model_exec_time.resize(task_->num_models());
  view.model_available_at.assign(task_->num_models(), kSimTimeMax);
  for (int k = 0; k < task_->num_models(); ++k) {
    view.model_exec_time[k] = task_->profile(k).latency_us;
  }
  for (size_t e = 0; e < executors_.size(); ++e) {
    const Executor& ex = executors_[e];
    SimTime available = ex.busy ? ex.busy_until : sim_.now();
    available +=
        static_cast<SimTime>(ex.queue.size()) *
        task_->profile(ex.model).latency_us;
    view.executors.push_back({static_cast<int>(e), ex.model, available,
                              static_cast<int>(ex.queue.size())});
    view.model_available_at[ex.model] =
        std::min(view.model_available_at[ex.model], available);
  }
  return view;
}

ServingMetrics EnsembleServer::Run(const QueryTrace& trace) {
  SCHEMBLE_CHECK(!ran_) << "EnsembleServer::Run is one-shot";
  ran_ = true;
  trace_ = &trace;
  states_.assign(trace.items.size(), QueryState{});
  metrics_ = ServingMetrics{};
  metrics_.latency_ms.Reserve(trace.items.size());
  buffer_.clear();
  id_to_index_.clear();
  for (size_t i = 0; i < trace.items.size(); ++i) {
    id_to_index_[trace.items[i].query.id] = static_cast<int>(i);
  }

  const SimTime processing_delay = policy_->ArrivalProcessingDelay();
  for (size_t i = 0; i < trace.items.size(); ++i) {
    const int index = static_cast<int>(i);
    sim_.ScheduleAt(trace.items[i].arrival_time + processing_delay,
                    [this, index] { HandleArrival(index); });
    if (options_.allow_rejection) {
      sim_.ScheduleAt(trace.items[i].deadline,
                      [this, index] { HandleDeadline(index); });
    }
  }
  sim_.Run();

  // Force mode: the buffer must have drained through completion events.
  SCHEMBLE_CHECK(buffer_.empty());
  for (size_t i = 0; i < states_.size(); ++i) {
    SCHEMBLE_CHECK(states_[i].finalized) << "query " << i << " unfinalized";
  }
  return metrics_;
}

void EnsembleServer::HandleArrival(int index) {
  const TracedQuery& tq = trace_->items[index];
  QueryState& state = states_[index];
  if (state.finalized) return;  // deadline expired during predictor delay
  const ServerView view = BuildView();
  const ArrivalDecision decision = policy_->OnArrival(tq, view);
  switch (decision.action) {
    case ArrivalDecision::Action::kAssign:
      SCHEMBLE_CHECK_NE(decision.subset, 0u);
      Commit(index, decision.subset, 0);
      break;
    case ArrivalDecision::Action::kReject:
      Finalize(index, 0, sim_.now());
      break;
    case ArrivalDecision::Action::kBuffer:
      state.buffered = true;
      buffer_.push_back(index);
      break;
  }
  if (!buffer_.empty() && AnyExecutorIdle()) DrainBuffer();
}

void EnsembleServer::Commit(int index, SubsetMask subset, SimTime overhead) {
  QueryState& state = states_[index];
  SCHEMBLE_CHECK_EQ(state.assigned, 0u);
  SCHEMBLE_CHECK_NE(subset, 0u);
  state.assigned = subset;
  if (state.buffered) {
    state.buffered = false;
    buffer_.erase(std::find(buffer_.begin(), buffer_.end(), index));
  }
  if (overhead > 0) {
    sim_.ScheduleAfter(overhead,
                       [this, index, subset] { EnqueueTasks(index, subset); });
  } else {
    EnqueueTasks(index, subset);
  }
}

void EnsembleServer::EnqueueTasks(int index, SubsetMask subset) {
  if (states_[index].finalized) return;  // deadline passed while waiting
  for (int k = 0; k < task_->num_models(); ++k) {
    if (!(subset & (SubsetMask{1} << k))) continue;
    // Least-loaded executor of model k.
    int best = -1;
    SimTime best_available = kSimTimeMax;
    for (size_t e = 0; e < executors_.size(); ++e) {
      const Executor& ex = executors_[e];
      if (ex.model != k) continue;
      SimTime available = ex.busy ? ex.busy_until : sim_.now();
      available += static_cast<SimTime>(ex.queue.size()) *
                   task_->profile(k).latency_us;
      if (available < best_available) {
        best_available = available;
        best = static_cast<int>(e);
      }
    }
    SCHEMBLE_CHECK_GE(best, 0) << "no executor deployed for model " << k;
    executors_[best].queue.push_back(index);
    TryStart(best);
  }
}

void EnsembleServer::TryStart(int executor_id) {
  Executor& ex = executors_[executor_id];
  if (ex.busy || ex.queue.empty()) return;
  const int index = ex.queue.front();
  ex.queue.pop_front();
  ex.busy = true;
  const SimTime service = DrawServiceTime(ex.model);
  ex.busy_until = sim_.now() + service;
  sim_.ScheduleAt(ex.busy_until, [this, executor_id, index] {
    HandleCompletion(executor_id, index);
  });
}

void EnsembleServer::HandleCompletion(int executor_id, int index) {
  Executor& ex = executors_[executor_id];
  ex.busy = false;
  QueryState& state = states_[index];
  if (!state.finalized) {
    state.done |= SubsetMask{1} << ex.model;
    state.last_done_time = sim_.now();
    if (state.done == state.assigned) {
      Finalize(index, state.done, sim_.now());
    }
  }
  TryStart(executor_id);
  if (!buffer_.empty() && AnyExecutorIdle()) DrainBuffer();
}

void EnsembleServer::HandleDeadline(int index) {
  QueryState& state = states_[index];
  if (state.finalized) return;
  if (state.done != 0) {
    // Partial results are served with whatever completed by the deadline.
    Finalize(index, state.done, state.last_done_time);
    return;
  }
  // No output by the deadline: miss. Drop from the buffer if still there.
  if (state.buffered) {
    state.buffered = false;
    buffer_.erase(std::find(buffer_.begin(), buffer_.end(), index));
  }
  Finalize(index, 0, sim_.now());
}

void EnsembleServer::DrainBuffer() {
  if (draining_) return;
  draining_ = true;
  const ServerView view = BuildView();
  std::vector<const TracedQuery*> pointers;
  pointers.reserve(buffer_.size());
  for (int index : buffer_) pointers.push_back(&trace_->items[index]);
  const PolicyOutput output = policy_->OnIdle(view, pointers);
  for (const BufferedAssignment& assignment : output.assignments) {
    auto it = id_to_index_.find(assignment.query_id);
    SCHEMBLE_CHECK(it != id_to_index_.end());
    SCHEMBLE_CHECK_NE(assignment.subset, 0u);
    Commit(it->second, assignment.subset, output.overhead_us);
  }
  draining_ = false;
}

void EnsembleServer::Finalize(int index, SubsetMask outputs,
                              SimTime completion) {
  const TracedQuery& tq = trace_->items[index];
  QueryState& state = states_[index];
  SCHEMBLE_CHECK(!state.finalized);
  state.finalized = true;

  const QueryOutcome outcome =
      EvaluateCompletion(*task_, options_.aggregator, tq, outputs, completion,
                         options_.allow_rejection, &completion_ws_);
  RecordOutcome(outcome, tq, options_.segment_duration, &metrics_);
}

}  // namespace schemble
