#include "serving/metric_sink.h"

#include "common/logging.h"

namespace schemble {

MetricSink::MetricSink(size_t num_segments, int num_models)
    : segments_(num_segments),
      subset_size_counts_(static_cast<size_t>(num_models) + 1) {
  SCHEMBLE_CHECK_GT(num_segments, 0u);
  SCHEMBLE_CHECK_GE(num_models, 0);
}

void MetricSink::Record(const TracedQuery& tq, const QueryOutcome& outcome,
                        SimTime segment_duration, double* latency_slot) {
  // relaxed-ok: per-metric counter; aggregated after the run joins its threads
  total_.fetch_add(1, std::memory_order_relaxed);
  subset_size_counts_[static_cast<size_t>(outcome.subset_size)].fetch_add(
      1, std::memory_order_relaxed);
  const size_t segment =
      static_cast<size_t>(tq.arrival_time / segment_duration);
  SCHEMBLE_DCHECK(segment < segments_.size());
  AtomicSegment& seg = segments_[segment];
  // relaxed-ok: per-metric counter; aggregated after the run joins its threads
  seg.arrivals.fetch_add(1, std::memory_order_relaxed);
  if (outcome.processed) {
    processed_.fetch_add(1, std::memory_order_relaxed);
    seg.processed.fetch_add(1, std::memory_order_relaxed);
    accuracy_sum_.fetch_add(outcome.match, std::memory_order_relaxed);
    processed_accuracy_sum_.fetch_add(outcome.match,
                                      std::memory_order_relaxed);
    seg.accuracy_sum.fetch_add(outcome.match, std::memory_order_relaxed);
    seg.latency_ms_sum.fetch_add(outcome.latency_ms,
                                 std::memory_order_relaxed);
    seg.subset_size_sum.fetch_add(outcome.subset_size,
                                  std::memory_order_relaxed);
    if (latency_slot != nullptr) *latency_slot = outcome.latency_ms;
  }
  if (outcome.missed) {
    // relaxed-ok: per-metric counter; aggregated after the run joins its threads
    missed_.fetch_add(1, std::memory_order_relaxed);
    seg.missed.fetch_add(1, std::memory_order_relaxed);
  }
}

void MetricSink::AccumulateInto(ServingMetrics* metrics) const {
  // relaxed-ok: per-metric counter; aggregated after the run joins its threads
  metrics->total += total_.load(std::memory_order_relaxed);
  metrics->processed += processed_.load(std::memory_order_relaxed);
  metrics->missed += missed_.load(std::memory_order_relaxed);
  metrics->accuracy_sum += accuracy_sum_.load(std::memory_order_relaxed);
  metrics->processed_accuracy_sum +=
      processed_accuracy_sum_.load(std::memory_order_relaxed);
  if (metrics->subset_size_counts.size() < subset_size_counts_.size()) {
    metrics->subset_size_counts.resize(subset_size_counts_.size(), 0);
  }
  for (size_t s = 0; s < subset_size_counts_.size(); ++s) {
    metrics->subset_size_counts[s] +=
        // relaxed-ok: per-metric counter; aggregated after the run joins its threads
        subset_size_counts_[s].load(std::memory_order_relaxed);
  }
  if (metrics->segments.size() < segments_.size()) {
    metrics->segments.resize(segments_.size());
  }
  for (size_t s = 0; s < segments_.size(); ++s) {
    SegmentStats& seg = metrics->segments[s];
    // relaxed-ok: per-metric counter; aggregated after the run joins its threads
    seg.arrivals += segments_[s].arrivals.load(std::memory_order_relaxed);
    seg.processed += segments_[s].processed.load(std::memory_order_relaxed);
    seg.missed += segments_[s].missed.load(std::memory_order_relaxed);
    seg.subset_size_sum +=
        segments_[s].subset_size_sum.load(std::memory_order_relaxed);
    seg.accuracy_sum +=
        segments_[s].accuracy_sum.load(std::memory_order_relaxed);
    seg.latency_ms_sum +=
        segments_[s].latency_ms_sum.load(std::memory_order_relaxed);
  }
}

}  // namespace schemble
