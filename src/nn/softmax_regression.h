#ifndef SCHEMBLE_NN_SOFTMAX_REGRESSION_H_
#define SCHEMBLE_NN_SOFTMAX_REGRESSION_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "nn/mlp.h"

namespace schemble {

/// Multinomial logistic regression: a single linear layer trained with
/// softmax cross-entropy. Used as the stacking meta-classifier that
/// aggregates base-model outputs (the paper's stacking aggregation uses "a
/// meta-classifier with no restrictions on architecture"; a calibrated
/// linear stacker is the classic choice and keeps inference cheap).
class SoftmaxRegression {
 public:
  SoftmaxRegression(int input_dim, int classes, uint64_t seed);

  /// Trains on (features, class index) pairs; returns final mean loss.
  double Train(const std::vector<std::vector<double>>& inputs,
               const std::vector<int>& labels, const TrainerOptions& options,
               Rng& rng);

  /// Class-probability vector for one input.
  std::vector<double> PredictProba(const std::vector<double>& input) const;

  /// Allocation-free PredictProba: the logits land in `out` via the caller's
  /// scratch and are softmaxed in place. Bit-identical to PredictProba.
  void PredictProbaInto(const std::vector<double>& input,
                        MlpInferenceScratch* scratch,
                        std::vector<double>* out) const;

  /// Most likely class.
  int Predict(const std::vector<double>& input) const;

  int input_dim() const { return mlp_.input_dim(); }
  int classes() const { return mlp_.output_dim(); }

 private:
  Mlp mlp_;
};

}  // namespace schemble

#endif  // SCHEMBLE_NN_SOFTMAX_REGRESSION_H_
