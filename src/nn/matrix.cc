#include "nn/matrix.h"

#include <cmath>

#include "common/hot_path.h"
#include "common/logging.h"
#include "nn/kernels.h"

namespace schemble {

Matrix::Matrix(int rows, int cols, double fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * cols, fill) {
  SCHEMBLE_CHECK_GE(rows, 0);
  SCHEMBLE_CHECK_GE(cols, 0);
}

Matrix Matrix::Randn(int rows, int cols, double stddev, Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.Normal(0.0, stddev);
  return m;
}

Matrix::OpStats& Matrix::op_stats() {
  static OpStats stats;
  return stats;
}

std::vector<double> Matrix::Apply(const std::vector<double>& x) const {
  std::vector<double> y;
  ApplyInto(x, &y);
  return y;
}

std::vector<double> Matrix::ApplyTransposed(
    const std::vector<double>& x) const {
  std::vector<double> y;
  ApplyTransposedInto(x, &y);
  return y;
}

SCHEMBLE_HOT void Matrix::ApplyInto(const std::vector<double>& x,
                                    std::vector<double>* y) const {
  SCHEMBLE_CHECK_EQ(static_cast<int>(x.size()), cols_);
  SCHEMBLE_DCHECK(y != &x);
  // relaxed-ok: grow-event telemetry counter
  op_stats().apply_into_calls.fetch_add(1, std::memory_order_relaxed);
  if (y->capacity() < static_cast<size_t>(rows_)) {
    op_stats().grow_events.fetch_add(1, std::memory_order_relaxed);
  }
  y->resize(rows_);
  kernels::Gemv(data_.data(), rows_, cols_, x.data(), y->data());
}

SCHEMBLE_HOT void Matrix::ApplyTransposedInto(
    const std::vector<double>& x, std::vector<double>* y) const {
  SCHEMBLE_CHECK_EQ(static_cast<int>(x.size()), rows_);
  SCHEMBLE_DCHECK(y != &x);
  // relaxed-ok: grow-event telemetry counter
  op_stats().apply_into_calls.fetch_add(1, std::memory_order_relaxed);
  if (y->capacity() < static_cast<size_t>(cols_)) {
    op_stats().grow_events.fetch_add(1, std::memory_order_relaxed);
  }
  y->resize(cols_);
  kernels::GemvTransposed(data_.data(), rows_, cols_, x.data(), y->data());
}

void Matrix::AddOuterProduct(const std::vector<double>& a,
                             const std::vector<double>& b, double scale) {
  SCHEMBLE_CHECK_EQ(static_cast<int>(a.size()), rows_);
  SCHEMBLE_CHECK_EQ(static_cast<int>(b.size()), cols_);
  double* row = data_.data();
  for (int r = 0; r < rows_; ++r, row += cols_) {
    const double ar = scale * a[r];
    for (int c = 0; c < cols_; ++c) row[c] += ar * b[c];
  }
}

void Matrix::AddScaled(const Matrix& other, double scale) {
  SCHEMBLE_CHECK_EQ(rows_, other.rows_);
  SCHEMBLE_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

void Matrix::Fill(double v) {
  for (double& x : data_) x = v;
}

double Matrix::Norm() const {
  double sq = 0.0;
  for (double v : data_) sq += v * v;
  return std::sqrt(sq);
}

}  // namespace schemble
