#ifndef SCHEMBLE_NN_CALIBRATION_H_
#define SCHEMBLE_NN_CALIBRATION_H_

#include <vector>

#include "common/status.h"

namespace schemble {

/// Temperature scaling (Guo et al., 2017), the post-hoc calibration step the
/// paper applies to base classifiers before computing discrepancy scores.
/// A single scalar temperature T is fit on held-out (logits, label) pairs by
/// minimizing negative log-likelihood; predictions become
/// softmax(logits / T).
class TemperatureScaler {
 public:
  /// Fits T in [min_t, max_t] by golden-section search over the (unimodal)
  /// NLL. Labels are class indices into each logits vector.
  static Result<TemperatureScaler> Fit(
      const std::vector<std::vector<double>>& logits,
      const std::vector<int>& labels, double min_t = 0.05, double max_t = 20.0);

  explicit TemperatureScaler(double temperature = 1.0)
      : temperature_(temperature) {}

  double temperature() const { return temperature_; }

  /// Calibrated probability vector softmax(logits / T).
  std::vector<double> Calibrate(const std::vector<double>& logits) const;

  /// Mean NLL of calibrated predictions, the objective Fit minimizes.
  static double MeanNll(const std::vector<std::vector<double>>& logits,
                        const std::vector<int>& labels, double temperature);

  /// Expected calibration error with `bins` equal-width confidence bins; a
  /// diagnostic used in tests to show calibration actually improves.
  static double ExpectedCalibrationError(
      const std::vector<std::vector<double>>& logits,
      const std::vector<int>& labels, double temperature, int bins = 10);

 private:
  double temperature_;
};

}  // namespace schemble

#endif  // SCHEMBLE_NN_CALIBRATION_H_
