#include "nn/knn_reference.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace schemble {

Result<ReferenceKnnIndex> ReferenceKnnIndex::Build(
    std::vector<std::vector<double>> records) {
  if (records.empty()) {
    return Status::InvalidArgument("KNN index needs at least one record");
  }
  const size_t dim = records[0].size();
  if (dim == 0) return Status::InvalidArgument("KNN records must be non-empty");
  for (const auto& r : records) {
    if (r.size() != dim) {
      return Status::InvalidArgument("KNN records must share a dimension");
    }
  }
  return ReferenceKnnIndex(std::move(records));
}

std::vector<ReferenceKnnIndex::Neighbor> ReferenceKnnIndex::Query(
    const std::vector<double>& point, const std::vector<bool>& mask,
    int k) const {
  SCHEMBLE_CHECK_EQ(point.size(), mask.size());
  SCHEMBLE_CHECK_EQ(static_cast<int>(point.size()), dim());
  SCHEMBLE_CHECK_GT(k, 0);
  bool any_observed = false;
  for (bool m : mask) any_observed |= m;
  SCHEMBLE_CHECK(any_observed);

  // Materialize (squared distance, index) for every record, then sort the
  // full candidate list — the O(N log N) baseline the heap path replaces.
  std::vector<Neighbor> all;
  all.reserve(records_.size());
  for (size_t i = 0; i < records_.size(); ++i) {
    double sq = 0.0;
    for (size_t d = 0; d < mask.size(); ++d) {
      if (!mask[d]) continue;
      const double diff = records_[i][d] - point[d];
      sq += diff * diff;
    }
    all.push_back({static_cast<int>(i), sq});
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.index < b.index;
  });
  all.resize(std::min<size_t>(k, all.size()));
  for (Neighbor& n : all) n.distance = std::sqrt(n.distance);
  return all;
}

std::vector<double> ReferenceKnnIndex::FillMissing(
    const std::vector<double>& point, const std::vector<bool>& mask,
    int k) const {
  std::vector<Neighbor> neighbors = Query(point, mask, k);
  // Inverse-distance weights; an exact match dominates.
  std::vector<double> weights;
  weights.reserve(neighbors.size());
  double total = 0.0;
  for (const Neighbor& n : neighbors) {
    const double w = 1.0 / (n.distance + 1e-9);
    weights.push_back(w);
    total += w;
  }
  std::vector<double> filled = point;
  for (size_t d = 0; d < mask.size(); ++d) {
    if (mask[d]) continue;
    double value = 0.0;
    for (size_t j = 0; j < neighbors.size(); ++j) {
      value += weights[j] * records_[neighbors[j].index][d];
    }
    filled[d] = value / total;
  }
  return filled;
}

}  // namespace schemble
