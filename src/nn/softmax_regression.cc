#include "nn/softmax_regression.h"

#include "common/logging.h"
#include "common/prob.h"
#include "nn/kernels.h"

namespace schemble {

SoftmaxRegression::SoftmaxRegression(int input_dim, int classes, uint64_t seed)
    : mlp_(MlpConfig{{input_dim, classes}, Activation::kIdentity}, seed) {}

double SoftmaxRegression::Train(const std::vector<std::vector<double>>& inputs,
                                const std::vector<int>& labels,
                                const TrainerOptions& options, Rng& rng) {
  SCHEMBLE_CHECK_EQ(inputs.size(), labels.size());
  SCHEMBLE_CHECK(!inputs.empty());
  std::vector<TrainExample> examples;
  examples.reserve(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    std::vector<double> one_hot(classes(), 0.0);
    SCHEMBLE_CHECK_GE(labels[i], 0);
    SCHEMBLE_CHECK_LT(labels[i], classes());
    one_hot[labels[i]] = 1.0;
    examples.push_back({inputs[i], std::move(one_hot)});
  }
  return TrainMlp(&mlp_, examples, SoftmaxCrossEntropyLossGrad, options, rng);
}

std::vector<double> SoftmaxRegression::PredictProba(
    const std::vector<double>& input) const {
  return Softmax(mlp_.Forward(input));
}

void SoftmaxRegression::PredictProbaInto(const std::vector<double>& input,
                                         MlpInferenceScratch* scratch,
                                         std::vector<double>* out) const {
  mlp_.ForwardInto(input, scratch, out);
  kernels::SoftmaxInPlace(out->data(), static_cast<int>(out->size()));
}

int SoftmaxRegression::Predict(const std::vector<double>& input) const {
  return Argmax(mlp_.Forward(input));
}

}  // namespace schemble
