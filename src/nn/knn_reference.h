#ifndef SCHEMBLE_NN_KNN_REFERENCE_H_
#define SCHEMBLE_NN_KNN_REFERENCE_H_

#include <vector>

#include "common/status.h"
#include "nn/knn.h"

namespace schemble {

/// The pre-optimization KNN index, kept as an executable specification
/// (mirroring ReferenceDpScheduler): ragged per-record storage, distances
/// materialized for ALL records, k selected by sorting the full candidate
/// list, coordinate-major fill accumulation. Same (squared distance, record
/// index) ordering contract as the optimized KnnIndex, so the randomized
/// equivalence suite can assert bit-identical outputs, and bench_nn can
/// measure the speedup against it.
class ReferenceKnnIndex {
 public:
  using Neighbor = KnnIndex::Neighbor;

  static Result<ReferenceKnnIndex> Build(
      std::vector<std::vector<double>> records);

  std::vector<Neighbor> Query(const std::vector<double>& point,
                              const std::vector<bool>& mask, int k) const;

  std::vector<double> FillMissing(const std::vector<double>& point,
                                  const std::vector<bool>& mask, int k) const;

  int size() const { return static_cast<int>(records_.size()); }
  int dim() const {
    return records_.empty() ? 0 : static_cast<int>(records_[0].size());
  }

 private:
  explicit ReferenceKnnIndex(std::vector<std::vector<double>> records)
      : records_(std::move(records)) {}

  std::vector<std::vector<double>> records_;
};

}  // namespace schemble

#endif  // SCHEMBLE_NN_KNN_REFERENCE_H_
