#ifndef SCHEMBLE_NN_KMEANS_H_
#define SCHEMBLE_NN_KMEANS_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace schemble {

/// Plain k-means with k-means++ initialization. The DES baseline uses it to
/// partition the feature space into regions for competence estimation
/// (paper §III-B: "a clustering method is applied to divide the input
/// space").
class KMeans {
 public:
  struct Options {
    int clusters = 8;
    int max_iterations = 50;
    /// Converged when no assignment changes in an iteration.
  };

  /// Fits centroids on `points` (all with equal dimension).
  static Result<KMeans> Fit(const std::vector<std::vector<double>>& points,
                            const Options& options, Rng& rng);

  /// Index of the nearest centroid.
  int Assign(const std::vector<double>& point) const;

  /// Squared Euclidean distance to the nearest centroid.
  double NearestDistanceSquared(const std::vector<double>& point) const;

  int clusters() const { return static_cast<int>(centroids_.size()); }
  const std::vector<std::vector<double>>& centroids() const {
    return centroids_;
  }

 private:
  explicit KMeans(std::vector<std::vector<double>> centroids)
      : centroids_(std::move(centroids)) {}

  std::vector<std::vector<double>> centroids_;
};

}  // namespace schemble

#endif  // SCHEMBLE_NN_KMEANS_H_
