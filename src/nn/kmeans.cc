#include "nn/kmeans.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "nn/kernels.h"

namespace schemble {

namespace {

double DistanceSquared(const std::vector<double>& a,
                       const std::vector<double>& b) {
  return kernels::SquaredDistance(a.data(), b.data(),
                                  static_cast<int>(a.size()));
}

}  // namespace

Result<KMeans> KMeans::Fit(const std::vector<std::vector<double>>& points,
                           const Options& options, Rng& rng) {
  if (points.empty()) {
    return Status::InvalidArgument("k-means needs at least one point");
  }
  if (options.clusters <= 0) {
    return Status::InvalidArgument("k-means needs clusters > 0");
  }
  const size_t dim = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("k-means points must share a dimension");
    }
  }
  const int k =
      std::min<int>(options.clusters, static_cast<int>(points.size()));

  // k-means++ seeding.
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  centroids.push_back(
      points[rng.UniformInt(0, static_cast<int64_t>(points.size()) - 1)]);
  std::vector<double> dist2(points.size(),
                            std::numeric_limits<double>::infinity());
  while (static_cast<int>(centroids.size()) < k) {
    for (size_t i = 0; i < points.size(); ++i) {
      dist2[i] =
          std::min(dist2[i], DistanceSquared(points[i], centroids.back()));
    }
    double total = 0.0;
    for (double d : dist2) total += d;
    if (total <= 0.0) {
      // All remaining points coincide with existing centroids.
      centroids.push_back(points[0]);
      continue;
    }
    double target = rng.NextDouble() * total;
    size_t chosen = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      target -= dist2[i];
      if (target < 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }

  // Lloyd iterations.
  std::vector<int> assignment(points.size(), -1);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < points.size(); ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        const double d = DistanceSquared(points[i], centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        changed = true;
      }
    }
    if (!changed) break;
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<int64_t> counts(k, 0);
    for (size_t i = 0; i < points.size(); ++i) {
      const int c = assignment[i];
      ++counts[c];
      for (size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep the old centroid
      for (size_t d = 0; d < dim; ++d) {
        centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
  }
  return KMeans(std::move(centroids));
}

int KMeans::Assign(const std::vector<double>& point) const {
  SCHEMBLE_CHECK(!centroids_.empty());
  int best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids_.size(); ++c) {
    const double d = DistanceSquared(point, centroids_[c]);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

double KMeans::NearestDistanceSquared(const std::vector<double>& point) const {
  SCHEMBLE_CHECK(!centroids_.empty());
  double best_d = std::numeric_limits<double>::infinity();
  for (const auto& c : centroids_) {
    best_d = std::min(best_d, DistanceSquared(point, c));
  }
  return best_d;
}

}  // namespace schemble
